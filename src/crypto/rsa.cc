#include "crypto/rsa.h"

#include "crypto/sha256.h"

namespace nexus::crypto {

namespace {

constexpr uint8_t kDigestPrefix[] = {'N', 'X', 'S', '2', '5', '6'};

// EMSA-PKCS1-v1_5-shaped encoding: 0x00 0x01 FF..FF 0x00 prefix digest.
Bytes EncodeDigest(ByteView message, size_t em_len) {
  Sha256Digest digest = Sha256::Hash(message);
  size_t t_len = sizeof(kDigestPrefix) + digest.size();
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  size_t pad = em_len - t_len - 3;
  em.insert(em.end(), pad, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), kDigestPrefix, kDigestPrefix + sizeof(kDigestPrefix));
  em.insert(em.end(), digest.begin(), digest.end());
  return em;
}

}  // namespace

Bytes RsaPublicKey::Serialize() const {
  Bytes out;
  AppendLengthPrefixed(out, n.ToBytes());
  AppendLengthPrefixed(out, e.ToBytes());
  return out;
}

Result<RsaPublicKey> RsaPublicKey::Deserialize(ByteView data) {
  ByteReader reader(data);
  Result<Bytes> n_bytes = reader.ReadLengthPrefixed();
  if (!n_bytes.ok()) {
    return n_bytes.status();
  }
  Result<Bytes> e_bytes = reader.ReadLengthPrefixed();
  if (!e_bytes.ok()) {
    return e_bytes.status();
  }
  RsaPublicKey key;
  key.n = BigNum::FromBytes(*n_bytes);
  key.e = BigNum::FromBytes(*e_bytes);
  if (key.n.IsZero() || key.e.IsZero()) {
    return InvalidArgument("degenerate RSA public key");
  }
  return key;
}

std::string RsaPublicKey::Fingerprint() const {
  return Sha256Hex(Serialize());
}

RsaKeyPair GenerateRsaKeyPair(Rng& rng, int modulus_bits) {
  int prime_bits = modulus_bits / 2;
  BigNum e(65537);
  for (;;) {
    BigNum p = GeneratePrime(rng, prime_bits);
    BigNum q = GeneratePrime(rng, prime_bits);
    if (p == q) {
      continue;
    }
    BigNum n = BigNum::Mul(p, q);
    BigNum phi = BigNum::Mul(BigNum::Sub(p, BigNum(1)), BigNum::Sub(q, BigNum(1)));
    if (BigNum::Compare(BigNum::Gcd(e, phi), BigNum(1)) != 0) {
      continue;
    }
    BigNum d = BigNum::ModInverse(e, phi);
    if (d.IsZero()) {
      continue;
    }
    RsaKeyPair pair;
    pair.public_key = RsaPublicKey{n, e};
    pair.private_key = RsaPrivateKey{n, e, d};
    return pair;
  }
}

Bytes RsaSign(const RsaPrivateKey& key, ByteView message) {
  size_t em_len = static_cast<size_t>((key.n.BitLength() + 7) / 8);
  Bytes em = EncodeDigest(message, em_len);
  BigNum m = BigNum::FromBytes(em);
  BigNum s = BigNum::ModExp(m, key.d, key.n);
  Bytes sig = s.ToBytes();
  // Left-pad to the modulus length for a fixed-width signature.
  if (sig.size() < em_len) {
    Bytes padded(em_len - sig.size(), 0);
    Append(padded, sig);
    return padded;
  }
  return sig;
}

bool RsaVerify(const RsaPublicKey& key, ByteView message, ByteView signature) {
  size_t em_len = static_cast<size_t>((key.n.BitLength() + 7) / 8);
  if (signature.size() != em_len) {
    return false;
  }
  BigNum s = BigNum::FromBytes(signature);
  if (BigNum::Compare(s, key.n) >= 0) {
    return false;
  }
  BigNum m = BigNum::ModExp(s, key.e, key.n);
  Bytes recovered = m.ToBytes();
  // Restore stripped leading zeros.
  Bytes em(em_len, 0);
  if (recovered.size() > em_len) {
    return false;
  }
  std::copy(recovered.begin(), recovered.end(), em.end() - static_cast<ptrdiff_t>(recovered.size()));
  Bytes expected = EncodeDigest(message, em_len);
  return ConstantTimeEquals(em, expected);
}

}  // namespace nexus::crypto
