// Device Driver Reference Monitor (DDRM) — the synthetic basis for trust
// applied to drivers (§4.1, [Williams et al., OSDI 2008]).
//
// A DDRM interposes on a user-level driver's IPC and constrains it to a
// device-safety policy: which operations it may perform, whether it may
// touch packet/page contents, and which IPC targets it may reach. A
// monitored driver can then *prove* properties like "forwards packets
// unmodified between the NIC and the web server" — the monitor issues the
// corresponding labels, because it is what enforces them.
#ifndef NEXUS_SERVICES_DDRM_H_
#define NEXUS_SERVICES_DDRM_H_

#include <map>
#include <set>
#include <string>
#include <tuple>

#include "core/engine.h"
#include "kernel/kernel.h"
#include "util/metrics.h"

namespace nexus::services {

struct DdrmPolicy {
  // Operations the driver may invoke ("dma_setup", "send", "recv", ...).
  std::set<std::string> allowed_operations;
  // May the driver read or write the contents of the pages it manages?
  // (NIC drivers can do DMA setup without content access.)
  bool allow_page_content_access = false;
  // IPC destinations the driver may message (by port). Empty = any.
  std::set<kernel::PortId> allowed_ipc_targets;
};

class DeviceDriverMonitor : public kernel::Interceptor {
 public:
  struct Stats {
    uint64_t allowed = 0;
    uint64_t denied = 0;
  };

  explicit DeviceDriverMonitor(DdrmPolicy policy, bool cache_decisions = true);

  kernel::InterposeVerdict OnCall(const kernel::IpcContext& context,
                                  kernel::IpcMessage& message) override;

  // Issues the monitor's attestations about the driver it constrains:
  //   <monitor> says mediated(/proc/ipd/<driver>)
  //   <monitor> says not canReadPages(/proc/ipd/<driver>)   [if applicable]
  Status AttestDriver(core::Engine* engine, kernel::ProcessId self,
                      kernel::ProcessId driver) const;

  // Snapshot by value ("ddrm.*" in the metrics plane).
  Stats stats() const { return Stats{stats_.allowed->Value(), stats_.denied->Value()}; }
  const DdrmPolicy& policy() const { return policy_; }

 private:
  bool Evaluate(const kernel::IpcMessage& message);

  DdrmPolicy policy_;
  bool cache_decisions_;
  // Verdict memo keyed by (interned op id, arg shape, target): models the
  // reference-monitor decision cache measured in Fig. 7 (min vs max).
  // Integer keys — the cached path builds no strings (typed ABI v2). The
  // shape discriminator keeps a no-arg ipc_send distinct from "port 0",
  // and calls the memo cannot key faithfully (unresolved legacy ops,
  // unparseable targets) are simply not memoized.
  enum class MemoShape : uint8_t { kPlain, kTarget };
  using MemoKey = std::tuple<kernel::OpId, MemoShape, uint64_t>;
  std::map<MemoKey, bool> decision_memo_;
  // The uncached path evaluates the policy as the paper's monitors do: a
  // NAL proof check of `Policy says allows(<op>)` against the policy's
  // labels. Pre-built at construction.
  std::vector<nal::Formula> policy_credentials_;
  metrics::MetricGroup metrics_{&metrics::Registry::Global(), "ddrm"};
  struct {
    metrics::Counter* allowed;
    metrics::Counter* denied;
  } stats_{metrics_.NewCounter("allowed"), metrics_.NewCounter("denied")};
};

}  // namespace nexus::services

#endif  // NEXUS_SERVICES_DDRM_H_
