#include "services/safety_certifier.h"

namespace nexus::services {

SafetyCertifier::SafetyCertifier(kernel::Kernel* kernel, core::Engine* engine,
                                 kernel::ProcessId self, kernel::ProcessId analyzer,
                                 std::vector<std::string> forbidden_targets)
    : kernel_(kernel),
      engine_(engine),
      self_(self),
      analyzer_(analyzer),
      forbidden_targets_(std::move(forbidden_targets)) {}

bool SafetyCertifier::HasNoPathLabel(kernel::ProcessId subject,
                                     const std::string& target) const {
  nal::Formula wanted = nal::FormulaNode::Says(
      kernel_->ProcessPrincipal(analyzer_),
      nal::FormulaNode::Not(nal::FormulaNode::Pred(
          "hasPath", {nal::Term::Symbol(kernel::Kernel::ProcPath(subject)),
                      nal::Term::Symbol(target)})));
  for (const nal::Formula& label : engine_->StoreFor(analyzer_).All()) {
    if (nal::Equals(label, wanted)) {
      return true;
    }
  }
  return false;
}

Result<core::LabelHandle> SafetyCertifier::Certify(kernel::ProcessId subject) {
  for (const std::string& target : forbidden_targets_) {
    if (!HasNoPathLabel(subject, target)) {
      return FailedPrecondition("missing analyzer attestation: not hasPath(" +
                                kernel::Kernel::ProcPath(subject) + ", " + target + ")");
    }
  }
  nal::Formula statement = nal::FormulaNode::Pred(
      "safe", {nal::Term::Symbol(kernel::Kernel::ProcPath(subject))});
  return engine_->SayFormula(self_, statement);
}

}  // namespace nexus::services
