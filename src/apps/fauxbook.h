// Fauxbook (§4.1): the privacy-preserving social network.
//
// A three-tier pipeline — user-level NIC driver under a DDRM, a web server
// that relinquishes all but IPC-related system calls after initialization,
// and a web framework hosting untrusted tenant (developer) code — built so
// that three guarantee classes hold simultaneously:
//   to the cloud provider: tenant code stays inside a Python-subset sandbox
//     (analysis + reflection rewriting: analytic + synthetic trust);
//   to developers: contracted CPU shares are attested from live scheduler
//     state via introspection;
//   to users: posts flow only along authorized friend edges, and even the
//     developers' own application code manipulates user data exclusively
//     through content-oblivious cobufs.
#ifndef NEXUS_APPS_FAUXBOOK_H_
#define NEXUS_APPS_FAUXBOOK_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/nexus.h"
#include "services/cobuf.h"
#include "services/ddrm.h"

namespace nexus::apps {

// ---------------------------------------------------------------- Sandbox

// A model of the tenant-code sandbox: "source" is a list of import
// directives and call sites. The loader's labeling functions (1) verify
// only whitelisted imports are used (analysis) and (2) rewrite
// reflection-related calls so they cannot reach the import machinery
// (synthesis).
struct TenantModule {
  std::string name;
  std::vector<std::string> imports;
  std::vector<std::string> calls;
};

class PythonSandbox {
 public:
  explicit PythonSandbox(std::set<std::string> import_whitelist)
      : import_whitelist_(std::move(import_whitelist)) {}

  // Analysis pass: rejects non-whitelisted imports.
  Status CheckImports(const TenantModule& module) const;
  // Synthesis pass: rewrites reflection calls (getattr/eval/__import__)
  // into their constrained "safe_" forms; returns the transformed module.
  TenantModule RewriteReflection(const TenantModule& module) const;
  // Full load: analyze, rewrite, and (on success) deposit the labels
  //   <loader> says isLegalPython(<module>)
  //   <loader> says importsConstrained(<module>)
  //   <loader> says reflectionRewritten(<module>)
  Result<TenantModule> Load(const TenantModule& module, core::Engine* engine,
                            kernel::ProcessId loader) const;

  static bool IsReflectionCall(const std::string& call);

 private:
  std::set<std::string> import_whitelist_;
};

// ----------------------------------------------------------------- Users

// Users hold no cryptographic keys (§4.1); their principals are
// subprincipals of the authenticating web server: name.webserver.user.alice.
nal::Principal UserPrincipal(const nal::Principal& webserver, const std::string& user);

// ------------------------------------------------------- Tenant data API

// The only interface Fauxbook application (developer) code gets to user
// data. Note what is absent: any way to read bytes.
class TenantDataApi {
 public:
  explicit TenantDataApi(services::CobufManager* cobufs) : cobufs_(cobufs) {}

  Result<services::CobufId> Slice(services::CobufId id, size_t from, size_t len) {
    return cobufs_->Slice(id, from, len);
  }
  Status Append(services::CobufId dst, services::CobufId src) {
    return cobufs_->Append(dst, src);
  }
  Result<services::CobufId> CreateLike(services::CobufId like) {
    return cobufs_->CreateLike(like);
  }
  Result<size_t> Length(services::CobufId id) { return cobufs_->Length(id); }

 private:
  services::CobufManager* cobufs_;
};

// -------------------------------------------------------------- Fauxbook

class Fauxbook {
 public:
  struct Config {
    std::set<std::string> import_whitelist = {"fauxbook_api", "string_utils"};
    std::vector<std::string> forbidden_driver_targets = {"filesystem"};
  };

  explicit Fauxbook(core::Nexus* nexus);
  Fauxbook(core::Nexus* nexus, const Config& config);

  // ------------------------------------------------------------- Users
  Status AddUser(const std::string& name);
  // `user` authorizes `friend_name` to see `user`'s posts (directed edge,
  // user-initiated through the authentication library — tenant code cannot
  // call this).
  Status AddFriend(const std::string& user, const std::string& friend_name);
  bool AreFriends(const std::string& owner, const std::string& reader) const;

  // ------------------------------------------------------------- Posts
  // A post enters through the web tier with an authenticated session: the
  // web server tags the data with the session owner before tenant code
  // ever sees it.
  Status PostStatus(const std::string& user, const std::string& text);
  // Feed assembly runs *tenant* code over cobufs; extraction back to bytes
  // happens in the web server under the viewer's session principal.
  Result<std::vector<std::string>> ReadFeed(const std::string& viewer);

  // ------------------------------------- The attacks that must not work
  // Developer tries to read a user's post contents directly.
  Result<Bytes> DeveloperPeek(const std::string& user);
  // Developer tries to forge a friend edge to exfiltrate data.
  Status DeveloperForgeFriend(const std::string& user, const std::string& impostor);
  // Tenant code tries to collate a non-friend's post into its own buffer.
  Status TenantExfiltrate(const std::string& victim, const std::string& attacker);

  // -------------------------------------------------- Resource attestation
  Status SetTenantWeight(const std::string& tenant, uint32_t weight);
  // Label: scheduler state shows `tenant` holds >= `min_percent`% of total
  // weight. Fails (refuses to attest) otherwise.
  Result<core::LabelHandle> AttestCpuShare(const std::string& tenant, int min_percent);

  // ------------------------------------------------------------ Serving
  // The benchmark pipelines (Fig. 8): static file service and dynamic
  // (framework + cobuf) page generation.
  Result<Bytes> ServeStatic(const std::string& path);
  Result<Bytes> ServeDynamic(const std::string& viewer);

  // Sandbox + attestation.
  Status LoadTenantCode(const TenantModule& module);
  PythonSandbox& sandbox() { return sandbox_; }

  kernel::ProcessId webserver_pid() const { return webserver_; }
  kernel::ProcessId driver_pid() const { return driver_; }
  kernel::ProcessId framework_pid() const { return framework_; }
  services::DeviceDriverMonitor& driver_monitor() { return *driver_monitor_; }
  services::CobufManager& cobufs() { return *cobufs_; }

 private:
  struct User {
    nal::Principal principal;
    std::set<std::string> friends;  // Readers this user authorized.
    std::vector<services::CobufId> posts;
  };

  core::Nexus* nexus_;
  Config config_;
  PythonSandbox sandbox_;

  kernel::ProcessId driver_ = 0;
  kernel::ProcessId webserver_ = 0;
  kernel::ProcessId framework_ = 0;
  kernel::ProcessId tenant_pid_ = 0;
  kernel::PortId driver_port_ = 0;
  kernel::PortId webserver_port_ = 0;
  std::unique_ptr<services::DeviceDriverMonitor> driver_monitor_;
  std::unique_ptr<services::CobufManager> cobufs_;
  std::map<std::string, User> users_;
  std::map<std::string, uint32_t> tenant_weights_;
};

}  // namespace nexus::apps

#endif  // NEXUS_APPS_FAUXBOOK_H_
