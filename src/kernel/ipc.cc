#include "kernel/ipc.h"

namespace nexus::kernel {

std::string_view SyscallName(Syscall call) {
  switch (call) {
    case Syscall::kNull:
      return "null";
    case Syscall::kGetPpid:
      return "getppid";
    case Syscall::kGetTimeOfDay:
      return "gettimeofday";
    case Syscall::kYield:
      return "yield";
    case Syscall::kOpen:
      return "open";
    case Syscall::kClose:
      return "close";
    case Syscall::kRead:
      return "read";
    case Syscall::kWrite:
      return "write";
    case Syscall::kSay:
      return "say";
    case Syscall::kSetGoal:
      return "setgoal";
    case Syscall::kSetProof:
      return "setproof";
    case Syscall::kInterpose:
      return "interpose";
    case Syscall::kIpcCall:
      return "ipc_call";
    case Syscall::kProcRead:
      return "proc_read";
  }
  return "?";
}

Bytes MarshalMessage(const IpcMessage& message) {
  Bytes out;
  AppendLengthPrefixed(out, ToBytes(message.operation));
  AppendU32(out, static_cast<uint32_t>(message.args.size()));
  for (const std::string& arg : message.args) {
    AppendLengthPrefixed(out, ToBytes(arg));
  }
  AppendLengthPrefixed(out, message.data);
  return out;
}

Result<IpcMessage> UnmarshalMessage(ByteView buffer) {
  ByteReader reader(buffer);
  IpcMessage message;
  Result<Bytes> op = reader.ReadLengthPrefixed();
  if (!op.ok()) {
    return op.status();
  }
  message.operation = ToString(*op);
  Result<uint32_t> argc = reader.ReadU32();
  if (!argc.ok()) {
    return argc.status();
  }
  for (uint32_t i = 0; i < *argc; ++i) {
    Result<Bytes> arg = reader.ReadLengthPrefixed();
    if (!arg.ok()) {
      return arg.status();
    }
    message.args.push_back(ToString(*arg));
  }
  Result<Bytes> data = reader.ReadLengthPrefixed();
  if (!data.ok()) {
    return data.status();
  }
  message.data = std::move(*data);
  return message;
}

}  // namespace nexus::kernel
