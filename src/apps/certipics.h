// CertiPics (§4): certified image editing.
//
// Every transformation applied to an image is appended to a hash-chained,
// unforgeable log. Given source image, final image, and log, an analyzer
// can (a) verify the chain (each entry commits to the image state before
// and after), (b) re-execute the pipeline to confirm the final image, and
// (c) check the applied operations against a publication policy (e.g.
// cloning is disallowed for news photos).
#ifndef NEXUS_APPS_CERTIPICS_H_
#define NEXUS_APPS_CERTIPICS_H_

#include <set>
#include <string>
#include <vector>

#include "core/nexus.h"
#include "crypto/sha256.h"

namespace nexus::apps {

struct Image {
  size_t width = 0;
  size_t height = 0;
  Bytes pixels;  // Grayscale, width*height bytes.

  Bytes Digest() const;
};

Image MakeImage(size_t width, size_t height, uint8_t fill);

struct TransformEntry {
  std::string operation;            // "crop", "resize", "color", "clone"
  std::vector<int64_t> parameters;
  Bytes before_digest;
  Bytes after_digest;
  Bytes chain;  // SHA-256(prev_chain || op || params || before || after).
};

class CertiPics {
 public:
  CertiPics(core::Nexus* nexus, kernel::ProcessId self, Image source);

  // Transformations (each appends a log entry).
  Status Crop(size_t x, size_t y, size_t w, size_t h);
  Status Resize(size_t w, size_t h);          // Nearest-neighbour.
  Status ColorTransform(int delta);           // Brightness shift, clamped.
  Status Clone(size_t src_x, size_t src_y, size_t dst_x, size_t dst_y, size_t w, size_t h);

  const Image& current() const { return current_; }
  const Image& source() const { return source_; }
  const std::vector<TransformEntry>& log() const { return log_; }

  // Issues <self> says editLog(<final digest hex>, <chain head hex>).
  Result<core::LabelHandle> AttestLog();

  // Analyzer side: verifies chain integrity and linkage from source digest
  // to final digest, then checks no disallowed operation appears.
  static Status VerifyLog(const Image& source, const Image& final_image,
                          const std::vector<TransformEntry>& log,
                          const std::set<std::string>& disallowed_operations);

 private:
  void Record(const std::string& operation, std::vector<int64_t> parameters,
              const Bytes& before, const Bytes& after);

  core::Nexus* nexus_;
  kernel::ProcessId self_;
  Image source_;
  Image current_;
  std::vector<TransformEntry> log_;
};

}  // namespace nexus::apps

#endif  // NEXUS_APPS_CERTIPICS_H_
