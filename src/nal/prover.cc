#include "nal/prover.h"

#include <set>
#include <string>

namespace nexus::nal {

namespace {

class Prover {
 public:
  Prover(const std::vector<Formula>& credentials, const ProverOptions& options)
      : credentials_(credentials), options_(options) {}

  // Proves `goal` after substituting bindings accumulated so far; on success
  // may extend `bindings` (for $-variables matched against credentials).
  Result<Proof> Prove(const Formula& goal, Bindings& bindings, int depth) {
    Formula g = Substitute(goal, bindings);
    if (depth > options_.max_depth) {
      return NotFound("depth limit while proving " + g->ToString());
    }
    std::string key = g->ToString();
    if (!in_progress_.insert(key).second) {
      return NotFound("cyclic subgoal " + key);
    }
    Result<Proof> out = ProveInner(g, bindings, depth);
    in_progress_.erase(key);
    return out;
  }

 private:
  Result<Proof> ProveInner(const Formula& g, Bindings& bindings, int depth) {
    // True is free.
    if (g->kind() == FormulaKind::kTrue) {
      return proof::Premise(g);
    }

    // 1. Direct premise lookup (with matching for goal variables).
    for (const Formula& cred : credentials_) {
      Bindings trial = bindings;
      if (Match(g, cred, trial)) {
        bindings = std::move(trial);
        return proof::Premise(cred);
      }
    }

    // 2. Conjunction: prove both halves.
    if (g->kind() == FormulaKind::kAnd) {
      Bindings trial = bindings;
      Result<Proof> l = Prove(g->child1(), trial, depth + 1);
      if (l.ok()) {
        Result<Proof> r = Prove(g->child2(), trial, depth + 1);
        if (r.ok()) {
          bindings = std::move(trial);
          return proof::AndIntro(*l, *r);
        }
      }
      return NotFound("cannot prove both conjuncts of " + g->ToString());
    }

    // 3. Disjunction: prove either side.
    if (g->kind() == FormulaKind::kOr) {
      Bindings trial = bindings;
      if (Result<Proof> l = Prove(g->child1(), trial, depth + 1); l.ok()) {
        bindings = std::move(trial);
        return proof::OrIntroL(*l, Substitute(g->child2(), bindings));
      }
      trial = bindings;
      if (Result<Proof> r = Prove(g->child2(), trial, depth + 1); r.ok()) {
        bindings = std::move(trial);
        return proof::OrIntroR(Substitute(g->child1(), bindings), *r);
      }
      return NotFound("cannot prove either disjunct of " + g->ToString());
    }

    // 4. Says-goals: delegation and distribution routes.
    if (g->kind() == FormulaKind::kSays) {
      if (Result<Proof> p = ProveSays(g, bindings, depth); p.ok()) {
        return p;
      }
    }

    // 5. SpeaksFor goals: axiom, handoff, transitivity.
    if (g->kind() == FormulaKind::kSpeaksFor) {
      if (Result<Proof> p = ProveSpeaksFor(g, bindings, depth); p.ok()) {
        return p;
      }
    }

    // 6. Authority discharge for dynamic-state formulas.
    if (options_.may_query_authority && IsGround(g) && options_.may_query_authority(g)) {
      return proof::Authority(g);
    }

    return NotFound("no rule applies to " + g->ToString());
  }

  // Goal: B says F.
  Result<Proof> ProveSays(const Formula& g, Bindings& bindings, int depth) {
    const Principal& b = g->speaker();
    const Formula& f = g->child1();

    // (a) Delegation: find A speaksfor B [on s] (derivable), then prove
    //     A says F. Candidate A's come from delegation credentials.
    for (const Formula& cred : credentials_) {
      Formula sf;
      if (cred->kind() == FormulaKind::kSpeaksFor) {
        sf = cred;
      } else if (cred->kind() == FormulaKind::kSays &&
                 cred->child1()->kind() == FormulaKind::kSpeaksFor) {
        sf = cred->child1();
      } else {
        continue;
      }
      if (b.IsVariable() || !(sf->delegatee() == b)) {
        continue;
      }
      if (sf->on_scope().has_value() && !ScopeMatches(f, *sf->on_scope())) {
        continue;
      }
      Bindings trial = bindings;
      Result<Proof> sf_proof = ProveSpeaksForFormula(sf, trial, depth + 1);
      if (!sf_proof.ok()) {
        continue;
      }
      Result<Proof> said =
          Prove(FormulaNode::Says(sf->delegator(), f), trial, depth + 1);
      if (said.ok()) {
        bindings = std::move(trial);
        return proof::SpeaksForElim(*sf_proof, *said);
      }
    }

    // (b) Superprincipal attribution: a statement by a proper name-prefix P
    //     of B speaks for B via the subprincipal axiom.
    if (!b.IsVariable()) {
      for (const Formula& cred : credentials_) {
        if (cred->kind() != FormulaKind::kSays) {
          continue;
        }
        const Principal& speaker = cred->speaker();
        if (!(speaker == b) && speaker.IsPrefixOf(b)) {
          Bindings trial = bindings;
          if (Match(FormulaNode::Says(speaker, f), cred, trial)) {
            bindings = std::move(trial);
            return proof::SpeaksForElim(proof::Subprincipal(speaker, b), proof::Premise(cred));
          }
        }
      }
    }

    // (c) Says-distribution: B says (X => F) together with B says X.
    for (const Formula& cred : credentials_) {
      if (cred->kind() != FormulaKind::kSays || !(cred->speaker() == b) ||
          cred->child1()->kind() != FormulaKind::kImplies) {
        continue;
      }
      Bindings trial = bindings;
      if (!Match(f, cred->child1()->child2(), trial)) {
        continue;
      }
      Result<Proof> ant =
          Prove(FormulaNode::Says(b, cred->child1()->child1()), trial, depth + 1);
      if (ant.ok()) {
        bindings = std::move(trial);
        return proof::SaysImpliesElim(proof::Premise(cred), *ant);
      }
    }

    // (d) Conjunction inside says: prove each half separately.
    if (f->kind() == FormulaKind::kAnd) {
      Bindings trial = bindings;
      Result<Proof> l = Prove(FormulaNode::Says(b, f->child1()), trial, depth + 1);
      if (l.ok()) {
        Result<Proof> r = Prove(FormulaNode::Says(b, f->child2()), trial, depth + 1);
        if (r.ok()) {
          bindings = std::move(trial);
          return proof::SaysAndIntro(*l, *r);
        }
      }
    }

    // (e) Authority discharge of the whole says-formula.
    if (options_.may_query_authority && IsGround(g) && options_.may_query_authority(g)) {
      return proof::Authority(g);
    }

    return NotFound("cannot prove " + g->ToString());
  }

  // Proves a concrete speaksfor formula (not a goal pattern).
  Result<Proof> ProveSpeaksForFormula(const Formula& sf, Bindings& bindings, int depth) {
    // Direct premise.
    for (const Formula& cred : credentials_) {
      if (Equals(cred, sf)) {
        return proof::Premise(cred);
      }
    }
    // Subprincipal axiom.
    if (!sf->on_scope().has_value() && sf->delegator().IsPrefixOf(sf->delegatee()) &&
        !(sf->delegator() == sf->delegatee())) {
      return proof::Subprincipal(sf->delegator(), sf->delegatee());
    }
    // Handoff: some credential P says (A speaksfor B) with P a prefix of B.
    for (const Formula& cred : credentials_) {
      if (cred->kind() != FormulaKind::kSays ||
          cred->child1()->kind() != FormulaKind::kSpeaksFor) {
        continue;
      }
      if (!Equals(cred->child1(), sf)) {
        continue;
      }
      if (cred->speaker().IsPrefixOf(sf->delegatee())) {
        return proof::Handoff(proof::Premise(cred));
      }
      // Speaker is a superprincipal by delegation? Re-attribute via a
      // recursively proven "B says (A speaksfor B)".
      Bindings trial = bindings;
      Result<Proof> reattributed =
          Prove(FormulaNode::Says(sf->delegatee(), cred->child1()), trial, depth + 1);
      if (reattributed.ok()) {
        bindings = std::move(trial);
        return proof::Handoff(*reattributed);
      }
    }
    return NotFound("cannot derive " + sf->ToString());
  }

  // Goal: A speaksfor B pattern (may contain variables; only ground
  // handling is supported).
  Result<Proof> ProveSpeaksFor(const Formula& g, Bindings& bindings, int depth) {
    if (!IsGround(g)) {
      return NotFound("speaksfor goals with variables are not supported");
    }
    Result<Proof> direct = ProveSpeaksForFormula(g, bindings, depth);
    if (direct.ok()) {
      return direct;
    }
    // Bounded transitivity: A speaksfor M (premise-level), M speaksfor B.
    for (const Formula& cred : credentials_) {
      Formula sf;
      if (cred->kind() == FormulaKind::kSpeaksFor) {
        sf = cred;
      } else if (cred->kind() == FormulaKind::kSays &&
                 cred->child1()->kind() == FormulaKind::kSpeaksFor) {
        sf = cred->child1();
      } else {
        continue;
      }
      if (!(sf->delegator() == g->delegator())) {
        continue;
      }
      if (sf->delegatee() == g->delegatee()) {
        continue;  // Would be the direct case.
      }
      // Compose scopes conservatively: the transitivity rule propagates the
      // first hop's restriction into the conclusion, so a scoped first hop
      // can only serve an identically-scoped goal.
      if (sf->on_scope().has_value() &&
          (!g->on_scope().has_value() || *sf->on_scope() != *g->on_scope())) {
        continue;
      }
      Bindings trial = bindings;
      Result<Proof> first = ProveSpeaksForFormula(sf, trial, depth + 1);
      if (!first.ok()) {
        continue;
      }
      std::optional<std::string> rest_scope = g->on_scope();
      if (sf->on_scope().has_value()) {
        rest_scope = std::nullopt;  // Restriction already applied.
      }
      Formula rest = FormulaNode::SpeaksFor(sf->delegatee(), g->delegatee(), rest_scope);
      Result<Proof> second = Prove(rest, trial, depth + 1);
      if (second.ok()) {
        bindings = std::move(trial);
        return proof::SpeaksForTrans(*first, *second);
      }
    }
    return NotFound("cannot derive " + g->ToString());
  }

  const std::vector<Formula>& credentials_;
  const ProverOptions& options_;
  std::set<std::string> in_progress_;
};

}  // namespace

Result<Proof> AutoProve(const Formula& goal, const std::vector<Formula>& credentials,
                        const ProverOptions& options) {
  Prover prover(credentials, options);
  Bindings bindings;
  Result<Proof> p = prover.Prove(goal, bindings, 0);
  if (!p.ok()) {
    return p;
  }
  // Sanity: validate against the checker (authorities assumed to say yes
  // during construction; the guard re-checks against live authorities).
  CheckResult check = CheckProof(*p, goal, credentials, [](const Formula&) { return true; });
  if (!check.status.ok()) {
    return Internal("prover produced an invalid proof: " + check.status.message());
  }
  return p;
}

}  // namespace nexus::nal
