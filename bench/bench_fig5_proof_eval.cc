// Figure 5: proof evaluation cost vs proof size (#rules), for three rule
// families:
//   delegate : chains of handoff + speaksfor-elimination
//   negate   : stacked double-negation introductions
//   boolean  : conjunction introduction/elimination chains
// Two variants per family, matching the paper's E/F curves:
//   E : isolated proof checking (checker only)
//   F : full path — guard evaluation including credential collection and
//       authority lookup machinery (kernel decision cache disabled so every
//       call reaches the guard; guard proof cache flushed per iteration
//       batch).
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "core/nexus.h"
#include "nal/checker.h"
#include "nal/parser.h"
#include "tpm/tpm.h"

namespace {

using nexus::ToBytes;

nexus::nal::Formula F(const std::string& text) { return *nexus::nal::ParseFormula(text); }

struct ProofCase {
  nexus::nal::Formula goal;
  nexus::nal::Proof proof;
  std::vector<nexus::nal::Formula> credentials;
};

// Delegation chain: P0 says ok(); Pi+1 says (Pi speaksfor Pi+1). Proof uses
// 3 rules per hop (premise, handoff, speaksfor-elim) + 1.
ProofCase MakeDelegationChain(int hops) {
  ProofCase out;
  out.credentials.push_back(F("P0 says ok()"));
  nexus::nal::Proof current = nexus::nal::proof::Premise(F("P0 says ok()"));
  for (int i = 0; i < hops; ++i) {
    std::string hop = "P" + std::to_string(i + 1) + " says (P" + std::to_string(i) +
                      " speaksfor P" + std::to_string(i + 1) + ")";
    out.credentials.push_back(F(hop));
    current = nexus::nal::proof::SpeaksForElim(
        nexus::nal::proof::Handoff(nexus::nal::proof::Premise(F(hop))), current);
  }
  out.goal = F("P" + std::to_string(hops) + " says ok()");
  out.proof = current;
  return out;
}

// Double negation tower: not^2k (A says ok()).
ProofCase MakeNegationChain(int rules) {
  ProofCase out;
  out.credentials.push_back(F("A says ok()"));
  nexus::nal::Proof current = nexus::nal::proof::Premise(F("A says ok()"));
  std::string goal_text = "A says ok()";
  for (int i = 0; i < rules; ++i) {
    current = nexus::nal::proof::DoubleNegIntro(current);
    goal_text = "not not (" + goal_text + ")";
  }
  out.goal = F(goal_text);
  out.proof = current;
  return out;
}

// Boolean chain: ((A says ok()) and true) and true ... via and-intro.
ProofCase MakeBooleanChain(int rules) {
  ProofCase out;
  out.credentials.push_back(F("A says ok()"));
  nexus::nal::Proof current = nexus::nal::proof::Premise(F("A says ok()"));
  std::string goal_text = "A says ok()";
  for (int i = 0; i < rules; ++i) {
    current = nexus::nal::proof::AndIntro(current, nexus::nal::proof::Premise(F("true")));
    goal_text = "(" + goal_text + ") and true";
  }
  out.goal = F(goal_text);
  out.proof = current;
  return out;
}

// E curves: checker in isolation.
void RunIsolated(benchmark::State& state, const ProofCase& pc) {
  for (auto _ : state) {
    auto result = nexus::nal::CheckProof(pc.proof, pc.goal, pc.credentials);
    benchmark::DoNotOptimize(result.status.ok());
  }
  state.counters["rules"] = benchmark::Counter(static_cast<double>(pc.proof->Size()));
}

// F curves: full guard path (credential store walk + authority wiring).
struct FullHarness {
  FullHarness() : tpm_rng(42), tpm(tpm_rng), nexus(&tpm) {
    owner = *nexus.CreateProcess("owner", ToBytes("o"));
    subject = *nexus.CreateProcess("subject", ToBytes("s"));
    nexus.engine().RegisterObject("fig5:obj", owner, nexus::kernel::kKernelProcessId);
    nexus.kernel().set_decision_cache_enabled(false);
  }
  nexus::Rng tpm_rng;
  nexus::tpm::Tpm tpm;
  nexus::core::Nexus nexus;
  nexus::kernel::ProcessId owner = 0, subject = 0;
};

FullHarness& FH() {
  static FullHarness h;
  return h;
}

void RunFull(benchmark::State& state, const ProofCase& pc) {
  FullHarness& h = FH();
  // Install credentials as system labels (fresh store each case).
  for (const auto& cred : pc.credentials) {
    h.nexus.engine().SayAs(cred->speaker(), cred->child1());
  }
  h.nexus.engine().SetGoal(h.owner, "use", "fig5:obj", pc.goal);
  h.nexus.engine().SetProof(h.subject, "use", "fig5:obj", pc.proof);
  for (auto _ : state) {
    h.nexus.guard().FlushCache();  // Measure checking, not verdict caching.
    benchmark::DoNotOptimize(h.nexus.kernel().Authorize(h.subject, "use", "fig5:obj"));
  }
  state.counters["rules"] = benchmark::Counter(static_cast<double>(pc.proof->Size()));
}

void BM_delegate_E(benchmark::State& s) { RunIsolated(s, MakeDelegationChain(static_cast<int>(s.range(0)))); }
void BM_delegate_F(benchmark::State& s) { RunFull(s, MakeDelegationChain(static_cast<int>(s.range(0)))); }
void BM_negate_E(benchmark::State& s) { RunIsolated(s, MakeNegationChain(static_cast<int>(s.range(0)))); }
void BM_negate_F(benchmark::State& s) { RunFull(s, MakeNegationChain(static_cast<int>(s.range(0)))); }
void BM_boolean_E(benchmark::State& s) { RunIsolated(s, MakeBooleanChain(static_cast<int>(s.range(0)))); }
void BM_boolean_F(benchmark::State& s) { RunFull(s, MakeBooleanChain(static_cast<int>(s.range(0)))); }

BENCHMARK(BM_delegate_E)->DenseRange(0, 20, 4);
BENCHMARK(BM_delegate_F)->DenseRange(0, 20, 4);
BENCHMARK(BM_negate_E)->DenseRange(0, 20, 4);
BENCHMARK(BM_negate_F)->DenseRange(0, 20, 4);
BENCHMARK(BM_boolean_E)->DenseRange(0, 20, 4);
BENCHMARK(BM_boolean_F)->DenseRange(0, 20, 4);

// The headline claim (§1): with proof caching, authorization drops to tens
// of cycles — measured here as the kernel-decision-cache hit path.
void BM_cached_authorization_hit(benchmark::State& state) {
  FullHarness& h = FH();
  ProofCase pc = MakeDelegationChain(4);
  for (const auto& cred : pc.credentials) {
    h.nexus.engine().SayAs(cred->speaker(), cred->child1());
  }
  h.nexus.kernel().set_decision_cache_enabled(true);
  h.nexus.engine().SetGoal(h.owner, "use", "fig5:hit", pc.goal);
  h.nexus.engine().RegisterObject("fig5:hit", h.owner, nexus::kernel::kKernelProcessId);
  h.nexus.engine().SetProof(h.subject, "use", "fig5:hit", pc.proof);
  h.nexus.kernel().Authorize(h.subject, "use", "fig5:hit");  // Warm.
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.nexus.kernel().Authorize(h.subject, "use", "fig5:hit"));
  }
  h.nexus.kernel().set_decision_cache_enabled(false);
}
BENCHMARK(BM_cached_authorization_hit);

}  // namespace

NEXUS_BENCHMARK_MAIN();
