// Attested channels between Nexus instances (§2.4 externalized).
//
// A channel is keyed by a three-message handshake in which each side
// presents its TPM-rooted principal chain and proves live possession of its
// Nexus kernel key NK:
//
//   hello      (initiator -> responder): nonce, NK, EK, the EK's
//              endorsement of NK bound to the boot-time PCR composite, and
//              the boot key id NBK.
//   hello_ack  (responder -> initiator): the responder's hello fields, a
//              session key share RSA-encrypted to the initiator's NK, and
//              an NK signature over the transcript so far (freshness via
//              both nonces).
//   auth       (initiator -> responder): the initiator's key share
//              encrypted to the responder's NK, plus its NK signature over
//              the full transcript.
//
// Each side accepts the peer only if (1) the peer EK is a registered trust
// anchor of the local Nexus instance, (2) the EK endorsement of NK
// verifies, and (3) the transcript signature verifies under that NK — i.e.
// the peer is exactly the principal tpm.<ek8>.nexus.<nk8>.boot.<nbk8>.
// Session keys are derived from both key shares, which only the two NK
// holders can decrypt — a fabric eavesdropper sees every handshake byte
// and still cannot compute them. Data messages are AES-CTR encrypted and
// HMAC-SHA256 authenticated, carry explicit sequence numbers, and are
// accepted in any order but never twice within the replay window
// (order-insensitive, replay-safe — the properties the related work on
// network-system correctness demands of credential transfer).
// Threading: an ESTABLISHED channel is safe for concurrent callers —
// Call/CallStart/CallFinish/SendSecure may run from several worker threads
// at once (independent authorization misses overlap their round trips on
// one shared channel). Sequence numbers, the replay window, pending
// responses, and stats live under one data-plane mutex; session keys and
// the peer identity are immutable once the handshake completes. The
// HANDSHAKE itself is not concurrent: establish the channel (Connect, or a
// warm-up query) before handing it to worker threads — Connect serializes
// against itself, but handshaking consumes the instance Rng, which is not
// a concurrent-safe surface.
#ifndef NEXUS_NET_CHANNEL_H_
#define NEXUS_NET_CHANNEL_H_

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "core/nexus.h"
#include "crypto/aes.h"
#include "net/transport.h"

namespace nexus::net {

class AttestedChannel;

// Dispatch interface for service requests arriving on a channel (implemented
// by NetNode, which owns the service registry).
class ChannelServices {
 public:
  virtual ~ChannelServices() = default;
  virtual Result<Bytes> HandleRequest(AttestedChannel& channel, const std::string& service,
                                      ByteView request) = 0;
};

enum class ChannelState : uint8_t { kIdle, kConnecting, kEstablished, kFailed };

class AttestedChannel {
 public:
  struct Stats {
    uint64_t data_sent = 0;
    uint64_t data_received = 0;
    uint64_t replays_rejected = 0;
    uint64_t bad_tags_rejected = 0;
  };

  AttestedChannel(core::Nexus* local, Transport* transport, ChannelServices* services,
                  NodeId self, NodeId peer, uint64_t channel_id, bool initiator);

  // Initiator side: runs the handshake, pumping the transport until it
  // settles. Safe to call again after a lossy attempt (handshake messages
  // are resent idempotently).
  Status Connect();

  // Routed in by the owning NetNode for this channel id.
  void OnTransportMessage(const Message& message);

  ChannelState state() const { return state_.load(); }
  bool established() const { return state_.load() == ChannelState::kEstablished; }
  const std::string& failure() const { return failure_; }

  // Attested peer identity; valid once established.
  const crypto::RsaPublicKey& peer_ek() const { return peer_ek_; }
  const crypto::RsaPublicKey& peer_nk() const { return peer_nk_; }
  // The peer's fully-qualified kernel principal
  // tpm.<ek8>.nexus.<nk8>.boot.<nbk8>, reconstructed from verified keys.
  nal::Principal peer_principal() const;

  // One-way authenticated+encrypted message to a named peer service.
  Status SendSecure(const std::string& service, ByteView payload);
  // Request/response with a simulated-clock deadline. A dropped message or
  // an answer arriving after the deadline is Unavailable — the caller (e.g.
  // a guard consulting a remote authority) treats that as a denial.
  // Equivalent to CallStart + CallFinish back to back.
  Result<Bytes> Call(const std::string& service, ByteView payload, uint64_t timeout_us);

  // The async halves of Call, for overlapping round trips with local work
  // (futures on the simulated clock). CallStart puts the request in flight
  // and returns its id WITHOUT pumping the fabric; the deadline clock
  // starts now. CallFinish pumps the fabric to quiescence and returns the
  // response — Unavailable on loss or a reply past the deadline. Multiple
  // CallStarts may be outstanding; finish each exactly once, in any order.
  Result<uint64_t> CallStart(const std::string& service, ByteView payload,
                             uint64_t timeout_us);
  Result<Bytes> CallFinish(uint64_t request_id);

  uint64_t channel_id() const { return channel_id_; }
  bool is_initiator() const { return initiator_; }
  const NodeId& self_node() const { return self_; }
  const NodeId& peer_node() const { return peer_; }
  Stats stats() const {  // Snapshot by value: counters move concurrently.
    std::lock_guard<std::mutex> lock(data_mu_);
    return stats_;
  }

 private:
  struct Hello {
    Bytes nonce;
    crypto::RsaPublicKey nk;
    crypto::RsaPublicKey ek;
    Bytes ek_attestation;
    Bytes pcr_composite;
    std::string nbk_id;

    Bytes Serialize() const;
    static Result<Hello> Deserialize(ByteView data);
  };

  Hello MakeLocalHello();
  // Chain verification steps (1) and (2) above.
  Status VerifyPeerHello(const Hello& hello);
  // The transcript both NK signatures cover.
  Bytes AuthTranscript(uint8_t role) const;
  void DeriveSessionKeys();
  void Fail(const std::string& reason);

  void HandleHello(const Message& message);
  void SendHelloAck();
  void HandleHelloAck(const Message& message);
  void HandleAuth(const Message& message);
  void HandleData(const Message& message);

  Status SendData(const std::string& service, uint64_t request_id, bool is_response,
                  ByteView payload);

  core::Nexus* local_;
  Transport* transport_;
  ChannelServices* services_;
  NodeId self_;
  NodeId peer_;
  uint64_t channel_id_;
  bool initiator_;

  // Established-ness is read lock-free on the hot path; the store in the
  // handshake handlers publishes the session keys derived just before it.
  std::atomic<ChannelState> state_{ChannelState::kIdle};
  std::string failure_;
  // Serializes concurrent Connect() calls (handshake state is not under
  // data_mu_; handlers are already serialized by the transport pump lock).
  std::mutex connect_mu_;

  Bytes local_hello_bytes_;
  Bytes peer_hello_bytes_;
  Bytes local_nonce_;
  crypto::RsaPublicKey peer_ek_;
  crypto::RsaPublicKey peer_nk_;
  std::string peer_nbk_id_;

  // Session key shares: ours in the clear, both ciphertexts as they went
  // over the wire (the transcript signatures cover the ciphertexts, and
  // RSA padding is randomized, so resends must reuse the exact bytes).
  Bytes local_share_;
  Bytes peer_share_;
  Bytes enc_share_initiator_;
  Bytes enc_share_responder_;
  Bytes auth_payload_;  // Cached for idempotent resends after retries.

  crypto::AesKey enc_key_{};
  Bytes mac_key_;

  // Data-plane mutex: sequence allocation, the replay window, pending
  // responses/deadlines, and stats. Never held across a transport pump or
  // a service handler (both may re-enter SendData).
  mutable std::mutex data_mu_;

  // Replay filter: exact-once within a sliding window. Anything older than
  // the window is rejected outright, which bounds memory on long-lived
  // channels without readmitting duplicates.
  static constexpr uint64_t kReplayWindow = 4096;
  uint64_t send_seq_ = 1;
  uint64_t max_seen_seq_ = 0;
  std::set<uint64_t> seen_seqs_;
  uint64_t next_request_id_ = 1;
  struct PendingResponse {
    Bytes payload;
    uint64_t received_at = 0;
  };
  std::map<uint64_t, PendingResponse> responses_;
  // Deadlines of CallStart requests not yet finished (request id -> the
  // simulated-clock instant after which the reply no longer counts).
  std::map<uint64_t, uint64_t> call_deadlines_;
  Stats stats_;
};

}  // namespace nexus::net

#endif  // NEXUS_NET_CHANNEL_H_
