#include "kernel/decision_cache.h"

namespace nexus::kernel {

namespace {

// Integer mixing (splitmix64 finalizer): the whole point of interned keys
// is that this replaces byte-wise string hashing on every syscall.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashTuple(const AuthzRequest& r) {
  uint64_t packed = (static_cast<uint64_t>(r.op) << 32) | r.obj;
  return Mix64(packed ^ Mix64(r.subject + 0x9e3779b97f4a7c15ULL));
}

}  // namespace

DecisionCache::DecisionCache() : DecisionCache(Config{}) {}

DecisionCache::DecisionCache(const Config& config) { Resize(config); }

void DecisionCache::Resize(const Config& config) {
  config_ = config;
  entries_.assign(config.num_subregions * config.entries_per_subregion, Entry{});
}

void DecisionCache::Clear() {
  for (Entry& e : entries_) {
    e.valid = false;
  }
}

size_t DecisionCache::SubregionIndex(OpId op, ObjectId obj) const {
  // Subject deliberately excluded: all entries for one (operation, object)
  // land in the same subregion so setgoal invalidation is one memset.
  uint64_t packed = (static_cast<uint64_t>(op) << 32) | obj;
  return static_cast<size_t>(Mix64(packed) % config_.num_subregions);
}

DecisionCache::Entry* DecisionCache::Find(const AuthzRequest& request) {
  size_t sub = SubregionIndex(request.op, request.obj);
  uint64_t key = HashTuple(request);
  size_t base = sub * config_.entries_per_subregion;
  size_t start = static_cast<size_t>(key % config_.entries_per_subregion);
  // Linear probe within the subregion.
  for (size_t i = 0; i < config_.entries_per_subregion; ++i) {
    Entry& e = entries_[base + (start + i) % config_.entries_per_subregion];
    if (e.valid && e.subject == request.subject && e.op == request.op &&
        e.obj == request.obj) {
      return &e;
    }
    if (!e.valid) {
      return nullptr;  // Probe chain ends at the first empty slot.
    }
  }
  return nullptr;
}

std::optional<bool> DecisionCache::Lookup(const AuthzRequest& request) {
  Entry* e = Find(request);
  if (e == nullptr) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return e->allow;
}

void DecisionCache::Insert(const AuthzRequest& request, bool allow) {
  size_t sub = SubregionIndex(request.op, request.obj);
  uint64_t key = HashTuple(request);
  size_t base = sub * config_.entries_per_subregion;
  size_t start = static_cast<size_t>(key % config_.entries_per_subregion);
  Entry* victim = nullptr;
  for (size_t i = 0; i < config_.entries_per_subregion; ++i) {
    Entry& e = entries_[base + (start + i) % config_.entries_per_subregion];
    if (e.valid && e.subject == request.subject && e.op == request.op &&
        e.obj == request.obj) {
      victim = &e;  // Update in place.
      break;
    }
    if (!e.valid) {
      victim = &e;
      break;
    }
  }
  if (victim == nullptr) {
    // Subregion full: evict the natural slot (cache is soft state).
    victim = &entries_[base + start];
  }
  victim->valid = true;
  victim->allow = allow;
  victim->subject = request.subject;
  victim->op = request.op;
  victim->obj = request.obj;
  ++stats_.insertions;
}

void DecisionCache::InvalidateEntry(const AuthzRequest& request) {
  // A tombstone-free open-addressed table cannot simply clear one slot
  // without breaking probe chains, so invalidate by rewriting the chain:
  // cheapest correct option at this scale is clearing the subregion slice
  // holding the key's probe chain up to the entry.
  Entry* e = Find(request);
  if (e != nullptr) {
    // Clearing the entry may orphan later probes; clear the whole subregion
    // chain conservatively (bounded by entries_per_subregion).
    size_t sub = SubregionIndex(request.op, request.obj);
    size_t base = sub * config_.entries_per_subregion;
    for (size_t i = 0; i < config_.entries_per_subregion; ++i) {
      entries_[base + i].valid = false;
    }
    ++stats_.invalidated_entries;
  }
}

void DecisionCache::InvalidateSubregion(OpId op, ObjectId obj) {
  size_t sub = SubregionIndex(op, obj);
  size_t base = sub * config_.entries_per_subregion;
  for (size_t i = 0; i < config_.entries_per_subregion; ++i) {
    entries_[base + i].valid = false;
  }
  ++stats_.subregion_invalidations;
}

}  // namespace nexus::kernel
