// The kernel-wide metrics plane.
//
// Named lock-free instruments cheap enough for the authorization hot path:
// counters and gauges are single relaxed atomics, histograms are log2-
// bucketed tallies fed cycle counts from util/cycles.h. Components own
// their instruments through a MetricGroup (so per-instance semantics — a
// fresh Guard starts its counters at zero — are preserved exactly), and
// every group registers with a process-global Registry whose snapshot
// aggregates same-named instruments across instances.
//
// Lifetime: instruments live inside their MetricGroup (deque-backed, so
// pointers handed to the owning component stay stable). When a group is
// destroyed — its component died — the final values are RETIRED into the
// registry's accumulation map instead of vanishing, so a process-lifetime
// snapshot (the bench JSON dump, /stats reads after component churn) still
// reports everything that ever happened.
//
// Threading: Increment/Set/Record are wait-free relaxed atomics — they
// never synchronize data, only tally. Snapshot/Render take the registry
// mutex, then each group's mutex (always in that order; group
// construction/destruction takes the registry mutex without holding its
// own). Counter reads in a snapshot are relaxed loads: a snapshot racing
// live increments sees a value each instrument actually passed through,
// never a torn one.
#ifndef NEXUS_UTIL_METRICS_H_
#define NEXUS_UTIL_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace nexus::metrics {

class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log2-bucketed latency histogram: bucket i counts samples whose bit width
// is i (i.e. sample in [2^(i-1), 2^i)), bucket 0 counts zeros. Recording is
// three relaxed increments; quantiles are estimated from bucket upper
// bounds, which is as exact as a power-of-two binning can be and plenty for
// "did tracing add 5%?" questions.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 65;  // bit_width(uint64_t) in 0..64.

  void Record(uint64_t sample) {
    buckets_[std::bit_width(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t bucket) const {
    return bucket < kNumBuckets ? buckets_[bucket].load(std::memory_order_relaxed) : 0;
  }

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// One instrument's value in a snapshot. Histograms carry their full bucket
// vector so snapshots merge losslessly across instances and retirements.
struct InstrumentValue {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  int64_t value = 0;           // Counter / gauge.
  uint64_t count = 0;          // Histogram.
  uint64_t sum = 0;            // Histogram.
  std::vector<uint64_t> buckets;  // Histogram (kNumBuckets entries).

  void MergeFrom(const InstrumentValue& other);
  // Smallest power-of-two upper bound covering quantile `q` (0..1).
  uint64_t ApproxQuantile(double q) const;
};

using Snapshot = std::map<std::string, InstrumentValue>;

class MetricGroup;

// The process-global instrument index. Components register MetricGroups;
// Snapshot() merges every live group's instruments with the retired totals
// of dead ones, keyed by "<group prefix>.<instrument name>".
class Registry {
 public:
  static Registry& Global();

  // All instruments whose full name starts with `prefix` ("" = everything).
  Snapshot TakeSnapshot(std::string_view prefix = {}) const;

  // procfs-friendly rendering: one "name value" line per instrument,
  // histograms as "name count=N sum=S p50=X p99=Y".
  std::string RenderText(std::string_view prefix = {}) const;
  // Flat JSON object for the bench artifact dump: counters/gauges as
  // numbers, histograms as {"count":..,"sum":..,"p50":..,"p99":..}.
  std::string RenderJson() const;

 private:
  friend class MetricGroup;
  void Register(MetricGroup* group);
  void Unregister(MetricGroup* group);  // Retires the group's final values.

  mutable std::mutex mu_;
  std::set<MetricGroup*> groups_;
  Snapshot retired_;
};

// A component's named instruments under one prefix ("guard", "cache", ...).
// NewCounter/NewGauge/NewHistogram return stable pointers owned by the
// group; creation is thread-safe but intended for construction time.
// Destruction retires final values into the registry (see file comment).
class MetricGroup {
 public:
  MetricGroup(Registry* registry, std::string prefix);
  ~MetricGroup();

  MetricGroup(const MetricGroup&) = delete;
  MetricGroup& operator=(const MetricGroup&) = delete;

  Counter* NewCounter(std::string_view name);
  Gauge* NewGauge(std::string_view name);
  Histogram* NewHistogram(std::string_view name);

  const std::string& prefix() const { return prefix_; }

 private:
  friend class Registry;
  // Merges this group's current values into `out`. Caller holds the
  // registry mutex; takes the group mutex (registry -> group order).
  void CollectInto(Snapshot* out) const;

  Registry* registry_;
  std::string prefix_;
  mutable std::mutex mu_;
  // deques: instrument addresses never move after NewX returns them.
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
};

// Writes Registry::Global().RenderJson() to the path named by the
// NEXUS_METRICS_OUT environment variable, if set. Benchmark mains call
// this at exit so CI archives a metrics snapshot next to each bench
// artifact (and can fail if hot-path counters are all zero).
void DumpRegistryToEnvPath();

}  // namespace nexus::metrics

#endif  // NEXUS_UTIL_METRICS_H_
