// The Nexus kernel simulator.
//
// A single-address-space model of the Nexus microkernel: isolated protection
// domains (IPDs) with subprincipal names, kernel-bound IPC ports,
// interposition on every system call (§3.2), an authorization hook with the
// in-kernel decision cache (§2.8), the introspection namespace (§3.1), and
// a pluggable CPU scheduler. The authorization engine itself (labelstores,
// goalstores, guards) lives one layer up in src/core and plugs in through
// the AuthorizationEngine interface, mirroring the kernel/guard split in
// the paper's Figure 1.
#ifndef NEXUS_KERNEL_KERNEL_H_
#define NEXUS_KERNEL_KERNEL_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/sha256.h"
#include "kernel/decision_cache.h"
#include "kernel/ipc.h"
#include "kernel/procfs.h"
#include "kernel/sched.h"
#include "kernel/syscall_ports.h"
#include "kernel/trace.h"
#include "kernel/types.h"
#include "nal/term.h"
#include "util/metrics.h"
#include "util/status.h"

namespace nexus::kernel {

// Longest object name the charged intern surface accepts: the wire's
// per-slot payload cap plus headroom for the prefixes resource servers
// prepend to caller paths ("file:", "proc:", "port:<id>").
inline constexpr size_t kMaxObjectNameLen = kMaxArgPayload + 64;

// Verdict from an IPC interceptor (§3.2): the reference monitor may inspect
// and modify the message, then allow or block the call.
enum class InterposeVerdict : uint8_t { kAllow, kDeny };

class Interceptor {
 public:
  virtual ~Interceptor() = default;
  // Called before the target handler. May modify `message`.
  virtual InterposeVerdict OnCall(const IpcContext& context, IpcMessage& message) = 0;
  // Called after the handler returns (only if the call was allowed), with
  // the request the handler actually saw — interposition is structural on
  // BOTH directions: a monitor pattern-matches the typed reply slots and
  // rewrites them in place (ArgVec::SetScalar to clamp a u64 or redact an
  // id, reassign reply.data for payloads) with zero reparsing and zero
  // heap strings. kDeny suppresses the reply: the caller sees
  // PermissionDenied instead of the handler's result.
  virtual InterposeVerdict OnReply(const IpcContext& context, const IpcMessage& request,
                                   IpcReply& reply) {
    (void)context;
    (void)request;
    (void)reply;
    return InterposeVerdict::kAllow;
  }
};

// The upcall interface to the guard layer (implemented in src/core). The
// kernel consults it only on decision-cache misses. Requests and decisions
// are the interned AuthzRequest/AuthzDecision types from kernel/types.h.
class AuthorizationEngine {
 public:
  virtual ~AuthorizationEngine() = default;
  virtual AuthzDecision Authorize(const AuthzRequest& request) = 0;
  // Batched evaluation: implementations may amortize credential collection
  // and deduplicate authority consultations across the batch. The default
  // is the serial loop.
  virtual std::vector<AuthzDecision> AuthorizeBatch(std::span<const AuthzRequest> requests) {
    std::vector<AuthzDecision> decisions;
    decisions.reserve(requests.size());
    for (const AuthzRequest& request : requests) {
      decisions.push_back(Authorize(request));
    }
    return decisions;
  }
};

struct Process {
  ProcessId pid = 0;
  ProcessId parent = kKernelProcessId;
  std::string name;
  crypto::Sha256Digest binary_hash{};
  // Liveness flips concurrently with lock-free readers holding a Process*
  // (process records are never erased, so the pointer itself stays valid).
  std::atomic<bool> alive{true};
  // If set, only these system calls may be invoked (a process can
  // relinquish syscalls, as Fauxbook's web server does after init, §4.1).
  // Mutated only under the owning table shard's writer lock.
  std::optional<std::set<Syscall>> allowed_syscalls;
  // Quota root: the ancestor charged for guard-cache quotas (§2.9).
  // Immutable after creation.
  ProcessId quota_root = kKernelProcessId;

  Process() = default;
  Process(Process&& other) noexcept
      : pid(other.pid),
        parent(other.parent),
        name(std::move(other.name)),
        binary_hash(other.binary_hash),
        alive(other.alive.load()),
        allowed_syscalls(std::move(other.allowed_syscalls)),
        quota_root(other.quota_root) {}
};

// Threading (see README "Threading model" for the full contract): the
// kernel is CONCURRENT on every surface an authorization miss can touch.
//
//  - Authorize/AuthorizeBatch are the worker-thread frontend (sharded
//    decision cache + generation-checked inserts, as in PR 3), and the
//    engine behind them is now read-write split and per-subject striped,
//    so independent misses overlap end to end.
//  - The process and port tables are SHARDED under reader-writer locks:
//    lookups (GetProcess, IsAlive, PortOwner, dispatch snapshots) take one
//    shard's reader side; spawn/kill/port-create/destroy take the writer
//    side of the affected shard. Lifecycle mutations therefore run WHILE
//    workers miss — the PR-3 "lifecycle must quiesce the frontend" rule is
//    gone. `lifecycle_generation()` stamps every mutation; a lookup
//    bracketed by equal generations observed a stable table.
//  - Call/Invoke/Interpose snapshot the port/interposition state under
//    reader locks and run handlers with no kernel lock held. A port
//    destroyed mid-call completes its in-flight dispatches against the
//    handler captured at entry (the owner frees handler memory only after
//    in-flight calls drain — unchanged from the single-threaded contract).
//  - procfs and the channel graph carry their own internal locks.
//
// Still single-threaded by contract: wiring (set_engine, set_fs_port,
// ReplaceScheduler, Resize on the decision cache) happens at boot, and the
// Scheduler object itself is externally serialized (the kernel wraps its
// own calls in a mutex; direct scheduler() users stay on one thread).
class Kernel {
 public:
  Kernel();

  // ----------------------------------------------------------- Processes
  // Creates an IPD. `binary` is measured (SHA-256 launch-time hash).
  Result<ProcessId> CreateProcess(const std::string& name, ByteView binary,
                                  ProcessId parent = kKernelProcessId);
  Status KillProcess(ProcessId pid);
  Result<const Process*> GetProcess(ProcessId pid) const;
  bool IsAlive(ProcessId pid) const;
  Result<ProcessId> GetParent(ProcessId pid) const;
  std::vector<ProcessId> Processes() const;
  Status RestrictSyscalls(ProcessId pid, std::set<Syscall> allowed);

  // Bumped on every process/port lifecycle mutation (create, kill, port
  // create/destroy/bind). Concurrent readers can stamp a lookup with the
  // surrounding generations to detect whether lifecycle churn overlapped
  // it — the generation-stamped-lookup analogue of the decision cache's
  // epoch counters.
  uint64_t lifecycle_generation() const { return lifecycle_generation_.load(); }

  // The NAL principal for a process: Nexus.ipd.<pid> (the paper writes
  // /proc/ipd/<pid>; both name the same subprincipal of the kernel).
  nal::Principal KernelPrincipal() const { return nal::Principal(kernel_principal_name_); }
  nal::Principal ProcessPrincipal(ProcessId pid) const;
  // The /proc path alias for a process principal ("/proc/ipd/12").
  static std::string ProcPath(ProcessId pid);

  // --------------------------------------------------------------- Ports
  // Dynamic ports only — ids start at kFirstDynamicPort; everything below
  // is the reserved table in kernel/syscall_ports.h, pre-registered by the
  // constructor.
  Result<PortId> CreatePort(ProcessId owner);
  // Takes ownership of a reserved boot port (kGuardBootPort /
  // kAuthorityBootPort / kFsBootPort) and binds its handler — the boot
  // sequence's fixed-address service registration. Rejects non-boot ids
  // and double claims.
  Status ClaimBootPort(PortId port, ProcessId owner, PortHandler* handler);
  Status DestroyPort(PortId port);
  Status BindHandler(PortId port, PortHandler* handler);
  Result<ProcessId> PortOwner(PortId port) const;
  // Connecting establishes an IPC channel (an edge in the connectivity
  // graph the IPCAnalyzer inspects, §2.2).
  Status ConnectPort(ProcessId pid, PortId port);
  Status DisconnectPort(ProcessId pid, PortId port);
  bool HasChannel(ProcessId pid, PortId port) const;
  // Snapshot of the whole channel graph (IPCAnalyzer's view).
  std::map<ProcessId, std::set<PortId>> ChannelsSnapshot() const;
  std::vector<PortId> Ports() const;
  // The lifecycle_generation() value stamped when `port` was created: a
  // port id observed with a different stamp than before was destroyed and
  // is a different port, even mid-churn.
  Result<uint64_t> PortGeneration(PortId port) const;

  // Synchronous IPC call: marshaling, interposition, authorization, handler
  // dispatch, reply interposition. Safe from worker threads (a miss may
  // upcall a designated guard or an authority port mid-evaluation). A call
  // addressed to a reserved syscall port IS that syscall (the real
  // kernel's SYSCALL_IPCPORT semantics) and routes through Invoke.
  IpcReply Call(ProcessId caller, PortId port, const IpcMessage& message);

  // Batched submission: N messages for ONE port in a single boundary
  // crossing — one trace scope, one port snapshot, one interceptor-chain
  // snapshot, one HandleMany dispatch (servers amortize authorization
  // across the batch via AuthorizeBatch). The interceptor chain still
  // runs PER MESSAGE, forward on call and backward on reply, so every
  // interposition invariant the auditor checks holds for batched chains
  // exactly as for singles. `messages` and `replies` must be the same
  // length; returns the number of OK replies.
  size_t CallMany(ProcessId caller, PortId port, std::span<const IpcMessage> messages,
                  std::span<IpcReply> replies);

  // -------------------------------------------------------- Interposition
  // Installs an interceptor on a port. Subject to authorization (operation
  // "interpose" on object "port:<id>"). Interceptors compose: the newest
  // runs first. Returns a token for removal.
  Result<uint64_t> Interpose(ProcessId monitor, PortId port, Interceptor* interceptor);
  Status RemoveInterposition(uint64_t token);
  // Global switch: when disabled, Call() skips marshaling and interceptors
  // entirely ("Nexus bare" in Table 1).
  void set_interposition_enabled(bool enabled) { interposition_enabled_.store(enabled); }
  bool interposition_enabled() const { return interposition_enabled_.load(); }

  // ------------------------------------------------------------- Syscalls
  // The Table-1 system call surface. File operations forward over IPC to
  // the handler bound on `fs_port` (a user-level server).
  IpcReply Invoke(ProcessId caller, Syscall call, const IpcMessage& message);
  void set_fs_port(PortId port) { fs_port_.store(port); }
  PortId fs_port() const { return fs_port_.load(); }
  // Syscall interposition (§3.2) attaches to the RESERVED port of the
  // syscall — SyscallIpcPort(call) in kernel/syscall_ports.h, a
  // compile-time constant. The per-process map+mutex this replaced is
  // gone: Invoke computes its interposition port with pure arithmetic.

  // --------------------------------------------------------- Authorization
  void set_engine(AuthorizationEngine* engine) { engine_ = engine; }
  AuthorizationEngine* engine() const { return engine_; }
  void set_decision_cache_enabled(bool enabled) { decision_cache_enabled_.store(enabled); }
  bool decision_cache_enabled() const { return decision_cache_enabled_.load(); }
  DecisionCache& decision_cache() { return decision_cache_; }

  // The guarded-operation fast path: decision cache, then guard upcall.
  // The interned form is the hot path; the string form interns and
  // forwards. It MUST intern (not Find): unknown names still reach the
  // pluggable engine, whose policy for them is its own (a deny-all engine
  // denies names nobody ever registered). Growth through this untrusted
  // surface is BOUNDED: BOTH names interned here are charged to the
  // subject's quota root — objects against `object_name_quota()`, ops
  // against `op_name_quota()` — and a root past its cap is denied
  // outright (§2.9 applied to the name tables) — a workload probing with
  // endless novel names can no longer grow either table for the process
  // lifetime.
  //
  // Authorize and AuthorizeBatch are the kernel's CONCURRENT frontend:
  // cache hits contend only on the subject's shard; misses upcall the
  // engine (read-write split, per-subject striped) and insert with a
  // generation check so a verdict that raced a setgoal/setproof
  // invalidation is dropped, not cached stale. Process/port lifecycle and
  // Call/Invoke are concurrent-safe too — see the class comment.
  Status Authorize(const AuthzRequest& request);
  Status Authorize(ProcessId subject, std::string_view operation, std::string_view object);
  // Batched fast path: cache hits answered inline, misses forwarded to the
  // engine's AuthorizeBatch in one upcall (which deduplicates authority
  // consultations), cacheable verdicts inserted on the way out.
  std::vector<Status> AuthorizeBatch(std::span<const AuthzRequest> requests);

  // Interns an object name on behalf of `subject`, charging the subject's
  // quota root for genuinely novel names. Over-quota roots get
  // ResourceExhausted-flavored PermissionDenied instead of table growth.
  // Trusted resource servers (the file server, the procfs syscall) route
  // their caller-supplied names through this too.
  Result<ObjectId> InternObjectCharged(ProcessId subject, std::string_view object);
  // Per-quota-root cap on novel object names interned via untrusted
  // surfaces. 0 = unlimited. Boot-time configuration.
  void set_object_name_quota(size_t cap) { object_name_quota_.store(cap); }
  size_t object_name_quota() const { return object_name_quota_.load(); }

  // The op-table mirror of InternObjectCharged: operation names are also
  // caller-influenced (the Authorize string shim, IpcMessage::FromLegacy
  // messages arriving over Call/Invoke/ipc_call), so novel ones are
  // charged to the subject's quota root and denied with a reason past
  // `op_name_quota()`. Names past kMaxLegacyOpName are rejected. The
  // legitimate op vocabulary is tiny and interned by servers at startup,
  // so a charge here almost always means probing.
  Result<OpId> InternOpCharged(ProcessId subject, std::string_view operation);
  void set_op_name_quota(size_t cap) { op_name_quota_.store(cap); }
  size_t op_name_quota() const { return op_name_quota_.load(); }

  // The one untrusted-text policy for v1-compatible port handlers, in one
  // place: slot `i` as an op/object — typed ids pass through, legacy text
  // NAMES intern through the charged surfaces above (billed to `caller`).
  Result<OpId> ResolveOpArg(ProcessId caller, const IpcMessage& message, size_t i);
  Result<ObjectId> ResolveObjectArg(ProcessId caller, const IpcMessage& message, size_t i);

  // Invalidation entry points, called by the core layer when proofs or
  // goals change (§2.8). The optional out-params surface the exact
  // post-bump decision-cache generations (see DecisionCache::Invalidate*);
  // the engine stamps mutation-log records with them.
  void OnProofUpdate(const AuthzRequest& request, uint64_t* post_gen = nullptr);
  void OnProofUpdate(ProcessId subject, std::string_view operation, std::string_view object) {
    OnProofUpdate(AuthzRequest::Of(subject, operation, object));
  }
  void OnGoalUpdate(OpId op, ObjectId obj, std::vector<uint64_t>* post_gens = nullptr);
  void OnGoalUpdate(std::string_view operation, std::string_view object) {
    OnGoalUpdate(InternOp(operation), InternObject(object));
  }

  // Cluster fan-out hook (src/net/mesh): invoked AFTER a local goal/proof
  // mutation bumped this kernel's decision cache, with the (op, obj) pair
  // whose subregion was retired — the mesh layer broadcasts an epoch-
  // stamped invalidation to peers so THEIR cached verdicts retire too.
  // Install during boot wiring, before concurrent traffic; the sink runs
  // on the mutating thread with no kernel locks held and must not call
  // back into OnGoalUpdate/OnProofUpdate (the mesh applies remote
  // invalidations straight to the cache for exactly that reason).
  using InvalidationSink = std::function<void(OpId op, ObjectId obj)>;
  void set_invalidation_sink(InvalidationSink sink) { invalidation_sink_ = std::move(sink); }

  // ----------------------------------------------------------- Services
  IntrospectionFs& procfs() { return procfs_; }
  const IntrospectionFs& procfs() const { return procfs_; }
  // Introspection for the proc-read object memo ("proc:<path>" ids are
  // built once per novel path, then served from here with no string
  // concatenation — the procfs mirror of the file server's fd memo).
  size_t ProcObjectMemoSize() const {
    std::shared_lock<std::shared_mutex> lock(proc_memo_mu_);
    return proc_object_memo_.size();
  }
  Scheduler& scheduler() { return *scheduler_; }
  void ReplaceScheduler(std::unique_ptr<Scheduler> scheduler);

  // Microsecond clock; overridable for deterministic tests.
  uint64_t NowMicros() const;
  void set_time_source(std::function<uint64_t()> source) { time_source_ = std::move(source); }

 private:
  struct Port {
    PortId id = 0;
    ProcessId owner = kKernelProcessId;
    PortHandler* handler = nullptr;
    // lifecycle_generation() value when the port was created; dispatch
    // snapshots carry it so a call can tell it raced a destroy/recreate.
    uint64_t generation = 0;
  };
  struct Interposition {
    uint64_t token = 0;
    PortId port = 0;
    ProcessId monitor = kKernelProcessId;
    Interceptor* interceptor = nullptr;
  };

  // Table sharding: same Mix64 as the decision cache, so a subject whose
  // cache lookups scale also scales its process-record reads.
  static constexpr size_t kTableShards = 8;
  struct ProcessShard {
    mutable std::shared_mutex mu;
    // std::map: node stability lets GetProcess hand out long-lived
    // pointers (records are marked dead, never erased).
    std::map<ProcessId, Process> procs;
  };
  struct PortShard {
    mutable std::shared_mutex mu;
    std::unordered_map<PortId, Port> ports;
  };
  static size_t ShardOfId(uint64_t id) { return Mix64(id) % kTableShards; }

  // Snapshot of one port under its shard's reader lock; nullopt if absent.
  std::optional<Port> SnapshotPort(PortId port) const;

  // Newest-first interceptor chain for `port`, snapshotted under the
  // reader lock — or not at all: the interpose_count_ fast path makes the
  // no-monitors case one relaxed load, no lock, no allocation.
  void SnapshotInterceptors(PortId port, std::vector<Interceptor*>* active) const;

  IpcReply Dispatch(ProcessId caller, PortId port, const IpcMessage& message);
  // The post-interposition syscall dispatch — split from Invoke so the
  // reply-direction interceptor chain runs over every branch's result.
  // Direct-indexed: kSyscallTable[call] is a member-function pointer, the
  // in-kernel analogue of the reserved-port array dispatch.
  IpcReply InvokeDispatch(ProcessId caller, Syscall call, ProcessId parent,
                          IpcMessage& working);

  // One handler per syscall, direct-indexed by the enumerator. The table
  // is static_assert-sized against kSyscallCount in kernel.cc.
  using SyscallHandler = IpcReply (Kernel::*)(ProcessId caller, ProcessId parent,
                                              IpcMessage& working);
  IpcReply SysNull(ProcessId caller, ProcessId parent, IpcMessage& working);
  IpcReply SysGetPpid(ProcessId caller, ProcessId parent, IpcMessage& working);
  IpcReply SysGetTimeOfDay(ProcessId caller, ProcessId parent, IpcMessage& working);
  IpcReply SysYield(ProcessId caller, ProcessId parent, IpcMessage& working);
  IpcReply SysFileForward(ProcessId caller, ProcessId parent, IpcMessage& working);
  IpcReply SysControl(ProcessId caller, ProcessId parent, IpcMessage& working);
  IpcReply SysIpcCall(ProcessId caller, ProcessId parent, IpcMessage& working);
  IpcReply SysProcRead(ProcessId caller, ProcessId parent, IpcMessage& working);
  void PublishProcessNodes(const Process& process);

  // The kernel boundary for legacy messages: resolves a pending FromLegacy
  // operation name through the caller-charged op quota and rejects slot
  // overflow. `message` is mutated in place (callers pass their working
  // copy). No-op for typed messages — the hot path never pays.
  Status ResolveLegacy(ProcessId caller, IpcMessage& message);
  // The memoized "proc:<path>" object id (interning charged to `caller`
  // on first sight of the path).
  Result<ObjectId> ProcObjectFor(ProcessId caller, std::string_view path);
  // The §2.9 ancestor charged for `subject`'s name-table growth.
  ProcessId QuotaRootOf(ProcessId subject) const;

  std::string kernel_principal_name_ = "Nexus";
  ProcessShard process_shards_[kTableShards];
  PortShard port_shards_[kTableShards];

  // The channel graph, under its own reader-writer lock.
  mutable std::shared_mutex channels_mu_;
  std::map<ProcessId, std::set<PortId>> channels_;

  // Interposition list: read on every interposed Call/Invoke, written only
  // by Interpose/RemoveInterposition. `interpose_count_` shadows its size
  // so the bare hot path skips the reader lock entirely when no monitor
  // is installed anywhere.
  mutable std::shared_mutex interpose_mu_;
  std::vector<Interposition> interpositions_;
  std::atomic<size_t> interpose_count_{0};

  // Serializes the kernel's own scheduler calls (kill, yield).
  std::mutex sched_mu_;

  std::atomic<ProcessId> next_pid_{1};
  std::atomic<PortId> next_port_{kFirstDynamicPort};
  std::atomic<uint64_t> next_interpose_token_{1};
  std::atomic<uint64_t> lifecycle_generation_{1};
  std::atomic<bool> interposition_enabled_{true};

  AuthorizationEngine* engine_ = nullptr;
  std::atomic<bool> decision_cache_enabled_{true};
  DecisionCache decision_cache_;
  InvalidationSink invalidation_sink_;  // Boot-wired; see set_invalidation_sink.

  // §2.9 name quotas for the untrusted intern surfaces. The op vocabulary
  // is orders of magnitude smaller than the object space, so its default
  // cap is too.
  std::atomic<size_t> object_name_quota_{65536};
  std::atomic<size_t> op_name_quota_{4096};
  std::mutex name_quota_mu_;
  std::unordered_map<ProcessId, size_t> object_names_charged_;
  std::unordered_map<ProcessId, size_t> op_names_charged_;

  // proc-read path -> interned "proc:<path>" ObjectId (satellite of the
  // interned-fast-path arc: the last remaining per-call string build).
  mutable std::shared_mutex proc_memo_mu_;
  std::unordered_map<std::string, ObjectId, TransparentStringHash, TransparentStringEq>
      proc_object_memo_;

  IntrospectionFs procfs_;
  std::unique_ptr<Scheduler> scheduler_;
  std::atomic<PortId> fs_port_{0};
  std::function<uint64_t()> time_source_;

  // Metrics plane ("kernel.*"): hot-path counters are always-on relaxed
  // increments; the latency histograms record only on traced calls (the
  // flight recorder's toggle gates the expensive part of observability).
  metrics::MetricGroup metrics_{&metrics::Registry::Global(), "kernel"};
  metrics::Counter* calls_ = metrics_.NewCounter("calls");
  metrics::Counter* syscalls_ = metrics_.NewCounter("syscalls");
  metrics::Counter* authorize_requests_ = metrics_.NewCounter("authorize_requests");
  metrics::Counter* authorize_denies_ = metrics_.NewCounter("authorize_denies");
  metrics::Histogram* authorize_cycles_ = metrics_.NewHistogram("authorize_cycles");
  metrics::Histogram* call_cycles_ = metrics_.NewHistogram("call_cycles");
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_KERNEL_H_
