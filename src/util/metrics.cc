#include "util/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <tuple>
#include <utility>

namespace nexus::metrics {

void InstrumentValue::MergeFrom(const InstrumentValue& other) {
  value += other.value;
  count += other.count;
  sum += other.sum;
  if (!other.buckets.empty()) {
    if (buckets.size() < other.buckets.size()) {
      buckets.resize(other.buckets.size(), 0);
    }
    for (size_t i = 0; i < other.buckets.size(); ++i) {
      buckets[i] += other.buckets[i];
    }
  }
}

uint64_t InstrumentValue::ApproxQuantile(double q) const {
  if (count == 0 || buckets.empty()) {
    return 0;
  }
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank >= count) {
    rank = count - 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) {
      // Bucket i holds samples with bit_width == i: upper bound 2^i - 1.
      return i == 0 ? 0 : (i >= 64 ? ~0ULL : (1ULL << i) - 1);
    }
  }
  return ~0ULL;
}

Registry& Registry::Global() {
  // Leaked: instruments are touched from thread_local destructors and
  // process-exit dump hooks, so the registry must outlive static teardown.
  static Registry* global = new Registry();
  return *global;
}

void Registry::Register(MetricGroup* group) {
  std::lock_guard<std::mutex> lock(mu_);
  groups_.insert(group);
}

void Registry::Unregister(MetricGroup* group) {
  std::lock_guard<std::mutex> lock(mu_);
  groups_.erase(group);
  // Retire the final values: process-lifetime totals survive the component.
  group->CollectInto(&retired_);
}

Snapshot Registry::TakeSnapshot(std::string_view prefix) const {
  Snapshot merged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    merged = retired_;
    for (const MetricGroup* group : groups_) {
      group->CollectInto(&merged);
    }
  }
  if (prefix.empty()) {
    return merged;
  }
  Snapshot filtered;
  for (auto& [name, value] : merged) {
    if (name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0 &&
        name[prefix.size()] == '.') {
      filtered.emplace(name, std::move(value));
    }
  }
  return filtered;
}

std::string Registry::RenderText(std::string_view prefix) const {
  Snapshot snapshot = TakeSnapshot(prefix);
  std::string out;
  for (const auto& [name, v] : snapshot) {
    out += name;
    if (v.kind == InstrumentValue::Kind::kHistogram) {
      out += " count=" + std::to_string(v.count) + " sum=" + std::to_string(v.sum) +
             " p50=" + std::to_string(v.ApproxQuantile(0.5)) +
             " p99=" + std::to_string(v.ApproxQuantile(0.99));
    } else {
      out += " " + std::to_string(v.value);
    }
    out += '\n';
  }
  return out;
}

std::string Registry::RenderJson() const {
  Snapshot snapshot = TakeSnapshot();
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : snapshot) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n  \"" + name + "\": ";  // Instrument names are identifier-safe.
    if (v.kind == InstrumentValue::Kind::kHistogram) {
      out += "{\"count\": " + std::to_string(v.count) + ", \"sum\": " + std::to_string(v.sum) +
             ", \"p50\": " + std::to_string(v.ApproxQuantile(0.5)) +
             ", \"p99\": " + std::to_string(v.ApproxQuantile(0.99)) + "}";
    } else {
      out += std::to_string(v.value);
    }
  }
  out += "\n}\n";
  return out;
}

MetricGroup::MetricGroup(Registry* registry, std::string prefix)
    : registry_(registry), prefix_(std::move(prefix)) {
  registry_->Register(this);
}

MetricGroup::~MetricGroup() { registry_->Unregister(this); }

// Instruments hold atomics (immovable), so the pairs are built in place.
Counter* MetricGroup::NewCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &counters_
              .emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                            std::forward_as_tuple())
              .second;
}

Gauge* MetricGroup::NewGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &gauges_
              .emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                            std::forward_as_tuple())
              .second;
}

Histogram* MetricGroup::NewHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &histograms_
              .emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                            std::forward_as_tuple())
              .second;
}

void MetricGroup::CollectInto(Snapshot* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    InstrumentValue v;
    v.kind = InstrumentValue::Kind::kCounter;
    v.value = static_cast<int64_t>(counter.Value());
    (*out)[prefix_ + "." + name].MergeFrom(v);
    (*out)[prefix_ + "." + name].kind = InstrumentValue::Kind::kCounter;
  }
  for (const auto& [name, gauge] : gauges_) {
    InstrumentValue v;
    v.kind = InstrumentValue::Kind::kGauge;
    v.value = gauge.Value();
    (*out)[prefix_ + "." + name].MergeFrom(v);
    (*out)[prefix_ + "." + name].kind = InstrumentValue::Kind::kGauge;
  }
  for (const auto& [name, histogram] : histograms_) {
    InstrumentValue v;
    v.kind = InstrumentValue::Kind::kHistogram;
    v.count = histogram.Count();
    v.sum = histogram.Sum();
    v.buckets.resize(Histogram::kNumBuckets);
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      v.buckets[i] = histogram.BucketCount(i);
    }
    InstrumentValue& slot = (*out)[prefix_ + "." + name];
    slot.MergeFrom(v);
    slot.kind = InstrumentValue::Kind::kHistogram;
  }
}

void DumpRegistryToEnvPath() {
  const char* path = std::getenv("NEXUS_METRICS_OUT");
  if (path == nullptr || path[0] == '\0') {
    return;
  }
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    return;
  }
  std::string json = Registry::Global().RenderJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

}  // namespace nexus::metrics
