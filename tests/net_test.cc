#include <gtest/gtest.h>

#include "apps/federation.h"
#include "kernel/ipc.h"
#include "nal/parser.h"
#include "net/cert_exchange.h"
#include "net/channel.h"
#include "net/node.h"
#include "net/remote_authority.h"
#include "net/transport.h"
#include "tpm/tpm.h"

namespace nexus::net {
namespace {

nal::Formula F(std::string_view text) {
  Result<nal::Formula> f = nal::ParseFormula(text);
  EXPECT_TRUE(f.ok()) << text << " -> " << f.status().ToString();
  return f.ok() ? *f : nullptr;
}

// ------------------------------------------------------------- Transport

class RecordingEndpoint : public Endpoint {
 public:
  void OnMessage(const Message& message) override { received.push_back(message); }
  std::vector<Message> received;
};

TEST(TransportTest, DeliversInTimestampOrder) {
  Transport transport(1);
  RecordingEndpoint a, b;
  ASSERT_TRUE(transport.Attach("a", &a).ok());
  ASSERT_TRUE(transport.Attach("b", &b).ok());
  transport.SetLink("a", "b", LinkConfig{.latency_us = 100, .drop_rate = 0.0});

  ASSERT_TRUE(transport.Send(Message{"a", "b", 1, "first", ToBytes("1")}).ok());
  ASSERT_TRUE(transport.Send(Message{"a", "b", 1, "second", ToBytes("2")}).ok());
  EXPECT_EQ(transport.DeliverAll(), 2u);
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(b.received[0].kind, "first");
  EXPECT_EQ(b.received[1].kind, "second");
  // The simulated clock advanced by the link latency.
  EXPECT_EQ(transport.now_us(), 100u);
}

TEST(TransportTest, DropsAreCountedAndInvisibleToSender) {
  Transport transport(2);
  RecordingEndpoint b;
  ASSERT_TRUE(transport.Attach("b", &b).ok());
  transport.SetLink("a", "b", LinkConfig{.latency_us = 10, .drop_rate = 1.0});
  ASSERT_TRUE(transport.Send(Message{"a", "b", 1, "doomed", ToBytes("x")}).ok());
  EXPECT_EQ(transport.DeliverAll(), 0u);
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(transport.stats().dropped, 1u);
}

TEST(TransportTest, UnknownDestinationIsAnError) {
  Transport transport(3);
  EXPECT_FALSE(transport.Send(Message{"a", "nowhere", 1, "x", {}}).ok());
}

// ------------------------------------------------------------- Handshake

struct TwoInstances {
  TwoInstances()
      : rng_a(101),
        rng_b(202),
        tpm_a(rng_a),
        tpm_b(rng_b),
        nexus_a(&tpm_a, core::NexusOptions{.seed = 1}),
        nexus_b(&tpm_b, core::NexusOptions{.seed = 2}),
        transport(7) {
    // Mutual out-of-band EK registration (the default trusted setup).
    nexus_a.RegisterPeer("b", tpm_b.endorsement_public_key());
    nexus_b.RegisterPeer("a", tpm_a.endorsement_public_key());
    node_a = std::make_unique<NetNode>(&nexus_a, &transport, "a");
    node_b = std::make_unique<NetNode>(&nexus_b, &transport, "b");
  }

  Rng rng_a, rng_b;
  tpm::Tpm tpm_a, tpm_b;
  core::Nexus nexus_a, nexus_b;
  Transport transport;
  std::unique_ptr<NetNode> node_a, node_b;
};

TEST(AttestedChannelTest, HandshakeEstablishesBothSides) {
  TwoInstances w;
  Result<AttestedChannel*> channel = w.node_a->Connect("b");
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  EXPECT_TRUE((*channel)->established());

  AttestedChannel* responder = w.node_b->ChannelTo("a");
  ASSERT_NE(responder, nullptr);
  EXPECT_TRUE(responder->established());

  // Each side attests the peer's full TPM-rooted principal chain.
  EXPECT_EQ((*channel)->peer_principal().ToString(),
            w.nexus_b.ExternalKernelPrincipal().ToString());
  EXPECT_EQ(responder->peer_principal().ToString(),
            w.nexus_a.ExternalKernelPrincipal().ToString());
}

TEST(AttestedChannelTest, WrongEkPeerIsRejected) {
  Rng rng_a(11), rng_b(22), rng_evil(33);
  tpm::Tpm tpm_a(rng_a), tpm_b(rng_b);
  core::Nexus nexus_a(&tpm_a, core::NexusOptions{.seed = 1});
  core::Nexus nexus_b(&tpm_b, core::NexusOptions{.seed = 2});
  // A pins the WRONG key for b (an impostor EK), b trusts a correctly.
  crypto::RsaKeyPair impostor = crypto::GenerateRsaKeyPair(rng_evil, 512);
  nexus_a.RegisterPeer("b", impostor.public_key);
  nexus_b.RegisterPeer("a", tpm_a.endorsement_public_key());

  Transport transport(7);
  NetNode node_a(&nexus_a, &transport, "a");
  NetNode node_b(&nexus_b, &transport, "b");
  Result<AttestedChannel*> channel = node_a.Connect("b");
  EXPECT_FALSE(channel.ok());
  EXPECT_EQ(channel.status().code(), ErrorCode::kUnauthenticated);
}

TEST(AttestedChannelTest, UnregisteredPeerIsRejectedByResponder) {
  Rng rng_a(11), rng_b(22);
  tpm::Tpm tpm_a(rng_a), tpm_b(rng_b);
  core::Nexus nexus_a(&tpm_a, core::NexusOptions{.seed = 1});
  core::Nexus nexus_b(&tpm_b, core::NexusOptions{.seed = 2});
  // A trusts b, but b has never heard of a: the responder rejects the
  // hello, so the initiator never completes.
  nexus_a.RegisterPeer("b", tpm_b.endorsement_public_key());

  Transport transport(7);
  NetNode node_a(&nexus_a, &transport, "a");
  NetNode node_b(&nexus_b, &transport, "b");
  Result<AttestedChannel*> channel = node_a.Connect("b");
  EXPECT_FALSE(channel.ok());
  AttestedChannel* responder = node_b.ChannelTo("a");
  ASSERT_NE(responder, nullptr);
  EXPECT_EQ(responder->state(), ChannelState::kFailed);
}

TEST(AttestedChannelTest, JunkHelloCannotPoisonPeerRouting) {
  TwoInstances w;
  // An attacker injects a garbage hello claiming to be node "b" before any
  // legitimate contact. The resulting dead responder channel must not
  // block a real handshake.
  w.transport.Send(
      Message{"b", "a", w.transport.AllocateChannelId(), "hello", ToBytes("garbage")});
  w.transport.DeliverAll();
  Result<AttestedChannel*> channel = w.node_a->Connect("b");
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  EXPECT_TRUE((*channel)->established());

  // Nor may a junk hello shadow the now-established channel.
  w.transport.Send(
      Message{"b", "a", w.transport.AllocateChannelId(), "hello", ToBytes("more garbage")});
  w.transport.DeliverAll();
  Result<AttestedChannel*> again = w.node_a->Connect("b");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *channel);
}

TEST(AttestedChannelTest, HandshakeSurvivesMessageLossViaRetry) {
  TwoInstances w;
  w.transport.SetLink("a", "b", LinkConfig{.latency_us = 50, .drop_rate = 0.5});
  bool established = false;
  for (int attempt = 0; attempt < 32 && !established; ++attempt) {
    Result<AttestedChannel*> channel = w.node_a->Connect("b");
    established = channel.ok() && (*channel)->established();
  }
  EXPECT_TRUE(established);
  EXPECT_GT(w.transport.stats().dropped, 0u);
}

// ----------------------------------------------------------- Secure data

// An echo service for exercising the request/response path.
class EchoService : public Service {
 public:
  Result<Bytes> Handle(AttestedChannel& channel, ByteView request) override {
    (void)channel;
    Bytes reply = ToBytes("echo:");
    Append(reply, request);
    return reply;
  }
};

TEST(AttestedChannelTest, CallRoundTripsThroughService) {
  TwoInstances w;
  EchoService echo;
  w.node_b->RegisterService("echo", &echo);
  AttestedChannel* channel = *w.node_a->Connect("b");
  Result<Bytes> reply = channel->Call("echo", ToBytes("hi"), /*timeout_us=*/100000);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(ToString(*reply), "echo:hi");
}

// A lossy fabric must never wedge a handshake permanently. Two heals make
// that true: (1) Connect() retries resend the SAME hello bytes — the
// responder pins the first hello on a channel id and answers duplicates
// with its cached hello_ack, so a regenerated hello would be ignored
// forever; (2) a responder that missed the final auth re-acks when data
// arrives mid-handshake, and the established initiator answers a duplicate
// ack by resending its cached auth. Each transport seed is a deterministic
// loss schedule; before heal (1) several of these seeds wedged forever.
TEST(AttestedChannelTest, HandshakeAndDataHealAfterHeavyLoss) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng_a(101), rng_b(202);
    tpm::Tpm tpm_a(rng_a), tpm_b(rng_b);
    core::Nexus nexus_a(&tpm_a, core::NexusOptions{.seed = 1});
    core::Nexus nexus_b(&tpm_b, core::NexusOptions{.seed = 2});
    nexus_a.RegisterPeer("b", tpm_b.endorsement_public_key());
    nexus_b.RegisterPeer("a", tpm_a.endorsement_public_key());
    Transport transport(seed);
    transport.SetLink("a", "b", LinkConfig{50, /*drop_rate=*/0.45});
    NetNode node_a(&nexus_a, &transport, "a");
    NetNode node_b(&nexus_b, &transport, "b");
    EchoService echo;
    node_b.RegisterService("echo", &echo);

    AttestedChannel* channel = nullptr;
    for (int attempt = 0; attempt < 200 && channel == nullptr; ++attempt) {
      Result<AttestedChannel*> result = node_a.Connect("b");
      if (result.ok()) {
        channel = *result;
      }
    }
    ASSERT_NE(channel, nullptr) << "handshake wedged, transport seed " << seed;

    // Heal the link. A retried Call must flow even when the responder
    // missed the final auth: the first data message triggers the re-ack
    // that completes the responder's side of the handshake.
    transport.SetLink("a", "b", LinkConfig{50, /*drop_rate=*/0.0});
    bool flowed = false;
    for (int attempt = 0; attempt < 4 && !flowed; ++attempt) {
      Result<Bytes> reply = channel->Call("echo", ToBytes("heal"), /*timeout_us=*/100000);
      if (reply.ok()) {
        EXPECT_EQ(ToString(*reply), "echo:heal");
        flowed = true;
      }
    }
    EXPECT_TRUE(flowed) << "data never flowed after heal, transport seed " << seed;
    AttestedChannel* responder = node_b.ChannelTo("a");
    ASSERT_NE(responder, nullptr);
    EXPECT_TRUE(responder->established());
  }
}

// A tee that records raw fabric frames destined to one node, then forwards
// them — the attacker model for tamper/replay tests (the fabric is
// untrusted; only the channel crypto defends).
class TeeEndpoint : public Endpoint {
 public:
  explicit TeeEndpoint(Endpoint* inner) : inner_(inner) {}
  void OnMessage(const Message& message) override {
    recorded.push_back(message);
    inner_->OnMessage(message);
  }
  Endpoint* inner_;
  std::vector<Message> recorded;
};

TEST(AttestedChannelTest, ReplayedDataFrameIsRejectedOnce) {
  TwoInstances w;
  EchoService echo;
  w.node_b->RegisterService("echo", &echo);
  AttestedChannel* channel = *w.node_a->Connect("b");

  // Interpose on b's fabric endpoint AFTER the handshake.
  w.transport.Detach("b");
  TeeEndpoint tee(w.node_b.get());
  ASSERT_TRUE(w.transport.Attach("b", &tee).ok());

  ASSERT_TRUE(channel->SendSecure("echo", ToBytes("once")).ok());
  w.transport.DeliverAll();
  AttestedChannel* responder = w.node_b->ChannelTo("a");
  ASSERT_EQ(responder->stats().data_received, 1u);

  // Replay the recorded data frame: authenticated but already-seen
  // sequence number -> rejected, exactly-once delivery preserved.
  ASSERT_FALSE(tee.recorded.empty());
  Message replay = tee.recorded.back();
  ASSERT_EQ(replay.kind, "data");
  w.node_b->OnMessage(replay);
  EXPECT_EQ(responder->stats().data_received, 1u);
  EXPECT_EQ(responder->stats().replays_rejected, 1u);
}

TEST(AttestedChannelTest, TamperedDataFrameIsRejected) {
  TwoInstances w;
  EchoService echo;
  w.node_b->RegisterService("echo", &echo);
  AttestedChannel* channel = *w.node_a->Connect("b");

  w.transport.Detach("b");
  TeeEndpoint tee(w.node_b.get());
  ASSERT_TRUE(w.transport.Attach("b", &tee).ok());
  ASSERT_TRUE(channel->SendSecure("echo", ToBytes("payload")).ok());
  w.transport.DeliverAll();

  AttestedChannel* responder = w.node_b->ChannelTo("a");
  uint64_t received_before = responder->stats().data_received;
  Message tampered = tee.recorded.back();
  ASSERT_EQ(tampered.kind, "data");
  tampered.payload[tampered.payload.size() / 2] ^= 0x40;  // Flip ciphertext bits.
  w.node_b->OnMessage(tampered);
  EXPECT_EQ(responder->stats().data_received, received_before);
  EXPECT_GE(responder->stats().bad_tags_rejected, 1u);
}

// ---------------------------------------------------- Certificate exchange

TEST(CertificateExchangeTest, ShipsLabelAcrossInstances) {
  TwoInstances w;
  kernel::ProcessId gateway = *w.nexus_a.CreateProcess("gateway", ToBytes("g"));
  CertificateExchange importer(w.node_a.get(), gateway);
  CertificateExchange pusher(w.node_b.get(), 0);

  kernel::ProcessId prover = *w.nexus_b.CreateProcess("prover", ToBytes("p"));
  core::LabelHandle label = *w.nexus_b.engine().Say(prover, "isTypeSafe(PGM)");
  Result<core::LabelHandle> shipped = pusher.PushLabel("a", prover, label);
  ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();

  // The imported label is a usable credential on instance a with the
  // TPM-rooted external speaker.
  Result<nal::Formula> imported = w.nexus_a.engine().StoreFor(gateway).Get(*shipped);
  ASSERT_TRUE(imported.ok());
  EXPECT_EQ((*imported)->speaker().ToString().substr(0, 4), "tpm.");
  EXPECT_TRUE(nal::Equals((*imported)->child1(), F("isTypeSafe(PGM)")));
  EXPECT_EQ(importer.stats().imported, 1u);
}

TEST(CertificateExchangeTest, DuplicatePushIsIdempotent) {
  TwoInstances w;
  kernel::ProcessId gateway = *w.nexus_a.CreateProcess("gateway", ToBytes("g"));
  CertificateExchange importer(w.node_a.get(), gateway);
  CertificateExchange pusher(w.node_b.get(), 0);

  kernel::ProcessId prover = *w.nexus_b.CreateProcess("prover", ToBytes("p"));
  core::Certificate cert =
      *w.nexus_b.ExternalizeLabel(prover, *w.nexus_b.engine().Say(prover, "ok()"));
  Result<core::LabelHandle> first = pusher.PushCertificate("a", cert);
  Result<core::LabelHandle> second = pusher.PushCertificate("a", cert);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // Replay converges, no duplicate label.
  EXPECT_EQ(w.nexus_a.engine().StoreFor(gateway).size(), 1u);
}

TEST(CertificateExchangeTest, TamperedCertificateIsRejected) {
  TwoInstances w;
  kernel::ProcessId gateway = *w.nexus_a.CreateProcess("gateway", ToBytes("g"));
  CertificateExchange importer(w.node_a.get(), gateway);
  CertificateExchange pusher(w.node_b.get(), 0);

  kernel::ProcessId prover = *w.nexus_b.CreateProcess("prover", ToBytes("p"));
  core::Certificate cert =
      *w.nexus_b.ExternalizeLabel(prover, *w.nexus_b.engine().Say(prover, "harmless()"));
  cert.statement = F(cert.statement->speaker().ToString() + " says evil()");
  Result<core::LabelHandle> shipped = pusher.PushCertificate("a", cert);
  EXPECT_FALSE(shipped.ok());
  EXPECT_EQ(w.nexus_a.engine().StoreFor(gateway).size(), 0u);
  EXPECT_EQ(importer.stats().rejected, 1u);
}

TEST(CertificateExchangeTest, CertificateFromUnregisteredInstanceIsRejected) {
  TwoInstances w;
  kernel::ProcessId gateway = *w.nexus_a.CreateProcess("gateway", ToBytes("g"));
  CertificateExchange importer(w.node_a.get(), gateway);
  CertificateExchange pusher(w.node_b.get(), 0);

  // A third instance (TPM unknown to a) mints a perfectly valid
  // certificate; b relays it. Instance a must refuse: the EK is not a
  // registered trust anchor.
  Rng rng_c(303);
  tpm::Tpm tpm_c(rng_c);
  core::Nexus nexus_c(&tpm_c, core::NexusOptions{.seed = 3});
  kernel::ProcessId pid_c = *nexus_c.CreateProcess("stranger", ToBytes("s"));
  core::Certificate cert =
      *nexus_c.ExternalizeLabel(pid_c, *nexus_c.engine().Say(pid_c, "trustMe()"));

  Result<core::LabelHandle> shipped = pusher.PushCertificate("a", cert);
  EXPECT_FALSE(shipped.ok());
  EXPECT_EQ(w.nexus_a.engine().StoreFor(gateway).size(), 0u);
  (void)importer;
}

// ------------------------------------------------------ Remote authority

struct RemoteAuthorityWorld : TwoInstances {
  RemoteAuthorityWorld() : service(node_b.get()) {
    liveness = std::make_unique<core::LambdaAuthority>(
        [](const nal::Formula& f) {
          return f->kind() == nal::FormulaKind::kSays && f->speaker().base() == "Session";
        },
        [this](const nal::Formula& f) { return vouch; });
    service.AddAuthority(liveness.get());
  }

  AuthorityService service;
  std::unique_ptr<core::LambdaAuthority> liveness;
  bool vouch = true;
};

TEST(RemoteAuthorityTest, QueryCrossesTheChannel) {
  RemoteAuthorityWorld w;
  RemoteAuthority remote(w.node_a.get(), "b", nullptr, /*default_timeout_us=*/100000);
  nal::Formula statement = F("Session says sessionActive(alice)");
  EXPECT_TRUE(remote.Vouches(statement));
  w.vouch = false;  // Dynamic state changed on the remote instance...
  EXPECT_FALSE(remote.Vouches(statement));  // ...and the next answer is fresh.
  EXPECT_EQ(w.service.queries_served(), 2u);
  EXPECT_EQ(remote.stats().vouched, 1u);
  EXPECT_EQ(remote.stats().denied, 1u);
}

TEST(RemoteAuthorityTest, LateAnswerIsADenial) {
  RemoteAuthorityWorld w;
  // Establish while the link is fast...
  ASSERT_TRUE(w.node_a->Connect("b").ok());
  // ...then degrade it beyond the query deadline.
  w.transport.SetLink("a", "b", LinkConfig{.latency_us = 60000, .drop_rate = 0.0});
  RemoteAuthority remote(w.node_a.get(), "b", nullptr, /*default_timeout_us=*/10000);
  EXPECT_FALSE(remote.Vouches(F("Session says sessionActive(alice)")));
  // The request was in flight on an established channel: a timeout-deny,
  // not an unreachable-deny (the metrics split distinguishes the causes).
  EXPECT_EQ(remote.stats().denied_timeout, 1u);
  EXPECT_EQ(remote.stats().denied_unreachable, 0u);
}

TEST(RemoteAuthorityTest, LostAnswerIsADenial) {
  RemoteAuthorityWorld w;
  ASSERT_TRUE(w.node_a->Connect("b").ok());
  w.transport.SetLink("a", "b", LinkConfig{.latency_us = 10, .drop_rate = 1.0});
  RemoteAuthority remote(w.node_a.get(), "b", nullptr, /*default_timeout_us=*/10000);
  EXPECT_FALSE(remote.Vouches(F("Session says sessionActive(alice)")));
  EXPECT_EQ(remote.stats().denied_timeout, 1u);
  EXPECT_EQ(remote.stats().denied_unreachable, 0u);
}

TEST(RemoteAuthorityTest, VouchBatchAnswersAllStatementsInOneRoundTrip) {
  RemoteAuthorityWorld w;
  RemoteAuthority remote(w.node_a.get(), "b", nullptr, /*default_timeout_us=*/100000);
  std::vector<nal::Formula> statements = {
      F("Session says sessionActive(alice)"),
      F("Session says sessionActive(bob)"),
      F("Session says sessionActive(carol)"),
  };
  std::vector<bool> answers = remote.VouchBatch(statements, 100000);
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_TRUE(answers[0] && answers[1] && answers[2]);
  EXPECT_EQ(remote.stats().batch_round_trips, 1u);
  EXPECT_EQ(w.service.batches_served(), 1u);
  EXPECT_EQ(w.service.queries_served(), 3u);  // Statements, not round trips.

  // Lost replies deny the whole batch (fail closed).
  w.transport.SetLink("a", "b", LinkConfig{.latency_us = 10, .drop_rate = 1.0});
  answers = remote.VouchBatch(statements, 10000);
  EXPECT_FALSE(answers[0] || answers[1] || answers[2]);
  EXPECT_EQ(remote.stats().denied_timeout, 3u);
}

TEST(RemoteAuthorityTest, MalformedBatchCountIsRejectedWithoutAllocation) {
  // A batch request declaring 2^32-1 statements with no payload must not
  // size the reply from the attacker-declared count (OOM) — it answers
  // empty, which the client reads as deny-all.
  RemoteAuthorityWorld w;
  Result<AttestedChannel*> channel = w.node_a->Connect("b");
  ASSERT_TRUE(channel.ok());
  Bytes malformed;
  AppendU32(malformed, 0xFFFFFFFFu);
  Result<Bytes> reply = (*channel)->Call(
      std::string(AuthorityService::kBatchServiceName), malformed, /*timeout_us=*/100000);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(reply->empty());
  EXPECT_EQ(w.service.queries_served(), 0u);
}

TEST(RemoteAuthorityTest, OversizedStatementsAreDeniedNotParsed) {
  // The authority wire handlers share the IPC ABI's per-payload bound: a
  // hostile peer cannot feed the NAL parser an arbitrarily large formula.
  // Oversized statements are denied; well-formed neighbors still answer.
  RemoteAuthorityWorld w;
  Result<AttestedChannel*> channel = w.node_a->Connect("b");
  ASSERT_TRUE(channel.ok());

  // Single-query surface.
  Bytes huge(kernel::kMaxArgPayload + 1, 'x');
  Result<Bytes> reply = (*channel)->Call(std::string(AuthorityService::kServiceName), huge,
                                         /*timeout_us=*/100000);
  ASSERT_TRUE(reply.ok());
  ASSERT_EQ(reply->size(), 1u);
  EXPECT_EQ((*reply)[0], 0);  // Denied, not parsed.

  // Batch surface: [oversized, valid] answers [deny, vouch]. The batch
  // reply is a marshaled typed IpcReply (count slot + verdict bytes), so
  // it must survive the strict reply codec round trip — the oversized
  // entry denies WITHOUT poisoning its batch neighbor.
  Bytes batch;
  AppendU32(batch, 2);
  AppendLengthPrefixed(batch, huge);
  AppendLengthPrefixed(batch, ToBytes(std::string("Session says sessionActive(alice)")));
  reply = (*channel)->Call(std::string(AuthorityService::kBatchServiceName), batch,
                           /*timeout_us=*/100000);
  ASSERT_TRUE(reply.ok());
  Result<kernel::IpcReply> typed = kernel::UnmarshalReply(*reply);
  ASSERT_TRUE(typed.ok()) << typed.status().ToString();
  EXPECT_TRUE(typed->status.ok());
  Result<uint64_t> declared = typed->ArgU64(0);
  Result<ByteView> verdicts = typed->ArgBytes(1);
  ASSERT_TRUE(declared.ok() && verdicts.ok());
  EXPECT_EQ(*declared, 2u);
  ASSERT_EQ(verdicts->size(), 2u);
  EXPECT_EQ((*verdicts)[0], 0);
  EXPECT_EQ((*verdicts)[1], 1);
  // Round-trip parity: re-marshaling the unmarshaled reply reproduces the
  // wire bytes the service sent.
  Result<Bytes> remarshal = kernel::MarshalReply(*typed);
  ASSERT_TRUE(remarshal.ok());
  EXPECT_EQ(*remarshal, *reply);
}

TEST(RemoteAuthorityTest, BatchedGuardIssuesOneRoundTripForIdenticalLeaves) {
  // The acceptance bar for the batched API: K requests whose proofs all
  // lean on the SAME remote-authority statement cost ONE attested round
  // trip, observable as exactly one remote query in the guard's stats.
  RemoteAuthorityWorld w;
  RemoteAuthority remote(w.node_a.get(), "b", nullptr, /*default_timeout_us=*/100000);
  w.nexus_a.guard().AddRemoteAuthority(&remote);

  kernel::ProcessId owner = *w.nexus_a.CreateProcess("owner", ToBytes("o"));
  nal::Formula statement = F("Session says sessionActive(alice)");
  constexpr int kRequests = 5;
  std::vector<kernel::AuthzRequest> requests;
  for (int i = 0; i < kRequests; ++i) {
    kernel::ProcessId subject =
        *w.nexus_a.CreateProcess("s" + std::to_string(i), ToBytes("s"));
    std::string object = "door" + std::to_string(i);
    w.nexus_a.engine().RegisterObject(object, owner, kernel::kKernelProcessId);
    ASSERT_TRUE(w.nexus_a.engine().SetGoal(owner, "open", object, statement).ok());
    ASSERT_TRUE(w.nexus_a.engine()
                    .SetProof(subject, "open", object, nal::proof::Authority(statement))
                    .ok());
    requests.push_back(kernel::AuthzRequest::Of(subject, "open", object));
  }

  uint64_t remote_before = w.nexus_a.guard().stats().remote_queries;
  std::vector<Status> decisions = w.nexus_a.kernel().AuthorizeBatch(requests);
  for (const Status& status : decisions) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(w.nexus_a.guard().stats().remote_queries, remote_before + 1);
  EXPECT_EQ(remote.stats().batch_round_trips, 1u);
  EXPECT_EQ(w.service.batches_served(), 1u);

  // The answers were batch-scoped, not stored: re-running after the remote
  // state flips is freshly denied.
  w.vouch = false;
  decisions = w.nexus_a.kernel().AuthorizeBatch(requests);
  for (const Status& status : decisions) {
    EXPECT_FALSE(status.ok());
  }
  EXPECT_EQ(w.nexus_a.guard().stats().remote_queries, remote_before + 2);
}

TEST(RemoteAuthorityTest, AsyncBatchOverlapsRoundTripsToDistinctPeers) {
  // The async pipeline's latency win, measured on the simulated clock: a
  // batch whose proofs consult TWO different peers must pay ONE round-trip
  // time (both VouchBatch messages in flight together), not two back to
  // back as the old prefetch-then-wait loop did.
  TwoInstances w;
  Rng rng_c(303);
  tpm::Tpm tpm_c(rng_c);
  core::Nexus nexus_c(&tpm_c, core::NexusOptions{.seed = 3});
  w.nexus_a.RegisterPeer("c", tpm_c.endorsement_public_key());
  nexus_c.RegisterPeer("a", w.tpm_a.endorsement_public_key());
  NetNode node_c(&nexus_c, &w.transport, "c");

  AuthorityService service_b(w.node_b.get());
  AuthorityService service_c(&node_c);
  core::LambdaAuthority session_b(
      [](const nal::Formula& f) {
        return f->kind() == nal::FormulaKind::kSays && f->speaker().base() == "SessionB";
      },
      [](const nal::Formula&) { return true; });
  core::LambdaAuthority session_c(
      [](const nal::Formula& f) {
        return f->kind() == nal::FormulaKind::kSays && f->speaker().base() == "SessionC";
      },
      [](const nal::Formula&) { return true; });
  service_b.AddAuthority(&session_b);
  service_c.AddAuthority(&session_c);

  RemoteAuthority remote_b(
      w.node_a.get(), "b",
      [](const nal::Formula& f) {
        return f->kind() == nal::FormulaKind::kSays && f->speaker().base() == "SessionB";
      },
      /*default_timeout_us=*/1000000);
  RemoteAuthority remote_c(
      w.node_a.get(), "c",
      [](const nal::Formula& f) {
        return f->kind() == nal::FormulaKind::kSays && f->speaker().base() == "SessionC";
      },
      /*default_timeout_us=*/1000000);
  w.nexus_a.guard().AddRemoteAuthority(&remote_b);
  w.nexus_a.guard().AddRemoteAuthority(&remote_c);
  w.nexus_a.guard().set_remote_query_timeout_us(1000000);

  constexpr uint64_t kLatencyUs = 100;
  w.transport.SetLink("a", "b", LinkConfig{.latency_us = kLatencyUs, .drop_rate = 0.0});
  w.transport.SetLink("a", "c", LinkConfig{.latency_us = kLatencyUs, .drop_rate = 0.0});
  // Pre-establish both channels so the measurement isolates the data round
  // trips from handshake pumping.
  ASSERT_TRUE(w.node_a->Connect("b").ok());
  ASSERT_TRUE(w.node_a->Connect("c").ok());

  kernel::ProcessId owner = *w.nexus_a.CreateProcess("owner", ToBytes("o"));
  kernel::ProcessId subject = *w.nexus_a.CreateProcess("subject", ToBytes("s"));
  nal::Formula statement_b = F("SessionB says active(alice)");
  nal::Formula statement_c = F("SessionC says active(bob)");
  std::vector<kernel::AuthzRequest> requests;
  for (const auto& [object, statement] :
       {std::pair<std::string, nal::Formula>{"door_b", statement_b},
        std::pair<std::string, nal::Formula>{"door_c", statement_c}}) {
    w.nexus_a.engine().RegisterObject(object, owner, kernel::kKernelProcessId);
    ASSERT_TRUE(w.nexus_a.engine().SetGoal(owner, "open", object, statement).ok());
    ASSERT_TRUE(w.nexus_a.engine()
                    .SetProof(subject, "open", object, nal::proof::Authority(statement))
                    .ok());
    requests.push_back(kernel::AuthzRequest::Of(subject, "open", object));
  }

  uint64_t start_us = w.transport.now_us();
  std::vector<Status> decisions = w.nexus_a.kernel().AuthorizeBatch(requests);
  uint64_t elapsed_us = w.transport.now_us() - start_us;
  for (const Status& status : decisions) {
    EXPECT_TRUE(status.ok()) << status.ToString();
  }
  EXPECT_EQ(remote_b.stats().batch_round_trips, 1u);
  EXPECT_EQ(remote_c.stats().batch_round_trips, 1u);
  // Serial consultation costs 2 round trips = 4 * latency; overlapped
  // round trips finish together after one round trip = 2 * latency.
  EXPECT_EQ(elapsed_us, 2 * kLatencyUs)
      << "round trips to distinct peers did not overlap";
}

TEST(RemoteAuthorityTest, GuardConsultsRemoteAuthorityThroughProofLeaf) {
  RemoteAuthorityWorld w;
  RemoteAuthority remote(w.node_a.get(), "b", nullptr, /*default_timeout_us=*/100000);
  w.nexus_a.guard().AddRemoteAuthority(&remote);

  kernel::ProcessId subject = *w.nexus_a.CreateProcess("subject", ToBytes("s"));
  w.nexus_a.engine().RegisterObject("door", subject, kernel::kKernelProcessId);
  nal::Formula goal = F("Session says sessionActive(alice)");
  ASSERT_TRUE(w.nexus_a.engine().SetGoal(subject, "open", "door", goal).ok());
  ASSERT_TRUE(w.nexus_a.engine()
                  .SetProof(subject, "open", "door", nal::proof::Authority(goal))
                  .ok());
  EXPECT_TRUE(w.nexus_a.kernel().Authorize(subject, "open", "door").ok());
  EXPECT_GE(w.nexus_a.guard().stats().remote_queries, 1u);

  w.vouch = false;
  EXPECT_FALSE(w.nexus_a.kernel().Authorize(subject, "open", "door").ok());
}

// ---------------------------------------------------- Federated scenario

TEST(PresenceFederationTest, EndToEndSignupAndPost) {
  Rng rng_a(1), rng_b(2);
  tpm::Tpm tpm_provider(rng_a), tpm_home(rng_b);
  core::Nexus provider(&tpm_provider, core::NexusOptions{.seed = 10});
  core::Nexus home(&tpm_home, core::NexusOptions{.seed = 20});
  Transport transport(9);
  apps::PresenceFederation fed(&provider, &home, &transport);

  ASSERT_TRUE(fed.Connect().ok());
  fed.Type("alice", 150);
  ASSERT_TRUE(fed.ShipPresence("alice").ok());

  Status signup = fed.SignUp("alice");
  EXPECT_TRUE(signup.ok()) << signup.ToString();
  EXPECT_TRUE(fed.Post("alice", "hello from another machine").ok());
  EXPECT_GE(fed.session_authority().stats().vouched, 1u);
}

TEST(PresenceFederationTest, TooFewKeypressesIsDenied) {
  Rng rng_a(1), rng_b(2);
  tpm::Tpm tpm_provider(rng_a), tpm_home(rng_b);
  core::Nexus provider(&tpm_provider, core::NexusOptions{.seed = 10});
  core::Nexus home(&tpm_home, core::NexusOptions{.seed = 20});
  Transport transport(9);
  apps::PresenceFederation fed(&provider, &home, &transport);

  ASSERT_TRUE(fed.Connect().ok());
  fed.Type("bot", 3);
  ASSERT_TRUE(fed.ShipPresence("bot").ok());
  EXPECT_FALSE(fed.SignUp("bot").ok());
  EXPECT_FALSE(fed.Post("bot", "spam").ok());
}

TEST(PresenceFederationTest, EndedSessionIsDeniedFreshly) {
  Rng rng_a(1), rng_b(2);
  tpm::Tpm tpm_provider(rng_a), tpm_home(rng_b);
  core::Nexus provider(&tpm_provider, core::NexusOptions{.seed = 10});
  core::Nexus home(&tpm_home, core::NexusOptions{.seed = 20});
  Transport transport(9);
  apps::PresenceFederation fed(&provider, &home, &transport);

  ASSERT_TRUE(fed.Connect().ok());
  fed.Type("mallory", 500);
  ASSERT_TRUE(fed.ShipPresence("mallory").ok());
  // The certificate is still perfectly valid — but the authority answer is
  // fresh, untransferable, and now negative.
  fed.EndSession("mallory");
  EXPECT_FALSE(fed.SignUp("mallory").ok());
}

}  // namespace
}  // namespace nexus::net
