#include "kernel/hash_attestation.h"

#include "crypto/sha256.h"

namespace nexus::kernel {

void HashWhitelist::AllowBinary(ByteView binary) {
  allowed_.insert(crypto::Sha256Hex(binary));
}

Result<bool> HashWhitelist::Check(const Kernel& kernel, ProcessId pid) const {
  Result<const Process*> process = kernel.GetProcess(pid);
  if (!process.ok()) {
    return process.status();
  }
  const crypto::Sha256Digest& hash = (*process)->binary_hash;
  return IsAllowed(HexEncode(ByteView(hash.data(), hash.size())));
}

}  // namespace nexus::kernel
