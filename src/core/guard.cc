#include "core/guard.h"

#include "nal/parser.h"
#include "nal/proof.h"

namespace nexus::core {

using kernel::AuthzDecision;
using kernel::AuthzRequest;

namespace {

// One kGuardCheck provenance event per guard verdict. The trace id is the
// request's stamp (threaded by Kernel::Authorize) or, for direct Check
// callers inside a traced call, the thread-local scope id. `goal_id` is
// the interned identity of the goal this verdict was evaluated against
// (0 when the caller had none interned) — stamped into the event's
// generation word so a trace auditor can confirm the guard observed a
// goal state that is admissible for the verdict's generation window.
void EmitGuardCheck(const AuthzRequest& request, uint16_t flags, bool allowed,
                    uint32_t consulted, nal::FormulaId goal_id) {
  kernel::FlightRecorder& recorder = kernel::FlightRecorder::Global();
  if (!recorder.enabled()) {
    return;
  }
  uint64_t id = request.trace != 0 ? request.trace : kernel::CurrentTraceId();
  if (id == 0) {
    return;
  }
  kernel::TraceEvent e;
  e.trace_id = id;
  e.subject = request.subject;
  e.op = request.op;
  e.obj = request.obj;
  e.generation = goal_id;
  e.aux = consulted;
  e.flags = static_cast<uint16_t>(flags | (allowed ? 0 : kernel::kTraceFlagDenied));
  e.verdict = allowed ? kernel::kTraceVerdictAllow : kernel::kTraceVerdictDeny;
  e.stage = kernel::TraceStage::kGuardCheck;
  recorder.Emit(e);
}

}  // namespace

Guard::Guard(kernel::Kernel* kernel) : Guard(kernel, Config{}) {}

Guard::Guard(kernel::Kernel* kernel, const Config& config) : kernel_(kernel), config_(config) {}

void Guard::AddEmbeddedAuthority(Authority* authority) {
  embedded_authorities_.push_back(authority);
}

void Guard::AddAuthorityPort(kernel::PortId port) { authority_ports_.push_back(port); }

void Guard::AddRemoteAuthority(Authority* authority) {
  remote_authorities_.push_back(authority);
}

bool Guard::ResolveLocalAuthority(const nal::Formula& statement, bool* handled) {
  *handled = true;
  for (Authority* authority : embedded_authorities_) {
    if (authority->Handles(statement)) {
      return authority->Vouches(statement);
    }
  }
  // External authorities: one IPC round trip each. The answer is consumed
  // immediately and never stored (§2.7). The statement crosses as text —
  // formula serialization is the authority protocol's lingua franca (and
  // proof leaves are deliberately NOT interned; see AuthorityMemo).
  static const kernel::OpId check_op = kernel::InternOp("check");
  for (kernel::PortId port : authority_ports_) {
    kernel::IpcMessage query = kernel::IpcMessage::Of(check_op);
    query.AddString(statement->ToString());
    kernel::IpcReply reply = kernel_->Call(kernel::kKernelProcessId, port, query);
    if (reply.status.ok()) {
      return reply.value() == 1;
    }
    if (reply.status.code() != ErrorCode::kNotFound) {
      return false;  // Authority reachable but erroring: fail closed.
    }
  }
  *handled = false;
  return false;
}

Authority* Guard::RemoteAuthorityFor(const nal::Formula& statement) {
  for (Authority* authority : remote_authorities_) {
    if (authority->Handles(statement)) {
      return authority;
    }
  }
  return nullptr;
}

bool Guard::QueryAuthorities(const nal::Formula& statement) {
  stats_.authority_queries->Increment();
  bool handled = false;
  bool answer = ResolveLocalAuthority(statement, &handled);
  if (handled) {
    return answer;
  }
  // Remote authorities: a query crossing the instance boundary, budgeted by
  // the configured deadline. No answer in time means DENY (§2.7 answers are
  // fresh-or-nothing; a stale late answer is worthless).
  if (Authority* remote = RemoteAuthorityFor(statement)) {
    stats_.remote_queries->Increment();
    return remote->VouchesWithin(statement, config_.remote_query_timeout_us);
  }
  return false;  // No authority evaluates this statement.
}

const bool* Guard::AuthorityMemo::Find(const nal::Formula& statement) const {
  auto bucket = buckets_.find(nal::StructuralHash(statement));
  if (bucket == buckets_.end()) {
    return nullptr;
  }
  for (const Entry& entry : bucket->second) {
    if (nal::Equals(entry.statement, statement)) {
      return &entry.answer;
    }
  }
  return nullptr;
}

void Guard::AuthorityMemo::Insert(const nal::Formula& statement, bool answer) {
  std::vector<Entry>& bucket = buckets_[nal::StructuralHash(statement)];
  for (Entry& entry : bucket) {
    if (nal::Equals(entry.statement, statement)) {
      entry.answer = answer;
      return;
    }
  }
  bucket.push_back(Entry{statement, answer});
}

std::vector<Guard::InFlightBatch> Guard::IssuePrefetches(std::span<const BatchItem> items,
                                                         AuthorityMemo* memo,
                                                         AuthorityMemo* pending,
                                                         std::vector<bool>* blocked) {
  // Serial checking stops at the first declined leaf, so a malicious proof
  // stuffed with authority leaves must not amplify into unbounded eager
  // consultations (or a giant VouchBatch payload). Leaves beyond the cap
  // are simply not prefetched; the per-check callback falls back to the
  // lazy serial path for them, preserving correctness.
  constexpr size_t kMaxPrefetchLeavesPerProof = 64;
  // Statements bound for one remote peer travel in a single VouchBatch
  // round trip; groups accumulate in first-seen order within each peer.
  std::map<Authority*, std::vector<nal::Formula>> remote_groups;
  for (size_t i = 0; i < items.size(); ++i) {
    const BatchItem& item = items[i];
    // Items CheckImpl short-circuits (no goal, trivially-true goal, no
    // proof) never reach proof checking serially; consulting their leaves
    // here would create consultations the serial path cannot produce.
    if (item.goal == nullptr || item.goal->kind() == nal::FormulaKind::kTrue ||
        item.proof == nullptr) {
      continue;
    }
    std::vector<nal::Formula> leaves = nal::AuthorityLeaves(item.proof);
    size_t considered = std::min(leaves.size(), kMaxPrefetchLeavesPerProof);
    for (size_t j = 0; j < considered; ++j) {
      const nal::Formula& leaf = leaves[j];
      if (pending->Contains(leaf)) {
        // Already riding an issued (or soon-issued) round trip.
        stats_.batch_collapsed_queries->Increment();
        (*blocked)[i] = true;
        continue;
      }
      if (memo->Contains(leaf)) {
        stats_.batch_collapsed_queries->Increment();  // Answered locally already.
        continue;
      }
      stats_.authority_queries->Increment();
      bool handled = false;
      bool answer = ResolveLocalAuthority(leaf, &handled);
      if (handled) {
        memo->Insert(leaf, answer);
        continue;
      }
      if (Authority* remote = RemoteAuthorityFor(leaf)) {
        pending->Insert(leaf, false);
        remote_groups[remote].push_back(leaf);
        (*blocked)[i] = true;
        continue;
      }
      memo->Insert(leaf, false);  // No authority evaluates it: deny.
    }
  }
  // Issue every round trip BEFORE waiting on any: all wire messages are in
  // flight together on the simulated clock, so K peers cost max(latency),
  // not sum(latency) — and local checking proceeds in the meantime.
  std::vector<InFlightBatch> inflight;
  inflight.reserve(remote_groups.size());
  for (auto& [remote, statements] : remote_groups) {
    stats_.remote_queries->Increment();  // One attested round trip for the whole group.
    InFlightBatch batch;
    batch.future = remote->VouchBatchAsync(statements, config_.remote_query_timeout_us);
    batch.statements = std::move(statements);
    inflight.push_back(std::move(batch));
  }
  return inflight;
}

void Guard::InsertCacheEntryLocked(CacheShard& shard, kernel::ProcessId quota_root,
                                   const CacheKey& key, const nal::Proof& proof,
                                   bool verdict) {
  // A zero quota or zero capacity disables caching outright. This must be
  // checked FIRST: with per_root_quota == 0 the quota condition below is
  // vacuously true forever and the old code dereferenced
  // std::prev(lru.end()) on an empty list — UB — or spun without
  // progress.
  if (config_.per_root_quota == 0 || config_.proof_cache_capacity == 0) {
    return;
  }

  auto evict = [this, &shard](std::list<CacheEntry>::iterator it) {
    if (--shard.root_usage[it->quota_root] == 0) {
      shard.root_usage.erase(it->quota_root);  // Don't accrete dead roots.
    }
    shard.index.erase(it->key);
    shard.lru.erase(it);
    stats_.evictions->Increment();
  };
  // The oldest entry charged to `root`, or lru.end(). (Never called on an
  // empty list, but stays correct if it is.)
  auto oldest_of_root = [&shard](kernel::ProcessId root) {
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      if (it->quota_root == root) {
        return std::prev(it.base());
      }
    }
    return shard.lru.end();
  };

  // Quota enforcement: evict this root's own oldest entries first (§2.9).
  // A root's entries all live in this shard, so the count is exact. Each
  // pass either evicts one of the root's entries or proves none exists and
  // stops — accounting drift (root_usage positive with no matching LRU
  // entry) must degrade to an over-admission, never hang the guard.
  while (!shard.lru.empty() && shard.root_usage[quota_root] >= config_.per_root_quota) {
    auto it = oldest_of_root(quota_root);
    if (it == shard.lru.end()) {
      break;  // No entry carries this root: bounded exit, not a spin.
    }
    evict(it);
  }
  // Capacity (per shard): preferentially evict entries charged to the same
  // principal, falling back to shard LRU.
  if (!shard.lru.empty() && shard.lru.size() >= config_.proof_cache_capacity) {
    auto it = oldest_of_root(quota_root);
    evict(it != shard.lru.end() ? it : std::prev(shard.lru.end()));
  }

  shard.lru.push_front(CacheEntry{key, proof, verdict, quota_root});
  shard.index[key] = shard.lru.begin();
  shard.root_usage[quota_root] += 1;
}

AuthzDecision Guard::Check(const AuthzRequest& request, const nal::Formula& goal,
                           const nal::Proof& proof,
                           const std::vector<nal::Formula>& credentials,
                           uint64_t state_version, nal::FormulaId goal_id) {
  return CheckImpl(request, goal, goal_id, proof, credentials, state_version, nullptr);
}

AuthzDecision Guard::CheckImpl(const AuthzRequest& request, const nal::Formula& goal,
                               nal::FormulaId goal_id, const nal::Proof& proof,
                               const std::vector<nal::Formula>& credentials,
                               uint64_t state_version, const AuthorityMemo* memo) {
  stats_.checks->Increment();

  if (goal == nullptr) {
    return AuthzDecision::Deny(Internal("guard invoked without a goal"), false);
  }
  if (goal->kind() == nal::FormulaKind::kTrue) {
    return AuthzDecision::Allow();
  }
  if (proof == nullptr) {
    EmitGuardCheck(request, 0, /*allowed=*/false, 0, goal_id);
    return AuthzDecision::Deny(
        PermissionDenied("no proof supplied for goal " + goal->ToString()), true);
  }

  kernel::ProcessId quota_root = request.subject;
  if (Result<const kernel::Process*> p = kernel_->GetProcess(request.subject); p.ok()) {
    quota_root = (*p)->quota_root;
  }

  // Proof-cache lookup is sound only for proofs without authority leaves,
  // and only when the caller supplied a state version (the version stamp is
  // what ties a cached verdict to the credential set it was checked under).
  bool static_proof = nal::IsStaticallyCacheable(proof);
  bool may_cache = static_proof && state_version != 0;
  CacheKey cache_key;
  if (may_cache) {
    if (goal_id == nal::kInvalidFormulaId) {
      // Pointer-memoized in the interner: goals stored canonically (the
      // GoalStore interns on SetGoal) cost one hash-map probe here.
      goal_id = nal::Interner::Global().Intern(goal);
    }
    // ProofHash, not the proof's address: address reuse after free must
    // not replay a dead proof's verdict for a different proof (ABA).
    cache_key = CacheKey{goal_id, nal::ProofHash(proof), state_version};
    CacheShard& shard = ShardFor(quota_root);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(cache_key);
    // ProofHash is not cryptographic: confirm the hit actually carries a
    // structurally equal proof before replaying its verdict. The pointer
    // fast path covers re-submitted proof objects; an engineered
    // collision fails ProofEquals and pays a full check instead.
    if (it != shard.index.end() &&
        (it->second->proof == proof || nal::ProofEquals(it->second->proof, proof))) {
      stats_.cache_hits->Increment();
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // LRU refresh.
      bool allowed = it->second->verdict;
      EmitGuardCheck(request, kernel::kTraceFlagProofCacheHit, allowed, 0, goal_id);
      return allowed ? AuthzDecision::Allow()
                     : AuthzDecision::Deny(PermissionDenied("denied (cached proof verdict)"),
                                           true);
    }
  }

  uint32_t consulted = 0;
  nal::AuthorityCallback authority = [this, memo, &consulted](const nal::Formula& f) {
    ++consulted;
    if (memo != nullptr) {
      if (const bool* answer = memo->Find(f)) {
        return *answer;  // Prefetched batch-wide; consumed, not stored.
      }
    }
    return QueryAuthorities(f);
  };
  nal::CheckResult result = nal::CheckProof(proof, goal, credentials, authority);

  // A denial caused by a missing credential must not be cached anywhere:
  // the subject may acquire the label later without touching its proof.
  bool verdict_cacheable = result.cacheable && !result.missing_credential;
  if (may_cache && !result.missing_credential) {
    CacheShard& shard = ShardFor(quota_root);
    std::lock_guard<std::mutex> lock(shard.mu);
    // Two concurrent misses on the same key both reach here; the loser
    // must not insert a duplicate (it would orphan the winner's LRU node
    // and double-charge the root — its eventual eviction would then
    // unindex the live entry). Both computed the same verdict, so keeping
    // the winner's is exact.
    if (!shard.index.contains(cache_key)) {
      InsertCacheEntryLocked(shard, quota_root, cache_key, proof, result.status.ok());
    }
  }
  AuthzDecision decision = AuthzDecision::FromStatus(result.status, verdict_cacheable);
  decision.consulted_authorities = consulted;
  EmitGuardCheck(request,
                 decision.cacheable ? uint16_t{0} : kernel::kTraceFlagUncacheable,
                 decision.allowed(), consulted, goal_id);
  return decision;
}

std::vector<AuthzDecision> Guard::CheckBatch(std::span<const BatchItem> items) {
  AuthorityMemo memo;     // Resolved answers (local, no-authority denies).
  AuthorityMemo pending;  // Statements riding an in-flight remote future.
  std::vector<bool> blocked(items.size(), false);
  std::vector<InFlightBatch> inflight = IssuePrefetches(items, &memo, &pending, &blocked);

  std::vector<AuthzDecision> decisions(items.size());
  // Overlap phase: while the remote round trips are on the wire, check
  // every item whose leaves are already resolved (or that short-circuits
  // before proof checking). Their verdicts cannot depend on the fabric.
  for (size_t i = 0; i < items.size(); ++i) {
    if (!blocked[i]) {
      const BatchItem& item = items[i];
      decisions[i] = CheckImpl(item.request, item.goal, item.goal_id, item.proof,
                               item.credentials, item.state_version, &memo);
    }
  }
  // Harvest: fold every future's answers into the memo. A lost or late
  // reply yields fail-closed denies, exactly as the blocking path.
  for (InFlightBatch& batch : inflight) {
    std::vector<bool> answers = batch.future->Wait();
    for (size_t k = 0; k < batch.statements.size(); ++k) {
      memo.Insert(batch.statements[k], k < answers.size() && answers[k]);
    }
  }
  // Remaining items: every leaf now has its answer in the memo.
  for (size_t i = 0; i < items.size(); ++i) {
    if (blocked[i]) {
      const BatchItem& item = items[i];
      decisions[i] = CheckImpl(item.request, item.goal, item.goal_id, item.proof,
                               item.credentials, item.state_version, &memo);
    }
  }
  return decisions;
}

void Guard::FlushCache() {
  // Within each shard all three structures drop together: a stale
  // root_usage survivor would wrongly trigger quota eviction on the next
  // fill (§2.9 quotas count live entries, not history).
  for (CacheShard& shard : cache_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.root_usage.clear();
  }
}

Guard::Stats Guard::stats() const {
  Stats snapshot;
  snapshot.checks = stats_.checks->Value();
  snapshot.cache_hits = stats_.cache_hits->Value();
  snapshot.authority_queries = stats_.authority_queries->Value();
  snapshot.remote_queries = stats_.remote_queries->Value();
  snapshot.evictions = stats_.evictions->Value();
  snapshot.batch_collapsed_queries = stats_.batch_collapsed_queries->Value();
  return snapshot;
}

GuardPortHandler::GuardPortHandler(Guard* guard, const GoalStore* goals)
    : guard_(guard), goals_(goals) {}

kernel::IpcReply GuardPortHandler::Handle(const kernel::IpcContext& context,
                                          const kernel::IpcMessage& message) {
  // Protocol: check(subject, op, obj, proof-text), with newline-separated
  // credential formulas in `data`. The engine upcalls with typed slots
  // (Process/U64/Object ids — nothing to parse); script-style callers may
  // still send v1-shaped string slots, which resolve here: the subject
  // through the single decimal decode point, the op/object NAMES through
  // the caller-charged intern surfaces (this port is untrusted input).
  static const kernel::OpId check_op = kernel::InternOp("check");
  if (message.op != check_op || message.args.size() < 4) {
    return kernel::IpcReply(
        InvalidArgument("guard protocol: check <subject> <op> <object> <proof>"));
  }
  Result<kernel::ProcessId> subject_id = message.ArgProcess(0);
  if (!subject_id.ok()) {
    return kernel::IpcReply(
        InvalidArgument("guard protocol: subject must be a process id"));
  }
  kernel::ProcessId subject = *subject_id;

  Result<kernel::OpId> operation = guard_->kernel()->ResolveOpArg(context.caller, message, 1);
  if (!operation.ok()) {
    return kernel::IpcReply(operation.status());
  }
  Result<kernel::ObjectId> object =
      guard_->kernel()->ResolveObjectArg(context.caller, message, 2);
  if (!object.ok()) {
    return kernel::IpcReply(object.status());
  }

  std::optional<GoalEntry> goal = goals_->Get(*operation, *object);
  if (!goal.has_value()) {
    return kernel::IpcReply(NotFound("no goal for this operation/object"));
  }

  Result<std::string_view> proof_text = message.ArgString(3);
  if (!proof_text.ok()) {
    return kernel::IpcReply(
        InvalidArgument("guard protocol: proof must be serialized text"));
  }
  Result<nal::Proof> proof = nal::DeserializeProof(*proof_text);
  if (!proof.ok()) {
    return kernel::IpcReply(proof.status());
  }

  std::vector<nal::Formula> credentials;
  std::string blob = ToString(message.data);
  size_t start = 0;
  while (start < blob.size()) {
    size_t end = blob.find('\n', start);
    if (end == std::string::npos) {
      end = blob.size();
    }
    if (end > start) {
      Result<nal::Formula> cred = nal::ParseFormula(blob.substr(start, end - start));
      if (!cred.ok()) {
        return kernel::IpcReply(cred.status());
      }
      credentials.push_back(*cred);
    }
    start = end + 1;
  }

  AuthzDecision decision = guard_->Check(AuthzRequest{subject, *operation, *object},
                                         goal->goal, *proof, credentials);
  // Typed verdict reply: the cacheability bit rides in a u64 slot — the
  // designated-guard upcall consumer reads it structurally (value()).
  kernel::IpcReply reply(decision.ToStatus());
  reply.AddU64(decision.cacheable ? 1 : 0);
  return reply;
}

}  // namespace nexus::core
