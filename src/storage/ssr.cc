#include "storage/ssr.h"

#include <algorithm>

namespace nexus::storage {

SsrManager::SsrManager(BlockDevice* disk, VdirTable* vdirs, VkeyTable* vkeys)
    : SsrManager(disk, vdirs, vkeys, Config{}) {}

SsrManager::SsrManager(BlockDevice* disk, VdirTable* vdirs, VkeyTable* vkeys,
                       const Config& config)
    : disk_(disk), vdirs_(vdirs), vkeys_(vkeys), config_(config) {}

VdirValue SsrManager::RootBinding(const Region& region) {
  MerkleHash root = region.tree.root();
  Bytes material(root.begin(), root.end());
  AppendU64(material, region.size);
  return crypto::Sha1::Hash(material);
}

Status SsrManager::PersistMeta(const Region& region) {
  Bytes meta;
  AppendU32(meta, region.vdir);
  meta.push_back(region.encrypted ? 1 : 0);
  AppendU32(meta, region.vkey);
  AppendU64(meta, region.nonce);
  AppendU64(meta, region.size);
  std::vector<MerkleHash> leaves = region.tree.LeafHashes();
  AppendU32(meta, static_cast<uint32_t>(leaves.size()));
  for (const MerkleHash& leaf : leaves) {
    Append(meta, ByteView(leaf.data(), leaf.size()));
  }
  return disk_->Write(MetaPath(region.id), meta);
}

Status SsrManager::PersistDirectory() {
  Bytes dir;
  AppendU32(dir, next_id_);
  AppendU32(dir, static_cast<uint32_t>(regions_.size()));
  for (const auto& [id, region] : regions_) {
    AppendU32(dir, id);
  }
  return disk_->Write(DirectoryPath(), dir);
}

Result<SsrId> SsrManager::Create(bool encrypted, VkeyId vkey, uint64_t nonce) {
  if (encrypted && vkey != 0 && !vkeys_->Exists(vkey)) {
    return NotFound("no such VKEY");
  }
  Result<VdirId> vdir = vdirs_->Allocate();
  if (!vdir.ok()) {
    return vdir.status();
  }
  Region region;
  region.id = next_id_++;
  region.vdir = *vdir;
  region.encrypted = encrypted;
  region.vkey = vkey;
  region.nonce = nonce;
  NEXUS_RETURN_IF_ERROR(vdirs_->Write(region.vdir, RootBinding(region)));
  NEXUS_RETURN_IF_ERROR(PersistMeta(region));
  SsrId id = region.id;
  regions_[id] = std::move(region);
  NEXUS_RETURN_IF_ERROR(PersistDirectory());
  return id;
}

Status SsrManager::Destroy(SsrId id) {
  auto it = regions_.find(id);
  if (it == regions_.end()) {
    return NotFound("no such SSR");
  }
  size_t blocks = it->second.tree.leaf_count();
  for (size_t i = 0; i < blocks; ++i) {
    disk_->Delete(BlockPath(id, i));
  }
  disk_->Delete(MetaPath(id));
  vdirs_->Free(it->second.vdir);
  regions_.erase(it);
  return PersistDirectory();
}

Result<Bytes> SsrManager::ReadBlockVerified(const Region& region, size_t index) const {
  Result<Bytes> raw = disk_->Read(BlockPath(region.id, index));
  if (!raw.ok()) {
    return raw.status();
  }
  Result<MerkleHash> expected = region.tree.LeafHash(index);
  if (!expected.ok()) {
    return expected.status();
  }
  if (MerkleTree::HashLeaf(*raw) != *expected) {
    return Corruption("SSR block " + std::to_string(index) +
                      " failed integrity verification");
  }
  if (!region.encrypted) {
    return raw;
  }
  return vkeys_->Decrypt(region.vkey, region.nonce,
                         static_cast<uint64_t>(index) * config_.block_size, *raw);
}

Status SsrManager::WriteBlock(Region& region, size_t index, ByteView block) {
  Bytes stored(block.begin(), block.end());
  if (region.encrypted) {
    Result<Bytes> encrypted =
        vkeys_->Encrypt(region.vkey, region.nonce,
                        static_cast<uint64_t>(index) * config_.block_size, block);
    if (!encrypted.ok()) {
      return encrypted.status();
    }
    stored = std::move(*encrypted);
  }
  NEXUS_RETURN_IF_ERROR(disk_->Write(BlockPath(region.id, index), stored));
  if (index >= region.tree.leaf_count()) {
    NEXUS_RETURN_IF_ERROR(region.tree.ResizeLeaves(index + 1));
  }
  return region.tree.UpdateLeaf(index, MerkleTree::HashLeaf(stored));
}

Status SsrManager::Write(SsrId id, uint64_t offset, ByteView data) {
  auto it = regions_.find(id);
  if (it == regions_.end()) {
    return NotFound("no such SSR");
  }
  Region& region = it->second;
  const size_t bs = config_.block_size;

  uint64_t end = offset + data.size();
  size_t first_block = static_cast<size_t>(offset / bs);
  size_t last_block = data.empty() ? first_block : static_cast<size_t>((end - 1) / bs);

  // A write past the current end leaves a hole; materialize intervening
  // blocks as zeros so later reads verify cleanly.
  for (size_t b = region.tree.leaf_count(); b < first_block; ++b) {
    NEXUS_RETURN_IF_ERROR(WriteBlock(region, b, Bytes(bs, 0)));
  }

  for (size_t b = first_block; b <= last_block && !data.empty(); ++b) {
    uint64_t block_start = static_cast<uint64_t>(b) * bs;
    // Read-modify-write for partial blocks that already exist.
    Bytes plain(bs, 0);
    if (b < region.tree.leaf_count()) {
      Result<Bytes> existing = ReadBlockVerified(region, b);
      if (existing.ok()) {
        std::copy(existing->begin(), existing->end(), plain.begin());
      } else if (existing.status().code() == ErrorCode::kCorruption) {
        return existing.status();
      }
    }
    uint64_t copy_from = std::max(offset, block_start);
    uint64_t copy_to = std::min(end, block_start + bs);
    std::copy(data.begin() + static_cast<ptrdiff_t>(copy_from - offset),
              data.begin() + static_cast<ptrdiff_t>(copy_to - offset),
              plain.begin() + static_cast<ptrdiff_t>(copy_from - block_start));
    // Blocks are stored zero-padded at full block size; the region's
    // logical size bounds reads (§5.4 notes the padding cost for small
    // files).
    NEXUS_RETURN_IF_ERROR(WriteBlock(region, b, plain));
  }

  region.size = std::max(region.size, end);
  NEXUS_RETURN_IF_ERROR(vdirs_->Write(region.vdir, RootBinding(region)));
  return PersistMeta(region);
}

Result<Bytes> SsrManager::Read(SsrId id, uint64_t offset, size_t length) const {
  auto it = regions_.find(id);
  if (it == regions_.end()) {
    return NotFound("no such SSR");
  }
  const Region& region = it->second;
  if (offset + length > region.size) {
    return OutOfRange("read past end of SSR");
  }
  // Verify the anchored root before trusting any block (replay detection).
  Result<VdirValue> anchored = vdirs_->Read(region.vdir);
  if (!anchored.ok()) {
    return anchored.status();
  }
  if (*anchored != RootBinding(region)) {
    return Corruption("SSR root does not match its VDIR: replay or tampering detected");
  }

  const size_t bs = config_.block_size;
  Bytes out;
  out.reserve(length);
  uint64_t end = offset + length;
  size_t first_block = static_cast<size_t>(offset / bs);
  size_t last_block = length == 0 ? first_block : static_cast<size_t>((end - 1) / bs);
  for (size_t b = first_block; b <= last_block && length > 0; ++b) {
    Result<Bytes> block = ReadBlockVerified(region, b);
    if (!block.ok()) {
      return block.status();
    }
    uint64_t block_start = static_cast<uint64_t>(b) * bs;
    uint64_t from = std::max(offset, block_start);
    uint64_t to = std::min<uint64_t>(end, block_start + block->size());
    if (from < to) {
      out.insert(out.end(), block->begin() + static_cast<ptrdiff_t>(from - block_start),
                 block->begin() + static_cast<ptrdiff_t>(to - block_start));
    }
  }
  return out;
}

Result<uint64_t> SsrManager::Size(SsrId id) const {
  auto it = regions_.find(id);
  if (it == regions_.end()) {
    return NotFound("no such SSR");
  }
  return it->second.size;
}

Status SsrManager::Recover() {
  regions_.clear();
  Result<Bytes> dir = disk_->Read(DirectoryPath());
  if (!dir.ok()) {
    return OkStatus();  // Nothing persisted yet.
  }
  ByteReader reader(*dir);
  Result<uint32_t> next_id = reader.ReadU32();
  if (!next_id.ok()) {
    return Corruption("SSR directory truncated");
  }
  next_id_ = *next_id;
  Result<uint32_t> count = reader.ReadU32();
  if (!count.ok()) {
    return Corruption("SSR directory truncated");
  }
  for (uint32_t i = 0; i < *count; ++i) {
    Result<uint32_t> id = reader.ReadU32();
    if (!id.ok()) {
      return Corruption("SSR directory truncated");
    }
    Result<Bytes> meta = disk_->Read(MetaPath(*id));
    if (!meta.ok()) {
      continue;  // Region vanished: treated as destroyed.
    }
    const Bytes& raw = *meta;
    if (raw.size() < 4 + 1 + 4 + 8 + 8 + 4) {
      return Corruption("SSR metadata truncated");
    }
    size_t off = 0;
    auto read_u32 = [&raw, &off] {
      uint32_t v = (static_cast<uint32_t>(raw[off]) << 24) |
                   (static_cast<uint32_t>(raw[off + 1]) << 16) |
                   (static_cast<uint32_t>(raw[off + 2]) << 8) | static_cast<uint32_t>(raw[off + 3]);
      off += 4;
      return v;
    };
    auto read_u64 = [&read_u32] {
      uint64_t hi = read_u32();
      return (hi << 32) | read_u32();
    };
    Region region;
    region.id = *id;
    region.vdir = read_u32();
    region.encrypted = raw[off++] != 0;
    region.vkey = read_u32();
    region.nonce = read_u64();
    region.size = read_u64();
    uint32_t leaves = read_u32();
    if (raw.size() < off + static_cast<size_t>(leaves) * crypto::kSha256DigestSize) {
      return Corruption("SSR metadata truncated");
    }
    std::vector<MerkleHash> leaf_hashes(leaves);
    for (uint32_t l = 0; l < leaves; ++l) {
      std::copy_n(raw.begin() + static_cast<ptrdiff_t>(off), crypto::kSha256DigestSize,
                  leaf_hashes[l].begin());
      off += crypto::kSha256DigestSize;
    }
    region.tree = MerkleTree(leaf_hashes);

    // The recovered tree must match the anchored root, or the metadata was
    // tampered with / replayed while dormant.
    Result<VdirValue> anchored = vdirs_->Read(region.vdir);
    if (!anchored.ok() || *anchored != RootBinding(region)) {
      return Corruption("SSR " + std::to_string(region.id) +
                        " metadata does not match its VDIR anchor");
    }
    regions_[region.id] = std::move(region);
  }
  return OkStatus();
}

}  // namespace nexus::storage
