// The Java object store (§4): transitive integrity verification.
//
// Deserializing untrusted bytes into a typed runtime requires checking
// every type invariant. If the serialized store was *produced* by another
// typesafe runtime — and a label proves it — the expensive per-field checks
// can be skipped. This module models both paths so the benchmark can show
// the gap, and refuses the fast path without the label.
#ifndef NEXUS_APPS_JAVA_STORE_H_
#define NEXUS_APPS_JAVA_STORE_H_

#include <string>
#include <vector>

#include "core/nexus.h"

namespace nexus::apps {

// A "typed object": field tags must match the declared schema.
struct StoredObject {
  std::vector<uint8_t> field_tags;  // Declared types, 0-4.
  std::vector<int64_t> fields;
};

struct ObjectStoreImage {
  std::vector<StoredObject> objects;
  Bytes Serialize() const;
  static Result<ObjectStoreImage> Deserialize(ByteView data, bool validate_invariants);
};

class JavaObjectStore {
 public:
  JavaObjectStore(core::Nexus* nexus, kernel::ProcessId self) : nexus_(nexus), self_(self) {}

  // Serializes and labels the image: <self> says producedByTypesafeVM(hash).
  Result<Bytes> Export(const ObjectStoreImage& image);

  // Imports: if a matching producedByTypesafeVM label exists among
  // `credentials`, skips invariant validation; otherwise validates every
  // field (slow path).
  Result<ObjectStoreImage> Import(ByteView data,
                                  const std::vector<nal::Formula>& credentials,
                                  bool* used_fast_path = nullptr);

 private:
  core::Nexus* nexus_;
  kernel::ProcessId self_;
};

}  // namespace nexus::apps

#endif  // NEXUS_APPS_JAVA_STORE_H_
