// Not-A-Bot (§4): TPM-backed human-presence attestation against spam.
#include <cstdio>

#include "apps/notabot.h"
#include "tpm/tpm.h"

using namespace nexus;

int main() {
  Rng tpm_rng(17);
  tpm::Tpm hardware_tpm(tpm_rng);
  core::Nexus nexus(&hardware_tpm);

  auto kbd = *nexus.CreateProcess("keyboard", ToBytes("kbd-driver"));
  apps::KeyboardDriver driver(&nexus, kbd);

  // A human types a mail (the driver counts physical keypresses).
  for (int i = 0; i < 240; ++i) {
    driver.OnKeypress("alice-session");
  }
  // A bot sends mail without touching the keyboard.
  driver.OnKeypress("bot-session");

  auto human_cert = *driver.AttestSession("alice-session");
  auto bot_cert = *driver.AttestSession("bot-session");
  std::printf("human cert statement: %s\n", human_cert.statement->ToString().c_str());

  apps::SpamClassifier classifier(hardware_tpm.endorsement_public_key(),
                                  /*min_keypresses=*/50);
  apps::Email human_mail{"alice@example.com", "lunch tomorrow? FREE table at noon",
                         human_cert.Serialize()};
  apps::Email bot_mail{"bot@botnet.example", "click here for FREE stuff",
                       bot_cert.Serialize()};
  apps::Email forged_mail{"bot@botnet.example", "hello friend", ToBytes("garbage-cert")};
  apps::Email plain_mail{"bob@example.com", "see you at the meeting", {}};

  std::printf("human mail (spammy words, valid cert): %s\n",
              classifier.IsSpam(human_mail) ? "SPAM" : "ham");
  std::printf("bot mail (1 keypress):                 %s\n",
              classifier.IsSpam(bot_mail) ? "SPAM" : "ham");
  std::printf("forged certificate:                    %s\n",
              classifier.IsSpam(forged_mail) ? "SPAM" : "ham");
  std::printf("plain mail, content heuristic only:    %s\n",
              classifier.IsSpam(plain_mail) ? "SPAM" : "ham");
  return 0;
}
