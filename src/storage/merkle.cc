#include "storage/merkle.h"

namespace nexus::storage {

namespace {

constexpr uint8_t kLeafPrefix = 0x00;
constexpr uint8_t kInnerPrefix = 0x01;

}  // namespace

MerkleHash MerkleTree::HashLeaf(ByteView block) {
  crypto::Sha256 hasher;
  hasher.Update(ByteView(&kLeafPrefix, 1));
  hasher.Update(block);
  return hasher.Finish();
}

MerkleHash MerkleTree::HashPair(const MerkleHash& l, const MerkleHash& r) {
  crypto::Sha256 hasher;
  hasher.Update(ByteView(&kInnerPrefix, 1));
  hasher.Update(ByteView(l.data(), l.size()));
  hasher.Update(ByteView(r.data(), r.size()));
  return hasher.Finish();
}

size_t MerkleTree::Pow2AtLeast(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

MerkleTree::MerkleTree() : leaf_count_(0), capacity_(1), nodes_(2, MerkleHash{}) {
  Rebuild();
}

MerkleTree::MerkleTree(const std::vector<MerkleHash>& leaf_hashes) {
  leaf_count_ = leaf_hashes.size();
  capacity_ = Pow2AtLeast(std::max<size_t>(1, leaf_count_));
  nodes_.assign(2 * capacity_, MerkleHash{});
  for (size_t i = 0; i < leaf_count_; ++i) {
    nodes_[capacity_ + i] = leaf_hashes[i];
  }
  // Unused leaves hold the hash of an empty block, distinguishing "absent"
  // from "all-zero digest".
  for (size_t i = leaf_count_; i < capacity_; ++i) {
    nodes_[capacity_ + i] = HashLeaf({});
  }
  Rebuild();
}

void MerkleTree::Rebuild() {
  for (size_t i = capacity_ - 1; i >= 1; --i) {
    nodes_[i] = HashPair(nodes_[2 * i], nodes_[2 * i + 1]);
    if (i == 1) {
      break;
    }
  }
}

MerkleHash MerkleTree::root() const { return nodes_[1]; }

Status MerkleTree::ResizeLeaves(size_t count) {
  if (count < leaf_count_) {
    return InvalidArgument("Merkle tree shrinking not supported");
  }
  if (count <= capacity_) {
    for (size_t i = leaf_count_; i < count; ++i) {
      nodes_[capacity_ + i] = HashLeaf({});
    }
    leaf_count_ = count;
    Rebuild();
    return OkStatus();
  }
  std::vector<MerkleHash> leaves = LeafHashes();
  leaves.resize(count, HashLeaf({}));
  *this = MerkleTree(leaves);
  return OkStatus();
}

Status MerkleTree::UpdateLeaf(size_t index, const MerkleHash& leaf_hash) {
  if (index >= leaf_count_) {
    return OutOfRange("leaf index out of range");
  }
  size_t node = capacity_ + index;
  nodes_[node] = leaf_hash;
  node /= 2;
  while (node >= 1) {
    nodes_[node] = HashPair(nodes_[2 * node], nodes_[2 * node + 1]);
    if (node == 1) {
      break;
    }
    node /= 2;
  }
  return OkStatus();
}

Result<MerkleHash> MerkleTree::LeafHash(size_t index) const {
  if (index >= leaf_count_) {
    return OutOfRange("leaf index out of range");
  }
  return nodes_[capacity_ + index];
}

Result<std::vector<MerkleHash>> MerkleTree::AuthPath(size_t index) const {
  if (index >= leaf_count_) {
    return OutOfRange("leaf index out of range");
  }
  std::vector<MerkleHash> path;
  size_t node = capacity_ + index;
  while (node > 1) {
    path.push_back(nodes_[node ^ 1]);  // Sibling.
    node /= 2;
  }
  return path;
}

bool MerkleTree::VerifyPath(const MerkleHash& root, size_t index, const MerkleHash& leaf_hash,
                            const std::vector<MerkleHash>& path, size_t leaf_count) {
  size_t capacity = Pow2AtLeast(std::max<size_t>(1, leaf_count));
  size_t depth = 0;
  for (size_t c = capacity; c > 1; c /= 2) {
    ++depth;
  }
  if (path.size() != depth || index >= leaf_count) {
    return false;
  }
  MerkleHash acc = leaf_hash;
  size_t node = capacity + index;
  for (const MerkleHash& sibling : path) {
    acc = (node % 2 == 0) ? HashPair(acc, sibling) : HashPair(sibling, acc);
    node /= 2;
  }
  return acc == root;
}

std::vector<MerkleHash> MerkleTree::LeafHashes() const {
  std::vector<MerkleHash> out;
  out.reserve(leaf_count_);
  for (size_t i = 0; i < leaf_count_; ++i) {
    out.push_back(nodes_[capacity_ + i]);
  }
  return out;
}

}  // namespace nexus::storage
