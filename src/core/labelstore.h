// Labelstores (§2.3).
//
// A label is an unforgeable statement `P says S` created by the `say`
// system call. Because the syscall channel is itself a secure channel from
// the process to the kernel, labels inside one Nexus instance carry no
// signatures — they are stored as attributed formulas, and attribution is
// enforced by construction (the store refuses to record a statement under a
// speaker other than the calling process unless the caller is the kernel).
// Labels become cryptographic objects only when externalized (certificate.h).
#ifndef NEXUS_CORE_LABELSTORE_H_
#define NEXUS_CORE_LABELSTORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nal/formula.h"
#include "nal/interner.h"
#include "util/status.h"

namespace nexus::core {

using LabelHandle = uint64_t;

class LabelStore {
 public:
  // Records `speaker says statement`. The caller (engine) has already
  // authenticated the speaker. Labels are hash-consed: the stored formula
  // is the canonical interned node, so identical statements inserted into
  // any store share one tree and one FormulaId.
  LabelHandle Insert(const nal::Principal& speaker, const nal::Formula& statement);

  // Inserts an already-formed says-formula (certificate import, transfers).
  Result<LabelHandle> InsertLabel(const nal::Formula& says_formula);

  Result<nal::Formula> Get(LabelHandle handle) const;
  // Interned identity of a stored label (kInvalidFormulaId if unknown).
  nal::FormulaId IdOf(LabelHandle handle) const;
  Status Delete(LabelHandle handle);

  // Moves one label into another store (the paper's labelstore-to-
  // labelstore transfer).
  Status Transfer(LabelHandle handle, LabelStore& destination);

  // All labels, usable directly as checker credentials.
  std::vector<nal::Formula> All() const;
  size_t size() const { return labels_.size(); }

  // Monotonic mutation counter; guards use it to version their proof-check
  // caches (any label change invalidates dependent cached verdicts).
  uint64_t version() const { return version_; }

 private:
  struct Label {
    nal::Formula formula;  // Canonical interned node.
    nal::FormulaId id = nal::kInvalidFormulaId;
  };
  std::map<LabelHandle, Label> labels_;
  LabelHandle next_handle_ = 1;
  uint64_t version_ = 0;
};

}  // namespace nexus::core

#endif  // NEXUS_CORE_LABELSTORE_H_
