// The Nexus kernel simulator.
//
// A single-address-space model of the Nexus microkernel: isolated protection
// domains (IPDs) with subprincipal names, kernel-bound IPC ports,
// interposition on every system call (§3.2), an authorization hook with the
// in-kernel decision cache (§2.8), the introspection namespace (§3.1), and
// a pluggable CPU scheduler. The authorization engine itself (labelstores,
// goalstores, guards) lives one layer up in src/core and plugs in through
// the AuthorizationEngine interface, mirroring the kernel/guard split in
// the paper's Figure 1.
#ifndef NEXUS_KERNEL_KERNEL_H_
#define NEXUS_KERNEL_KERNEL_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "kernel/decision_cache.h"
#include "kernel/ipc.h"
#include "kernel/procfs.h"
#include "kernel/sched.h"
#include "kernel/types.h"
#include "nal/term.h"
#include "util/status.h"

namespace nexus::kernel {

// Verdict from an IPC interceptor (§3.2): the reference monitor may inspect
// and modify the message, then allow or block the call.
enum class InterposeVerdict : uint8_t { kAllow, kDeny };

class Interceptor {
 public:
  virtual ~Interceptor() = default;
  // Called before the target handler. May modify `message`.
  virtual InterposeVerdict OnCall(const IpcContext& context, IpcMessage& message) = 0;
  // Called after the handler returns (only if the call was allowed). May
  // modify the reply.
  virtual void OnReturn(const IpcContext& context, IpcReply& reply) {
    (void)context;
    (void)reply;
  }
};

// The upcall interface to the guard layer (implemented in src/core). The
// kernel consults it only on decision-cache misses. Requests and decisions
// are the interned AuthzRequest/AuthzDecision types from kernel/types.h.
class AuthorizationEngine {
 public:
  virtual ~AuthorizationEngine() = default;
  virtual AuthzDecision Authorize(const AuthzRequest& request) = 0;
  // Batched evaluation: implementations may amortize credential collection
  // and deduplicate authority consultations across the batch. The default
  // is the serial loop.
  virtual std::vector<AuthzDecision> AuthorizeBatch(std::span<const AuthzRequest> requests) {
    std::vector<AuthzDecision> decisions;
    decisions.reserve(requests.size());
    for (const AuthzRequest& request : requests) {
      decisions.push_back(Authorize(request));
    }
    return decisions;
  }
};

struct Process {
  ProcessId pid = 0;
  ProcessId parent = kKernelProcessId;
  std::string name;
  crypto::Sha256Digest binary_hash{};
  bool alive = true;
  // If set, only these system calls may be invoked (a process can
  // relinquish syscalls, as Fauxbook's web server does after init, §4.1).
  std::optional<std::set<Syscall>> allowed_syscalls;
  // Quota root: the ancestor charged for guard-cache quotas (§2.9).
  ProcessId quota_root = kKernelProcessId;
};

class Kernel {
 public:
  Kernel();

  // ----------------------------------------------------------- Processes
  // Creates an IPD. `binary` is measured (SHA-256 launch-time hash).
  Result<ProcessId> CreateProcess(const std::string& name, ByteView binary,
                                  ProcessId parent = kKernelProcessId);
  Status KillProcess(ProcessId pid);
  Result<const Process*> GetProcess(ProcessId pid) const;
  bool IsAlive(ProcessId pid) const;
  Result<ProcessId> GetParent(ProcessId pid) const;
  std::vector<ProcessId> Processes() const;
  Status RestrictSyscalls(ProcessId pid, std::set<Syscall> allowed);

  // The NAL principal for a process: Nexus.ipd.<pid> (the paper writes
  // /proc/ipd/<pid>; both name the same subprincipal of the kernel).
  nal::Principal KernelPrincipal() const { return nal::Principal(kernel_principal_name_); }
  nal::Principal ProcessPrincipal(ProcessId pid) const;
  // The /proc path alias for a process principal ("/proc/ipd/12").
  static std::string ProcPath(ProcessId pid);

  // --------------------------------------------------------------- Ports
  Result<PortId> CreatePort(ProcessId owner);
  Status DestroyPort(PortId port);
  Status BindHandler(PortId port, PortHandler* handler);
  Result<ProcessId> PortOwner(PortId port) const;
  // Connecting establishes an IPC channel (an edge in the connectivity
  // graph the IPCAnalyzer inspects, §2.2).
  Status ConnectPort(ProcessId pid, PortId port);
  Status DisconnectPort(ProcessId pid, PortId port);
  bool HasChannel(ProcessId pid, PortId port) const;
  const std::map<ProcessId, std::set<PortId>>& Channels() const { return channels_; }
  std::vector<PortId> Ports() const;

  // Synchronous IPC call: marshaling, interposition, authorization, handler
  // dispatch, reply interposition.
  IpcReply Call(ProcessId caller, PortId port, const IpcMessage& message);

  // -------------------------------------------------------- Interposition
  // Installs an interceptor on a port. Subject to authorization (operation
  // "interpose" on object "port:<id>"). Interceptors compose: the newest
  // runs first. Returns a token for removal.
  Result<uint64_t> Interpose(ProcessId monitor, PortId port, Interceptor* interceptor);
  Status RemoveInterposition(uint64_t token);
  // Global switch: when disabled, Call() skips marshaling and interceptors
  // entirely ("Nexus bare" in Table 1).
  void set_interposition_enabled(bool enabled) { interposition_enabled_ = enabled; }
  bool interposition_enabled() const { return interposition_enabled_; }

  // ------------------------------------------------------------- Syscalls
  // The Table-1 system call surface. File operations forward over IPC to
  // the handler bound on `fs_port` (a user-level server).
  IpcReply Invoke(ProcessId caller, Syscall call, const IpcMessage& message);
  void set_fs_port(PortId port) { fs_port_ = port; }
  PortId fs_port() const { return fs_port_; }
  // The per-process pseudo-port carrying syscall interposition for a
  // process (every syscall of `pid` flows through it, §3.2).
  Result<PortId> SyscallPort(ProcessId pid);

  // --------------------------------------------------------- Authorization
  void set_engine(AuthorizationEngine* engine) { engine_ = engine; }
  AuthorizationEngine* engine() const { return engine_; }
  void set_decision_cache_enabled(bool enabled) { decision_cache_enabled_ = enabled; }
  bool decision_cache_enabled() const { return decision_cache_enabled_; }
  DecisionCache& decision_cache() { return decision_cache_; }

  // The guarded-operation fast path: decision cache, then guard upcall.
  // The interned form is the hot path; the string form interns and
  // forwards. It MUST intern (not Find): unknown names still reach the
  // pluggable engine, whose policy for them is its own (a deny-all engine
  // denies names nobody ever registered). The cost — novel names grow the
  // append-only tables — is recorded in ROADMAP "Name-table quotas".
  //
  // Authorize and AuthorizeBatch are the kernel's CONCURRENT frontend:
  // safe to call from worker threads. Cache hits contend only on the
  // subject's shard; misses upcall the engine (which serializes itself)
  // and insert with a generation check so a verdict that raced a
  // setgoal/setproof invalidation is dropped, not cached stale. Everything
  // else on Kernel (process/port lifecycle, Call, Invoke, Interpose,
  // procfs) must stay on the kernel thread AND be quiescent while workers
  // can miss — a miss reads the process table and may upcall through
  // Call/the net fabric. See README "Threading model".
  Status Authorize(const AuthzRequest& request);
  Status Authorize(ProcessId subject, std::string_view operation, std::string_view object) {
    return Authorize(AuthzRequest::Of(subject, operation, object));
  }
  // Batched fast path: cache hits answered inline, misses forwarded to the
  // engine's AuthorizeBatch in one upcall (which deduplicates authority
  // consultations), cacheable verdicts inserted on the way out.
  std::vector<Status> AuthorizeBatch(std::span<const AuthzRequest> requests);

  // Invalidation entry points, called by the core layer when proofs or
  // goals change (§2.8).
  void OnProofUpdate(const AuthzRequest& request);
  void OnProofUpdate(ProcessId subject, std::string_view operation, std::string_view object) {
    OnProofUpdate(AuthzRequest::Of(subject, operation, object));
  }
  void OnGoalUpdate(OpId op, ObjectId obj);
  void OnGoalUpdate(std::string_view operation, std::string_view object) {
    OnGoalUpdate(InternOp(operation), InternObject(object));
  }

  // ----------------------------------------------------------- Services
  IntrospectionFs& procfs() { return procfs_; }
  const IntrospectionFs& procfs() const { return procfs_; }
  Scheduler& scheduler() { return *scheduler_; }
  void ReplaceScheduler(std::unique_ptr<Scheduler> scheduler);

  // Microsecond clock; overridable for deterministic tests.
  uint64_t NowMicros() const;
  void set_time_source(std::function<uint64_t()> source) { time_source_ = std::move(source); }

 private:
  struct Port {
    PortId id = 0;
    ProcessId owner = kKernelProcessId;
    PortHandler* handler = nullptr;
  };
  struct Interposition {
    uint64_t token = 0;
    PortId port = 0;
    ProcessId monitor = kKernelProcessId;
    Interceptor* interceptor = nullptr;
  };

  IpcReply Dispatch(ProcessId caller, PortId port, const IpcMessage& message);
  void PublishProcessNodes(const Process& process);

  std::string kernel_principal_name_ = "Nexus";
  std::map<ProcessId, Process> processes_;
  std::map<PortId, Port> ports_;
  std::map<ProcessId, std::set<PortId>> channels_;
  std::vector<Interposition> interpositions_;
  std::map<ProcessId, PortId> syscall_ports_;
  ProcessId next_pid_ = 1;
  PortId next_port_ = 1;
  uint64_t next_interpose_token_ = 1;
  bool interposition_enabled_ = true;

  AuthorizationEngine* engine_ = nullptr;
  bool decision_cache_enabled_ = true;
  DecisionCache decision_cache_;

  IntrospectionFs procfs_;
  std::unique_ptr<Scheduler> scheduler_;
  PortId fs_port_ = 0;
  std::function<uint64_t()> time_source_;
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_KERNEL_H_
