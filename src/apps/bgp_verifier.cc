#include "apps/bgp_verifier.h"

namespace nexus::apps {

void BgpVerifier::OnInbound(const BgpMessage& message) {
  if (message.type != BgpMessage::Type::kAdvertise) {
    return;
  }
  auto [it, inserted] = best_received_.emplace(message.prefix, message.as_path.size());
  if (!inserted) {
    it->second = std::min(it->second, message.as_path.size());
  }
}

size_t BgpVerifier::ShortestReceived(const std::string& prefix) const {
  auto it = best_received_.find(prefix);
  return it == best_received_.end() ? SIZE_MAX : it->second;
}

Status BgpVerifier::CheckOutbound(const BgpMessage& message) {
  auto blocked = [this](const std::string& why) {
    ++stats_.blocked;
    return PermissionDenied(why);
  };

  if (message.type == BgpMessage::Type::kWithdraw) {
    if (!advertised_.contains(message.prefix)) {
      return blocked("withdrawal for a route never advertised: " + message.prefix);
    }
    advertised_.erase(message.prefix);
    ++stats_.passed;
    return OkStatus();
  }

  // Advertisement rules.
  if (message.as_path.empty() || message.as_path.front() != self_as_) {
    return blocked("emitted AS path must begin with the speaker's own AS");
  }
  bool originated = message.as_path.size() == 1;
  if (originated) {
    if (!owned_prefixes_.contains(message.prefix)) {
      return blocked("false origination: speaker does not own " + message.prefix);
    }
  } else {
    size_t best = ShortestReceived(message.prefix);
    if (best == SIZE_MAX) {
      return blocked("route fabrication: no received route for " + message.prefix);
    }
    // Forwarding prepends our AS: the emitted path must be at least one
    // hop longer than the best path we received (n >= m + 1).
    if (message.as_path.size() < best + 1) {
      return blocked("route shortening: emitted " + std::to_string(message.as_path.size()) +
                     "-hop path but best received is " + std::to_string(best) + " hops");
    }
  }
  advertised_.insert(message.prefix);
  ++stats_.passed;
  return OkStatus();
}

}  // namespace nexus::apps
