#include "apps/federation.h"

#include "nal/proof.h"

namespace nexus::apps {

PresenceFederation::PresenceFederation(core::Nexus* provider, core::Nexus* home,
                                       net::Transport* transport)
    : PresenceFederation(provider, home, transport, Config{}) {}

PresenceFederation::PresenceFederation(core::Nexus* provider, core::Nexus* home,
                                       net::Transport* transport, const Config& config)
    : provider_(provider), home_(home), config_(config) {
  // Out-of-band EK distribution: each instance pins the other's TPM. A
  // rejected registration (e.g. a conflicting prior anchor) must surface
  // here, not as mysterious handshake failures later.
  Status pin_home =
      provider_->RegisterPeer(config_.home_node, home_->tpm().endorsement_public_key());
  Status pin_provider =
      home_->RegisterPeer(config_.provider_node, provider_->tpm().endorsement_public_key());
  if (!pin_home.ok()) {
    init_status_ = pin_home;
  } else if (!pin_provider.ok()) {
    init_status_ = pin_provider;
  }

  provider_net_ = std::make_unique<net::NetNode>(provider_, transport, config_.provider_node);
  home_net_ = std::make_unique<net::NetNode>(home_, transport, config_.home_node);

  // Provider: the social network plus the certificate-import gateway.
  // Credentials land in the web server's labelstore, where the signup
  // guard's credential collection finds them.
  fauxbook_ = std::make_unique<Fauxbook>(provider_);
  exchange_ =
      std::make_unique<net::CertificateExchange>(provider_net_.get(), fauxbook_->webserver_pid());

  // Home: the keyboard driver (the only process that can mint keypress
  // labels) and the session-liveness authority.
  Result<kernel::ProcessId> driver =
      home_->CreateProcess("keyboard_driver", ToBytes("nexus-kbd-v1"));
  if (!driver.ok() && init_status_.ok()) {
    // Never fall back to the kernel pid: presence labels must only ever be
    // attributable to the real driver process.
    init_status_ = driver.status();
  }
  driver_pid_ = driver.ok() ? *driver : 0;
  driver_ = std::make_unique<KeyboardDriver>(home_, driver_pid_);
  home_exchange_ = std::make_unique<net::CertificateExchange>(home_net_.get(), driver_pid_);

  session_liveness_ = std::make_unique<core::LambdaAuthority>(
      [](const nal::Formula& f) {
        return f->kind() == nal::FormulaKind::kSays && f->speaker().base() == "Session" &&
               f->child1()->kind() == nal::FormulaKind::kPred &&
               f->child1()->pred_name() == "sessionActive";
      },
      [this](const nal::Formula& f) {
        const auto& args = f->child1()->args();
        return args.size() == 1 && live_sessions_.count(args[0].text()) > 0;
      });
  home_authority_service_ = std::make_unique<net::AuthorityService>(home_net_.get());
  home_authority_service_->AddAuthority(session_liveness_.get());

  // Provider guard: session-liveness leaves route to the home instance,
  // budgeted by the configured deadline.
  remote_sessions_ = std::make_unique<net::RemoteAuthority>(
      provider_net_.get(), config_.home_node,
      [](const nal::Formula& f) {
        return f->kind() == nal::FormulaKind::kSays && f->speaker().base() == "Session";
      },
      config_.remote_timeout_us);
  provider_->guard().AddRemoteAuthority(remote_sessions_.get());
  // The guard owns the per-query deadline on its consultation path; keep
  // the two knobs agreeing so the configured value actually applies.
  provider_->guard().set_remote_query_timeout_us(config_.remote_timeout_us);

  provider_->engine().RegisterObject(kSignupObject, fauxbook_->webserver_pid(),
                                     kernel::kKernelProcessId);
}

Status PresenceFederation::Connect() {
  if (!init_status_.ok()) {
    return init_status_;
  }
  Result<net::AttestedChannel*> channel = provider_net_->Connect(config_.home_node);
  return channel.status();
}

void PresenceFederation::Type(const std::string& session, int presses) {
  live_sessions_.insert(session);
  for (int i = 0; i < presses; ++i) {
    driver_->OnKeypress(session);
  }
}

Status PresenceFederation::ShipPresence(const std::string& session) {
  if (!init_status_.ok()) {
    return init_status_;
  }
  Result<core::Certificate> cert = driver_->AttestSession(session);
  if (!cert.ok()) {
    return cert.status();
  }
  // Ship from the home side: either side may push once the channel exists.
  Result<core::LabelHandle> pushed =
      home_exchange_->PushCertificate(config_.provider_node, *cert);
  return pushed.status();
}

void PresenceFederation::EndSession(const std::string& session) {
  live_sessions_.erase(session);
}

Status PresenceFederation::SignUp(const std::string& session) {
  // Locate the imported presence credential for this session and apply the
  // threshold (the SpamClassifier logic, but feeding a guard goal).
  core::LabelStore& store = provider_->engine().StoreFor(fauxbook_->webserver_pid());
  nal::Formula credential;
  int64_t best_count = -1;
  for (const nal::Formula& label : store.All()) {
    // Only TPM-rooted (imported) credentials count. Wire-imported labels
    // reparse the dotted chain as base "tpm" + path; in-memory ones keep
    // "tpm.<ek8>" as the base.
    if (label->kind() != nal::FormulaKind::kSays ||
        label->speaker().ToString().rfind("tpm.", 0) != 0) {
      continue;
    }
    const nal::Formula& body = label->child1();
    if (body->kind() != nal::FormulaKind::kPred || body->pred_name() != "keypresses" ||
        body->args().size() != 2 || body->args()[0].text() != session) {
      continue;
    }
    if (body->args()[1].int_value() > best_count) {
      best_count = body->args()[1].int_value();
      credential = label;
    }
  }
  if (credential == nullptr) {
    return PermissionDenied("no imported presence credential for session " + session);
  }
  if (best_count < static_cast<int64_t>(config_.min_keypresses)) {
    return PermissionDenied("presence credential shows too few keypresses");
  }

  // Goal: that exact credential AND a live session vouched for — right now,
  // by the authority on the home instance.
  nal::Formula liveness = nal::FormulaNode::Says(
      nal::Principal("Session"),
      nal::FormulaNode::Pred("sessionActive", {nal::Term::Symbol(session)}));
  nal::Formula goal = nal::FormulaNode::And(credential, liveness);
  nal::Proof proof = nal::proof::AndIntro(nal::proof::Premise(credential),
                                          nal::proof::Authority(liveness));

  kernel::ProcessId subject = fauxbook_->webserver_pid();
  NEXUS_RETURN_IF_ERROR(
      provider_->engine().SetGoal(subject, "signup", kSignupObject, goal));
  NEXUS_RETURN_IF_ERROR(provider_->engine().SetProof(subject, "signup", kSignupObject, proof));
  Status verdict = provider_->kernel().Authorize(subject, "signup", kSignupObject);
  if (!verdict.ok()) {
    return verdict;
  }
  signed_up_.insert(session);
  return fauxbook_->AddUser(session);
}

Status PresenceFederation::Post(const std::string& session, const std::string& text) {
  if (signed_up_.count(session) == 0) {
    return PermissionDenied("session " + session + " has not completed federated signup");
  }
  return fauxbook_->PostStatus(session, text);
}

}  // namespace nexus::apps
