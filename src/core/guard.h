// Guards (§2.6, §2.9).
//
// A guard receives an AuthzRequest plus (goal, proof, labels), checks the
// proof against the goal formula, authenticates the credentials, consults
// authorities for dynamic-state leaves, and answers an AuthzDecision
// (allow/deny, a cacheability bit, and accounting). Proof checking is
// amortized by an internal cache keyed on the interned goal identity, the
// proof object, and the caller's state-version stamp — integer tuples, no
// ToString() anywhere on the hot path. Entries are sound to reuse because
// labels are valid indefinitely; only authority consultations are repeated.
// Eviction preferentially removes the requesting principal's own entries
// and per-process-tree quotas bound the damage of principal-spawning
// exhaustion attacks.
//
// CheckBatch evaluates many requests at once as an ASYNC PIPELINE:
// authority leaves are classified across the whole batch, identical
// queries are collapsed to one consultation, and all statements bound for
// one remote authority travel in a single VouchBatch round trip instead
// of N. Remote round trips are issued as futures on the simulated clock,
// and local proof checking for items whose leaves are already resolved
// proceeds while those round trips are on the wire — remote latency
// overlaps local work instead of serializing ahead of it. Items that
// depend on an in-flight answer are checked after the futures are
// harvested, so every verdict equals the serial path's.
//
// Threading: the guard is safe for concurrent Check/CheckBatch callers.
// The proof-check cache is SHARDED by Mix64(quota root) — every entry a
// process tree can charge lives in exactly one shard, so §2.9 quota
// accounting stays exact while different subjects' evaluations take
// different shard mutexes and the engine's per-subject stripes never
// re-serialize on one guard lock. `proof_cache_capacity` is enforced per
// shard (total soft state ≤ capacity × kNumCacheShards; single-root
// workloads see exactly the configured capacity, as before). Stats
// counters are atomics; stats() returns a snapshot. The authority
// registries are append-only configuration: register authorities before
// concurrent checking starts. AuthorityMemo instances are batch-local.
#ifndef NEXUS_CORE_GUARD_H_
#define NEXUS_CORE_GUARD_H_

#include <atomic>
#include <list>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/authority.h"
#include "core/goalstore.h"
#include "kernel/kernel.h"
#include "nal/checker.h"
#include "nal/interner.h"
#include "util/metrics.h"

namespace nexus::core {

class Guard {
 public:
  struct Config {
    // Per cache shard; 0 disables the proof-check cache entirely (every
    // check re-verifies). A quota root's entries all live in one shard, so
    // a single process tree can cache at most this many verdicts.
    size_t proof_cache_capacity = 1024;
    // Maximum cache entries chargeable to one process tree (§2.9 quotas).
    // 0 means no process tree may cache anything — also a full disable.
    size_t per_root_quota = 256;
    // Deadline for one remote-authority consultation; expiry is a DENY.
    uint64_t remote_query_timeout_us = 10000;
  };

  // Snapshot view of the registry-backed counters ("guard.*" in the
  // metrics plane). Per-instance: a fresh Guard starts at zero; the
  // registry separately aggregates across instances and retirements.
  struct Stats {
    uint64_t checks = 0;
    uint64_t cache_hits = 0;
    uint64_t authority_queries = 0;
    // Remote round trips: one per serial consultation, one per VouchBatch
    // (however many statements it carried).
    uint64_t remote_queries = 0;
    uint64_t evictions = 0;
    // Batch accounting: consultations saved by collapsing duplicate
    // authority queries within a batch.
    uint64_t batch_collapsed_queries = 0;
  };

  // One unit of batched guard work: the request tuple plus everything the
  // engine resolved for it.
  struct BatchItem {
    kernel::AuthzRequest request;
    nal::Formula goal;
    nal::FormulaId goal_id = nal::kInvalidFormulaId;  // Optional; interned if absent.
    nal::Proof proof;
    std::vector<nal::Formula> credentials;
    uint64_t state_version = 0;
  };

  explicit Guard(kernel::Kernel* kernel);
  Guard(kernel::Kernel* kernel, const Config& config);

  // The kernel this guard authorizes for (GuardPortHandler routes legacy
  // text names through its charged intern surfaces).
  kernel::Kernel* kernel() const { return kernel_; }

  // Registers an embedded authority (runs in the guard's address space; no
  // IPC round trip).
  void AddEmbeddedAuthority(Authority* authority);
  // Registers an external authority living behind an IPC port.
  void AddAuthorityPort(kernel::PortId port);
  // Registers an authority on a remote Nexus instance (reached over an
  // attested channel, src/net). Consulted last; every query carries the
  // configured deadline and an expired or unanswered query denies.
  void AddRemoteAuthority(Authority* authority);

  // Full guard evaluation. `proof` may be null (denied unless the goal is
  // `true`). `state_version` is a monotonic stamp covering everything a
  // cached verdict depends on besides the proof object itself (label stores,
  // proof registrations); the proof-check cache is keyed on (goal identity,
  // proof identity, state_version), so any credential or proof change
  // invalidates dependent entries without hashing the credential set per
  // call. Pass 0 to disable verdict caching for this check.
  // `goal_id` is the goal's interned identity if the caller already has it
  // (GoalEntry carries one); kInvalidFormulaId makes the guard intern.
  kernel::AuthzDecision Check(const kernel::AuthzRequest& request, const nal::Formula& goal,
                              const nal::Proof& proof,
                              const std::vector<nal::Formula>& credentials,
                              uint64_t state_version = 0,
                              nal::FormulaId goal_id = nal::kInvalidFormulaId);
  // Legacy string surface: interns and forwards.
  kernel::AuthzDecision Check(kernel::ProcessId subject, const std::string& operation,
                              const std::string& object, const nal::Formula& goal,
                              const nal::Proof& proof,
                              const std::vector<nal::Formula>& credentials,
                              uint64_t state_version = 0) {
    return Check(kernel::AuthzRequest::Of(subject, operation, object), goal, proof,
                 credentials, state_version);
  }

  // Batched evaluation. Verdict-equivalent to calling Check per item;
  // authority consultations are deduplicated batch-wide, remote
  // consultations are coalesced into one VouchBatch round trip per remote
  // authority, and those round trips overlap local proof checking (see
  // the class comment). The consultation SET may exceed serial's: leaves
  // are prefetched eagerly (bounded per proof), so a proof that serial
  // checking would abandon early still has its first leaves consulted —
  // answers affect nothing beyond what the per-check callback reads.
  // Authority answers stay decision-scoped: the batch memo and every
  // future are drained before this call returns (§2.7 untransferability).
  // The caller (Engine::AuthorizeBatch) flushes at designated-guard items,
  // so in-batch label mutations stay serially observable; within one
  // CheckBatch no item mutates label state.
  std::vector<kernel::AuthzDecision> CheckBatch(std::span<const BatchItem> items);

  Stats stats() const;  // Snapshot by value: counters move concurrently.
  void FlushCache();

  // Deployments tune the remote-query deadline to their link (callers that
  // registered a RemoteAuthority get this budget per consultation).
  void set_remote_query_timeout_us(uint64_t timeout_us) {
    config_.remote_query_timeout_us = timeout_us;
  }
  uint64_t remote_query_timeout_us() const { return config_.remote_query_timeout_us; }

 private:
  // Proof-check cache key: three integers. FormulaId makes goal equality
  // O(1); the proof participates by its memoized STRUCTURAL hash, never by
  // address — an address key is an ABA hazard (a freed proof's storage
  // reused by a different proof would replay the old verdict; see the
  // ProofHash contract in nal/proof.h). The hash is precomputed per node,
  // so a re-submitted proof still costs O(1) here.
  struct CacheKey {
    nal::FormulaId goal_id = nal::kInvalidFormulaId;
    uint64_t proof_hash = 0;
    uint64_t state_version = 0;
    friend auto operator<=>(const CacheKey&, const CacheKey&) = default;
  };

  // Batch-scope memo of authority answers, keyed by structural hash with
  // Equals() confirmation. Deliberately NOT the global interner: proof
  // leaves are subject-supplied, and interning them would let SetProof
  // spam grow the append-only interner without bound. The memo dies with
  // the batch (§2.7 untransferability).
  class AuthorityMemo {
   public:
    // The memoized answer, or nullptr if this statement was never seen.
    // The pointer is invalidated by the next Insert; consume immediately.
    const bool* Find(const nal::Formula& statement) const;
    // Records the answer for `statement` (overwrites an existing slot).
    void Insert(const nal::Formula& statement, bool answer);
    bool Contains(const nal::Formula& statement) const {
      return Find(statement) != nullptr;
    }

   private:
    struct Entry {
      nal::Formula statement;
      bool answer;
    };
    std::unordered_map<uint64_t, std::vector<Entry>> buckets_;
  };

  bool QueryAuthorities(const nal::Formula& statement);
  // Embedded + IPC-port authorities. Sets *handled; the answer is valid
  // only when *handled is true.
  bool ResolveLocalAuthority(const nal::Formula& statement, bool* handled);
  // The remote authority that would evaluate `statement`, if any.
  Authority* RemoteAuthorityFor(const nal::Formula& statement);

  // One coalesced remote round trip in flight: the future plus the
  // statements it will answer (in issue order), to be folded into the memo
  // at harvest time.
  struct InFlightBatch {
    std::unique_ptr<VouchFuture> future;
    std::vector<nal::Formula> statements;
  };
  // Phase 1 of the async pipeline: walks every item's authority leaves,
  // resolves local authorities into `memo`, collapses duplicates, and
  // issues one VouchBatchAsync per remote authority. Statements awaiting a
  // future are recorded in `pending`; blocked[i] is set for items that
  // depend on one (they must be checked after the harvest).
  std::vector<InFlightBatch> IssuePrefetches(std::span<const BatchItem> items,
                                             AuthorityMemo* memo, AuthorityMemo* pending,
                                             std::vector<bool>* blocked);

  kernel::AuthzDecision CheckImpl(const kernel::AuthzRequest& request,
                                  const nal::Formula& goal, nal::FormulaId goal_id,
                                  const nal::Proof& proof,
                                  const std::vector<nal::Formula>& credentials,
                                  uint64_t state_version, const AuthorityMemo* memo);

  struct CacheEntry {
    CacheKey key;
    // The proof the verdict was checked under. ProofHash is not
    // cryptographic, so a hit must confirm ProofEquals before replaying
    // the verdict — an engineered 64-bit collision must cost a full
    // re-check, never an authorization. (Holding the proof also pins its
    // nodes, so a cached key can never refer to freed storage.)
    nal::Proof proof;
    bool verdict;
    kernel::ProcessId quota_root;
  };
  // One proof-check cache shard: LRU list + index + per-root usage, under
  // its own mutex. All state is soft (§2.9).
  struct CacheShard {
    std::mutex mu;
    std::list<CacheEntry> lru;
    std::map<CacheKey, std::list<CacheEntry>::iterator> index;
    std::map<kernel::ProcessId, size_t> root_usage;
  };
  static constexpr size_t kNumCacheShards = 16;

  CacheShard& ShardFor(kernel::ProcessId quota_root) {
    return cache_shards_[kernel::Mix64(quota_root) % kNumCacheShards];
  }
  // Caller holds shard.mu.
  void InsertCacheEntryLocked(CacheShard& shard, kernel::ProcessId quota_root,
                              const CacheKey& key, const nal::Proof& proof, bool verdict);

  kernel::Kernel* kernel_;
  Config config_;
  std::vector<Authority*> embedded_authorities_;
  std::vector<kernel::PortId> authority_ports_;
  std::vector<Authority*> remote_authorities_;

  CacheShard cache_shards_[kNumCacheShards];

  // Registry instruments ("guard.*"): relaxed-atomic tallies, never
  // synchronizing data. Same increment sites as the old AtomicStats.
  metrics::MetricGroup metrics_{&metrics::Registry::Global(), "guard"};
  struct {
    metrics::Counter* checks;
    metrics::Counter* cache_hits;
    metrics::Counter* authority_queries;
    metrics::Counter* remote_queries;
    metrics::Counter* evictions;
    metrics::Counter* batch_collapsed_queries;
  } stats_{metrics_.NewCounter("checks"),
           metrics_.NewCounter("cache_hits"),
           metrics_.NewCounter("authority_queries"),
           metrics_.NewCounter("remote_queries"),
           metrics_.NewCounter("evictions"),
           metrics_.NewCounter("batch_collapsed_queries")};
};

// A guard exposed as an IPC service (designated guards, Figure 1: the
// kernel upcalls `check(sbj, op, obj, proof, labels)` over IPC).
class GuardPortHandler : public kernel::PortHandler {
 public:
  GuardPortHandler(Guard* guard, const GoalStore* goals);
  kernel::IpcReply Handle(const kernel::IpcContext& context,
                          const kernel::IpcMessage& message) override;

 private:
  Guard* guard_;
  const GoalStore* goals_;
};

}  // namespace nexus::core

#endif  // NEXUS_CORE_GUARD_H_
