// Shared benchmark entry point: BENCHMARK_MAIN() plus a metrics dump.
//
// Every bench binary exits through NEXUS_BENCHMARK_MAIN(), which runs the
// standard google-benchmark loop and then writes the process-wide metrics
// registry as JSON to $NEXUS_METRICS_OUT (no-op when unset). CI points the
// variable at a per-bench file and fails the run if the hot-path counters
// never moved — a benchmark that silently stopped exercising the
// authorization path reports beautiful numbers for the wrong code.
#ifndef NEXUS_BENCH_BENCH_MAIN_H_
#define NEXUS_BENCH_BENCH_MAIN_H_

#include <benchmark/benchmark.h>

#include "util/metrics.h"

#define NEXUS_BENCHMARK_MAIN()                                            \
  int main(int argc, char** argv) {                                       \
    char arg0_default[] = "benchmark";                                    \
    char* args_default = arg0_default;                                    \
    if (!argv) {                                                          \
      argc = 1;                                                           \
      argv = &args_default;                                               \
    }                                                                     \
    ::benchmark::Initialize(&argc, argv);                                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;   \
    ::benchmark::RunSpecifiedBenchmarks();                                \
    ::benchmark::Shutdown();                                              \
    ::nexus::metrics::DumpRegistryToEnvPath();                            \
    return 0;                                                             \
  }                                                                       \
  int main(int, char**)

#endif  // NEXUS_BENCH_BENCH_MAIN_H_
