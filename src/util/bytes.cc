#include "util/bytes.h"

#include <cstring>

namespace nexus {

Bytes ToBytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string ToString(ByteView bytes) {
  return std::string(bytes.begin(), bytes.end());
}

std::string HexEncode(ByteView bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

std::optional<uint64_t> ParseDecimalU64(std::string_view text) {
  if (text.empty() || text.size() > 20) {  // 2^64-1 has 20 digits.
    return std::nullopt;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return std::nullopt;  // Overflow.
    }
    value = value * 10 + digit;
  }
  return value;
}

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return InvalidArgument("hex string has non-hex character");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void Append(Bytes& dst, ByteView suffix) {
  dst.insert(dst.end(), suffix.begin(), suffix.end());
}

bool ConstantTimeEquals(ByteView a, ByteView b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

void AppendU32(Bytes& dst, uint32_t value) {
  dst.push_back(static_cast<uint8_t>(value >> 24));
  dst.push_back(static_cast<uint8_t>(value >> 16));
  dst.push_back(static_cast<uint8_t>(value >> 8));
  dst.push_back(static_cast<uint8_t>(value));
}

void AppendU64(Bytes& dst, uint64_t value) {
  AppendU32(dst, static_cast<uint32_t>(value >> 32));
  AppendU32(dst, static_cast<uint32_t>(value));
}

void AppendLengthPrefixed(Bytes& dst, ByteView chunk) {
  AppendU32(dst, static_cast<uint32_t>(chunk.size()));
  Append(dst, chunk);
}

Result<uint8_t> ByteReader::ReadU8() {
  if (remaining() < 1) {
    return OutOfRange("truncated u8");
  }
  return data_[offset_++];
}

Result<uint32_t> ByteReader::ReadU32() {
  if (remaining() < 4) {
    return OutOfRange("truncated u32");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | data_[offset_ + i];
  }
  offset_ += 4;
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  Result<uint32_t> hi = ReadU32();
  if (!hi.ok()) {
    return hi.status();
  }
  Result<uint32_t> lo = ReadU32();
  if (!lo.ok()) {
    return lo.status();
  }
  return (static_cast<uint64_t>(*hi) << 32) | *lo;
}

Result<Bytes> ByteReader::ReadLengthPrefixed() {
  Result<uint32_t> len = ReadU32();
  if (!len.ok()) {
    return len.status();
  }
  if (remaining() < *len) {
    return OutOfRange("truncated length-prefixed chunk");
  }
  Bytes out(data_.begin() + static_cast<ptrdiff_t>(offset_),
            data_.begin() + static_cast<ptrdiff_t>(offset_ + *len));
  offset_ += *len;
  return out;
}

}  // namespace nexus
