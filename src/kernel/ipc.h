// IPC messages, ports, and handler interfaces.
//
// All interaction between Nexus processes flows through synchronous IPC
// calls on kernel-managed ports (§2.4). The kernel authoritatively binds a
// port to its owning process, which lets the authorization layer attribute
// statements arriving on a port to that process without cryptography.
#ifndef NEXUS_KERNEL_IPC_H_
#define NEXUS_KERNEL_IPC_H_

#include <functional>
#include <string>
#include <vector>

#include "kernel/types.h"
#include "util/bytes.h"
#include "util/status.h"

namespace nexus::kernel {

struct IpcMessage {
  std::string operation;
  std::vector<std::string> args;
  Bytes data;
};

struct IpcReply {
  Status status;
  std::string text;
  Bytes data;
  int64_t value = 0;
};

// Context passed to port handlers and interceptors.
struct IpcContext {
  ProcessId caller = kKernelProcessId;
  PortId port = 0;
};

// A service listening on a port. Handlers run synchronously in the
// simulation (the paper's user-level servers: drivers, filesystem, guards,
// authorities).
class PortHandler {
 public:
  virtual ~PortHandler() = default;
  virtual IpcReply Handle(const IpcContext& context, const IpcMessage& message) = 0;
};

// Marshals a message into a flat buffer. The kernel performs this for every
// interposed call (parameter marshaling is the dominant fixed cost of
// interpositioning, §5.1).
Bytes MarshalMessage(const IpcMessage& message);
Result<IpcMessage> UnmarshalMessage(ByteView buffer);

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_IPC_H_
