// Cross-module integration tests: remote attestation between two Nexus
// instances, end-to-end application + storage flows, and randomized
// robustness sweeps over the NAL front end.
#include <gtest/gtest.h>

#include "apps/fauxbook.h"
#include "apps/movie_player.h"
#include "core/nexus.h"
#include "nal/parser.h"
#include "nal/prover.h"
#include "services/ipc_analyzer.h"
#include "storage/ssr.h"
#include "tpm/tpm.h"

namespace nexus {
namespace {

nal::Formula F(const std::string& text) { return *nal::ParseFormula(text); }

// ----------------------------------------------- Remote attestation flow

// The paper's §2.2 movie scenario across machines: a content server on
// machine B trusts a property certificate minted on machine A, without
// learning the player's hash.
TEST(RemoteAttestationTest, CertificateCrossesMachines) {
  // Machine A: the user's machine.
  Rng rng_a(1001);
  tpm::Tpm tpm_a(rng_a);
  core::Nexus machine_a(&tpm_a, core::NexusOptions{.seed = 1});
  auto player = *machine_a.CreateProcess("myplayer", ToBytes("homebrew-player"));
  auto analyzer_pid = *machine_a.CreateProcess("ipcanalyzer", ToBytes("analyzer"));
  services::IpcAnalyzer analyzer(&machine_a.kernel(), &machine_a.engine(), analyzer_pid);
  auto label = analyzer.AttestNoPath(player, "netdriver");
  ASSERT_TRUE(label.ok());
  core::Certificate cert = *machine_a.ExternalizeLabel(analyzer_pid, *label);

  // The wire: serialized bytes only.
  Bytes wire = cert.Serialize();

  // Machine B: the content owner's server. It trusts machine A's TPM EK
  // (e.g. via the TPM vendor's certificate).
  Rng rng_b(1002);
  tpm::Tpm tpm_b(rng_b);
  core::Nexus machine_b(&tpm_b, core::NexusOptions{.seed = 2});
  auto verifier_pid = *machine_b.CreateProcess("content-server", ToBytes("server"));

  core::Certificate received = *core::Certificate::Deserialize(wire);
  Result<core::LabelHandle> imported =
      machine_b.ImportCertificate(verifier_pid, received, tpm_a.endorsement_public_key());
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();

  nal::Formula statement = *machine_b.engine().StoreFor(verifier_pid).Get(*imported);
  // The speaker chain is rooted in machine A's TPM, and the statement
  // carries the no-leak property — no binary hash anywhere.
  // After the wire round trip the dotted chain reparses with base "tpm".
  EXPECT_EQ(statement->speaker().base().substr(0, 3), "tpm");
  EXPECT_NE(statement->ToString().find("hasPath"), std::string::npos);
  EXPECT_EQ(statement->ToString().find("launchHash"), std::string::npos);

  // Machine B can now discharge its goal from the imported credential.
  nal::Formula goal = nal::FormulaNode::Says(
      statement->speaker(), statement->child1());
  auto proof = nal::AutoProve(goal, machine_b.engine().StoreFor(verifier_pid).All());
  ASSERT_TRUE(proof.ok());
  EXPECT_TRUE(nal::CheckProof(*proof, goal,
                              machine_b.engine().StoreFor(verifier_pid).All())
                  .status.ok());
}

TEST(RemoteAttestationTest, CertificateFromWrongTpmRejected) {
  Rng rng_a(1003);
  tpm::Tpm tpm_a(rng_a);
  core::Nexus machine_a(&tpm_a, core::NexusOptions{.seed = 3});
  auto pid = *machine_a.CreateProcess("p", ToBytes("p"));
  core::Certificate cert =
      *machine_a.ExternalizeLabel(pid, *machine_a.engine().Say(pid, "ok()"));

  Rng rng_c(1004);
  crypto::RsaKeyPair unrelated = crypto::GenerateRsaKeyPair(rng_c, 512);
  Rng rng_b(1005);
  tpm::Tpm tpm_b(rng_b);
  core::Nexus machine_b(&tpm_b, core::NexusOptions{.seed = 4});
  auto verifier = *machine_b.CreateProcess("v", ToBytes("v"));
  EXPECT_FALSE(machine_b.ImportCertificate(verifier, cert, unrelated.public_key).ok());
}

// ----------------------------------------- Fauxbook persisted over SSRs

TEST(FauxbookStorageTest, FeedsPersistAcrossRebootViaSsr) {
  Rng tpm_rng(1006);
  tpm::Tpm t(tpm_rng);
  core::Nexus nexus(&t);
  apps::Fauxbook fauxbook(&nexus);
  fauxbook.AddUser("alice");
  fauxbook.PostStatus("alice", "persist me");
  Bytes page = *fauxbook.ServeDynamic("alice");

  // Persist the rendered page into an encrypted SSR, reboot, recover.
  storage::BlockDevice disk;
  storage::VdirTable vdirs = *storage::VdirTable::Boot(&t, &disk);
  storage::VkeyTable vkeys(&t, &nexus.rng());
  storage::SsrManager ssrs(&disk, &vdirs, &vkeys);
  storage::VkeyId key = *vkeys.Create();
  storage::SsrId region = *ssrs.Create(true, key, 5);
  ASSERT_TRUE(ssrs.Write(region, 0, page).ok());

  core::Nexus rebooted(&t);  // Same TPM: NK recovered via unseal.
  storage::VdirTable vdirs2 = *storage::VdirTable::Boot(&t, &disk);
  storage::SsrManager ssrs2(&disk, &vdirs2, &vkeys);
  ASSERT_TRUE(ssrs2.Recover().ok());
  EXPECT_EQ(*ssrs2.Read(region, 0, page.size()), page);
}

// --------------------------------------------------- Randomized sweeps

class ParserRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

// Random formula trees must survive print->parse->print fixpoint.
TEST_P(ParserRobustnessTest, PrintParseFixpoint) {
  Rng rng(GetParam());
  std::function<nal::Formula(int)> random_formula = [&](int depth) -> nal::Formula {
    if (depth <= 0 || rng.NextBool(0.3)) {
      switch (rng.NextBelow(3)) {
        case 0:
          return nal::FormulaNode::Pred(
              "p" + std::to_string(rng.NextBelow(5)),
              {nal::Term::Symbol("s" + std::to_string(rng.NextBelow(3))),
               nal::Term::Int(static_cast<int64_t>(rng.NextBelow(100)))});
        case 1:
          return nal::FormulaNode::Compare(
              nal::CompareOp::kLt, nal::Term::Symbol("TimeNow"),
              nal::Term::Int(static_cast<int64_t>(rng.NextBelow(10000))));
        default:
          return nal::FormulaNode::SpeaksFor(
              nal::Principal("A" + std::to_string(rng.NextBelow(3))),
              nal::Principal("B" + std::to_string(rng.NextBelow(3))),
              rng.NextBool(0.5) ? std::optional<std::string>("scope") : std::nullopt);
      }
    }
    switch (rng.NextBelow(5)) {
      case 0:
        return nal::FormulaNode::And(random_formula(depth - 1), random_formula(depth - 1));
      case 1:
        return nal::FormulaNode::Or(random_formula(depth - 1), random_formula(depth - 1));
      case 2:
        return nal::FormulaNode::Implies(random_formula(depth - 1),
                                         random_formula(depth - 1));
      case 3:
        return nal::FormulaNode::Not(random_formula(depth - 1));
      default:
        return nal::FormulaNode::Says(nal::Principal("P" + std::to_string(rng.NextBelow(4))),
                                      random_formula(depth - 1));
    }
  };

  for (int i = 0; i < 50; ++i) {
    nal::Formula original = random_formula(4);
    Result<nal::Formula> reparsed = nal::ParseFormula(original->ToString());
    ASSERT_TRUE(reparsed.ok()) << original->ToString() << " -> "
                               << reparsed.status().ToString();
    EXPECT_TRUE(nal::Equals(original, *reparsed)) << original->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest, ::testing::Values(11, 22, 33, 44));

// The parser must reject (not crash on) arbitrary byte noise.
class ParserNoiseTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserNoiseTest, GarbageNeverCrashes) {
  Rng rng(GetParam());
  const char alphabet[] = "abcXYZ01 ().,$<>=!\"[]/\\\n\tspeaksforsaysandornot";
  for (int i = 0; i < 300; ++i) {
    std::string noise;
    size_t len = rng.NextBelow(60);
    for (size_t c = 0; c < len; ++c) {
      noise.push_back(alphabet[rng.NextBelow(sizeof(alphabet) - 1)]);
    }
    Result<nal::Formula> parsed = nal::ParseFormula(noise);
    if (parsed.ok()) {
      // Whatever parsed must round-trip.
      Result<nal::Formula> again = nal::ParseFormula((*parsed)->ToString());
      EXPECT_TRUE(again.ok());
    }
    Result<nal::Proof> proof = nal::DeserializeProof(noise);
    (void)proof;  // Must not crash; errors are fine.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserNoiseTest, ::testing::Values(7, 8, 9));

// Random delegation graphs: AutoProve never produces a proof the checker
// rejects, and never proves a goal with no delegation path.
class ProverSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProverSoundnessTest, ProverAgreesWithGraphReachability) {
  Rng rng(GetParam());
  constexpr int kPrincipals = 6;
  // Random edges: j says (i speaksfor j).
  std::vector<std::vector<bool>> edge(kPrincipals, std::vector<bool>(kPrincipals, false));
  std::vector<nal::Formula> creds;
  for (int i = 0; i < kPrincipals; ++i) {
    for (int j = 0; j < kPrincipals; ++j) {
      if (i != j && rng.NextBool(0.25)) {
        edge[i][j] = true;
        creds.push_back(F("Q" + std::to_string(j) + " says (Q" + std::to_string(i) +
                          " speaksfor Q" + std::to_string(j) + ")"));
      }
    }
  }
  creds.push_back(F("Q0 says fact()"));

  // Transitive closure of "statements by 0 reach j".
  std::vector<bool> reachable(kPrincipals, false);
  reachable[0] = true;
  for (int pass = 0; pass < kPrincipals; ++pass) {
    for (int i = 0; i < kPrincipals; ++i) {
      for (int j = 0; j < kPrincipals; ++j) {
        if (reachable[i] && edge[i][j]) {
          reachable[j] = true;
        }
      }
    }
  }

  for (int j = 0; j < kPrincipals; ++j) {
    nal::Formula goal = F("Q" + std::to_string(j) + " says fact()");
    nal::ProverOptions options;
    options.max_depth = 12;
    Result<nal::Proof> proof = nal::AutoProve(goal, creds, options);
    if (proof.ok()) {
      // Soundness: the checker accepts, and the graph agrees.
      EXPECT_TRUE(nal::CheckProof(*proof, goal, creds).status.ok());
      EXPECT_TRUE(reachable[j]) << "prover proved an unreachable delegation to Q" << j;
    } else if (reachable[j]) {
      // The bounded prover may miss deep chains; it must never be unsound,
      // and within this depth it should find paths up to the bound.
      // (No assertion: incompleteness is permitted by design.)
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProverSoundnessTest,
                         ::testing::Values(101, 202, 303, 404, 505));

// --------------------------------------------- Guard/engine consistency

TEST(EndToEndConsistencyTest, CacheAndNoCacheAgreeOnVerdicts) {
  Rng tpm_rng(1007);
  tpm::Tpm t(tpm_rng);
  core::Nexus nexus(&t);
  auto owner = *nexus.CreateProcess("owner", ToBytes("o"));
  Rng rng(2024);

  for (int round = 0; round < 40; ++round) {
    auto subject = *nexus.CreateProcess("s" + std::to_string(round), ToBytes("s"));
    std::string object = "obj" + std::to_string(round % 7);
    nexus.engine().RegisterObject(object, owner, kernel::kKernelProcessId);
    bool grant = rng.NextBool(0.5);
    nal::Formula goal = F("Cert says ok" + std::to_string(round) + "()");
    nexus.engine().SetGoal(owner, "use", object, goal);
    if (grant) {
      nexus.engine().SayAs(nal::Principal("Cert"), F("ok" + std::to_string(round) + "()"));
      auto creds = nexus.engine().CollectCredentials(subject, object);
      nexus.engine().SetProof(subject, "use", object, *nal::AutoProve(goal, creds));
    }
    nexus.kernel().set_decision_cache_enabled(true);
    Status first = nexus.kernel().Authorize(subject, "use", object);
    Status second = nexus.kernel().Authorize(subject, "use", object);  // Cached.
    nexus.kernel().set_decision_cache_enabled(false);
    Status uncached = nexus.kernel().Authorize(subject, "use", object);
    EXPECT_EQ(first.ok(), grant) << round;
    EXPECT_EQ(first.ok(), second.ok()) << round;
    EXPECT_EQ(first.ok(), uncached.ok()) << round;
  }
}

}  // namespace
}  // namespace nexus
