// The user-level RAM filesystem server.
//
// Nexus implements filesystem functionality outside the kernel; file
// syscalls are forwarded over IPC to this server (which is why Table 1's
// open/close/read/write are 2-3x a monolithic kernel's). Per-file, per-
// operation goal formulas are enforced by routing each access through the
// kernel's Authorize path with object "file:<path>".
//
// Hot-path interning: operation ids are hoisted once, and each file's
// "file:<path>" object id is interned once (charged to the opener's name
// quota) and memoized — an open file descriptor carries its ObjectId, so
// the per-read/per-write authorization is a pure integer-tuple
// AuthzRequest with no string built or hashed (ROADMAP "Interned fast
// paths").
//
// Zero-copy data plane: file contents live in ref-counted buffers, so a
// read reply is a SLICE of the backing store (kernel/payload.h) rather
// than a copy, and a write to a file with outstanding read slices clones
// the buffer first — readers keep the content they sliced (snapshot
// isolation), writers never scribble under them.
//
// The server follows the single-dispatcher contract of user-level
// services: one Handle (or HandleMany batch) at a time. HandleMany
// front-loads the batch's authorization tuples into ONE
// Kernel::AuthorizeBatch upcall, then executes the verbs serially against
// the pre-fetched verdicts.
#ifndef NEXUS_KERNEL_FILESERVER_H_
#define NEXUS_KERNEL_FILESERVER_H_

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "kernel/ipc.h"
#include "kernel/kernel.h"

namespace nexus::kernel {

class FileServer : public PortHandler {
 public:
  explicit FileServer(Kernel* kernel) : kernel_(kernel) {}

  // Operations: create(path), open(path)->fd, close(fd), read(fd, off, len)
  // -> data, write(fd, off)+data, unlink(path), stat(path)->size.
  IpcReply Handle(const IpcContext& context, const IpcMessage& message) override;

  // Batched entry: one AuthorizeBatch for the whole batch, then the same
  // per-message semantics as N serial Handle calls.
  void HandleMany(const IpcContext& context, std::span<const IpcMessage> messages,
                  std::span<IpcReply> replies) override;

  // Direct (non-IPC) access for tests and setup code.
  Status CreateFile(const std::string& path, ByteView content = {});
  Result<Bytes> ReadFile(const std::string& path) const;
  bool Exists(std::string_view path) const { return files_.contains(path); }
  size_t FileCount() const { return files_.size(); }

 private:
  struct OpenFile {
    std::string path;
    ProcessId owner;
    // The interned "file:<path>" identity, resolved at open: reads and
    // writes authorize with it directly.
    ObjectId object = 0;
  };

  // A batch-prefetched verdict: HandleWith consults it instead of
  // upcalling Authorize when the request it builds matches the tuple the
  // prefetch pass predicted.
  struct Prejudged {
    AuthzRequest request;
    Status verdict;
  };

  IpcReply Error(Status status) { return IpcReply(std::move(status)); }

  // The single verb dispatcher behind both entry points. `pre` is null on
  // the serial path; on the batched path it carries this message's
  // prefetched verdict.
  IpcReply HandleWith(const IpcContext& context, const IpcMessage& message,
                      const Prejudged* pre);

  // Best-effort prediction of the authorization tuple HandleWith will
  // build for this message — nullopt when the verb doesn't authorize or
  // the message won't survive argument validation.
  std::optional<AuthzRequest> AuthzFor(const IpcContext& context, const IpcMessage& message);

  // Consult the prefetched verdict when it matches, else fall back to the
  // kernel (a batch message whose state changed under an earlier message
  // in the same batch re-authorizes serially).
  Status Authorized(const Prejudged* pre, const AuthzRequest& request);

  // The memoized "file:<path>" object id, interning (charged to `caller`)
  // on first sight of the path. Builds exactly ONE heap string per novel
  // path; the memoized hit builds none.
  Result<ObjectId> FileObject(ProcessId caller, std::string_view path);

  // The ref-counted backing buffer for `path`, created empty on first
  // touch (matches the historical files_[path] semantics: a read or write
  // through an fd whose path was unlinked resurrects an empty file).
  std::shared_ptr<Bytes>& ContentFor(const std::string& path);

  Kernel* kernel_;
  // Transparent lookups: path probes from string_view slots allocate no
  // key string (matching the typed ABI's zero-string goal). Values are
  // ref-counted so read replies can slice them without copying.
  std::map<std::string, std::shared_ptr<Bytes>, std::less<>> files_;
  std::map<int64_t, OpenFile> open_files_;
  std::unordered_map<std::string, ObjectId, TransparentStringHash, TransparentStringEq>
      file_objects_;
  int64_t next_fd_ = 3;
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_FILESERVER_H_
