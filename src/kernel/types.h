// Shared identifier types for the Nexus kernel simulation.
#ifndef NEXUS_KERNEL_TYPES_H_
#define NEXUS_KERNEL_TYPES_H_

#include <cstdint>
#include <string>

namespace nexus::kernel {

using ProcessId = uint64_t;
using PortId = uint64_t;

inline constexpr ProcessId kKernelProcessId = 0;

// The system calls measured in Table 1 plus the logical-attestation control
// calls (§2.2–§2.5, §3.2).
enum class Syscall : uint8_t {
  kNull = 0,
  kGetPpid,
  kGetTimeOfDay,
  kYield,
  kOpen,
  kClose,
  kRead,
  kWrite,
  kSay,
  kSetGoal,
  kSetProof,
  kInterpose,
  kIpcCall,
  kProcRead,
};

std::string_view SyscallName(Syscall call);

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_TYPES_H_
