// Ref-counted, offset-sliced IPC payload.
//
// The v2 typed ABI removed per-argument heap strings; this removes the
// per-PAYLOAD memcpys. A Payload is a (shared arena, offset, length)
// triple: copying one bumps a refcount, slicing a server's backing store
// into a reply costs nothing, and a reply can outlive the store entry it
// was sliced from (the arena lives until the last reference drops). The
// LRPC idiom from the paper's lineage — share the bytes across the
// protection-domain boundary, copy only on divergence.
//
// Mutation is copy-on-write and EXPLICIT: the read surface is const
// (data/begin/end/view), and writers go through MutableData()/resize(),
// which detach from a shared arena before touching bytes — a monitor
// rewriting a reply that aliases the request (or the fileserver's store)
// can never corrupt what it borrowed from. Shrinking resize() is
// zero-copy (the slice just narrows); only growth and shared-arena
// detaches copy.
//
// Every byte-copy the class performs bumps IpcPayloadCopyCount() — the
// payload twin of IpcTextPayloadCount(). Refcount aliasing never bumps
// it, so "this 64KiB read was not memcpy'd end to end" is a checkable
// assertion, not a hope.
#ifndef NEXUS_KERNEL_PAYLOAD_H_
#define NEXUS_KERNEL_PAYLOAD_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <utility>

#include "util/bytes.h"

namespace nexus::kernel {

// Process-wide count of payload byte-copies performed by Payload (counted
// copies in/out, copy-on-write detaches, growth). The zero-copy audit
// snapshots it around an operation and asserts it did not move.
uint64_t IpcPayloadCopyCount();

class Payload {
 public:
  Payload() = default;

  // Adopts the buffer — no byte copy (the move-in path for producers that
  // already own a Bytes).
  Payload(Bytes&& bytes);
  // Counted copy: the caller keeps its buffer, we clone it.
  explicit Payload(const Bytes& bytes);
  Payload(std::initializer_list<uint8_t> init);

  Payload(const Payload&) = default;             // refcount bump, no copy
  Payload(Payload&&) noexcept = default;
  Payload& operator=(const Payload&) = default;  // refcount bump, no copy
  Payload& operator=(Payload&&) noexcept = default;
  Payload& operator=(Bytes&& bytes);             // adopt, no copy
  Payload& operator=(std::initializer_list<uint8_t> init) {
    *this = Payload(init);
    return *this;
  }

  // Zero-copy alias of [offset, offset+length) of a shared arena — the
  // fileserver hands back a slice of its backing store with this. The
  // range is clamped to the arena's size.
  static Payload Slice(std::shared_ptr<Bytes> arena, size_t offset, size_t length);
  // Counted copy of an arbitrary view.
  static Payload Copy(ByteView bytes);

  // ---- Read surface (const; never copies, never detaches).
  size_t size() const { return length_; }
  bool empty() const { return length_ == 0; }
  const uint8_t* data() const { return length_ == 0 ? nullptr : arena_->data() + offset_; }
  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + length_; }
  ByteView view() const { return ByteView(data(), length_); }
  operator ByteView() const { return view(); }

  // True when the arena is shared with another Payload or a producer's
  // store — the aliasing the zero-copy tests assert on.
  bool aliased() const { return arena_ != nullptr && arena_.use_count() > 1; }

  // ---- Write surface (copy-on-write; the ONLY ways to touch bytes).
  // A writable pointer to this payload's bytes. Detaches (one counted
  // copy of the current view) iff the arena is shared; a uniquely-owned
  // payload mutates in place.
  uint8_t* MutableData();
  // Shrinking narrows the slice in place — zero-copy, the redaction
  // clamp's hot path. Growth detaches into an owned buffer (old bytes
  // copied, new bytes zero).
  void resize(size_t n);
  void clear() {
    arena_.reset();
    offset_ = 0;
    length_ = 0;
  }
  // Counted copy-in / copy-out for the boundaries that genuinely need an
  // owned buffer.
  void assign(ByteView bytes);
  Bytes ToOwned() const;

  friend bool operator==(const Payload& a, const Payload& b) {
    return ViewEquals(a.view(), b.view());
  }
  friend bool operator==(const Payload& a, const Bytes& b) {
    return ViewEquals(a.view(), ByteView(b.data(), b.size()));
  }
  friend bool operator==(const Bytes& a, const Payload& b) { return b == a; }

 private:
  static bool ViewEquals(ByteView a, ByteView b);
  // Replaces the arena with a uniquely-owned copy of the current view,
  // sized `n` (extra bytes zero). Counts one copy when bytes move.
  void Detach(size_t n);

  std::shared_ptr<Bytes> arena_;
  size_t offset_ = 0;
  size_t length_ = 0;
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_PAYLOAD_H_
