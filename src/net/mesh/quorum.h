// K-of-N quorum vouching over mesh peers.
//
// A single RemoteAuthority turns "peer unreachable within the deadline"
// into a deny — correct but brittle: one flapping link vetoes every
// authorization it guards. QuorumAuthority replaces the single peer with N
// members (typically RemoteAuthoritys to N mesh nodes holding replicas of
// the dynamic state): a statement is vouched iff at least K members
// responsively vouch it. Denies keep their cause: no_quorum (enough
// members answered, fewer than K said yes) vs timeout (so many members
// were unresponsive that K yes-votes were arithmetically impossible).
//
// Latency: the batch is issued to ALL live members via
// VouchBatchAsyncDetailed BEFORE any Wait, so the round trips overlap on
// the fabric and the consultation costs max-of-K, not sum-of-K — the same
// discipline Guard::CheckBatch applies across authorities, proven on the
// simulated clock by the mesh tests.
//
// Backoff: a member that fails to answer `failures_before_backoff`
// consecutive times is sidelined for `backoff_us` of simulated time —
// queries during the window skip it entirely (no wasted wire traffic, no
// per-query timeout stall on a dead peer). Any responsive answer resets
// the member.
#ifndef NEXUS_NET_MESH_QUORUM_H_
#define NEXUS_NET_MESH_QUORUM_H_

#include <memory>
#include <mutex>
#include <vector>

#include "core/authority.h"
#include "net/node.h"
#include "util/metrics.h"

namespace nexus::net::mesh {

struct QuorumPolicy {
  size_t quorum = 1;  // K yes-votes required per statement.
  // Consecutive unresponsive rounds before a member is sidelined.
  uint32_t failures_before_backoff = 1;
  // How long (simulated us) a sidelined member is skipped.
  uint64_t backoff_us = 200000;
};

class QuorumAuthority : public core::Authority {
 public:
  using HandlesPredicate = std::function<bool(const nal::Formula&)>;

  struct Stats {
    uint64_t statements = 0;        // Statements decided (batched or not).
    uint64_t vouched = 0;           // Reached quorum.
    uint64_t denied_no_quorum = 0;  // Enough answers, fewer than K yes.
    uint64_t denied_timeout = 0;    // Unresponsive members made K impossible.
    uint64_t member_rounds = 0;     // Per-member batch round trips issued.
    uint64_t members_skipped = 0;   // Sidelined members not consulted.
  };

  // `transport` provides the simulated clock for backoff windows; `handles`
  // scopes which statements this authority routes (nullptr = all).
  QuorumAuthority(Transport* transport, QuorumPolicy policy,
                  HandlesPredicate handles = nullptr);

  // Members are registered at wiring time, before concurrent traffic.
  void AddMember(core::Authority* member);
  size_t member_count() const { return members_.size(); }

  bool Handles(const nal::Formula& statement) const override;
  bool Vouches(const nal::Formula& statement) override;
  bool VouchesWithin(const nal::Formula& statement, uint64_t timeout_us) override;
  std::vector<bool> VouchBatch(std::span<const nal::Formula> statements,
                               uint64_t timeout_us) override;
  // Issues to every live member before any Wait: max-of-K latency.
  std::unique_ptr<core::VouchFuture> VouchBatchAsync(
      std::span<const nal::Formula> statements, uint64_t timeout_us) override;
  bool IsRemote() const override { return true; }

  Stats stats() const {
    return Stats{stats_.statements->Value(),      stats_.vouched->Value(),
                 stats_.denied_no_quorum->Value(), stats_.denied_timeout->Value(),
                 stats_.member_rounds->Value(),    stats_.members_skipped->Value()};
  }

 private:
  struct MemberState {
    uint32_t consecutive_failures = 0;
    uint64_t backoff_until_us = 0;  // Simulated-clock instant; 0 = live.
  };

  // Tally one completed round; returns per-statement verdicts.
  std::vector<bool> Tally(
      std::span<const nal::Formula> statements,
      const std::vector<std::pair<size_t, core::VouchOutcome>>& outcomes);
  void RecordOutcome(size_t member, bool responsive);

  Transport* transport_;
  QuorumPolicy policy_;
  HandlesPredicate handles_;
  std::vector<core::Authority*> members_;

  mutable std::mutex mu_;  // member_state_ (backoff bookkeeping).
  std::vector<MemberState> member_state_;

  metrics::MetricGroup metrics_{&metrics::Registry::Global(), "quorum_authority"};
  struct {
    metrics::Counter* statements;
    metrics::Counter* vouched;
    metrics::Counter* denied_no_quorum;
    metrics::Counter* denied_timeout;
    metrics::Counter* member_rounds;
    metrics::Counter* members_skipped;
  } stats_{metrics_.NewCounter("statements"),       metrics_.NewCounter("vouched"),
           metrics_.NewCounter("denied_no_quorum"), metrics_.NewCounter("denied_timeout"),
           metrics_.NewCounter("member_rounds"),    metrics_.NewCounter("members_skipped")};
};

}  // namespace nexus::net::mesh

#endif  // NEXUS_NET_MESH_QUORUM_H_
