#include "kernel/types.h"

namespace nexus::kernel {

NameTable& OpTable() {
  static NameTable* table = new NameTable();
  return *table;
}

NameTable& ObjectTable() {
  static NameTable* table = new NameTable();
  return *table;
}

}  // namespace nexus::kernel
