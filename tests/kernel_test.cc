#include <gtest/gtest.h>

#include <set>

#include "kernel/decision_cache.h"
#include "nal/interner.h"
#include "nal/parser.h"
#include "kernel/fileserver.h"
#include "kernel/hash_attestation.h"
#include "kernel/kernel.h"
#include "kernel/sched.h"

namespace nexus::kernel {
namespace {

// Records calls; used as both a port handler and an interceptor target.
class EchoHandler : public PortHandler {
 public:
  IpcReply Handle(const IpcContext& context, const IpcMessage& message) override {
    ++calls;
    last_caller = context.caller;
    last_operation = std::string(message.operation());
    // Legacy-shaped echo (text = op name, value = argc) through the v2
    // quarantine: the compat accessors read the slots back.
    return IpcReply::FromLegacy(OkStatus(), message.operation(), message.data,
                                static_cast<int64_t>(message.args.size()));
  }
  int calls = 0;
  ProcessId last_caller = 0;
  std::string last_operation;
};

class DenyAllEngine : public AuthorizationEngine {
 public:
  AuthzDecision Authorize(const AuthzRequest&) override {
    ++upcalls;
    return AuthzDecision::Deny(PermissionDenied("deny-all"), cacheable);
  }
  int upcalls = 0;
  bool cacheable = true;
};

class AllowAllEngine : public AuthorizationEngine {
 public:
  AuthzDecision Authorize(const AuthzRequest&) override {
    ++upcalls;
    return AuthzDecision::Allow(cacheable);
  }
  int upcalls = 0;
  bool cacheable = true;
};

// ---------------------------------------------------------------- Process

TEST(KernelProcessTest, CreateAndQuery) {
  Kernel k;
  Result<ProcessId> pid = k.CreateProcess("webserver", ToBytes("lighttpd-binary"));
  ASSERT_TRUE(pid.ok());
  EXPECT_TRUE(k.IsAlive(*pid));
  EXPECT_EQ(*k.GetParent(*pid), kKernelProcessId);
  EXPECT_EQ((*k.GetProcess(*pid))->name, "webserver");
}

TEST(KernelProcessTest, PrincipalNaming) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  EXPECT_EQ(k.ProcessPrincipal(pid).ToString(), "Nexus.ipd." + std::to_string(pid));
  EXPECT_TRUE(k.KernelPrincipal().IsPrefixOf(k.ProcessPrincipal(pid)));
  EXPECT_EQ(Kernel::ProcPath(pid), "/proc/ipd/" + std::to_string(pid));
}

TEST(KernelProcessTest, ChildInheritsQuotaRoot) {
  Kernel k;
  ProcessId root = *k.CreateProcess("root", ToBytes("r"));
  ProcessId child = *k.CreateProcess("child", ToBytes("c"), root);
  ProcessId grandchild = *k.CreateProcess("gc", ToBytes("g"), child);
  EXPECT_EQ((*k.GetProcess(child))->quota_root, root);
  EXPECT_EQ((*k.GetProcess(grandchild))->quota_root, root);
}

TEST(KernelProcessTest, CreateUnderDeadParentFails) {
  Kernel k;
  ProcessId p = *k.CreateProcess("p", ToBytes("b"));
  k.KillProcess(p);
  EXPECT_FALSE(k.CreateProcess("c", ToBytes("c"), p).ok());
}

TEST(KernelProcessTest, KillRemovesProcfsNodesAndPorts) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  PortId port = *k.CreatePort(pid);
  EXPECT_TRUE(k.procfs().Read(Kernel::ProcPath(pid) + "/name").ok());
  ASSERT_TRUE(k.KillProcess(pid).ok());
  EXPECT_FALSE(k.IsAlive(pid));
  EXPECT_FALSE(k.procfs().Read(Kernel::ProcPath(pid) + "/name").ok());
  EXPECT_FALSE(k.PortOwner(port).ok());
}

TEST(KernelProcessTest, LaunchHashPublished) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("binary-image"));
  Result<std::string> hash = k.procfs().Read(Kernel::ProcPath(pid) + "/hash");
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(hash->size(), 64u);  // SHA-256 hex.
}

TEST(KernelProcessTest, SyscallRestrictionIsMonotone) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  ASSERT_TRUE(k.RestrictSyscalls(pid, {Syscall::kNull, Syscall::kGetPpid}).ok());
  // Narrowing further is fine.
  ASSERT_TRUE(k.RestrictSyscalls(pid, {Syscall::kNull}).ok());
  // Re-acquiring a relinquished call is not.
  EXPECT_FALSE(k.RestrictSyscalls(pid, {Syscall::kNull, Syscall::kYield}).ok());
}

TEST(KernelProcessTest, RelinquishedSyscallDenied) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  k.RestrictSyscalls(pid, {Syscall::kNull});
  EXPECT_TRUE(k.Invoke(pid, Syscall::kNull, {}).status.ok());
  EXPECT_EQ(k.Invoke(pid, Syscall::kGetPpid, {}).status.code(), ErrorCode::kPermissionDenied);
}

// ------------------------------------------------------------------- IPC

TEST(KernelIpcTest, CallDispatchesToHandler) {
  Kernel k;
  ProcessId server = *k.CreateProcess("server", ToBytes("s"));
  ProcessId client = *k.CreateProcess("client", ToBytes("c"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);

  IpcMessage msg = IpcMessage::Of("ping");
  msg.AddString("a").AddString("b");
  IpcReply reply = k.Call(client, port, msg);
  EXPECT_TRUE(reply.status.ok());
  EXPECT_EQ(reply.text(), "ping");
  EXPECT_EQ(reply.value(), 2);
  EXPECT_EQ(handler.last_caller, client);
}

TEST(KernelIpcTest, CallOnUnboundPortFails) {
  Kernel k;
  ProcessId server = *k.CreateProcess("server", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EXPECT_EQ(k.Call(server, port, {}).status.code(), ErrorCode::kUnavailable);
}

TEST(KernelIpcTest, CallOnMissingPortFails) {
  Kernel k;
  EXPECT_EQ(k.Call(kKernelProcessId, 999, {}).status.code(), ErrorCode::kNotFound);
}

TEST(KernelIpcTest, ChannelsTrackConnectivity) {
  Kernel k;
  ProcessId a = *k.CreateProcess("a", ToBytes("a"));
  ProcessId b = *k.CreateProcess("b", ToBytes("b"));
  PortId port = *k.CreatePort(b);
  EXPECT_FALSE(k.HasChannel(a, port));
  ASSERT_TRUE(k.ConnectPort(a, port).ok());
  EXPECT_TRUE(k.HasChannel(a, port));
  ASSERT_TRUE(k.DisconnectPort(a, port).ok());
  EXPECT_FALSE(k.HasChannel(a, port));
}

TEST(KernelIpcTest, MarshalingRoundTrip) {
  IpcMessage msg = IpcMessage::Of("write");
  msg.AddU64(4).AddString("").AddString("arg with spaces");
  msg.data = {0x00, 0xff, 0x10};
  Result<Bytes> wire = MarshalMessage(msg);
  ASSERT_TRUE(wire.ok());
  Result<IpcMessage> round = UnmarshalMessage(*wire);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->operation(), msg.operation());
  EXPECT_EQ(*round, msg);
}

TEST(KernelIpcTest, UnmarshalRejectsTruncation) {
  IpcMessage msg = IpcMessage::Of("op");
  Bytes wire = *MarshalMessage(msg);
  wire.pop_back();
  EXPECT_FALSE(UnmarshalMessage(wire).ok());
}

// ------------------------------------------------------- Typed ABI v2

TEST(IpcAbiV2Test, WireRoundTripAllSlotTypes) {
  ObjectId obj = InternObject("file:/roundtrip");
  IpcMessage msg = IpcMessage::Of("roundtrip-op");
  msg.AddU64(~uint64_t{0})
      .AddProcess(12)
      .AddPort(999)
      .AddObject(obj)
      .AddFormula(77)
      .AddString("path with spaces")
      .AddBytes(Bytes{0x00, 0xff});
  msg.data = {0x01, 0x02, 0x03};
  Result<Bytes> wire = MarshalMessage(msg);
  ASSERT_TRUE(wire.ok());
  Result<IpcMessage> round = UnmarshalMessage(*wire);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(*round, msg);
  // Tags survive verbatim — a Process slot does not come back as a U64.
  EXPECT_EQ(round->args[0].tag(), ArgTag::kU64);
  EXPECT_EQ(round->args[1].tag(), ArgTag::kProcess);
  EXPECT_EQ(round->args[2].tag(), ArgTag::kPort);
  EXPECT_EQ(round->args[3].tag(), ArgTag::kObject);
  EXPECT_EQ(round->args[4].tag(), ArgTag::kFormula);
  EXPECT_EQ(round->args[5].tag(), ArgTag::kString);
  EXPECT_EQ(round->args[6].tag(), ArgTag::kBytes);
  EXPECT_EQ(*round->ArgString(5), "path with spaces");
}

TEST(IpcAbiV2Test, WireRoundTripPendingLegacyOp) {
  // A never-interned operation stays TEXT across the wire (the charged
  // resolution happens at the kernel boundary, not in the codec).
  IpcMessage msg = IpcMessage::FromLegacy("never-interned-op-roundtrip", {"a"});
  ASSERT_TRUE(msg.needs_op_resolution());
  Result<IpcMessage> round = UnmarshalMessage(*MarshalMessage(msg));
  ASSERT_TRUE(round.ok());
  EXPECT_TRUE(round->needs_op_resolution());
  EXPECT_EQ(round->operation(), "never-interned-op-roundtrip");
  EXPECT_EQ(*round, msg);
}

TEST(IpcAbiV2Test, EveryTruncatedPrefixIsRejected) {
  IpcMessage msg = IpcMessage::Of("truncate-op");
  msg.AddU64(4).AddString("s").AddBytes(Bytes{1, 2});
  msg.data = {9, 9, 9};
  Bytes wire = *MarshalMessage(msg);
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(UnmarshalMessage(ByteView(wire.data(), len)).ok()) << len;
  }
}

TEST(IpcAbiV2Test, TrailingBytesRejected) {
  Bytes wire = *MarshalMessage(IpcMessage::Of("trailing-op"));
  wire.push_back(0x00);
  EXPECT_FALSE(UnmarshalMessage(wire).ok());
}

TEST(IpcAbiV2Test, MalformedBuffersRejected) {
  // Hand-built wire images around a minimal valid skeleton:
  //   u8 version | u8 op-kind | u32 op-id | u8 argc | slots | u32 data-len
  auto skeleton = [](uint8_t argc) {
    Bytes wire;
    wire.push_back(2);  // version
    wire.push_back(0);  // interned op
    AppendU32(wire, 0);
    wire.push_back(argc);
    return wire;
  };
  {  // Unsupported version.
    Bytes wire = skeleton(0);
    AppendU32(wire, 0);
    wire[0] = 1;
    EXPECT_FALSE(UnmarshalMessage(wire).ok());
  }
  {  // Bad op kind.
    Bytes wire = skeleton(0);
    AppendU32(wire, 0);
    wire[1] = 9;
    EXPECT_FALSE(UnmarshalMessage(wire).ok());
  }
  {  // Unknown interned op id.
    Bytes wire;
    wire.push_back(2);
    wire.push_back(0);
    AppendU32(wire, 0x7fffffff);
    wire.push_back(0);
    AppendU32(wire, 0);
    Result<IpcMessage> r = UnmarshalMessage(wire);
    EXPECT_FALSE(r.ok());
  }
  {  // Slot-count overflow: more slots declared than ArgVec can hold.
    Bytes wire = skeleton(static_cast<uint8_t>(ArgVec::kMaxArgs + 1));
    AppendU32(wire, 0);
    EXPECT_FALSE(UnmarshalMessage(wire).ok());
  }
  {  // Bad slot tag.
    Bytes wire = skeleton(1);
    wire.push_back(0x63);  // not a tag
    AppendU64(wire, 5);
    AppendU32(wire, 0);
    EXPECT_FALSE(UnmarshalMessage(wire).ok());
  }
  {  // Forged object id: names nothing, must not reach dispatch.
    Bytes wire = skeleton(1);
    wire.push_back(static_cast<uint8_t>(ArgTag::kObject));
    AppendU64(wire, 0x7f7f7f7f);
    AppendU32(wire, 0);
    EXPECT_FALSE(UnmarshalMessage(wire).ok());
  }
  {  // Oversized string slot: past the per-slot payload bound.
    Bytes wire = skeleton(1);
    wire.push_back(static_cast<uint8_t>(ArgTag::kString));
    Bytes huge(kMaxArgPayload + 1, 'x');
    AppendLengthPrefixed(wire, huge);
    AppendU32(wire, 0);
    EXPECT_FALSE(UnmarshalMessage(wire).ok());
  }
  {  // Oversized data block.
    Bytes wire = skeleton(0);
    Bytes huge(kMaxIpcData + 1, 'x');
    AppendLengthPrefixed(wire, huge);
    EXPECT_FALSE(UnmarshalMessage(wire).ok());
  }
}

TEST(IpcAbiV2Test, ScalarAccessorsRejectMismatchedTags) {
  IpcMessage msg;
  msg.AddObject(InternObject("file:/tagged")).AddFormula(9).AddPort(4);
  // A slot tagged kObject is not a port, process, or formula.
  EXPECT_FALSE(msg.ArgPort(0).ok());
  EXPECT_FALSE(msg.ArgProcess(0).ok());
  EXPECT_FALSE(msg.ArgFormula(0).ok());
  EXPECT_TRUE(msg.ArgObject(0).ok());
  // Nor is a formula a port, or a port an object.
  EXPECT_FALSE(msg.ArgPort(1).ok());
  EXPECT_FALSE(msg.ArgObject(2).ok());
  EXPECT_TRUE(msg.ArgPort(2).ok());
}

TEST(IpcAbiV2Test, ForgedObjectIdInU64SlotIsRejected) {
  // The generic-integer coercion must not bypass the wire's forged-object
  // check: an unknown id would reach the fail-open bootstrap policy.
  IpcMessage msg;
  msg.AddU64(0x6eadbeef);
  EXPECT_FALSE(msg.ArgObject(0).ok());
  IpcMessage known;
  known.AddU64(InternObject("file:/known-coerce"));
  EXPECT_TRUE(known.ArgObject(0).ok());
}

TEST(IpcAbiV2Test, OverlongLegacyOpNameIsRejectedNotTruncated) {
  // Truncating would alias distinct long names to one identity while
  // other surfaces intern the full text; the kernel boundary rejects.
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  std::string longname(kMaxLegacyOpName + 1, 'q');
  IpcReply reply = k.Call(server, port, IpcMessage::FromLegacy(longname));
  EXPECT_EQ(reply.status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(handler.calls, 0);
  EXPECT_FALSE(FindOp(longname).has_value());
  // The Authorize string shim applies the same bound.
  EXPECT_EQ(k.Authorize(server, longname, "obj").code(), ErrorCode::kInvalidArgument);
}

TEST(IpcAbiV2Test, WireBoundsHoldWithInterpositionDisabled) {
  // A message the marshaled path rejects must not slip through just
  // because interposition is off — verdicts may not depend on whether a
  // monitor is present.
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  IpcMessage big = IpcMessage::Of("bounded-op");
  big.AddString(std::string(kMaxArgPayload + 1, 'p'));
  k.set_interposition_enabled(false);
  IpcReply bare = k.Call(server, port, big);
  k.set_interposition_enabled(true);
  IpcReply interposed = k.Call(server, port, big);
  EXPECT_EQ(bare.status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(interposed.status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(handler.calls, 0);
}

TEST(IpcAbiV2Test, ForgedIdsRejectedWithInterpositionDisabled) {
  // The forged-id rule is part of the bounds contract: a message carrying
  // an op or object id that names nothing is rejected on the bare path
  // exactly as the marshaled path rejects it.
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  k.set_interposition_enabled(false);

  IpcMessage forged_op;
  forged_op.op = 0x7fffffff;
  EXPECT_EQ(k.Call(server, port, forged_op).status.code(), ErrorCode::kInvalidArgument);

  IpcMessage forged_obj = IpcMessage::Of("audit-op");
  forged_obj.AddScalar(ArgTag::kObject, 0x6badbeef);
  EXPECT_EQ(k.Call(server, port, forged_obj).status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(handler.calls, 0);

  // Known ids sail through.
  IpcMessage fine = IpcMessage::Of("audit-op");
  fine.AddObject(InternObject("file:/audit-bare"));
  EXPECT_TRUE(k.Call(server, port, fine).status.ok());
}

TEST(IpcAbiV2Test, DoomedLegacyMessageDoesNotBurnOpQuota) {
  // Bounds are checked BEFORE the charged op resolution: a message that
  // will be rejected anyway must not grow the op table or consume quota,
  // with or without interposition.
  Kernel k;
  ProcessId caller = *k.CreateProcess("c", ToBytes("c"));
  PortId port = *k.CreatePort(caller);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  IpcMessage doomed = IpcMessage::FromLegacy("doomed-novel-op");
  doomed.data = Bytes(kMaxIpcData + 1, 0);
  for (bool interposed : {false, true}) {
    k.set_interposition_enabled(interposed);
    IpcReply reply = k.Call(caller, port, doomed);
    EXPECT_EQ(reply.status.code(), ErrorCode::kInvalidArgument) << interposed;
    EXPECT_FALSE(FindOp("doomed-novel-op").has_value()) << interposed;
  }
}

TEST(IpcAbiV2Test, SlotOverflowIsRejectedNotTruncated) {
  // Ten legacy args exceed the eight typed slots: the kernel must refuse
  // the call rather than silently drop arguments at a security boundary.
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  IpcMessage overflow = IpcMessage::FromLegacy(
      "x", {"1", "2", "3", "4", "5", "6", "7", "8", "9", "10"});
  EXPECT_TRUE(overflow.args_overflowed());
  IpcReply reply = k.Call(server, port, overflow);
  EXPECT_EQ(reply.status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(handler.calls, 0);
}

TEST(IpcAbiV2Test, InterposedScalarCallBuildsNoTextPayloads) {
  // The acceptance assertion for the zero-string hot path: an interposed
  // Call whose arguments are integers/ids moves NO text payloads through
  // the IPC layer — marshaling, unmarshaling, interception, and dispatch
  // are all id- and integer-typed.
  class ScalarAudit : public Interceptor {
   public:
    InterposeVerdict OnCall(const IpcContext&, IpcMessage& message) override {
      saw_text |= message.HasTextArgs();
      return InterposeVerdict::kAllow;
    }
    bool saw_text = false;
  };
  // A fully typed echo: the legacy EchoHandler's text-slot op echo would
  // itself count as a text payload, which is exactly what this test bans.
  class ScalarEcho : public PortHandler {
   public:
    IpcReply Handle(const IpcContext&, const IpcMessage& message) override {
      return IpcReply::Ok().AddU64(message.args.size());
    }
  };
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  ProcessId client = *k.CreateProcess("c", ToBytes("c"));
  PortId port = *k.CreatePort(server);
  ScalarEcho handler;
  k.BindHandler(port, &handler);
  ScalarAudit audit;
  ASSERT_TRUE(k.Interpose(server, port, &audit).ok());

  ObjectId obj = InternObject("file:/audited");
  IpcMessage msg = IpcMessage::Of("send");
  msg.AddU64(42).AddPort(port).AddObject(obj).AddProcess(client).AddFormula(7);
  ASSERT_TRUE(k.Call(client, port, msg).status.ok());  // Warm-up.

  uint64_t before = IpcTextPayloadCount();
  for (int i = 0; i < 100; ++i) {
    IpcReply reply = k.Call(client, port, msg);
    ASSERT_TRUE(reply.status.ok());
    ASSERT_EQ(reply.value(), 5);  // All five slots arrived.
  }
  EXPECT_EQ(IpcTextPayloadCount(), before)
      << "an integer/id-arg interposed call materialized text payloads";
  EXPECT_FALSE(audit.saw_text);
}

// ----------------------------------------------------- Reply ABI v2 wire
// The reply direction mirrors the request matrix: version byte, bounded
// status message, ≤8 typed slots over the same tag vocabulary, strict
// end-of-buffer — and anything malformed is rejected WHOLE.

nal::FormulaId InternTestFormula(std::string_view text) {
  Result<nal::Formula> f = nal::ParseFormula(text);
  EXPECT_TRUE(f.ok()) << text;
  return nal::Interner::Global().Intern(*f);
}

TEST(ReplyAbiV2Test, WireRoundTripAllSlotTypes) {
  nal::FormulaId fid = InternTestFormula("K says ok(reply)");
  ObjectId obj = InternObject("file:/reply-roundtrip");
  IpcReply reply = IpcReply::Ok();
  reply.AddU64(41).AddProcess(7).AddPort(3).AddObject(obj).AddFormula(fid);
  reply.AddString("diagnostic").AddBytes(Bytes{1, 2, 3});
  reply.data = {9, 8, 7};

  Result<Bytes> wire = MarshalReply(reply);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  Result<IpcReply> back = UnmarshalReply(*wire);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, reply);
  EXPECT_EQ(*back->ArgU64(0), 41u);
  EXPECT_EQ(*back->ArgProcess(1), 7u);
  EXPECT_EQ(*back->ArgPort(2), 3u);
  EXPECT_EQ(*back->ArgObject(3), obj);
  EXPECT_EQ(*back->ArgFormula(4), fid);
  EXPECT_EQ(*back->ArgString(5), "diagnostic");
  EXPECT_EQ(back->data, (Bytes{9, 8, 7}));
}

TEST(ReplyAbiV2Test, ErrorStatusRoundTrips) {
  IpcReply denied(Status(ErrorCode::kPermissionDenied, "proof expired"));
  Result<Bytes> wire = MarshalReply(denied);
  ASSERT_TRUE(wire.ok());
  Result<IpcReply> back = UnmarshalReply(*wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->status.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(back->status.message(), "proof expired");
}

TEST(ReplyAbiV2Test, EveryTruncatedPrefixIsRejected) {
  IpcReply reply = IpcReply::Ok();
  reply.AddU64(4).AddString("s").AddBytes(Bytes{1, 2});
  reply.data = {9, 9, 9};
  Bytes wire = *MarshalReply(reply);
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(UnmarshalReply(ByteView(wire.data(), len)).ok()) << len;
  }
}

TEST(ReplyAbiV2Test, TrailingBytesRejected) {
  Bytes wire = *MarshalReply(IpcReply::Ok());
  wire.push_back(0x00);
  EXPECT_FALSE(UnmarshalReply(wire).ok());
}

TEST(ReplyAbiV2Test, MalformedBuffersRejected) {
  // Hand-built reply wire images around a minimal valid skeleton:
  //   u8 version | u8 status code | u32-len message | u8 argc | slots |
  //   u32-len data
  auto skeleton = [](uint8_t argc) {
    Bytes wire;
    wire.push_back(2);  // version
    wire.push_back(0);  // kOk
    AppendU32(wire, 0);  // empty status message
    wire.push_back(argc);
    return wire;
  };
  {  // Unsupported version.
    Bytes wire = skeleton(0);
    AppendU32(wire, 0);
    wire[0] = 1;
    EXPECT_FALSE(UnmarshalReply(wire).ok());
  }
  {  // Status code past the enum: not a verdict any kernel produced.
    Bytes wire = skeleton(0);
    AppendU32(wire, 0);
    wire[1] = 0x7f;
    EXPECT_FALSE(UnmarshalReply(wire).ok());
  }
  {  // Oversized status message.
    Bytes wire;
    wire.push_back(2);
    wire.push_back(0);
    AppendLengthPrefixed(wire, Bytes(kMaxReplyStatusMessage + 1, 'm'));
    wire.push_back(0);
    AppendU32(wire, 0);
    EXPECT_FALSE(UnmarshalReply(wire).ok());
  }
  {  // Slot-count overflow.
    Bytes wire = skeleton(static_cast<uint8_t>(ArgVec::kMaxArgs + 1));
    AppendU32(wire, 0);
    EXPECT_FALSE(UnmarshalReply(wire).ok());
  }
  {  // Bad slot tag.
    Bytes wire = skeleton(1);
    wire.push_back(0x63);  // not a tag
    AppendU64(wire, 5);
    AppendU32(wire, 0);
    EXPECT_FALSE(UnmarshalReply(wire).ok());
  }
  {  // Forged object id.
    Bytes wire = skeleton(1);
    wire.push_back(static_cast<uint8_t>(ArgTag::kObject));
    AppendU64(wire, 0x7e7e7e7e);
    AppendU32(wire, 0);
    EXPECT_FALSE(UnmarshalReply(wire).ok());
  }
  {  // Forged formula id: a result naming a formula nobody interned can
     // only mislead its consumer — rejected whole, while the same wire
     // image with a REAL id is accepted.
    nal::FormulaId real = InternTestFormula("K says forged(check)");
    for (uint64_t id : {uint64_t{0x6c6c6c6c}, uint64_t{real}}) {
      Bytes wire = skeleton(1);
      wire.push_back(static_cast<uint8_t>(ArgTag::kFormula));
      AppendU64(wire, id);
      AppendU32(wire, 0);
      EXPECT_EQ(UnmarshalReply(wire).ok(), id == real) << id;
    }
  }
  {  // Oversized string slot.
    Bytes wire = skeleton(1);
    wire.push_back(static_cast<uint8_t>(ArgTag::kString));
    AppendLengthPrefixed(wire, Bytes(kMaxArgPayload + 1, 'x'));
    AppendU32(wire, 0);
    EXPECT_FALSE(UnmarshalReply(wire).ok());
  }
  {  // Oversized data block.
    Bytes wire = skeleton(0);
    AppendLengthPrefixed(wire, Bytes(kMaxIpcData + 1, 'x'));
    EXPECT_FALSE(UnmarshalReply(wire).ok());
  }
}

TEST(ReplyAbiV2Test, MarshalRejectsOutOfBoundsReplies) {
  {  // Slot overflow is sticky: the 9th builder call poisons the reply.
    IpcReply reply = IpcReply::Ok();
    for (int i = 0; i < 9; ++i) {
      reply.AddU64(i);
    }
    EXPECT_TRUE(reply.args_overflowed());
    EXPECT_FALSE(MarshalReply(reply).ok());
  }
  {  // Status message past the wire bound never marshals.
    IpcReply reply(InvalidArgument(std::string(kMaxReplyStatusMessage + 1, 'e')));
    EXPECT_FALSE(MarshalReply(reply).ok());
  }
}

TEST(ReplyAbiV2Test, MonitorPresenceDoesNotChangeVerdicts) {
  // Equivalence: for legacy-shaped AND typed messages, good and doomed,
  // the caller-visible verdict is identical with the interceptor chain
  // empty and with a pass-through monitor installed — the structural
  // interposition path enforces exactly the wire bounds the bare path
  // does, nothing more.
  class PassThrough : public Interceptor {
   public:
    InterposeVerdict OnCall(const IpcContext&, IpcMessage&) override {
      return InterposeVerdict::kAllow;
    }
  };
  IpcMessage typed = IpcMessage::Of("equiv-op");
  typed.AddU64(5).AddObject(InternObject("file:/equiv"));
  IpcMessage legacy = IpcMessage::FromLegacy("equiv-legacy-op", {"arg"});
  IpcMessage oversized = IpcMessage::Of("equiv-op");
  oversized.data = Bytes(kMaxIpcData + 1, 'x');
  IpcMessage overlong = IpcMessage::FromLegacy(std::string(kMaxLegacyOpName + 1, 'q'));
  const IpcMessage* probes[] = {&typed, &legacy, &oversized, &overlong};

  std::vector<ErrorCode> verdicts[2];
  for (int monitored = 0; monitored < 2; ++monitored) {
    Kernel k;
    ProcessId server = *k.CreateProcess("s", ToBytes("s"));
    ProcessId client = *k.CreateProcess("c", ToBytes("c"));
    PortId port = *k.CreatePort(server);
    EchoHandler handler;
    k.BindHandler(port, &handler);
    PassThrough monitor;
    if (monitored) {
      ASSERT_TRUE(k.Interpose(server, port, &monitor).ok());
    }
    for (const IpcMessage* probe : probes) {
      verdicts[monitored].push_back(k.Call(client, port, *probe).status.code());
    }
  }
  EXPECT_EQ(verdicts[0], verdicts[1]);
  EXPECT_EQ(verdicts[0][0], ErrorCode::kOk);
  EXPECT_EQ(verdicts[0][1], ErrorCode::kOk);
  EXPECT_EQ(verdicts[0][2], ErrorCode::kInvalidArgument);
  EXPECT_EQ(verdicts[0][3], ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------- Payload

TEST(PayloadTest, SliceAliasesWithoutCopying) {
  auto arena = std::make_shared<Bytes>(ToBytes("0123456789"));
  uint64_t before = IpcPayloadCopyCount();
  Payload slice = Payload::Slice(arena, 2, 3);
  EXPECT_EQ(IpcPayloadCopyCount(), before);
  EXPECT_EQ(ToString(slice.view()), "234");
  EXPECT_TRUE(slice.aliased());
  // Copying a Payload bumps a refcount, never bytes.
  Payload copy = slice;
  EXPECT_EQ(IpcPayloadCopyCount(), before);
  EXPECT_EQ(ToString(copy.view()), "234");
}

TEST(PayloadTest, RewritingAliasedReplyDoesNotCorruptRequest) {
  // The interposition hazard the zero-copy plane must survive: a reply
  // that borrows the request's bytes gets rewritten by a monitor. The
  // mutation surface detaches first; the request keeps its bytes.
  IpcMessage request;
  request.data = ToBytes("sensitive-request-bytes");
  IpcReply reply = IpcReply::Ok();
  reply.data = request.data;  // Borrow: refcount bump, zero copy.
  ASSERT_TRUE(reply.data.aliased());

  uint8_t* bytes = reply.data.MutableData();  // COW detach happens here.
  std::fill(bytes, bytes + reply.data.size(), uint8_t{'X'});
  EXPECT_EQ(ToString(request.data.view()), "sensitive-request-bytes");
  EXPECT_EQ(ToString(reply.data.view()), std::string(23, 'X'));
  EXPECT_FALSE(request.data.aliased());

  // Shrinking a borrowed reply narrows the slice without detaching.
  IpcReply clamp = IpcReply::Ok();
  clamp.data = request.data;
  uint64_t before = IpcPayloadCopyCount();
  clamp.data.resize(9);
  EXPECT_EQ(IpcPayloadCopyCount(), before);
  EXPECT_EQ(ToString(clamp.data.view()), "sensitive");
  EXPECT_EQ(ToString(request.data.view()), "sensitive-request-bytes");
}

TEST(PayloadTest, LifetimeMatrix) {
  {  // Reply outlives the request it borrowed from.
    Payload reply_data;
    {
      IpcMessage request;
      request.data = ToBytes("outlived-by-reply");
      reply_data = request.data;
    }  // Request gone; the arena lives until the last reference drops.
    EXPECT_EQ(ToString(reply_data.view()), "outlived-by-reply");
  }
  {  // Request outlives a reply that borrowed (and mutated) its bytes.
    IpcMessage request;
    request.data = ToBytes("outlives-the-reply");
    {
      IpcReply reply = IpcReply::Ok();
      reply.data = request.data;
      reply.data.MutableData()[0] = 'X';
    }
    EXPECT_EQ(ToString(request.data.view()), "outlives-the-reply");
  }
  {  // A slice outlives the producer's store entry (unlink under a read).
    Payload slice;
    {
      auto arena = std::make_shared<Bytes>(ToBytes("backing-store"));
      slice = Payload::Slice(arena, 0, 7);
    }  // Store entry dropped.
    EXPECT_EQ(ToString(slice.view()), "backing");
  }
}

// §2.9 applied to the OP table (ROADMAP "Name-table quotas", op side):
// operation names arriving through the legacy surfaces are charged to the
// caller's quota root; past the cap the call is denied with a reason and
// the table does not grow.
TEST(KernelOpQuotaTest, OpNameQuotaBoundsUntrustedInterning) {
  Kernel k;
  ProcessId prober = *k.CreateProcess("prober", ToBytes("p"));
  ProcessId child = *k.CreateProcess("accomplice", ToBytes("c"), prober);
  ProcessId bystander = *k.CreateProcess("bystander", ToBytes("b"));
  PortId port = *k.CreatePort(bystander);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  k.set_op_name_quota(2);

  // Two novel op names fit the quota (the echo handler answers anything).
  EXPECT_TRUE(k.Call(prober, port, IpcMessage::FromLegacy("opquota-novel-0")).status.ok());
  EXPECT_TRUE(k.Call(prober, port, IpcMessage::FromLegacy("opquota-novel-1")).status.ok());
  // The third is denied with a reason, and the table did not grow.
  Status over = k.Call(prober, port, IpcMessage::FromLegacy("opquota-novel-2")).status;
  EXPECT_EQ(over.code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(over.message().find("quota"), std::string::npos);
  EXPECT_FALSE(FindOp("opquota-novel-2").has_value());
  // Repeats of charged names stay free forever.
  EXPECT_TRUE(k.Call(prober, port, IpcMessage::FromLegacy("opquota-novel-0")).status.ok());
  // A child is charged to the same quota root.
  EXPECT_EQ(k.Call(child, port, IpcMessage::FromLegacy("opquota-novel-3")).status.code(),
            ErrorCode::kResourceExhausted);
  // An unrelated root has its own budget.
  EXPECT_TRUE(k.Call(bystander, port, IpcMessage::FromLegacy("opquota-novel-4")).status.ok());
  // The Authorize string shim routes through the same charge.
  EXPECT_EQ(k.Authorize(prober, "opquota-novel-5", "obj").code(),
            ErrorCode::kResourceExhausted);
  // Trusted interning (IpcMessage::Of, server startup) is never charged.
  EXPECT_NE(IpcMessage::Of("opquota-trusted").op, 0u);
}

TEST(SyscallTest, IpcCallForwardsTypedSlots) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  ProcessId client = *k.CreateProcess("c", ToBytes("c"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);

  // Inner operation as text (script-style): resolved through the charged
  // surface inside the nested Call.
  IpcMessage outer;
  outer.AddPort(port).AddString("ping").AddU64(5);
  IpcReply reply = k.Invoke(client, Syscall::kIpcCall, outer);
  ASSERT_TRUE(reply.status.ok()) << reply.status.ToString();
  EXPECT_EQ(reply.text(), "ping");
  EXPECT_EQ(reply.value(), 1);  // One forwarded slot.

  // Inner operation as a typed op id: no text anywhere.
  IpcMessage outer2;
  outer2.AddPort(port).AddU64(InternOp("ping")).AddU64(5).AddU64(6);
  reply = k.Invoke(client, Syscall::kIpcCall, outer2);
  ASSERT_TRUE(reply.status.ok());
  EXPECT_EQ(reply.text(), "ping");
  EXPECT_EQ(reply.value(), 2);

  // A forged op id is rejected before dispatch.
  IpcMessage outer3;
  outer3.AddPort(port).AddU64(0x7eadbeef);
  EXPECT_EQ(k.Invoke(client, Syscall::kIpcCall, outer3).status.code(),
            ErrorCode::kInvalidArgument);
}

TEST(SyscallTest, ProcReadMemoizesProcObjects) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("reader", ToBytes("r"));
  k.procfs().PublishValue(kKernelProcessId, "/proc/memo-test-unique", "v");
  k.set_object_name_quota(1);

  size_t memo_before = k.ProcObjectMemoSize();
  IpcMessage msg;
  msg.AddString("/proc/memo-test-unique");
  IpcReply first = k.Invoke(pid, Syscall::kProcRead, msg);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_EQ(first.text(), "v");
  EXPECT_EQ(k.ProcObjectMemoSize(), memo_before + 1);

  // The repeat read hits the memo: no growth, no re-charge (the quota of 1
  // is already spent, so a second charge would deny).
  IpcReply again = k.Invoke(pid, Syscall::kProcRead, msg);
  EXPECT_TRUE(again.status.ok());
  EXPECT_EQ(again.text(), "v");
  EXPECT_EQ(k.ProcObjectMemoSize(), memo_before + 1);

  // A novel path still pays: the quota root is exhausted.
  IpcMessage other;
  other.AddString("/proc/memo-test-other");
  EXPECT_EQ(k.Invoke(pid, Syscall::kProcRead, other).status.code(),
            ErrorCode::kResourceExhausted);
}

// --------------------------------------------------------- Interposition

class CountingInterceptor : public Interceptor {
 public:
  InterposeVerdict OnCall(const IpcContext&, IpcMessage& message) override {
    ++calls;
    if (!rewrite_to.empty()) {
      message.op = InternOp(rewrite_to);  // Monitors rewrite typed slots.
    }
    return deny ? InterposeVerdict::kDeny : InterposeVerdict::kAllow;
  }
  InterposeVerdict OnReply(const IpcContext&, const IpcMessage&,
                           IpcReply& reply) override {
    ++returns;
    if (!annotate.empty()) {
      reply = IpcReply::FromLegacy(reply.status, std::string(reply.text()) + annotate,
                                   std::move(reply.data), reply.value());
    }
    return deny_reply ? InterposeVerdict::kDeny : InterposeVerdict::kAllow;
  }
  int calls = 0;
  int returns = 0;
  bool deny = false;
  bool deny_reply = false;
  std::string rewrite_to;
  std::string annotate;
};

TEST(InterposeTest, InterceptorSeesAndModifiesCall) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  ProcessId monitor = *k.CreateProcess("m", ToBytes("m"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);

  CountingInterceptor interceptor;
  interceptor.rewrite_to = "rewritten";
  interceptor.annotate = "+seen";
  ASSERT_TRUE(k.Interpose(monitor, port, &interceptor).ok());

  IpcReply reply = k.Call(server, port, IpcMessage::Of("original"));
  EXPECT_EQ(interceptor.calls, 1);
  EXPECT_EQ(interceptor.returns, 1);
  EXPECT_EQ(handler.last_operation, "rewritten");
  EXPECT_EQ(reply.text(), "rewritten+seen");
}

TEST(InterposeTest, DenyBlocksCall) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  CountingInterceptor interceptor;
  interceptor.deny = true;
  k.Interpose(server, port, &interceptor);

  IpcReply reply = k.Call(server, port, IpcMessage::Of("x"));
  EXPECT_EQ(reply.status.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(handler.calls, 0);
  EXPECT_EQ(interceptor.returns, 0);  // Blocked calls skip OnReply.
}

TEST(InterposeTest, InterpositionComposes) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  CountingInterceptor first;
  CountingInterceptor second;
  k.Interpose(server, port, &first);
  k.Interpose(server, port, &second);
  k.Call(server, port, IpcMessage::Of("x"));
  EXPECT_EQ(first.calls, 1);
  EXPECT_EQ(second.calls, 1);
}

TEST(InterposeTest, RemoveInterposition) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  CountingInterceptor interceptor;
  uint64_t token = *k.Interpose(server, port, &interceptor);
  ASSERT_TRUE(k.RemoveInterposition(token).ok());
  EXPECT_FALSE(k.RemoveInterposition(token).ok());
  k.Call(server, port, IpcMessage::Of("x"));
  EXPECT_EQ(interceptor.calls, 0);
}

TEST(InterposeTest, DisabledInterpositionSkipsInterceptors) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  CountingInterceptor interceptor;
  k.Interpose(server, port, &interceptor);
  k.set_interposition_enabled(false);
  k.Call(server, port, IpcMessage::Of("x"));
  EXPECT_EQ(interceptor.calls, 0);
  EXPECT_EQ(handler.calls, 1);
}

TEST(InterposeTest, InterposeSubjectToAuthorization) {
  Kernel k;
  DenyAllEngine engine;
  k.set_engine(&engine);
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  CountingInterceptor interceptor;
  EXPECT_FALSE(k.Interpose(server, port, &interceptor).ok());
}

TEST(InterposeTest, SyscallInterpositionObservesAllSyscalls) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  // Syscall channels are compile-time reserved ports, one per syscall:
  // a monitor attaches to each syscall it wants to observe.
  CountingInterceptor interceptor;
  ASSERT_TRUE(k.Interpose(kKernelProcessId, SyscallIpcPort(Syscall::kNull), &interceptor).ok());
  ASSERT_TRUE(
      k.Interpose(kKernelProcessId, SyscallIpcPort(Syscall::kGetPpid), &interceptor).ok());
  k.Invoke(pid, Syscall::kNull, {});
  k.Invoke(pid, Syscall::kGetPpid, {});
  EXPECT_EQ(interceptor.calls, 2);
}

// -------------------------------------------------------------- CallMany

TEST(CallManyTest, BatchDispatchesEveryMessage) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  ProcessId client = *k.CreateProcess("c", ToBytes("c"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  std::vector<IpcMessage> messages(4);
  for (size_t i = 0; i < messages.size(); ++i) {
    messages[i] = IpcMessage::Of("batched-op");
    messages[i].AddU64(i);
  }
  std::vector<IpcReply> replies(4);
  EXPECT_EQ(k.CallMany(client, port, messages, replies), 4u);
  for (const IpcReply& reply : replies) {
    EXPECT_TRUE(reply.status.ok());
    EXPECT_EQ(reply.text(), "batched-op");
  }
  EXPECT_EQ(handler.calls, 4);
}

TEST(CallManyTest, MissingAndUnboundPortsFailPerMessage) {
  Kernel k;
  ProcessId client = *k.CreateProcess("c", ToBytes("c"));
  std::vector<IpcMessage> messages(2, IpcMessage::Of("x"));
  std::vector<IpcReply> replies(2);
  EXPECT_EQ(k.CallMany(client, 99999, messages, replies), 0u);
  EXPECT_EQ(replies[0].status.code(), ErrorCode::kNotFound);
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId unbound = *k.CreatePort(server);
  EXPECT_EQ(k.CallMany(client, unbound, messages, replies), 0u);
  EXPECT_EQ(replies[1].status.code(), ErrorCode::kUnavailable);
}

TEST(CallManyTest, SyscallPortBatchInvokes) {
  // A batch aimed at a reserved syscall port dispatches the syscall per
  // message — same verdicts as N Invokes.
  Kernel k;
  ProcessId parent = *k.CreateProcess("p", ToBytes("p"));
  ProcessId child = *k.CreateProcess("c", ToBytes("c"), parent);
  std::vector<IpcMessage> messages(3);
  std::vector<IpcReply> replies(3);
  EXPECT_EQ(k.CallMany(child, SyscallIpcPort(Syscall::kGetPpid), messages, replies), 3u);
  for (const IpcReply& reply : replies) {
    EXPECT_EQ(reply.value(), static_cast<int64_t>(parent));
  }
}

TEST(CallManyTest, InterceptorChainRunsPerMessage) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  ProcessId client = *k.CreateProcess("c", ToBytes("c"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  CountingInterceptor interceptor;
  ASSERT_TRUE(k.Interpose(server, port, &interceptor).ok());
  std::vector<IpcMessage> messages(5, IpcMessage::Of("watched"));
  std::vector<IpcReply> replies(5);
  EXPECT_EQ(k.CallMany(client, port, messages, replies), 5u);
  // Forward on every call, backward on every reply — per message, even
  // though the batch crossed the boundary once.
  EXPECT_EQ(interceptor.calls, 5);
  EXPECT_EQ(interceptor.returns, 5);
  EXPECT_EQ(handler.calls, 5);
}

TEST(CallManyTest, DenyBlocksIndividualMessages) {
  // A monitor that denies a specific op blocks exactly those batch slots;
  // the rest dispatch normally.
  class DenyMarked : public Interceptor {
   public:
    explicit DenyMarked(OpId marked) : marked_(marked) {}
    InterposeVerdict OnCall(const IpcContext&, IpcMessage& message) override {
      return message.op == marked_ ? InterposeVerdict::kDeny : InterposeVerdict::kAllow;
    }

   private:
    OpId marked_;
  };
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  ProcessId client = *k.CreateProcess("c", ToBytes("c"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  DenyMarked monitor(InternOp("blocked-op"));
  ASSERT_TRUE(k.Interpose(server, port, &monitor).ok());
  std::vector<IpcMessage> messages = {IpcMessage::Of("fine-op"), IpcMessage::Of("blocked-op"),
                                      IpcMessage::Of("fine-op")};
  std::vector<IpcReply> replies(3);
  EXPECT_EQ(k.CallMany(client, port, messages, replies), 2u);
  EXPECT_TRUE(replies[0].status.ok());
  EXPECT_EQ(replies[1].status.code(), ErrorCode::kPermissionDenied);
  EXPECT_NE(replies[1].status.message().find("blocked by reference monitor"),
            std::string::npos);
  EXPECT_TRUE(replies[2].status.ok());
  EXPECT_EQ(handler.calls, 2);
}

TEST(CallManyTest, ReplyDenyBlocksReply) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  ProcessId client = *k.CreateProcess("c", ToBytes("c"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  CountingInterceptor interceptor;
  interceptor.deny_reply = true;
  ASSERT_TRUE(k.Interpose(server, port, &interceptor).ok());
  std::vector<IpcMessage> messages(2, IpcMessage::Of("x"));
  std::vector<IpcReply> replies(2);
  EXPECT_EQ(k.CallMany(client, port, messages, replies), 0u);
  for (const IpcReply& reply : replies) {
    EXPECT_EQ(reply.status.code(), ErrorCode::kPermissionDenied);
    EXPECT_NE(reply.status.message().find("reply blocked by reference monitor"),
              std::string::npos);
  }
  EXPECT_EQ(handler.calls, 2);  // The handler ran; the replies were confiscated.
}

TEST(CallManyTest, VerdictsMatchSerialCalls) {
  // Equivalence: for good, oversized, and legacy-overlong messages, a
  // batch produces exactly the per-message verdicts N serial Calls do —
  // with and without a monitor (fast path vs general path).
  IpcMessage good = IpcMessage::Of("equiv-op");
  good.AddU64(5);
  IpcMessage oversized = IpcMessage::Of("equiv-op");
  oversized.data = Bytes(kMaxIpcData + 1, 'x');
  IpcMessage overlong = IpcMessage::FromLegacy(std::string(kMaxLegacyOpName + 1, 'q'));
  std::vector<IpcMessage> messages = {good, oversized, overlong};

  for (int monitored = 0; monitored < 2; ++monitored) {
    Kernel k;
    ProcessId server = *k.CreateProcess("s", ToBytes("s"));
    ProcessId client = *k.CreateProcess("c", ToBytes("c"));
    PortId port = *k.CreatePort(server);
    EchoHandler handler;
    k.BindHandler(port, &handler);
    CountingInterceptor monitor;
    if (monitored) {
      ASSERT_TRUE(k.Interpose(server, port, &monitor).ok());
    }
    std::vector<IpcReply> serial;
    for (const IpcMessage& message : messages) {
      serial.push_back(k.Call(client, port, message));
    }
    std::vector<IpcReply> batched(messages.size());
    k.CallMany(client, port, messages, batched);
    for (size_t i = 0; i < messages.size(); ++i) {
      EXPECT_EQ(serial[i].status.code(), batched[i].status.code()) << monitored << ":" << i;
    }
    EXPECT_EQ(batched[0].status.code(), ErrorCode::kOk);
    EXPECT_EQ(batched[1].status.code(), ErrorCode::kInvalidArgument);
    EXPECT_EQ(batched[2].status.code(), ErrorCode::kInvalidArgument);
  }
}

TEST(CallManyTest, ReservedPortsSurviveLifecycle) {
  Kernel k;
  // Reserved ids cannot be destroyed or re-minted.
  EXPECT_EQ(k.DestroyPort(kFsBootPort).code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(k.DestroyPort(SyscallIpcPort(Syscall::kNull)).code(),
            ErrorCode::kPermissionDenied);
  // Dynamic ports mint above the reserved range.
  ProcessId owner = *k.CreateProcess("o", ToBytes("o"));
  EXPECT_GE(*k.CreatePort(owner), kFirstDynamicPort);
  // A boot port claim binds owner + handler; killing the owner reverts the
  // port to an unclaimed kernel slot instead of erasing it.
  EchoHandler handler;
  ASSERT_TRUE(k.ClaimBootPort(kFsBootPort, owner, &handler).ok());
  EXPECT_EQ(*k.PortOwner(kFsBootPort), owner);
  EXPECT_EQ(k.ClaimBootPort(kFsBootPort, owner, &handler).code(), ErrorCode::kAlreadyExists);
  ASSERT_TRUE(k.KillProcess(owner).ok());
  EXPECT_EQ(*k.PortOwner(kFsBootPort), kKernelProcessId);
  ProcessId successor = *k.CreateProcess("o2", ToBytes("o"));
  EXPECT_TRUE(k.ClaimBootPort(kFsBootPort, successor, &handler).ok());
  // Non-reserved ids are refused by ClaimBootPort.
  EXPECT_EQ(k.ClaimBootPort(kFirstDynamicPort, successor, &handler).code(),
            ErrorCode::kInvalidArgument);
}

// -------------------------------------------------------------- Syscalls

TEST(SyscallTest, BasicCalls) {
  Kernel k;
  ProcessId parent = *k.CreateProcess("parent", ToBytes("p"));
  ProcessId child = *k.CreateProcess("child", ToBytes("c"), parent);
  EXPECT_TRUE(k.Invoke(child, Syscall::kNull, {}).status.ok());
  EXPECT_EQ(k.Invoke(child, Syscall::kGetPpid, {}).value(), static_cast<int64_t>(parent));
  IpcReply time1 = k.Invoke(child, Syscall::kGetTimeOfDay, {});
  EXPECT_TRUE(time1.status.ok());
  EXPECT_GT(time1.value(), 0);
}

TEST(SyscallTest, YieldDrivesScheduler) {
  Kernel k;
  ProcessId a = *k.CreateProcess("a", ToBytes("a"));
  k.scheduler().AddClient(a, 1);
  IpcReply reply = k.Invoke(a, Syscall::kYield, {});
  EXPECT_TRUE(reply.status.ok());
  EXPECT_EQ(k.scheduler().TotalQuanta(), 1u);
}

TEST(SyscallTest, FileOpsWithoutFsServerFail) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  EXPECT_EQ(k.Invoke(pid, Syscall::kOpen, IpcMessage::FromLegacy("", {"/x"})).status.code(),
            ErrorCode::kUnavailable);
}

TEST(SyscallTest, DeadProcessCannotInvoke) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  k.KillProcess(pid);
  EXPECT_FALSE(k.Invoke(pid, Syscall::kNull, {}).status.ok());
}

TEST(SyscallTest, IpcCallRejectsNonNumericPortWithoutThrowing) {
  // The port argument is caller-controlled; a non-numeric or overlong
  // string must come back InvalidArgument, not escape as a std::stoull
  // exception that kills the simulation.
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  IpcReply garbage = k.Invoke(pid, Syscall::kIpcCall, IpcMessage::FromLegacy("", {"garbage"}));
  EXPECT_EQ(garbage.status.code(), ErrorCode::kInvalidArgument);
  IpcReply huge = k.Invoke(pid, Syscall::kIpcCall,
                           IpcMessage::FromLegacy("", {"99999999999999999999999999"}));
  EXPECT_EQ(huge.status.code(), ErrorCode::kInvalidArgument);
}

TEST(SyscallTest, ProcReadGoesThroughAuthorization) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  k.procfs().PublishValue(kKernelProcessId, "/proc/secret", "42");
  DenyAllEngine engine;
  k.set_engine(&engine);
  IpcReply denied = k.Invoke(pid, Syscall::kProcRead, IpcMessage::FromLegacy("", {"/proc/secret"}));
  EXPECT_EQ(denied.status.code(), ErrorCode::kPermissionDenied);
  k.set_engine(nullptr);
  IpcReply allowed = k.Invoke(pid, Syscall::kProcRead, IpcMessage::FromLegacy("", {"/proc/secret"}));
  EXPECT_EQ(allowed.text(), "42");
}

// §2.9 applied to the name tables: novel object names arriving through the
// untrusted authorize-with-string surface are charged to the subject's
// quota root; past the cap the request is denied with a reason instead of
// growing the append-only table (ROADMAP "Name-table quotas").
TEST(KernelAuthorizeTest, ObjectNameQuotaBoundsUntrustedInterning) {
  Kernel k;
  ProcessId prober = *k.CreateProcess("prober", ToBytes("p"));
  ProcessId child = *k.CreateProcess("accomplice", ToBytes("c"), prober);
  ProcessId bystander = *k.CreateProcess("bystander", ToBytes("b"));
  k.set_object_name_quota(4);

  // Four novel names fit the quota (no engine: every decision is allow,
  // but the intern charge happens regardless).
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(k.Authorize(prober, "open", "probe:" + std::to_string(i)).ok());
  }
  // The fifth novel name is denied with a reason, and the table did not
  // grow (Find still misses).
  Status over = k.Authorize(prober, "open", "probe:4");
  EXPECT_EQ(over.code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(over.message().find("quota"), std::string::npos);
  EXPECT_FALSE(FindObject("probe:4").has_value());

  // Quota counts NOVEL names: already-interned names stay authorized
  // forever (the working set is unaffected).
  EXPECT_TRUE(k.Authorize(prober, "open", "probe:0").ok());
  // A child is charged to the same quota root — spawning accomplices does
  // not refresh the budget (§2.9's principal-spawning defense).
  EXPECT_EQ(k.Authorize(child, "open", "probe:5").code(), ErrorCode::kResourceExhausted);
  // An unrelated quota root has its own budget.
  EXPECT_TRUE(k.Authorize(bystander, "open", "fresh:0").ok());
  // And trusted interning (control-plane InternObject) is not charged.
  ObjectId direct = InternObject("trusted:name");
  EXPECT_NE(direct, 0u);
}

// ------------------------------------------------------------ FileServer

class FileServerTest : public ::testing::Test {
 protected:
  FileServerTest() : fs_(&kernel_) {
    client_ = *kernel_.CreateProcess("client", ToBytes("c"));
    server_pid_ = *kernel_.CreateProcess("fs", ToBytes("fs"));
    port_ = *kernel_.CreatePort(server_pid_);
    kernel_.BindHandler(port_, &fs_);
    kernel_.set_fs_port(port_);
  }

  // The legacy text shim, exactly as a script-style caller would use it.
  IpcReply Syscall4(Syscall sc, std::vector<std::string> args, Bytes data = {}) {
    return kernel_.Invoke(client_, sc,
                          IpcMessage::FromLegacy("", std::move(args), std::move(data)));
  }

  Kernel kernel_;
  FileServer fs_;
  ProcessId client_ = 0;
  ProcessId server_pid_ = 0;
  PortId port_ = 0;
};

TEST_F(FileServerTest, OpenReadWriteClose) {
  fs_.CreateFile("/etc/motd", ToBytes("hello nexus"));
  IpcReply open = Syscall4(Syscall::kOpen, {"/etc/motd"});
  ASSERT_TRUE(open.status.ok());
  int64_t fd = open.value();

  IpcReply read = Syscall4(Syscall::kRead, {std::to_string(fd)});
  EXPECT_EQ(ToString(read.data), "hello nexus");

  IpcReply write =
      Syscall4(Syscall::kWrite, {std::to_string(fd), "0"}, ToBytes("HELLO"));
  EXPECT_TRUE(write.status.ok());
  EXPECT_EQ(ToString(*fs_.ReadFile("/etc/motd")), "HELLO nexus");

  EXPECT_TRUE(Syscall4(Syscall::kClose, {std::to_string(fd)}).status.ok());
  EXPECT_FALSE(Syscall4(Syscall::kRead, {std::to_string(fd)}).status.ok());
}

TEST_F(FileServerTest, PartialReads) {
  fs_.CreateFile("/data", ToBytes("0123456789"));
  int64_t fd = Syscall4(Syscall::kOpen, {"/data"}).value();
  IpcReply read = Syscall4(Syscall::kRead, {std::to_string(fd), "3", "4"});
  EXPECT_EQ(ToString(read.data), "3456");
  EXPECT_FALSE(Syscall4(Syscall::kRead, {std::to_string(fd), "11"}).status.ok());
}

TEST_F(FileServerTest, WriteExtendsFile) {
  fs_.CreateFile("/log", ToBytes("ab"));
  int64_t fd = Syscall4(Syscall::kOpen, {"/log"}).value();
  Syscall4(Syscall::kWrite, {std::to_string(fd), "2"}, ToBytes("cdef"));
  EXPECT_EQ(ToString(*fs_.ReadFile("/log")), "abcdef");
}

TEST_F(FileServerTest, OpenMissingFileFails) {
  EXPECT_EQ(Syscall4(Syscall::kOpen, {"/nope"}).status.code(), ErrorCode::kNotFound);
}

TEST_F(FileServerTest, ForeignFdRejected) {
  fs_.CreateFile("/private", ToBytes("secret"));
  int64_t fd = Syscall4(Syscall::kOpen, {"/private"}).value();
  ProcessId intruder = *kernel_.CreateProcess("intruder", ToBytes("i"));
  IpcMessage read_msg;
  read_msg.AddU64(static_cast<uint64_t>(fd));
  IpcReply read = kernel_.Invoke(intruder, Syscall::kRead, read_msg);
  EXPECT_FALSE(read.status.ok());
}

TEST_F(FileServerTest, LegacyAndTypedCallsYieldIdenticalReplies) {
  // The legacy-shim equivalence guarantee: the same call expressed as v1
  // strings and as v2 typed slots produces byte-identical replies.
  fs_.CreateFile("/equiv", ToBytes("0123456789"));
  IpcMessage open_msg;
  open_msg.AddString("/equiv");
  int64_t fd = kernel_.Invoke(client_, Syscall::kOpen, open_msg).value();

  IpcReply legacy = Syscall4(Syscall::kRead, {std::to_string(fd), "2", "3"});
  IpcMessage typed;
  typed.AddU64(static_cast<uint64_t>(fd)).AddU64(2).AddU64(3);
  IpcReply v2 = kernel_.Invoke(client_, Syscall::kRead, typed);
  EXPECT_EQ(legacy.status.code(), v2.status.code());
  EXPECT_EQ(legacy.text(), v2.text());
  EXPECT_EQ(legacy.data, v2.data);
  EXPECT_EQ(legacy.value(), v2.value());
  EXPECT_EQ(ToString(v2.data), "234");

  IpcReply legacy_write =
      Syscall4(Syscall::kWrite, {std::to_string(fd), "0"}, ToBytes("AB"));
  IpcMessage typed_write;
  typed_write.AddU64(static_cast<uint64_t>(fd)).AddU64(0);
  typed_write.data = ToBytes("AB");
  IpcReply v2_write = kernel_.Invoke(client_, Syscall::kWrite, typed_write);
  EXPECT_EQ(legacy_write.status.code(), v2_write.status.code());
  EXPECT_EQ(legacy_write.value(), v2_write.value());

  // Garbage where an integer belongs fails identically through both forms
  // (the string form decodes at the single legacy decode point).
  IpcReply legacy_bad = Syscall4(Syscall::kRead, {"garbage"});
  EXPECT_EQ(legacy_bad.status.code(), ErrorCode::kInvalidArgument);
}

TEST_F(FileServerTest, TypedReadPathBuildsNoTextPayloads) {
  // End-to-end zero-string assertion on the REAL hot path: interposed
  // syscall -> marshal -> fileserver dispatch -> fd-memoized authorization,
  // with the decision cache and engine in the loop.
  AllowAllEngine engine;
  kernel_.set_engine(&engine);
  fs_.CreateFile("/hot", ToBytes("0123456789"));
  IpcMessage open_msg;
  open_msg.AddString("/hot");
  int64_t fd = kernel_.Invoke(client_, Syscall::kOpen, open_msg).value();
  IpcMessage read_msg;
  read_msg.AddU64(static_cast<uint64_t>(fd)).AddU64(0).AddU64(4);
  ASSERT_TRUE(kernel_.Invoke(client_, Syscall::kRead, read_msg).status.ok());  // Warm.

  uint64_t before = IpcTextPayloadCount();
  for (int i = 0; i < 100; ++i) {
    IpcReply reply = kernel_.Invoke(client_, Syscall::kRead, read_msg);
    ASSERT_TRUE(reply.status.ok());
    ASSERT_EQ(ToString(reply.data), "0123");
  }
  EXPECT_EQ(IpcTextPayloadCount(), before);
  kernel_.set_engine(nullptr);
}

TEST_F(FileServerTest, TypedReadPerformsZeroPayloadCopies) {
  // The end-to-end zero-copy audit: a 64 KiB typed read must hand back a
  // slice of the fileserver's backing arena — no payload memcpy anywhere
  // between the store and the caller's reply.
  constexpr size_t kBig = 64 * 1024;
  fs_.CreateFile("/bench/big", Bytes(kBig, 0x5a));
  IpcMessage open_msg;
  open_msg.AddString("/bench/big");
  int64_t fd = kernel_.Invoke(client_, Syscall::kOpen, open_msg).value();

  IpcMessage read_msg;
  read_msg.AddU64(static_cast<uint64_t>(fd)).AddU64(0).AddU64(kBig);
  kernel_.Invoke(client_, Syscall::kRead, read_msg);  // Warm caches/interning.

  uint64_t copies_before = IpcPayloadCopyCount();
  IpcReply read;
  for (int i = 0; i < 100; ++i) {
    read = kernel_.Invoke(client_, Syscall::kRead, read_msg);
  }
  ASSERT_TRUE(read.status.ok());
  EXPECT_EQ(IpcPayloadCopyCount(), copies_before);
  EXPECT_EQ(read.data.size(), kBig);
  EXPECT_TRUE(read.data.aliased());  // Borrowing the store, not owning a copy.
  EXPECT_EQ(read.data.data()[0], 0x5a);
  EXPECT_EQ(read.data.data()[kBig - 1], 0x5a);
}

TEST_F(FileServerTest, WriteDetachesOutstandingReadSlices) {
  // Copy-on-write isolation: a read slice handed out before a write keeps
  // observing the pre-write bytes; the write lands in a fresh arena.
  fs_.CreateFile("/cow", ToBytes("original-content"));
  int64_t fd = Syscall4(Syscall::kOpen, {"/cow"}).value();
  IpcReply before = Syscall4(Syscall::kRead, {std::to_string(fd)});
  ASSERT_EQ(ToString(before.data), "original-content");

  ASSERT_TRUE(
      Syscall4(Syscall::kWrite, {std::to_string(fd), "0"}, ToBytes("REWRITTEN"))
          .status.ok());
  EXPECT_EQ(ToString(before.data), "original-content");  // Slice unaffected.
  IpcReply after = Syscall4(Syscall::kRead, {std::to_string(fd)});
  EXPECT_EQ(ToString(after.data), "REWRITTENcontent");
}

TEST_F(FileServerTest, UnlinkLeavesOutstandingSlicesAlive) {
  fs_.CreateFile("/doomed", ToBytes("still-here-after-unlink"));
  int64_t fd = Syscall4(Syscall::kOpen, {"/doomed"}).value();
  IpcReply read = Syscall4(Syscall::kRead, {std::to_string(fd)});
  ASSERT_TRUE(read.status.ok());
  IpcMessage unlink = IpcMessage::Of("unlink");
  unlink.AddString("/doomed");
  ASSERT_TRUE(kernel_.Call(client_, port_, unlink).status.ok());
  // The map entry is gone but the arena lives as long as the slice does.
  EXPECT_FALSE(fs_.ReadFile("/doomed").ok());
  EXPECT_EQ(ToString(read.data), "still-here-after-unlink");
}

TEST_F(FileServerTest, BatchedReadsViaCallMany) {
  // CallMany straight at the fileserver port exercises HandleMany's
  // prefetch-batch authorization path; replies stay zero-copy slices.
  fs_.CreateFile("/batch", ToBytes("abcdefgh"));
  int64_t fd = Syscall4(Syscall::kOpen, {"/batch"}).value();
  std::vector<IpcMessage> messages(4);
  for (size_t i = 0; i < messages.size(); ++i) {
    messages[i] = IpcMessage::Of("read");
    messages[i].AddU64(static_cast<uint64_t>(fd)).AddU64(i * 2).AddU64(2);
  }
  std::vector<IpcReply> replies(4);
  uint64_t copies_before = IpcPayloadCopyCount();
  EXPECT_EQ(kernel_.CallMany(client_, port_, messages, replies), 4u);
  EXPECT_EQ(IpcPayloadCopyCount(), copies_before);
  EXPECT_EQ(ToString(replies[0].data), "ab");
  EXPECT_EQ(ToString(replies[1].data), "cd");
  EXPECT_EQ(ToString(replies[2].data), "ef");
  EXPECT_EQ(ToString(replies[3].data), "gh");
}

TEST_F(FileServerTest, AccessControlEnforcedPerFile) {
  fs_.CreateFile("/guarded", ToBytes("x"));
  DenyAllEngine engine;
  kernel_.set_engine(&engine);
  EXPECT_EQ(Syscall4(Syscall::kOpen, {"/guarded"}).status.code(),
            ErrorCode::kPermissionDenied);
}

// --------------------------------------------------------- DecisionCache

TEST(DecisionCacheTest, MissThenHit) {
  DecisionCache cache;
  EXPECT_FALSE(cache.Lookup(1, "read", "file:/x").has_value());
  cache.Insert(1, "read", "file:/x", true);
  auto hit = cache.Lookup(1, "read", "file:/x");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DecisionCacheTest, StoresDenials) {
  DecisionCache cache;
  cache.Insert(1, "write", "file:/x", false);
  auto hit = cache.Lookup(1, "write", "file:/x");
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(*hit);
}

TEST(DecisionCacheTest, DistinguishesTuples) {
  DecisionCache cache;
  cache.Insert(1, "read", "file:/x", true);
  EXPECT_FALSE(cache.Lookup(2, "read", "file:/x").has_value());
  EXPECT_FALSE(cache.Lookup(1, "write", "file:/x").has_value());
  EXPECT_FALSE(cache.Lookup(1, "read", "file:/y").has_value());
}

TEST(DecisionCacheTest, SubregionInvalidationClearsOpObject) {
  DecisionCache cache;
  for (ProcessId pid = 1; pid <= 10; ++pid) {
    cache.Insert(pid, "read", "file:/x", true);
  }
  cache.InvalidateSubregion("read", "file:/x");
  for (ProcessId pid = 1; pid <= 10; ++pid) {
    EXPECT_FALSE(cache.Lookup(pid, "read", "file:/x").has_value());
  }
}

TEST(DecisionCacheTest, SubregionInvalidationSparesOtherSubregions) {
  DecisionCache::Config config;
  config.num_subregions = 64;
  DecisionCache cache(config);
  // Insert entries for many objects; invalidating one object's subregion
  // must leave most other objects cached.
  for (int i = 0; i < 100; ++i) {
    cache.Insert(1, "read", "file:/f" + std::to_string(i), true);
  }
  cache.InvalidateSubregion("read", "file:/f0");
  int surviving = 0;
  for (int i = 1; i < 100; ++i) {
    if (cache.Lookup(1, "read", "file:/f" + std::to_string(i)).has_value()) {
      ++surviving;
    }
  }
  EXPECT_GT(surviving, 80);
}

TEST(DecisionCacheTest, EntryInvalidation) {
  DecisionCache cache;
  cache.Insert(1, "read", "file:/x", true);
  cache.InvalidateEntry(1, "read", "file:/x");
  EXPECT_FALSE(cache.Lookup(1, "read", "file:/x").has_value());
}

TEST(DecisionCacheTest, ClearAndResize) {
  DecisionCache cache;
  cache.Insert(1, "read", "o", true);
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(1, "read", "o").has_value());
  cache.Insert(1, "read", "o", true);
  cache.Resize(DecisionCache::Config{8, 8});
  EXPECT_FALSE(cache.Lookup(1, "read", "o").has_value());
}

TEST(DecisionCacheTest, EvictionUnderPressureStaysCorrect) {
  DecisionCache::Config config;
  config.num_subregions = 2;
  config.entries_per_subregion = 4;
  DecisionCache cache(config);
  for (int i = 0; i < 100; ++i) {
    cache.Insert(static_cast<ProcessId>(i), "op", "obj", i % 2 == 0);
  }
  // Whatever remains cached must agree with what was inserted.
  for (int i = 0; i < 100; ++i) {
    auto hit = cache.Lookup(static_cast<ProcessId>(i), "op", "obj");
    if (hit.has_value()) {
      EXPECT_EQ(*hit, i % 2 == 0) << i;
    }
  }
}

TEST(DecisionCacheTest, CrossShardSubregionInvalidationReachesEveryShard) {
  DecisionCache::Config config;
  config.num_shards = 8;
  DecisionCache cache(config);
  // Subjects spread across shards; every entry shares one (op, object).
  std::set<size_t> shards_used;
  for (ProcessId pid = 1; pid <= 64; ++pid) {
    cache.Insert(pid, "read", "file:/x", true);
    shards_used.insert(cache.ShardOf(pid));
  }
  ASSERT_GT(shards_used.size(), 1u) << "subjects must actually span shards";
  // One setgoal-style invalidation must reach all of them.
  cache.InvalidateSubregion("read", "file:/x");
  for (ProcessId pid = 1; pid <= 64; ++pid) {
    EXPECT_FALSE(cache.Lookup(pid, "read", "file:/x").has_value()) << pid;
  }
}

TEST(DecisionCacheTest, PerShardStatsSumToAggregate) {
  DecisionCache::Config config;
  config.num_shards = 4;
  DecisionCache cache(config);
  for (ProcessId pid = 1; pid <= 40; ++pid) {
    cache.Lookup(pid, "op", "obj");      // Miss.
    cache.Insert(pid, "op", "obj", true);
    cache.Lookup(pid, "op", "obj");      // Hit.
  }
  cache.InvalidateSubregion("op", "obj");
  DecisionCache::Stats aggregate = cache.stats();
  DecisionCache::Stats summed;
  for (size_t s = 0; s < config.num_shards; ++s) {
    DecisionCache::Stats shard = cache.shard_stats(s);
    summed.hits += shard.hits;
    summed.misses += shard.misses;
    summed.insertions += shard.insertions;
    summed.invalidated_entries += shard.invalidated_entries;
    summed.subregion_invalidations += shard.subregion_invalidations;
  }
  EXPECT_EQ(aggregate.hits, summed.hits);
  EXPECT_EQ(aggregate.misses, summed.misses);
  EXPECT_EQ(aggregate.insertions, summed.insertions);
  EXPECT_EQ(aggregate.invalidated_entries, summed.invalidated_entries);
  EXPECT_EQ(aggregate.subregion_invalidations, summed.subregion_invalidations);
  EXPECT_EQ(aggregate.hits, 40u);
  EXPECT_EQ(aggregate.misses, 40u);
  // The broadcast touched every shard's subregion.
  EXPECT_EQ(aggregate.subregion_invalidations, config.num_shards);
}

TEST(DecisionCacheTest, ResizeUnderDifferentShardCountPreservesClearSemantics) {
  DecisionCache::Config config;
  config.num_shards = 2;
  DecisionCache cache(config);
  for (ProcessId pid = 1; pid <= 16; ++pid) {
    cache.Insert(pid, "read", "o", true);
  }
  config.num_shards = 8;
  cache.Resize(config);
  EXPECT_EQ(cache.config().num_shards, 8u);
  for (ProcessId pid = 1; pid <= 16; ++pid) {
    EXPECT_FALSE(cache.Lookup(pid, "read", "o").has_value()) << pid;
  }
  // The resized cache is fully functional.
  cache.Insert(1, "read", "o", false);
  auto hit = cache.Lookup(1, "read", "o");
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(*hit);
}

TEST(DecisionCacheTest, GenerationGuardedInsertDropsStaleVerdict) {
  DecisionCache cache;
  AuthzRequest request = AuthzRequest::Of(1, "read", "file:/x");
  // A verdict computed before an invalidation must not be cached after it
  // (the stale-insert race of a concurrent frontend, compressed serially).
  uint64_t generation = cache.Generation(request);
  cache.InvalidateSubregion(request.op, request.obj);  // Concurrent setgoal.
  EXPECT_FALSE(cache.InsertIfUnchanged(request, true, generation));
  EXPECT_FALSE(cache.Lookup(request).has_value());
  // With a fresh snapshot the insert lands.
  generation = cache.Generation(request);
  EXPECT_TRUE(cache.InsertIfUnchanged(request, true, generation));
  EXPECT_TRUE(cache.Lookup(request).has_value());
  // InvalidateEntry (setproof) bumps the generation too.
  generation = cache.Generation(request);
  cache.InvalidateEntry(request);
  EXPECT_FALSE(cache.InsertIfUnchanged(request, false, generation));
}

// ------------------------------------------------- Kernel + cache wiring

TEST(KernelAuthorizeTest, NoEngineAllowsEverything) {
  Kernel k;
  EXPECT_TRUE(k.Authorize(1, "read", "anything").ok());
}

TEST(KernelAuthorizeTest, CacheShortCircuitsEngine) {
  Kernel k;
  AllowAllEngine engine;
  k.set_engine(&engine);
  EXPECT_TRUE(k.Authorize(1, "read", "o").ok());
  EXPECT_TRUE(k.Authorize(1, "read", "o").ok());
  EXPECT_TRUE(k.Authorize(1, "read", "o").ok());
  EXPECT_EQ(engine.upcalls, 1);
}

TEST(KernelAuthorizeTest, NonCacheableDecisionsAlwaysUpcall) {
  Kernel k;
  AllowAllEngine engine;
  engine.cacheable = false;
  k.set_engine(&engine);
  k.Authorize(1, "read", "o");
  k.Authorize(1, "read", "o");
  EXPECT_EQ(engine.upcalls, 2);
}

TEST(KernelAuthorizeTest, DisabledCacheAlwaysUpcalls) {
  Kernel k;
  AllowAllEngine engine;
  k.set_engine(&engine);
  k.set_decision_cache_enabled(false);
  k.Authorize(1, "read", "o");
  k.Authorize(1, "read", "o");
  EXPECT_EQ(engine.upcalls, 2);
}

TEST(KernelAuthorizeTest, GoalUpdateInvalidatesCachedDecisions) {
  Kernel k;
  AllowAllEngine engine;
  k.set_engine(&engine);
  k.Authorize(1, "read", "o");
  k.OnGoalUpdate("read", "o");
  k.Authorize(1, "read", "o");
  EXPECT_EQ(engine.upcalls, 2);
}

TEST(KernelAuthorizeTest, ProofUpdateInvalidatesCachedDecision) {
  Kernel k;
  AllowAllEngine engine;
  k.set_engine(&engine);
  k.Authorize(1, "read", "o");
  k.OnProofUpdate(1, "read", "o");
  k.Authorize(1, "read", "o");
  EXPECT_EQ(engine.upcalls, 2);
}

// -------------------------------------------------------------- ProcFs

TEST(ProcFsTest, PublishReadRemove) {
  IntrospectionFs fs;
  fs.PublishValue(1, "/proc/app/key", "value");
  EXPECT_EQ(*fs.Read("/proc/app/key"), "value");
  EXPECT_EQ(*fs.Owner("/proc/app/key"), 1u);
  ASSERT_TRUE(fs.Remove("/proc/app/key").ok());
  EXPECT_FALSE(fs.Read("/proc/app/key").ok());
}

TEST(ProcFsTest, LiveProviders) {
  IntrospectionFs fs;
  int counter = 0;
  fs.Publish(1, "/proc/app/counter", [&counter] { return std::to_string(counter); });
  EXPECT_EQ(*fs.Read("/proc/app/counter"), "0");
  counter = 42;
  EXPECT_EQ(*fs.Read("/proc/app/counter"), "42");
}

TEST(ProcFsTest, ListDirectories) {
  IntrospectionFs fs;
  fs.PublishValue(1, "/proc/ipd/1/name", "a");
  fs.PublishValue(1, "/proc/ipd/2/name", "b");
  fs.PublishValue(1, "/proc/port/9/owner", "1");
  std::vector<std::string> ipds = fs.List("/proc/ipd");
  EXPECT_EQ(ipds, (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(fs.List("/proc").size(), 2u);  // ipd and port.
}

TEST(ProcFsTest, WatchersFireOnPrefix) {
  IntrospectionFs fs;
  std::vector<std::string> seen;
  uint64_t token = fs.Watch("/proc/ipd", [&seen](const std::string& path, const std::string&) {
    seen.push_back(path);
  });
  fs.PublishValue(1, "/proc/ipd/3/name", "x");
  fs.PublishValue(1, "/proc/other", "y");
  EXPECT_EQ(seen, (std::vector<std::string>{"/proc/ipd/3/name"}));
  fs.Unwatch(token);
  fs.PublishValue(1, "/proc/ipd/4/name", "z");
  EXPECT_EQ(seen.size(), 1u);
}

TEST(ProcFsTest, RemoveOwnedRemovesAll) {
  IntrospectionFs fs;
  fs.PublishValue(7, "/a", "1");
  fs.PublishValue(7, "/b", "2");
  fs.PublishValue(8, "/c", "3");
  fs.RemoveOwned(7);
  EXPECT_FALSE(fs.Read("/a").ok());
  EXPECT_FALSE(fs.Read("/b").ok());
  EXPECT_TRUE(fs.Read("/c").ok());
}

// ------------------------------------------------------------ Scheduler

TEST(SchedulerTest, StrideRespectsWeights) {
  StrideScheduler sched;
  sched.AddClient(1, 30);
  sched.AddClient(2, 10);
  for (int i = 0; i < 4000; ++i) {
    sched.Tick();
  }
  double share1 = static_cast<double>(sched.QuantaReceived(1)) / 4000.0;
  EXPECT_NEAR(share1, 0.75, 0.02);
}

TEST(SchedulerTest, StrideWeightChangeTakesEffect) {
  StrideScheduler sched;
  sched.AddClient(1, 1);
  sched.AddClient(2, 1);
  for (int i = 0; i < 100; ++i) {
    sched.Tick();
  }
  sched.SetWeight(1, 9);
  uint64_t before1 = sched.QuantaReceived(1);
  for (int i = 0; i < 1000; ++i) {
    sched.Tick();
  }
  double share_after = static_cast<double>(sched.QuantaReceived(1) - before1) / 1000.0;
  EXPECT_NEAR(share_after, 0.9, 0.05);
}

TEST(SchedulerTest, NewClientNotStarved) {
  StrideScheduler sched;
  sched.AddClient(1, 1);
  for (int i = 0; i < 1000; ++i) {
    sched.Tick();
  }
  sched.AddClient(2, 1);
  uint64_t before = sched.QuantaReceived(2);
  for (int i = 0; i < 100; ++i) {
    sched.Tick();
  }
  EXPECT_GE(sched.QuantaReceived(2) - before, 45u);
}

TEST(SchedulerTest, StrideRejectsBadInput) {
  StrideScheduler sched;
  EXPECT_FALSE(sched.AddClient(1, 0).ok());
  sched.AddClient(1, 1);
  EXPECT_FALSE(sched.AddClient(1, 2).ok());
  EXPECT_FALSE(sched.SetWeight(2, 1).ok());
  EXPECT_FALSE(sched.RemoveClient(2).ok());
}

TEST(SchedulerTest, RoundRobinIgnoresWeights) {
  RoundRobinScheduler sched;
  sched.AddClient(1, 100);
  sched.AddClient(2, 1);
  for (int i = 0; i < 1000; ++i) {
    sched.Tick();
  }
  EXPECT_EQ(sched.QuantaReceived(1), 500u);
  EXPECT_EQ(sched.QuantaReceived(2), 500u);
}

TEST(SchedulerTest, EmptySchedulerFails) {
  StrideScheduler sched;
  EXPECT_FALSE(sched.Tick().ok());
}

// --------------------------------------------------------- HashWhitelist

TEST(HashWhitelistTest, AxiomaticBaseline) {
  Kernel k;
  HashWhitelist whitelist;
  Bytes trusted_player = ToBytes("certified-player-v1");
  whitelist.AllowBinary(trusted_player);

  ProcessId good = *k.CreateProcess("player", trusted_player);
  ProcessId bad = *k.CreateProcess("other-player", ToBytes("home-built-player"));
  EXPECT_TRUE(*whitelist.Check(k, good));
  EXPECT_FALSE(*whitelist.Check(k, bad));
  EXPECT_FALSE(whitelist.Check(k, 999).ok());
}

}  // namespace
}  // namespace nexus::kernel
