#include "services/ipc_analyzer.h"

#include <vector>

#include "kernel/trace.h"

namespace nexus::services {

IpcAnalyzer::IpcAnalyzer(kernel::Kernel* kernel, core::Engine* engine, kernel::ProcessId self)
    : kernel_(kernel), engine_(engine), self_(self) {}

std::set<kernel::ProcessId> IpcAnalyzer::ReachableFrom(kernel::ProcessId from) const {
  // One coherent snapshot of the channel graph: the analyzer's answer is
  // exact for the instant of the snapshot even while lifecycle churn
  // rewires channels concurrently.
  const std::map<kernel::ProcessId, std::set<kernel::PortId>> graph =
      kernel_->ChannelsSnapshot();
  std::set<kernel::ProcessId> visited;
  std::vector<kernel::ProcessId> frontier = {from};
  while (!frontier.empty()) {
    kernel::ProcessId current = frontier.back();
    frontier.pop_back();
    auto channels = graph.find(current);
    if (channels == graph.end()) {
      continue;
    }
    for (kernel::PortId port : channels->second) {
      Result<kernel::ProcessId> owner = kernel_->PortOwner(port);
      if (!owner.ok()) {
        continue;
      }
      if (visited.insert(*owner).second) {
        frontier.push_back(*owner);
      }
    }
  }
  return visited;
}

bool IpcAnalyzer::HasPath(kernel::ProcessId from, kernel::ProcessId to) const {
  return ReachableFrom(from).contains(to);
}

std::map<std::pair<kernel::ProcessId, kernel::ProcessId>, uint64_t> IpcAnalyzer::ObservedEdges()
    const {
  std::map<std::pair<kernel::ProcessId, kernel::ProcessId>, uint64_t> edges;
  // Port ownership is resolved at read time, once per distinct port.
  std::map<kernel::PortId, Result<kernel::ProcessId>> owners;
  for (const kernel::TraceEvent& event : kernel::FlightRecorder::Global().Recent()) {
    if (event.stage != kernel::TraceStage::kCall) {
      continue;
    }
    auto port = static_cast<kernel::PortId>(event.aux);
    auto [it, inserted] = owners.try_emplace(port, kernel::ProcessId{0});
    if (inserted) {
      it->second = kernel_->PortOwner(port);
    }
    if (!it->second.ok()) {
      continue;
    }
    ++edges[{event.subject, *it->second}];
  }
  return edges;
}

uint64_t IpcAnalyzer::ObservedTraffic(kernel::ProcessId from, kernel::ProcessId to) const {
  uint64_t total = 0;
  for (const auto& [edge, count] : ObservedEdges()) {
    if (edge.first == from && edge.second == to) {
      total += count;
    }
  }
  return total;
}

std::set<kernel::ProcessId> IpcAnalyzer::ProcessesNamed(const std::string& name) const {
  std::set<kernel::ProcessId> out;
  for (kernel::ProcessId pid : kernel_->Processes()) {
    Result<const kernel::Process*> p = kernel_->GetProcess(pid);
    if (p.ok() && (*p)->name == name) {
      out.insert(pid);
    }
  }
  return out;
}

Result<core::LabelHandle> IpcAnalyzer::AttestNoPath(kernel::ProcessId subject,
                                                    const std::string& target_name) {
  std::set<kernel::ProcessId> targets = ProcessesNamed(target_name);
  std::set<kernel::ProcessId> reachable = ReachableFrom(subject);
  for (kernel::ProcessId t : targets) {
    if (reachable.contains(t)) {
      return FailedPrecondition("subject has an IPC path to " + target_name + " (pid " +
                                std::to_string(t) + "); refusing to attest otherwise");
    }
  }
  nal::Formula statement = nal::FormulaNode::Not(nal::FormulaNode::Pred(
      "hasPath", {nal::Term::Symbol(kernel::Kernel::ProcPath(subject)),
                  nal::Term::Symbol(target_name)}));
  return engine_->SayFormula(self_, statement);
}

Result<core::LabelHandle> IpcAnalyzer::AttestPath(kernel::ProcessId subject,
                                                  const std::string& target_name) {
  std::set<kernel::ProcessId> targets = ProcessesNamed(target_name);
  std::set<kernel::ProcessId> reachable = ReachableFrom(subject);
  bool found = false;
  for (kernel::ProcessId t : targets) {
    if (reachable.contains(t)) {
      found = true;
      break;
    }
  }
  if (!found) {
    return FailedPrecondition("no IPC path from subject to " + target_name);
  }
  nal::Formula statement = nal::FormulaNode::Pred(
      "hasPath", {nal::Term::Symbol(kernel::Kernel::ProcPath(subject)),
                  nal::Term::Symbol(target_name)});
  return engine_->SayFormula(self_, statement);
}

}  // namespace nexus::services
