// The safety certifier (§2.5).
//
// Derives `SafetyCertifier says safe(X)` from analyzer labels: X is safe
// when, for every forbidden target T, the labelstore holds
//   Z says not hasPath(X, T)
// for some Z the kernel binds to the IPC analyzer, i.e.
//   safe(X)  ≙  ∧_T  not hasPath(X, T).
#ifndef NEXUS_SERVICES_SAFETY_CERTIFIER_H_
#define NEXUS_SERVICES_SAFETY_CERTIFIER_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "kernel/kernel.h"

namespace nexus::services {

class SafetyCertifier {
 public:
  // `analyzer` names the process whose hasPath attestations are trusted;
  // `forbidden_targets` is the deny-list (e.g. {"filesystem", "netdriver"}).
  SafetyCertifier(kernel::Kernel* kernel, core::Engine* engine, kernel::ProcessId self,
                  kernel::ProcessId analyzer, std::vector<std::string> forbidden_targets);

  // Scans the analyzer's labelstore; if every forbidden target is covered
  // by a no-path attestation for `subject`, issues
  //   <certifier> says safe(/proc/ipd/<subject>).
  Result<core::LabelHandle> Certify(kernel::ProcessId subject);

  const std::vector<std::string>& forbidden_targets() const { return forbidden_targets_; }

 private:
  bool HasNoPathLabel(kernel::ProcessId subject, const std::string& target) const;

  kernel::Kernel* kernel_;
  core::Engine* engine_;
  kernel::ProcessId self_;
  kernel::ProcessId analyzer_;
  std::vector<std::string> forbidden_targets_;
};

}  // namespace nexus::services

#endif  // NEXUS_SERVICES_SAFETY_CERTIFIER_H_
