// The Nexus system façade.
//
// Wires the full stack together the way §3.4 describes the boot sequence:
// power-up resets the TPM's PCRs; the (simulated) BIOS, boot loader, and
// kernel image are measured into PCRs 0-2; on first boot the kernel takes
// TPM ownership and generates the Nexus key NK sealed to those PCRs; every
// boot derives a Nexus boot key identifier NBK. The façade then constructs
// the kernel, default guard, authorization engine, and file server, and
// exposes the label/goal/proof system-call surface plus certificate
// externalization/import.
#ifndef NEXUS_CORE_NEXUS_H_
#define NEXUS_CORE_NEXUS_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/certificate.h"
#include "core/engine.h"
#include "core/guard.h"
#include "kernel/fileserver.h"
#include "kernel/kernel.h"
#include "tpm/tpm.h"

namespace nexus::core {

struct NexusOptions {
  uint64_t seed = 42;
  int nk_bits = 512;       // Kernel key strength (simulation default).
  bool measure_boot = true;
};

// PCR allocation mirroring the static root of trust (§3.4).
inline constexpr int kPcrFirmware = 0;
inline constexpr int kPcrBootLoader = 1;
inline constexpr int kPcrKernel = 2;

class Nexus {
 public:
  // Boots a Nexus instance on the given TPM. Takes ownership of the TPM on
  // first boot (generating SRK + NK); on later boots unseals the existing
  // NK, which succeeds only if the same kernel was measured.
  Nexus(tpm::Tpm* tpm, const NexusOptions& options = NexusOptions{});

  kernel::Kernel& kernel() { return kernel_; }
  Engine& engine() { return engine_; }
  Guard& guard() { return default_guard_; }
  kernel::FileServer& fs() { return *fs_; }
  tpm::Tpm& tpm() { return *tpm_; }
  Rng& rng() { return rng_; }

  // -------------------------------------------------------- Process mgmt
  // Creates a process and deposits the kernel-issued binding labels:
  //   Nexus says IPC.<syscall port> speaksfor Nexus.ipd.<pid>
  //   Nexus says launchHash(/proc/ipd/<pid>, "<sha256>")
  Result<kernel::ProcessId> CreateProcess(const std::string& name, ByteView binary,
                                          kernel::ProcessId parent = kernel::kKernelProcessId);

  // Creates a port owned by `owner` and deposits the kernel binding label
  //   Nexus says IPC.<port> speaksfor Nexus.ipd.<owner>   (§2.4).
  Result<kernel::PortId> CreatePort(kernel::ProcessId owner);

  // ----------------------------------------------------- Externalization
  // Externalizes a label from `pid`'s labelstore into a signed certificate
  // whose speaker is the fully-qualified TPM-rooted principal (§2.4).
  Result<Certificate> ExternalizeLabel(kernel::ProcessId pid, LabelHandle handle);
  // Verifies a certificate (against this instance's trusted EK by default)
  // and imports the statement into `pid`'s labelstore.
  Result<LabelHandle> ImportCertificate(kernel::ProcessId pid, const Certificate& cert,
                                        const crypto::RsaPublicKey& trusted_ek);

  // ------------------------------------------------------ Peer instances
  // The trust anchors for distributed attestation: a peer is a named remote
  // Nexus instance whose TPM endorsement key this instance accepts as a
  // certificate root (the paper's out-of-band EK distribution).
  Status RegisterPeer(const std::string& name, const crypto::RsaPublicKey& ek);
  Result<crypto::RsaPublicKey> PeerEk(const std::string& name) const;
  bool IsTrustedPeerEk(const crypto::RsaPublicKey& ek) const;
  Result<std::string> PeerNameForEk(const crypto::RsaPublicKey& ek) const;

  // Imports a certificate rooted in any registered peer EK. Idempotent per
  // (pid, certificate): re-importing a replayed or re-ordered duplicate
  // returns the original handle instead of minting a second label, which is
  // what makes certificate exchange order-insensitive and replay-safe.
  Result<LabelHandle> ImportPeerCertificate(kernel::ProcessId pid, const Certificate& cert);

  // Signs `message` with the Nexus kernel key NK (used by the attested
  // channel handshake to prove live possession of NK).
  Bytes NkSign(ByteView message) const;
  // Decrypts a ciphertext addressed to this instance's NK (session key
  // shares in the channel handshake).
  Result<Bytes> NkDecrypt(ByteView ciphertext) const;
  // The TPM's EK endorsement of NK, minted at first boot.
  const Bytes& nk_ek_attestation() const { return nk_ek_attestation_; }

  // The fully-qualified external name of this instance's kernel:
  // tpm.<ek8>.nexus.<nk8>.boot.<nbk8>.
  nal::Principal ExternalKernelPrincipal() const;
  const crypto::RsaPublicKey& nexus_public_key() const { return nk_.public_key; }
  Bytes boot_composite() const { return boot_composite_; }

 private:
  tpm::Tpm* tpm_;
  Rng rng_;
  crypto::RsaKeyPair nk_;
  Bytes nk_seal_blob_;
  std::string nbk_id_;
  Bytes boot_composite_;
  Bytes nk_ek_attestation_;

  kernel::Kernel kernel_;
  Guard default_guard_;
  Engine engine_;
  std::unique_ptr<kernel::FileServer> fs_;
  kernel::PortId fs_port_ = 0;

  std::map<std::string, crypto::RsaPublicKey> peers_;
  // (pid, certificate digest) -> handle of the already-imported label.
  // Bounded FIFO: past the cap the oldest dedupe records are dropped, so a
  // very old replay re-imports (harmlessly — the label content is
  // identical) instead of the map growing forever.
  static constexpr size_t kImportedCertCap = 65536;
  std::map<std::pair<kernel::ProcessId, std::string>, LabelHandle> imported_certs_;
  std::deque<std::pair<kernel::ProcessId, std::string>> imported_order_;
};

}  // namespace nexus::core

#endif  // NEXUS_CORE_NEXUS_H_
