// Principals and terms of the Nexus Authorization Logic (NAL).
//
// A principal is a base identity plus a chain of subprincipal tags: the
// paper's HW.kernel.process23 is base "HW" with path {"kernel",
// "process23"}. By definition a principal speaks for each of its
// subprincipals (A speaksfor A.tau), which the proof checker admits as an
// axiom whenever one principal's name is a strict prefix of another's.
//
// Goal formulas may contain variables (the paper's calligraphic
// identifiers); we spell them "$X". Labels are always ground.
#ifndef NEXUS_NAL_TERM_H_
#define NEXUS_NAL_TERM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace nexus::nal {

class Principal {
 public:
  Principal() = default;
  explicit Principal(std::string base) : base_(std::move(base)) {}
  Principal(std::string base, std::vector<std::string> path)
      : base_(std::move(base)), path_(std::move(path)) {}

  const std::string& base() const { return base_; }
  const std::vector<std::string>& path() const { return path_; }

  // Derives the subprincipal this.tag.
  Principal Sub(const std::string& tag) const;

  // True if this principal's name is a (possibly equal) prefix of `other`,
  // i.e. `other` is this principal or one of its subprincipals.
  bool IsPrefixOf(const Principal& other) const;

  // A "$X"-style metavariable usable in goal formulas.
  bool IsVariable() const { return !base_.empty() && base_[0] == '$' && path_.empty(); }

  // Dotted name: "HW.kernel.process23".
  std::string ToString() const;

  bool operator==(const Principal& other) const {
    return base_ == other.base_ && path_ == other.path_;
  }
  bool operator<(const Principal& other) const {
    return ToString() < other.ToString();
  }

 private:
  std::string base_;
  std::vector<std::string> path_;
};

enum class TermKind : uint8_t {
  kInt,        // 64-bit signed integer constant
  kString,     // quoted string constant
  kSymbol,     // bare identifier: TimeNow, Mar19, a filename
  kPrincipal,  // a principal used as a term
  kVariable,   // "$X" metavariable (goal formulas only)
};

class Term {
 public:
  Term() : kind_(TermKind::kInt), int_value_(0) {}

  static Term Int(int64_t value);
  static Term String(std::string value);
  static Term Symbol(std::string name);
  static Term Var(std::string name);  // Name without the '$'.
  static Term Prin(Principal principal);

  TermKind kind() const { return kind_; }
  int64_t int_value() const { return int_value_; }
  const std::string& text() const { return text_; }
  const Principal& principal() const { return principal_; }

  bool IsGround() const { return kind_ != TermKind::kVariable; }

  // Canonical printed form; integers print bare, strings quoted, variables
  // with a leading '$'.
  std::string ToString() const;

  bool operator==(const Term& other) const;

 private:
  TermKind kind_;
  int64_t int_value_ = 0;
  std::string text_;
  Principal principal_;
};

}  // namespace nexus::nal

#endif  // NEXUS_NAL_TERM_H_
