#include "kernel/trace.h"

#include <algorithm>

namespace nexus::kernel {

namespace {

thread_local uint64_t tls_current_trace_id = 0;

// Slot word packing (7 payload words per event):
//   w0 trace_id   w1 timestamp   w2 subject   w3 (op << 32) | obj
//   w4 generation w5 aux         w6 (latency << 32) | (flags << 16) |
//                                   (verdict << 8) | stage
uint64_t PackW3(const TraceEvent& e) {
  return (static_cast<uint64_t>(e.op) << 32) | e.obj;
}
uint64_t PackW6(const TraceEvent& e) {
  return (static_cast<uint64_t>(e.latency) << 32) | (static_cast<uint64_t>(e.flags) << 16) |
         (static_cast<uint64_t>(e.verdict) << 8) | static_cast<uint64_t>(e.stage);
}
TraceEvent Unpack(const uint64_t w[7]) {
  TraceEvent e;
  e.trace_id = w[0];
  e.timestamp = w[1];
  e.subject = w[2];
  e.op = static_cast<OpId>(w[3] >> 32);
  e.obj = static_cast<ObjectId>(w[3] & 0xffffffffULL);
  e.generation = w[4];
  e.aux = w[5];
  e.latency = static_cast<uint32_t>(w[6] >> 32);
  e.flags = static_cast<uint16_t>((w[6] >> 16) & 0xffff);
  e.verdict = static_cast<uint8_t>((w[6] >> 8) & 0xff);
  e.stage = static_cast<TraceStage>(w[6] & 0xff);
  return e;
}

}  // namespace

std::string_view TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kCall:
      return "call";
    case TraceStage::kSyscall:
      return "syscall";
    case TraceStage::kCacheProbe:
      return "cache_probe";
    case TraceStage::kEngineMiss:
      return "engine_miss";
    case TraceStage::kGuardCheck:
      return "guard_check";
    case TraceStage::kGuardUpcall:
      return "guard_upcall";
    case TraceStage::kRemoteVouch:
      return "remote_vouch";
    case TraceStage::kVerdict:
      return "verdict";
    case TraceStage::kReplyInterpose:
      return "reply_interpose";
    case TraceStage::kRemoteInvalidate:
      return "remote_invalidate";
  }
  return "unknown";
}

std::string FormatTraceEvents(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& e : events) {
    out += "trace=" + std::to_string(e.trace_id);
    out += " stage=";
    out += TraceStageName(e.stage);
    out += " subj=" + std::to_string(e.subject);
    std::string_view op = OpName(e.op);
    out += " op=" + (op.empty() ? std::to_string(e.op) : std::string(op));
    std::string_view obj = ObjectName(e.obj);
    out += " obj=" + (obj.empty() ? std::to_string(e.obj) : std::string(obj));
    if (e.verdict != kTraceVerdictNone) {
      out += e.verdict == kTraceVerdictAllow ? " verdict=allow" : " verdict=deny";
    }
    if (e.flags != 0) {
      out += " flags=";
      bool first = true;
      auto flag = [&](uint16_t bit, const char* name) {
        if ((e.flags & bit) != 0) {
          if (!first) {
            out += '|';
          }
          out += name;
          first = false;
        }
      };
      flag(kTraceFlagCacheHit, "hit");
      flag(kTraceFlagCacheMiss, "miss");
      flag(kTraceFlagRemote, "remote");
      flag(kTraceFlagInterposed, "interposed");
      flag(kTraceFlagUpcall, "upcall");
      flag(kTraceFlagDenied, "denied");
      flag(kTraceFlagProofCacheHit, "proof_hit");
      flag(kTraceFlagUncacheable, "uncacheable");
    }
    if (e.generation != 0) {
      out += " gen=" + std::to_string(e.generation);
    }
    if (e.aux != 0) {
      out += " aux=" + std::to_string(e.aux);
    }
    if (e.latency != 0) {
      out += " lat=" + std::to_string(e.latency);
    }
    out += '\n';
  }
  return out;
}

FlightRecorder& FlightRecorder::Global() {
  // Leaked: thread_local ring-release destructors may run after static
  // teardown would have destroyed a function-local static.
  static FlightRecorder* global = new FlightRecorder();
  return *global;
}

struct FlightRecorder::ThreadRingSlot {
  Ring* ring = nullptr;
  ~ThreadRingSlot() {
    if (ring != nullptr) {
      FlightRecorder::Global().ReleaseRing(ring);
    }
  }
};

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  thread_local ThreadRingSlot slot;
  if (slot.ring == nullptr) {
    slot.ring = AcquireRing();
  }
  return slot.ring;
}

FlightRecorder::Ring* FlightRecorder::AcquireRing() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  if (!free_rings_.empty()) {
    Ring* ring = free_rings_.back();
    free_rings_.pop_back();
    return ring;
  }
  rings_.push_back(std::make_unique<Ring>());
  return rings_.back().get();
}

void FlightRecorder::ReleaseRing(Ring* ring) {
  // The ring (and its retained events) stays owned by the recorder; a new
  // thread simply continues where the departed one stopped.
  std::lock_guard<std::mutex> lock(rings_mu_);
  free_rings_.push_back(ring);
}

void FlightRecorder::Emit(const TraceEvent& event) {
  if (!enabled()) {
    return;
  }
  Ring* ring = RingForThisThread();
  uint64_t h = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[h & (kRingCapacity - 1)];
  // Seqlock write: mark in-progress (odd), store the payload, publish the
  // new even generation with release so a reader that sees it also sees
  // the payload. Readers validate before AND after, so the rare torn
  // window (ring wrapped mid-read) is dropped, not observed.
  slot.seq.store(2 * h + 1, std::memory_order_release);
  slot.word[0].store(event.trace_id, std::memory_order_relaxed);
  // Default timestamp: the ring's own monotonic index (h+1, so a stamped
  // event is never confused with an unwritten slot). Exact order within
  // this thread; no cycle-counter read on the emit path.
  slot.word[1].store(event.timestamp != 0 ? event.timestamp : h + 1,
                     std::memory_order_relaxed);
  slot.word[2].store(event.subject, std::memory_order_relaxed);
  slot.word[3].store(PackW3(event), std::memory_order_relaxed);
  slot.word[4].store(event.generation, std::memory_order_relaxed);
  slot.word[5].store(event.aux, std::memory_order_relaxed);
  slot.word[6].store(PackW6(event), std::memory_order_relaxed);
  slot.seq.store(2 * h + 2, std::memory_order_release);
  ring->head.store(h + 1, std::memory_order_release);
}

void FlightRecorder::ReadRing(const Ring& ring, std::vector<TraceEvent>* out) const {
  uint64_t head = ring.head.load(std::memory_order_acquire);
  uint64_t floor = ring.cleared_below.load(std::memory_order_relaxed);
  uint64_t from = head > kRingCapacity ? head - kRingCapacity : 0;
  if (from < floor) {
    from = floor;
  }
  ReadRingRange(ring, from, head, out);
}

void FlightRecorder::ReadRingRange(const Ring& ring, uint64_t from, uint64_t to,
                                   std::vector<TraceEvent>* out) const {
  for (uint64_t i = from; i < to; ++i) {
    const Slot& slot = ring.slots[i & (kRingCapacity - 1)];
    uint64_t expected = 2 * i + 2;
    if (slot.seq.load(std::memory_order_acquire) != expected) {
      continue;  // Overwritten (or mid-write): drop, never tear.
    }
    uint64_t w[7];
    for (size_t k = 0; k < 7; ++k) {
      w[k] = slot.word[k].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != expected) {
      continue;
    }
    out->push_back(Unpack(w));
  }
}

FlightRecorder::DrainStats FlightRecorder::Drain(DrainCursor* cursor,
                                                 std::vector<DrainedSegment>* out) const {
  // Sentinel for "this cursor has never visited this ring": whatever the
  // ring retains is returned, and older (already overwritten) history is
  // not counted as dropped — a cursor cannot lose what predates it.
  constexpr uint64_t kFresh = ~uint64_t{0};
  DrainStats stats;
  std::lock_guard<std::mutex> lock(rings_mu_);
  if (cursor->next_.size() < rings_.size()) {
    cursor->next_.resize(rings_.size(), kFresh);
  }
  for (size_t r = 0; r < rings_.size(); ++r) {
    const Ring& ring = *rings_[r];
    uint64_t head = ring.head.load(std::memory_order_acquire);
    uint64_t floor = head > kRingCapacity ? head - kRingCapacity : 0;
    uint64_t cleared = ring.cleared_below.load(std::memory_order_relaxed);
    uint64_t start = cursor->next_[r];
    bool lossless = true;
    if (start == kFresh) {
      start = floor;
      // A fresh cursor on a wrapped ring starts mid-history: the head of
      // the oldest retained trace may already be overwritten.
      lossless = floor == 0;
    } else if (start < floor) {
      // The writer lapped the cursor: events in [start, floor) are gone.
      stats.dropped += floor - start;
      start = floor;
      lossless = false;
    }
    if (start < cleared) {
      start = cleared;  // Clear() is deliberate: skipped, not "dropped".
      lossless = true;
    }
    if (start >= head) {
      cursor->next_[r] = head;
      continue;
    }
    DrainedSegment segment;
    segment.ring = r;
    segment.begin_seq = start + 1;  // Emit stamps timestamp = index + 1.
    segment.lossless_start = lossless;
    ReadRingRange(ring, start, head, &segment.events);
    // Slots invalidated mid-read (writer advanced while we scanned) were
    // skipped by the seqlock check; they are drops the next cursor
    // position already accounts past.
    stats.dropped += (head - start) - segment.events.size();
    stats.drained += segment.events.size();
    cursor->next_[r] = head;
    if (!segment.events.empty()) {
      out->push_back(std::move(segment));
    }
  }
  return stats;
}

std::vector<TraceEvent> FlightRecorder::Recent(size_t max) const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    for (const auto& ring : rings_) {
      ReadRing(*ring, &events);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.timestamp < b.timestamp; });
  if (events.size() > max) {
    events.erase(events.begin(), events.end() - static_cast<ptrdiff_t>(max));
  }
  return events;
}

std::vector<TraceEvent> FlightRecorder::ForTrace(uint64_t trace_id) const {
  std::vector<TraceEvent> events = Recent();
  std::erase_if(events, [trace_id](const TraceEvent& e) { return e.trace_id != trace_id; });
  return events;
}

void FlightRecorder::Clear() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const auto& ring : rings_) {
    ring->cleared_below.store(ring->head.load(std::memory_order_acquire),
                              std::memory_order_relaxed);
  }
}

uint64_t FlightRecorder::events_emitted() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->head.load(std::memory_order_relaxed);
  }
  return total;
}

size_t FlightRecorder::ring_count() const {
  std::lock_guard<std::mutex> lock(rings_mu_);
  return rings_.size();
}

uint64_t FlightRecorder::NewTraceId() {
  constexpr uint64_t kBlock = 256;
  thread_local uint64_t tls_next = 0;
  thread_local uint64_t tls_end = 0;
  if (tls_next == tls_end) {
    tls_next = next_trace_id_.fetch_add(kBlock, std::memory_order_relaxed);
    tls_end = tls_next + kBlock;
  }
  return tls_next++;
}

std::string_view MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kSetGoal:
      return "setgoal";
    case MutationKind::kClearGoal:
      return "cleargoal";
    case MutationKind::kSetProof:
      return "setproof";
    case MutationKind::kClearProof:
      return "clearproof";
    case MutationKind::kSay:
      return "say";
    case MutationKind::kRemoteInvalidate:
      return "remote_invalidate";
  }
  return "unknown";
}

MutationLog& MutationLog::Global() {
  // Leaked for the same teardown-order reason as the recorder.
  static MutationLog* global = new MutationLog();
  return *global;
}

uint64_t MutationLog::Append(MutationRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = next_seq_++;
  uint64_t seq = record.seq;
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) {
    records_.pop_front();
    ++dropped_;
  }
  return seq;
}

size_t MutationLog::DrainFrom(uint64_t* cursor, std::vector<MutationRecord>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Records are in seq order; find the first one past the cursor.
  size_t appended = 0;
  for (const MutationRecord& r : records_) {
    if (r.seq > *cursor) {
      out->push_back(r);
      *cursor = r.seq;
      ++appended;
    }
  }
  return appended;
}

void MutationLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  // seq keeps counting: cursors held by consumers stay valid.
}

void MutationLog::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity > 0 ? capacity : 1;
  while (records_.size() > capacity_) {
    records_.pop_front();
    ++dropped_;
  }
}

uint64_t MutationLog::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

uint64_t MutationLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t MutationLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

uint64_t CurrentTraceId() { return tls_current_trace_id; }

TraceScope::TraceScope() : saved_(tls_current_trace_id) {
  FlightRecorder& recorder = FlightRecorder::Global();
  if (recorder.enabled()) {
    id_ = saved_ != 0 ? saved_ : recorder.NewTraceId();
    tls_current_trace_id = id_;
  }
}

TraceScope::~TraceScope() { tls_current_trace_id = saved_; }

}  // namespace nexus::kernel
