#include "apps/fauxbook.h"

#include <algorithm>

namespace nexus::apps {

// ---------------------------------------------------------------- Sandbox

bool PythonSandbox::IsReflectionCall(const std::string& call) {
  return call.rfind("getattr", 0) == 0 || call.rfind("eval", 0) == 0 ||
         call.rfind("__import__", 0) == 0 || call.rfind("exec", 0) == 0;
}

Status PythonSandbox::CheckImports(const TenantModule& module) const {
  for (const std::string& import : module.imports) {
    if (!import_whitelist_.contains(import)) {
      return PermissionDenied("tenant module '" + module.name + "' imports '" + import +
                              "', which is outside the sandbox whitelist");
    }
  }
  return OkStatus();
}

TenantModule PythonSandbox::RewriteReflection(const TenantModule& module) const {
  TenantModule out = module;
  for (std::string& call : out.calls) {
    if (IsReflectionCall(call)) {
      call = "safe_" + call;  // Constrained form cannot reach __import__.
    }
  }
  return out;
}

Result<TenantModule> PythonSandbox::Load(const TenantModule& module, core::Engine* engine,
                                         kernel::ProcessId loader) const {
  NEXUS_RETURN_IF_ERROR(CheckImports(module));
  TenantModule rewritten = RewriteReflection(module);
  // Post-conditions of the two labeling functions, as labels.
  auto say = [&](const std::string& pred) {
    return engine->SayFormula(
        loader, nal::FormulaNode::Pred(pred, {nal::Term::Symbol(module.name)}));
  };
  Result<core::LabelHandle> l1 = say("isLegalPython");
  if (!l1.ok()) {
    return l1.status();
  }
  Result<core::LabelHandle> l2 = say("importsConstrained");
  if (!l2.ok()) {
    return l2.status();
  }
  Result<core::LabelHandle> l3 = say("reflectionRewritten");
  if (!l3.ok()) {
    return l3.status();
  }
  return rewritten;
}

nal::Principal UserPrincipal(const nal::Principal& webserver, const std::string& user) {
  return webserver.Sub("user").Sub(user);
}

// -------------------------------------------------------------- Fauxbook

Fauxbook::Fauxbook(core::Nexus* nexus) : Fauxbook(nexus, Config{}) {}

Fauxbook::Fauxbook(core::Nexus* nexus, const Config& config)
    : nexus_(nexus), config_(config), sandbox_(config.import_whitelist) {
  kernel::Kernel& k = nexus_->kernel();

  // The three tiers plus the tenant IPD.
  driver_ = *nexus_->CreateProcess("netdriver", ToBytes("nexus-e1000-driver"));
  webserver_ = *nexus_->CreateProcess("webserver", ToBytes("lighttpd-1.4"));
  framework_ = *nexus_->CreateProcess("webframework", ToBytes("python-framework"));
  tenant_pid_ = *nexus_->CreateProcess("fauxbook-app", ToBytes("fauxbook-tenant-code"),
                                       framework_);

  driver_port_ = *nexus_->CreatePort(driver_);
  webserver_port_ = *nexus_->CreatePort(webserver_);

  // Channel topology: driver <-> webserver <-> framework. The driver has no
  // channel to the filesystem — the analyzer can attest that.
  k.ConnectPort(webserver_, driver_port_);
  k.ConnectPort(driver_, webserver_port_);
  k.ConnectPort(framework_, webserver_port_);

  // DDRM on the driver: DMA and packet ops only, no page-content access,
  // IPC restricted to the web server (synthetic trust, §4.1).
  services::DdrmPolicy policy;
  policy.allowed_operations = {"dma_setup", "send", "recv", "interrupt_ack", "ipc_send"};
  policy.allow_page_content_access = false;
  policy.allowed_ipc_targets = {webserver_port_};
  driver_monitor_ = std::make_unique<services::DeviceDriverMonitor>(policy);
  kernel::ProcessId monitor_pid = *nexus_->CreateProcess("ddrm", ToBytes("nexus-ddrm"));
  k.Interpose(monitor_pid, driver_port_, driver_monitor_.get());
  driver_monitor_->AttestDriver(&nexus_->engine(), monitor_pid, driver_);

  // The web server relinquishes everything but IPC/polling after init.
  k.RestrictSyscalls(webserver_, {kernel::Syscall::kNull, kernel::Syscall::kYield,
                                  kernel::Syscall::kIpcCall, kernel::Syscall::kGetTimeOfDay,
                                  kernel::Syscall::kOpen, kernel::Syscall::kClose,
                                  kernel::Syscall::kRead, kernel::Syscall::kWrite});

  // Cobuf flows follow the social graph: recipient may absorb source's data
  // iff source authorized recipient as a friend.
  cobufs_ = std::make_unique<services::CobufManager>(
      [this](const nal::Principal& recipient, const nal::Principal& source) {
        // Principals are name.webserver.user.<name>; compare the leaf.
        if (recipient.path().empty() || source.path().empty()) {
          return false;
        }
        const std::string& r = recipient.path().back();
        const std::string& s = source.path().back();
        return AreFriends(s, r);
      });

  // Tenants scheduled under the proportional-share scheduler.
  k.scheduler().AddClient(framework_, 1);
}

Status Fauxbook::AddUser(const std::string& name) {
  if (users_.contains(name)) {
    return AlreadyExists("user exists: " + name);
  }
  User user;
  user.principal = UserPrincipal(nexus_->kernel().ProcessPrincipal(webserver_), name);
  users_[name] = std::move(user);
  return OkStatus();
}

Status Fauxbook::AddFriend(const std::string& user, const std::string& friend_name) {
  auto owner = users_.find(user);
  if (owner == users_.end() || !users_.contains(friend_name)) {
    return NotFound("no such user");
  }
  owner->second.friends.insert(friend_name);
  // The authentication library records the edge as a scoped delegation:
  //   <user> says <friend> speaksfor <user> on feed.
  nexus_->engine().SayAs(
      owner->second.principal,
      nal::FormulaNode::SpeaksFor(users_.at(friend_name).principal, owner->second.principal,
                                  "feed"));
  return OkStatus();
}

bool Fauxbook::AreFriends(const std::string& owner, const std::string& reader) const {
  auto it = users_.find(owner);
  return it != users_.end() && it->second.friends.contains(reader);
}

Status Fauxbook::PostStatus(const std::string& user, const std::string& text) {
  auto it = users_.find(user);
  if (it == users_.end()) {
    return NotFound("no such user");
  }
  // The web server attaches the authenticated session owner; tenant code
  // receives only the cobuf id.
  services::CobufId post = cobufs_->CreateOwned(it->second.principal, ToBytes(text));
  it->second.posts.push_back(post);
  return OkStatus();
}

Result<std::vector<std::string>> Fauxbook::ReadFeed(const std::string& viewer) {
  auto viewer_it = users_.find(viewer);
  if (viewer_it == users_.end()) {
    return NotFound("no such user");
  }
  // --- Tenant code: assemble the feed as cobuf operations only.
  TenantDataApi api(cobufs_.get());
  services::CobufId feed = cobufs_->CreateOwned(viewer_it->second.principal, {});
  std::vector<std::pair<services::CobufId, size_t>> offsets;
  for (const auto& [name, user] : users_) {
    for (services::CobufId post : user.posts) {
      // Collation succeeds only along authorized edges (or self).
      services::CobufId separator = cobufs_->CreateOwned(viewer_it->second.principal,
                                                         ToBytes("\n"));
      if (api.Append(feed, post).ok()) {
        api.Append(feed, separator);
      }
      cobufs_->Destroy(separator);
    }
  }
  // --- Web server: extraction under the viewer's session principal.
  Result<Bytes> rendered = cobufs_->Extract(feed, viewer_it->second.principal);
  cobufs_->Destroy(feed);
  if (!rendered.ok()) {
    return rendered.status();
  }
  std::vector<std::string> out;
  std::string blob = ToString(*rendered);
  size_t start = 0;
  while (start < blob.size()) {
    size_t end = blob.find('\n', start);
    if (end == std::string::npos) {
      end = blob.size();
    }
    if (end > start) {
      out.push_back(blob.substr(start, end - start));
    }
    start = end + 1;
  }
  return out;
}

Result<Bytes> Fauxbook::DeveloperPeek(const std::string& user) {
  auto it = users_.find(user);
  if (it == users_.end()) {
    return NotFound("no such user");
  }
  if (it->second.posts.empty()) {
    return NotFound("no posts");
  }
  // The developer's code runs as the tenant; it holds no session principal
  // for the user, only its own identity.
  nal::Principal developer =
      nexus_->kernel().ProcessPrincipal(tenant_pid_);
  return cobufs_->Extract(it->second.posts.front(), developer);
}

Status Fauxbook::DeveloperForgeFriend(const std::string& user, const std::string& impostor) {
  // Tenant code has no path to the authentication library: the only edge-
  // creating API validates that the session principal matches `user`, and
  // the tenant's session is its own. Model: reject non-self-initiated
  // edges.
  if (!users_.contains(user) || !users_.contains(impostor)) {
    return NotFound("no such user");
  }
  return PermissionDenied("friend edges require the owner's authenticated session; tenant "
                          "code cannot forge cobuf ownership (owner ids are attached in the "
                          "web server layer)");
}

Status Fauxbook::TenantExfiltrate(const std::string& victim, const std::string& attacker) {
  auto victim_it = users_.find(victim);
  auto attacker_it = users_.find(attacker);
  if (victim_it == users_.end() || attacker_it == users_.end()) {
    return NotFound("no such user");
  }
  if (victim_it->second.posts.empty()) {
    return NotFound("no posts");
  }
  TenantDataApi api(cobufs_.get());
  services::CobufId sink = cobufs_->CreateOwned(attacker_it->second.principal, {});
  Status flowed = api.Append(sink, victim_it->second.posts.front());
  cobufs_->Destroy(sink);
  return flowed;
}

Status Fauxbook::SetTenantWeight(const std::string& tenant, uint32_t weight) {
  tenant_weights_[tenant] = weight;
  kernel::Kernel& k = nexus_->kernel();
  // Tenants share the framework process in this model; per-tenant weights
  // are tracked in the scheduler via the framework's weight plus exported
  // introspection nodes (readable only by that tenant, per goal formulas).
  Status s = k.scheduler().SetWeight(framework_, weight);
  k.procfs().PublishValue(framework_, "/proc/tenant/" + tenant + "/weight",
                          std::to_string(weight));
  return s;
}

Result<core::LabelHandle> Fauxbook::AttestCpuShare(const std::string& tenant,
                                                   int min_percent) {
  kernel::Kernel& k = nexus_->kernel();
  Result<std::string> weight_str = k.procfs().Read("/proc/tenant/" + tenant + "/weight");
  if (!weight_str.ok()) {
    return weight_str.status();
  }
  uint32_t weight = static_cast<uint32_t>(std::stoul(*weight_str));
  uint64_t total = 0;
  for (kernel::ProcessId pid : k.scheduler().Clients()) {
    total += k.scheduler().Weight(pid);
  }
  if (total == 0 || weight * 100 < static_cast<uint64_t>(min_percent) * total) {
    return FailedPrecondition("scheduler state does not support a " +
                              std::to_string(min_percent) + "% share for tenant " + tenant);
  }
  // The labeling function vouches from live allocator state (§4.1).
  return nexus_->engine().SayFormula(
      framework_,
      nal::FormulaNode::Compare(nal::CompareOp::kGe,
                                nal::Term::Symbol("cpuShare:" + tenant),
                                nal::Term::Int(min_percent)));
}

Result<Bytes> Fauxbook::ServeStatic(const std::string& path) {
  kernel::Kernel& k = nexus_->kernel();
  // driver -> webserver: the request arrives as a packet (typed v2
  // message; the op id is hoisted, the path is a string slot).
  static const kernel::OpId recv_op = kernel::InternOp("recv");
  kernel::IpcMessage packet = kernel::IpcMessage::Of(recv_op);
  packet.AddString(path);
  kernel::IpcReply from_driver = k.Call(webserver_, driver_port_, packet);
  (void)from_driver;  // The driver port may have no handler in benches.

  // webserver -> filesystem via file syscalls. The fd travels as an
  // integer slot: no std::to_string / re-parse on the read/close path.
  kernel::IpcMessage open_msg;
  open_msg.AddString(path);
  kernel::IpcReply open = k.Invoke(webserver_, kernel::Syscall::kOpen, open_msg);
  if (!open.status.ok()) {
    return open.status;
  }
  kernel::IpcMessage fd_msg;
  fd_msg.AddU64(static_cast<uint64_t>(open.value()));
  kernel::IpcReply read = k.Invoke(webserver_, kernel::Syscall::kRead, fd_msg);
  k.Invoke(webserver_, kernel::Syscall::kClose, fd_msg);
  if (!read.status.ok()) {
    return read.status;
  }
  return read.data.ToOwned();
}

Result<Bytes> Fauxbook::ServeDynamic(const std::string& viewer) {
  Result<std::vector<std::string>> feed = ReadFeed(viewer);
  if (!feed.ok()) {
    return feed.status();
  }
  // Render: framework dispatch + HTML-ish assembly.
  Bytes page = ToBytes("<html><body>");
  for (const std::string& item : *feed) {
    Append(page, ToBytes("<p>" + item + "</p>"));
  }
  Append(page, ToBytes("</body></html>"));
  return page;
}

Status Fauxbook::LoadTenantCode(const TenantModule& module) {
  Result<TenantModule> loaded = sandbox_.Load(module, &nexus_->engine(), framework_);
  return loaded.status();
}

}  // namespace nexus::apps
