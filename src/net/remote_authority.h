// Remote authorities: dynamic-state queries across instances (§2.7).
//
// Authority answers are untransferable by design — they may not be cached,
// stored, or forwarded. That property survives the network: a
// RemoteAuthority forwards each query over an attested channel to an
// AuthorityService on the instance where the dynamic state lives, consumes
// the fresh yes/no, and DENIES whenever the answer is missing or late. The
// proof checker already marks proofs with authority leaves uncacheable, so
// every guard evaluation re-crosses the channel.
//
// Batched guard evaluation uses the multi-statement VouchBatch wire
// message: N statements travel in one attested round trip and come back as
// N independent fresh answers. Batching changes the transport economics,
// not the trust model — each answer is still consumed exactly once, by the
// decision batch that asked.
#ifndef NEXUS_NET_REMOTE_AUTHORITY_H_
#define NEXUS_NET_REMOTE_AUTHORITY_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/authority.h"
#include "net/node.h"
#include "util/metrics.h"

namespace nexus::net {

class AuthorityService;

// Adapter binding the "authority_batch" service name to the owning
// AuthorityService (the node's service registry dispatches by name only).
class AuthorityBatchEndpoint : public Service {
 public:
  explicit AuthorityBatchEndpoint(AuthorityService* parent) : parent_(parent) {}
  Result<Bytes> Handle(AttestedChannel& channel, ByteView request) override;

 private:
  AuthorityService* parent_;
};

// Server side: exposes local authorities to peers as the "authority"
// service (single statement) and the "authority_batch" service
// (length-prefixed statement list -> one verdict byte per statement).
// Unhandled or erroring queries answer deny — never "ask someone else".
class AuthorityService : public Service {
 public:
  static constexpr std::string_view kServiceName = "authority";
  static constexpr std::string_view kBatchServiceName = "authority_batch";

  explicit AuthorityService(NetNode* node);

  void AddAuthority(core::Authority* authority) { authorities_.push_back(authority); }

  Result<Bytes> Handle(AttestedChannel& channel, ByteView request) override;

  // Individual statements evaluated (batch requests count each statement).
  uint64_t queries_served() const { return queries_served_; }
  // Wire-level batch requests handled.
  uint64_t batches_served() const { return batches_served_; }

 private:
  friend class AuthorityBatchEndpoint;

  bool Evaluate(const nal::Formula& statement);
  Result<Bytes> HandleBatch(ByteView request);

  NetNode* node_;
  std::vector<core::Authority*> authorities_;
  std::unique_ptr<AuthorityBatchEndpoint> batch_endpoint_;
  uint64_t queries_served_ = 0;
  uint64_t batches_served_ = 0;
};

// Client side: a core::Authority whose truth lives on a peer instance.
// Register with Guard::AddRemoteAuthority so the guard's deadline applies.
// Thread-safe once its channel is established: concurrent worker threads
// may query it while their round trips overlap on the shared fabric
// (counters are atomics; stats() returns a snapshot).
class RemoteAuthority : public core::Authority {
 public:
  using HandlesPredicate = std::function<bool(const nal::Formula&)>;

  struct Stats {
    uint64_t queries = 0;  // Statements asked (batched or not).
    uint64_t vouched = 0;
    uint64_t denied = 0;              // The peer answered: deny (incl. malformed replies).
    uint64_t denied_unreachable = 0;  // Never got a request in flight (no
                                      // channel: untrusted peer, handshake
                                      // failure, send failure).
    uint64_t denied_timeout = 0;      // Request went out; the reply was lost
                                      // or landed past the deadline.
    uint64_t batch_round_trips = 0;   // VouchBatch wire calls issued
  };

  // `handles` scopes which statements this authority forwards (nullptr =
  // all); `default_timeout_us` applies to plain Vouches() calls.
  RemoteAuthority(NetNode* node, NodeId peer, HandlesPredicate handles = nullptr,
                  uint64_t default_timeout_us = 10000);

  bool Handles(const nal::Formula& statement) const override;
  bool Vouches(const nal::Formula& statement) override;
  bool VouchesWithin(const nal::Formula& statement, uint64_t timeout_us) override;
  // N statements, ONE attested round trip. A lost or late reply denies all
  // of them (fail closed, same as the single-statement path).
  std::vector<bool> VouchBatch(std::span<const nal::Formula> statements,
                               uint64_t timeout_us) override;
  // The pipelined variant: the VouchBatch wire message goes out NOW and the
  // reply is collected at Wait(), so the caller overlaps this round trip
  // with other round trips and with local proof checking. Deadline
  // semantics are identical to VouchBatch (the clock starts at issue).
  std::unique_ptr<core::VouchFuture> VouchBatchAsync(
      std::span<const nal::Formula> statements, uint64_t timeout_us) override;
  // The primary implementation: VouchBatchAsync with responsiveness, which
  // is what QuorumAuthority aggregates (a dead peer is skipped and backed
  // off; a responsive deny is a real no-vote). The plain future wraps this.
  std::unique_ptr<core::DetailedVouchFuture> VouchBatchAsyncDetailed(
      std::span<const nal::Formula> statements, uint64_t timeout_us) override;
  bool IsRemote() const override { return true; }

  Stats stats() const {
    return Stats{stats_.queries->Value(),
                 stats_.vouched->Value(),
                 stats_.denied->Value(),
                 stats_.denied_unreachable->Value(),
                 stats_.denied_timeout->Value(),
                 stats_.batch_round_trips->Value()};
  }

 private:
  NetNode* node_;
  NodeId peer_;
  HandlesPredicate handles_;
  uint64_t default_timeout_us_;
  // Registry instruments ("remote_authority.*"): relaxed-atomic tallies;
  // stats() snapshots them per instance, the registry aggregates across
  // instances.
  metrics::MetricGroup metrics_{&metrics::Registry::Global(), "remote_authority"};
  struct {
    metrics::Counter* queries;
    metrics::Counter* vouched;
    metrics::Counter* denied;
    metrics::Counter* denied_unreachable;
    metrics::Counter* denied_timeout;
    metrics::Counter* batch_round_trips;
  } stats_{metrics_.NewCounter("queries"), metrics_.NewCounter("vouched"),
           metrics_.NewCounter("denied"), metrics_.NewCounter("denied_unreachable"),
           metrics_.NewCounter("denied_timeout"), metrics_.NewCounter("batch_round_trips")};
};

}  // namespace nexus::net

#endif  // NEXUS_NET_REMOTE_AUTHORITY_H_
