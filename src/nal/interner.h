// Hash-consing for NAL formulas (§2.8 made concrete).
//
// Repeated authorizations must cost a cache lookup, which means formula
// identity must cost an integer compare — not a ToString() or a recursive
// structural walk. The interner assigns every distinct formula a stable
// FormulaId: structurally equal formulas (built independently, parsed from
// different strings, arriving over the wire) intern to the same id, so
// equality is `a == b` on a 64-bit value and cache keys are integer tuples.
//
// Interning is memoized two ways:
//   - by pointer identity for canonical nodes (which the interner owns
//     forever, so the address is a stable key): re-interning one is a
//     single hash probe — the common case, since label stores and goal
//     stores hold canonical nodes;
//   - by precomputed 64-bit structural hash for everything else: a
//     structurally-equal stranger lands in the same bucket and is unified
//     with the canonical node after one Equals() confirmation.
//
// The interner is append-only soft state shared by label stores, goal
// stores, and guard proof-check caches. It is safe for concurrent use:
// both memo maps are striped (the pointer memo by address, the structural
// memo by hash), each stripe behind its own reader-writer lock, so worker
// threads interning or resolving distinct formulas never contend on a
// global lock. Ids encode (stripe, per-stripe index); they are stable and
// unique but NOT dense. Canonical nodes are immortal, so a Formula
// returned by Canonical/Resolve is valid without holding any lock.
#ifndef NEXUS_NAL_INTERNER_H_
#define NEXUS_NAL_INTERNER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "nal/formula.h"

namespace nexus::nal {

// Nonzero; 0 never names a formula.
using FormulaId = uint64_t;
inline constexpr FormulaId kInvalidFormulaId = 0;

// 64-bit structural hash of a formula (kind, predicate names, terms,
// principals, children). Equal formulas hash equal; collisions are resolved
// by Equals() inside the interner.
uint64_t StructuralHash(const Formula& f);

// The hash primitives behind StructuralHash and nal::ProofHash — shared so
// the two never drift (equal structures must hash equal across modules).
// splitmix64-style combiner:
uint64_t HashMix(uint64_t h, uint64_t v);
// FNV-1a over bytes, seeded:
uint64_t HashBytes(std::string_view s, uint64_t seed);

class Interner {
 public:
  // Assigns (or retrieves) the id of the interning class containing `f`.
  // Null formulas intern to kInvalidFormulaId.
  FormulaId Intern(const Formula& f);

  // The canonical node for `f`'s interning class. Holding canonical nodes
  // (instead of whatever copy arrived) makes later interning a pointer
  // lookup and lets structurally-equal formulas share one tree.
  Formula Canonical(const Formula& f);

  // The canonical formula for an id; nullptr for unknown/invalid ids.
  Formula Resolve(FormulaId id) const;

  // Number of distinct interned formulas.
  size_t size() const;

  // The process-wide interner used by label stores, goal stores, and
  // guards. Ids from it are comparable across all of them.
  static Interner& Global();

 private:
  static constexpr uint64_t kStripeBits = 4;
  static constexpr uint64_t kNumStripes = 1ULL << kStripeBits;
  static constexpr uint64_t kStripeMask = kNumStripes - 1;

  // Canonical storage, striped by structural hash. An id decodes as
  // (stripe = id & mask, local = (id >> bits) - 1) into that stripe's
  // formula deque (deque: stable addresses under append).
  struct HashStripe {
    mutable std::shared_mutex mu;
    // hash -> ids of interned formulas with that structural hash.
    std::unordered_map<uint64_t, std::vector<FormulaId>> by_hash;
    std::deque<Formula> formulas;
  };
  // The pointer fast path, striped by address. Only canonical nodes (owned
  // forever by a HashStripe) are keys, so a hit needs no hash computation.
  struct PointerStripe {
    mutable std::shared_mutex mu;
    std::unordered_map<const FormulaNode*, FormulaId> by_pointer;
  };

  static FormulaId EncodeId(uint64_t stripe, uint64_t local) {
    return ((local + 1) << kStripeBits) | stripe;
  }

  HashStripe hash_stripes_[kNumStripes];
  PointerStripe pointer_stripes_[kNumStripes];
};

}  // namespace nexus::nal

#endif  // NEXUS_NAL_INTERNER_H_
