// The user-level RAM filesystem server.
//
// Nexus implements filesystem functionality outside the kernel; file
// syscalls are forwarded over IPC to this server (which is why Table 1's
// open/close/read/write are 2-3x a monolithic kernel's). Per-file, per-
// operation goal formulas are enforced by routing each access through the
// kernel's Authorize path with object "file:<path>".
//
// Hot-path interning: operation ids are hoisted once, and each file's
// "file:<path>" object id is interned once (charged to the opener's name
// quota) and memoized — an open file descriptor carries its ObjectId, so
// the per-read/per-write authorization is a pure integer-tuple
// AuthzRequest with no string built or hashed (ROADMAP "Interned fast
// paths"). The server itself follows the single-dispatcher contract of
// user-level services: one Handle at a time.
#ifndef NEXUS_KERNEL_FILESERVER_H_
#define NEXUS_KERNEL_FILESERVER_H_

#include <map>
#include <string>
#include <string_view>
#include <unordered_map>

#include "kernel/ipc.h"
#include "kernel/kernel.h"

namespace nexus::kernel {

class FileServer : public PortHandler {
 public:
  explicit FileServer(Kernel* kernel) : kernel_(kernel) {}

  // Operations: create(path), open(path)->fd, close(fd), read(fd, off, len)
  // -> data, write(fd, off)+data, unlink(path), stat(path)->size.
  IpcReply Handle(const IpcContext& context, const IpcMessage& message) override;

  // Direct (non-IPC) access for tests and setup code.
  Status CreateFile(const std::string& path, ByteView content = {});
  Result<Bytes> ReadFile(const std::string& path) const;
  bool Exists(std::string_view path) const { return files_.contains(path); }
  size_t FileCount() const { return files_.size(); }

 private:
  struct OpenFile {
    std::string path;
    ProcessId owner;
    // The interned "file:<path>" identity, resolved at open: reads and
    // writes authorize with it directly.
    ObjectId object = 0;
  };

  IpcReply Error(Status status) { return IpcReply(std::move(status)); }

  // The memoized "file:<path>" object id, interning (charged to `caller`)
  // on first sight of the path.
  Result<ObjectId> FileObject(ProcessId caller, std::string_view path);

  Kernel* kernel_;
  // Transparent lookups: path probes from string_view slots allocate no
  // key string (matching the typed ABI's zero-string goal).
  std::map<std::string, Bytes, std::less<>> files_;
  std::map<int64_t, OpenFile> open_files_;
  std::unordered_map<std::string, ObjectId, TransparentStringHash, TransparentStringEq>
      file_objects_;
  int64_t next_fd_ = 3;
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_FILESERVER_H_
