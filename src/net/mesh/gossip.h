// Mesh gossip: floods peer records and certificates over attested channels.
//
// Transitive trust, made explicit: the seed topology registers EKs out of
// band (the paper's §2.4 assumption) for ADJACENT nodes only; gossip then
// carries every node's (name, EK) record across the mesh, and a node
// accepts a record because it arrived over a channel whose endpoint it
// already attested. Certificates ride the same flood but are individually
// re-verified against the receiver's trust anchors before import — the
// channel authenticates the MESSENGER, VerifyCertificate authenticates the
// STATEMENT, and a certificate whose chain does not verify is dropped
// without entering the registry (so it is never re-gossiped: no poisoning).
//
// Delivery discipline: handlers run under the transport pump lock, which is
// NOT reentrant — a handler may Send but must never pump. Gossip therefore
// uses only the one-way SendSecure primitive from inside Handle (flood on
// news), and reserves Connect/anti-entropy rounds for PushState()/
// AntiEntropyRound(), which callers invoke from OUTSIDE the pump.
//
// Reordering tolerance: a certificate can arrive before the peer record
// that anchors its chain. Such certificates wait in a bounded pending set
// and are retried whenever new peer records land, so any delivery order of
// the same record set converges to the same registry.
#ifndef NEXUS_NET_MESH_GOSSIP_H_
#define NEXUS_NET_MESH_GOSSIP_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/mesh/registry.h"
#include "net/node.h"

namespace nexus::net::mesh {

class GossipService : public Service {
 public:
  static constexpr std::string_view kServiceName = "mesh_gossip";
  // A tampered certificate re-verifies false forever, so the pending set
  // must be bounded: past the cap the oldest pending entry is dropped (it
  // can re-arrive on a later anti-entropy round once its anchor is known).
  static constexpr size_t kMaxPendingCerts = 1024;

  struct Stats {
    uint64_t peers_imported = 0;
    uint64_t certs_imported = 0;
    uint64_t duplicates = 0;      // Idempotent re-deliveries (peer or cert).
    uint64_t rejected = 0;        // Conflicting records, failed verification.
    uint64_t pending_parked = 0;  // Certs parked awaiting their trust anchor.
    uint64_t floods_sent = 0;     // SendSecure fan-outs triggered by news.
  };

  // Registers itself on `node` under kServiceName and seeds the registry
  // with the node's own (id, EK) record. `import_pid` is the process whose
  // labelstore receives gossiped certificate statements.
  GossipService(NetNode* node, MeshRegistry* registry, kernel::ProcessId import_pid);

  Result<Bytes> Handle(AttestedChannel& channel, ByteView request) override;

  // Sends this node's full state to `peer` over the (established) channel,
  // one-way. Call from outside the pump; the caller pumps the transport.
  Status PushState(const NodeId& peer);

  // Pins `peer` as a standing anti-entropy target even before (or without)
  // its record entering the registry. Join pushes are one-way and lossy;
  // without this, a dropped join push severs the only link between two
  // registry partitions and no later round ever re-targets it — the mesh
  // wedges split. Seeds make the configured topology durable: every round
  // retries the seed link until the registries actually merge.
  void AddSeed(const NodeId& peer);

  // One anti-entropy round: push full state to every peer in the registry
  // with a usable channel (Connect()s as needed — never call from inside a
  // handler). Returns the number of pushes sent. Combined with the flood-
  // on-news in Handle, repeated rounds converge the mesh even after
  // partitions drop arbitrary subsets of messages.
  size_t AntiEntropyRound();

  // Queue a locally-minted certificate for propagation: imports it into
  // the local registry and floods it. Call from outside the pump.
  Status PublishCertificate(const Bytes& cert_bytes);

  size_t pending_certs() const;
  Stats stats() const;

 private:
  // Serializes the registry's full state (wire: u32 peer count, records;
  // u32 cert count, length-prefixed certs).
  Bytes SerializeState() const;
  // Applies one gossip payload; returns how many records were NEW. `from`
  // names the delivering channel's peer (excluded from the re-flood).
  size_t ApplyState(ByteView payload, const NodeId& from);
  // Imports one peer record (registry + Nexus trust anchor), one cert.
  bool ApplyPeerRecord(const PeerRecord& record);
  bool ApplyCertificate(const Bytes& cert_bytes);
  // Re-attempts parked certificates (called after new peer records).
  size_t RetryPendingLocked();
  // SendSecure `payload` to every registry peer with an established
  // channel, except `skip`. Safe under the pump lock (send-only).
  size_t Flood(const Bytes& payload, const NodeId& skip);

  NetNode* node_;
  MeshRegistry* registry_;
  kernel::ProcessId import_pid_;

  mutable std::mutex mu_;  // pending_certs_, seeds_, and stats_.
  std::map<std::string, Bytes> pending_certs_;  // digest -> bytes
  std::vector<std::string> pending_order_;      // FIFO for the cap.
  std::vector<NodeId> seeds_;  // Standing anti-entropy targets (joins).
  Stats stats_;
};

}  // namespace nexus::net::mesh

#endif  // NEXUS_NET_MESH_GOSSIP_H_
