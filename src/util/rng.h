// Deterministic pseudo-random number generation.
//
// All randomness in the simulation (RSA key generation, workload generators,
// failure injection) flows through this generator so that tests and
// benchmarks are reproducible from a seed.
#ifndef NEXUS_UTIL_RNG_H_
#define NEXUS_UTIL_RNG_H_

#include <cstdint>

#include "util/bytes.h"

namespace nexus {

// xoshiro256** seeded via splitmix64. Not cryptographically secure; the
// simulation documents this substitution in DESIGN.md.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Fills a buffer with random bytes.
  void Fill(Bytes& out, size_t n);
  Bytes RandomBytes(size_t n);

 private:
  uint64_t state_[4];
};

}  // namespace nexus

#endif  // NEXUS_UTIL_RNG_H_
