// Hash-based attestation: the axiomatic baseline (§1).
//
// The conventional TPM attestation model the paper argues against: identify
// trustworthy software by its launch-time binary hash against a whitelist.
// Kept as the comparison baseline for the movie-player application (platform
// lock-down: any player not on the list is rejected, regardless of its
// actual properties).
#ifndef NEXUS_KERNEL_HASH_ATTESTATION_H_
#define NEXUS_KERNEL_HASH_ATTESTATION_H_

#include <set>
#include <string>

#include "kernel/kernel.h"
#include "util/status.h"

namespace nexus::kernel {

class HashWhitelist {
 public:
  // Adds the SHA-256 (hex) of an approved binary.
  void Allow(const std::string& hash_hex) { allowed_.insert(hash_hex); }
  void AllowBinary(ByteView binary);
  bool IsAllowed(const std::string& hash_hex) const { return allowed_.contains(hash_hex); }
  size_t size() const { return allowed_.size(); }

  // Axiomatic check: is this process's launch-time hash whitelisted?
  Result<bool> Check(const Kernel& kernel, ProcessId pid) const;

 private:
  std::set<std::string> allowed_;
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_HASH_ATTESTATION_H_
