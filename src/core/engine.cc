#include "core/engine.h"

#include "nal/parser.h"

namespace nexus::core {

Engine::Engine(kernel::Kernel* kernel, Guard* default_guard)
    : kernel_(kernel), default_guard_(default_guard) {}

Engine::Verdict Engine::DefaultPolicy(kernel::ProcessId subject, const std::string& operation,
                                      const std::string& object) {
  (void)operation;
  // Unregistered objects (ambient resources like the bare syscall object)
  // are unguarded until someone registers or sets a goal on them.
  if (!objects_.Known(object)) {
    return {OkStatus(), true};
  }
  // A nascent object with no goal is satisfiable only by the object's owner
  // or the resource manager that created it (its superprincipal).
  std::optional<kernel::ProcessId> owner = objects_.Owner(object);
  std::optional<kernel::ProcessId> manager = objects_.Manager(object);
  if (subject == kernel::kKernelProcessId ||
      (owner.has_value() && subject == *owner) ||
      (manager.has_value() && subject == *manager)) {
    return {OkStatus(), true};
  }
  return {PermissionDenied("bootstrap policy: only the owner or resource manager may access " +
                           object),
          true};
}

Engine::Verdict Engine::Authorize(kernel::ProcessId subject, const std::string& operation,
                                  const std::string& object) {
  std::optional<GoalEntry> goal = goals_.Get(operation, object);
  if (!goal.has_value()) {
    return DefaultPolicy(subject, operation, object);
  }

  auto proof_it = proofs_.find(ProofKey(subject, operation, object));
  nal::Proof proof = proof_it == proofs_.end() ? nullptr : proof_it->second;
  std::vector<nal::Formula> credentials = CollectCredentials(subject, object);

  if (goal->guard_port != 0) {
    // Designated guard: serialize the request and upcall over IPC.
    kernel::IpcMessage request;
    request.operation = "check";
    request.args = {std::to_string(subject), operation, object,
                    proof == nullptr ? "(premise \"false\")" : nal::SerializeProof(proof)};
    std::string blob;
    for (const nal::Formula& cred : credentials) {
      blob += cred->ToString();
      blob += '\n';
    }
    request.data = ToBytes(blob);
    kernel::IpcReply reply = kernel_->Call(subject, goal->guard_port, request);
    return {reply.status, reply.value == 1};
  }

  std::string proof_key = ProofKey(subject, operation, object);
  return default_guard_->Check(subject, operation, object, goal->goal, proof, credentials,
                               StateVersion(subject, object, proof_key));
}

uint64_t Engine::StateVersion(kernel::ProcessId subject, const std::string& object,
                              const std::string& proof_key) const {
  uint64_t version = 1 + system_store_.version();
  auto store = stores_.find(subject);
  if (store != stores_.end()) {
    version += store->second.version();
  }
  auto extras = object_labels_.find(object);
  if (extras != object_labels_.end()) {
    version += extras->second.size();
  }
  auto proof_version = proof_versions_.find(proof_key);
  if (proof_version != proof_versions_.end()) {
    version += proof_version->second;
  }
  return version;
}

Result<LabelHandle> Engine::Say(kernel::ProcessId speaker, const std::string& statement_text) {
  Result<nal::Formula> statement = nal::ParseFormula(statement_text);
  if (!statement.ok()) {
    return statement.status();
  }
  return SayFormula(speaker, *statement);
}

Result<LabelHandle> Engine::SayFormula(kernel::ProcessId speaker,
                                       const nal::Formula& statement) {
  if (!kernel_->IsAlive(speaker)) {
    return NotFound("speaker process not alive");
  }
  if (!nal::IsGround(statement)) {
    return InvalidArgument("labels must be ground formulas");
  }
  // The speaker is, by construction, the calling process's principal: the
  // secure syscall channel substitutes for a signature (§2.3).
  return stores_[speaker].Insert(kernel_->ProcessPrincipal(speaker), statement);
}

LabelHandle Engine::SayAs(const nal::Principal& speaker, const nal::Formula& statement) {
  return system_store_.Insert(speaker, statement);
}

void Engine::AddObjectLabel(const std::string& object, const nal::Formula& label) {
  object_labels_[object].push_back(label);
}

Status Engine::SetGoal(kernel::ProcessId caller, const std::string& operation,
                       const std::string& object, nal::Formula goal,
                       kernel::PortId guard_port) {
  // setgoal is itself an authorized operation on the object (§2.5). It is
  // governed by the goal for ("setgoal", object) if present, else the
  // bootstrap policy.
  Status authorized = kernel_->Authorize(caller, "setgoal", object);
  if (!authorized.ok()) {
    return authorized;
  }
  NEXUS_RETURN_IF_ERROR(goals_.SetGoal(operation, object, std::move(goal), guard_port));
  // A goal update may invalidate many cached decisions: clear the (op,
  // object) subregion (§2.8).
  kernel_->OnGoalUpdate(operation, object);
  return OkStatus();
}

Status Engine::ClearGoal(kernel::ProcessId caller, const std::string& operation,
                         const std::string& object) {
  Status authorized = kernel_->Authorize(caller, "setgoal", object);
  if (!authorized.ok()) {
    return authorized;
  }
  NEXUS_RETURN_IF_ERROR(goals_.ClearGoal(operation, object));
  kernel_->OnGoalUpdate(operation, object);
  return OkStatus();
}

Status Engine::SetProof(kernel::ProcessId subject, const std::string& operation,
                        const std::string& object, nal::Proof proof) {
  if (proof == nullptr) {
    return InvalidArgument("null proof");
  }
  std::string key = ProofKey(subject, operation, object);
  proofs_[key] = std::move(proof);
  ++proof_versions_[key];
  // A proof update invalidates the single affected cache entry (§2.8).
  kernel_->OnProofUpdate(subject, operation, object);
  return OkStatus();
}

Status Engine::ClearProof(kernel::ProcessId subject, const std::string& operation,
                          const std::string& object) {
  std::string key = ProofKey(subject, operation, object);
  if (proofs_.erase(key) == 0) {
    return NotFound("no proof for this tuple");
  }
  ++proof_versions_[key];
  kernel_->OnProofUpdate(subject, operation, object);
  return OkStatus();
}

void Engine::RegisterObject(const std::string& object, kernel::ProcessId owner,
                            kernel::ProcessId manager) {
  objects_.Register(object, owner, manager);
}

Status Engine::TransferOwnership(kernel::ProcessId caller, const std::string& object,
                                 kernel::ProcessId new_owner) {
  std::optional<kernel::ProcessId> owner = objects_.Owner(object);
  std::optional<kernel::ProcessId> manager = objects_.Manager(object);
  bool caller_may = caller == kernel::kKernelProcessId ||
                    (owner.has_value() && caller == *owner) ||
                    (manager.has_value() && caller == *manager);
  if (!caller_may) {
    return PermissionDenied("only the owner or resource manager may transfer ownership");
  }
  NEXUS_RETURN_IF_ERROR(objects_.TransferOwnership(object, new_owner));
  // The manager documents the transfer with a label:
  //   manager says new-owner speaksfor object (§2.6).
  nal::Principal object_principal =
      kernel_->ProcessPrincipal(manager.value_or(kernel::kKernelProcessId)).Sub(object);
  SayAs(kernel_->ProcessPrincipal(manager.value_or(kernel::kKernelProcessId)),
        nal::FormulaNode::SpeaksFor(kernel_->ProcessPrincipal(new_owner), object_principal));
  return OkStatus();
}

std::vector<nal::Formula> Engine::CollectCredentials(kernel::ProcessId subject,
                                                     const std::string& object) const {
  std::vector<nal::Formula> credentials;
  auto subject_store = stores_.find(subject);
  if (subject_store != stores_.end()) {
    for (const nal::Formula& f : subject_store->second.All()) {
      credentials.push_back(f);
    }
  }
  for (const nal::Formula& f : system_store_.All()) {
    credentials.push_back(f);
  }
  auto object_extras = object_labels_.find(object);
  if (object_extras != object_labels_.end()) {
    for (const nal::Formula& f : object_extras->second) {
      credentials.push_back(f);
    }
  }
  return credentials;
}

}  // namespace nexus::core
