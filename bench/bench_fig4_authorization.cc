// Figure 4: authorization cost per call for the eight cases, with the
// kernel decision cache enabled and disabled.
//
//   system call : authorization disabled entirely
//   no goal     : default ALLOW policy (no goal formula set)
//   no proof    : goal set, subject supplied no proof
//   not sound   : supplied proof is structurally invalid
//   pass        : sound proof, all premises supported (cacheable)
//   no cred     : proof cites a credential the subject lacks (not cacheable)
//   embed auth  : proof depends on an authority embedded in the guard
//   auth        : proof depends on an external authority behind IPC
//
// Expected shape: with the cache, (a)-(e) collapse to sub-microsecond,
// while (f)-(h) stay at guard-upcall cost, the external authority being the
// most expensive. An ablation sweep over decision-cache subregion size is
// included at the end (§2.8's invalidation/collision trade-off).
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "core/nexus.h"
#include "nal/parser.h"
#include "tpm/tpm.h"

namespace {

using nexus::ToBytes;
using nexus::core::LambdaAuthority;
using nexus::kernel::IpcMessage;
using nexus::kernel::Syscall;

nexus::nal::Formula F(const char* text) { return *nexus::nal::ParseFormula(text); }

struct Harness {
  Harness() : tpm_rng(42), tpm(tpm_rng), nexus(&tpm) {
    owner = *nexus.CreateProcess("owner", ToBytes("owner"));
    subject = *nexus.CreateProcess("subject", ToBytes("subject"));
    nexus.engine().RegisterObject("bench:object", owner, nexus::kernel::kKernelProcessId);

    // Authorities: one embedded, one external over IPC, both always vouch.
    embedded = std::make_unique<LambdaAuthority>(
        [](const nexus::nal::Formula& f) {
          return nexus::nal::ScopeMatches(f, "EmbeddedState");
        },
        [](const nexus::nal::Formula&) { return true; });
    external = std::make_unique<LambdaAuthority>(
        [](const nexus::nal::Formula& f) {
          return nexus::nal::ScopeMatches(f, "ExternalState");
        },
        [](const nexus::nal::Formula&) { return true; });
    nexus.guard().AddEmbeddedAuthority(embedded.get());
    external_handler = std::make_unique<nexus::core::AuthorityPortHandler>(external.get());
    auto authority_pid = *nexus.CreateProcess("authority", ToBytes("authority"));
    auto port = *nexus.CreatePort(authority_pid);
    nexus.kernel().BindHandler(port, external_handler.get());
    nexus.guard().AddAuthorityPort(port);

    nexus.engine().SayAs(nexus::nal::Principal("Certifier"), F("ok(subject)"));
  }

  void Reset(bool cache) {
    nexus.kernel().set_decision_cache_enabled(cache);
    nexus.kernel().decision_cache().Clear();
    nexus.guard().FlushCache();
  }

  nexus::Rng tpm_rng;
  nexus::tpm::Tpm tpm;
  nexus::core::Nexus nexus;
  nexus::kernel::ProcessId owner = 0;
  nexus::kernel::ProcessId subject = 0;
  std::unique_ptr<LambdaAuthority> embedded;
  std::unique_ptr<LambdaAuthority> external;
  std::unique_ptr<nexus::core::AuthorityPortHandler> external_handler;
};

Harness& H() {
  static Harness harness;
  return harness;
}

enum class Case {
  kSystemCall,
  kNoGoal,
  kNoProof,
  kNotSound,
  kPass,
  kNoCred,
  kEmbedAuth,
  kAuth
};

void Configure(Harness& h, Case which) {
  auto& engine = h.nexus.engine();
  // Restore canonical ownership (case b hands the object to the subject so
  // the default ALLOW policy applies to it).
  engine.RegisterObject("bench:object", h.owner, nexus::kernel::kKernelProcessId);
  engine.ClearGoal(h.owner, "use", "bench:object");
  engine.ClearProof(h.subject, "use", "bench:object");
  switch (which) {
    case Case::kSystemCall:
      break;  // Engine detached below.
    case Case::kNoGoal:
      engine.RegisterObject("bench:object", h.subject, nexus::kernel::kKernelProcessId);
      break;
    case Case::kNoProof:
      engine.SetGoal(h.owner, "use", "bench:object", F("Certifier says ok(subject)"));
      break;
    case Case::kNotSound:
      engine.SetGoal(h.owner, "use", "bench:object", F("Certifier says ok(subject)"));
      engine.SetProof(h.subject, "use", "bench:object",
                      nexus::nal::proof::AndElimL(
                          nexus::nal::proof::Premise(F("Certifier says ok(subject)"))));
      break;
    case Case::kPass:
      engine.SetGoal(h.owner, "use", "bench:object", F("Certifier says ok(subject)"));
      engine.SetProof(h.subject, "use", "bench:object",
                      nexus::nal::proof::Premise(F("Certifier says ok(subject)")));
      break;
    case Case::kNoCred:
      engine.SetGoal(h.owner, "use", "bench:object", F("Missing says ok(subject)"));
      engine.SetProof(h.subject, "use", "bench:object",
                      nexus::nal::proof::Premise(F("Missing says ok(subject)")));
      break;
    case Case::kEmbedAuth:
      engine.SetGoal(h.owner, "use", "bench:object", F("Sensor says EmbeddedState < 10"));
      engine.SetProof(h.subject, "use", "bench:object",
                      nexus::nal::proof::Authority(F("Sensor says EmbeddedState < 10")));
      break;
    case Case::kAuth:
      engine.SetGoal(h.owner, "use", "bench:object", F("Remote says ExternalState < 10"));
      engine.SetProof(h.subject, "use", "bench:object",
                      nexus::nal::proof::Authority(F("Remote says ExternalState < 10")));
      break;
  }
}

void RunCase(benchmark::State& state, Case which, bool cache) {
  Harness& h = H();
  h.Reset(cache);
  Configure(h, which);
  if (which == Case::kSystemCall) {
    h.nexus.kernel().set_engine(nullptr);
  }
  for (auto _ : state) {
    if (which == Case::kSystemCall) {
      benchmark::DoNotOptimize(h.nexus.kernel().Invoke(h.subject, Syscall::kNull, {}));
    } else {
      benchmark::DoNotOptimize(h.nexus.kernel().Authorize(h.subject, "use", "bench:object"));
    }
  }
  if (which == Case::kSystemCall) {
    h.nexus.kernel().set_engine(&h.nexus.engine());
  }
}

#define FIG4_CASE(name, which)                                                    \
  void BM_##name##_cached(benchmark::State& s) { RunCase(s, which, true); }       \
  void BM_##name##_nocache(benchmark::State& s) { RunCase(s, which, false); }     \
  BENCHMARK(BM_##name##_cached);                                                  \
  BENCHMARK(BM_##name##_nocache)

FIG4_CASE(a_system_call, Case::kSystemCall);
FIG4_CASE(b_no_goal, Case::kNoGoal);
FIG4_CASE(c_no_proof, Case::kNoProof);
FIG4_CASE(d_not_sound, Case::kNotSound);
FIG4_CASE(e_pass, Case::kPass);
FIG4_CASE(f_no_cred, Case::kNoCred);
FIG4_CASE(g_embed_auth, Case::kEmbedAuth);
FIG4_CASE(h_auth, Case::kAuth);

// Interned-vs-string API (§2.8 made concrete): the same cached "pass" case
// through the legacy string surface (interns per call: two string-table
// probes before the decision-cache lookup) and through a pre-interned
// AuthzRequest (pure integer hashing end to end). The delta is the string
// overhead the api redesign removes from every repeated authorization.
void BM_e_pass_cached_string_keys(benchmark::State& state) {
  Harness& h = H();
  h.Reset(true);
  Configure(h, Case::kPass);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.nexus.kernel().Authorize(h.subject, "use", "bench:object"));
  }
}
BENCHMARK(BM_e_pass_cached_string_keys);

void BM_e_pass_cached_interned_keys(benchmark::State& state) {
  Harness& h = H();
  h.Reset(true);
  Configure(h, Case::kPass);
  nexus::kernel::AuthzRequest request =
      nexus::kernel::AuthzRequest::Of(h.subject, "use", "bench:object");
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.nexus.kernel().Authorize(request));
  }
}
BENCHMARK(BM_e_pass_cached_interned_keys);

// Batched-vs-serial guard evaluation on decision-cache misses: N distinct
// "pass"-style tuples authorized one by one vs in one AuthorizeBatch call
// (credential collection amortized per subject). The decision cache is
// cleared per iteration so every tuple reaches the guard.
void SetupBatchTuples(Harness& h, size_t n, std::vector<nexus::kernel::AuthzRequest>* out) {
  auto& engine = h.nexus.engine();
  for (size_t i = 0; i < n; ++i) {
    std::string object = "batch4:obj" + std::to_string(i);
    engine.RegisterObject(object, h.owner, nexus::kernel::kKernelProcessId);
    engine.SetGoal(h.owner, "use", object, F("Certifier says ok(subject)"));
    engine.SetProof(h.subject, "use", object,
                    nexus::nal::proof::Premise(F("Certifier says ok(subject)")));
    out->push_back(nexus::kernel::AuthzRequest::Of(h.subject, "use", object));
  }
}

void BM_pass_miss_serial(benchmark::State& state) {
  Harness& h = H();
  h.Reset(true);
  std::vector<nexus::kernel::AuthzRequest> requests;
  SetupBatchTuples(h, static_cast<size_t>(state.range(0)), &requests);
  for (auto _ : state) {
    h.nexus.kernel().decision_cache().Clear();
    for (const auto& request : requests) {
      benchmark::DoNotOptimize(h.nexus.kernel().Authorize(request));
    }
  }
  state.SetItemsProcessed(state.iterations() * requests.size());
}
BENCHMARK(BM_pass_miss_serial)->Arg(16)->Arg(64);

void BM_pass_miss_batched(benchmark::State& state) {
  Harness& h = H();
  h.Reset(true);
  std::vector<nexus::kernel::AuthzRequest> requests;
  SetupBatchTuples(h, static_cast<size_t>(state.range(0)), &requests);
  for (auto _ : state) {
    h.nexus.kernel().decision_cache().Clear();
    benchmark::DoNotOptimize(h.nexus.kernel().AuthorizeBatch(requests));
  }
  state.SetItemsProcessed(state.iterations() * requests.size());
}
BENCHMARK(BM_pass_miss_batched)->Arg(16)->Arg(64);

// Ablation (§2.8): decision-cache subregion size vs invalidation cost. A
// workload alternating goal updates with authorization bursts across many
// objects: large subregions amortize invalidation but collide more.
void BM_ablation_subregion(benchmark::State& state) {
  Harness& h = H();
  h.Reset(true);
  size_t entries = static_cast<size_t>(state.range(0));
  h.nexus.kernel().decision_cache().Resize(
      nexus::kernel::DecisionCache::Config{4096 / entries, entries});
  Configure(h, Case::kPass);
  int i = 0;
  for (auto _ : state) {
    std::string object = "bench:object";  // Same goal; rotate extra objects.
    benchmark::DoNotOptimize(h.nexus.kernel().Authorize(h.subject, "use", object));
    if (++i % 64 == 0) {
      h.nexus.kernel().OnGoalUpdate("use", "obj" + std::to_string(i % 257));
    }
  }
  const auto& stats = h.nexus.kernel().decision_cache().stats();
  state.counters["hit%"] = benchmark::Counter(
      100.0 * static_cast<double>(stats.hits) /
      static_cast<double>(std::max<uint64_t>(1, stats.hits + stats.misses)));
  h.nexus.kernel().decision_cache().Resize(nexus::kernel::DecisionCache::Config{});
}
BENCHMARK(BM_ablation_subregion)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

NEXUS_BENCHMARK_MAIN();
