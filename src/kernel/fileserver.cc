#include "kernel/fileserver.h"

namespace nexus::kernel {

namespace {

// Hoisted operation ids: interned once per process lifetime, not per call.
const OpId kCreateOp = InternOp("create");
const OpId kOpenOp = InternOp("open");
const OpId kCloseOp = InternOp("close");
const OpId kReadOp = InternOp("read");
const OpId kWriteOp = InternOp("write");
const OpId kUnlinkOp = InternOp("unlink");
const OpId kStatOp = InternOp("stat");

}  // namespace

Status FileServer::CreateFile(const std::string& path, ByteView content) {
  if (files_.contains(path)) {
    return AlreadyExists("file exists: " + path);
  }
  files_[path] = Bytes(content.begin(), content.end());
  return OkStatus();
}

Result<Bytes> FileServer::ReadFile(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFound("no such file: " + path);
  }
  return it->second;
}

Result<ObjectId> FileServer::FileObject(ProcessId caller, std::string_view path) {
  auto it = file_objects_.find(path);
  if (it != file_objects_.end()) {
    return it->second;  // Memoized: no string built, no interning.
  }
  // First sight of this path: build "file:<path>" once and intern it
  // through the charged surface — probing endless novel paths exhausts the
  // prober's name quota, not the table.
  Result<ObjectId> object = kernel_->InternObjectCharged(caller, "file:" + std::string(path));
  if (object.ok()) {
    file_objects_.emplace(std::string(path), *object);
  }
  return object;
}

// Argument convention (typed ABI v2): paths travel as string slots —
// they are names — while fds, offsets, and lengths are integer slots and
// cross the IPC boundary with no stringify/re-parse. Legacy text callers
// are still accepted: the integer accessors fall back to the single
// decimal decode point in kernel/ipc.h.
IpcReply FileServer::Handle(const IpcContext& context, const IpcMessage& message) {
  const OpId op = message.op;

  if (op == kCreateOp) {
    Result<std::string_view> path_arg = message.ArgString(0);
    if (!path_arg.ok()) {
      return Error(InvalidArgument("create needs a path"));
    }
    const std::string path(*path_arg);  // CreateFile owns the key.
    Result<ObjectId> object = FileObject(context.caller, path);
    if (!object.ok()) {
      return Error(object.status());
    }
    Status authorized = kernel_->Authorize(AuthzRequest{context.caller, kCreateOp, *object});
    if (!authorized.ok()) {
      return Error(authorized);
    }
    Status created = CreateFile(path, message.data);
    return IpcReply(created);
  }

  if (op == kOpenOp) {
    Result<std::string_view> path_arg = message.ArgString(0);
    if (!path_arg.ok()) {
      return Error(InvalidArgument("open needs a path"));
    }
    const std::string path(*path_arg);  // The OpenFile record owns it.
    Result<ObjectId> object = FileObject(context.caller, path);
    if (!object.ok()) {
      return Error(object.status());
    }
    Status authorized = kernel_->Authorize(AuthzRequest{context.caller, kOpenOp, *object});
    if (!authorized.ok()) {
      return Error(authorized);
    }
    if (!files_.contains(path)) {
      return Error(NotFound("no such file: " + path));
    }
    int64_t fd = next_fd_++;
    open_files_[fd] = OpenFile{path, context.caller, *object};
    // v2: the fd is the reply — the v1 path-text echo is gone (no consumer
    // ever read it back, and it made every open move a heap string).
    return IpcReply::Ok().AddU64(static_cast<uint64_t>(fd));
  }

  if (op == kCloseOp) {
    Result<uint64_t> fd_arg = message.ArgU64(0);
    if (!fd_arg.ok()) {
      return Error(InvalidArgument("close: fd must be a file descriptor"));
    }
    int64_t fd = static_cast<int64_t>(*fd_arg);
    auto it = open_files_.find(fd);
    if (it == open_files_.end() || it->second.owner != context.caller) {
      return Error(NotFound("bad file descriptor"));
    }
    open_files_.erase(it);
    return IpcReply::Ok();
  }

  if (op == kReadOp || op == kWriteOp) {
    const bool is_read = op == kReadOp;
    Result<uint64_t> fd_arg = message.ArgU64(0);
    if (!fd_arg.ok()) {
      return Error(InvalidArgument(std::string(is_read ? "read" : "write") +
                                   ": fd must be a file descriptor"));
    }
    int64_t fd = static_cast<int64_t>(*fd_arg);
    auto it = open_files_.find(fd);
    if (it == open_files_.end() || it->second.owner != context.caller) {
      return Error(NotFound("bad file descriptor"));
    }
    // The fd carries its interned object id: the per-call authorization is
    // three integers, no "file:<path>" string ever built on this path.
    Status authorized = kernel_->Authorize(
        AuthzRequest{context.caller, is_read ? kReadOp : kWriteOp, it->second.object});
    if (!authorized.ok()) {
      return Error(authorized);
    }
    const std::string& path = it->second.path;
    Bytes& content = files_[path];
    if (is_read) {
      uint64_t offset = 0;
      uint64_t length = content.size();
      if (message.args.size() > 1) {
        Result<uint64_t> offset_arg = message.ArgU64(1);
        if (!offset_arg.ok()) {
          return Error(InvalidArgument("read: offset must be an integer"));
        }
        offset = *offset_arg;
      }
      if (message.args.size() > 2) {
        Result<uint64_t> length_arg = message.ArgU64(2);
        if (!length_arg.ok()) {
          return Error(InvalidArgument("read: length must be an integer"));
        }
        length = *length_arg;
      }
      if (offset > content.size()) {
        return Error(OutOfRange("read past end of file"));
      }
      length = std::min<uint64_t>(length, content.size() - offset);
      Bytes out(content.begin() + static_cast<ptrdiff_t>(offset),
                content.begin() + static_cast<ptrdiff_t>(offset + length));
      // Typed read reply: one u64 length slot + the data block. Zero text
      // payloads end to end — the reply-rewriting monitor operates on this.
      IpcReply reply = IpcReply::Ok().AddU64(length);
      reply.data = std::move(out);
      return reply;
    }
    // write
    uint64_t offset = content.size();
    if (message.args.size() > 1) {
      Result<uint64_t> offset_arg = message.ArgU64(1);
      if (!offset_arg.ok()) {
        return Error(InvalidArgument("write: offset must be an integer"));
      }
      offset = *offset_arg;
    }
    if (offset > content.size()) {
      return Error(OutOfRange("write past end of file"));
    }
    if (offset + message.data.size() > content.size()) {
      content.resize(offset + message.data.size());
    }
    std::copy(message.data.begin(), message.data.end(),
              content.begin() + static_cast<ptrdiff_t>(offset));
    return IpcReply::Ok().AddU64(message.data.size());
  }

  if (op == kUnlinkOp) {
    Result<std::string_view> path_arg = message.ArgString(0);
    if (!path_arg.ok()) {
      return Error(InvalidArgument("unlink needs a path"));
    }
    std::string_view path = *path_arg;
    Result<ObjectId> object = FileObject(context.caller, path);
    if (!object.ok()) {
      return Error(object.status());
    }
    Status authorized = kernel_->Authorize(AuthzRequest{context.caller, kUnlinkOp, *object});
    if (!authorized.ok()) {
      return Error(authorized);
    }
    auto it = files_.find(path);
    if (it == files_.end()) {
      return Error(NotFound("no such file: " + std::string(path)));
    }
    files_.erase(it);
    return IpcReply::Ok();
  }

  if (op == kStatOp) {
    Result<std::string_view> path_arg = message.ArgString(0);
    if (!path_arg.ok()) {
      return Error(InvalidArgument("stat needs a path"));
    }
    auto it = files_.find(*path_arg);  // Transparent: no key string built.
    if (it == files_.end()) {
      return Error(NotFound("no such file: " + std::string(*path_arg)));
    }
    return IpcReply::Ok().AddU64(it->second.size());
  }

  return Error(
      InvalidArgument("unknown filesystem operation: " + std::string(message.operation())));
}

}  // namespace nexus::kernel
