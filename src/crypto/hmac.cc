#include "crypto/hmac.h"

namespace nexus::crypto {

Sha256Digest HmacSha256(ByteView key, ByteView message) {
  constexpr size_t kBlockSize = 64;
  Bytes key_block(kBlockSize, 0);
  if (key.size() > kBlockSize) {
    Sha256Digest key_digest = Sha256::Hash(key);
    std::copy(key_digest.begin(), key_digest.end(), key_block.begin());
  } else {
    std::copy(key.begin(), key.end(), key_block.begin());
  }

  Bytes inner_pad(kBlockSize);
  Bytes outer_pad(kBlockSize);
  for (size_t i = 0; i < kBlockSize; ++i) {
    inner_pad[i] = key_block[i] ^ 0x36;
    outer_pad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(inner_pad);
  inner.Update(message);
  Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(outer_pad);
  outer.Update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.Finish();
}

Bytes HmacSha256Bytes(ByteView key, ByteView message) {
  Sha256Digest d = HmacSha256(key, message);
  return Bytes(d.begin(), d.end());
}

}  // namespace nexus::crypto
