// TruDocs (§4): certified document excerpting.
//
// A display system that certifies an excerpt "speaks for" its source
// document when the excerpt satisfies a use policy: fragments must appear
// in the original in order; elisions are marked "..."; editorial insertions
// appear in [square brackets]; type-case changes are permitted when the
// policy says so; and the policy bounds the number and total length of
// excerpted fragments.
#ifndef NEXUS_APPS_TRUDOCS_H_
#define NEXUS_APPS_TRUDOCS_H_

#include <string>
#include <vector>

#include "core/nexus.h"

namespace nexus::apps {

struct ExcerptPolicy {
  bool allow_case_changes = true;
  bool allow_editorial_comments = true;
  size_t max_fragments = 16;
  size_t max_total_length = 4096;  // Sum of fragment lengths.
};

// Excerpt segment types produced by parsing the displayed text.
enum class SegmentKind : uint8_t { kFragment, kEllipsis, kEditorial };

struct Segment {
  SegmentKind kind;
  std::string text;  // Fragment text or editorial comment.
};

// Parses an excerpt: "..." marks elision, [text] marks editorial comments,
// everything else is quoted fragments.
std::vector<Segment> ParseExcerpt(const std::string& excerpt);

class TruDocs {
 public:
  TruDocs(core::Nexus* nexus, kernel::ProcessId self) : nexus_(nexus), self_(self) {}

  // Checks the excerpt against the document under the policy. OK means the
  // excerpt conveys content present in the original, in order.
  static Status CheckExcerpt(const std::string& document, const std::string& excerpt,
                             const ExcerptPolicy& policy);

  // On success issues the label
  //   <self> says excerptSpeaksFor("<sha256(excerpt)>", "<sha256(doc)>").
  Result<core::LabelHandle> CertifyExcerpt(const std::string& document,
                                           const std::string& excerpt,
                                           const ExcerptPolicy& policy);

 private:
  core::Nexus* nexus_;
  kernel::ProcessId self_;
};

}  // namespace nexus::apps

#endif  // NEXUS_APPS_TRUDOCS_H_
