#include "apps/federation.h"

#include "crypto/sha256.h"
#include "nal/proof.h"

namespace nexus::apps {

namespace {

// The session-liveness namespace both the home authorities and the
// provider's quorum route on.
bool IsSessionStatement(const nal::Formula& f) {
  return f->kind() == nal::FormulaKind::kSays && f->speaker().base() == "Session";
}

}  // namespace

PresenceFederation::PresenceFederation(core::Nexus* provider, core::Nexus* home,
                                       net::Transport* transport)
    : PresenceFederation(provider, home, transport, Config{}) {}

PresenceFederation::PresenceFederation(core::Nexus* provider, core::Nexus* home,
                                       net::Transport* transport, const Config& config)
    : PresenceFederation(provider, std::vector<core::Nexus*>{home}, transport, config) {}

PresenceFederation::PresenceFederation(core::Nexus* provider,
                                       const std::vector<core::Nexus*>& homes,
                                       net::Transport* transport, const Config& config)
    : provider_(provider), config_(config), transport_(transport) {
  provider_net_ =
      std::make_unique<net::NetNode>(provider_, transport, config_.provider_node);

  // Provider: the social network plus the certificate-import gateway.
  // Credentials land in the web server's labelstore — both the pairwise
  // exchange and the mesh gossip import target it — where the signup
  // guard's credential collection finds them.
  fauxbook_ = std::make_unique<Fauxbook>(provider_);
  exchange_ = std::make_unique<net::CertificateExchange>(provider_net_.get(),
                                                         fauxbook_->webserver_pid());
  net::mesh::MeshNode::Options provider_mesh_options;
  provider_mesh_options.import_pid = fauxbook_->webserver_pid();
  provider_mesh_ =
      std::make_unique<net::mesh::MeshNode>(provider_net_.get(), provider_mesh_options);

  size_t index = 0;
  for (core::Nexus* nexus : homes) {
    auto home = std::make_unique<Home>();
    home->nexus = nexus;
    home->node_id = index == 0 ? config_.home_node
                               : config_.home_node + std::to_string(index + 1);
    ++index;

    // Out-of-band EK distribution, star-shaped: the provider pins each
    // home and each home pins the provider. Homes learn EACH OTHER's EKs
    // in band, from mesh gossip over these attested spokes. A rejected
    // registration (e.g. a conflicting prior anchor) must surface here,
    // not as mysterious handshake failures later.
    Status pin_home =
        provider_->RegisterPeer(home->node_id, nexus->tpm().endorsement_public_key());
    Status pin_provider = nexus->RegisterPeer(config_.provider_node,
                                              provider_->tpm().endorsement_public_key());
    if (init_status_.ok() && !pin_home.ok()) {
      init_status_ = pin_home;
    }
    if (init_status_.ok() && !pin_provider.ok()) {
      init_status_ = pin_provider;
    }

    home->net = std::make_unique<net::NetNode>(nexus, transport, home->node_id);

    // The keyboard driver (the only process that can mint keypress labels).
    Result<kernel::ProcessId> driver =
        nexus->CreateProcess("keyboard_driver", ToBytes("nexus-kbd-v1"));
    if (!driver.ok() && init_status_.ok()) {
      // Never fall back to the kernel pid: presence labels must only ever
      // be attributable to the real driver process.
      init_status_ = driver.status();
    }
    home->driver_pid = driver.ok() ? *driver : 0;
    home->driver = std::make_unique<KeyboardDriver>(nexus, home->driver_pid);
    home->exchange =
        std::make_unique<net::CertificateExchange>(home->net.get(), home->driver_pid);

    net::mesh::MeshNode::Options home_mesh_options;
    home_mesh_options.import_pid = home->driver_pid;
    // Only the provider's decision plane is ever audited; auxiliary homes
    // must not stamp the process-global observability streams.
    home_mesh_options.stamp_observability = false;
    home->mesh = std::make_unique<net::mesh::MeshNode>(home->net.get(), home_mesh_options);

    // Session liveness, answered from this home's replica of the session
    // set (fresh dynamic state — never cached, never transferable).
    home->liveness = std::make_unique<core::LambdaAuthority>(
        [](const nal::Formula& f) {
          return IsSessionStatement(f) &&
                 f->child1()->kind() == nal::FormulaKind::kPred &&
                 f->child1()->pred_name() == "sessionActive";
        },
        [this](const nal::Formula& f) {
          const auto& args = f->child1()->args();
          return args.size() == 1 && live_sessions_.count(args[0].text()) > 0;
        });
    home->authority_service = std::make_unique<net::AuthorityService>(home->net.get());
    home->authority_service->AddAuthority(home->liveness.get());

    // The provider's leg to this home, one quorum member.
    home->remote = std::make_unique<net::RemoteAuthority>(
        provider_net_.get(), home->node_id, IsSessionStatement,
        config_.remote_timeout_us);
    homes_.push_back(std::move(home));
  }

  // Provider guard: session-liveness leaves route to a K-of-N quorum of
  // homes, budgeted by the configured deadline. K defaults to a majority,
  // which for the classic two-instance federation is exactly "the home".
  net::mesh::QuorumPolicy policy;
  policy.quorum = config_.quorum != 0 ? config_.quorum : homes_.size() / 2 + 1;
  session_quorum_ = std::make_unique<net::mesh::QuorumAuthority>(transport, policy,
                                                                 IsSessionStatement);
  for (auto& home : homes_) {
    session_quorum_->AddMember(home->remote.get());
  }
  provider_->guard().AddRemoteAuthority(session_quorum_.get());
  // The guard owns the per-query deadline on its consultation path; keep
  // the two knobs agreeing so the configured value actually applies.
  provider_->guard().set_remote_query_timeout_us(config_.remote_timeout_us);

  provider_->engine().RegisterObject(kSignupObject, fauxbook_->webserver_pid(),
                                     kernel::kKernelProcessId);
}

PresenceFederation::~PresenceFederation() = default;

Status PresenceFederation::Connect() {
  if (!init_status_.ok()) {
    return init_status_;
  }
  // Establish the star, then join each home to the mesh (the join pushes
  // the home's registry state at the provider, which floods news onward).
  for (auto& home : homes_) {
    Result<net::AttestedChannel*> channel = provider_net_->Connect(home->node_id);
    NEXUS_RETURN_IF_ERROR(channel.status());
    NEXUS_RETURN_IF_ERROR(home->mesh->Join(config_.provider_node));
    transport_->DeliverAll();
  }
  // Anti-entropy until every replica reports the same digest: homes learn
  // each other's records transitively and open their own channels.
  const size_t max_rounds = homes_.size() + 2;
  for (size_t round = 0; round < max_rounds; ++round) {
    provider_mesh_->AntiEntropy();
    for (auto& home : homes_) {
      home->mesh->AntiEntropy();
    }
    transport_->DeliverAll();
    bool converged = true;
    const std::string digest = provider_mesh_->Digest();
    for (auto& home : homes_) {
      converged = converged && home->mesh->Digest() == digest;
    }
    if (converged) {
      return OkStatus();
    }
  }
  return Internal("federation mesh failed to converge");
}

void PresenceFederation::Type(const std::string& session, int presses,
                              size_t home_index) {
  live_sessions_.insert(session);
  if (home_index >= homes_.size()) {
    return;
  }
  for (int i = 0; i < presses; ++i) {
    homes_[home_index]->driver->OnKeypress(session);
  }
}

Status PresenceFederation::ShipPresence(const std::string& session, size_t home_index) {
  if (!init_status_.ok()) {
    return init_status_;
  }
  if (home_index >= homes_.size()) {
    return InvalidArgument("no such home instance");
  }
  Home& home = *homes_[home_index];
  Result<core::Certificate> cert = home.driver->AttestSession(session);
  if (!cert.ok()) {
    return cert.status();
  }
  // Publish through the mesh: the home imports its own certificate and
  // floods it; the provider's gossip import verifies the chain and lands
  // the statement in the web server's labelstore.
  Bytes cert_bytes = cert->Serialize();
  NEXUS_RETURN_IF_ERROR(home.mesh->gossip().PublishCertificate(cert_bytes));
  transport_->DeliverAll();
  if (!provider_mesh_->registry().HasCertificate(crypto::Sha256Hex(cert_bytes))) {
    return Internal("presence certificate did not reach the provider");
  }
  return OkStatus();
}

void PresenceFederation::EndSession(const std::string& session) {
  live_sessions_.erase(session);
}

Status PresenceFederation::SignUp(const std::string& session) {
  // Locate the imported presence credential for this session and apply the
  // threshold (the SpamClassifier logic, but feeding a guard goal).
  core::LabelStore& store = provider_->engine().StoreFor(fauxbook_->webserver_pid());
  nal::Formula credential;
  int64_t best_count = -1;
  for (const nal::Formula& label : store.All()) {
    // Only TPM-rooted (imported) credentials count. Wire-imported labels
    // reparse the dotted chain as base "tpm" + path; in-memory ones keep
    // "tpm.<ek8>" as the base.
    if (label->kind() != nal::FormulaKind::kSays ||
        label->speaker().ToString().rfind("tpm.", 0) != 0) {
      continue;
    }
    const nal::Formula& body = label->child1();
    if (body->kind() != nal::FormulaKind::kPred || body->pred_name() != "keypresses" ||
        body->args().size() != 2 || body->args()[0].text() != session) {
      continue;
    }
    if (body->args()[1].int_value() > best_count) {
      best_count = body->args()[1].int_value();
      credential = label;
    }
  }
  if (credential == nullptr) {
    return PermissionDenied("no imported presence credential for session " + session);
  }
  if (best_count < static_cast<int64_t>(config_.min_keypresses)) {
    return PermissionDenied("presence credential shows too few keypresses");
  }

  // Goal: that exact credential AND a live session vouched for — right
  // now, by a K-of-N quorum of home instances.
  nal::Formula liveness = nal::FormulaNode::Says(
      nal::Principal("Session"),
      nal::FormulaNode::Pred("sessionActive", {nal::Term::Symbol(session)}));
  nal::Formula goal = nal::FormulaNode::And(credential, liveness);
  nal::Proof proof = nal::proof::AndIntro(nal::proof::Premise(credential),
                                          nal::proof::Authority(liveness));

  kernel::ProcessId subject = fauxbook_->webserver_pid();
  NEXUS_RETURN_IF_ERROR(
      provider_->engine().SetGoal(subject, "signup", kSignupObject, goal));
  NEXUS_RETURN_IF_ERROR(provider_->engine().SetProof(subject, "signup", kSignupObject, proof));
  Status verdict = provider_->kernel().Authorize(subject, "signup", kSignupObject);
  if (!verdict.ok()) {
    return verdict;
  }
  signed_up_.insert(session);
  return fauxbook_->AddUser(session);
}

Status PresenceFederation::Post(const std::string& session, const std::string& text) {
  if (signed_up_.count(session) == 0) {
    return PermissionDenied("session " + session + " has not completed federated signup");
  }
  return fauxbook_->PostStatus(session, text);
}

}  // namespace nexus::apps
