// SHA-256 (FIPS 180-4). The default hash for labels, certificates, Merkle
// trees, and SSR integrity in the simulation.
#ifndef NEXUS_CRYPTO_SHA256_H_
#define NEXUS_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace nexus::crypto {

inline constexpr size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<uint8_t, kSha256DigestSize>;

class Sha256 {
 public:
  Sha256();

  void Update(ByteView data);
  Sha256Digest Finish();

  static Sha256Digest Hash(ByteView data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[8];
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  uint64_t total_bits_ = 0;
};

// Convenience: digest as a Bytes value / hex string.
Bytes Sha256Bytes(ByteView data);
std::string Sha256Hex(ByteView data);

}  // namespace nexus::crypto

#endif  // NEXUS_CRYPTO_SHA256_H_
