// Quickstart: the paper's time-sensitive file scenario (§2) end to end.
//
// A file must be readable only before a deadline, and only by a process
// that provably cannot leak its contents to disk or network. The example
// walks every element of logical attestation: labels, labelstores, goal
// formulas, proofs, guards, authorities, and the decision cache.
#include <cstdio>

#include "core/nexus.h"
#include "nal/parser.h"
#include "nal/prover.h"
#include "services/ipc_analyzer.h"
#include "services/safety_certifier.h"
#include "services/time_authority.h"
#include "tpm/tpm.h"

using namespace nexus;  // Example code; the library itself never does this.

int main() {
  // --- Boot a Nexus instance on a (software) TPM. PCRs measure the
  //     firmware, boot loader, and kernel; the Nexus key NK is sealed to
  //     that state (§3.4).
  Rng tpm_rng(2026);
  tpm::Tpm hardware_tpm(tpm_rng);
  core::Nexus nexus(&hardware_tpm);
  std::printf("booted Nexus; external identity: %s\n",
              nexus.ExternalKernelPrincipal().ToString().c_str());

  // --- Processes: a file owner, a reader, and the analysis services.
  auto owner = *nexus.CreateProcess("owner", ToBytes("owner-app"));
  auto reader = *nexus.CreateProcess("reader", ToBytes("reader-app"));
  auto analyzer_pid = *nexus.CreateProcess("ipcanalyzer", ToBytes("analyzer"));
  auto certifier_pid = *nexus.CreateProcess("safetycertifier", ToBytes("certifier"));

  nexus.fs().CreateFile("/secret/report", ToBytes("the sensitive contents"));
  nexus.engine().RegisterObject("file:/secret/report", owner, kernel::kKernelProcessId);

  // --- The owner's goal formula (§2.5): time bound + safety certification.
  std::string reader_name = nexus.kernel().ProcessPrincipal(reader).ToString();
  auto goal = *nal::ParseFormula("Clock says TimeNow < 20260319 and " +
                                 nexus.kernel().ProcessPrincipal(certifier_pid).ToString() +
                                 " says safe(/proc/ipd/" + std::to_string(reader) + ")");
  nexus.engine().SetGoal(owner, "open", "file:/secret/report", goal);
  nexus.engine().SetGoal(owner, "read", "file:/secret/report", goal);
  std::printf("goal: %s\n", goal->ToString().c_str());

  // --- A time authority (§2.7): answers freshly, never signs.
  int64_t simulated_today = 20260213;
  services::TimeAuthority clock(nal::Principal("Clock"), [&] { return simulated_today; });
  nexus.guard().AddEmbeddedAuthority(&clock);

  // --- Analytic trust (§2.2): the IPC analyzer attests the reader has no
  //     channel to disk or network; the certifier derives safe(reader).
  services::IpcAnalyzer analyzer(&nexus.kernel(), &nexus.engine(), analyzer_pid);
  for (const char* target : {"filesystem", "netdriver"}) {
    auto attested = analyzer.AttestNoPath(reader, target);
    std::printf("analyzer: not hasPath(reader, %s)  -> %s\n", target,
                attested.ok() ? "attested" : attested.status().ToString().c_str());
  }
  services::SafetyCertifier certifier(&nexus.kernel(), &nexus.engine(), certifier_pid,
                                      analyzer_pid, {"filesystem", "netdriver"});
  auto safe_label = certifier.Certify(reader);
  std::printf("certifier: %s\n",
              safe_label.ok() ? "safe(reader) issued" : safe_label.status().ToString().c_str());

  // Make the certifier's label visible to the reader's guard evaluation.
  for (const auto& label : nexus.engine().StoreFor(certifier_pid).All()) {
    nexus.engine().AddObjectLabel("file:/secret/report", label);
  }

  // --- The reader constructs its proof (the guard only checks, §2.6).
  auto credentials = nexus.engine().CollectCredentials(reader, "file:/secret/report");
  nal::ProverOptions options;
  options.may_query_authority = [](const nal::Formula& f) {
    return nal::ScopeMatches(f, "TimeNow");
  };
  auto proof = nal::AutoProve(goal, credentials, options);
  if (!proof.ok()) {
    std::printf("proof construction failed: %s\n", proof.status().ToString().c_str());
    return 1;
  }
  std::printf("proof (%d rules): %s\n", (*proof)->Size(),
              nal::SerializeProof(*proof).c_str());
  nexus.engine().SetProof(reader, "open", "file:/secret/report", *proof);
  nexus.engine().SetProof(reader, "read", "file:/secret/report", *proof);

  // --- Access before the deadline: granted.
  kernel::IpcMessage open_msg;
  open_msg.AddString("/secret/report");
  auto open = nexus.kernel().Invoke(reader, kernel::Syscall::kOpen, open_msg);
  std::printf("open before deadline: %s\n", open.status.ToString().c_str());
  kernel::IpcMessage read_msg;
  read_msg.AddU64(static_cast<uint64_t>(open.value()));
  auto read = nexus.kernel().Invoke(reader, kernel::Syscall::kRead, read_msg);
  std::printf("read: \"%s\"\n", ToString(read.data).c_str());

  // --- The deadline passes. No revocation machinery: the authority simply
  //     stops vouching, and the (non-cacheable) decision flips.
  simulated_today = 20260401;
  auto late = nexus.kernel().Invoke(reader, kernel::Syscall::kOpen, open_msg);
  std::printf("open after deadline: %s\n", late.status.ToString().c_str());

  // --- A process with a network channel never gets a safety certificate.
  auto leaky = *nexus.CreateProcess("leaky", ToBytes("leaky-app"));
  auto netdrv = *nexus.CreateProcess("netdriver", ToBytes("nic"));
  auto net_port = *nexus.CreatePort(netdrv);
  nexus.kernel().ConnectPort(leaky, net_port);
  auto refused = analyzer.AttestNoPath(leaky, "netdriver");
  std::printf("analyzer on leaky process: %s\n", refused.status().ToString().c_str());

  std::printf("decision cache: %llu hits, %llu misses\n",
              static_cast<unsigned long long>(nexus.kernel().decision_cache().stats().hits),
              static_cast<unsigned long long>(nexus.kernel().decision_cache().stats().misses));
  return 0;
}
