#include "apps/certipics.h"

#include <algorithm>

namespace nexus::apps {

namespace {

Bytes ChainHash(const Bytes& prev, const TransformEntry& entry) {
  Bytes material = prev;
  Append(material, ToBytes(entry.operation));
  for (int64_t p : entry.parameters) {
    AppendU64(material, static_cast<uint64_t>(p));
  }
  Append(material, entry.before_digest);
  Append(material, entry.after_digest);
  return crypto::Sha256Bytes(material);
}

}  // namespace

Bytes Image::Digest() const {
  Bytes material;
  AppendU64(material, width);
  AppendU64(material, height);
  Append(material, pixels);
  return crypto::Sha256Bytes(material);
}

Image MakeImage(size_t width, size_t height, uint8_t fill) {
  Image img;
  img.width = width;
  img.height = height;
  img.pixels.assign(width * height, fill);
  return img;
}

CertiPics::CertiPics(core::Nexus* nexus, kernel::ProcessId self, Image source)
    : nexus_(nexus), self_(self), source_(source), current_(std::move(source)) {}

void CertiPics::Record(const std::string& operation, std::vector<int64_t> parameters,
                       const Bytes& before, const Bytes& after) {
  TransformEntry entry;
  entry.operation = operation;
  entry.parameters = std::move(parameters);
  entry.before_digest = before;
  entry.after_digest = after;
  Bytes prev = log_.empty() ? source_.Digest() : log_.back().chain;
  entry.chain = ChainHash(prev, entry);
  log_.push_back(std::move(entry));
}

Status CertiPics::Crop(size_t x, size_t y, size_t w, size_t h) {
  if (x + w > current_.width || y + h > current_.height) {
    return OutOfRange("crop rectangle outside image");
  }
  Bytes before = current_.Digest();
  Image out = MakeImage(w, h, 0);
  for (size_t row = 0; row < h; ++row) {
    std::copy_n(current_.pixels.begin() +
                    static_cast<ptrdiff_t>((y + row) * current_.width + x),
                w, out.pixels.begin() + static_cast<ptrdiff_t>(row * w));
  }
  current_ = std::move(out);
  Record("crop",
         {static_cast<int64_t>(x), static_cast<int64_t>(y), static_cast<int64_t>(w),
          static_cast<int64_t>(h)},
         before, current_.Digest());
  return OkStatus();
}

Status CertiPics::Resize(size_t w, size_t h) {
  if (w == 0 || h == 0) {
    return InvalidArgument("degenerate size");
  }
  Bytes before = current_.Digest();
  Image out = MakeImage(w, h, 0);
  for (size_t row = 0; row < h; ++row) {
    for (size_t col = 0; col < w; ++col) {
      size_t src_row = row * current_.height / h;
      size_t src_col = col * current_.width / w;
      out.pixels[row * w + col] = current_.pixels[src_row * current_.width + src_col];
    }
  }
  current_ = std::move(out);
  Record("resize", {static_cast<int64_t>(w), static_cast<int64_t>(h)}, before,
         current_.Digest());
  return OkStatus();
}

Status CertiPics::ColorTransform(int delta) {
  Bytes before = current_.Digest();
  for (uint8_t& p : current_.pixels) {
    int v = static_cast<int>(p) + delta;
    p = static_cast<uint8_t>(std::clamp(v, 0, 255));
  }
  Record("color", {delta}, before, current_.Digest());
  return OkStatus();
}

Status CertiPics::Clone(size_t src_x, size_t src_y, size_t dst_x, size_t dst_y, size_t w,
                        size_t h) {
  if (src_x + w > current_.width || src_y + h > current_.height ||
      dst_x + w > current_.width || dst_y + h > current_.height) {
    return OutOfRange("clone region outside image");
  }
  Bytes before = current_.Digest();
  Bytes region(w * h);
  for (size_t row = 0; row < h; ++row) {
    std::copy_n(current_.pixels.begin() +
                    static_cast<ptrdiff_t>((src_y + row) * current_.width + src_x),
                w, region.begin() + static_cast<ptrdiff_t>(row * w));
  }
  for (size_t row = 0; row < h; ++row) {
    std::copy_n(region.begin() + static_cast<ptrdiff_t>(row * w), w,
                current_.pixels.begin() +
                    static_cast<ptrdiff_t>((dst_y + row) * current_.width + dst_x));
  }
  Record("clone",
         {static_cast<int64_t>(src_x), static_cast<int64_t>(src_y),
          static_cast<int64_t>(dst_x), static_cast<int64_t>(dst_y), static_cast<int64_t>(w),
          static_cast<int64_t>(h)},
         before, current_.Digest());
  return OkStatus();
}

Result<core::LabelHandle> CertiPics::AttestLog() {
  Bytes head = log_.empty() ? source_.Digest() : log_.back().chain;
  return nexus_->engine().SayFormula(
      self_, nal::FormulaNode::Pred("editLog", {nal::Term::String(HexEncode(current_.Digest())),
                                                nal::Term::String(HexEncode(head))}));
}

Status CertiPics::VerifyLog(const Image& source, const Image& final_image,
                            const std::vector<TransformEntry>& log,
                            const std::set<std::string>& disallowed_operations) {
  Bytes prev_chain = source.Digest();
  Bytes prev_digest = source.Digest();
  for (size_t i = 0; i < log.size(); ++i) {
    const TransformEntry& entry = log[i];
    if (entry.before_digest != prev_digest) {
      return Corruption("log entry " + std::to_string(i) +
                        " does not chain from the previous image state");
    }
    if (entry.chain != ChainHash(prev_chain, entry)) {
      return Corruption("log entry " + std::to_string(i) + " has a forged chain hash");
    }
    if (disallowed_operations.contains(entry.operation)) {
      return PermissionDenied("disallowed transformation '" + entry.operation +
                              "' at log entry " + std::to_string(i));
    }
    prev_chain = entry.chain;
    prev_digest = entry.after_digest;
  }
  if (prev_digest != final_image.Digest()) {
    return Corruption("final image does not match the log's last state");
  }
  return OkStatus();
}

}  // namespace nexus::apps
