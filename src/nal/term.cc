#include "nal/term.h"

namespace nexus::nal {

Principal Principal::Sub(const std::string& tag) const {
  Principal out = *this;
  out.path_.push_back(tag);
  return out;
}

bool Principal::IsPrefixOf(const Principal& other) const {
  if (base_ != other.base_) {
    return false;
  }
  if (path_.size() > other.path_.size()) {
    return false;
  }
  for (size_t i = 0; i < path_.size(); ++i) {
    if (path_[i] != other.path_[i]) {
      return false;
    }
  }
  return true;
}

std::string Principal::ToString() const {
  std::string out = base_;
  for (const std::string& tag : path_) {
    out += '.';
    out += tag;
  }
  return out;
}

Term Term::Int(int64_t value) {
  Term t;
  t.kind_ = TermKind::kInt;
  t.int_value_ = value;
  return t;
}

Term Term::String(std::string value) {
  Term t;
  t.kind_ = TermKind::kString;
  t.text_ = std::move(value);
  return t;
}

Term Term::Symbol(std::string name) {
  Term t;
  t.kind_ = TermKind::kSymbol;
  t.text_ = std::move(name);
  return t;
}

Term Term::Var(std::string name) {
  Term t;
  t.kind_ = TermKind::kVariable;
  t.text_ = std::move(name);
  return t;
}

Term Term::Prin(Principal principal) {
  Term t;
  t.kind_ = TermKind::kPrincipal;
  t.principal_ = std::move(principal);
  return t;
}

std::string Term::ToString() const {
  switch (kind_) {
    case TermKind::kInt:
      return std::to_string(int_value_);
    case TermKind::kString:
      return "\"" + text_ + "\"";
    case TermKind::kSymbol:
      return text_;
    case TermKind::kPrincipal:
      return principal_.ToString();
    case TermKind::kVariable:
      return "$" + text_;
  }
  return "?";
}

bool Term::operator==(const Term& other) const {
  if (kind_ != other.kind_) {
    // A symbol and a principal with the same single-component name denote
    // the same entity; the parser cannot always distinguish them.
    auto as_name = [](const Term& t) -> const std::string* {
      if (t.kind() == TermKind::kSymbol) {
        return &t.text();
      }
      if (t.kind() == TermKind::kPrincipal && t.principal().path().empty()) {
        return &t.principal().base();
      }
      return nullptr;
    };
    const std::string* a = as_name(*this);
    const std::string* b = as_name(other);
    return a != nullptr && b != nullptr && *a == *b;
  }
  switch (kind_) {
    case TermKind::kInt:
      return int_value_ == other.int_value_;
    case TermKind::kString:
    case TermKind::kSymbol:
    case TermKind::kVariable:
      return text_ == other.text_;
    case TermKind::kPrincipal:
      return principal_ == other.principal_;
  }
  return false;
}

}  // namespace nexus::nal
