#include "kernel/fileserver.h"

namespace nexus::kernel {

namespace {

// Hoisted operation ids: interned once per process lifetime, not per call.
const OpId kCreateOp = InternOp("create");
const OpId kOpenOp = InternOp("open");
const OpId kReadOp = InternOp("read");
const OpId kWriteOp = InternOp("write");
const OpId kUnlinkOp = InternOp("unlink");

}  // namespace

Status FileServer::CreateFile(const std::string& path, ByteView content) {
  if (files_.contains(path)) {
    return AlreadyExists("file exists: " + path);
  }
  files_[path] = Bytes(content.begin(), content.end());
  return OkStatus();
}

Result<Bytes> FileServer::ReadFile(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return NotFound("no such file: " + path);
  }
  return it->second;
}

Result<ObjectId> FileServer::FileObject(ProcessId caller, const std::string& path) {
  auto it = file_objects_.find(path);
  if (it != file_objects_.end()) {
    return it->second;  // Memoized: no string concatenation, no interning.
  }
  // First sight of this path: build "file:<path>" once and intern it
  // through the charged surface — probing endless novel paths exhausts the
  // prober's name quota, not the table.
  Result<ObjectId> object = kernel_->InternObjectCharged(caller, "file:" + path);
  if (object.ok()) {
    file_objects_.emplace(path, *object);
  }
  return object;
}

IpcReply FileServer::Handle(const IpcContext& context, const IpcMessage& message) {
  const std::string& op = message.operation;

  if (op == "create") {
    if (message.args.empty()) {
      return Error(InvalidArgument("create needs a path"));
    }
    const std::string& path = message.args[0];
    Result<ObjectId> object = FileObject(context.caller, path);
    if (!object.ok()) {
      return Error(object.status());
    }
    Status authorized = kernel_->Authorize(AuthzRequest{context.caller, kCreateOp, *object});
    if (!authorized.ok()) {
      return Error(authorized);
    }
    Status created = CreateFile(path, message.data);
    return IpcReply{created, {}, {}, 0};
  }

  if (op == "open") {
    if (message.args.empty()) {
      return Error(InvalidArgument("open needs a path"));
    }
    const std::string& path = message.args[0];
    Result<ObjectId> object = FileObject(context.caller, path);
    if (!object.ok()) {
      return Error(object.status());
    }
    Status authorized = kernel_->Authorize(AuthzRequest{context.caller, kOpenOp, *object});
    if (!authorized.ok()) {
      return Error(authorized);
    }
    if (!files_.contains(path)) {
      return Error(NotFound("no such file: " + path));
    }
    int64_t fd = next_fd_++;
    open_files_[fd] = OpenFile{path, context.caller, *object};
    return IpcReply{OkStatus(), path, {}, fd};
  }

  if (op == "close") {
    if (message.args.empty()) {
      return Error(InvalidArgument("close needs an fd"));
    }
    // args arrive over the untrusted IPC surface: parse defensively
    // (std::stoll would throw out of the simulation on "garbage").
    std::optional<uint64_t> fd_arg = ParseDecimalU64(message.args[0]);
    if (!fd_arg.has_value()) {
      return Error(InvalidArgument("close: fd must be a decimal file descriptor"));
    }
    int64_t fd = static_cast<int64_t>(*fd_arg);
    auto it = open_files_.find(fd);
    if (it == open_files_.end() || it->second.owner != context.caller) {
      return Error(NotFound("bad file descriptor"));
    }
    open_files_.erase(it);
    return IpcReply{OkStatus(), {}, {}, 0};
  }

  if (op == "read" || op == "write") {
    if (message.args.empty()) {
      return Error(InvalidArgument(op + " needs an fd"));
    }
    std::optional<uint64_t> fd_arg = ParseDecimalU64(message.args[0]);
    if (!fd_arg.has_value()) {
      return Error(InvalidArgument(op + ": fd must be a decimal file descriptor"));
    }
    int64_t fd = static_cast<int64_t>(*fd_arg);
    auto it = open_files_.find(fd);
    if (it == open_files_.end() || it->second.owner != context.caller) {
      return Error(NotFound("bad file descriptor"));
    }
    // The fd carries its interned object id: the per-call authorization is
    // three integers, no "file:<path>" string ever built on this path.
    bool is_read = op == "read";
    Status authorized = kernel_->Authorize(
        AuthzRequest{context.caller, is_read ? kReadOp : kWriteOp, it->second.object});
    if (!authorized.ok()) {
      return Error(authorized);
    }
    const std::string& path = it->second.path;
    Bytes& content = files_[path];
    if (is_read) {
      std::optional<uint64_t> offset_arg =
          message.args.size() > 1 ? ParseDecimalU64(message.args[1]) : 0;
      std::optional<uint64_t> length_arg =
          message.args.size() > 2 ? ParseDecimalU64(message.args[2]) : content.size();
      if (!offset_arg.has_value() || !length_arg.has_value()) {
        return Error(InvalidArgument("read: offset/length must be decimal"));
      }
      size_t offset = *offset_arg;
      size_t length = *length_arg;
      if (offset > content.size()) {
        return Error(OutOfRange("read past end of file"));
      }
      length = std::min(length, content.size() - offset);
      Bytes out(content.begin() + static_cast<ptrdiff_t>(offset),
                content.begin() + static_cast<ptrdiff_t>(offset + length));
      return IpcReply{OkStatus(), {}, std::move(out), static_cast<int64_t>(length)};
    }
    // write
    std::optional<uint64_t> offset_arg =
        message.args.size() > 1 ? ParseDecimalU64(message.args[1]) : content.size();
    if (!offset_arg.has_value()) {
      return Error(InvalidArgument("write: offset must be decimal"));
    }
    size_t offset = *offset_arg;
    if (offset > content.size()) {
      return Error(OutOfRange("write past end of file"));
    }
    if (offset + message.data.size() > content.size()) {
      content.resize(offset + message.data.size());
    }
    std::copy(message.data.begin(), message.data.end(),
              content.begin() + static_cast<ptrdiff_t>(offset));
    return IpcReply{OkStatus(), {}, {}, static_cast<int64_t>(message.data.size())};
  }

  if (op == "unlink") {
    if (message.args.empty()) {
      return Error(InvalidArgument("unlink needs a path"));
    }
    const std::string& path = message.args[0];
    Result<ObjectId> object = FileObject(context.caller, path);
    if (!object.ok()) {
      return Error(object.status());
    }
    Status authorized = kernel_->Authorize(AuthzRequest{context.caller, kUnlinkOp, *object});
    if (!authorized.ok()) {
      return Error(authorized);
    }
    if (files_.erase(path) == 0) {
      return Error(NotFound("no such file: " + path));
    }
    return IpcReply{OkStatus(), {}, {}, 0};
  }

  if (op == "stat") {
    if (message.args.empty()) {
      return Error(InvalidArgument("stat needs a path"));
    }
    auto it = files_.find(message.args[0]);
    if (it == files_.end()) {
      return Error(NotFound("no such file: " + message.args[0]));
    }
    return IpcReply{OkStatus(), {}, {}, static_cast<int64_t>(it->second.size())};
  }

  return Error(InvalidArgument("unknown filesystem operation: " + op));
}

}  // namespace nexus::kernel
