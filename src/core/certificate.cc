#include "core/certificate.h"

#include "crypto/sha256.h"
#include "nal/parser.h"

namespace nexus::core {

namespace {

constexpr std::string_view kNkBindingTag = "NEXUS_NK_BINDING";
constexpr std::string_view kStatementTag = "NEXUS_LABEL";

Bytes StatementMessage(const nal::Formula& statement) {
  Bytes message = ToBytes(kStatementTag);
  AppendLengthPrefixed(message, ToBytes(statement->ToString()));
  return message;
}

}  // namespace

std::string ShortKeyId(const crypto::RsaPublicKey& key) {
  return crypto::Sha256Hex(key.Serialize()).substr(0, 8);
}

nal::Principal ExternalPrincipalFor(const crypto::RsaPublicKey& ek,
                                    const crypto::RsaPublicKey& nk,
                                    const std::string& nbk_id) {
  return nal::Principal("tpm." + ShortKeyId(ek))
      .Sub("nexus." + ShortKeyId(nk))
      .Sub("boot." + nbk_id);
}

Bytes NkBindingMessage(const crypto::RsaPublicKey& nk, ByteView pcr_composite) {
  Bytes message = ToBytes(kNkBindingTag);
  AppendLengthPrefixed(message, nk.Serialize());
  AppendLengthPrefixed(message, pcr_composite);
  return message;
}

Bytes Certificate::Serialize() const {
  Bytes out;
  AppendLengthPrefixed(out, ToBytes(statement->ToString()));
  AppendLengthPrefixed(out, nk_signature);
  AppendLengthPrefixed(out, nk_public.Serialize());
  AppendLengthPrefixed(out, ek_attestation);
  AppendLengthPrefixed(out, pcr_composite);
  AppendLengthPrefixed(out, ek_public.Serialize());
  return out;
}

Result<Certificate> Certificate::Deserialize(ByteView data) {
  ByteReader reader(data);
  Certificate cert;

  Result<Bytes> statement_text = reader.ReadLengthPrefixed();
  if (!statement_text.ok()) {
    return statement_text.status();
  }
  Result<nal::Formula> statement = nal::ParseFormula(ToString(*statement_text));
  if (!statement.ok()) {
    return statement.status();
  }
  cert.statement = *statement;

  Result<Bytes> nk_sig = reader.ReadLengthPrefixed();
  if (!nk_sig.ok()) {
    return nk_sig.status();
  }
  cert.nk_signature = std::move(*nk_sig);

  Result<Bytes> nk_pub = reader.ReadLengthPrefixed();
  if (!nk_pub.ok()) {
    return nk_pub.status();
  }
  Result<crypto::RsaPublicKey> nk = crypto::RsaPublicKey::Deserialize(*nk_pub);
  if (!nk.ok()) {
    return nk.status();
  }
  cert.nk_public = *nk;

  Result<Bytes> ek_att = reader.ReadLengthPrefixed();
  if (!ek_att.ok()) {
    return ek_att.status();
  }
  cert.ek_attestation = std::move(*ek_att);

  Result<Bytes> composite = reader.ReadLengthPrefixed();
  if (!composite.ok()) {
    return composite.status();
  }
  cert.pcr_composite = std::move(*composite);

  Result<Bytes> ek_pub = reader.ReadLengthPrefixed();
  if (!ek_pub.ok()) {
    return ek_pub.status();
  }
  Result<crypto::RsaPublicKey> ek = crypto::RsaPublicKey::Deserialize(*ek_pub);
  if (!ek.ok()) {
    return ek.status();
  }
  cert.ek_public = *ek;
  return cert;
}

Result<nal::Formula> VerifyCertificate(const Certificate& cert,
                                       const crypto::RsaPublicKey& trusted_ek,
                                       ByteView expected_composite) {
  if (!(cert.ek_public == trusted_ek)) {
    return Unauthenticated("certificate EK does not match the trusted EK");
  }
  if (!expected_composite.empty() &&
      !ConstantTimeEquals(cert.pcr_composite, expected_composite)) {
    return Unauthenticated("certificate PCR composite does not match the expected software "
                           "configuration");
  }
  Bytes binding = NkBindingMessage(cert.nk_public, cert.pcr_composite);
  if (!crypto::RsaVerify(cert.ek_public, binding, cert.ek_attestation)) {
    return Unauthenticated("EK attestation of the kernel key failed to verify");
  }
  if (!crypto::RsaVerify(cert.nk_public, StatementMessage(cert.statement), cert.nk_signature)) {
    return Unauthenticated("kernel-key signature over the statement failed to verify");
  }
  return cert.statement;
}

// Exposed for the issuing path in nexus.cc.
Bytes CertificateStatementMessage(const nal::Formula& statement) {
  return StatementMessage(statement);
}

}  // namespace nexus::core
