#include <gtest/gtest.h>

#include "nal/checker.h"
#include "nal/formula.h"
#include "nal/interner.h"
#include "nal/parser.h"
#include "nal/proof.h"
#include "nal/prover.h"
#include "nal/term.h"

namespace nexus::nal {
namespace {

Formula F(std::string_view text) {
  Result<Formula> f = ParseFormula(text);
  EXPECT_TRUE(f.ok()) << text << " -> " << f.status().ToString();
  return f.ok() ? *f : nullptr;
}

// ------------------------------------------------------------- Principals

TEST(PrincipalTest, SubprincipalPrefix) {
  Principal hw("HW");
  Principal kernel = hw.Sub("kernel");
  Principal proc = kernel.Sub("process23");
  EXPECT_TRUE(hw.IsPrefixOf(kernel));
  EXPECT_TRUE(hw.IsPrefixOf(proc));
  EXPECT_TRUE(kernel.IsPrefixOf(proc));
  EXPECT_FALSE(proc.IsPrefixOf(kernel));
  EXPECT_TRUE(hw.IsPrefixOf(hw));
  EXPECT_EQ(proc.ToString(), "HW.kernel.process23");
}

TEST(PrincipalTest, DifferentBasesNotPrefixes) {
  EXPECT_FALSE(Principal("A").IsPrefixOf(Principal("B")));
  EXPECT_FALSE(Principal("A").Sub("x").IsPrefixOf(Principal("A").Sub("y")));
}

TEST(PrincipalTest, VariableDetection) {
  EXPECT_TRUE(Principal("$X").IsVariable());
  EXPECT_FALSE(Principal("X").IsVariable());
  EXPECT_FALSE(Principal("$X").Sub("y").IsVariable());
}

TEST(TermTest, SymbolPrincipalPun) {
  // A one-component principal and a symbol with the same name are equal.
  EXPECT_TRUE(Term::Symbol("NTP") == Term::Prin(Principal("NTP")));
  EXPECT_FALSE(Term::Symbol("NTP") == Term::Prin(Principal("NTP").Sub("x")));
}

// ----------------------------------------------------------------- Parser

TEST(ParserTest, PaperLabelTypeChecker) {
  Formula f = F("TypeChecker says isTypeSafe(PGM)");
  ASSERT_EQ(f->kind(), FormulaKind::kSays);
  EXPECT_EQ(f->speaker().ToString(), "TypeChecker");
  EXPECT_EQ(f->child1()->kind(), FormulaKind::kPred);
  EXPECT_EQ(f->child1()->pred_name(), "isTypeSafe");
}

TEST(ParserTest, PaperLabelSpeaksFor) {
  Formula f = F("Nexus says /proc/ipd/30 speaksfor IPCAnalyzer");
  ASSERT_EQ(f->kind(), FormulaKind::kSays);
  ASSERT_EQ(f->child1()->kind(), FormulaKind::kSpeaksFor);
  EXPECT_EQ(f->child1()->delegator().ToString(), "/proc/ipd/30");
  EXPECT_EQ(f->child1()->delegatee().ToString(), "IPCAnalyzer");
}

TEST(ParserTest, PaperLabelNegatedPredicate) {
  Formula f = F("/proc/ipd/30 says not hasPath(/proc/ipd/12, Filesystem)");
  ASSERT_EQ(f->kind(), FormulaKind::kSays);
  EXPECT_EQ(f->child1()->kind(), FormulaKind::kNot);
  EXPECT_EQ(f->child1()->child1()->pred_name(), "hasPath");
}

TEST(ParserTest, PaperRestrictedDelegation) {
  Formula f = F("Filesystem says NTP speaksfor Filesystem on TimeNow");
  ASSERT_EQ(f->child1()->kind(), FormulaKind::kSpeaksFor);
  ASSERT_TRUE(f->child1()->on_scope().has_value());
  EXPECT_EQ(*f->child1()->on_scope(), "TimeNow");
}

TEST(ParserTest, PaperTimeComparison) {
  Formula f = F("NTP says TimeNow < 20260319");
  ASSERT_EQ(f->child1()->kind(), FormulaKind::kCompare);
  EXPECT_EQ(f->child1()->compare_op(), CompareOp::kLt);
  EXPECT_EQ(f->child1()->rhs().int_value(), 20260319);
}

TEST(ParserTest, GoalWithVariables) {
  Formula f = F("$X says openFile(report) and SafetyCertifier says safe($X)");
  ASSERT_EQ(f->kind(), FormulaKind::kAnd);
  EXPECT_FALSE(IsGround(f));
  EXPECT_TRUE(f->child1()->speaker().IsVariable());
}

TEST(ParserTest, PrecedenceSaysBindsTighterThanAnd) {
  Formula f = F("A says p() and B says q()");
  ASSERT_EQ(f->kind(), FormulaKind::kAnd);
  EXPECT_EQ(f->child1()->kind(), FormulaKind::kSays);
  EXPECT_EQ(f->child2()->kind(), FormulaKind::kSays);
}

TEST(ParserTest, ImpliesIsRightAssociative) {
  Formula f = F("p() => q() => r()");
  ASSERT_EQ(f->kind(), FormulaKind::kImplies);
  EXPECT_EQ(f->child2()->kind(), FormulaKind::kImplies);
}

TEST(ParserTest, AndBindsTighterThanOr) {
  Formula f = F("p() or q() and r()");
  ASSERT_EQ(f->kind(), FormulaKind::kOr);
  EXPECT_EQ(f->child2()->kind(), FormulaKind::kAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  Formula f = F("(p() or q()) and r()");
  ASSERT_EQ(f->kind(), FormulaKind::kAnd);
}

TEST(ParserTest, SaysNestsThroughParens) {
  Formula f = F("A says (p() and q())");
  ASSERT_EQ(f->kind(), FormulaKind::kSays);
  EXPECT_EQ(f->child1()->kind(), FormulaKind::kAnd);
}

TEST(ParserTest, DottedPrincipals) {
  Formula f = F("HW.kernel.process23 says ready()");
  EXPECT_EQ(f->speaker().base(), "HW");
  EXPECT_EQ(f->speaker().path().size(), 2u);
}

TEST(ParserTest, StringLiteralArgs) {
  Formula f = F("FS says owns(\"/dir/file\", /proc/ipd/6)");
  EXPECT_EQ(f->child1()->args()[0].kind(), TermKind::kString);
  EXPECT_EQ(f->child1()->args()[0].text(), "/dir/file");
}

TEST(ParserTest, TrueFalseConstants) {
  EXPECT_EQ(F("true")->kind(), FormulaKind::kTrue);
  EXPECT_EQ(F("false")->kind(), FormulaKind::kFalse);
}

TEST(ParserTest, AllComparisonOps) {
  EXPECT_EQ(F("x < 1")->compare_op(), CompareOp::kLt);
  EXPECT_EQ(F("x <= 1")->compare_op(), CompareOp::kLe);
  EXPECT_EQ(F("x = 1")->compare_op(), CompareOp::kEq);
  EXPECT_EQ(F("x >= 1")->compare_op(), CompareOp::kGe);
  EXPECT_EQ(F("x > 1")->compare_op(), CompareOp::kGt);
  EXPECT_EQ(F("x != 1")->compare_op(), CompareOp::kNe);
}

TEST(ParserTest, NegativeIntegers) {
  Formula f = F("balance > -100");
  EXPECT_EQ(f->rhs().int_value(), -100);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseFormula("").ok());
  EXPECT_FALSE(ParseFormula("says says").ok());
  EXPECT_FALSE(ParseFormula("A says").ok());
  EXPECT_FALSE(ParseFormula("(p()").ok());
  EXPECT_FALSE(ParseFormula("p() and").ok());
  EXPECT_FALSE(ParseFormula("A speaksfor").ok());
  EXPECT_FALSE(ParseFormula("\"unterminated").ok());
  EXPECT_FALSE(ParseFormula("p() q()").ok());
  EXPECT_FALSE(ParseFormula("$ says x()").ok());
}

TEST(ParserTest, RoundTripStability) {
  const char* cases[] = {
      "TypeChecker says isTypeSafe(PGM)",
      "Nexus says /proc/ipd/30 speaksfor IPCAnalyzer",
      "Filesystem says NTP speaksfor Filesystem on TimeNow",
      "NTP says TimeNow < 20260319",
      "$X says openFile(report) and SafetyCertifier says safe($X)",
      "A says not (p() or q())",
      "(p() => q()) => r()",
      "A says (B says ok())",
      "owner(\"file with spaces\", 42)",
  };
  for (const char* text : cases) {
    Formula once = F(text);
    Formula twice = F(once->ToString());
    EXPECT_TRUE(Equals(once, twice)) << text << " reprinted as " << once->ToString();
  }
}

TEST(ParsePrincipalTest, Valid) {
  Result<Principal> p = ParsePrincipal("HW.kernel.process23");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->path().size(), 2u);
}

TEST(ParsePrincipalTest, Invalid) {
  EXPECT_FALSE(ParsePrincipal("").ok());
  EXPECT_FALSE(ParsePrincipal("A B").ok());
  EXPECT_FALSE(ParsePrincipal("42").ok());  // Lexes as int, not ident.
}

// ------------------------------------------------------- Match/Substitute

TEST(MatchTest, VariablePrincipalBinds) {
  Bindings b;
  EXPECT_TRUE(Match(F("$X says openFile(f)"), F("/proc/ipd/12 says openFile(f)"), b));
  EXPECT_EQ(b.at("X").principal().ToString(), "/proc/ipd/12");
}

TEST(MatchTest, VariableTermBinds) {
  Bindings b;
  EXPECT_TRUE(Match(F("Cert says safe($X)"), F("Cert says safe(/proc/ipd/12)"), b));
}

TEST(MatchTest, InconsistentBindingFails) {
  Bindings b;
  EXPECT_FALSE(Match(F("$X says p($X)"), F("A says p(B)"), b));
}

TEST(MatchTest, ConsistentRepeatedVariable) {
  Bindings b;
  EXPECT_TRUE(Match(F("$X says p($X)"), F("A says p(A)"), b));
}

TEST(MatchTest, MismatchedStructureFails) {
  Bindings b;
  EXPECT_FALSE(Match(F("A says p()"), F("A says q()"), b));
  EXPECT_FALSE(Match(F("A says p()"), F("B says p()"), b));
  EXPECT_FALSE(Match(F("x < 3"), F("x > 3"), b));
}

TEST(SubstituteTest, AppliesBindings) {
  Bindings b;
  ASSERT_TRUE(Match(F("$X says openFile(f)"), F("P says openFile(f)"), b));
  Formula instantiated = Substitute(F("Cert says safe($X)"), b);
  EXPECT_TRUE(Equals(instantiated, F("Cert says safe(P)")));
}

TEST(SubstituteTest, UnboundVariablesRemain) {
  Bindings b;
  Formula f = Substitute(F("Cert says safe($Y)"), b);
  EXPECT_FALSE(IsGround(f));
}

// ------------------------------------------------------------ ScopeMatch

TEST(ScopeTest, ComparisonMentionsSymbol) {
  EXPECT_TRUE(ScopeMatches(F("TimeNow < 20260319"), "TimeNow"));
  EXPECT_FALSE(ScopeMatches(F("Quota < 80"), "TimeNow"));
}

TEST(ScopeTest, PredicateNameMatches) {
  EXPECT_TRUE(ScopeMatches(F("openFile(f)"), "openFile"));
  EXPECT_FALSE(ScopeMatches(F("openFile(f)"), "closeFile"));
}

TEST(ScopeTest, CompoundRequiresAllAtoms) {
  EXPECT_TRUE(ScopeMatches(F("TimeNow < 5 and TimeNow > 1"), "TimeNow"));
  EXPECT_FALSE(ScopeMatches(F("TimeNow < 5 and Quota < 80"), "TimeNow"));
}

// ------------------------------------------------------------ Conjuncts

TEST(ConjunctsTest, FlattensLeftToRight) {
  std::vector<Formula> parts = Conjuncts(F("p() and q() and r()"));
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0]->pred_name(), "p");
  EXPECT_EQ(parts[1]->pred_name(), "q");
  EXPECT_EQ(parts[2]->pred_name(), "r");
}

TEST(ConjunctsTest, NonConjunctionYieldsSelf) {
  EXPECT_EQ(Conjuncts(F("p()")).size(), 1u);
}

// -------------------------------------------------------------- Checker

std::vector<Formula> Creds(std::initializer_list<const char*> texts) {
  std::vector<Formula> out;
  for (const char* t : texts) {
    out.push_back(F(t));
  }
  return out;
}

TEST(CheckerTest, PremiseMatchesCredential) {
  auto creds = Creds({"A says ok()"});
  CheckResult r = CheckProof(proof::Premise(F("A says ok()")), F("A says ok()"), creds);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.cacheable);
  EXPECT_EQ(r.rules_applied, 1);
}

TEST(CheckerTest, PremiseNotSuppliedFails) {
  auto creds = Creds({"A says ok()"});
  CheckResult r = CheckProof(proof::Premise(F("B says ok()")), F("B says ok()"), creds);
  EXPECT_FALSE(r.status.ok());
}

TEST(CheckerTest, TrueIsFreePremise) {
  CheckResult r = CheckProof(proof::Premise(F("true")), F("true"), {});
  EXPECT_TRUE(r.status.ok());
}

TEST(CheckerTest, AndIntroAndElim) {
  auto creds = Creds({"A says p()", "B says q()"});
  Proof both = proof::AndIntro(proof::Premise(F("A says p()")), proof::Premise(F("B says q()")));
  EXPECT_TRUE(CheckProof(both, F("A says p() and B says q()"), creds).status.ok());
  EXPECT_TRUE(CheckProof(proof::AndElimL(both), F("A says p()"), creds).status.ok());
  EXPECT_TRUE(CheckProof(proof::AndElimR(both), F("B says q()"), creds).status.ok());
}

TEST(CheckerTest, AndElimOnNonConjunctionFails) {
  auto creds = Creds({"A says p()"});
  CheckResult r =
      CheckProof(proof::AndElimL(proof::Premise(F("A says p()"))), F("A says p()"), creds);
  EXPECT_FALSE(r.status.ok());
}

TEST(CheckerTest, OrIntro) {
  auto creds = Creds({"A says p()"});
  Proof p = proof::OrIntroL(proof::Premise(F("A says p()")), F("B says q()"));
  EXPECT_TRUE(CheckProof(p, F("A says p() or B says q()"), creds).status.ok());
  Proof p2 = proof::OrIntroR(F("B says q()"), proof::Premise(F("A says p()")));
  EXPECT_TRUE(CheckProof(p2, F("B says q() or A says p()"), creds).status.ok());
}

TEST(CheckerTest, OrElimCaseAnalysis) {
  auto creds = Creds({"A says (p() or q())"});
  // From A says (p or q) we cannot do or-elim directly (it is inside says);
  // test the propositional form with a raw disjunction premise instead.
  auto creds2 = Creds({"p() or q()", "p() => r()", "q() => r()"});
  Proof p = proof::OrElim(proof::Premise(F("p() or q()")), proof::Premise(F("p() => r()")),
                          proof::Premise(F("q() => r()")));
  EXPECT_TRUE(CheckProof(p, F("r()"), creds2).status.ok());
}

TEST(CheckerTest, OrElimMismatchedCasesFail) {
  auto creds = Creds({"p() or q()", "p() => r()", "q() => s()"});
  Proof p = proof::OrElim(proof::Premise(F("p() or q()")), proof::Premise(F("p() => r()")),
                          proof::Premise(F("q() => s()")));
  EXPECT_FALSE(CheckProof(p, F("r()"), creds).status.ok());
}

TEST(CheckerTest, ImpliesElimModusPonens) {
  auto creds = Creds({"A says p()", "(A says p()) => (B says q())"});
  Proof p = proof::ImpliesElim(proof::Premise(F("(A says p()) => (B says q())")),
                               proof::Premise(F("A says p()")));
  EXPECT_TRUE(CheckProof(p, F("B says q()"), creds).status.ok());
}

TEST(CheckerTest, ImpliesElimAntecedentMismatchFails) {
  auto creds = Creds({"A says r()", "(A says p()) => (B says q())"});
  Proof p = proof::ImpliesElim(proof::Premise(F("(A says p()) => (B says q())")),
                               proof::Premise(F("A says r()")));
  EXPECT_FALSE(CheckProof(p, F("B says q()"), creds).status.ok());
}

TEST(CheckerTest, ImpliesIntroDischargesAssumption) {
  // Prove p() => p() from nothing.
  Proof p = proof::ImpliesIntro(F("p()"), proof::Assumption(F("p()")));
  EXPECT_TRUE(CheckProof(p, F("p() => p()"), {}).status.ok());
}

TEST(CheckerTest, UndischargedAssumptionFails) {
  CheckResult r = CheckProof(proof::Assumption(F("p()")), F("p()"), {});
  EXPECT_FALSE(r.status.ok());
}

TEST(CheckerTest, DoubleNegIntro) {
  auto creds = Creds({"A says p()"});
  Proof p = proof::DoubleNegIntro(proof::Premise(F("A says p()")));
  EXPECT_TRUE(CheckProof(p, F("not not (A says p())"), creds).status.ok());
}

TEST(CheckerTest, SaysIntroFromOwnStatements) {
  // From A says p() one may conclude A says (A says p())? No — says-intro
  // wraps the derived formula: A says p() |- P says (A says p()) requires
  // the subproof attributable to P. Attributable to A itself works.
  auto creds = Creds({"A says p()"});
  Proof p = proof::SaysIntro(Principal("A"), proof::Premise(F("A says p()")));
  EXPECT_TRUE(CheckProof(p, F("A says (A says p())"), creds).status.ok());
}

TEST(CheckerTest, SaysIntroOfTautology) {
  Proof inner = proof::ImpliesIntro(F("p()"), proof::Assumption(F("p()")));
  Proof p = proof::SaysIntro(Principal("Anyone"), inner);
  EXPECT_TRUE(CheckProof(p, F("Anyone says (p() => p())"), {}).status.ok());
}

TEST(CheckerTest, SaysIntroUsingOthersStatementsFails) {
  auto creds = Creds({"B says p()"});
  Proof p = proof::SaysIntro(Principal("A"), proof::Premise(F("B says p()")));
  EXPECT_FALSE(CheckProof(p, F("A says (B says p())"), creds).status.ok());
}

TEST(CheckerTest, SaysDistribution) {
  auto creds = Creds({"P says (p() => q())", "P says p()"});
  Proof p = proof::SaysImpliesElim(proof::Premise(F("P says (p() => q())")),
                                   proof::Premise(F("P says p()")));
  EXPECT_TRUE(CheckProof(p, F("P says q()"), creds).status.ok());
}

TEST(CheckerTest, SaysDistributionSpeakerMismatchFails) {
  auto creds = Creds({"P says (p() => q())", "Q says p()"});
  Proof p = proof::SaysImpliesElim(proof::Premise(F("P says (p() => q())")),
                                   proof::Premise(F("Q says p()")));
  EXPECT_FALSE(CheckProof(p, F("P says q()"), creds).status.ok());
}

TEST(CheckerTest, SaysAndIntroElim) {
  auto creds = Creds({"P says p()", "P says q()"});
  Proof both =
      proof::SaysAndIntro(proof::Premise(F("P says p()")), proof::Premise(F("P says q()")));
  EXPECT_TRUE(CheckProof(both, F("P says (p() and q())"), creds).status.ok());
  EXPECT_TRUE(CheckProof(proof::SaysAndElimL(both), F("P says p()"), creds).status.ok());
  EXPECT_TRUE(CheckProof(proof::SaysAndElimR(both), F("P says q()"), creds).status.ok());
}

TEST(CheckerTest, SubprincipalAxiom) {
  Proof p = proof::Subprincipal(Principal("Nexus"), Principal("Nexus").Sub("ipd12"));
  EXPECT_TRUE(CheckProof(p, F("Nexus speaksfor Nexus.ipd12"), {}).status.ok());
}

TEST(CheckerTest, SubprincipalAxiomRejectsNonPrefix) {
  Proof p = proof::Subprincipal(Principal("A"), Principal("B"));
  EXPECT_FALSE(CheckProof(p, F("A speaksfor B"), {}).status.ok());
}

TEST(CheckerTest, SubprincipalAxiomRejectsSelf) {
  Proof p = proof::Subprincipal(Principal("A"), Principal("A"));
  EXPECT_FALSE(CheckProof(p, F("A speaksfor A"), {}).status.ok());
}

TEST(CheckerTest, SpeaksForElim) {
  auto creds = Creds({"A speaksfor B", "A says ok()"});
  Proof p = proof::SpeaksForElim(proof::Premise(F("A speaksfor B")),
                                 proof::Premise(F("A says ok()")));
  EXPECT_TRUE(CheckProof(p, F("B says ok()"), creds).status.ok());
}

TEST(CheckerTest, SpeaksForElimCoversSubprincipalSpeakers) {
  // A speaksfor B also attributes statements by A.x to B.
  auto creds = Creds({"A speaksfor B", "A.x says ok()"});
  Proof p = proof::SpeaksForElim(proof::Premise(F("A speaksfor B")),
                                 proof::Premise(F("A.x says ok()")));
  EXPECT_TRUE(CheckProof(p, F("B says ok()"), creds).status.ok());
}

TEST(CheckerTest, ScopedDelegationAdmitsInScopeStatements) {
  auto creds = Creds({"NTP speaksfor FS on TimeNow", "NTP says TimeNow < 100"});
  Proof p = proof::SpeaksForElim(proof::Premise(F("NTP speaksfor FS on TimeNow")),
                                 proof::Premise(F("NTP says TimeNow < 100")));
  EXPECT_TRUE(CheckProof(p, F("FS says TimeNow < 100"), creds).status.ok());
}

TEST(CheckerTest, ScopedDelegationRejectsOutOfScope) {
  auto creds = Creds({"NTP speaksfor FS on TimeNow", "NTP says deleteAll()"});
  Proof p = proof::SpeaksForElim(proof::Premise(F("NTP speaksfor FS on TimeNow")),
                                 proof::Premise(F("NTP says deleteAll()")));
  EXPECT_FALSE(CheckProof(p, F("FS says deleteAll()"), creds).status.ok());
}

TEST(CheckerTest, HandoffFromDelegateeStatement) {
  auto creds = Creds({"B says (A speaksfor B)"});
  Proof p = proof::Handoff(proof::Premise(F("B says (A speaksfor B)")));
  EXPECT_TRUE(CheckProof(p, F("A speaksfor B"), creds).status.ok());
}

TEST(CheckerTest, HandoffBySuperprincipal) {
  // The kernel (prefix of the process principal) can hand off authority
  // over the process: Nexus says (IPC.5 speaksfor Nexus.ipd12).
  auto creds = Creds({"Nexus says (IPC.5 speaksfor Nexus.ipd12)"});
  Proof p = proof::Handoff(proof::Premise(F("Nexus says (IPC.5 speaksfor Nexus.ipd12)")));
  EXPECT_TRUE(CheckProof(p, F("IPC.5 speaksfor Nexus.ipd12"), creds).status.ok());
}

TEST(CheckerTest, HandoffByUnrelatedSpeakerFails) {
  auto creds = Creds({"C says (A speaksfor B)"});
  Proof p = proof::Handoff(proof::Premise(F("C says (A speaksfor B)")));
  EXPECT_FALSE(CheckProof(p, F("A speaksfor B"), creds).status.ok());
}

TEST(CheckerTest, SpeaksForTransChainsDelegation) {
  auto creds = Creds({"A speaksfor B", "B speaksfor C"});
  Proof p = proof::SpeaksForTrans(proof::Premise(F("A speaksfor B")),
                                  proof::Premise(F("B speaksfor C")));
  EXPECT_TRUE(CheckProof(p, F("A speaksfor C"), creds).status.ok());
}

TEST(CheckerTest, SpeaksForTransPropagatesScope) {
  auto creds = Creds({"A speaksfor B on TimeNow", "B speaksfor C"});
  Proof p = proof::SpeaksForTrans(proof::Premise(F("A speaksfor B on TimeNow")),
                                  proof::Premise(F("B speaksfor C")));
  EXPECT_TRUE(CheckProof(p, F("A speaksfor C on TimeNow"), creds).status.ok());
}

TEST(CheckerTest, SpeaksForTransChainMismatchFails) {
  auto creds = Creds({"A speaksfor B", "X speaksfor C"});
  Proof p = proof::SpeaksForTrans(proof::Premise(F("A speaksfor B")),
                                  proof::Premise(F("X speaksfor C")));
  EXPECT_FALSE(CheckProof(p, F("A speaksfor C"), creds).status.ok());
}

TEST(CheckerTest, AuthorityLeafMakesProofNonCacheable) {
  auto authority = [](const Formula& f) { return ScopeMatches(f, "TimeNow"); };
  auto creds = Creds({});
  CheckResult r =
      CheckProof(proof::Authority(F("NTP says TimeNow < 100")), F("NTP says TimeNow < 100"),
                 creds, authority);
  EXPECT_TRUE(r.status.ok());
  EXPECT_FALSE(r.cacheable);
}

TEST(CheckerTest, AuthorityDeclineFailsProof) {
  auto authority = [](const Formula&) { return false; };
  CheckResult r = CheckProof(proof::Authority(F("NTP says TimeNow < 100")),
                             F("NTP says TimeNow < 100"), {}, authority);
  EXPECT_FALSE(r.status.ok());
}

TEST(CheckerTest, AuthorityUnreachableFailsProof) {
  CheckResult r = CheckProof(proof::Authority(F("NTP says TimeNow < 100")),
                             F("NTP says TimeNow < 100"), {}, nullptr);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.code(), ErrorCode::kUnavailable);
}

TEST(CheckerTest, GoalVariableInstantiation) {
  auto creds = Creds({"/proc/ipd/12 says openFile(report)",
                      "SafetyCertifier says safe(/proc/ipd/12)"});
  Proof p = proof::AndIntro(proof::Premise(F("/proc/ipd/12 says openFile(report)")),
                            proof::Premise(F("SafetyCertifier says safe(/proc/ipd/12)")));
  CheckResult r =
      CheckProof(p, F("$X says openFile(report) and SafetyCertifier says safe($X)"), creds);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.bindings.at("X").ToString(), "/proc/ipd/12");
}

TEST(CheckerTest, GoalVariableInconsistentInstantiationFails) {
  auto creds = Creds({"/proc/ipd/12 says openFile(report)",
                      "SafetyCertifier says safe(/proc/ipd/13)"});
  Proof p = proof::AndIntro(proof::Premise(F("/proc/ipd/12 says openFile(report)")),
                            proof::Premise(F("SafetyCertifier says safe(/proc/ipd/13)")));
  CheckResult r =
      CheckProof(p, F("$X says openFile(report) and SafetyCertifier says safe($X)"), creds);
  EXPECT_FALSE(r.status.ok());
}

TEST(CheckerTest, ConjunctionOrderInsensitiveGoalDischarge) {
  auto creds = Creds({"A says p()", "B says q()"});
  Proof p = proof::AndIntro(proof::Premise(F("B says q()")), proof::Premise(F("A says p()")));
  EXPECT_TRUE(CheckProof(p, F("A says p() and B says q()"), creds).status.ok());
}

TEST(CheckerTest, WrongConclusionFails) {
  auto creds = Creds({"A says p()"});
  CheckResult r = CheckProof(proof::Premise(F("A says p()")), F("A says q()"), creds);
  EXPECT_FALSE(r.status.ok());
}

TEST(CheckerTest, PaperTimeSensitiveFileScenario) {
  // Goal from §2.5 and the credentials that discharge it.
  Formula goal = F("Owner says TimeNow < 20260319");
  auto creds = Creds({"Owner says (NTP speaksfor Owner on TimeNow)",
                      "NTP says TimeNow < 20260319"});
  Proof p = proof::SpeaksForElim(
      proof::Handoff(proof::Premise(F("Owner says (NTP speaksfor Owner on TimeNow)"))),
      proof::Premise(F("NTP says TimeNow < 20260319")));
  CheckResult r = CheckProof(p, goal, creds);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rules_applied, 4);
}

TEST(CheckerTest, PaperSafetyCertifierScenario) {
  // §2.2 alternative labels: the IPC analyzer (running as process 30)
  // attests that process 12 has no path to the filesystem or nameserver.
  Formula goal = F("/proc/ipd/30 says (not hasPath(/proc/ipd/12, Filesystem) and "
                   "not hasPath(/proc/ipd/12, Nameserver))");
  auto creds = Creds({"/proc/ipd/30 says not hasPath(/proc/ipd/12, Filesystem)",
                      "/proc/ipd/30 says not hasPath(/proc/ipd/12, Nameserver)"});
  Proof p = proof::SaysAndIntro(
      proof::Premise(F("/proc/ipd/30 says not hasPath(/proc/ipd/12, Filesystem)")),
      proof::Premise(F("/proc/ipd/30 says not hasPath(/proc/ipd/12, Nameserver)")));
  EXPECT_TRUE(CheckProof(p, goal, creds).status.ok());
}

TEST(CheckerTest, StaticCacheabilityAnalysis) {
  Proof static_proof = proof::AndIntro(proof::Premise(F("A says p()")),
                                       proof::Premise(F("B says q()")));
  EXPECT_TRUE(IsStaticallyCacheable(static_proof));
  Proof dynamic_proof = proof::AndIntro(proof::Premise(F("A says p()")),
                                        proof::Authority(F("NTP says TimeNow < 1")));
  EXPECT_FALSE(IsStaticallyCacheable(dynamic_proof));
}

TEST(CheckerTest, NullProofRejected) {
  CheckResult r = CheckProof(nullptr, F("p()"), {});
  EXPECT_FALSE(r.status.ok());
}

// --------------------------------------------------------- Serialization

TEST(ProofSerializationTest, RoundTrip) {
  Proof p = proof::SpeaksForElim(
      proof::Handoff(proof::Premise(F("Owner says (NTP speaksfor Owner on TimeNow)"))),
      proof::Premise(F("NTP says TimeNow < 20260319")));
  std::string text = SerializeProof(p);
  Result<Proof> restored = DeserializeProof(text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(SerializeProof(*restored), text);

  // The restored proof still checks.
  auto creds = Creds({"Owner says (NTP speaksfor Owner on TimeNow)",
                      "NTP says TimeNow < 20260319"});
  EXPECT_TRUE(CheckProof(*restored, F("Owner says TimeNow < 20260319"), creds).status.ok());
}

TEST(ProofSerializationTest, RoundTripWithPrincipalAndStrings) {
  Proof p = proof::SaysIntro(Principal("HW").Sub("kernel"),
                             proof::Premise(F("HW.kernel says owns(\"/dir/file\")")));
  Result<Proof> restored = DeserializeProof(SerializeProof(p));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(SerializeProof(*restored), SerializeProof(p));
}

TEST(ProofSerializationTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeProof("").ok());
  EXPECT_FALSE(DeserializeProof("(unknown-rule)").ok());
  EXPECT_FALSE(DeserializeProof("(premise \"p()\"").ok());
  EXPECT_FALSE(DeserializeProof("(premise \"not valid nal").ok());
  EXPECT_FALSE(DeserializeProof("(premise \"p()\") junk").ok());
}

// -------------------------------------------------------------- Prover

TEST(ProverTest, DirectPremise) {
  auto creds = Creds({"A says ok()"});
  Result<Proof> p = AutoProve(F("A says ok()"), creds);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(CheckProof(*p, F("A says ok()"), creds).status.ok());
}

TEST(ProverTest, ConjunctionSplit) {
  auto creds = Creds({"A says p()", "B says q()"});
  Result<Proof> p = AutoProve(F("A says p() and B says q()"), creds);
  ASSERT_TRUE(p.ok());
}

TEST(ProverTest, DisjunctionEitherSide) {
  auto creds = Creds({"B says q()"});
  Result<Proof> p = AutoProve(F("A says p() or B says q()"), creds);
  ASSERT_TRUE(p.ok());
}

TEST(ProverTest, DelegationViaHandoff) {
  auto creds = Creds({"Owner says (NTP speaksfor Owner on TimeNow)",
                      "NTP says TimeNow < 20260319"});
  Result<Proof> p = AutoProve(F("Owner says TimeNow < 20260319"), creds);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(CheckProof(*p, F("Owner says TimeNow < 20260319"), creds).status.ok());
}

TEST(ProverTest, SubprincipalAttribution) {
  auto creds = Creds({"Nexus says launched(/proc/ipd/12)"});
  Result<Proof> p = AutoProve(F("Nexus.ipd12 says launched(/proc/ipd/12)"), creds);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
}

TEST(ProverTest, SaysDistribution) {
  auto creds = Creds({"A says (Valid(S) => ok())", "A says Valid(S)"});
  Result<Proof> p = AutoProve(F("A says ok()"), creds);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
}

TEST(ProverTest, GoalVariables) {
  auto creds = Creds({"/proc/ipd/12 says openFile(report)",
                      "SafetyCertifier says safe(/proc/ipd/12)"});
  Result<Proof> p =
      AutoProve(F("$X says openFile(report) and SafetyCertifier says safe($X)"), creds);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
}

TEST(ProverTest, TransitiveDelegation) {
  auto creds = Creds({"B says (A speaksfor B)", "C says (B speaksfor C)", "A says ok()"});
  Result<Proof> p = AutoProve(F("C says ok()"), creds);
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  EXPECT_TRUE(CheckProof(*p, F("C says ok()"), creds).status.ok());
}

TEST(ProverTest, AuthorityDischargeWhenPermitted) {
  ProverOptions options;
  options.may_query_authority = [](const Formula& f) { return ScopeMatches(f, "TimeNow"); };
  Result<Proof> p = AutoProve(F("NTP says TimeNow < 100"), {}, options);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(IsStaticallyCacheable(*p));
}

TEST(ProverTest, FailsWhenUnprovable) {
  auto creds = Creds({"A says p()"});
  EXPECT_FALSE(AutoProve(F("B says q()"), creds).ok());
}

TEST(ProverTest, DepthLimitRespected) {
  // A chain of delegations longer than max_depth should fail gracefully.
  std::vector<Formula> creds;
  for (int i = 0; i < 20; ++i) {
    creds.push_back(F("P" + std::to_string(i + 1) + " says (P" + std::to_string(i) +
                      " speaksfor P" + std::to_string(i + 1) + ")"));
  }
  creds.push_back(F("P0 says ok()"));
  ProverOptions options;
  options.max_depth = 3;
  EXPECT_FALSE(AutoProve(F("P20 says ok()"), creds, options).ok());
}

TEST(ProverTest, ScopedDelegationRespectedInSearch) {
  auto creds = Creds({"Owner says (NTP speaksfor Owner on TimeNow)", "NTP says deleteAll()"});
  EXPECT_FALSE(AutoProve(F("Owner says deleteAll()"), creds).ok());
}

// Parameterized sweep: proofs of increasing delegation-chain length all
// validate, and rule counts grow linearly (the shape behind Fig. 5).
class ProofChainTest : public ::testing::TestWithParam<int> {};

TEST_P(ProofChainTest, DelegationChainProves) {
  int n = GetParam();
  std::vector<Formula> creds;
  for (int i = 0; i < n; ++i) {
    creds.push_back(F("P" + std::to_string(i + 1) + " says (P" + std::to_string(i) +
                      " speaksfor P" + std::to_string(i + 1) + ")"));
  }
  creds.push_back(F("P0 says ok()"));

  // Build the chain proof bottom-up: P0 says ok(), then lift through each
  // delegation.
  Proof current = proof::Premise(F("P0 says ok()"));
  for (int i = 0; i < n; ++i) {
    std::string hop = "P" + std::to_string(i + 1) + " says (P" + std::to_string(i) +
                      " speaksfor P" + std::to_string(i + 1) + ")";
    current = proof::SpeaksForElim(proof::Handoff(proof::Premise(F(hop))), current);
  }
  Formula goal = F("P" + std::to_string(n) + " says ok()");
  CheckResult r = CheckProof(current, goal, creds);
  EXPECT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_EQ(r.rules_applied, 1 + 3 * n);
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, ProofChainTest, ::testing::Values(0, 1, 2, 4, 8, 16));

// --------------------------------------------------------------- Interner

TEST(InternerTest, StructurallyEqualFormulasShareOneId) {
  Interner interner;
  // Two independent parses: distinct nodes, equal structure.
  Formula a = F("Alice says (ok(x) and TimeNow < 20)");
  Formula b = F("Alice says (ok(x) and TimeNow < 20)");
  ASSERT_NE(a.get(), b.get());
  FormulaId ida = interner.Intern(a);
  FormulaId idb = interner.Intern(b);
  EXPECT_NE(ida, kInvalidFormulaId);
  EXPECT_EQ(ida, idb);
  EXPECT_EQ(interner.size(), 1u);
  // The canonical node is shared: Canonical() of either alias is `a`.
  EXPECT_EQ(interner.Canonical(b).get(), a.get());
  EXPECT_TRUE(Equals(interner.Resolve(ida), a));
}

TEST(InternerTest, DistinctFormulasGetDistinctIds) {
  Interner interner;
  FormulaId says = interner.Intern(F("A says p()"));
  FormulaId other_speaker = interner.Intern(F("B says p()"));
  FormulaId other_body = interner.Intern(F("A says q()"));
  EXPECT_NE(says, other_speaker);
  EXPECT_NE(says, other_body);
  EXPECT_NE(other_speaker, other_body);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(InternerTest, ReinterningCanonicalNodeIsStable) {
  Interner interner;
  Formula canonical = interner.Canonical(F("A speaksfor B on mail"));
  FormulaId id = interner.Intern(canonical);
  EXPECT_EQ(interner.Intern(canonical), id);
  EXPECT_EQ(interner.Resolve(id).get(), canonical.get());
}

TEST(InternerTest, HashRespectsSymbolPrincipalPun) {
  // Term equality puns Symbol("x") with the single-component Principal
  // "x"; the structural hash must agree or equal formulas would intern to
  // different ids.
  Formula sym = FormulaNode::Pred("p", {Term::Symbol("x")});
  Formula prin = FormulaNode::Pred("p", {Term::Prin(Principal("x"))});
  ASSERT_TRUE(Equals(sym, prin));
  EXPECT_EQ(StructuralHash(sym), StructuralHash(prin));
  Interner interner;
  EXPECT_EQ(interner.Intern(sym), interner.Intern(prin));
}

TEST(InternerTest, NullAndUnknownIdsAreInvalid) {
  Interner interner;
  EXPECT_EQ(interner.Intern(nullptr), kInvalidFormulaId);
  EXPECT_EQ(interner.Resolve(kInvalidFormulaId), nullptr);
  EXPECT_EQ(interner.Resolve(999), nullptr);
}

// --------------------------------------------------------- AuthorityLeaves

TEST(ProofTest, AuthorityLeavesCollectsEveryLeaf) {
  Formula s1 = F("Clock says TimeNow < 10");
  Formula s2 = F("Quota says usage < 80");
  Proof p = proof::AndIntro(proof::Authority(s1),
                            proof::AndIntro(proof::Premise(F("A says ok()")),
                                            proof::Authority(s2)));
  std::vector<Formula> leaves = AuthorityLeaves(p);
  ASSERT_EQ(leaves.size(), 2u);
  EXPECT_TRUE(Equals(leaves[0], s1));
  EXPECT_TRUE(Equals(leaves[1], s2));
  EXPECT_TRUE(AuthorityLeaves(proof::Premise(F("A says ok()"))).empty());
  EXPECT_TRUE(AuthorityLeaves(nullptr).empty());
}

}  // namespace
}  // namespace nexus::nal
