// One node's membership in the federation mesh.
//
// MeshNode bundles the three mesh planes for a NetNode — the convergent
// registry (replicated state), the gossip service (propagation), and the
// invalidation propagator (cross-node cache coherence) — and wires the
// node's kernel invalidation sink so local setgoal/setproof mutations fan
// out automatically. Construction order gives each node a usable mesh
// after: MeshNode m(&node, opts); m.Join(seed); transport.DeliverAll();
// ...AntiEntropy() until converged.
#ifndef NEXUS_NET_MESH_MESH_H_
#define NEXUS_NET_MESH_MESH_H_

#include <string>

#include "net/mesh/gossip.h"
#include "net/mesh/invalidation.h"
#include "net/mesh/quorum.h"
#include "net/mesh/registry.h"
#include "net/node.h"

namespace nexus::net::mesh {

class MeshNode {
 public:
  struct Options {
    // Labelstore destination for gossiped certificates (0 = the kernel
    // process, always present).
    kernel::ProcessId import_pid = 0;
    // Broadcast local goal/proof invalidations to the mesh (installs the
    // kernel sink; detached on destruction).
    bool wire_kernel_sink = true;
    // See InvalidationPropagator::Options — enable only on audited nodes.
    bool stamp_observability = true;
  };

  MeshNode(NetNode* node, Options options);
  explicit MeshNode(NetNode* node) : MeshNode(node, Options{}) {}
  ~MeshNode();

  MeshNode(const MeshNode&) = delete;
  MeshNode& operator=(const MeshNode&) = delete;

  NetNode& node() { return *node_; }
  MeshRegistry& registry() { return registry_; }
  GossipService& gossip() { return gossip_; }
  InvalidationPropagator& invalidation() { return invalidation_; }

  // Handshake to `seed` and push our state at it. The caller pumps the
  // transport (DeliverAll) to let the push land and flood onward.
  Status Join(const NodeId& seed);

  // One full anti-entropy round: gossip state + retained invalidations to
  // every reachable peer. Returns messages sent; a mesh is converged when
  // repeated rounds change nobody's Digest().
  size_t AntiEntropy();

  std::string Digest() const { return registry_.Digest(); }

 private:
  NetNode* node_;
  Options options_;
  MeshRegistry registry_;
  GossipService gossip_;
  InvalidationPropagator invalidation_;
};

}  // namespace nexus::net::mesh

#endif  // NEXUS_NET_MESH_MESH_H_
