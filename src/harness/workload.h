// WorkloadDriver: the load half of the harness. Boots a Nexus, instantiates
// one application scenario (fauxbook / ddrm / movie_player / trudocs) via
// the scenario adapters, and drives it from N worker threads with a
// seeded, zipf-skewed mix of authorize / IPC-read / IPC-write / goal-flip /
// process-churn operations over up to millions of simulated subjects.
// While the workers run, a harvest thread drains the FlightRecorder and
// MutationLog into a TraceAuditor, so every run doubles as a
// serializability + structural-invariant check of the concurrent kernel.
//
// Determinism: all randomness flows from config.seed through per-thread
// util::Rng streams. Thread interleaving still varies run to run — that is
// the point; the auditor is what makes any interleaving checkable.
//
// The driver owns process-global observability state for its run duration
// (FlightRecorder / MutationLog enable flags and contents): one driver at
// a time per process.
#ifndef NEXUS_HARNESS_WORKLOAD_H_
#define NEXUS_HARNESS_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "harness/auditor.h"
#include "util/status.h"

namespace nexus::harness {

struct WorkloadConfig {
  std::string scenario = "fauxbook";
  size_t threads = 4;
  uint64_t logical_calls = 100'000;  // Total across all workers.
  uint64_t subjects = 1'000'000;     // Simulated population (mostly virtual).
  size_t objects = 256;
  size_t audited_objects = 4;  // Goal-flipped + value-checked objects.
  size_t proof_holders = 16;   // Real processes holding valid proofs.
  double subject_theta = 0.99; // Zipf skew; 0 = uniform.
  double object_theta = 0.99;
  // Relative op-mix weights (any zero drops the verb from the mix).
  uint32_t authorize_weight = 55;  // Direct kernel authorization.
  uint32_t read_weight = 20;       // IPC Call through the guarded port.
  uint32_t write_weight = 10;
  uint32_t setgoal_weight = 10;    // Goal flips on audited objects.
  uint32_t churn_weight = 5;       // Process spawn + kill.
  // Batched submission: when > 1, each read verb submits this many
  // messages through ONE Kernel::CallMany crossing instead of one Call
  // per message. Keep batches modest (≤ 8) in audited runs: a batch
  // shares one trace ring sequence, and ring wrap truncates the chains
  // the structural checks need.
  size_t callmany_batch = 1;
  // Closed loop (default): each worker issues as fast as replies return.
  // Open loop: each worker paces to `open_loop_rate` ops/sec.
  bool open_loop = false;
  uint64_t open_loop_rate = 50'000;
  uint64_t seed = 42;
  bool audit = true;
  uint64_t harvest_interval_us = 1000;
  // Fault injection: forge trace events AFTER the workers finish and
  // before the final harvest. A correct auditor must flag them; the
  // negative-path tests and CI soak assert it does.
  bool inject_stale_verdict = false;  // Generation below the ring high-water.
  bool inject_wrong_verdict = false;  // Allow for a proofless subject.
  // Completed interposed call missing its kReplyInterpose stage (reply
  // bypassed the monitor chain). Needs an interposed scenario (ddrm).
  bool inject_rewritten_reply = false;
  // Mesh coherence: apply a simulated remote invalidation (real cache bump
  // + kRemoteInvalidate record/event, as the mesh propagator emits), then
  // forge a verdict BELOW the remote-raised high-water — a cached answer
  // served past its cross-node retirement. Must be attributed to
  // remote_invalidation_violations, not plain stale_generation.
  bool inject_stale_remote_verdict = false;
};

struct WorkloadReport {
  std::string scenario;
  size_t threads = 0;
  uint64_t calls_completed = 0;
  uint64_t subjects = 0;
  double wall_seconds = 0.0;
  double throughput_ops = 0.0;  // calls_completed / wall_seconds.
  // Overall per-op latency (driver-measured, wall clock).
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  // Authorization-verb-only latency (the paper-relevant axis).
  uint64_t authorize_p50_ns = 0;
  uint64_t authorize_p99_ns = 0;
  uint64_t authorize_p999_ns = 0;
  // Outcome counters.
  uint64_t allows = 0;
  uint64_t denies = 0;
  uint64_t op_errors = 0;  // Unexpected failures (setgoal/churn plumbing).
  uint64_t authorize_ops = 0;
  uint64_t read_ops = 0;
  uint64_t write_ops = 0;
  uint64_t setgoal_ops = 0;
  uint64_t churn_ops = 0;
  bool audited = false;
  TraceAuditor::Report audit;  // Zero-valued when !audited.

  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;
};

class WorkloadDriver {
 public:
  explicit WorkloadDriver(WorkloadConfig config) : config_(std::move(config)) {}

  // Boots, runs, audits, reports. Restores global trace/mutation-log
  // enablement to off on every path.
  Result<WorkloadReport> Run();

  const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
};

}  // namespace nexus::harness

#endif  // NEXUS_HARNESS_WORKLOAD_H_
