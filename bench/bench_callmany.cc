// CallMany batching benchmark: measure the cost of the kernel boundary
// crossing by sweeping batch size x interposition x payload size x thread
// count against a guarded (per-message-authorizing) echo server, and emit
// BENCH_callmany.json.
//
// batch=1 is the serial baseline (one Kernel::Call per message — one
// crossing, one port snapshot, one interceptor-chain snapshot, one trace
// scope, one global-counter bump each). batch>1 routes the same messages
// through ONE Kernel::CallMany crossing, which pays each of those shared-
// state touches once per batch; the interceptor chain still runs per
// message, so verdicts are identical either way (kernel_test pins that).
// The replies alias a preallocated server arena via Payload::Slice, so
// payload size stresses the zero-copy path, not memcpy throughput.
//
// The multi-thread rows are the headline: per-call submission pays the
// port-shard lock, interceptor snapshot, metrics counter, and trace-id
// atomics on SHARED cachelines once per message, so under concurrency the
// serial path is bounded by synchronization while the batched path
// amortizes it 256x. That is the claim the CI gate checks.
//
// Like bench_workload, this binary measures itself (the sweep is a grid,
// not a google-benchmark registry) and ignores --benchmark_* flags. Env:
//   NEXUS_CALLMANY_OUT      output path (default BENCH_callmany.json)
//   NEXUS_CALLMANY_MSGS     messages per thread per config (default 400000)
//   NEXUS_CALLMANY_THREADS  contended-row thread count (default 4)
//   NEXUS_CALLMANY_REPEATS  runs per config, best kept (default 3)
//   NEXUS_CALLMANY_GATE_PAIRS  paired gate reps, median kept (default 5)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "kernel/ipc.h"
#include "kernel/kernel.h"
#include "kernel/payload.h"

namespace {

using nexus::Bytes;
using nexus::kernel::IpcContext;
using nexus::kernel::IpcMessage;
using nexus::kernel::IpcReply;
using nexus::kernel::Payload;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

// Cacheable-allow engine: after the first miss per tuple every decision
// is a decision-cache hit, so the serial path's authorization cost is the
// cache probe itself — the steady state of a guarded production server.
class CacheableAllowEngine : public nexus::kernel::AuthorizationEngine {
 public:
  nexus::kernel::AuthzDecision Authorize(const nexus::kernel::AuthzRequest&) override {
    return nexus::kernel::AuthzDecision::Allow(/*cacheable=*/true);
  }
};

// The guarded echo server: authorizes every message (the way the
// fileserver and the workload object server do), then replies with a
// slice of a fixed backing arena — one refcount bump, no payload copy.
// Serial submission pays one Kernel::Authorize per message; batched
// submission routes the whole batch through ONE Kernel::AuthorizeBatch,
// where a run of identical tuples collapses to a single probe.
class GuardedSliceServer : public nexus::kernel::PortHandler {
 public:
  GuardedSliceServer(nexus::kernel::Kernel* kernel, nexus::kernel::OpId op,
                     nexus::kernel::ObjectId object, size_t payload)
      : kernel_(kernel),
        op_(op),
        object_(object),
        arena_(std::make_shared<Bytes>(payload > 0 ? payload : 1, 0x5a)),
        payload_(payload) {}

  IpcReply Handle(const IpcContext& context, const IpcMessage&) override {
    nexus::Status verdict =
        kernel_->Authorize(nexus::kernel::AuthzRequest{context.caller, op_, object_});
    if (!verdict.ok()) {
      return IpcReply(std::move(verdict));
    }
    IpcReply reply;
    reply.data = Payload::Slice(arena_, 0, payload_);
    return reply;
  }

  void HandleMany(const IpcContext& context,
                  std::span<const IpcMessage> messages,
                  std::span<IpcReply> replies) override {
    std::vector<nexus::kernel::AuthzRequest> requests(
        messages.size(), nexus::kernel::AuthzRequest{context.caller, op_, object_});
    std::vector<nexus::Status> verdicts = kernel_->AuthorizeBatch(requests);
    for (size_t i = 0; i < messages.size(); ++i) {
      if (!verdicts[i].ok()) {
        replies[i] = IpcReply(std::move(verdicts[i]));
        continue;
      }
      replies[i].data = Payload::Slice(arena_, 0, payload_);
    }
  }

 private:
  nexus::kernel::Kernel* kernel_;
  nexus::kernel::OpId op_;
  nexus::kernel::ObjectId object_;
  std::shared_ptr<Bytes> arena_;
  size_t payload_;
};

class PassThroughMonitor : public nexus::kernel::Interceptor {
 public:
  nexus::kernel::InterposeVerdict OnCall(const IpcContext&, IpcMessage&) override {
    return nexus::kernel::InterposeVerdict::kAllow;
  }
  nexus::kernel::InterposeVerdict OnReply(const IpcContext&, const IpcMessage&,
                                          IpcReply&) override {
    return nexus::kernel::InterposeVerdict::kAllow;
  }
};

struct RunResult {
  size_t threads = 0;
  size_t batch = 0;
  bool interposed = false;
  size_t payload = 0;
  double msgs_per_sec = 0.0;
  double ns_per_msg = 0.0;
};

RunResult RunConfig(size_t threads, size_t batch, bool interposed, size_t payload,
                    uint64_t msgs_per_thread) {
  nexus::kernel::Kernel kernel;
  CacheableAllowEngine engine;
  kernel.set_engine(&engine);
  nexus::kernel::ProcessId server = *kernel.CreateProcess("bench-server", Bytes{'s'});
  nexus::kernel::PortId port = *kernel.CreatePort(server);
  GuardedSliceServer handler(&kernel, nexus::kernel::InternOp("bench-echo"),
                             *kernel.InternObjectCharged(server, "bench-object"), payload);
  kernel.BindHandler(port, &handler);
  PassThroughMonitor monitor;
  if (interposed) {
    if (!kernel.Interpose(server, port, &monitor).ok()) {
      std::abort();
    }
  }
  std::vector<nexus::kernel::ProcessId> clients;
  for (size_t t = 0; t < threads; ++t) {
    clients.push_back(*kernel.CreateProcess("bench-client", Bytes{'c'}));
  }

  const uint64_t rounds = msgs_per_thread / batch;
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<uint64_t> failures{0};

  auto worker = [&](size_t t) {
    std::vector<IpcMessage> messages(batch);
    for (IpcMessage& message : messages) {
      message = IpcMessage::Of("bench-echo");
      message.AddU64(7);
    }
    std::vector<IpcReply> replies(batch);
    // Warm-up: interning, first-touch locks, page faults on the arena.
    for (int i = 0; i < 100; ++i) {
      if (batch == 1) {
        replies[0] = kernel.Call(clients[t], port, messages[0]);
      } else {
        kernel.CallMany(clients[t], port, messages, replies);
      }
      if (!replies[0].status.ok()) {
        failures.fetch_add(1);
        return;
      }
    }
    ready.fetch_add(1);
    while (!go.load(std::memory_order_acquire)) {
    }
    if (batch == 1) {
      for (uint64_t i = 0; i < rounds; ++i) {
        replies[0] = kernel.Call(clients[t], port, messages[0]);
      }
    } else {
      for (uint64_t i = 0; i < rounds; ++i) {
        kernel.CallMany(clients[t], port, messages, replies);
      }
    }
  };

  std::vector<std::thread> pool;
  for (size_t t = 0; t < threads; ++t) {
    pool.emplace_back(worker, t);
  }
  while (ready.load() + failures.load() < threads) {
  }
  if (failures.load() != 0) {
    std::fprintf(stderr, "FAIL threads=%zu batch=%zu: call failed in warm-up\n", threads,
                 batch);
    std::abort();
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& th : pool) {
    th.join();
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count();
  const double msgs = static_cast<double>(rounds * batch * threads);

  RunResult result;
  result.threads = threads;
  result.batch = batch;
  result.interposed = interposed;
  result.payload = payload;
  result.msgs_per_sec = msgs / seconds;
  result.ns_per_msg = seconds * 1e9 / msgs;
  return result;
}

}  // namespace

int main() {
  const char* out_env = std::getenv("NEXUS_CALLMANY_OUT");
  const std::string out_path =
      (out_env != nullptr && *out_env != '\0') ? out_env : "BENCH_callmany.json";
  const uint64_t msgs_per_thread = EnvOr("NEXUS_CALLMANY_MSGS", 400'000);
  const size_t contended_threads =
      static_cast<size_t>(EnvOr("NEXUS_CALLMANY_THREADS", 4));
  const uint64_t repeats = EnvOr("NEXUS_CALLMANY_REPEATS", 3);

  const size_t thread_counts[] = {1, contended_threads};
  const size_t batches[] = {1, 8, 64, 256};
  const size_t payloads[] = {0, 4096, 64 * 1024};

  std::vector<RunResult> results;
  for (size_t threads : thread_counts) {
    for (size_t payload : payloads) {
      for (int interposed = 0; interposed < 2; ++interposed) {
        for (size_t batch : batches) {
          // Best-of-N: a self-measuring loop on a shared machine sees
          // scheduling noise; the fastest run is the least-perturbed one.
          RunResult r;
          for (uint64_t rep = 0; rep < repeats; ++rep) {
            RunResult attempt =
                RunConfig(threads, batch, interposed != 0, payload, msgs_per_thread);
            if (attempt.msgs_per_sec > r.msgs_per_sec) {
              r = attempt;
            }
          }
          std::printf(
              "CALLMANY threads=%zu batch=%-3zu interposed=%d payload=%-6zu  "
              "%12.0f msgs/s  %8.1f ns/msg\n",
              r.threads, r.batch, r.interposed ? 1 : 0, r.payload, r.msgs_per_sec,
              r.ns_per_msg);
          results.push_back(r);
        }
      }
    }
  }

  // The headline ratio CI gates on: contended interposed batch-256
  // throughput vs the contended interposed per-call baseline, smallest
  // payload (pure dispatch). Measured as PAIRED runs — each repetition
  // times batch-1 and batch-256 back to back, and the gate takes the
  // median of the per-pair ratios. Comparing rows from distant points of
  // the sweep confounds the ratio with machine drift; pairing cancels it.
  const uint64_t gate_pairs = EnvOr("NEXUS_CALLMANY_GATE_PAIRS", 5);
  std::vector<double> ratios;
  for (uint64_t rep = 0; rep < gate_pairs; ++rep) {
    RunResult serial = RunConfig(contended_threads, 1, true, 0, msgs_per_thread);
    RunResult batched = RunConfig(contended_threads, 256, true, 0, msgs_per_thread);
    ratios.push_back(batched.msgs_per_sec / serial.msgs_per_sec);
    std::printf("CALLMANY gate pair %llu: %.2fx\n",
                static_cast<unsigned long long>(rep + 1), ratios.back());
  }
  std::sort(ratios.begin(), ratios.end());
  const double speedup = ratios.empty() ? 0.0 : ratios[ratios.size() / 2];
  std::printf("CALLMANY speedup_256_vs_1_interposed=%.2fx (threads=%zu, median of %llu pairs)\n",
              speedup, contended_threads, static_cast<unsigned long long>(gate_pairs));

  std::string json = "{\n  \"bench\": \"callmany\",\n  \"msgs_per_thread_per_config\": " +
                     std::to_string(msgs_per_thread) + ",\n  \"contended_threads\": " +
                     std::to_string(contended_threads) +
                     ",\n  \"speedup_256_vs_1_interposed\": " + std::to_string(speedup) +
                     ",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"threads\": %zu, \"batch\": %zu, \"interposed\": %s, "
                  "\"payload\": %zu, \"msgs_per_sec\": %.0f, \"ns_per_msg\": %.1f}%s\n",
                  r.threads, r.batch, r.interposed ? "true" : "false", r.payload,
                  r.msgs_per_sec, r.ns_per_msg, i + 1 < results.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
