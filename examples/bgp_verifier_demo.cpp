// The BGP protocol verifier (§4): synthetic trust around a legacy speaker.
#include <cstdio>

#include "apps/bgp_verifier.h"

using namespace nexus;
using apps::BgpMessage;

int main() {
  apps::BgpVerifier verifier(/*self_as=*/65001, /*owned=*/{"10.10.0.0/16"});

  // Peers advertise routes to the monitored speaker.
  verifier.OnInbound({BgpMessage::Type::kAdvertise, "192.168.0.0/16", {65002, 65010, 65020}});
  verifier.OnInbound({BgpMessage::Type::kAdvertise, "172.16.0.0/12", {65003, 65030}});

  auto show = [&](const char* what, const BgpMessage& m) {
    Status verdict = verifier.CheckOutbound(m);
    std::printf("%-46s -> %s\n", what, verdict.ToString().c_str());
  };

  std::printf("speaker AS65001, owns 10.10.0.0/16\n");
  show("originate owned 10.10.0.0/16",
       {BgpMessage::Type::kAdvertise, "10.10.0.0/16", {65001}});
  show("originate UNOWNED 8.8.0.0/16",
       {BgpMessage::Type::kAdvertise, "8.8.0.0/16", {65001}});
  show("forward 192.168/16 with honest 4-hop path",
       {BgpMessage::Type::kAdvertise, "192.168.0.0/16", {65001, 65002, 65010, 65020}});
  show("forward 192.168/16 SHORTENED to 2 hops",
       {BgpMessage::Type::kAdvertise, "192.168.0.0/16", {65001, 65020}});
  show("advertise never-received 1.2.0.0/16",
       {BgpMessage::Type::kAdvertise, "1.2.0.0/16", {65001, 65999}});
  show("withdraw previously advertised 10.10.0.0/16",
       {BgpMessage::Type::kWithdraw, "10.10.0.0/16", {}});
  show("withdraw route never advertised",
       {BgpMessage::Type::kWithdraw, "3.3.0.0/16", {}});

  std::printf("verifier: %llu passed, %llu blocked\n",
              static_cast<unsigned long long>(verifier.stats().passed),
              static_cast<unsigned long long>(verifier.stats().blocked));
  return 0;
}
