#include "services/ddrm.h"

#include "nal/checker.h"
#include "nal/proof.h"

namespace nexus::services {

namespace {

nal::Formula AllowsFormula(const std::string& operation) {
  return nal::FormulaNode::Says(
      nal::Principal("Policy"),
      nal::FormulaNode::Pred("allows", {nal::Term::Symbol(operation)}));
}

}  // namespace

DeviceDriverMonitor::DeviceDriverMonitor(DdrmPolicy policy, bool cache_decisions)
    : policy_(std::move(policy)), cache_decisions_(cache_decisions) {
  for (const std::string& operation : policy_.allowed_operations) {
    policy_credentials_.push_back(AllowsFormula(operation));
  }
}

bool DeviceDriverMonitor::Evaluate(const kernel::IpcMessage& message) {
  // The policy question "may this driver invoke <op>?" is discharged as a
  // proof check against the policy labels — the guard machinery a Nexus
  // reference monitor really runs. The memo above caches its outcome.
  nal::Formula goal = AllowsFormula(message.operation);
  nal::CheckResult checked =
      nal::CheckProof(nal::proof::Premise(goal), goal, policy_credentials_);
  if (!checked.status.ok()) {
    return false;
  }
  if (!policy_.allow_page_content_access &&
      (message.operation == "read_page" || message.operation == "write_page")) {
    return false;
  }
  if (message.operation == "ipc_send" && !policy_.allowed_ipc_targets.empty()) {
    if (message.args.empty()) {
      return false;
    }
    kernel::PortId target = static_cast<kernel::PortId>(std::stoull(message.args[0]));
    if (!policy_.allowed_ipc_targets.contains(target)) {
      return false;
    }
  }
  return true;
}

kernel::InterposeVerdict DeviceDriverMonitor::OnCall(const kernel::IpcContext& context,
                                                     kernel::IpcMessage& message) {
  (void)context;
  bool allowed;
  if (cache_decisions_) {
    std::string key = message.operation;
    if (message.operation == "ipc_send" && !message.args.empty()) {
      key += "\x1f" + message.args[0];
    }
    auto it = decision_memo_.find(key);
    if (it != decision_memo_.end()) {
      allowed = it->second;
    } else {
      allowed = Evaluate(message);
      decision_memo_[key] = allowed;
    }
  } else {
    allowed = Evaluate(message);
  }
  if (allowed) {
    ++stats_.allowed;
    return kernel::InterposeVerdict::kAllow;
  }
  ++stats_.denied;
  return kernel::InterposeVerdict::kDeny;
}

Status DeviceDriverMonitor::AttestDriver(core::Engine* engine, kernel::ProcessId self,
                                         kernel::ProcessId driver) const {
  std::string driver_path = kernel::Kernel::ProcPath(driver);
  Result<core::LabelHandle> mediated = engine->SayFormula(
      self, nal::FormulaNode::Pred("mediated", {nal::Term::Symbol(driver_path)}));
  if (!mediated.ok()) {
    return mediated.status();
  }
  if (!policy_.allow_page_content_access) {
    Result<core::LabelHandle> no_read = engine->SayFormula(
        self, nal::FormulaNode::Not(
                  nal::FormulaNode::Pred("canReadPages", {nal::Term::Symbol(driver_path)})));
    if (!no_read.ok()) {
      return no_read.status();
    }
  }
  return OkStatus();
}

}  // namespace nexus::services
