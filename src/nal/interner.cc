#include "nal/interner.h"

namespace nexus::nal {

uint64_t HashMix(uint64_t h, uint64_t v) {
  // splitmix64-style combiner: cheap, and good enough that the interner's
  // Equals() fallback is exercised only by genuine collisions.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

uint64_t HashBytes(std::string_view s, uint64_t seed) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

uint64_t HashPrincipal(const Principal& p) {
  uint64_t h = HashBytes(p.base(), 0x5bd1e995);
  for (const std::string& tag : p.path()) {
    h = HashMix(h, HashBytes(tag, 0x2545f491));
  }
  return h;
}

// splitmix64 finalizer over an address (pointer-stripe selection).
inline uint64_t Mix64Pointer(uintptr_t p) {
  uint64_t x = static_cast<uint64_t>(p) >> 4;  // Drop allocation alignment.
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashTerm(const Term& t) {
  // Term equality puns a symbol with a single-component principal of the
  // same name (see Term::operator==); both must land on the symbol hash.
  constexpr uint64_t kSymbolSeed = 0x104;
  uint64_t h = static_cast<uint64_t>(t.kind()) + 0x100;
  switch (t.kind()) {
    case TermKind::kInt:
      return HashMix(h, static_cast<uint64_t>(t.int_value()));
    case TermKind::kString:
    case TermKind::kVariable:
      return HashMix(h, HashBytes(t.text(), h));
    case TermKind::kSymbol:
      return HashMix(kSymbolSeed, HashBytes(t.text(), kSymbolSeed));
    case TermKind::kPrincipal:
      if (t.principal().path().empty()) {
        return HashMix(kSymbolSeed, HashBytes(t.principal().base(), kSymbolSeed));
      }
      return HashMix(h, HashPrincipal(t.principal()));
  }
  return h;
}

}  // namespace

uint64_t StructuralHash(const Formula& f) {
  if (f == nullptr) {
    return 0;
  }
  uint64_t h = static_cast<uint64_t>(f->kind()) + 0x9000;
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return HashMix(h, 1);
    case FormulaKind::kPred:
      h = HashMix(h, HashBytes(f->pred_name(), h));
      for (const Term& t : f->args()) {
        h = HashMix(h, HashTerm(t));
      }
      return h;
    case FormulaKind::kCompare:
      h = HashMix(h, static_cast<uint64_t>(f->compare_op()));
      h = HashMix(h, HashTerm(f->lhs()));
      return HashMix(h, HashTerm(f->rhs()));
    case FormulaKind::kSays:
      h = HashMix(h, HashPrincipal(f->speaker()));
      return HashMix(h, StructuralHash(f->child1()));
    case FormulaKind::kSpeaksFor:
      h = HashMix(h, HashPrincipal(f->delegator()));
      h = HashMix(h, HashPrincipal(f->delegatee()));
      if (f->on_scope().has_value()) {
        h = HashMix(h, HashBytes(*f->on_scope(), h));
      }
      return h;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
      h = HashMix(h, StructuralHash(f->child1()));
      return HashMix(h, StructuralHash(f->child2()));
    case FormulaKind::kNot:
      return HashMix(h, StructuralHash(f->child1()));
  }
  return h;
}

FormulaId Interner::Intern(const Formula& f) {
  if (f == nullptr) {
    return kInvalidFormulaId;
  }
  // Pointer fast path: canonical nodes (label/goal stores hold them) cost
  // one shared-locked probe, no structural hash.
  PointerStripe& pstripe =
      pointer_stripes_[Mix64Pointer(reinterpret_cast<uintptr_t>(f.get())) & kStripeMask];
  {
    std::shared_lock<std::shared_mutex> lock(pstripe.mu);
    auto by_ptr = pstripe.by_pointer.find(f.get());
    if (by_ptr != pstripe.by_pointer.end()) {
      return by_ptr->second;
    }
  }
  uint64_t hash = StructuralHash(f);
  uint64_t stripe_index = hash & kStripeMask;
  HashStripe& stripe = hash_stripes_[stripe_index];
  // An alias of an already-interned formula (freshly parsed per request,
  // say) is the common case: probe under the reader lock first so
  // concurrent lookups in one stripe never serialize.
  {
    std::shared_lock<std::shared_mutex> lock(stripe.mu);
    auto bucket_it = stripe.by_hash.find(hash);
    if (bucket_it != stripe.by_hash.end()) {
      for (FormulaId existing : bucket_it->second) {
        if (Equals(stripe.formulas[(existing >> kStripeBits) - 1], f)) {
          // Deliberately NOT memoized by pointer: `f` is an alias the
          // interner does not keep alive, and a freed node's address can
          // be reused by a different formula later. Only canonical nodes
          // (owned by the stripe, immortal) are safe pointer-map keys.
          return existing;
        }
      }
    }
  }
  FormulaId id = kInvalidFormulaId;
  {
    std::unique_lock<std::shared_mutex> lock(stripe.mu);
    std::vector<FormulaId>& bucket = stripe.by_hash[hash];
    for (FormulaId existing : bucket) {
      if (Equals(stripe.formulas[(existing >> kStripeBits) - 1], f)) {
        return existing;  // Raced with another interner; theirs wins.
      }
    }
    stripe.formulas.push_back(f);
    id = EncodeId(stripe_index, stripe.formulas.size() - 1);
    bucket.push_back(id);
  }
  // f is now canonical and owned forever; memoize its address.
  std::unique_lock<std::shared_mutex> lock(pstripe.mu);
  pstripe.by_pointer[f.get()] = id;
  return id;
}

Formula Interner::Canonical(const Formula& f) { return Resolve(Intern(f)); }

Formula Interner::Resolve(FormulaId id) const {
  if (id == kInvalidFormulaId) {
    return nullptr;
  }
  const HashStripe& stripe = hash_stripes_[id & kStripeMask];
  uint64_t local = (id >> kStripeBits) - 1;
  std::shared_lock<std::shared_mutex> lock(stripe.mu);
  if (local >= stripe.formulas.size()) {
    return nullptr;
  }
  return stripe.formulas[local];
}

size_t Interner::size() const {
  size_t total = 0;
  for (const HashStripe& stripe : hash_stripes_) {
    std::shared_lock<std::shared_mutex> lock(stripe.mu);
    total += stripe.formulas.size();
  }
  return total;
}

Interner& Interner::Global() {
  static Interner* interner = new Interner();
  return *interner;
}

}  // namespace nexus::nal
