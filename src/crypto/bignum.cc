#include "crypto/bignum.h"

#include <algorithm>
#include <cassert>

namespace nexus::crypto {

namespace {

// Small primes for trial division before Miller-Rabin.
constexpr uint32_t kSmallPrimes[] = {
    3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,  53,  59,  61,
    67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239,
    241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347};

}  // namespace

BigNum::BigNum(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value));
    uint32_t hi = static_cast<uint32_t>(value >> 32);
    if (hi != 0) {
      limbs_.push_back(hi);
    }
  }
}

void BigNum::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

BigNum BigNum::FromBytes(ByteView bytes) {
  BigNum out;
  for (uint8_t b : bytes) {
    out = out.ShiftLeft(8);
    if (b != 0 || !out.limbs_.empty()) {
      if (out.limbs_.empty()) {
        out.limbs_.push_back(b);
      } else {
        out.limbs_[0] |= b;
      }
    }
  }
  out.Trim();
  return out;
}

Bytes BigNum::ToBytes() const {
  if (IsZero()) {
    return Bytes{0};
  }
  Bytes out;
  int bytes = (BitLength() + 7) / 8;
  out.resize(static_cast<size_t>(bytes));
  for (int i = 0; i < bytes; ++i) {
    size_t limb = static_cast<size_t>(i) / 4;
    int shift = (i % 4) * 8;
    out[static_cast<size_t>(bytes - 1 - i)] =
        static_cast<uint8_t>((limbs_[limb] >> shift) & 0xff);
  }
  return out;
}

BigNum BigNum::RandomWithBits(Rng& rng, int bits) {
  assert(bits > 0);
  BigNum out;
  int limbs = (bits + 31) / 32;
  out.limbs_.resize(static_cast<size_t>(limbs));
  for (auto& limb : out.limbs_) {
    limb = static_cast<uint32_t>(rng.NextU64());
  }
  int top_bits = bits - (limbs - 1) * 32;  // 1..32
  uint32_t mask = (top_bits == 32) ? 0xffffffffu : ((1u << top_bits) - 1);
  out.limbs_.back() &= mask;
  out.limbs_.back() |= 1u << (top_bits - 1);  // Force exact bit length.
  return out;
}

BigNum BigNum::RandomBelow(Rng& rng, const BigNum& bound) {
  // Uniform in [2, bound-2]; callers guarantee bound > 4.
  BigNum range = Sub(bound, BigNum(4));  // [0, bound-5] + 2 => [2, bound-3]
  int bits = range.BitLength();
  for (;;) {
    BigNum candidate;
    int limbs = (bits + 31) / 32;
    candidate.limbs_.resize(static_cast<size_t>(limbs));
    for (auto& limb : candidate.limbs_) {
      limb = static_cast<uint32_t>(rng.NextU64());
    }
    int top_bits = bits - (limbs - 1) * 32;
    uint32_t mask = (top_bits == 32) ? 0xffffffffu : ((1u << top_bits) - 1);
    candidate.limbs_.back() &= mask;
    candidate.Trim();
    if (candidate <= range) {
      return Add(candidate, BigNum(2));
    }
  }
}

int BigNum::BitLength() const {
  if (limbs_.empty()) {
    return 0;
  }
  uint32_t top = limbs_.back();
  int bits = static_cast<int>(limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigNum::Bit(int index) const {
  size_t limb = static_cast<size_t>(index) / 32;
  if (limb >= limbs_.size()) {
    return false;
  }
  return (limbs_[limb] >> (index % 32)) & 1;
}

int BigNum::Compare(const BigNum& a, const BigNum& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigNum BigNum::Add(const BigNum& a, const BigNum& b) {
  BigNum out;
  size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.limbs_.size()) {
      sum += a.limbs_[i];
    }
    if (i < b.limbs_.size()) {
      sum += b.limbs_[i];
    }
    out.limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  out.limbs_[n] = static_cast<uint32_t>(carry);
  out.Trim();
  return out;
}

BigNum BigNum::Sub(const BigNum& a, const BigNum& b) {
  assert(Compare(a, b) >= 0);
  BigNum out;
  out.limbs_.resize(a.limbs_.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) {
      diff -= b.limbs_[i];
    }
    if (diff < 0) {
      diff += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<uint32_t>(diff);
  }
  out.Trim();
  return out;
}

BigNum BigNum::Mul(const BigNum& a, const BigNum& b) {
  if (a.IsZero() || b.IsZero()) {
    return BigNum();
  }
  BigNum out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.limbs_.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(a.limbs_[i]) * b.limbs_[j] + out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    out.limbs_[i + b.limbs_.size()] += static_cast<uint32_t>(carry);
  }
  out.Trim();
  return out;
}

BigNum BigNum::ShiftLeft(int bits) const {
  if (IsZero() || bits == 0) {
    BigNum copy = *this;
    return copy;
  }
  int limb_shift = bits / 32;
  int bit_shift = bits % 32;
  BigNum out;
  out.limbs_.assign(limbs_.size() + static_cast<size_t>(limb_shift) + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + static_cast<size_t>(limb_shift)] |= static_cast<uint32_t>(v);
    out.limbs_[i + static_cast<size_t>(limb_shift) + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Trim();
  return out;
}

BigNum BigNum::ShiftRight(int bits) const {
  if (IsZero() || bits == 0) {
    BigNum copy = *this;
    return copy;
  }
  size_t limb_shift = static_cast<size_t>(bits) / 32;
  int bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) {
    return BigNum();
  }
  BigNum out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Trim();
  return out;
}

void BigNum::DivMod(const BigNum& dividend, const BigNum& divisor, BigNum& quotient,
                    BigNum& remainder) {
  assert(!divisor.IsZero());
  if (Compare(dividend, divisor) < 0) {
    quotient = BigNum();
    remainder = dividend;
    return;
  }
  if (divisor.limbs_.size() == 1) {
    // Single-limb fast path.
    uint64_t d = divisor.limbs_[0];
    BigNum q;
    q.limbs_.assign(dividend.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = dividend.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | dividend.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    q.Trim();
    quotient = std::move(q);
    remainder = BigNum(rem);
    return;
  }

  // Knuth Algorithm D. Normalize so the divisor's top limb has its high bit
  // set.
  int shift = 32 - (divisor.BitLength() % 32);
  if (shift == 32) {
    shift = 0;
  }
  BigNum u = dividend.ShiftLeft(shift);
  BigNum v = divisor.ShiftLeft(shift);
  size_t n = v.limbs_.size();
  size_t m = u.limbs_.size() - n;
  u.limbs_.push_back(0);  // u has m+n+1 limbs.

  BigNum q;
  q.limbs_.assign(m + 1, 0);

  uint64_t v_top = v.limbs_[n - 1];
  uint64_t v_next = v.limbs_[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    uint64_t numerator = (static_cast<uint64_t>(u.limbs_[j + n]) << 32) | u.limbs_[j + n - 1];
    uint64_t qhat = numerator / v_top;
    uint64_t rhat = numerator % v_top;
    while (qhat >= (1ULL << 32) ||
           qhat * v_next > ((rhat << 32) | u.limbs_[j + n - 2])) {
      --qhat;
      rhat += v_top;
      if (rhat >= (1ULL << 32)) {
        break;
      }
    }

    // Multiply-and-subtract: u[j..j+n] -= qhat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = qhat * v.limbs_[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u.limbs_[i + j]) -
                     static_cast<int64_t>(product & 0xffffffffu) - borrow;
      if (diff < 0) {
        diff += (1LL << 32);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u.limbs_[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(u.limbs_[j + n]) - static_cast<int64_t>(carry) - borrow;
    bool negative = diff < 0;
    u.limbs_[j + n] = static_cast<uint32_t>(diff);

    if (negative) {
      // qhat was one too large; add back.
      --qhat;
      uint64_t add_carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u.limbs_[i + j]) + v.limbs_[i] + add_carry;
        u.limbs_[i + j] = static_cast<uint32_t>(sum);
        add_carry = sum >> 32;
      }
      u.limbs_[j + n] = static_cast<uint32_t>(u.limbs_[j + n] + add_carry);
    }
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }

  q.Trim();
  quotient = std::move(q);
  u.limbs_.resize(n);
  u.Trim();
  remainder = u.ShiftRight(shift);
}

BigNum BigNum::Mod(const BigNum& a, const BigNum& modulus) {
  BigNum q, r;
  DivMod(a, modulus, q, r);
  return r;
}

BigNum BigNum::ModMul(const BigNum& a, const BigNum& b, const BigNum& modulus) {
  return Mod(Mul(a, b), modulus);
}

BigNum BigNum::ModExp(const BigNum& base, const BigNum& exponent, const BigNum& modulus) {
  BigNum result(1);
  BigNum acc = Mod(base, modulus);
  int bits = exponent.BitLength();
  for (int i = 0; i < bits; ++i) {
    if (exponent.Bit(i)) {
      result = ModMul(result, acc, modulus);
    }
    acc = ModMul(acc, acc, modulus);
  }
  return result;
}

BigNum BigNum::Gcd(const BigNum& a, const BigNum& b) {
  BigNum x = a;
  BigNum y = b;
  while (!y.IsZero()) {
    BigNum r = Mod(x, y);
    x = y;
    y = r;
  }
  return x;
}

BigNum BigNum::ModInverse(const BigNum& a, const BigNum& modulus) {
  // Extended Euclid tracking coefficients as (sign, magnitude) pairs.
  BigNum old_r = Mod(a, modulus);
  BigNum r = modulus;
  BigNum old_s(1);
  BigNum s;
  bool old_s_neg = false;
  bool s_neg = false;

  // Invariant: old_s * a ≡ old_r (mod modulus).
  while (!r.IsZero()) {
    BigNum q, rem;
    DivMod(old_r, r, q, rem);

    // new_s = old_s - q * s, with signs.
    BigNum qs = Mul(q, s);
    BigNum new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      if (Compare(old_s, qs) >= 0) {
        new_s = Sub(old_s, qs);
        new_s_neg = old_s_neg;
      } else {
        new_s = Sub(qs, old_s);
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = Add(old_s, qs);
      new_s_neg = old_s_neg;
    }

    old_r = r;
    r = rem;
    old_s = s;
    old_s_neg = s_neg;
    s = new_s;
    s_neg = new_s_neg;
  }

  if (Compare(old_r, BigNum(1)) != 0) {
    return BigNum();  // Not invertible.
  }
  BigNum inv = Mod(old_s, modulus);
  if (old_s_neg && !inv.IsZero()) {
    inv = Sub(modulus, inv);
  }
  return inv;
}

uint32_t BigNum::ModU32(uint32_t divisor) const {
  uint64_t rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    rem = ((rem << 32) | limbs_[i]) % divisor;
  }
  return static_cast<uint32_t>(rem);
}

std::string BigNum::ToHex() const {
  if (IsZero()) {
    return "0";
  }
  return HexEncode(ToBytes());
}

bool IsProbablePrime(const BigNum& candidate, Rng& rng, int rounds) {
  if (BigNum::Compare(candidate, BigNum(4)) < 0) {
    return BigNum::Compare(candidate, BigNum(2)) == 0 ||
           BigNum::Compare(candidate, BigNum(3)) == 0;
  }
  if (!candidate.IsOdd()) {
    return false;
  }
  for (uint32_t p : kSmallPrimes) {
    if (candidate.ModU32(p) == 0) {
      return BigNum::Compare(candidate, BigNum(p)) == 0;
    }
  }

  // Write candidate-1 = d * 2^r with d odd.
  BigNum minus_one = BigNum::Sub(candidate, BigNum(1));
  BigNum d = minus_one;
  int r = 0;
  while (!d.IsOdd()) {
    d = d.ShiftRight(1);
    ++r;
  }

  for (int round = 0; round < rounds; ++round) {
    BigNum witness = BigNum::RandomBelow(rng, candidate);
    BigNum x = BigNum::ModExp(witness, d, candidate);
    if (BigNum::Compare(x, BigNum(1)) == 0 || BigNum::Compare(x, minus_one) == 0) {
      continue;
    }
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = BigNum::ModMul(x, x, candidate);
      if (BigNum::Compare(x, minus_one) == 0) {
        composite = false;
        break;
      }
    }
    if (composite) {
      return false;
    }
  }
  return true;
}

BigNum GeneratePrime(Rng& rng, int bits) {
  for (;;) {
    BigNum candidate = BigNum::RandomWithBits(rng, bits);
    if (!candidate.IsOdd()) {
      candidate = BigNum::Add(candidate, BigNum(1));
    }
    if (IsProbablePrime(candidate, rng)) {
      return candidate;
    }
  }
}

}  // namespace nexus::crypto
