// The authorization engine: the core-layer half of Figure 1.
//
// Implements the kernel's AuthorizationEngine upcall interface. On a
// decision-cache miss the kernel lands here; the engine locates the goal
// formula, assembles the subject's credentials (its labelstore, the system
// labelstore, and object-scoped auxiliary labels), retrieves the proof the
// subject pre-submitted for this access-control tuple, and dispatches to
// the designated guard — the kernel-designated default guard for kernel
// resources, or any guard process the goal names (§2.5, §2.6).
#ifndef NEXUS_CORE_ENGINE_H_
#define NEXUS_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/goalstore.h"
#include "core/guard.h"
#include "core/labelstore.h"
#include "kernel/kernel.h"
#include "nal/proof.h"

namespace nexus::core {

class Engine : public kernel::AuthorizationEngine {
 public:
  Engine(kernel::Kernel* kernel, Guard* default_guard);

  // ---------------------------------------------- kernel upcall interface
  Verdict Authorize(kernel::ProcessId subject, const std::string& operation,
                    const std::string& object) override;

  // ------------------------------------------------------------- Labels
  // The `say` system call: records `<subject's principal> says <statement>`
  // in the subject's labelstore. The statement text is parsed as NAL.
  Result<LabelHandle> Say(kernel::ProcessId speaker, const std::string& statement_text);
  Result<LabelHandle> SayFormula(kernel::ProcessId speaker, const nal::Formula& statement);
  // System-issued labels (kernel bindings, service attestations). These
  // live in the system labelstore visible to every guard evaluation.
  LabelHandle SayAs(const nal::Principal& speaker, const nal::Formula& statement);
  LabelStore& StoreFor(kernel::ProcessId pid) { return stores_[pid]; }
  LabelStore& SystemStore() { return system_store_; }
  // Auxiliary labels the resource owner attaches to one object (§2.5).
  void AddObjectLabel(const std::string& object, const nal::Formula& label);

  // -------------------------------------------------------------- Goals
  // The `setgoal` system call; itself a guarded operation on the object.
  Status SetGoal(kernel::ProcessId caller, const std::string& operation,
                 const std::string& object, nal::Formula goal, kernel::PortId guard_port = 0);
  Status ClearGoal(kernel::ProcessId caller, const std::string& operation,
                   const std::string& object);
  const GoalStore& goals() const { return goals_; }

  // -------------------------------------------------------------- Proofs
  // Pre-submits the proof to use for an access-control tuple (the paper's
  // call(sbj, op, obj, proof, labels) carries the proof; pre-submission
  // plus the decision cache is how repeated calls stay cheap).
  Status SetProof(kernel::ProcessId subject, const std::string& operation,
                  const std::string& object, nal::Proof proof);
  Status ClearProof(kernel::ProcessId subject, const std::string& operation,
                    const std::string& object);

  // ------------------------------------------------------------- Objects
  void RegisterObject(const std::string& object, kernel::ProcessId owner,
                      kernel::ProcessId manager);
  Status TransferOwnership(kernel::ProcessId caller, const std::string& object,
                           kernel::ProcessId new_owner);
  const ObjectRegistry& objects() const { return objects_; }

  Guard& default_guard() { return *default_guard_; }

  // Collects the credentials visible to a guard evaluation for `subject`
  // on `object`.
  std::vector<nal::Formula> CollectCredentials(kernel::ProcessId subject,
                                               const std::string& object) const;

 private:
  static std::string ProofKey(kernel::ProcessId subject, const std::string& operation,
                              const std::string& object) {
    return std::to_string(subject) + "\x1f" + operation + "\x1f" + object;
  }

  // The bootstrap policy when no goal formula exists (§2.6).
  Verdict DefaultPolicy(kernel::ProcessId subject, const std::string& operation,
                        const std::string& object);

  // Monotonic stamp covering every input a cached guard verdict depends on
  // for (subject, object): label stores, object labels, and the proof
  // registration itself. Strictly increases on any relevant mutation.
  uint64_t StateVersion(kernel::ProcessId subject, const std::string& object,
                        const std::string& proof_key) const;

  kernel::Kernel* kernel_;
  Guard* default_guard_;
  GoalStore goals_;
  ObjectRegistry objects_;
  std::map<kernel::ProcessId, LabelStore> stores_;
  LabelStore system_store_;
  std::map<std::string, std::vector<nal::Formula>> object_labels_;
  std::map<std::string, nal::Proof> proofs_;
  std::map<std::string, uint64_t> proof_versions_;
};

}  // namespace nexus::core

#endif  // NEXUS_CORE_ENGINE_H_
