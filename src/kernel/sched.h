// CPU schedulers (§4.1, "Resource Attestation").
//
// Fauxbook's resource-attestation guarantee relies on a proportional-share
// scheduler whose internal allocation state is visible through the
// introspection interface: a labeling function reads per-tenant weights and
// realized shares and vouches that the provider delivers the contracted
// fraction of the CPU. A stride scheduler provides proportional sharing; a
// round-robin scheduler is kept as the baseline that *cannot* honor SLAs.
#ifndef NEXUS_KERNEL_SCHED_H_
#define NEXUS_KERNEL_SCHED_H_

#include <cstdint>
#include <map>
#include <vector>

#include "kernel/types.h"
#include "util/status.h"

namespace nexus::kernel {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual Status AddClient(ProcessId pid, uint32_t weight) = 0;
  virtual Status RemoveClient(ProcessId pid) = 0;
  virtual Status SetWeight(ProcessId pid, uint32_t weight) = 0;
  // Picks the next process to run and accounts one quantum to it.
  virtual Result<ProcessId> Tick() = 0;
  virtual uint64_t QuantaReceived(ProcessId pid) const = 0;
  virtual uint64_t TotalQuanta() const = 0;
  virtual std::vector<ProcessId> Clients() const = 0;
  virtual uint32_t Weight(ProcessId pid) const = 0;
};

// Stride scheduling: client with weight w receives w / sum(w) of quanta,
// with O(log n) selection via pass values (linear scan here; client counts
// are small).
class StrideScheduler : public Scheduler {
 public:
  Status AddClient(ProcessId pid, uint32_t weight) override;
  Status RemoveClient(ProcessId pid) override;
  Status SetWeight(ProcessId pid, uint32_t weight) override;
  Result<ProcessId> Tick() override;
  uint64_t QuantaReceived(ProcessId pid) const override;
  uint64_t TotalQuanta() const override { return total_quanta_; }
  std::vector<ProcessId> Clients() const override;
  uint32_t Weight(ProcessId pid) const override;

 private:
  static constexpr uint64_t kStrideUnit = 1 << 20;

  struct Client {
    uint32_t weight = 1;
    uint64_t stride = kStrideUnit;
    uint64_t pass = 0;
    uint64_t quanta = 0;
  };

  std::map<ProcessId, Client> clients_;
  uint64_t total_quanta_ = 0;
};

// Round-robin baseline: ignores weights.
class RoundRobinScheduler : public Scheduler {
 public:
  Status AddClient(ProcessId pid, uint32_t weight) override;
  Status RemoveClient(ProcessId pid) override;
  Status SetWeight(ProcessId pid, uint32_t weight) override;
  Result<ProcessId> Tick() override;
  uint64_t QuantaReceived(ProcessId pid) const override;
  uint64_t TotalQuanta() const override { return total_quanta_; }
  std::vector<ProcessId> Clients() const override;
  uint32_t Weight(ProcessId pid) const override;

 private:
  struct Client {
    uint32_t weight = 1;
    uint64_t quanta = 0;
  };

  std::map<ProcessId, Client> clients_;
  size_t next_index_ = 0;
  uint64_t total_quanta_ = 0;
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_SCHED_H_
