// Virtual Data Integrity Registers (§3.3).
//
// The TPM provides only two 160-bit DIRs; Nexus multiplexes them into an
// arbitrary number of VDIRs by keeping a kernel hash table of VDIR values
// whose digest is anchored in the hardware DIRs. Updates follow a four-step
// protocol that tolerates power failure at any point:
//   (1) write the new table to /proc/state/new,
//   (2) write the new digest into DIRnew,
//   (3) write the new digest into DIRcur,
//   (4) write the new table to /proc/state/current.
// Boot compares both state files against both DIRs: one match selects that
// file; two matches select /proc/state/new (the latest); zero matches means
// the disk was modified while the kernel was dormant, and boot aborts.
#ifndef NEXUS_STORAGE_VDIR_H_
#define NEXUS_STORAGE_VDIR_H_

#include <map>
#include <string>

#include "storage/blockdev.h"
#include "tpm/tpm.h"
#include "util/status.h"

namespace nexus::storage {

inline constexpr char kStateCurrentPath[] = "/proc/state/current";
inline constexpr char kStateNewPath[] = "/proc/state/new";

using VdirId = uint32_t;
using VdirValue = crypto::Sha1Digest;

class VdirTable {
 public:
  // Boots the VDIR subsystem: first boot initializes an empty table and
  // anchors it; later boots run the recovery protocol. Returns CORRUPTION
  // if neither state file matches a DIR (offline tampering/replay).
  static Result<VdirTable> Boot(tpm::Tpm* tpm, BlockDevice* disk);

  Result<VdirId> Allocate();
  Status Free(VdirId id);
  // Writes a VDIR value and flushes via the four-step protocol. Returns an
  // error if the flush could not complete (power failure); the on-disk
  // state remains recoverable either way.
  Status Write(VdirId id, const VdirValue& value);
  Result<VdirValue> Read(VdirId id) const;
  size_t size() const { return values_.size(); }

 private:
  VdirTable(tpm::Tpm* tpm, BlockDevice* disk) : tpm_(tpm), disk_(disk) {}

  Bytes Serialize() const;
  static crypto::Sha1Digest DigestOf(ByteView data);
  Status Flush();

  tpm::Tpm* tpm_;
  BlockDevice* disk_;
  std::map<VdirId, VdirValue> values_;
  VdirId next_id_ = 1;
};

}  // namespace nexus::storage

#endif  // NEXUS_STORAGE_VDIR_H_
