// The goalstore (§2.5).
//
// Associates a NAL goal formula (and optionally a designated guard port)
// with each (operation, resource) pair. Absence of a goal means the
// kernel-designated guard's bootstrap policy applies: only the object's
// owner or its resource manager may operate on it.
#ifndef NEXUS_CORE_GOALSTORE_H_
#define NEXUS_CORE_GOALSTORE_H_

#include <map>
#include <optional>
#include <string>

#include "kernel/types.h"
#include "nal/formula.h"
#include "util/status.h"

namespace nexus::core {

struct GoalEntry {
  nal::Formula goal;
  // 0 = kernel-designated default guard.
  kernel::PortId guard_port = 0;
};

class GoalStore {
 public:
  Status SetGoal(const std::string& operation, const std::string& object, nal::Formula goal,
                 kernel::PortId guard_port = 0);
  Status ClearGoal(const std::string& operation, const std::string& object);
  std::optional<GoalEntry> Get(const std::string& operation, const std::string& object) const;
  size_t size() const { return goals_.size(); }

 private:
  static std::string Key(const std::string& operation, const std::string& object) {
    return operation + "\x1f" + object;
  }

  std::map<std::string, GoalEntry> goals_;
};

// Object ownership registry backing the bootstrap policy: a nascent object
// with no goal formula may be touched only by its owner or the resource
// manager that created it (§2.6).
class ObjectRegistry {
 public:
  void Register(const std::string& object, kernel::ProcessId owner,
                kernel::ProcessId manager);
  Status TransferOwnership(const std::string& object, kernel::ProcessId new_owner);
  std::optional<kernel::ProcessId> Owner(const std::string& object) const;
  std::optional<kernel::ProcessId> Manager(const std::string& object) const;
  bool Known(const std::string& object) const { return entries_.contains(object); }

 private:
  struct Entry {
    kernel::ProcessId owner;
    kernel::ProcessId manager;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace nexus::core

#endif  // NEXUS_CORE_GOALSTORE_H_
