#include "net/transport.h"

#include <utility>

namespace nexus::net {

namespace {

std::pair<NodeId, NodeId> OrderedPair(const NodeId& a, const NodeId& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

}  // namespace

Transport::Transport(uint64_t seed) : rng_(seed) {}

Status Transport::Attach(const NodeId& node, Endpoint* endpoint) {
  if (endpoint == nullptr) {
    return InvalidArgument("null endpoint");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = endpoints_.emplace(node, endpoint);
  if (!inserted) {
    return AlreadyExists("node already attached: " + node);
  }
  (void)it;
  return OkStatus();
}

void Transport::Detach(const NodeId& node) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_.erase(node);
}

void Transport::SetLink(const NodeId& a, const NodeId& b, const LinkConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  links_[OrderedPair(a, b)] = config;
}

const LinkConfig& Transport::LinkForLocked(const NodeId& a, const NodeId& b) const {
  auto it = links_.find(OrderedPair(a, b));
  return it == links_.end() ? default_link_ : it->second;
}

uint64_t Transport::AllocateChannelId() {
  std::lock_guard<std::mutex> lock(mu_);
  return next_channel_id_++;
}

uint64_t Transport::now_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_us_;
}

void Transport::AdvanceTime(uint64_t us) {
  std::lock_guard<std::mutex> lock(mu_);
  now_us_ += us;
}

Transport::Stats Transport::stats() const {
  return Stats{stats_.sent->Value(), stats_.delivered->Value(), stats_.dropped->Value(),
               stats_.bytes_carried->Value()};
}

void Transport::ArmPumpGate(size_t queued_messages) {
  std::lock_guard<std::mutex> lock(mu_);
  gate_queued_messages_ = queued_messages;
}

Status Transport::Send(Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (endpoints_.find(message.to) == endpoints_.end()) {
    return NotFound("no endpoint attached at " + message.to);
  }
  const LinkConfig& link = LinkForLocked(message.from, message.to);
  stats_.sent->Increment();
  stats_.bytes_carried->Increment(message.payload.size());
  if (rng_.NextBool(link.drop_rate)) {
    stats_.dropped->Increment();
    return OkStatus();  // Loss is invisible to the sender.
  }
  Pending pending;
  pending.deliver_at = now_us_ + link.latency_us;
  pending.seq = send_seq_++;
  pending.message = std::move(message);
  queue_.push(std::move(pending));
  gate_cv_.notify_all();
  return OkStatus();
}

size_t Transport::DeliverAll(size_t max_steps) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (gate_queued_messages_ > 0) {
      gate_cv_.wait(lock, [this] {
        return gate_queued_messages_ == 0 || queue_.size() >= gate_queued_messages_;
      });
      gate_queued_messages_ = 0;  // One-shot: disarm and release other waiters.
      gate_cv_.notify_all();
    }
  }
  // One thread plays the fabric at a time; a second pumper waits here and
  // then typically finds the queue already drained.
  std::lock_guard<std::mutex> pump(pump_mu_);
  size_t delivered = 0;
  while (delivered < max_steps) {
    Message message;
    Endpoint* endpoint = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        break;
      }
      Pending next = queue_.top();
      queue_.pop();
      if (next.deliver_at > now_us_) {
        now_us_ = next.deliver_at;
      }
      auto it = endpoints_.find(next.message.to);
      if (it == endpoints_.end()) {
        continue;  // Endpoint detached while the message was in flight.
      }
      stats_.delivered->Increment();
      ++delivered;
      endpoint = it->second;
      message = std::move(next.message);
    }
    // The handler runs outside mu_ (it may Send, which takes mu_), but
    // under pump_mu_ — handlers never overlap each other.
    endpoint->OnMessage(message);
  }
  return delivered;
}

}  // namespace nexus::net
