// Cross-instance certificate exchange (§2.4's externalization, networked).
//
// The push side externalizes a label into a TPM-rooted certificate and
// ships it over an attested channel; the receive side verifies the chain
// against its registered peer trust anchors and imports the statement into
// a designated labelstore. Import is idempotent per certificate, so
// duplicated, re-ordered, or replayed deliveries converge to the same
// labelstore state (strong-eventual-consistency-style order insensitivity).
#ifndef NEXUS_NET_CERT_EXCHANGE_H_
#define NEXUS_NET_CERT_EXCHANGE_H_

#include <string>

#include "core/nexus.h"
#include "net/node.h"

namespace nexus::net {

class CertificateExchange : public Service {
 public:
  static constexpr std::string_view kServiceName = "certx";

  struct Stats {
    uint64_t pushed = 0;
    uint64_t imported = 0;
    uint64_t rejected = 0;
  };

  // Certificates arriving on `node` are imported into `import_pid`'s
  // labelstore (typically a gateway process whose store feeds guard
  // evaluations). Registers itself as the "certx" service on the node.
  CertificateExchange(NetNode* node, kernel::ProcessId import_pid);

  // Externalizes (pid, handle) on the local instance and pushes the
  // certificate to `peer`, returning the handle the peer assigned.
  Result<core::LabelHandle> PushLabel(const NodeId& peer, kernel::ProcessId pid,
                                      core::LabelHandle handle, uint64_t timeout_us = 100000);
  // Ships an already-built certificate (e.g. one received from a third
  // instance) to `peer`.
  Result<core::LabelHandle> PushCertificate(const NodeId& peer, const core::Certificate& cert,
                                            uint64_t timeout_us = 100000);

  // Receive side: verify against registered peer EKs and import.
  Result<Bytes> Handle(AttestedChannel& channel, ByteView request) override;

  const Stats& stats() const { return stats_; }

 private:
  NetNode* node_;
  kernel::ProcessId import_pid_;
  Stats stats_;
};

}  // namespace nexus::net

#endif  // NEXUS_NET_CERT_EXCHANGE_H_
