// The BGP protocol verifier (§4): synthetic trust for a network protocol.
//
// Rather than attesting every BGP speaker's binary (axiomatic, hopeless
// given legacy routers), a verifier proxies a legacy speaker's sessions and
// enforces minimal safety rules on what the speaker *emits*:
//   - no route fabrication: an advertisement's AS path cannot be shorter
//     than the best path the speaker itself received for that prefix
//     (n >= m), except for prefixes the speaker originates;
//   - no false origination: only owned prefixes may be originated;
//   - the speaker's own AS must appear at the head of emitted paths;
//   - withdrawals only for routes actually advertised.
#ifndef NEXUS_APPS_BGP_VERIFIER_H_
#define NEXUS_APPS_BGP_VERIFIER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace nexus::apps {

using AsNumber = uint32_t;

struct BgpMessage {
  enum class Type : uint8_t { kAdvertise, kWithdraw };
  Type type = Type::kAdvertise;
  std::string prefix;             // e.g. "10.1.0.0/16".
  std::vector<AsNumber> as_path;  // Head = most recent AS.
};

class BgpVerifier {
 public:
  struct Stats {
    uint64_t passed = 0;
    uint64_t blocked = 0;
  };

  // `self_as` is the monitored speaker's AS; `owned_prefixes` are the
  // prefixes it may originate.
  BgpVerifier(AsNumber self_as, std::set<std::string> owned_prefixes)
      : self_as_(self_as), owned_prefixes_(std::move(owned_prefixes)) {}

  // An inbound message from a peer (recorded; always forwarded).
  void OnInbound(const BgpMessage& message);

  // An outbound message the legacy speaker wants to emit. OK = forward;
  // PERMISSION_DENIED = blocked with the violated rule in the message.
  Status CheckOutbound(const BgpMessage& message);

  // Shortest received AS-path length for a prefix (SIZE_MAX if none).
  size_t ShortestReceived(const std::string& prefix) const;

  const Stats& stats() const { return stats_; }

 private:
  AsNumber self_as_;
  std::set<std::string> owned_prefixes_;
  std::map<std::string, size_t> best_received_;  // prefix -> min path length.
  std::set<std::string> advertised_;             // prefixes we forwarded out.
  Stats stats_;
};

}  // namespace nexus::apps

#endif  // NEXUS_APPS_BGP_VERIFIER_H_
