#include "apps/movie_player.h"

#include "nal/prover.h"

namespace nexus::apps {

ContentServer::ContentServer(core::Nexus* nexus, Mode mode, Bytes content)
    : nexus_(nexus), mode_(mode), content_(std::move(content)) {
  analyzer_pid_ = *nexus_->CreateProcess("ipcanalyzer", ToBytes("nexus-ipc-analyzer"));
  certifier_pid_ = *nexus_->CreateProcess("safetycertifier", ToBytes("nexus-safety-certifier"));
}

void ContentServer::SetForbiddenTargets(std::vector<std::string> targets) {
  forbidden_targets_ = std::move(targets);
}

Result<Bytes> ContentServer::RequestStream(kernel::ProcessId player) {
  if (mode_ == Mode::kHashWhitelist) {
    Result<bool> listed = whitelist_.Check(nexus_->kernel(), player);
    if (!listed.ok()) {
      return listed.status();
    }
    if (!*listed) {
      return PermissionDenied("player binary is not on the content owner's whitelist "
                              "(platform lock-down)");
    }
    return content_;
  }

  // Logical attestation: run the analyzer, have the certifier derive
  // safe(player), then check the goal with a proof.
  services::IpcAnalyzer analyzer(&nexus_->kernel(), &nexus_->engine(), analyzer_pid_);
  for (const std::string& target : forbidden_targets_) {
    Result<core::LabelHandle> attested = analyzer.AttestNoPath(player, target);
    if (!attested.ok()) {
      return PermissionDenied("player has a channel to " + target + ": " +
                              attested.status().message());
    }
  }
  services::SafetyCertifier certifier(&nexus_->kernel(), &nexus_->engine(), certifier_pid_,
                                      analyzer_pid_, forbidden_targets_);
  Result<core::LabelHandle> safe = certifier.Certify(player);
  if (!safe.ok()) {
    return safe.status();
  }

  // Goal: SafetyCertifier says safe(player). Note: no mention of the
  // player's hash anywhere.
  nal::Formula goal = nal::FormulaNode::Says(
      nexus_->kernel().ProcessPrincipal(certifier_pid_),
      nal::FormulaNode::Pred("safe",
                             {nal::Term::Symbol(kernel::Kernel::ProcPath(player))}));
  std::vector<nal::Formula> credentials = nexus_->engine().StoreFor(certifier_pid_).All();
  Result<nal::Proof> proof = nal::AutoProve(goal, credentials);
  if (!proof.ok()) {
    return proof.status();
  }
  nal::CheckResult verdict = nal::CheckProof(*proof, goal, credentials);
  if (!verdict.status.ok()) {
    return verdict.status;
  }
  return content_;
}

}  // namespace nexus::apps
