// Byte-buffer helpers shared by the crypto, TPM, and storage layers.
#ifndef NEXUS_UTIL_BYTES_H_
#define NEXUS_UTIL_BYTES_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace nexus {

using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;

// Converts a string's characters to bytes (no encoding transformation).
Bytes ToBytes(std::string_view text);

// Converts bytes to a std::string (bytes are used verbatim).
std::string ToString(ByteView bytes);

// Lower-case hex encoding, two characters per byte.
std::string HexEncode(ByteView bytes);

// Parses a hex string (even length, [0-9a-fA-F]).
Result<Bytes> HexDecode(std::string_view hex);

// Appends `suffix` to `dst`.
void Append(Bytes& dst, ByteView suffix);

// Constant-time equality over byte buffers (length leaks; contents do not).
bool ConstantTimeEquals(ByteView a, ByteView b);

// Parses an unsigned decimal integer. nullopt on empty input, any
// non-digit character, or overflow — never throws, which makes it the
// required parser for untrusted wire/IPC fields (std::stoull throws
// std::invalid_argument/std::out_of_range and would let a hostile caller
// kill the process).
std::optional<uint64_t> ParseDecimalU64(std::string_view text);

// Serialization helpers used for canonical message encodings: a 32-bit
// big-endian length prefix followed by the raw bytes.
void AppendU32(Bytes& dst, uint32_t value);
void AppendU64(Bytes& dst, uint64_t value);
void AppendLengthPrefixed(Bytes& dst, ByteView chunk);

// Cursor-style reader for the encodings above. Methods fail (return an
// error) rather than read out of bounds.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<Bytes> ReadLengthPrefixed();
  bool AtEnd() const { return offset_ == data_.size(); }
  size_t remaining() const { return data_.size() - offset_; }

 private:
  ByteView data_;
  size_t offset_ = 0;
};

}  // namespace nexus

#endif  // NEXUS_UTIL_BYTES_H_
