#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/authority.h"
#include "core/nexus.h"
#include "crypto/sha256.h"
#include "harness/workload.h"
#include "kernel/decision_cache.h"
#include "nal/parser.h"
#include "net/channel.h"
#include "net/mesh/mesh.h"
#include "net/node.h"
#include "net/remote_authority.h"
#include "net/transport.h"
#include "tpm/tpm.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace nexus::net::mesh {
namespace {

nal::Formula F(std::string_view text) {
  Result<nal::Formula> f = nal::ParseFormula(text);
  EXPECT_TRUE(f.ok()) << text << " -> " << f.status().ToString();
  return f.ok() ? *f : nullptr;
}

// Swallows raw transport messages; used to advance the simulated clock.
class NullEndpoint : public Endpoint {
 public:
  void OnMessage(const Message&) override {}
};

// Delivers one dummy message over a link of the requested latency, which
// moves the simulated clock forward by exactly that much.
void AdvanceClock(Transport& transport, NullEndpoint& sink, uint64_t us) {
  ASSERT_TRUE(transport.Attach("clockhand", &sink).ok());
  transport.SetLink("ticker", "clockhand", LinkConfig{.latency_us = us, .drop_rate = 0.0});
  ASSERT_TRUE(
      transport.Send(Message{"ticker", "clockhand", transport.AllocateChannelId(), "tick", {}})
          .ok());
  transport.DeliverAll();
}

// N full instances on one simulated fabric. Out-of-band EK pinning is
// deliberately SPARSE — a chain (i <-> i+1) or a star (0 <-> i) — so the
// tests prove that gossip carries trust transitively to node pairs that
// never exchanged keys out of band.
struct MeshWorld {
  enum Topology { kChain, kStar };

  explicit MeshWorld(size_t n, Topology topology, uint64_t transport_seed = 7)
      : transport(transport_seed) {
    for (size_t i = 0; i < n; ++i) {
      Rng rng(1000 + 13 * i);  // Tpm consumes entropy at construction only.
      tpms.push_back(std::make_unique<tpm::Tpm>(rng));
      nexuses.push_back(std::make_unique<core::Nexus>(
          tpms.back().get(), core::NexusOptions{.seed = i + 1}));
    }
    if (topology == kChain) {
      for (size_t i = 0; i + 1 < n; ++i) {
        Pin(i, i + 1);
      }
    } else {
      for (size_t i = 1; i < n; ++i) {
        Pin(0, i);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      nodes.push_back(std::make_unique<NetNode>(nexuses[i].get(), &transport, Name(i)));
      meshes.push_back(std::make_unique<MeshNode>(nodes.back().get()));
    }
  }

  static NodeId Name(size_t i) { return "n" + std::to_string(i); }

  void Pin(size_t i, size_t j) {
    EXPECT_TRUE(nexuses[i]->RegisterPeer(Name(j), tpms[j]->endorsement_public_key()).ok());
    EXPECT_TRUE(nexuses[j]->RegisterPeer(Name(i), tpms[i]->endorsement_public_key()).ok());
  }

  void JoinChain() {
    for (size_t i = 1; i < meshes.size(); ++i) {
      ASSERT_TRUE(meshes[i]->Join(Name(i - 1)).ok());
      transport.DeliverAll();
    }
  }

  // Anti-entropy everywhere until every digest agrees (or rounds run out).
  bool Converge(size_t max_rounds) {
    for (size_t round = 0; round < max_rounds; ++round) {
      for (auto& mesh : meshes) {
        mesh->AntiEntropy();
      }
      transport.DeliverAll();
      bool converged = true;
      for (auto& mesh : meshes) {
        converged = converged && mesh->Digest() == meshes[0]->Digest();
      }
      if (converged) {
        return true;
      }
    }
    return false;
  }

  // Mints "<process principal> says reading(i)" on node `i` and returns the
  // externalized (TPM-chained) certificate bytes.
  Bytes MintCertificate(size_t i) {
    Result<kernel::ProcessId> pid =
        nexuses[i]->CreateProcess("sensor", ToBytes("sensor-code"));
    EXPECT_TRUE(pid.ok());
    Result<core::LabelHandle> handle =
        nexuses[i]->engine().Say(*pid, "reading(" + std::to_string(i) + ")");
    EXPECT_TRUE(handle.ok()) << handle.status().ToString();
    Result<core::Certificate> cert = nexuses[i]->ExternalizeLabel(*pid, *handle);
    EXPECT_TRUE(cert.ok()) << cert.status().ToString();
    return cert->Serialize();
  }

  Transport transport;
  std::vector<std::unique_ptr<tpm::Tpm>> tpms;
  std::vector<std::unique_ptr<core::Nexus>> nexuses;
  std::vector<std::unique_ptr<NetNode>> nodes;
  std::vector<std::unique_ptr<MeshNode>> meshes;
};

// ------------------------------------------------------------ convergence

TEST(MeshGossipTest, ChainConvergesToByteIdenticalRegistries) {
  MeshWorld w(4, MeshWorld::kChain);
  w.JoinChain();
  ASSERT_TRUE(w.Converge(8));

  // Strong eventual consistency, asserted at the byte level: canonical
  // serializations are EQUAL, not merely equivalent.
  Bytes reference = w.meshes[0]->registry().CanonicalSnapshot();
  for (size_t i = 1; i < w.meshes.size(); ++i) {
    EXPECT_EQ(w.meshes[i]->registry().CanonicalSnapshot(), reference) << "node " << i;
  }
  for (auto& mesh : w.meshes) {
    EXPECT_EQ(mesh->registry().peer_count(), 4u);
  }

  // Transitive trust: n0 and n3 never exchanged EKs out of band (the chain
  // pins adjacent pairs only), yet the gossiped record lets them attest a
  // direct channel.
  Result<AttestedChannel*> channel = w.nodes[0]->Connect("n3");
  ASSERT_TRUE(channel.ok()) << channel.status().ToString();
  EXPECT_TRUE((*channel)->established());
}

TEST(MeshGossipTest, ConvergenceSurvivesReorderingAndDuplication) {
  MeshWorld w(3, MeshWorld::kChain);
  // Every node mints a certificate BEFORE any gossip moves.
  std::vector<Bytes> certs;
  for (size_t i = 0; i < 3; ++i) {
    certs.push_back(w.MintCertificate(i));
  }
  // Asymmetric link latencies: messages entering the mesh at the same
  // instant arrive in different orders on different links.
  w.transport.SetLink("n0", "n1", LinkConfig{.latency_us = 500, .drop_rate = 0.0});
  w.transport.SetLink("n1", "n2", LinkConfig{.latency_us = 35, .drop_rate = 0.0});
  w.JoinChain();
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(w.meshes[i]->gossip().PublishCertificate(certs[i]).ok());
  }
  w.transport.DeliverAll();
  ASSERT_TRUE(w.Converge(8));

  Bytes reference = w.meshes[0]->registry().CanonicalSnapshot();
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(w.meshes[i]->registry().CanonicalSnapshot(), reference) << "node " << i;
  }
  for (auto& mesh : w.meshes) {
    EXPECT_EQ(mesh->registry().cert_count(), 3u);
    for (const Bytes& cert : certs) {
      EXPECT_TRUE(mesh->registry().HasCertificate(crypto::Sha256Hex(cert)));
    }
  }

  // Duplicated delivery: full-state re-pushes are idempotent no-ops — the
  // converged snapshot does not move by a byte.
  ASSERT_TRUE(w.meshes[1]->gossip().PushState("n0").ok());
  ASSERT_TRUE(w.meshes[1]->gossip().PushState("n0").ok());
  w.transport.DeliverAll();
  EXPECT_EQ(w.meshes[0]->registry().CanonicalSnapshot(), reference);
  EXPECT_GT(w.meshes[0]->gossip().stats().duplicates, 0u);
}

TEST(MeshGossipTest, CertificateArrivingBeforeItsAnchorParksThenImports) {
  MeshWorld w(3, MeshWorld::kStar);  // Pins: n0<->n1, n0<->n2.
  // n2 enters the mesh and publishes its certificate while n1 is still out.
  ASSERT_TRUE(w.meshes[2]->Join("n0").ok());
  w.transport.DeliverAll();
  // Joining pushes one way; push back so n2's registry knows n0 and the
  // certificate publish below has a peer to flood to.
  ASSERT_TRUE(w.meshes[0]->gossip().PushState("n2").ok());
  w.transport.DeliverAll();
  Bytes cert = w.MintCertificate(2);
  std::string digest = crypto::Sha256Hex(cert);
  ASSERT_TRUE(w.meshes[2]->gossip().PublishCertificate(cert).ok());
  w.transport.DeliverAll();
  ASSERT_TRUE(w.meshes[0]->registry().HasCertificate(digest));

  // Reordered delivery: n1 receives the CERTIFICATE before the peer record
  // that anchors its chain. It must park, not import and not reject.
  ASSERT_TRUE(w.nodes[0]->Connect("n1").ok());
  Bytes cert_only;
  AppendU32(cert_only, 0);  // No peer records...
  AppendU32(cert_only, 1);  // ...one certificate.
  AppendLengthPrefixed(cert_only, cert);
  AttestedChannel* channel = w.nodes[0]->ChannelTo("n1");
  ASSERT_NE(channel, nullptr);
  ASSERT_TRUE(channel->SendSecure(std::string(GossipService::kServiceName), cert_only).ok());
  w.transport.DeliverAll();
  EXPECT_EQ(w.meshes[1]->registry().cert_count(), 0u);
  EXPECT_EQ(w.meshes[1]->gossip().pending_certs(), 1u);
  EXPECT_GE(w.meshes[1]->gossip().stats().pending_parked, 1u);

  // The anchor lands (full state push) and the parked certificate imports:
  // same final registry as any other delivery order.
  ASSERT_TRUE(w.meshes[0]->gossip().PushState("n1").ok());
  w.transport.DeliverAll();
  EXPECT_EQ(w.meshes[1]->gossip().pending_certs(), 0u);
  EXPECT_TRUE(w.meshes[1]->registry().HasCertificate(digest));
}

// ---------------------------------------------------------- negative paths

TEST(MeshGossipTest, TamperedCertificateIsRejectedWithoutPoisoningNeighbors) {
  MeshWorld w(3, MeshWorld::kChain);
  w.JoinChain();
  ASSERT_TRUE(w.Converge(8));

  Bytes good = w.MintCertificate(0);
  Bytes tampered = good;
  tampered[tampered.size() / 2] ^= 0xFF;

  Bytes payload;
  AppendU32(payload, 0);
  AppendU32(payload, 1);
  AppendLengthPrefixed(payload, tampered);
  AttestedChannel* channel = w.nodes[0]->ChannelTo("n1");
  ASSERT_NE(channel, nullptr);
  ASSERT_TRUE(channel->SendSecure(std::string(GossipService::kServiceName), payload).ok());
  w.transport.DeliverAll();

  // The forgery is rejected outright: the channel authenticated the
  // MESSENGER (n0), but the STATEMENT fails chain verification.
  EXPECT_GE(w.meshes[1]->gossip().stats().rejected, 1u);
  EXPECT_EQ(w.meshes[1]->registry().cert_count(), 0u);
  EXPECT_EQ(w.meshes[1]->gossip().pending_certs(), 0u);

  // No poisoning: it never entered n1's registry, so anti-entropy rounds
  // never re-gossip it — n2 stays clean.
  ASSERT_TRUE(w.Converge(8));
  EXPECT_EQ(w.meshes[2]->registry().cert_count(), 0u);

  // The honest original still propagates through the same path afterwards.
  ASSERT_TRUE(w.meshes[0]->gossip().PublishCertificate(good).ok());
  w.transport.DeliverAll();
  ASSERT_TRUE(w.Converge(8));
  for (auto& mesh : w.meshes) {
    EXPECT_EQ(mesh->registry().cert_count(), 1u);
    EXPECT_TRUE(mesh->registry().HasCertificate(crypto::Sha256Hex(good)));
  }
}

// ------------------------------------------------- cross-node invalidation

TEST(MeshInvalidationTest, CrossNodeSetGoalRetiresRemoteCachedVerdicts) {
  MeshWorld w(2, MeshWorld::kChain);
  w.JoinChain();
  ASSERT_TRUE(w.Converge(4));
  core::Nexus& a = *w.nexuses[0];
  core::Nexus& b = *w.nexuses[1];

  Result<kernel::ProcessId> owner = a.CreateProcess("owner", ToBytes("o"));
  ASSERT_TRUE(owner.ok());
  ASSERT_TRUE(
      a.engine().RegisterObject("mesh:doc", *owner, kernel::kKernelProcessId).ok());

  // b holds a cached verdict for the pair a is about to re-goal.
  kernel::AuthzRequest request = kernel::AuthzRequest::Of(4242, "mesh_read", "mesh:doc");
  b.kernel().decision_cache().Insert(request, true);
  ASSERT_TRUE(b.kernel().decision_cache().Lookup(request).has_value());
  uint64_t gen_before = b.kernel().decision_cache().Generation(request);

  // setgoal on a: the kernel invalidation sink broadcasts to the mesh.
  ASSERT_TRUE(
      a.engine().SetGoal(*owner, "mesh_read", "mesh:doc", F("Owner says ok(0)")).ok());
  w.transport.DeliverAll();

  // b's verdict is RETIRED: generation bumped, lookup misses.
  EXPECT_GT(b.kernel().decision_cache().Generation(request), gen_before);
  EXPECT_FALSE(b.kernel().decision_cache().Lookup(request).has_value());
  EXPECT_EQ(w.meshes[1]->invalidation().AppliedEpoch("n0"), 1u);
  EXPECT_EQ(w.meshes[1]->invalidation().stats().applied, 1u);
}

TEST(MeshInvalidationTest, DuplicatedAndReorderedInvalidationsApplyExactlyOnce) {
  MeshWorld w(2, MeshWorld::kChain);
  w.JoinChain();
  ASSERT_TRUE(w.Converge(4));
  core::Nexus& a = *w.nexuses[0];
  core::Nexus& b = *w.nexuses[1];
  Result<kernel::ProcessId> owner = a.CreateProcess("owner", ToBytes("o"));
  ASSERT_TRUE(owner.ok());
  ASSERT_TRUE(
      a.engine().RegisterObject("mesh:doc", *owner, kernel::kKernelProcessId).ok());

  ASSERT_TRUE(
      a.engine().SetGoal(*owner, "mesh_read", "mesh:doc", F("Owner says ok(1)")).ok());
  w.transport.DeliverAll();
  ASSERT_EQ(w.meshes[1]->invalidation().AppliedEpoch("n0"), 1u);

  // Reordered delivery: epoch 2 rides a slow link, epoch 3 a fast one, so
  // epoch 3 lands first. Both must apply — a bump is a bump.
  w.transport.SetLink("n0", "n1", LinkConfig{.latency_us = 1000, .drop_rate = 0.0});
  ASSERT_TRUE(
      a.engine().SetGoal(*owner, "mesh_read", "mesh:doc", F("Owner says ok(2)")).ok());
  w.transport.SetLink("n0", "n1", LinkConfig{.latency_us = 10, .drop_rate = 0.0});
  ASSERT_TRUE(
      a.engine().SetGoal(*owner, "mesh_read", "mesh:doc", F("Owner says ok(3)")).ok());
  w.transport.DeliverAll();
  InvalidationPropagator::Stats stats = w.meshes[1]->invalidation().stats();
  EXPECT_EQ(stats.applied, 3u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(w.meshes[1]->invalidation().AppliedEpoch("n0"), 3u);

  // Duplicated delivery: resend the whole outbound log. The re-applies are
  // exact no-ops — a verdict cached AFTER the originals survives, and the
  // generation does not move.
  kernel::AuthzRequest request = kernel::AuthzRequest::Of(4242, "mesh_read", "mesh:doc");
  b.kernel().decision_cache().Insert(request, true);
  uint64_t gen = b.kernel().decision_cache().Generation(request);
  EXPECT_GE(w.meshes[0]->invalidation().ResendRecent(), 3u);
  w.transport.DeliverAll();
  EXPECT_EQ(b.kernel().decision_cache().Generation(request), gen);
  EXPECT_TRUE(b.kernel().decision_cache().Lookup(request).has_value());
  stats = w.meshes[1]->invalidation().stats();
  EXPECT_EQ(stats.applied, 3u);
  EXPECT_GE(stats.duplicates, 3u);
  EXPECT_EQ(w.meshes[1]->invalidation().AppliedEpoch("n0"), 3u);
}

TEST(MeshInvalidationTest, ForgedOriginInvalidationIsRejected) {
  MeshWorld w(3, MeshWorld::kChain);
  w.JoinChain();
  ASSERT_TRUE(w.Converge(8));

  // n0 ships an invalidation CLAIMING n2 originated it. Invalidations are
  // first-hand only: the origin must be the delivering channel's attested
  // peer, so the forgery is rejected and nobody's cache moves.
  Bytes payload;
  AppendLengthPrefixed(payload, ToBytes(std::string("n2")));
  AppendU64(payload, 7);
  AppendLengthPrefixed(payload, ToBytes(std::string("mesh_read")));
  AppendLengthPrefixed(payload, ToBytes(std::string("mesh:doc")));
  AttestedChannel* channel = w.nodes[0]->ChannelTo("n1");
  ASSERT_NE(channel, nullptr);
  ASSERT_TRUE(
      channel->SendSecure(std::string(InvalidationPropagator::kServiceName), payload).ok());
  w.transport.DeliverAll();

  EXPECT_GE(w.meshes[1]->invalidation().stats().rejected, 1u);
  EXPECT_EQ(w.meshes[1]->invalidation().AppliedEpoch("n2"), 0u);
  EXPECT_EQ(w.meshes[1]->invalidation().AppliedEpoch("n0"), 0u);
  EXPECT_EQ(w.meshes[1]->invalidation().stats().applied, 0u);
}

// ------------------------------------------------------------- quorum

// One client plus N authority members, star-pinned, equal link latencies.
struct QuorumWorld {
  static constexpr uint64_t kLatencyUs = 500;

  explicit QuorumWorld(size_t members, uint64_t transport_seed = 9)
      : transport(transport_seed) {
    for (size_t i = 0; i <= members; ++i) {
      Rng rng(7000 + 11 * i);
      tpms.push_back(std::make_unique<tpm::Tpm>(rng));
      nexuses.push_back(std::make_unique<core::Nexus>(
          tpms.back().get(), core::NexusOptions{.seed = 100 + i}));
    }
    for (size_t i = 1; i <= members; ++i) {
      (void)nexuses[0]->RegisterPeer(Name(i), tpms[i]->endorsement_public_key());
      (void)nexuses[i]->RegisterPeer(Name(0), tpms[0]->endorsement_public_key());
    }
    for (size_t i = 0; i <= members; ++i) {
      nodes.push_back(std::make_unique<NetNode>(nexuses[i].get(), &transport, Name(i)));
    }
    for (size_t i = 1; i <= members; ++i) {
      transport.SetLink(Name(0), Name(i),
                        LinkConfig{.latency_us = kLatencyUs, .drop_rate = 0.0});
      services.push_back(std::make_unique<AuthorityService>(nodes[i].get()));
      authorities.push_back(std::make_unique<core::LambdaAuthority>(
          [](const nal::Formula& f) {
            return f->kind() == nal::FormulaKind::kSays && f->speaker().base() == "Session";
          },
          [this](const nal::Formula&) { return vouch; }));
      services.back()->AddAuthority(authorities.back().get());
      remotes.push_back(std::make_unique<RemoteAuthority>(
          nodes[0].get(), Name(i), nullptr, /*default_timeout_us=*/100000));
    }
  }

  static NodeId Name(size_t i) { return i == 0 ? "client" : "m" + std::to_string(i); }

  // Handshake every member channel up front so latency measurements see
  // only the consultation round trips.
  void ConnectAll() {
    for (size_t i = 1; i < nodes.size(); ++i) {
      ASSERT_TRUE(nodes[0]->Connect(Name(i)).ok());
    }
  }

  Transport transport;
  std::vector<std::unique_ptr<tpm::Tpm>> tpms;
  std::vector<std::unique_ptr<core::Nexus>> nexuses;
  std::vector<std::unique_ptr<NetNode>> nodes;
  std::vector<std::unique_ptr<AuthorityService>> services;
  std::vector<std::unique_ptr<core::LambdaAuthority>> authorities;
  std::vector<std::unique_ptr<RemoteAuthority>> remotes;
  bool vouch = true;
};

TEST(QuorumAuthorityTest, QuorumConsultationCostsMaxOfKNotSumOfK) {
  QuorumWorld w(3);
  w.ConnectAll();
  QuorumPolicy policy;
  policy.quorum = 3;
  QuorumAuthority quorum(&w.transport, policy);
  for (auto& remote : w.remotes) {
    quorum.AddMember(remote.get());
  }
  QuorumAuthority::Stats base = quorum.stats();

  nal::Formula statement = F("Session says sessionActive(alice)");
  uint64_t t0 = w.transport.now_us();
  EXPECT_TRUE(quorum.VouchesWithin(statement, /*timeout_us=*/100000));
  uint64_t elapsed = w.transport.now_us() - t0;

  // All three member round trips were in flight before any wait, so on the
  // simulated clock the consultation costs ONE round trip (max-of-K), not
  // three back to back (sum-of-K would be >= 3000us here).
  EXPECT_EQ(elapsed, 2 * QuorumWorld::kLatencyUs);
  EXPECT_EQ(quorum.stats().vouched - base.vouched, 1u);
  EXPECT_EQ(quorum.stats().member_rounds - base.member_rounds, 3u);
}

TEST(QuorumAuthorityTest, ResponsiveNoVotesAreNoQuorumNotTimeout) {
  QuorumWorld w(3);
  w.ConnectAll();
  QuorumPolicy policy;
  policy.quorum = 2;
  QuorumAuthority quorum(&w.transport, policy);
  for (auto& remote : w.remotes) {
    quorum.AddMember(remote.get());
  }
  QuorumAuthority::Stats base = quorum.stats();

  w.vouch = false;  // Everyone answers, nobody vouches.
  EXPECT_FALSE(quorum.VouchesWithin(F("Session says sessionActive(alice)"), 100000));
  EXPECT_EQ(quorum.stats().denied_no_quorum - base.denied_no_quorum, 1u);
  EXPECT_EQ(quorum.stats().denied_timeout - base.denied_timeout, 0u);
}

TEST(QuorumAuthorityTest, PartitionedMinorityDeniesThenHealedQuorumRecovers) {
  QuorumWorld w(3);
  w.ConnectAll();
  QuorumPolicy policy;
  policy.quorum = 2;
  policy.failures_before_backoff = 1;
  policy.backoff_us = 200000;
  QuorumAuthority quorum(&w.transport, policy);
  for (auto& remote : w.remotes) {
    quorum.AddMember(remote.get());
  }
  QuorumAuthority::Stats base = quorum.stats();
  nal::Formula statement = F("Session says sessionActive(alice)");

  // Partition two of three members away: the client side is a minority of
  // the quorum's voters and MUST deny — as a timeout-deny, because the
  // missing answers (not no-votes) made K arithmetically impossible.
  w.transport.SetLink("client", "m2",
                      LinkConfig{.latency_us = QuorumWorld::kLatencyUs, .drop_rate = 1.0});
  w.transport.SetLink("client", "m3",
                      LinkConfig{.latency_us = QuorumWorld::kLatencyUs, .drop_rate = 1.0});
  EXPECT_FALSE(quorum.VouchesWithin(statement, /*timeout_us=*/10000));
  EXPECT_EQ(quorum.stats().denied_timeout - base.denied_timeout, 1u);
  EXPECT_EQ(quorum.stats().vouched - base.vouched, 0u);

  // The failed members are sidelined: the next query skips them entirely
  // instead of stalling on their timeout again.
  EXPECT_FALSE(quorum.VouchesWithin(statement, /*timeout_us=*/10000));
  EXPECT_GE(quorum.stats().members_skipped - base.members_skipped, 2u);

  // Heal the links and let the backoff window lapse on the simulated
  // clock: the quorum recovers without any reconfiguration.
  w.transport.SetLink("client", "m2",
                      LinkConfig{.latency_us = QuorumWorld::kLatencyUs, .drop_rate = 0.0});
  w.transport.SetLink("client", "m3",
                      LinkConfig{.latency_us = QuorumWorld::kLatencyUs, .drop_rate = 0.0});
  NullEndpoint sink;
  AdvanceClock(w.transport, sink, policy.backoff_us + 50000);
  EXPECT_TRUE(quorum.VouchesWithin(statement, /*timeout_us=*/10000));
  EXPECT_EQ(quorum.stats().vouched - base.vouched, 1u);
}

// --------------------------------------------- auditor + workload coupling

TEST(MeshAuditTest, StaleRemoteVerdictInjectionIsFlaggedByTheAuditor) {
  // End-to-end negative path for the cross-node coherence rule: a remote
  // invalidation lands (real cache bump + kRemoteInvalidate stamps), then a
  // verdict BELOW the remote-raised high-water is forged. The auditor must
  // attribute it to the REMOTE rule, not the plain stale-generation rule.
  harness::WorkloadConfig config;
  config.scenario = "fauxbook";
  config.threads = 2;
  config.logical_calls = 3000;
  config.subjects = 10000;
  config.objects = 64;
  config.audited_objects = 2;
  config.proof_holders = 4;
  config.seed = 91;
  config.audit = true;
  config.inject_stale_remote_verdict = true;
  Result<harness::WorkloadReport> report = harness::WorkloadDriver(config).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->audited);
  EXPECT_GE(report->audit.remote_invalidation_violations, 1u);
  EXPECT_EQ(report->audit.stale_generation_violations, 0u);
  EXPECT_FALSE(report->audit.clean());
}

TEST(MeshAuditTest, FederationScenarioDrivesTheMeshCleanly) {
  // The fifth workload scenario: allow goals conjoin a session-liveness
  // leaf discharged by a K-of-N quorum over three mesh homes, so every
  // audited engine miss crosses the simulated fabric. The run must stay
  // serializable and violation-free under the full auditor.
  harness::WorkloadConfig config;
  config.scenario = "federation";
  config.threads = 2;
  config.logical_calls = 1200;
  config.subjects = 5000;
  config.objects = 32;
  config.audited_objects = 2;
  config.proof_holders = 4;
  config.seed = 7;
  config.audit = true;
  Result<harness::WorkloadReport> report = harness::WorkloadDriver(config).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->audited);
  EXPECT_TRUE(report->audit.clean()) << report->audit.Summary();
  EXPECT_GT(report->allows, 0u);
  EXPECT_GT(report->authorize_ops, 0u);
  EXPECT_GT(report->setgoal_ops, 0u);  // Goal flips broadcast mesh invalidations.
}

// ------------------------------------------------------------------ soak

// Partition/heal churn under concurrent vouching, goal flips, and
// anti-entropy — the CI TSan target. A voucher thread hammers a 2-of-3
// quorum through node 0 while a churn thread repeatedly severs and heals
// node 0's links to nodes 2 and 3 (SetLink is mutex-guarded) and the main
// thread flips goals on node 0, broadcasting epoch-stamped invalidations
// into the churn. After the final heal the mesh must converge to
// byte-identical registries, every node must have applied the complete
// invalidation stream, and the quorum must answer again.
TEST(MeshSoakTest, PartitionHealChurnStaysConsistent) {
  MeshWorld w(4, MeshWorld::kChain, /*transport_seed=*/31);
  w.JoinChain();
  ASSERT_TRUE(w.Converge(8));

  core::LambdaAuthority always_yes(
      [](const nal::Formula& f) {
        return f->kind() == nal::FormulaKind::kSays && f->speaker().base() == "Session";
      },
      [](const nal::Formula&) { return true; });
  std::vector<std::unique_ptr<AuthorityService>> services;
  std::vector<std::unique_ptr<RemoteAuthority>> remotes;
  for (size_t i = 1; i < 4; ++i) {
    services.push_back(std::make_unique<AuthorityService>(w.nodes[i].get()));
    services.back()->AddAuthority(&always_yes);
    remotes.push_back(std::make_unique<RemoteAuthority>(
        w.nodes[0].get(), MeshWorld::Name(i), nullptr, /*default_timeout_us=*/20000));
  }
  QuorumPolicy policy;
  policy.quorum = 2;
  policy.failures_before_backoff = 2;
  policy.backoff_us = 50000;
  QuorumAuthority quorum(&w.transport, policy);
  for (auto& remote : remotes) {
    quorum.AddMember(remote.get());
  }

  Result<kernel::ProcessId> owner =
      w.nexuses[0]->CreateProcess("owner", ToBytes("owner-code"));
  ASSERT_TRUE(owner.ok());
  w.nexuses[0]->engine().RegisterObject("soak:doc", *owner, kernel::kKernelProcessId);

  size_t flips = 40;
  if (const char* env = std::getenv("NEXUS_MESH_SOAK_ITERS")) {
    flips = static_cast<size_t>(std::atoi(env));
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> vouches{0};
  nal::Formula statement = F("Session says sessionActive(soak)");
  std::thread voucher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (quorum.VouchesWithin(statement, /*timeout_us=*/20000)) {
        vouches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread churner([&] {
    bool cut = false;
    while (!stop.load(std::memory_order_relaxed)) {
      LinkConfig config{.latency_us = 50, .drop_rate = cut ? 1.0 : 0.0};
      w.transport.SetLink(MeshWorld::Name(0), MeshWorld::Name(2), config);
      w.transport.SetLink(MeshWorld::Name(0), MeshWorld::Name(3), config);
      cut = !cut;
      for (auto& mesh : w.meshes) {
        mesh->AntiEntropy();
      }
      w.transport.DeliverAll();
    }
  });
  for (size_t i = 0; i < flips; ++i) {
    Status installed = w.nexuses[0]->engine().SetGoal(
        *owner, "soak_read", "soak:doc",
        F(i % 2 == 0 ? "Owner says ok(0)" : "Owner says ok(1)"));
    ASSERT_TRUE(installed.ok()) << installed.ToString();
    w.transport.DeliverAll();
  }
  stop.store(true, std::memory_order_relaxed);
  voucher.join();
  churner.join();

  // Final heal: convergence, a drained invalidation stream, a live quorum.
  for (size_t i = 1; i < 4; ++i) {
    w.transport.SetLink(MeshWorld::Name(0), MeshWorld::Name(i),
                        LinkConfig{.latency_us = 50, .drop_rate = 0.0});
  }
  ASSERT_TRUE(w.Converge(32));
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(w.meshes[i]->registry().CanonicalSnapshot(),
              w.meshes[0]->registry().CanonicalSnapshot());
  }
  bool drained = false;
  for (int round = 0; round < 64 && !drained; ++round) {
    w.meshes[0]->AntiEntropy();  // ResendRecent retries the broadcast window.
    w.transport.DeliverAll();
    drained = true;
    for (size_t i = 1; i < 4; ++i) {
      drained = drained && w.meshes[i]->invalidation().AppliedEpoch(MeshWorld::Name(0)) ==
                               static_cast<uint64_t>(flips);
    }
  }
  EXPECT_TRUE(drained) << "invalidation stream did not drain after heal";
  NullEndpoint sink;
  AdvanceClock(w.transport, sink, policy.backoff_us + 10000);
  EXPECT_TRUE(quorum.VouchesWithin(statement, /*timeout_us=*/100000));
}

}  // namespace
}  // namespace nexus::net::mesh
