// End-to-end observability tests: the flight recorder's provenance chain
// through a real interposed fileserver read, the guarded procfs export of
// the metrics plane, and the analyzer's trace-derived traffic view.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/nexus.h"
#include "kernel/trace.h"
#include "nal/parser.h"
#include "nal/prover.h"
#include "services/ipc_analyzer.h"
#include "tpm/tpm.h"

namespace nexus::core {
namespace {

nal::Formula F(const std::string& text) { return *nal::ParseFormula(text); }

// Enables the global recorder for one test body and restores silence (and
// an empty ring view) afterwards, so tests cannot leak events into each
// other.
class ScopedRecorder {
 public:
  ScopedRecorder() {
    kernel::FlightRecorder::Global().Clear();
    kernel::FlightRecorder::Global().set_enabled(true);
  }
  ~ScopedRecorder() {
    kernel::FlightRecorder::Global().set_enabled(false);
    kernel::FlightRecorder::Global().Clear();
  }
};

class AllowAllMonitor : public kernel::Interceptor {
 public:
  kernel::InterposeVerdict OnCall(const kernel::IpcContext&, kernel::IpcMessage&) override {
    ++calls;
    return kernel::InterposeVerdict::kAllow;
  }
  int calls = 0;
};

class ObservabilityTest : public ::testing::Test {
 protected:
  ObservabilityTest() : rng_(77), tpm_(rng_), nexus_(&tpm_) {
    owner_ = *nexus_.CreateProcess("owner", ToBytes("owner-bin"));
    client_ = *nexus_.CreateProcess("client", ToBytes("client-bin"));
  }

  kernel::IpcReply Syscall(kernel::ProcessId caller, kernel::Syscall sc,
                           std::vector<std::string> args) {
    return nexus_.kernel().Invoke(caller, sc,
                                  kernel::IpcMessage::FromLegacy("", std::move(args)));
  }

  Rng rng_;
  tpm::Tpm tpm_;
  Nexus nexus_;
  kernel::ProcessId owner_ = 0;
  kernel::ProcessId client_ = 0;
};

// The acceptance scenario: one interposed fileserver read yields a
// correlated provenance chain — Call -> syscall -> cache probe -> engine
// miss -> guard check -> verdict, all under one trace id — retrievable
// both programmatically (ForTrace) and through proc:/trace/recent.
TEST_F(ObservabilityTest, InterposedReadYieldsCorrelatedProvenanceChain) {
  kernel::Kernel& k = nexus_.kernel();
  ASSERT_TRUE(nexus_.fs().CreateFile("/data", ToBytes("payload")).ok());
  // Open while the file object is unguarded; the read below is the guarded
  // operation under test.
  kernel::IpcReply open = Syscall(client_, kernel::Syscall::kOpen, {"/data"});
  ASSERT_TRUE(open.status.ok()) << open.status.ToString();
  int64_t fd = open.value();

  // Guard the read behind a certifier attestation, with the client holding
  // a valid pre-submitted proof.
  std::string client_name = k.ProcessPrincipal(client_).ToString();
  nal::Formula goal = F("Certifier says safe(" + client_name + ")");
  ASSERT_TRUE(nexus_.engine().RegisterObject("file:/data", owner_, kernel::kKernelProcessId).ok());
  ASSERT_TRUE(nexus_.engine().SetGoal(owner_, "read", "file:/data", goal).ok());
  nexus_.engine().SayAs(nal::Principal("Certifier"), F("safe(" + client_name + ")"));
  auto creds = nexus_.engine().CollectCredentials(client_, "file:/data");
  Result<nal::Proof> proof = nal::AutoProve(goal, creds);
  ASSERT_TRUE(proof.ok()) << proof.status().ToString();
  ASSERT_TRUE(nexus_.engine().SetProof(client_, "read", "file:/data", *proof).ok());

  // Interpose a monitor on the filesystem port, then trace one read.
  AllowAllMonitor monitor;
  Result<uint64_t> token = k.Interpose(owner_, k.fs_port(), &monitor);
  ASSERT_TRUE(token.ok()) << token.status().ToString();

  ScopedRecorder recorder;
  kernel::IpcReply read = Syscall(client_, kernel::Syscall::kRead, {std::to_string(fd)});
  ASSERT_TRUE(read.status.ok()) << read.status.ToString();
  EXPECT_EQ(ToString(read.data), "payload");
  EXPECT_EQ(monitor.calls, 1);

  std::vector<kernel::TraceEvent> recent = kernel::FlightRecorder::Global().Recent();
  ASSERT_FALSE(recent.empty());
  const uint64_t id = recent.front().trace_id;
  ASSERT_NE(id, 0u);
  // Every retained event belongs to the single traced call.
  for (const kernel::TraceEvent& e : recent) {
    EXPECT_EQ(e.trace_id, id);
  }

  std::vector<kernel::TraceEvent> chain = kernel::FlightRecorder::Global().ForTrace(id);
  auto count_stage = [&](kernel::TraceStage stage) {
    return std::count_if(chain.begin(), chain.end(),
                         [&](const kernel::TraceEvent& e) { return e.stage == stage; });
  };
  EXPECT_GE(count_stage(kernel::TraceStage::kSyscall), 1);
  EXPECT_GE(count_stage(kernel::TraceStage::kCall), 1);
  EXPECT_GE(count_stage(kernel::TraceStage::kCacheProbe), 1);
  EXPECT_GE(count_stage(kernel::TraceStage::kEngineMiss), 1);
  EXPECT_GE(count_stage(kernel::TraceStage::kGuardCheck), 1);
  EXPECT_GE(count_stage(kernel::TraceStage::kVerdict), 1);

  // The IPC hop into the fileserver records that a monitor was on path,
  // and the final verdict is an allow.
  auto call_event = std::find_if(chain.begin(), chain.end(), [](const kernel::TraceEvent& e) {
    return e.stage == kernel::TraceStage::kCall;
  });
  ASSERT_NE(call_event, chain.end());
  EXPECT_TRUE(call_event->flags & kernel::kTraceFlagInterposed);
  EXPECT_EQ(call_event->verdict, kernel::kTraceVerdictAllow);
  auto verdict_event = std::find_if(chain.begin(), chain.end(), [](const kernel::TraceEvent& e) {
    return e.stage == kernel::TraceStage::kVerdict;
  });
  ASSERT_NE(verdict_event, chain.end());
  EXPECT_EQ(verdict_event->verdict, kernel::kTraceVerdictAllow);
  EXPECT_TRUE(verdict_event->flags & kernel::kTraceFlagCacheMiss);

  // The same chain is visible through the introspection namespace.
  kernel::IpcReply trace_read =
      Syscall(client_, kernel::Syscall::kProcRead, {"/trace/recent"});
  ASSERT_TRUE(trace_read.status.ok()) << trace_read.status.ToString();
  EXPECT_NE(trace_read.text().find("trace=" + std::to_string(id)), std::string::npos);
  EXPECT_NE(trace_read.text().find("stage=guard_check"), std::string::npos);

  ASSERT_TRUE(k.RemoveInterposition(*token).ok());
}

// A repeat of the same traced call hits the decision cache: the chain
// shrinks to probe + verdict with the hit flag, no engine or guard stage.
TEST_F(ObservabilityTest, CachedRepeatTracesAsHit) {
  kernel::Kernel& k = nexus_.kernel();
  ASSERT_TRUE(k.Authorize(client_, "use", "widget:1").ok());  // Warm the cache.

  ScopedRecorder recorder;
  ASSERT_TRUE(k.Authorize(client_, "use", "widget:1").ok());
  std::vector<kernel::TraceEvent> recent = kernel::FlightRecorder::Global().Recent();
  ASSERT_FALSE(recent.empty());
  std::vector<kernel::TraceEvent> chain =
      kernel::FlightRecorder::Global().ForTrace(recent.front().trace_id);
  bool saw_hit = false;
  for (const kernel::TraceEvent& e : chain) {
    EXPECT_NE(e.stage, kernel::TraceStage::kEngineMiss);
    EXPECT_NE(e.stage, kernel::TraceStage::kGuardCheck);
    if (e.stage == kernel::TraceStage::kVerdict) {
      saw_hit = (e.flags & kernel::kTraceFlagCacheHit) != 0;
    }
  }
  EXPECT_TRUE(saw_hit);
}

// The metrics plane is readable through the guarded proc-read syscall, and
// a goal formula on the stats node locks unauthorized subjects out.
TEST_F(ObservabilityTest, ProcStatsExportIsGuarded) {
  kernel::Kernel& k = nexus_.kernel();
  // Generate some kernel activity so the counters are visibly nonzero.
  ASSERT_TRUE(k.Authorize(client_, "use", "widget:2").ok());

  // Unguarded: anyone can read the export (bootstrap fail-open).
  kernel::IpcReply stats = Syscall(client_, kernel::Syscall::kProcRead, {"/stats/kernel"});
  ASSERT_TRUE(stats.status.ok()) << stats.status.ToString();
  EXPECT_NE(stats.text().find("kernel.authorize_requests"), std::string::npos);
  kernel::IpcReply cache_stats = Syscall(client_, kernel::Syscall::kProcRead, {"/stats/cache"});
  ASSERT_TRUE(cache_stats.status.ok());
  EXPECT_NE(cache_stats.text().find("cache.misses"), std::string::npos);

  // Register the stats node and guard it behind an unprovable goal: the
  // client's next read is denied by the same authorization path as any
  // other object.
  ASSERT_TRUE(
      nexus_.engine().RegisterObject("proc:/stats/kernel", owner_, kernel::kKernelProcessId).ok());
  ASSERT_TRUE(nexus_.engine()
                  .SetGoal(owner_, "read", "proc:/stats/kernel", F("Auditor says cleared(nobody)"))
                  .ok());
  kernel::IpcReply denied = Syscall(client_, kernel::Syscall::kProcRead, {"/stats/kernel"});
  EXPECT_EQ(denied.status.code(), ErrorCode::kPermissionDenied);

  // Unrelated stats nodes stay readable.
  kernel::IpcReply still_ok = Syscall(client_, kernel::Syscall::kProcRead, {"/stats/engine"});
  EXPECT_TRUE(still_ok.status.ok());
}

// proc:/stats/trace reports the recorder's own state.
TEST_F(ObservabilityTest, TraceStatsNodeReportsRecorderState) {
  kernel::IpcReply off = Syscall(client_, kernel::Syscall::kProcRead, {"/stats/trace"});
  ASSERT_TRUE(off.status.ok());
  EXPECT_NE(off.text().find("enabled 0"), std::string::npos);

  ScopedRecorder recorder;
  kernel::IpcReply on = Syscall(client_, kernel::Syscall::kProcRead, {"/stats/trace"});
  ASSERT_TRUE(on.status.ok());
  EXPECT_NE(on.text().find("enabled 1"), std::string::npos);
}

// The analyzer's dynamic view: kCall events resolve to caller->callee
// edges, complementing the static channel graph.
TEST_F(ObservabilityTest, AnalyzerSeesObservedTraffic) {
  kernel::Kernel& k = nexus_.kernel();
  services::IpcAnalyzer analyzer(&k, &nexus_.engine(),
                                 *nexus_.CreateProcess("ipcanalyzer", ToBytes("a")));

  ASSERT_TRUE(nexus_.fs().CreateFile("/traffic", ToBytes("x")).ok());
  kernel::IpcReply open = Syscall(client_, kernel::Syscall::kOpen, {"/traffic"});
  ASSERT_TRUE(open.status.ok());

  kernel::ProcessId fs_pid = *k.PortOwner(k.fs_port());
  // Register the client's channel so the static reachability view also
  // knows about the edge the recorder is about to observe dynamically.
  ASSERT_TRUE(k.ConnectPort(client_, k.fs_port()).ok());
  ScopedRecorder recorder;
  EXPECT_EQ(analyzer.ObservedTraffic(client_, fs_pid), 0u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        Syscall(client_, kernel::Syscall::kRead, {std::to_string(open.value())}).status.ok());
  }
  EXPECT_EQ(analyzer.ObservedTraffic(client_, fs_pid), 3u);
  auto edges = analyzer.ObservedEdges();
  EXPECT_EQ((edges[{client_, fs_pid}]), 3u);
  // The static reachability view agrees that the observed edge is legal.
  EXPECT_TRUE(analyzer.HasPath(client_, fs_pid));
}

// Emission is free when the recorder is off: no events are retained and
// trace ids are never allocated.
TEST_F(ObservabilityTest, DisabledRecorderRetainsNothing) {
  kernel::FlightRecorder& recorder = kernel::FlightRecorder::Global();
  recorder.Clear();
  ASSERT_FALSE(recorder.enabled());
  ASSERT_TRUE(nexus_.kernel().Authorize(client_, "use", "widget:3").ok());
  EXPECT_TRUE(recorder.Recent().empty());
}

}  // namespace
}  // namespace nexus::core
