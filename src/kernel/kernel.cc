#include "kernel/kernel.h"

#include <algorithm>
#include <chrono>

namespace nexus::kernel {

Kernel::Kernel() : scheduler_(std::make_unique<StrideScheduler>()) {
  procfs_.PublishValue(kKernelProcessId, "/proc/kernel/name", "nexus");
}

uint64_t Kernel::NowMicros() const {
  if (time_source_) {
    return time_source_();
  }
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

// ------------------------------------------------------------- Processes

Result<ProcessId> Kernel::CreateProcess(const std::string& name, ByteView binary,
                                        ProcessId parent) {
  Process p;
  p.parent = parent;
  p.name = name;
  p.binary_hash = crypto::Sha256::Hash(binary);
  // The quota root is the topmost non-kernel ancestor: incessantly spawned
  // children are all charged to the tree's root (§2.9). Read it from the
  // parent's shard; a parent killed between this read and the insert below
  // yields a child of a dead parent, exactly as a kill landing just after
  // the spawn would.
  if (parent == kKernelProcessId) {
    p.quota_root = 0;  // Fixed up to the child's own pid below.
  } else {
    const ProcessShard& shard = process_shards_[ShardOfId(parent)];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.procs.find(parent);
    if (it == shard.procs.end() || !it->second.alive.load()) {
      return NotFound("parent process not alive");
    }
    p.quota_root = it->second.quota_root;
  }
  ProcessId pid = next_pid_.fetch_add(1);
  p.pid = pid;
  if (parent == kKernelProcessId) {
    p.quota_root = pid;
  }
  PublishProcessNodes(p);
  {
    ProcessShard& shard = process_shards_[ShardOfId(pid)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.procs.emplace(pid, std::move(p));
  }
  lifecycle_generation_.fetch_add(1);
  return pid;
}

void Kernel::PublishProcessNodes(const Process& process) {
  const std::string base = ProcPath(process.pid);
  procfs_.PublishValue(process.pid, base + "/name", process.name);
  procfs_.PublishValue(process.pid, base + "/parent", std::to_string(process.parent));
  procfs_.PublishValue(
      process.pid, base + "/hash",
      HexEncode(ByteView(process.binary_hash.data(), process.binary_hash.size())));
}

Status Kernel::KillProcess(ProcessId pid) {
  {
    ProcessShard& shard = process_shards_[ShardOfId(pid)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.procs.find(pid);
    if (it == shard.procs.end() || !it->second.alive.load()) {
      return NotFound("no such process");
    }
    it->second.alive.store(false);
  }
  procfs_.RemoveOwned(pid);
  // Tear down the process's ports shard by shard, then unlink the dead
  // ports from every remaining channel set.
  std::vector<PortId> dead_ports;
  for (PortShard& shard : port_shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    for (auto port_it = shard.ports.begin(); port_it != shard.ports.end();) {
      if (port_it->second.owner == pid) {
        dead_ports.push_back(port_it->first);
        port_it = shard.ports.erase(port_it);
      } else {
        ++port_it;
      }
    }
  }
  {
    std::unique_lock<std::shared_mutex> lock(channels_mu_);
    channels_.erase(pid);
    for (PortId dead : dead_ports) {
      for (auto& [owner, connected] : channels_) {
        connected.erase(dead);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    scheduler_->RemoveClient(pid);  // Best effort; may not be scheduled.
  }
  lifecycle_generation_.fetch_add(1);
  return OkStatus();
}

Result<const Process*> Kernel::GetProcess(ProcessId pid) const {
  const ProcessShard& shard = process_shards_[ShardOfId(pid)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.procs.find(pid);
  if (it == shard.procs.end()) {
    return NotFound("no such process");
  }
  // Stable: records are marked dead, never erased, and std::map nodes do
  // not move. Liveness is an atomic; other mutable fields are only touched
  // under the shard writer lock.
  return &it->second;
}

bool Kernel::IsAlive(ProcessId pid) const {
  const ProcessShard& shard = process_shards_[ShardOfId(pid)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.procs.find(pid);
  return it != shard.procs.end() && it->second.alive.load();
}

Result<ProcessId> Kernel::GetParent(ProcessId pid) const {
  const ProcessShard& shard = process_shards_[ShardOfId(pid)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.procs.find(pid);
  if (it == shard.procs.end()) {
    return NotFound("no such process");
  }
  return it->second.parent;
}

std::vector<ProcessId> Kernel::Processes() const {
  std::vector<ProcessId> out;
  for (const ProcessShard& shard : process_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [pid, p] : shard.procs) {
      if (p.alive.load()) {
        out.push_back(pid);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status Kernel::RestrictSyscalls(ProcessId pid, std::set<Syscall> allowed) {
  ProcessShard& shard = process_shards_[ShardOfId(pid)];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.procs.find(pid);
  if (it == shard.procs.end() || !it->second.alive.load()) {
    return NotFound("no such process");
  }
  // Restriction is monotone: a process can only narrow its own surface.
  if (it->second.allowed_syscalls.has_value()) {
    for (Syscall sc : allowed) {
      if (!it->second.allowed_syscalls->contains(sc)) {
        return PermissionDenied("cannot re-acquire relinquished system calls");
      }
    }
  }
  it->second.allowed_syscalls = std::move(allowed);
  return OkStatus();
}

nal::Principal Kernel::ProcessPrincipal(ProcessId pid) const {
  return KernelPrincipal().Sub("ipd").Sub(std::to_string(pid));
}

std::string Kernel::ProcPath(ProcessId pid) { return "/proc/ipd/" + std::to_string(pid); }

// ----------------------------------------------------------------- Ports

std::optional<Kernel::Port> Kernel::SnapshotPort(PortId port) const {
  const PortShard& shard = port_shards_[ShardOfId(port)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.ports.find(port);
  if (it == shard.ports.end()) {
    return std::nullopt;
  }
  return it->second;
}

Result<PortId> Kernel::CreatePort(ProcessId owner) {
  if (owner != kKernelProcessId && !IsAlive(owner)) {
    return NotFound("no such process");
  }
  PortId id = next_port_.fetch_add(1);
  uint64_t generation = lifecycle_generation_.fetch_add(1) + 1;
  const std::string proc_node = "/proc/port/" + std::to_string(id) + "/owner";
  {
    PortShard& shard = port_shards_[ShardOfId(id)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.ports[id] = Port{id, owner, nullptr, generation};
  }
  procfs_.PublishValue(owner, proc_node, std::to_string(owner));
  // Revalidate AFTER publishing: a KillProcess that raced the liveness
  // check above may have swept the port shards before our insert landed,
  // which would leak a live port owned by a dead process forever. Insert-
  // then-recheck closes the window — either the kill's sweep sees our
  // port, or we see the kill and reap our own debris.
  if (owner != kKernelProcessId && !IsAlive(owner)) {
    {
      PortShard& shard = port_shards_[ShardOfId(id)];
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      shard.ports.erase(id);  // May already be gone (the kill swept it).
    }
    procfs_.Remove(proc_node);  // Ditto.
    return NotFound("no such process");
  }
  return id;
}

Status Kernel::DestroyPort(PortId port) {
  {
    PortShard& shard = port_shards_[ShardOfId(port)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    if (shard.ports.erase(port) == 0) {
      return NotFound("no such port");
    }
  }
  {
    std::unique_lock<std::shared_mutex> lock(channels_mu_);
    for (auto& [owner, connected] : channels_) {
      connected.erase(port);
    }
  }
  procfs_.Remove("/proc/port/" + std::to_string(port) + "/owner");
  lifecycle_generation_.fetch_add(1);
  return OkStatus();
}

Status Kernel::BindHandler(PortId port, PortHandler* handler) {
  PortShard& shard = port_shards_[ShardOfId(port)];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.ports.find(port);
  if (it == shard.ports.end()) {
    return NotFound("no such port");
  }
  it->second.handler = handler;
  lifecycle_generation_.fetch_add(1);
  return OkStatus();
}

Result<ProcessId> Kernel::PortOwner(PortId port) const {
  std::optional<Port> snapshot = SnapshotPort(port);
  if (!snapshot.has_value()) {
    return NotFound("no such port");
  }
  return snapshot->owner;
}

Status Kernel::ConnectPort(ProcessId pid, PortId port) {
  if (!IsAlive(pid) && pid != kKernelProcessId) {
    return NotFound("no such process");
  }
  if (!SnapshotPort(port).has_value()) {
    return NotFound("no such port");
  }
  {
    std::unique_lock<std::shared_mutex> lock(channels_mu_);
    channels_[pid].insert(port);
  }
  // Revalidate: a DestroyPort/KillProcess racing the existence check above
  // may have swept channels_ before our edge landed, leaving a permanent
  // ghost edge to a nonexistent port (and a phantom path for the IPC
  // analyzer). Either the destroy's sweep sees our edge, or we see the
  // destroy and retract it.
  if (!SnapshotPort(port).has_value()) {
    std::unique_lock<std::shared_mutex> lock(channels_mu_);
    auto it = channels_.find(pid);
    if (it != channels_.end()) {
      it->second.erase(port);
    }
    return NotFound("no such port");
  }
  return OkStatus();
}

Status Kernel::DisconnectPort(ProcessId pid, PortId port) {
  std::unique_lock<std::shared_mutex> lock(channels_mu_);
  auto it = channels_.find(pid);
  if (it == channels_.end() || it->second.erase(port) == 0) {
    return NotFound("no such channel");
  }
  return OkStatus();
}

bool Kernel::HasChannel(ProcessId pid, PortId port) const {
  std::shared_lock<std::shared_mutex> lock(channels_mu_);
  auto it = channels_.find(pid);
  return it != channels_.end() && it->second.contains(port);
}

Result<uint64_t> Kernel::PortGeneration(PortId port) const {
  std::optional<Port> snapshot = SnapshotPort(port);
  if (!snapshot.has_value()) {
    return NotFound("no such port");
  }
  return snapshot->generation;
}

std::map<ProcessId, std::set<PortId>> Kernel::ChannelsSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(channels_mu_);
  return channels_;
}

std::vector<PortId> Kernel::Ports() const {
  std::vector<PortId> out;
  for (const PortShard& shard : port_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [id, p] : shard.ports) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ------------------------------------------------------------------- IPC

IpcReply Kernel::Call(ProcessId caller, PortId port, const IpcMessage& message) {
  if (!SnapshotPort(port).has_value()) {
    return IpcReply{NotFound("no such port"), {}, {}, 0};
  }

  if (!interposition_enabled_.load()) {
    return Dispatch(caller, port, message);
  }

  // Marshal/unmarshal: every interposable call crosses a defined message
  // boundary so monitors see (and can rewrite) a flat buffer.
  Bytes wire = MarshalMessage(message);
  Result<IpcMessage> unmarshaled = UnmarshalMessage(wire);
  if (!unmarshaled.ok()) {
    return IpcReply{unmarshaled.status(), {}, {}, 0};
  }
  IpcMessage working = std::move(*unmarshaled);

  IpcContext context{caller, port};
  // Newest interceptor first; composition is simply nesting (§3.2). The
  // chain is snapshotted under the reader lock and run without it.
  std::vector<Interceptor*> active;
  {
    std::shared_lock<std::shared_mutex> lock(interpose_mu_);
    for (auto it = interpositions_.rbegin(); it != interpositions_.rend(); ++it) {
      if (it->port == port) {
        active.push_back(it->interceptor);
      }
    }
  }
  for (Interceptor* interceptor : active) {
    if (interceptor->OnCall(context, working) == InterposeVerdict::kDeny) {
      // A blocked call returns earlier than a completed call (Table 1).
      return IpcReply{PermissionDenied("blocked by reference monitor"), {}, {}, 0};
    }
  }

  IpcReply reply = Dispatch(caller, port, working);

  for (auto it = active.rbegin(); it != active.rend(); ++it) {
    (*it)->OnReturn(context, reply);
  }
  return reply;
}

IpcReply Kernel::Dispatch(ProcessId caller, PortId port, const IpcMessage& message) {
  std::optional<Port> snapshot = SnapshotPort(port);
  if (!snapshot.has_value()) {
    return IpcReply{NotFound("no such port"), {}, {}, 0};
  }
  if (snapshot->handler == nullptr) {
    return IpcReply{Unavailable("no handler bound to port"), {}, {}, 0};
  }
  // The handler runs with no kernel lock held. A concurrent DestroyPort
  // lets this in-flight call complete against the handler captured here
  // (the snapshot carries the port generation for callers that care).
  IpcContext context{caller, port};
  return snapshot->handler->Handle(context, message);
}

// ---------------------------------------------------------- Interposition

Result<uint64_t> Kernel::Interpose(ProcessId monitor, PortId port, Interceptor* interceptor) {
  if (!SnapshotPort(port).has_value()) {
    return NotFound("no such port");
  }
  if (interceptor == nullptr) {
    return InvalidArgument("null interceptor");
  }
  // Interposition is itself a guarded operation: consent is expressed by a
  // goal formula on the port (§3.2). The op id is hoisted; the object name
  // is caller-influenced, so it interns through the charged surface.
  static const OpId interpose_op = InternOp("interpose");
  Result<ObjectId> object = InternObjectCharged(monitor, "port:" + std::to_string(port));
  if (!object.ok()) {
    return object.status();
  }
  Status authorized = Authorize(AuthzRequest{monitor, interpose_op, *object});
  if (!authorized.ok()) {
    return authorized;
  }
  uint64_t token = next_interpose_token_.fetch_add(1);
  std::unique_lock<std::shared_mutex> lock(interpose_mu_);
  interpositions_.push_back(Interposition{token, port, monitor, interceptor});
  return token;
}

Status Kernel::RemoveInterposition(uint64_t token) {
  std::unique_lock<std::shared_mutex> lock(interpose_mu_);
  for (auto it = interpositions_.begin(); it != interpositions_.end(); ++it) {
    if (it->token == token) {
      interpositions_.erase(it);
      return OkStatus();
    }
  }
  return NotFound("no such interposition");
}

Result<PortId> Kernel::SyscallPort(ProcessId pid) {
  {
    std::lock_guard<std::mutex> lock(syscall_ports_mu_);
    auto it = syscall_ports_.find(pid);
    if (it != syscall_ports_.end()) {
      return it->second;
    }
  }
  if (!IsAlive(pid)) {
    return NotFound("no such process");
  }
  Result<PortId> port = CreatePort(kKernelProcessId);
  if (!port.ok()) {
    return port;
  }
  std::lock_guard<std::mutex> lock(syscall_ports_mu_);
  auto [it, inserted] = syscall_ports_.emplace(pid, *port);
  if (!inserted) {
    // Raced another creator; theirs won. Ours stays as an unused kernel
    // port rather than risking destroying a port mid-concurrent-call.
    return it->second;
  }
  return *port;
}

// -------------------------------------------------------------- Syscalls

IpcReply Kernel::Invoke(ProcessId caller, Syscall call, const IpcMessage& message) {
  ProcessId parent = kKernelProcessId;
  {
    const ProcessShard& shard = process_shards_[ShardOfId(caller)];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto proc_it = shard.procs.find(caller);
    if (proc_it == shard.procs.end() || !proc_it->second.alive.load()) {
      return IpcReply{NotFound("no such process"), {}, {}, 0};
    }
    const Process& proc = proc_it->second;
    if (proc.allowed_syscalls.has_value() && !proc.allowed_syscalls->contains(call)) {
      return IpcReply{PermissionDenied("system call relinquished"), {}, {}, 0};
    }
    parent = proc.parent;
  }

  IpcMessage working = message;
  if (interposition_enabled_.load()) {
    // Per-syscall parameter marshaling plus the process's syscall-channel
    // interceptor chain.
    Bytes wire = MarshalMessage(message);
    Result<IpcMessage> unmarshaled = UnmarshalMessage(wire);
    if (!unmarshaled.ok()) {
      return IpcReply{unmarshaled.status(), {}, {}, 0};
    }
    working = std::move(*unmarshaled);
    PortId sys_port = 0;
    {
      std::lock_guard<std::mutex> lock(syscall_ports_mu_);
      auto it = syscall_ports_.find(caller);
      if (it != syscall_ports_.end()) {
        sys_port = it->second;
      }
    }
    if (sys_port != 0) {
      IpcContext context{caller, sys_port};
      working.operation = std::string(SyscallName(call));
      std::vector<Interceptor*> active;
      {
        std::shared_lock<std::shared_mutex> lock(interpose_mu_);
        for (auto it = interpositions_.rbegin(); it != interpositions_.rend(); ++it) {
          if (it->port == sys_port) {
            active.push_back(it->interceptor);
          }
        }
      }
      for (Interceptor* interceptor : active) {
        if (interceptor->OnCall(context, working) == InterposeVerdict::kDeny) {
          return IpcReply{PermissionDenied("blocked by reference monitor"), {}, {}, 0};
        }
      }
    }
  }

  switch (call) {
    case Syscall::kNull:
      return IpcReply{OkStatus(), {}, {}, 0};
    case Syscall::kGetPpid:
      return IpcReply{OkStatus(), {}, {}, static_cast<int64_t>(parent)};
    case Syscall::kGetTimeOfDay:
      return IpcReply{OkStatus(), {}, {}, static_cast<int64_t>(NowMicros())};
    case Syscall::kYield: {
      std::unique_lock<std::mutex> lock(sched_mu_);
      Result<ProcessId> next = scheduler_->Tick();
      lock.unlock();
      return IpcReply{OkStatus(), {}, {},
                      next.ok() ? static_cast<int64_t>(*next) : static_cast<int64_t>(caller)};
    }
    case Syscall::kOpen:
    case Syscall::kClose:
    case Syscall::kRead:
    case Syscall::kWrite: {
      PortId fs_port = fs_port_.load();
      if (fs_port == 0) {
        return IpcReply{Unavailable("no filesystem server"), {}, {}, 0};
      }
      IpcMessage forwarded = working;
      forwarded.operation = std::string(SyscallName(call));
      // Client-server microkernel architecture: the file operation is one
      // more IPC hop to the user-level server (Table 1's 2-3x).
      return Call(caller, fs_port, forwarded);
    }
    case Syscall::kProcRead: {
      if (working.args.empty()) {
        return IpcReply{InvalidArgument("proc_read needs a path"), {}, {}, 0};
      }
      // Interned fast path: the op id is hoisted once; the object name is
      // caller-supplied and so interns through the charged surface (a
      // process probing endless novel proc paths exhausts its own name
      // quota, not the table).
      static const OpId read_op = InternOp("read");
      Result<ObjectId> object = InternObjectCharged(caller, "proc:" + working.args[0]);
      if (!object.ok()) {
        return IpcReply{object.status(), {}, {}, 0};
      }
      Status authorized = Authorize(AuthzRequest{caller, read_op, *object});
      if (!authorized.ok()) {
        return IpcReply{authorized, {}, {}, 0};
      }
      Result<std::string> value = procfs_.Read(working.args[0]);
      if (!value.ok()) {
        return IpcReply{value.status(), {}, {}, 0};
      }
      return IpcReply{OkStatus(), *value, {}, 0};
    }
    case Syscall::kIpcCall: {
      if (working.args.empty()) {
        return IpcReply{InvalidArgument("ipc_call needs a port"), {}, {}, 0};
      }
      // args[0] is caller-controlled: parse defensively (stoull would throw
      // out of the kernel on "garbage" or a 100-digit number).
      std::optional<uint64_t> parsed_port = ParseDecimalU64(working.args[0]);
      if (!parsed_port.has_value()) {
        return IpcReply{InvalidArgument("ipc_call: port must be a decimal id"), {}, {}, 0};
      }
      PortId port = static_cast<PortId>(*parsed_port);
      IpcMessage inner = working;
      inner.args.erase(inner.args.begin());
      if (!inner.args.empty()) {
        inner.operation = inner.args.front();
        inner.args.erase(inner.args.begin());
      }
      return Call(caller, port, inner);
    }
    case Syscall::kSay:
    case Syscall::kSetGoal:
    case Syscall::kSetProof:
    case Syscall::kInterpose:
      // Control operations are handled by the core layer (which owns label
      // and goal stores); reaching the raw kernel is a wiring error.
      return IpcReply{Unavailable("control syscall not wired to an authorization engine"),
                      {},
                      {},
                      0};
  }
  return IpcReply{Internal("unhandled syscall"), {}, {}, 0};
}

// ---------------------------------------------------------- Authorization

Status Kernel::Authorize(const AuthzRequest& request) {
  if (engine_ == nullptr) {
    return OkStatus();  // Authorization disabled (Fig. 4 case "system call").
  }
  bool cache_enabled = decision_cache_enabled_.load();
  if (cache_enabled) {
    std::optional<bool> cached = decision_cache_.Lookup(request);
    if (cached.has_value()) {
      return *cached ? OkStatus()
                     : PermissionDenied("denied (cached guard decision)");
    }
  }
  // The engine upcall runs outside the cache locks, so a concurrent
  // setgoal/setproof can invalidate this tuple's subregion mid-evaluation.
  // Snapshot the subregion generation first; InsertIfUnchanged drops the
  // verdict if an invalidation raced it, so a stale decision is recomputed
  // on the next miss instead of cached past its goal change.
  uint64_t generation = cache_enabled ? decision_cache_.Generation(request) : 0;
  AuthzDecision decision = engine_->Authorize(request);
  if (cache_enabled && decision.cacheable) {
    decision_cache_.InsertIfUnchanged(request, decision.allowed(), generation);
  }
  return decision.ToStatus();
}

Status Kernel::Authorize(ProcessId subject, std::string_view operation,
                         std::string_view object) {
  // The untrusted string surface: the object name is charged to the
  // subject's quota root before it can grow the intern table.
  Result<ObjectId> obj = InternObjectCharged(subject, object);
  if (!obj.ok()) {
    return obj.status();
  }
  return Authorize(AuthzRequest{subject, InternOp(operation), *obj});
}

std::vector<Status> Kernel::AuthorizeBatch(std::span<const AuthzRequest> requests) {
  std::vector<Status> results(requests.size());
  if (engine_ == nullptr) {
    return results;  // Value-initialized Status is OK.
  }
  bool cache_enabled = decision_cache_enabled_.load();
  std::vector<AuthzRequest> misses;
  std::vector<size_t> miss_slots;
  std::vector<uint64_t> miss_generations;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (cache_enabled) {
      std::optional<bool> cached = decision_cache_.Lookup(requests[i]);
      if (cached.has_value()) {
        results[i] =
            *cached ? OkStatus() : PermissionDenied("denied (cached guard decision)");
        continue;
      }
    }
    misses.push_back(requests[i]);
    miss_slots.push_back(i);
    // Snapshot before the engine upcall: see Authorize for the stale-insert
    // race this closes.
    miss_generations.push_back(cache_enabled ? decision_cache_.Generation(requests[i]) : 0);
  }
  if (misses.empty()) {
    return results;
  }
  std::vector<AuthzDecision> decisions = engine_->AuthorizeBatch(misses);
  for (size_t j = 0; j < misses.size(); ++j) {
    if (cache_enabled && decisions[j].cacheable) {
      decision_cache_.InsertIfUnchanged(misses[j], decisions[j].allowed(),
                                        miss_generations[j]);
    }
    results[miss_slots[j]] = decisions[j].ToStatus();
  }
  return results;
}

Result<ObjectId> Kernel::InternObjectCharged(ProcessId subject, std::string_view object) {
  size_t cap = object_name_quota_.load();
  if (cap == 0) {
    return InternObject(object);  // Quotas disabled.
  }
  // Already-interned names cost nothing: the common case (every repeat
  // authorization of a known object) takes one striped Find probe and
  // never touches the quota lock.
  std::optional<ObjectId> existing = FindObject(object);
  if (existing.has_value()) {
    return *existing;
  }
  ProcessId root = subject;
  {
    const ProcessShard& shard = process_shards_[ShardOfId(subject)];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.procs.find(subject);
    if (it != shard.procs.end()) {
      root = it->second.quota_root;
    }
  }
  // Charging serializes on one mutex, but only for genuinely novel names —
  // a workload that stays inside its working set never lands here.
  std::lock_guard<std::mutex> lock(name_quota_mu_);
  size_t& charged = object_names_charged_[root];
  if (charged >= cap) {
    return ResourceExhausted(
        "object name quota exhausted for quota root " + std::to_string(root) + " (" +
        std::to_string(cap) + " novel names); denied before interning \"" +
        std::string(object) + "\"");
  }
  bool created = false;
  ObjectId id = ObjectTable().Intern(object, &created);
  if (created) {
    ++charged;
  }
  return id;
}

void Kernel::OnProofUpdate(const AuthzRequest& request) {
  decision_cache_.InvalidateEntry(request);
}

void Kernel::OnGoalUpdate(OpId op, ObjectId obj) {
  decision_cache_.InvalidateSubregion(op, obj);
}

void Kernel::ReplaceScheduler(std::unique_ptr<Scheduler> scheduler) {
  std::lock_guard<std::mutex> lock(sched_mu_);
  scheduler_ = std::move(scheduler);
}

}  // namespace nexus::kernel
