#include "net/node.h"

namespace nexus::net {

NetNode::NetNode(core::Nexus* nexus, Transport* transport, NodeId id)
    : nexus_(nexus), transport_(transport), id_(std::move(id)) {
  transport_->Attach(id_, this);
}

NetNode::~NetNode() { transport_->Detach(id_); }

void NetNode::RegisterService(const std::string& name, Service* service) {
  std::lock_guard<std::mutex> lock(mu_);
  services_[name] = service;
}

AttestedChannel* NetNode::UsableChannelLocked(const NodeId& peer) {
  auto it = channel_by_peer_.find(peer);
  if (it == channel_by_peer_.end()) {
    return nullptr;
  }
  AttestedChannel* channel = channels_[it->second].get();
  // A failed channel, or an unestablished responder channel (e.g. spawned
  // by a junk hello from an impostor claiming this peer's node id), must
  // not block us from initiating a fresh handshake of our own.
  if (channel != nullptr && !channel->established() &&
      (channel->state() == ChannelState::kFailed || !channel->is_initiator())) {
    return nullptr;
  }
  return channel;
}

Result<AttestedChannel*> NetNode::Connect(const NodeId& peer) {
  AttestedChannel* channel = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    channel = UsableChannelLocked(peer);
    if (channel == nullptr) {
      uint64_t id = transport_->AllocateChannelId();
      auto created = std::make_unique<AttestedChannel>(nexus_, transport_, this, id_, peer,
                                                       id, /*initiator=*/true);
      channel = created.get();
      channels_[id] = std::move(created);
      channel_by_peer_[peer] = id;
    }
  }
  if (channel->established()) {
    return channel;  // The worker-thread fast path: no handshake, no pump.
  }
  // The handshake pumps the fabric; mu_ must not be held (deliveries land
  // back in OnMessage below).
  Status connected = channel->Connect();
  if (!connected.ok()) {
    return connected;
  }
  std::lock_guard<std::mutex> lock(mu_);
  channel_by_peer_[peer] = channel->channel_id();
  return channel;
}

AttestedChannel* NetNode::ChannelTo(const NodeId& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channel_by_peer_.find(peer);
  if (it == channel_by_peer_.end()) {
    return nullptr;
  }
  return channels_[it->second].get();
}

void NetNode::OnMessage(const Message& message) {
  AttestedChannel* channel = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = channels_.find(message.channel);
    if (it == channels_.end()) {
      if (message.kind != "hello") {
        return;  // Data or handshake tail for a channel we never opened.
      }
      auto created = std::make_unique<AttestedChannel>(nexus_, transport_, this, id_,
                                                       message.from, message.channel,
                                                       /*initiator=*/false);
      it = channels_.emplace(message.channel, std::move(created)).first;
    }
    channel = it->second.get();
  }
  // The channel handler may dispatch a service request or send replies;
  // deliveries are serialized by the transport pump lock, not by mu_.
  channel->OnTransportMessage(message);
  std::lock_guard<std::mutex> lock(mu_);
  // The peer routing entry is only (re)bound to channels that earned it:
  // an unauthenticated hello from an impostor must not shadow a live (or
  // in-progress) channel to the real peer. Unverified responder channels
  // claim the slot only if the peer had none at all.
  if (channel->established() ||
      channel_by_peer_.find(channel->peer_node()) == channel_by_peer_.end()) {
    channel_by_peer_[channel->peer_node()] = channel->channel_id();
  }
}

Result<Bytes> NetNode::HandleRequest(AttestedChannel& channel, const std::string& service,
                                     ByteView request) {
  Service* handler = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = services_.find(service);
    if (it != services_.end()) {
      handler = it->second;
    }
  }
  if (handler == nullptr) {
    return NotFound("node " + id_ + " exposes no service named " + service);
  }
  return handler->Handle(channel, request);
}

}  // namespace nexus::net
