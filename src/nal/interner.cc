#include "nal/interner.h"

namespace nexus::nal {

namespace {

inline uint64_t Mix(uint64_t h, uint64_t v) {
  // splitmix64-style combiner: cheap, and good enough that the interner's
  // Equals() fallback is exercised only by genuine collisions.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

uint64_t HashBytes(std::string_view s, uint64_t seed) {
  uint64_t h = seed ^ 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t HashPrincipal(const Principal& p) {
  uint64_t h = HashBytes(p.base(), 0x5bd1e995);
  for (const std::string& tag : p.path()) {
    h = Mix(h, HashBytes(tag, 0x2545f491));
  }
  return h;
}

uint64_t HashTerm(const Term& t) {
  // Term equality puns a symbol with a single-component principal of the
  // same name (see Term::operator==); both must land on the symbol hash.
  constexpr uint64_t kSymbolSeed = 0x104;
  uint64_t h = static_cast<uint64_t>(t.kind()) + 0x100;
  switch (t.kind()) {
    case TermKind::kInt:
      return Mix(h, static_cast<uint64_t>(t.int_value()));
    case TermKind::kString:
    case TermKind::kVariable:
      return Mix(h, HashBytes(t.text(), h));
    case TermKind::kSymbol:
      return Mix(kSymbolSeed, HashBytes(t.text(), kSymbolSeed));
    case TermKind::kPrincipal:
      if (t.principal().path().empty()) {
        return Mix(kSymbolSeed, HashBytes(t.principal().base(), kSymbolSeed));
      }
      return Mix(h, HashPrincipal(t.principal()));
  }
  return h;
}

}  // namespace

uint64_t StructuralHash(const Formula& f) {
  if (f == nullptr) {
    return 0;
  }
  uint64_t h = static_cast<uint64_t>(f->kind()) + 0x9000;
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return Mix(h, 1);
    case FormulaKind::kPred:
      h = Mix(h, HashBytes(f->pred_name(), h));
      for (const Term& t : f->args()) {
        h = Mix(h, HashTerm(t));
      }
      return h;
    case FormulaKind::kCompare:
      h = Mix(h, static_cast<uint64_t>(f->compare_op()));
      h = Mix(h, HashTerm(f->lhs()));
      return Mix(h, HashTerm(f->rhs()));
    case FormulaKind::kSays:
      h = Mix(h, HashPrincipal(f->speaker()));
      return Mix(h, StructuralHash(f->child1()));
    case FormulaKind::kSpeaksFor:
      h = Mix(h, HashPrincipal(f->delegator()));
      h = Mix(h, HashPrincipal(f->delegatee()));
      if (f->on_scope().has_value()) {
        h = Mix(h, HashBytes(*f->on_scope(), h));
      }
      return h;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
      h = Mix(h, StructuralHash(f->child1()));
      return Mix(h, StructuralHash(f->child2()));
    case FormulaKind::kNot:
      return Mix(h, StructuralHash(f->child1()));
  }
  return h;
}

FormulaId Interner::Intern(const Formula& f) {
  if (f == nullptr) {
    return kInvalidFormulaId;
  }
  auto by_ptr = by_pointer_.find(f.get());
  if (by_ptr != by_pointer_.end()) {
    return by_ptr->second;
  }
  uint64_t hash = StructuralHash(f);
  std::vector<FormulaId>& bucket = by_hash_[hash];
  for (FormulaId id : bucket) {
    if (Equals(formulas_[id - 1], f)) {
      // Deliberately NOT memoized by pointer: `f` is an alias the interner
      // does not keep alive, and a freed node's address can be reused by a
      // different formula later. Only canonical nodes (owned by formulas_,
      // immortal) are safe pointer-map keys.
      return id;
    }
  }
  formulas_.push_back(f);
  FormulaId id = static_cast<FormulaId>(formulas_.size());
  bucket.push_back(id);
  by_pointer_[f.get()] = id;  // f is now canonical and owned forever.
  return id;
}

Formula Interner::Canonical(const Formula& f) { return Resolve(Intern(f)); }

Formula Interner::Resolve(FormulaId id) const {
  if (id == kInvalidFormulaId || id > formulas_.size()) {
    return nullptr;
  }
  return formulas_[id - 1];
}

Interner& Interner::Global() {
  static Interner* interner = new Interner();
  return *interner;
}

}  // namespace nexus::nal
