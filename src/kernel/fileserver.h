// The user-level RAM filesystem server.
//
// Nexus implements filesystem functionality outside the kernel; file
// syscalls are forwarded over IPC to this server (which is why Table 1's
// open/close/read/write are 2-3x a monolithic kernel's). Per-file, per-
// operation goal formulas are enforced by routing each access through the
// kernel's Authorize path with object "file:<path>".
#ifndef NEXUS_KERNEL_FILESERVER_H_
#define NEXUS_KERNEL_FILESERVER_H_

#include <map>
#include <string>

#include "kernel/ipc.h"
#include "kernel/kernel.h"

namespace nexus::kernel {

class FileServer : public PortHandler {
 public:
  explicit FileServer(Kernel* kernel) : kernel_(kernel) {}

  // Operations: create(path), open(path)->fd, close(fd), read(fd, off, len)
  // -> data, write(fd, off)+data, unlink(path), stat(path)->size.
  IpcReply Handle(const IpcContext& context, const IpcMessage& message) override;

  // Direct (non-IPC) access for tests and setup code.
  Status CreateFile(const std::string& path, ByteView content = {});
  Result<Bytes> ReadFile(const std::string& path) const;
  bool Exists(const std::string& path) const { return files_.contains(path); }
  size_t FileCount() const { return files_.size(); }

 private:
  struct OpenFile {
    std::string path;
    ProcessId owner;
  };

  IpcReply Error(Status status) { return IpcReply{std::move(status), {}, {}, 0}; }

  Kernel* kernel_;
  std::map<std::string, Bytes> files_;
  std::map<int64_t, OpenFile> open_files_;
  int64_t next_fd_ = 3;
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_FILESERVER_H_
