// The authorization engine: the core-layer half of Figure 1.
//
// Implements the kernel's AuthorizationEngine upcall interface. On a
// decision-cache miss the kernel lands here; the engine locates the goal
// formula, assembles the subject's credentials (its labelstore, the system
// labelstore, and object-scoped auxiliary labels), retrieves the proof the
// subject pre-submitted for this access-control tuple, and dispatches to
// the designated guard — the kernel-designated default guard for kernel
// resources, or any guard process the goal names (§2.5, §2.6).
//
// The engine is identity-based end to end: access-control tuples are
// (ProcessId, OpId, ObjectId) — interned integers, no string keys — and the
// batched entry point AuthorizeBatch amortizes credential collection per
// subject and lets the guard collapse duplicate authority consultations
// across the batch. The string-taking control-plane calls (setgoal,
// setproof, object registration) intern-and-forward, rejecting names that
// would have been ambiguous under the legacy "\x1f"-joined string keys.
#ifndef NEXUS_CORE_ENGINE_H_
#define NEXUS_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/goalstore.h"
#include "core/guard.h"
#include "core/labelstore.h"
#include "kernel/kernel.h"
#include "nal/proof.h"

namespace nexus::core {

// Threading: the engine is a MONITOR — every public entry point serializes
// on one internal (recursive) mutex, so the kernel's concurrent
// authorization frontend may upcall Authorize/AuthorizeBatch from worker
// threads while other threads mutate goals/proofs/labels. The mutex is
// recursive because control-plane calls re-enter authorization on the same
// thread (SetGoal authorizes "setgoal" through the kernel, which upcalls
// Authorize). Reference-returning accessors (StoreFor, SystemStore,
// goals, objects, default_guard) hand out state that is only safe to use
// single-threaded; confine them to the kernel thread.
class Engine : public kernel::AuthorizationEngine {
 public:
  Engine(kernel::Kernel* kernel, Guard* default_guard);

  // ---------------------------------------------- kernel upcall interface
  kernel::AuthzDecision Authorize(const kernel::AuthzRequest& request) override;
  // Batched authorization: credentials are collected once per distinct
  // subject and duplicate authority queries are collapsed batch-wide (a
  // remote authority consulted by K requests costs one VouchBatch round
  // trip, not K).
  std::vector<kernel::AuthzDecision> AuthorizeBatch(
      std::span<const kernel::AuthzRequest> requests) override;

  // ------------------------------------------------------------- Labels
  // The `say` system call: records `<subject's principal> says <statement>`
  // in the subject's labelstore. The statement text is parsed as NAL.
  Result<LabelHandle> Say(kernel::ProcessId speaker, const std::string& statement_text);
  Result<LabelHandle> SayFormula(kernel::ProcessId speaker, const nal::Formula& statement);
  // System-issued labels (kernel bindings, service attestations). These
  // live in the system labelstore visible to every guard evaluation.
  LabelHandle SayAs(const nal::Principal& speaker, const nal::Formula& statement);
  LabelStore& StoreFor(kernel::ProcessId pid) { return stores_[pid]; }
  LabelStore& SystemStore() { return system_store_; }
  // Auxiliary labels the resource owner attaches to one object (§2.5).
  void AddObjectLabel(kernel::ObjectId object, const nal::Formula& label);
  void AddObjectLabel(const std::string& object, const nal::Formula& label) {
    AddObjectLabel(kernel::InternObject(object), label);
  }

  // -------------------------------------------------------------- Goals
  // The `setgoal` system call; itself a guarded operation on the object.
  Status SetGoal(kernel::ProcessId caller, kernel::OpId op, kernel::ObjectId obj,
                 nal::Formula goal, kernel::PortId guard_port = 0);
  Status SetGoal(kernel::ProcessId caller, const std::string& operation,
                 const std::string& object, nal::Formula goal, kernel::PortId guard_port = 0);
  Status ClearGoal(kernel::ProcessId caller, kernel::OpId op, kernel::ObjectId obj);
  Status ClearGoal(kernel::ProcessId caller, const std::string& operation,
                   const std::string& object);
  const GoalStore& goals() const { return goals_; }

  // -------------------------------------------------------------- Proofs
  // Pre-submits the proof to use for an access-control tuple (the paper's
  // call(sbj, op, obj, proof, labels) carries the proof; pre-submission
  // plus the decision cache is how repeated calls stay cheap).
  Status SetProof(const kernel::AuthzRequest& tuple, nal::Proof proof);
  Status SetProof(kernel::ProcessId subject, const std::string& operation,
                  const std::string& object, nal::Proof proof);
  Status ClearProof(const kernel::AuthzRequest& tuple);
  Status ClearProof(kernel::ProcessId subject, const std::string& operation,
                    const std::string& object);

  // ------------------------------------------------------------- Objects
  Status RegisterObject(kernel::ObjectId object, kernel::ProcessId owner,
                        kernel::ProcessId manager);
  Status RegisterObject(const std::string& object, kernel::ProcessId owner,
                        kernel::ProcessId manager);
  Status TransferOwnership(kernel::ProcessId caller, const std::string& object,
                           kernel::ProcessId new_owner);
  const ObjectRegistry& objects() const { return objects_; }

  Guard& default_guard() { return *default_guard_; }

  // Collects the credentials visible to a guard evaluation for `subject`
  // on `object`.
  std::vector<nal::Formula> CollectCredentials(kernel::ProcessId subject,
                                               kernel::ObjectId object) const;
  std::vector<nal::Formula> CollectCredentials(kernel::ProcessId subject,
                                               const std::string& object) const {
    // Read path: a never-interned object cannot carry object labels, so
    // only the subject-side credentials apply (and the table must not grow
    // from lookups with novel names).
    std::optional<kernel::ObjectId> id = kernel::FindObject(object);
    if (!id.has_value()) {
      std::lock_guard<std::recursive_mutex> lock(mu_);
      std::vector<nal::Formula> credentials;
      AppendSubjectCredentials(subject, &credentials);
      return credentials;
    }
    return CollectCredentials(subject, *id);
  }

 private:
  // Interned access-control tuple as an ordered map key.
  struct TupleKey {
    kernel::ProcessId subject = 0;
    kernel::OpId op = 0;
    kernel::ObjectId obj = 0;
    friend auto operator<=>(const TupleKey&, const TupleKey&) = default;
  };
  static TupleKey KeyOf(const kernel::AuthzRequest& r) {
    return TupleKey{r.subject, r.op, r.obj};
  }

  // The bootstrap policy when no goal formula exists (§2.6).
  kernel::AuthzDecision DefaultPolicy(const kernel::AuthzRequest& request);

  // The two halves of CollectCredentials, split so AuthorizeBatch can
  // amortize the subject half across a batch while staying credential-
  // for-credential identical to the serial path.
  void AppendSubjectCredentials(kernel::ProcessId subject,
                                std::vector<nal::Formula>* out) const;
  void AppendObjectCredentials(kernel::ObjectId object,
                               std::vector<nal::Formula>* out) const;

  // Designated guard: serialize the request and upcall over IPC.
  kernel::AuthzDecision UpcallDesignatedGuard(const kernel::AuthzRequest& request,
                                              const GoalEntry& goal, const nal::Proof& proof,
                                              const std::vector<nal::Formula>& credentials);

  // Monotonic stamp covering every input a cached guard verdict depends on
  // for (subject, object): label stores, object labels, and the proof
  // registration itself. Strictly increases on any relevant mutation.
  uint64_t StateVersion(kernel::ProcessId subject, kernel::ObjectId object,
                        const TupleKey& proof_key) const;

  // The monitor lock (see class comment). Guards every member below plus
  // the default guard's internal caches.
  mutable std::recursive_mutex mu_;

  kernel::Kernel* kernel_;
  Guard* default_guard_;
  GoalStore goals_;
  ObjectRegistry objects_;
  std::map<kernel::ProcessId, LabelStore> stores_;
  LabelStore system_store_;
  std::map<kernel::ObjectId, std::vector<nal::Formula>> object_labels_;
  std::map<TupleKey, nal::Proof> proofs_;
  std::map<TupleKey, uint64_t> proof_versions_;
};

}  // namespace nexus::core

#endif  // NEXUS_CORE_ENGINE_H_
