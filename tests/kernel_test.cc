#include <gtest/gtest.h>

#include <set>

#include "kernel/decision_cache.h"
#include "kernel/fileserver.h"
#include "kernel/hash_attestation.h"
#include "kernel/kernel.h"
#include "kernel/sched.h"

namespace nexus::kernel {
namespace {

// Records calls; used as both a port handler and an interceptor target.
class EchoHandler : public PortHandler {
 public:
  IpcReply Handle(const IpcContext& context, const IpcMessage& message) override {
    ++calls;
    last_caller = context.caller;
    last_operation = message.operation;
    return IpcReply{OkStatus(), message.operation, message.data,
                    static_cast<int64_t>(message.args.size())};
  }
  int calls = 0;
  ProcessId last_caller = 0;
  std::string last_operation;
};

class DenyAllEngine : public AuthorizationEngine {
 public:
  AuthzDecision Authorize(const AuthzRequest&) override {
    ++upcalls;
    return AuthzDecision::Deny(PermissionDenied("deny-all"), cacheable);
  }
  int upcalls = 0;
  bool cacheable = true;
};

class AllowAllEngine : public AuthorizationEngine {
 public:
  AuthzDecision Authorize(const AuthzRequest&) override {
    ++upcalls;
    return AuthzDecision::Allow(cacheable);
  }
  int upcalls = 0;
  bool cacheable = true;
};

// ---------------------------------------------------------------- Process

TEST(KernelProcessTest, CreateAndQuery) {
  Kernel k;
  Result<ProcessId> pid = k.CreateProcess("webserver", ToBytes("lighttpd-binary"));
  ASSERT_TRUE(pid.ok());
  EXPECT_TRUE(k.IsAlive(*pid));
  EXPECT_EQ(*k.GetParent(*pid), kKernelProcessId);
  EXPECT_EQ((*k.GetProcess(*pid))->name, "webserver");
}

TEST(KernelProcessTest, PrincipalNaming) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  EXPECT_EQ(k.ProcessPrincipal(pid).ToString(), "Nexus.ipd." + std::to_string(pid));
  EXPECT_TRUE(k.KernelPrincipal().IsPrefixOf(k.ProcessPrincipal(pid)));
  EXPECT_EQ(Kernel::ProcPath(pid), "/proc/ipd/" + std::to_string(pid));
}

TEST(KernelProcessTest, ChildInheritsQuotaRoot) {
  Kernel k;
  ProcessId root = *k.CreateProcess("root", ToBytes("r"));
  ProcessId child = *k.CreateProcess("child", ToBytes("c"), root);
  ProcessId grandchild = *k.CreateProcess("gc", ToBytes("g"), child);
  EXPECT_EQ((*k.GetProcess(child))->quota_root, root);
  EXPECT_EQ((*k.GetProcess(grandchild))->quota_root, root);
}

TEST(KernelProcessTest, CreateUnderDeadParentFails) {
  Kernel k;
  ProcessId p = *k.CreateProcess("p", ToBytes("b"));
  k.KillProcess(p);
  EXPECT_FALSE(k.CreateProcess("c", ToBytes("c"), p).ok());
}

TEST(KernelProcessTest, KillRemovesProcfsNodesAndPorts) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  PortId port = *k.CreatePort(pid);
  EXPECT_TRUE(k.procfs().Read(Kernel::ProcPath(pid) + "/name").ok());
  ASSERT_TRUE(k.KillProcess(pid).ok());
  EXPECT_FALSE(k.IsAlive(pid));
  EXPECT_FALSE(k.procfs().Read(Kernel::ProcPath(pid) + "/name").ok());
  EXPECT_FALSE(k.PortOwner(port).ok());
}

TEST(KernelProcessTest, LaunchHashPublished) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("binary-image"));
  Result<std::string> hash = k.procfs().Read(Kernel::ProcPath(pid) + "/hash");
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(hash->size(), 64u);  // SHA-256 hex.
}

TEST(KernelProcessTest, SyscallRestrictionIsMonotone) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  ASSERT_TRUE(k.RestrictSyscalls(pid, {Syscall::kNull, Syscall::kGetPpid}).ok());
  // Narrowing further is fine.
  ASSERT_TRUE(k.RestrictSyscalls(pid, {Syscall::kNull}).ok());
  // Re-acquiring a relinquished call is not.
  EXPECT_FALSE(k.RestrictSyscalls(pid, {Syscall::kNull, Syscall::kYield}).ok());
}

TEST(KernelProcessTest, RelinquishedSyscallDenied) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  k.RestrictSyscalls(pid, {Syscall::kNull});
  EXPECT_TRUE(k.Invoke(pid, Syscall::kNull, {}).status.ok());
  EXPECT_EQ(k.Invoke(pid, Syscall::kGetPpid, {}).status.code(), ErrorCode::kPermissionDenied);
}

// ------------------------------------------------------------------- IPC

TEST(KernelIpcTest, CallDispatchesToHandler) {
  Kernel k;
  ProcessId server = *k.CreateProcess("server", ToBytes("s"));
  ProcessId client = *k.CreateProcess("client", ToBytes("c"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);

  IpcMessage msg;
  msg.operation = "ping";
  msg.args = {"a", "b"};
  IpcReply reply = k.Call(client, port, msg);
  EXPECT_TRUE(reply.status.ok());
  EXPECT_EQ(reply.text, "ping");
  EXPECT_EQ(reply.value, 2);
  EXPECT_EQ(handler.last_caller, client);
}

TEST(KernelIpcTest, CallOnUnboundPortFails) {
  Kernel k;
  ProcessId server = *k.CreateProcess("server", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EXPECT_EQ(k.Call(server, port, {}).status.code(), ErrorCode::kUnavailable);
}

TEST(KernelIpcTest, CallOnMissingPortFails) {
  Kernel k;
  EXPECT_EQ(k.Call(kKernelProcessId, 999, {}).status.code(), ErrorCode::kNotFound);
}

TEST(KernelIpcTest, ChannelsTrackConnectivity) {
  Kernel k;
  ProcessId a = *k.CreateProcess("a", ToBytes("a"));
  ProcessId b = *k.CreateProcess("b", ToBytes("b"));
  PortId port = *k.CreatePort(b);
  EXPECT_FALSE(k.HasChannel(a, port));
  ASSERT_TRUE(k.ConnectPort(a, port).ok());
  EXPECT_TRUE(k.HasChannel(a, port));
  ASSERT_TRUE(k.DisconnectPort(a, port).ok());
  EXPECT_FALSE(k.HasChannel(a, port));
}

TEST(KernelIpcTest, MarshalingRoundTrip) {
  IpcMessage msg;
  msg.operation = "write";
  msg.args = {"fd:4", "", "arg with spaces"};
  msg.data = {0x00, 0xff, 0x10};
  Result<IpcMessage> round = UnmarshalMessage(MarshalMessage(msg));
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->operation, msg.operation);
  EXPECT_EQ(round->args, msg.args);
  EXPECT_EQ(round->data, msg.data);
}

TEST(KernelIpcTest, UnmarshalRejectsTruncation) {
  IpcMessage msg;
  msg.operation = "op";
  Bytes wire = MarshalMessage(msg);
  wire.pop_back();
  EXPECT_FALSE(UnmarshalMessage(wire).ok());
}

// --------------------------------------------------------- Interposition

class CountingInterceptor : public Interceptor {
 public:
  InterposeVerdict OnCall(const IpcContext&, IpcMessage& message) override {
    ++calls;
    if (!rewrite_to.empty()) {
      message.operation = rewrite_to;
    }
    return deny ? InterposeVerdict::kDeny : InterposeVerdict::kAllow;
  }
  void OnReturn(const IpcContext&, IpcReply& reply) override {
    ++returns;
    if (!annotate.empty()) {
      reply.text += annotate;
    }
  }
  int calls = 0;
  int returns = 0;
  bool deny = false;
  std::string rewrite_to;
  std::string annotate;
};

TEST(InterposeTest, InterceptorSeesAndModifiesCall) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  ProcessId monitor = *k.CreateProcess("m", ToBytes("m"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);

  CountingInterceptor interceptor;
  interceptor.rewrite_to = "rewritten";
  interceptor.annotate = "+seen";
  ASSERT_TRUE(k.Interpose(monitor, port, &interceptor).ok());

  IpcReply reply = k.Call(server, port, IpcMessage{"original", {}, {}});
  EXPECT_EQ(interceptor.calls, 1);
  EXPECT_EQ(interceptor.returns, 1);
  EXPECT_EQ(handler.last_operation, "rewritten");
  EXPECT_EQ(reply.text, "rewritten+seen");
}

TEST(InterposeTest, DenyBlocksCall) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  CountingInterceptor interceptor;
  interceptor.deny = true;
  k.Interpose(server, port, &interceptor);

  IpcReply reply = k.Call(server, port, IpcMessage{"x", {}, {}});
  EXPECT_EQ(reply.status.code(), ErrorCode::kPermissionDenied);
  EXPECT_EQ(handler.calls, 0);
  EXPECT_EQ(interceptor.returns, 0);  // Blocked calls skip OnReturn.
}

TEST(InterposeTest, InterpositionComposes) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  CountingInterceptor first;
  CountingInterceptor second;
  k.Interpose(server, port, &first);
  k.Interpose(server, port, &second);
  k.Call(server, port, IpcMessage{"x", {}, {}});
  EXPECT_EQ(first.calls, 1);
  EXPECT_EQ(second.calls, 1);
}

TEST(InterposeTest, RemoveInterposition) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  CountingInterceptor interceptor;
  uint64_t token = *k.Interpose(server, port, &interceptor);
  ASSERT_TRUE(k.RemoveInterposition(token).ok());
  EXPECT_FALSE(k.RemoveInterposition(token).ok());
  k.Call(server, port, IpcMessage{"x", {}, {}});
  EXPECT_EQ(interceptor.calls, 0);
}

TEST(InterposeTest, DisabledInterpositionSkipsInterceptors) {
  Kernel k;
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  EchoHandler handler;
  k.BindHandler(port, &handler);
  CountingInterceptor interceptor;
  k.Interpose(server, port, &interceptor);
  k.set_interposition_enabled(false);
  k.Call(server, port, IpcMessage{"x", {}, {}});
  EXPECT_EQ(interceptor.calls, 0);
  EXPECT_EQ(handler.calls, 1);
}

TEST(InterposeTest, InterposeSubjectToAuthorization) {
  Kernel k;
  DenyAllEngine engine;
  k.set_engine(&engine);
  ProcessId server = *k.CreateProcess("s", ToBytes("s"));
  PortId port = *k.CreatePort(server);
  CountingInterceptor interceptor;
  EXPECT_FALSE(k.Interpose(server, port, &interceptor).ok());
}

TEST(InterposeTest, SyscallInterpositionObservesAllSyscalls) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  PortId sys_port = *k.SyscallPort(pid);
  CountingInterceptor interceptor;
  k.Interpose(kKernelProcessId, sys_port, &interceptor);
  k.Invoke(pid, Syscall::kNull, {});
  k.Invoke(pid, Syscall::kGetPpid, {});
  EXPECT_EQ(interceptor.calls, 2);
}

// -------------------------------------------------------------- Syscalls

TEST(SyscallTest, BasicCalls) {
  Kernel k;
  ProcessId parent = *k.CreateProcess("parent", ToBytes("p"));
  ProcessId child = *k.CreateProcess("child", ToBytes("c"), parent);
  EXPECT_TRUE(k.Invoke(child, Syscall::kNull, {}).status.ok());
  EXPECT_EQ(k.Invoke(child, Syscall::kGetPpid, {}).value, static_cast<int64_t>(parent));
  IpcReply time1 = k.Invoke(child, Syscall::kGetTimeOfDay, {});
  EXPECT_TRUE(time1.status.ok());
  EXPECT_GT(time1.value, 0);
}

TEST(SyscallTest, YieldDrivesScheduler) {
  Kernel k;
  ProcessId a = *k.CreateProcess("a", ToBytes("a"));
  k.scheduler().AddClient(a, 1);
  IpcReply reply = k.Invoke(a, Syscall::kYield, {});
  EXPECT_TRUE(reply.status.ok());
  EXPECT_EQ(k.scheduler().TotalQuanta(), 1u);
}

TEST(SyscallTest, FileOpsWithoutFsServerFail) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  EXPECT_EQ(k.Invoke(pid, Syscall::kOpen, IpcMessage{"", {"/x"}, {}}).status.code(),
            ErrorCode::kUnavailable);
}

TEST(SyscallTest, DeadProcessCannotInvoke) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  k.KillProcess(pid);
  EXPECT_FALSE(k.Invoke(pid, Syscall::kNull, {}).status.ok());
}

TEST(SyscallTest, IpcCallRejectsNonNumericPortWithoutThrowing) {
  // The port argument is caller-controlled; a non-numeric or overlong
  // string must come back InvalidArgument, not escape as a std::stoull
  // exception that kills the simulation.
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  IpcReply garbage = k.Invoke(pid, Syscall::kIpcCall, IpcMessage{"", {"garbage"}, {}});
  EXPECT_EQ(garbage.status.code(), ErrorCode::kInvalidArgument);
  IpcReply huge = k.Invoke(pid, Syscall::kIpcCall,
                           IpcMessage{"", {"99999999999999999999999999"}, {}});
  EXPECT_EQ(huge.status.code(), ErrorCode::kInvalidArgument);
}

TEST(SyscallTest, ProcReadGoesThroughAuthorization) {
  Kernel k;
  ProcessId pid = *k.CreateProcess("p", ToBytes("b"));
  k.procfs().PublishValue(kKernelProcessId, "/proc/secret", "42");
  DenyAllEngine engine;
  k.set_engine(&engine);
  IpcReply denied = k.Invoke(pid, Syscall::kProcRead, IpcMessage{"", {"/proc/secret"}, {}});
  EXPECT_EQ(denied.status.code(), ErrorCode::kPermissionDenied);
  k.set_engine(nullptr);
  IpcReply allowed = k.Invoke(pid, Syscall::kProcRead, IpcMessage{"", {"/proc/secret"}, {}});
  EXPECT_EQ(allowed.text, "42");
}

// §2.9 applied to the name tables: novel object names arriving through the
// untrusted authorize-with-string surface are charged to the subject's
// quota root; past the cap the request is denied with a reason instead of
// growing the append-only table (ROADMAP "Name-table quotas").
TEST(KernelAuthorizeTest, ObjectNameQuotaBoundsUntrustedInterning) {
  Kernel k;
  ProcessId prober = *k.CreateProcess("prober", ToBytes("p"));
  ProcessId child = *k.CreateProcess("accomplice", ToBytes("c"), prober);
  ProcessId bystander = *k.CreateProcess("bystander", ToBytes("b"));
  k.set_object_name_quota(4);

  // Four novel names fit the quota (no engine: every decision is allow,
  // but the intern charge happens regardless).
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(k.Authorize(prober, "open", "probe:" + std::to_string(i)).ok());
  }
  // The fifth novel name is denied with a reason, and the table did not
  // grow (Find still misses).
  Status over = k.Authorize(prober, "open", "probe:4");
  EXPECT_EQ(over.code(), ErrorCode::kResourceExhausted);
  EXPECT_NE(over.message().find("quota"), std::string::npos);
  EXPECT_FALSE(FindObject("probe:4").has_value());

  // Quota counts NOVEL names: already-interned names stay authorized
  // forever (the working set is unaffected).
  EXPECT_TRUE(k.Authorize(prober, "open", "probe:0").ok());
  // A child is charged to the same quota root — spawning accomplices does
  // not refresh the budget (§2.9's principal-spawning defense).
  EXPECT_EQ(k.Authorize(child, "open", "probe:5").code(), ErrorCode::kResourceExhausted);
  // An unrelated quota root has its own budget.
  EXPECT_TRUE(k.Authorize(bystander, "open", "fresh:0").ok());
  // And trusted interning (control-plane InternObject) is not charged.
  ObjectId direct = InternObject("trusted:name");
  EXPECT_NE(direct, 0u);
}

// ------------------------------------------------------------ FileServer

class FileServerTest : public ::testing::Test {
 protected:
  FileServerTest() : fs_(&kernel_) {
    client_ = *kernel_.CreateProcess("client", ToBytes("c"));
    server_pid_ = *kernel_.CreateProcess("fs", ToBytes("fs"));
    port_ = *kernel_.CreatePort(server_pid_);
    kernel_.BindHandler(port_, &fs_);
    kernel_.set_fs_port(port_);
  }

  IpcReply Syscall4(Syscall sc, std::vector<std::string> args, Bytes data = {}) {
    return kernel_.Invoke(client_, sc, IpcMessage{"", std::move(args), std::move(data)});
  }

  Kernel kernel_;
  FileServer fs_;
  ProcessId client_ = 0;
  ProcessId server_pid_ = 0;
  PortId port_ = 0;
};

TEST_F(FileServerTest, OpenReadWriteClose) {
  fs_.CreateFile("/etc/motd", ToBytes("hello nexus"));
  IpcReply open = Syscall4(Syscall::kOpen, {"/etc/motd"});
  ASSERT_TRUE(open.status.ok());
  int64_t fd = open.value;

  IpcReply read = Syscall4(Syscall::kRead, {std::to_string(fd)});
  EXPECT_EQ(ToString(read.data), "hello nexus");

  IpcReply write =
      Syscall4(Syscall::kWrite, {std::to_string(fd), "0"}, ToBytes("HELLO"));
  EXPECT_TRUE(write.status.ok());
  EXPECT_EQ(ToString(*fs_.ReadFile("/etc/motd")), "HELLO nexus");

  EXPECT_TRUE(Syscall4(Syscall::kClose, {std::to_string(fd)}).status.ok());
  EXPECT_FALSE(Syscall4(Syscall::kRead, {std::to_string(fd)}).status.ok());
}

TEST_F(FileServerTest, PartialReads) {
  fs_.CreateFile("/data", ToBytes("0123456789"));
  int64_t fd = Syscall4(Syscall::kOpen, {"/data"}).value;
  IpcReply read = Syscall4(Syscall::kRead, {std::to_string(fd), "3", "4"});
  EXPECT_EQ(ToString(read.data), "3456");
  EXPECT_FALSE(Syscall4(Syscall::kRead, {std::to_string(fd), "11"}).status.ok());
}

TEST_F(FileServerTest, WriteExtendsFile) {
  fs_.CreateFile("/log", ToBytes("ab"));
  int64_t fd = Syscall4(Syscall::kOpen, {"/log"}).value;
  Syscall4(Syscall::kWrite, {std::to_string(fd), "2"}, ToBytes("cdef"));
  EXPECT_EQ(ToString(*fs_.ReadFile("/log")), "abcdef");
}

TEST_F(FileServerTest, OpenMissingFileFails) {
  EXPECT_EQ(Syscall4(Syscall::kOpen, {"/nope"}).status.code(), ErrorCode::kNotFound);
}

TEST_F(FileServerTest, ForeignFdRejected) {
  fs_.CreateFile("/private", ToBytes("secret"));
  int64_t fd = Syscall4(Syscall::kOpen, {"/private"}).value;
  ProcessId intruder = *kernel_.CreateProcess("intruder", ToBytes("i"));
  IpcReply read = kernel_.Invoke(intruder, Syscall::kRead,
                                 IpcMessage{"", {std::to_string(fd)}, {}});
  EXPECT_FALSE(read.status.ok());
}

TEST_F(FileServerTest, AccessControlEnforcedPerFile) {
  fs_.CreateFile("/guarded", ToBytes("x"));
  DenyAllEngine engine;
  kernel_.set_engine(&engine);
  EXPECT_EQ(Syscall4(Syscall::kOpen, {"/guarded"}).status.code(),
            ErrorCode::kPermissionDenied);
}

// --------------------------------------------------------- DecisionCache

TEST(DecisionCacheTest, MissThenHit) {
  DecisionCache cache;
  EXPECT_FALSE(cache.Lookup(1, "read", "file:/x").has_value());
  cache.Insert(1, "read", "file:/x", true);
  auto hit = cache.Lookup(1, "read", "file:/x");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DecisionCacheTest, StoresDenials) {
  DecisionCache cache;
  cache.Insert(1, "write", "file:/x", false);
  auto hit = cache.Lookup(1, "write", "file:/x");
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(*hit);
}

TEST(DecisionCacheTest, DistinguishesTuples) {
  DecisionCache cache;
  cache.Insert(1, "read", "file:/x", true);
  EXPECT_FALSE(cache.Lookup(2, "read", "file:/x").has_value());
  EXPECT_FALSE(cache.Lookup(1, "write", "file:/x").has_value());
  EXPECT_FALSE(cache.Lookup(1, "read", "file:/y").has_value());
}

TEST(DecisionCacheTest, SubregionInvalidationClearsOpObject) {
  DecisionCache cache;
  for (ProcessId pid = 1; pid <= 10; ++pid) {
    cache.Insert(pid, "read", "file:/x", true);
  }
  cache.InvalidateSubregion("read", "file:/x");
  for (ProcessId pid = 1; pid <= 10; ++pid) {
    EXPECT_FALSE(cache.Lookup(pid, "read", "file:/x").has_value());
  }
}

TEST(DecisionCacheTest, SubregionInvalidationSparesOtherSubregions) {
  DecisionCache::Config config;
  config.num_subregions = 64;
  DecisionCache cache(config);
  // Insert entries for many objects; invalidating one object's subregion
  // must leave most other objects cached.
  for (int i = 0; i < 100; ++i) {
    cache.Insert(1, "read", "file:/f" + std::to_string(i), true);
  }
  cache.InvalidateSubregion("read", "file:/f0");
  int surviving = 0;
  for (int i = 1; i < 100; ++i) {
    if (cache.Lookup(1, "read", "file:/f" + std::to_string(i)).has_value()) {
      ++surviving;
    }
  }
  EXPECT_GT(surviving, 80);
}

TEST(DecisionCacheTest, EntryInvalidation) {
  DecisionCache cache;
  cache.Insert(1, "read", "file:/x", true);
  cache.InvalidateEntry(1, "read", "file:/x");
  EXPECT_FALSE(cache.Lookup(1, "read", "file:/x").has_value());
}

TEST(DecisionCacheTest, ClearAndResize) {
  DecisionCache cache;
  cache.Insert(1, "read", "o", true);
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(1, "read", "o").has_value());
  cache.Insert(1, "read", "o", true);
  cache.Resize(DecisionCache::Config{8, 8});
  EXPECT_FALSE(cache.Lookup(1, "read", "o").has_value());
}

TEST(DecisionCacheTest, EvictionUnderPressureStaysCorrect) {
  DecisionCache::Config config;
  config.num_subregions = 2;
  config.entries_per_subregion = 4;
  DecisionCache cache(config);
  for (int i = 0; i < 100; ++i) {
    cache.Insert(static_cast<ProcessId>(i), "op", "obj", i % 2 == 0);
  }
  // Whatever remains cached must agree with what was inserted.
  for (int i = 0; i < 100; ++i) {
    auto hit = cache.Lookup(static_cast<ProcessId>(i), "op", "obj");
    if (hit.has_value()) {
      EXPECT_EQ(*hit, i % 2 == 0) << i;
    }
  }
}

TEST(DecisionCacheTest, CrossShardSubregionInvalidationReachesEveryShard) {
  DecisionCache::Config config;
  config.num_shards = 8;
  DecisionCache cache(config);
  // Subjects spread across shards; every entry shares one (op, object).
  std::set<size_t> shards_used;
  for (ProcessId pid = 1; pid <= 64; ++pid) {
    cache.Insert(pid, "read", "file:/x", true);
    shards_used.insert(cache.ShardOf(pid));
  }
  ASSERT_GT(shards_used.size(), 1u) << "subjects must actually span shards";
  // One setgoal-style invalidation must reach all of them.
  cache.InvalidateSubregion("read", "file:/x");
  for (ProcessId pid = 1; pid <= 64; ++pid) {
    EXPECT_FALSE(cache.Lookup(pid, "read", "file:/x").has_value()) << pid;
  }
}

TEST(DecisionCacheTest, PerShardStatsSumToAggregate) {
  DecisionCache::Config config;
  config.num_shards = 4;
  DecisionCache cache(config);
  for (ProcessId pid = 1; pid <= 40; ++pid) {
    cache.Lookup(pid, "op", "obj");      // Miss.
    cache.Insert(pid, "op", "obj", true);
    cache.Lookup(pid, "op", "obj");      // Hit.
  }
  cache.InvalidateSubregion("op", "obj");
  DecisionCache::Stats aggregate = cache.stats();
  DecisionCache::Stats summed;
  for (size_t s = 0; s < config.num_shards; ++s) {
    DecisionCache::Stats shard = cache.shard_stats(s);
    summed.hits += shard.hits;
    summed.misses += shard.misses;
    summed.insertions += shard.insertions;
    summed.invalidated_entries += shard.invalidated_entries;
    summed.subregion_invalidations += shard.subregion_invalidations;
  }
  EXPECT_EQ(aggregate.hits, summed.hits);
  EXPECT_EQ(aggregate.misses, summed.misses);
  EXPECT_EQ(aggregate.insertions, summed.insertions);
  EXPECT_EQ(aggregate.invalidated_entries, summed.invalidated_entries);
  EXPECT_EQ(aggregate.subregion_invalidations, summed.subregion_invalidations);
  EXPECT_EQ(aggregate.hits, 40u);
  EXPECT_EQ(aggregate.misses, 40u);
  // The broadcast touched every shard's subregion.
  EXPECT_EQ(aggregate.subregion_invalidations, config.num_shards);
}

TEST(DecisionCacheTest, ResizeUnderDifferentShardCountPreservesClearSemantics) {
  DecisionCache::Config config;
  config.num_shards = 2;
  DecisionCache cache(config);
  for (ProcessId pid = 1; pid <= 16; ++pid) {
    cache.Insert(pid, "read", "o", true);
  }
  config.num_shards = 8;
  cache.Resize(config);
  EXPECT_EQ(cache.config().num_shards, 8u);
  for (ProcessId pid = 1; pid <= 16; ++pid) {
    EXPECT_FALSE(cache.Lookup(pid, "read", "o").has_value()) << pid;
  }
  // The resized cache is fully functional.
  cache.Insert(1, "read", "o", false);
  auto hit = cache.Lookup(1, "read", "o");
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(*hit);
}

TEST(DecisionCacheTest, GenerationGuardedInsertDropsStaleVerdict) {
  DecisionCache cache;
  AuthzRequest request = AuthzRequest::Of(1, "read", "file:/x");
  // A verdict computed before an invalidation must not be cached after it
  // (the stale-insert race of a concurrent frontend, compressed serially).
  uint64_t generation = cache.Generation(request);
  cache.InvalidateSubregion(request.op, request.obj);  // Concurrent setgoal.
  EXPECT_FALSE(cache.InsertIfUnchanged(request, true, generation));
  EXPECT_FALSE(cache.Lookup(request).has_value());
  // With a fresh snapshot the insert lands.
  generation = cache.Generation(request);
  EXPECT_TRUE(cache.InsertIfUnchanged(request, true, generation));
  EXPECT_TRUE(cache.Lookup(request).has_value());
  // InvalidateEntry (setproof) bumps the generation too.
  generation = cache.Generation(request);
  cache.InvalidateEntry(request);
  EXPECT_FALSE(cache.InsertIfUnchanged(request, false, generation));
}

// ------------------------------------------------- Kernel + cache wiring

TEST(KernelAuthorizeTest, NoEngineAllowsEverything) {
  Kernel k;
  EXPECT_TRUE(k.Authorize(1, "read", "anything").ok());
}

TEST(KernelAuthorizeTest, CacheShortCircuitsEngine) {
  Kernel k;
  AllowAllEngine engine;
  k.set_engine(&engine);
  EXPECT_TRUE(k.Authorize(1, "read", "o").ok());
  EXPECT_TRUE(k.Authorize(1, "read", "o").ok());
  EXPECT_TRUE(k.Authorize(1, "read", "o").ok());
  EXPECT_EQ(engine.upcalls, 1);
}

TEST(KernelAuthorizeTest, NonCacheableDecisionsAlwaysUpcall) {
  Kernel k;
  AllowAllEngine engine;
  engine.cacheable = false;
  k.set_engine(&engine);
  k.Authorize(1, "read", "o");
  k.Authorize(1, "read", "o");
  EXPECT_EQ(engine.upcalls, 2);
}

TEST(KernelAuthorizeTest, DisabledCacheAlwaysUpcalls) {
  Kernel k;
  AllowAllEngine engine;
  k.set_engine(&engine);
  k.set_decision_cache_enabled(false);
  k.Authorize(1, "read", "o");
  k.Authorize(1, "read", "o");
  EXPECT_EQ(engine.upcalls, 2);
}

TEST(KernelAuthorizeTest, GoalUpdateInvalidatesCachedDecisions) {
  Kernel k;
  AllowAllEngine engine;
  k.set_engine(&engine);
  k.Authorize(1, "read", "o");
  k.OnGoalUpdate("read", "o");
  k.Authorize(1, "read", "o");
  EXPECT_EQ(engine.upcalls, 2);
}

TEST(KernelAuthorizeTest, ProofUpdateInvalidatesCachedDecision) {
  Kernel k;
  AllowAllEngine engine;
  k.set_engine(&engine);
  k.Authorize(1, "read", "o");
  k.OnProofUpdate(1, "read", "o");
  k.Authorize(1, "read", "o");
  EXPECT_EQ(engine.upcalls, 2);
}

// -------------------------------------------------------------- ProcFs

TEST(ProcFsTest, PublishReadRemove) {
  IntrospectionFs fs;
  fs.PublishValue(1, "/proc/app/key", "value");
  EXPECT_EQ(*fs.Read("/proc/app/key"), "value");
  EXPECT_EQ(*fs.Owner("/proc/app/key"), 1u);
  ASSERT_TRUE(fs.Remove("/proc/app/key").ok());
  EXPECT_FALSE(fs.Read("/proc/app/key").ok());
}

TEST(ProcFsTest, LiveProviders) {
  IntrospectionFs fs;
  int counter = 0;
  fs.Publish(1, "/proc/app/counter", [&counter] { return std::to_string(counter); });
  EXPECT_EQ(*fs.Read("/proc/app/counter"), "0");
  counter = 42;
  EXPECT_EQ(*fs.Read("/proc/app/counter"), "42");
}

TEST(ProcFsTest, ListDirectories) {
  IntrospectionFs fs;
  fs.PublishValue(1, "/proc/ipd/1/name", "a");
  fs.PublishValue(1, "/proc/ipd/2/name", "b");
  fs.PublishValue(1, "/proc/port/9/owner", "1");
  std::vector<std::string> ipds = fs.List("/proc/ipd");
  EXPECT_EQ(ipds, (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(fs.List("/proc").size(), 2u);  // ipd and port.
}

TEST(ProcFsTest, WatchersFireOnPrefix) {
  IntrospectionFs fs;
  std::vector<std::string> seen;
  uint64_t token = fs.Watch("/proc/ipd", [&seen](const std::string& path, const std::string&) {
    seen.push_back(path);
  });
  fs.PublishValue(1, "/proc/ipd/3/name", "x");
  fs.PublishValue(1, "/proc/other", "y");
  EXPECT_EQ(seen, (std::vector<std::string>{"/proc/ipd/3/name"}));
  fs.Unwatch(token);
  fs.PublishValue(1, "/proc/ipd/4/name", "z");
  EXPECT_EQ(seen.size(), 1u);
}

TEST(ProcFsTest, RemoveOwnedRemovesAll) {
  IntrospectionFs fs;
  fs.PublishValue(7, "/a", "1");
  fs.PublishValue(7, "/b", "2");
  fs.PublishValue(8, "/c", "3");
  fs.RemoveOwned(7);
  EXPECT_FALSE(fs.Read("/a").ok());
  EXPECT_FALSE(fs.Read("/b").ok());
  EXPECT_TRUE(fs.Read("/c").ok());
}

// ------------------------------------------------------------ Scheduler

TEST(SchedulerTest, StrideRespectsWeights) {
  StrideScheduler sched;
  sched.AddClient(1, 30);
  sched.AddClient(2, 10);
  for (int i = 0; i < 4000; ++i) {
    sched.Tick();
  }
  double share1 = static_cast<double>(sched.QuantaReceived(1)) / 4000.0;
  EXPECT_NEAR(share1, 0.75, 0.02);
}

TEST(SchedulerTest, StrideWeightChangeTakesEffect) {
  StrideScheduler sched;
  sched.AddClient(1, 1);
  sched.AddClient(2, 1);
  for (int i = 0; i < 100; ++i) {
    sched.Tick();
  }
  sched.SetWeight(1, 9);
  uint64_t before1 = sched.QuantaReceived(1);
  for (int i = 0; i < 1000; ++i) {
    sched.Tick();
  }
  double share_after = static_cast<double>(sched.QuantaReceived(1) - before1) / 1000.0;
  EXPECT_NEAR(share_after, 0.9, 0.05);
}

TEST(SchedulerTest, NewClientNotStarved) {
  StrideScheduler sched;
  sched.AddClient(1, 1);
  for (int i = 0; i < 1000; ++i) {
    sched.Tick();
  }
  sched.AddClient(2, 1);
  uint64_t before = sched.QuantaReceived(2);
  for (int i = 0; i < 100; ++i) {
    sched.Tick();
  }
  EXPECT_GE(sched.QuantaReceived(2) - before, 45u);
}

TEST(SchedulerTest, StrideRejectsBadInput) {
  StrideScheduler sched;
  EXPECT_FALSE(sched.AddClient(1, 0).ok());
  sched.AddClient(1, 1);
  EXPECT_FALSE(sched.AddClient(1, 2).ok());
  EXPECT_FALSE(sched.SetWeight(2, 1).ok());
  EXPECT_FALSE(sched.RemoveClient(2).ok());
}

TEST(SchedulerTest, RoundRobinIgnoresWeights) {
  RoundRobinScheduler sched;
  sched.AddClient(1, 100);
  sched.AddClient(2, 1);
  for (int i = 0; i < 1000; ++i) {
    sched.Tick();
  }
  EXPECT_EQ(sched.QuantaReceived(1), 500u);
  EXPECT_EQ(sched.QuantaReceived(2), 500u);
}

TEST(SchedulerTest, EmptySchedulerFails) {
  StrideScheduler sched;
  EXPECT_FALSE(sched.Tick().ok());
}

// --------------------------------------------------------- HashWhitelist

TEST(HashWhitelistTest, AxiomaticBaseline) {
  Kernel k;
  HashWhitelist whitelist;
  Bytes trusted_player = ToBytes("certified-player-v1");
  whitelist.AllowBinary(trusted_player);

  ProcessId good = *k.CreateProcess("player", trusted_player);
  ProcessId bad = *k.CreateProcess("other-player", ToBytes("home-built-player"));
  EXPECT_TRUE(*whitelist.Check(k, good));
  EXPECT_FALSE(*whitelist.Check(k, bad));
  EXPECT_FALSE(whitelist.Check(k, 999).ok());
}

}  // namespace
}  // namespace nexus::kernel
