// NAL proof objects.
//
// Proof derivation in NAL is undecidable, so Nexus places the burden of
// proof construction on the client; the guard only *checks* proofs (§2.6).
// A proof is a tree of rule applications whose leaves are premises
// (credentials from a labelstore), assumptions (hypotheses opened by
// implies-introduction), authority queries (discharged at check time by a
// live authority, §2.7), or the subprincipal axiom.
//
// The rule set is the constructive core of NAL [Schneider, Walsh & Sirer,
// TISSEC 2011]: conjunction/disjunction/implication intro & elim, double
// negation introduction (a constructive logic has no ¬¬-elimination),
// says-introduction (necessitation, restricted to subproofs attributable to
// the speaker), says-distribution, speaksfor elimination & transitivity,
// the handoff rule, and the subprincipal axiom.
#ifndef NEXUS_NAL_PROOF_H_
#define NEXUS_NAL_PROOF_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nal/formula.h"
#include "util/status.h"

namespace nexus::nal {

enum class ProofRule : uint8_t {
  kPremise,        // leaf: formula must appear among the supplied credentials
  kAssumption,     // leaf: formula must be an open hypothesis
  kAuthority,      // leaf: formula is vouched for by a live authority
  kSubprincipal,   // leaf: A speaksfor A.tau (name-prefix axiom)
  kAndIntro,       // A, B |- A and B
  kAndElimL,       // A and B |- A
  kAndElimR,       // A and B |- B
  kOrIntroL,       // A |- A or B   (aux = B)
  kOrIntroR,       // B |- A or B   (aux = A)
  kOrElim,         // A or B, A => C, B => C |- C
  kImpliesIntro,   // [A] ... B |- A => B   (aux = A, discharged)
  kImpliesElim,    // A => B, A |- B  (modus ponens)
  kDoubleNegIntro, // A |- not not A
  kSaysIntro,      // F |- P says F  (subproof must be attributable to P)
  kSaysImpliesElim,// P says (A => B), P says A |- P says B
  kSaysAndIntro,   // P says A, P says B |- P says (A and B)
  kSaysAndElimL,   // P says (A and B) |- P says A
  kSaysAndElimR,   // P says (A and B) |- P says B
  kSpeaksForElim,  // A speaksfor B [on s], A says F |- B says F  (scope check)
  kSpeaksForTrans, // A speaksfor B, B speaksfor C |- A speaksfor C
  kHandoff,        // B says (A speaksfor B [on s]) |- A speaksfor B [on s]
};

std::string_view ProofRuleName(ProofRule rule);

class ProofNode;
using Proof = std::shared_ptr<const ProofNode>;

class ProofNode {
 public:
  ProofRule rule() const { return rule_; }
  const std::vector<Proof>& children() const { return children_; }
  // Leaf formula (premise/assumption/authority/subprincipal conclusion) or
  // auxiliary formula (the B of or-intro-l, the discharged A of
  // implies-intro).
  const Formula& aux() const { return aux_; }
  // Speaker for says-introduction.
  const Principal& principal() const { return principal_; }

  // Number of rule applications (nodes) in this proof.
  int Size() const;

  static Proof Make(ProofRule rule, std::vector<Proof> children, Formula aux = nullptr,
                    Principal principal = Principal());

 private:
  friend uint64_t ProofHash(const Proof& p);

  ProofNode() = default;

  ProofRule rule_ = ProofRule::kPremise;
  std::vector<Proof> children_;
  Formula aux_;
  Principal principal_;
  // Lazily computed ProofHash. 0 = not yet computed (a real hash of 0 is
  // remapped); atomic so concurrent readers may race benignly — the hash
  // is a pure function of the immutable node, every writer stores the same
  // value.
  mutable std::atomic<uint64_t> hash_memo_{0};
};

// Convenience constructors mirroring the rules.
namespace proof {

Proof Premise(Formula f);
Proof Assumption(Formula f);
Proof Authority(Formula f);
Proof Subprincipal(Principal parent, Principal sub);
Proof AndIntro(Proof l, Proof r);
Proof AndElimL(Proof p);
Proof AndElimR(Proof p);
Proof OrIntroL(Proof proves_left, Formula right);
Proof OrIntroR(Formula left, Proof proves_right);
Proof OrElim(Proof disjunction, Proof left_implies, Proof right_implies);
Proof ImpliesIntro(Formula assumption, Proof body);
Proof ImpliesElim(Proof implication, Proof antecedent);
Proof DoubleNegIntro(Proof p);
Proof SaysIntro(Principal speaker, Proof p);
Proof SaysImpliesElim(Proof says_implication, Proof says_antecedent);
Proof SaysAndIntro(Proof says_left, Proof says_right);
Proof SaysAndElimL(Proof says_conjunction);
Proof SaysAndElimR(Proof says_conjunction);
Proof SpeaksForElim(Proof speaksfor, Proof says);
Proof SpeaksForTrans(Proof a_for_b, Proof b_for_c);
Proof Handoff(Proof says_speaksfor);

}  // namespace proof

// Collects the statements of every kAuthority leaf in `p` (depth-first,
// duplicates preserved). Authority leaves are syntactic, so a batch caller
// can prefetch every consultation a proof will make before checking it.
std::vector<Formula> AuthorityLeaves(const Proof& p);

// 64-bit structural hash of a proof (rule, children, aux formulas,
// says-intro speakers). Structurally equal proofs hash equal; a cache
// keying on this hash — unlike one keying on the proof's ADDRESS — cannot
// replay a freed proof's verdict for a different proof that happens to be
// allocated at the same address (the ABA hazard). Memoized per node, so
// repeated calls on a pre-submitted proof are O(1). Null hashes to 0;
// every real proof hashes nonzero.
//
// The hash is NOT cryptographic: a determined adversary can construct
// colliding proofs offline, so any security-sensitive consumer must
// confirm a hash match with ProofEquals before trusting it (the guard's
// proof-check cache does).
uint64_t ProofHash(const Proof& p);

// Structural equality: same rules, same aux formulas (nal::Equals), same
// says-intro speakers, same children. Two nulls are equal.
bool ProofEquals(const Proof& a, const Proof& b);

// Serializes a proof to a stable s-expression text form, e.g.
//   (speaksfor-elim (handoff (premise "B says (A speaksfor B)"))
//                   (premise "A says (ok())"))
std::string SerializeProof(const Proof& p);

// Parses the serialization above.
Result<Proof> DeserializeProof(std::string_view text);

}  // namespace nexus::nal

#endif  // NEXUS_NAL_PROOF_H_
