// The trustworthy clock service (§2.7).
//
// A time authority *refuses to sign* statements about the current time —
// any such label would inevitably become stale and make the service an
// untrustworthy principal. Instead it subscribes to a small family of
// arithmetic statements (`Self says TimeNow <op> constant`) and answers
// yes/no over the attested query channel, freshly, on every check.
#ifndef NEXUS_SERVICES_TIME_AUTHORITY_H_
#define NEXUS_SERVICES_TIME_AUTHORITY_H_

#include <functional>
#include <string>

#include "core/authority.h"
#include "nal/formula.h"

namespace nexus::services {

class TimeAuthority : public core::Authority {
 public:
  // `name` is the principal statements are attributed to (e.g. "NTP" or a
  // process principal). `clock` supplies the current time.
  TimeAuthority(nal::Principal name, std::function<int64_t()> clock)
      : name_(std::move(name)), clock_(std::move(clock)) {}

  bool Handles(const nal::Formula& statement) const override;
  bool Vouches(const nal::Formula& statement) override;

  // Deliberately unsupported: a time label would expire while cached.
  // Returns FAILED_PRECONDITION always; exists to document the contract.
  Status SignTimeLabel() const {
    return FailedPrecondition("a trustworthy clock never issues transferable time statements");
  }

 private:
  nal::Principal name_;
  std::function<int64_t()> clock_;
};

// Evaluates a ground integer comparison.
bool EvaluateComparison(nal::CompareOp op, int64_t lhs, int64_t rhs);

}  // namespace nexus::services

#endif  // NEXUS_SERVICES_TIME_AUTHORITY_H_
