#include "core/goalstore.h"

namespace nexus::core {

Status GoalStore::SetGoal(const std::string& operation, const std::string& object,
                          nal::Formula goal, kernel::PortId guard_port) {
  if (goal == nullptr) {
    return InvalidArgument("null goal formula");
  }
  goals_[Key(operation, object)] = GoalEntry{std::move(goal), guard_port};
  return OkStatus();
}

Status GoalStore::ClearGoal(const std::string& operation, const std::string& object) {
  if (goals_.erase(Key(operation, object)) == 0) {
    return NotFound("no goal for " + operation + " on " + object);
  }
  return OkStatus();
}

std::optional<GoalEntry> GoalStore::Get(const std::string& operation,
                                        const std::string& object) const {
  auto it = goals_.find(Key(operation, object));
  if (it == goals_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void ObjectRegistry::Register(const std::string& object, kernel::ProcessId owner,
                              kernel::ProcessId manager) {
  entries_[object] = Entry{owner, manager};
}

Status ObjectRegistry::TransferOwnership(const std::string& object,
                                         kernel::ProcessId new_owner) {
  auto it = entries_.find(object);
  if (it == entries_.end()) {
    return NotFound("unknown object: " + object);
  }
  it->second.owner = new_owner;
  return OkStatus();
}

std::optional<kernel::ProcessId> ObjectRegistry::Owner(const std::string& object) const {
  auto it = entries_.find(object);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second.owner;
}

std::optional<kernel::ProcessId> ObjectRegistry::Manager(const std::string& object) const {
  auto it = entries_.find(object);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second.manager;
}

}  // namespace nexus::core
