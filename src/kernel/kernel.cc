#include "kernel/kernel.h"

#include <algorithm>
#include <array>
#include <chrono>

namespace nexus::kernel {

Kernel::Kernel() : scheduler_(std::make_unique<StrideScheduler>()) {
  // The reserved-port table (kernel/syscall_ports.h) exists from cycle
  // zero: boot-service ports waiting for their ClaimBootPort, and one
  // kernel-owned port per syscall so interposing on a syscall is
  // interposing on a compile-time-constant port id. No registration step,
  // no per-process lazy creation — the layout IS the ABI.
  for (PortId id = kGuardBootPort; id < kFirstDynamicPort; ++id) {
    PortShard& shard = port_shards_[ShardOfId(id)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.ports[id] = Port{id, kKernelProcessId, nullptr, 0};
  }
  for (PortId id = kGuardBootPort; id < kFirstDynamicPort; ++id) {
    procfs_.PublishValue(kKernelProcessId, "/proc/port/" + std::to_string(id) + "/owner",
                         "0");
  }
  procfs_.PublishValue(kKernelProcessId, "/proc/kernel/name", "nexus");
  // The metrics plane exported through the introspection namespace (§3.1):
  // one node per component prefix, plus the flight recorder. Reading
  // telemetry is itself a guarded proc-read — the kProcRead syscall
  // authorizes "read" on "proc:/stats/<component>" like any other path.
  static constexpr const char* kStatComponents[] = {
      "kernel", "cache", "guard", "engine", "remote_authority", "transport", "ddrm",
  };
  for (const char* component : kStatComponents) {
    procfs_.Publish(kKernelProcessId, std::string("/stats/") + component,
                    [component] { return metrics::Registry::Global().RenderText(component); });
  }
  procfs_.Publish(kKernelProcessId, "/stats/trace", [] {
    const FlightRecorder& recorder = FlightRecorder::Global();
    std::string out = "enabled ";
    out += recorder.enabled() ? '1' : '0';
    out += "\nevents_emitted " + std::to_string(recorder.events_emitted());
    out += "\nrings " + std::to_string(recorder.ring_count());
    out += '\n';
    return out;
  });
  procfs_.Publish(kKernelProcessId, "/trace/recent", [] {
    return FormatTraceEvents(FlightRecorder::Global().Recent(64));
  });
}

uint64_t Kernel::NowMicros() const {
  if (time_source_) {
    return time_source_();
  }
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

// ------------------------------------------------------------- Processes

Result<ProcessId> Kernel::CreateProcess(const std::string& name, ByteView binary,
                                        ProcessId parent) {
  Process p;
  p.parent = parent;
  p.name = name;
  p.binary_hash = crypto::Sha256::Hash(binary);
  // The quota root is the topmost non-kernel ancestor: incessantly spawned
  // children are all charged to the tree's root (§2.9). Read it from the
  // parent's shard; a parent killed between this read and the insert below
  // yields a child of a dead parent, exactly as a kill landing just after
  // the spawn would.
  if (parent == kKernelProcessId) {
    p.quota_root = 0;  // Fixed up to the child's own pid below.
  } else {
    const ProcessShard& shard = process_shards_[ShardOfId(parent)];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.procs.find(parent);
    if (it == shard.procs.end() || !it->second.alive.load()) {
      return NotFound("parent process not alive");
    }
    p.quota_root = it->second.quota_root;
  }
  ProcessId pid = next_pid_.fetch_add(1);
  p.pid = pid;
  if (parent == kKernelProcessId) {
    p.quota_root = pid;
  }
  PublishProcessNodes(p);
  {
    ProcessShard& shard = process_shards_[ShardOfId(pid)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.procs.emplace(pid, std::move(p));
  }
  lifecycle_generation_.fetch_add(1);
  return pid;
}

void Kernel::PublishProcessNodes(const Process& process) {
  const std::string base = ProcPath(process.pid);
  procfs_.PublishValue(process.pid, base + "/name", process.name);
  procfs_.PublishValue(process.pid, base + "/parent", std::to_string(process.parent));
  procfs_.PublishValue(
      process.pid, base + "/hash",
      HexEncode(ByteView(process.binary_hash.data(), process.binary_hash.size())));
}

Status Kernel::KillProcess(ProcessId pid) {
  {
    ProcessShard& shard = process_shards_[ShardOfId(pid)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.procs.find(pid);
    if (it == shard.procs.end() || !it->second.alive.load()) {
      return NotFound("no such process");
    }
    it->second.alive.store(false);
  }
  procfs_.RemoveOwned(pid);
  // Tear down the process's ports shard by shard, then unlink the dead
  // ports from every remaining channel set.
  std::vector<PortId> dead_ports;
  for (PortShard& shard : port_shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    for (auto port_it = shard.ports.begin(); port_it != shard.ports.end();) {
      if (port_it->second.owner == pid) {
        if (port_it->first < kFirstDynamicPort) {
          // Reserved ids outlive their claimant: revert to an unclaimed
          // kernel-owned slot so the next boot service can reclaim it.
          port_it->second.owner = kKernelProcessId;
          port_it->second.handler = nullptr;
          ++port_it;
          continue;
        }
        dead_ports.push_back(port_it->first);
        port_it = shard.ports.erase(port_it);
      } else {
        ++port_it;
      }
    }
  }
  {
    std::unique_lock<std::shared_mutex> lock(channels_mu_);
    channels_.erase(pid);
    for (PortId dead : dead_ports) {
      for (auto& [owner, connected] : channels_) {
        connected.erase(dead);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    scheduler_->RemoveClient(pid);  // Best effort; may not be scheduled.
  }
  lifecycle_generation_.fetch_add(1);
  return OkStatus();
}

Result<const Process*> Kernel::GetProcess(ProcessId pid) const {
  const ProcessShard& shard = process_shards_[ShardOfId(pid)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.procs.find(pid);
  if (it == shard.procs.end()) {
    return NotFound("no such process");
  }
  // Stable: records are marked dead, never erased, and std::map nodes do
  // not move. Liveness is an atomic; other mutable fields are only touched
  // under the shard writer lock.
  return &it->second;
}

bool Kernel::IsAlive(ProcessId pid) const {
  const ProcessShard& shard = process_shards_[ShardOfId(pid)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.procs.find(pid);
  return it != shard.procs.end() && it->second.alive.load();
}

Result<ProcessId> Kernel::GetParent(ProcessId pid) const {
  const ProcessShard& shard = process_shards_[ShardOfId(pid)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.procs.find(pid);
  if (it == shard.procs.end()) {
    return NotFound("no such process");
  }
  return it->second.parent;
}

std::vector<ProcessId> Kernel::Processes() const {
  std::vector<ProcessId> out;
  for (const ProcessShard& shard : process_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [pid, p] : shard.procs) {
      if (p.alive.load()) {
        out.push_back(pid);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status Kernel::RestrictSyscalls(ProcessId pid, std::set<Syscall> allowed) {
  ProcessShard& shard = process_shards_[ShardOfId(pid)];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.procs.find(pid);
  if (it == shard.procs.end() || !it->second.alive.load()) {
    return NotFound("no such process");
  }
  // Restriction is monotone: a process can only narrow its own surface.
  if (it->second.allowed_syscalls.has_value()) {
    for (Syscall sc : allowed) {
      if (!it->second.allowed_syscalls->contains(sc)) {
        return PermissionDenied("cannot re-acquire relinquished system calls");
      }
    }
  }
  it->second.allowed_syscalls = std::move(allowed);
  return OkStatus();
}

nal::Principal Kernel::ProcessPrincipal(ProcessId pid) const {
  return KernelPrincipal().Sub("ipd").Sub(std::to_string(pid));
}

std::string Kernel::ProcPath(ProcessId pid) { return "/proc/ipd/" + std::to_string(pid); }

// ----------------------------------------------------------------- Ports

std::optional<Kernel::Port> Kernel::SnapshotPort(PortId port) const {
  const PortShard& shard = port_shards_[ShardOfId(port)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.ports.find(port);
  if (it == shard.ports.end()) {
    return std::nullopt;
  }
  return it->second;
}

Result<PortId> Kernel::CreatePort(ProcessId owner) {
  if (owner != kKernelProcessId && !IsAlive(owner)) {
    return NotFound("no such process");
  }
  PortId id = next_port_.fetch_add(1);
  uint64_t generation = lifecycle_generation_.fetch_add(1) + 1;
  const std::string proc_node = "/proc/port/" + std::to_string(id) + "/owner";
  {
    PortShard& shard = port_shards_[ShardOfId(id)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.ports[id] = Port{id, owner, nullptr, generation};
  }
  procfs_.PublishValue(owner, proc_node, std::to_string(owner));
  // Revalidate AFTER publishing: a KillProcess that raced the liveness
  // check above may have swept the port shards before our insert landed,
  // which would leak a live port owned by a dead process forever. Insert-
  // then-recheck closes the window — either the kill's sweep sees our
  // port, or we see the kill and reap our own debris.
  if (owner != kKernelProcessId && !IsAlive(owner)) {
    {
      PortShard& shard = port_shards_[ShardOfId(id)];
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      shard.ports.erase(id);  // May already be gone (the kill swept it).
    }
    procfs_.Remove(proc_node);  // Ditto.
    return NotFound("no such process");
  }
  return id;
}

Status Kernel::ClaimBootPort(PortId port, ProcessId owner, PortHandler* handler) {
  if (port == 0 || port >= kFirstDynamicPort) {
    return InvalidArgument("not a reserved boot port");
  }
  if (owner != kKernelProcessId && !IsAlive(owner)) {
    return NotFound("no such process");
  }
  {
    PortShard& shard = port_shards_[ShardOfId(port)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.ports.find(port);
    if (it == shard.ports.end()) {
      return NotFound("no such port");
    }
    if (it->second.owner != kKernelProcessId || it->second.handler != nullptr) {
      return AlreadyExists("boot port already claimed");
    }
    it->second.owner = owner;
    it->second.handler = handler;
    it->second.generation = lifecycle_generation_.fetch_add(1) + 1;
  }
  procfs_.PublishValue(owner, "/proc/port/" + std::to_string(port) + "/owner",
                       std::to_string(owner));
  return OkStatus();
}

Status Kernel::DestroyPort(PortId port) {
  if (port < kFirstDynamicPort) {
    return PermissionDenied("reserved port cannot be destroyed");
  }
  {
    PortShard& shard = port_shards_[ShardOfId(port)];
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    if (shard.ports.erase(port) == 0) {
      return NotFound("no such port");
    }
  }
  {
    std::unique_lock<std::shared_mutex> lock(channels_mu_);
    for (auto& [owner, connected] : channels_) {
      connected.erase(port);
    }
  }
  procfs_.Remove("/proc/port/" + std::to_string(port) + "/owner");
  lifecycle_generation_.fetch_add(1);
  return OkStatus();
}

Status Kernel::BindHandler(PortId port, PortHandler* handler) {
  PortShard& shard = port_shards_[ShardOfId(port)];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.ports.find(port);
  if (it == shard.ports.end()) {
    return NotFound("no such port");
  }
  it->second.handler = handler;
  lifecycle_generation_.fetch_add(1);
  return OkStatus();
}

Result<ProcessId> Kernel::PortOwner(PortId port) const {
  std::optional<Port> snapshot = SnapshotPort(port);
  if (!snapshot.has_value()) {
    return NotFound("no such port");
  }
  return snapshot->owner;
}

Status Kernel::ConnectPort(ProcessId pid, PortId port) {
  if (!IsAlive(pid) && pid != kKernelProcessId) {
    return NotFound("no such process");
  }
  if (!SnapshotPort(port).has_value()) {
    return NotFound("no such port");
  }
  {
    std::unique_lock<std::shared_mutex> lock(channels_mu_);
    channels_[pid].insert(port);
  }
  // Revalidate: a DestroyPort/KillProcess racing the existence check above
  // may have swept channels_ before our edge landed, leaving a permanent
  // ghost edge to a nonexistent port (and a phantom path for the IPC
  // analyzer). Either the destroy's sweep sees our edge, or we see the
  // destroy and retract it.
  if (!SnapshotPort(port).has_value()) {
    std::unique_lock<std::shared_mutex> lock(channels_mu_);
    auto it = channels_.find(pid);
    if (it != channels_.end()) {
      it->second.erase(port);
    }
    return NotFound("no such port");
  }
  return OkStatus();
}

Status Kernel::DisconnectPort(ProcessId pid, PortId port) {
  std::unique_lock<std::shared_mutex> lock(channels_mu_);
  auto it = channels_.find(pid);
  if (it == channels_.end() || it->second.erase(port) == 0) {
    return NotFound("no such channel");
  }
  return OkStatus();
}

bool Kernel::HasChannel(ProcessId pid, PortId port) const {
  std::shared_lock<std::shared_mutex> lock(channels_mu_);
  auto it = channels_.find(pid);
  return it != channels_.end() && it->second.contains(port);
}

Result<uint64_t> Kernel::PortGeneration(PortId port) const {
  std::optional<Port> snapshot = SnapshotPort(port);
  if (!snapshot.has_value()) {
    return NotFound("no such port");
  }
  return snapshot->generation;
}

std::map<ProcessId, std::set<PortId>> Kernel::ChannelsSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(channels_mu_);
  return channels_;
}

std::vector<PortId> Kernel::Ports() const {
  std::vector<PortId> out;
  for (const PortShard& shard : port_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [id, p] : shard.ports) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ------------------------------------------------------------------- IPC

Status Kernel::ResolveLegacy(ProcessId caller, IpcMessage& message) {
  if (!message.needs_op_resolution()) {
    return OkStatus();
  }
  // A FromLegacy message with a never-before-seen operation name: the
  // caller's quota root pays for the intern (satellite of the §2.9 name
  // quotas — op names are caller-influenced on this surface).
  Result<OpId> op = InternOpCharged(caller, message.legacy_op());
  if (!op.ok()) {
    return op.status();
  }
  message.ResolveOp(*op);
  return OkStatus();
}

namespace {

// One kCall provenance event per completed (or monitor-blocked) Call.
// No-op on untraced calls; no cycle read on traced ones (Call is the fig7
// hot path — latency histograms are fed from Invoke and the miss path).
void EmitCallEvent(const TraceScope& trace, ProcessId caller, OpId op, PortId port,
                   uint16_t flags, uint8_t verdict) {
  if (!trace.active()) {
    return;
  }
  TraceEvent e;
  e.trace_id = trace.id();
  e.subject = caller;
  e.op = op;
  e.aux = port;
  e.flags = flags;
  e.verdict = verdict;
  e.stage = TraceStage::kCall;
  FlightRecorder::Global().Emit(e);
}

// One kReplyInterpose event per reply-direction interceptor traversal.
// Its PRESENCE is the audited invariant: a completed interposed call whose
// chain lacks this stage returned a reply the monitors never saw.
void EmitReplyInterposeEvent(const TraceScope& trace, ProcessId caller, OpId op,
                             PortId port, uint16_t flags, uint8_t verdict) {
  if (!trace.active()) {
    return;
  }
  TraceEvent e;
  e.trace_id = trace.id();
  e.subject = caller;
  e.op = op;
  e.aux = port;
  e.flags = flags;
  e.verdict = verdict;
  e.stage = TraceStage::kReplyInterpose;
  FlightRecorder::Global().Emit(e);
}

// Records elapsed cycles into a histogram across every return path of the
// enclosing function. Pass nullptr to measure nothing (untraced calls pay
// no rdtsc).
class ScopedCycleHistogram {
 public:
  explicit ScopedCycleHistogram(metrics::Histogram* histogram)
      : histogram_(histogram), start_(histogram != nullptr ? ReadCycleCounter() : 0) {}
  ~ScopedCycleHistogram() {
    if (histogram_ != nullptr) {
      histogram_->Record(ReadCycleCounter() - start_);
    }
  }
  ScopedCycleHistogram(const ScopedCycleHistogram&) = delete;
  ScopedCycleHistogram& operator=(const ScopedCycleHistogram&) = delete;

 private:
  metrics::Histogram* histogram_;
  uint64_t start_;
};

}  // namespace

IpcReply Kernel::Call(ProcessId caller, PortId port, const IpcMessage& message) {
  // Reserved-port semantics: a call addressed to a syscall port IS that
  // syscall (SYSCALL_IPCPORT in the real kernel) — pure arithmetic, no
  // table probe, and ipc_call reaching a syscall port dispatches like the
  // syscall it names.
  if (IsSyscallPort(port)) {
    return Invoke(caller, SyscallOfPort(port), message);
  }
  calls_->Increment();
  // A nested Call (interposed hop, ipc_call, file-syscall forward) adopts
  // the surrounding trace id, so one logical operation is one trace.
  TraceScope trace;
  if (!SnapshotPort(port).has_value()) {
    return IpcReply(NotFound("no such port"));
  }

  // Wire bounds and forged-id checks hold on BOTH paths below — whether a
  // message is accepted never depends on a monitor being present — and run
  // BEFORE any charged legacy resolution, so a message that would be
  // rejected anyway cannot grow the op table or burn quota.
  Status bounded = CheckWireBounds(message);
  if (!bounded.ok()) {
    return IpcReply(bounded);
  }

  // Legacy op names resolve (charged) once, up front, so every path below
  // dispatches an interned id and the hot path stays string-free.
  const IpcMessage* source = &message;
  IpcMessage resolved;
  if (message.needs_op_resolution()) {
    resolved = message;
    Status legacy = ResolveLegacy(caller, resolved);
    if (!legacy.ok()) {
      return IpcReply(legacy);
    }
    source = &resolved;
  }

  // Newest interceptor first; composition is simply nesting (§3.2). The
  // chain is snapshotted under the reader lock and run without it — or,
  // when no monitor exists anywhere, skipped on one relaxed load.
  std::vector<Interceptor*> active;
  SnapshotInterceptors(port, &active);

  if (active.empty()) {
    // No monitor on this port: dispatch by reference, untouched. The reply
    // bounds check matches the interposed path below, so whether a
    // server's reply is accepted never depends on a monitor being present.
    IpcReply reply = Dispatch(caller, port, *source);
    if (Status reply_bounds = CheckReplyWireBounds(reply); !reply_bounds.ok()) {
      reply = IpcReply(std::move(reply_bounds));
    }
    EmitCallEvent(trace, caller, source->op, port, 0,
                  reply.status.ok() ? kTraceVerdictAllow : kTraceVerdictDeny);
    return reply;
  }

  // Structural interposition (§5.1): monitors receive the VALIDATED typed
  // message itself — one copy, zero marshal/unmarshal round trips, zero
  // strings — and pattern-match / rewrite slots in place. The wire codec
  // still exists for buffers that genuinely cross an address space (the
  // net layer, user-space monitor simulations); in-kernel chains get the
  // same bounds guarantees from Validate{Reply,}WireBounds alone.
  IpcMessage working = *source;
  IpcContext context{caller, port};
  for (Interceptor* interceptor : active) {
    if (interceptor->OnCall(context, working) == InterposeVerdict::kDeny) {
      // A blocked call returns earlier than a completed call (Table 1).
      EmitCallEvent(trace, caller, working.op, port,
                    kTraceFlagInterposed | kTraceFlagDenied, kTraceVerdictDeny);
      return IpcReply(PermissionDenied("blocked by reference monitor"));
    }
  }

  IpcReply reply = Dispatch(caller, port, working);
  if (Status reply_bounds = CheckReplyWireBounds(reply); !reply_bounds.ok()) {
    reply = IpcReply(std::move(reply_bounds));
  }

  // Reply direction, reverse order (innermost monitor sees the handler's
  // reply first — unwinding the nesting the call direction established).
  uint16_t reply_flags = kTraceFlagInterposed;
  for (auto it = active.rbegin(); it != active.rend(); ++it) {
    if ((*it)->OnReply(context, working, reply) == InterposeVerdict::kDeny) {
      reply = IpcReply(PermissionDenied("reply blocked by reference monitor"));
      reply_flags |= kTraceFlagDenied;
      break;
    }
  }
  EmitReplyInterposeEvent(trace, caller, working.op, port, reply_flags,
                          reply.status.ok() ? kTraceVerdictAllow : kTraceVerdictDeny);
  EmitCallEvent(trace, caller, working.op, port, kTraceFlagInterposed,
                reply.status.ok() ? kTraceVerdictAllow : kTraceVerdictDeny);
  return reply;
}

IpcReply Kernel::Dispatch(ProcessId caller, PortId port, const IpcMessage& message) {
  std::optional<Port> snapshot = SnapshotPort(port);
  if (!snapshot.has_value()) {
    return IpcReply(NotFound("no such port"));
  }
  if (snapshot->handler == nullptr) {
    return IpcReply(Unavailable("no handler bound to port"));
  }
  // The handler runs with no kernel lock held. A concurrent DestroyPort
  // lets this in-flight call complete against the handler captured here
  // (the snapshot carries the port generation for callers that care).
  IpcContext context{caller, port};
  return snapshot->handler->Handle(context, message);
}

void Kernel::SnapshotInterceptors(PortId port, std::vector<Interceptor*>* active) const {
  if (!interposition_enabled_.load(std::memory_order_relaxed) ||
      interpose_count_.load(std::memory_order_acquire) == 0) {
    return;
  }
  std::shared_lock<std::shared_mutex> lock(interpose_mu_);
  for (auto it = interpositions_.rbegin(); it != interpositions_.rend(); ++it) {
    if (it->port == port) {
      active->push_back(it->interceptor);
    }
  }
}

size_t Kernel::CallMany(ProcessId caller, PortId port, std::span<const IpcMessage> messages,
                        std::span<IpcReply> replies) {
  const size_t n = std::min(messages.size(), replies.size());
  if (n == 0) {
    return 0;
  }
  // ONE trace scope for the batch: every per-message event below shares
  // this id, so the auditor sees one chain whose kCall events each have a
  // matching reply-interpose stage — the invariant is per-message even
  // though the crossing is per-batch.
  TraceScope trace;
  size_t ok = 0;
  if (IsSyscallPort(port)) {
    // Syscalls keep their per-message dispatch (liveness check, syscall
    // trace event, per-call interposition) under the shared trace scope.
    for (size_t i = 0; i < n; ++i) {
      replies[i] = Invoke(caller, SyscallOfPort(port), messages[i]);
      ok += replies[i].status.ok() ? 1 : 0;
    }
    return ok;
  }
  calls_->Increment(n);
  std::optional<Port> snapshot = SnapshotPort(port);
  if (!snapshot.has_value()) {
    for (size_t i = 0; i < n; ++i) {
      replies[i] = IpcReply(NotFound("no such port"));
    }
    return 0;
  }
  std::vector<Interceptor*> active;
  SnapshotInterceptors(port, &active);
  IpcContext context{caller, port};

  // Fast path: no monitors, every message typed and in bounds — the
  // original span goes straight to the server's HandleMany, zero copies
  // of any kind.
  bool fast = active.empty();
  for (size_t i = 0; fast && i < n; ++i) {
    fast = !messages[i].needs_op_resolution() && CheckWireBounds(messages[i]).ok();
  }
  if (fast) {
    if (snapshot->handler == nullptr) {
      for (size_t i = 0; i < n; ++i) {
        replies[i] = IpcReply(Unavailable("no handler bound to port"));
      }
      return 0;
    }
    snapshot->handler->HandleMany(context, messages.first(n), replies.first(n));
    for (size_t i = 0; i < n; ++i) {
      if (Status bounds = CheckReplyWireBounds(replies[i]); !bounds.ok()) {
        replies[i] = IpcReply(std::move(bounds));
      }
      EmitCallEvent(trace, caller, messages[i].op, port, kTraceFlagBatched,
                    replies[i].status.ok() ? kTraceVerdictAllow : kTraceVerdictDeny);
      ok += replies[i].status.ok() ? 1 : 0;
    }
    return ok;
  }

  // General path. Per-message admission — wire bounds, charged legacy
  // resolution, the forward interceptor chain — producing the surviving
  // sub-batch; working copies cost refcount bumps, not byte copies. The
  // staging vectors are thread-local scratch: a 256-message batch of
  // IpcMessages is big enough that a fresh allocation per batch shows up
  // as page churn at high rates, while reused capacity is free. The
  // scratch is moved out for the duration of the call (and moved back
  // after), so a handler that reenters CallMany on this thread simply
  // finds empty scratch and allocates its own.
  static thread_local std::vector<IpcMessage> accepted_scratch;
  static thread_local std::vector<size_t> slot_scratch;
  std::vector<IpcMessage> accepted = std::move(accepted_scratch);
  std::vector<size_t> slot_of = std::move(slot_scratch);
  accepted.clear();
  slot_of.clear();
  accepted.reserve(n);
  // slot_of stays EMPTY while the batch is dense (accepted[j] came from
  // messages[j] — the overwhelmingly common case); the first rejection
  // backfills the identity prefix and it tracks indices from then on.
  bool dense = true;
  auto note_rejection = [&] {
    if (dense) {
      dense = false;
      slot_of.reserve(n);
      for (size_t k = 0; k < accepted.size(); ++k) {
        slot_of.push_back(k);
      }
    }
  };
  for (size_t i = 0; i < n; ++i) {
    Status bounded = CheckWireBounds(messages[i]);
    if (!bounded.ok()) {
      note_rejection();
      replies[i] = IpcReply(std::move(bounded));
      continue;
    }
    // The working copy is built in place in the sub-batch (one copy, not
    // copy-then-move) and discarded from it again if a monitor denies.
    accepted.push_back(messages[i]);
    IpcMessage& working = accepted.back();
    if (working.needs_op_resolution()) {
      if (Status legacy = ResolveLegacy(caller, working); !legacy.ok()) {
        accepted.pop_back();
        note_rejection();
        replies[i] = IpcReply(std::move(legacy));
        continue;
      }
    }
    bool denied = false;
    for (Interceptor* interceptor : active) {
      if (interceptor->OnCall(context, working) == InterposeVerdict::kDeny) {
        EmitCallEvent(trace, caller, working.op, port,
                      kTraceFlagInterposed | kTraceFlagDenied | kTraceFlagBatched,
                      kTraceVerdictDeny);
        replies[i] = IpcReply(PermissionDenied("blocked by reference monitor"));
        denied = true;
        break;
      }
    }
    if (denied) {
      accepted.pop_back();
      note_rejection();
      continue;
    }
    if (!dense) {
      slot_of.push_back(i);
    }
  }

  // ONE dispatch for the surviving sub-batch. In the dense case (every
  // message admitted — the overwhelmingly common one) the handler writes
  // straight into the caller's reply span; only a partially-denied batch
  // pays for a staging vector and a scatter.
  std::vector<IpcReply> staged(dense ? 0 : accepted.size());
  std::span<IpcReply> batch_replies =
      dense ? replies.first(n) : std::span<IpcReply>(staged);
  if (!accepted.empty()) {
    if (snapshot->handler == nullptr) {
      for (IpcReply& reply : batch_replies) {
        reply = IpcReply(Unavailable("no handler bound to port"));
      }
    } else {
      snapshot->handler->HandleMany(context, std::span<const IpcMessage>(accepted),
                                    batch_replies);
    }
  }

  // Reply direction per message: bounds, reverse interceptor chain, and
  // the same trace stages a single interposed Call emits.
  for (size_t j = 0; j < accepted.size(); ++j) {
    IpcReply& reply = batch_replies[j];
    if (Status bounds = CheckReplyWireBounds(reply); !bounds.ok()) {
      reply = IpcReply(std::move(bounds));
    }
    uint16_t call_flags = kTraceFlagBatched;
    if (!active.empty()) {
      call_flags |= kTraceFlagInterposed;
      uint16_t reply_flags = kTraceFlagInterposed | kTraceFlagBatched;
      for (auto it = active.rbegin(); it != active.rend(); ++it) {
        if ((*it)->OnReply(context, accepted[j], reply) == InterposeVerdict::kDeny) {
          reply = IpcReply(PermissionDenied("reply blocked by reference monitor"));
          reply_flags |= kTraceFlagDenied;
          break;
        }
      }
      EmitReplyInterposeEvent(trace, caller, accepted[j].op, port, reply_flags,
                              reply.status.ok() ? kTraceVerdictAllow : kTraceVerdictDeny);
    }
    EmitCallEvent(trace, caller, accepted[j].op, port, call_flags,
                  reply.status.ok() ? kTraceVerdictAllow : kTraceVerdictDeny);
    if (!dense) {
      replies[slot_of[j]] = std::move(reply);
    }
  }
  accepted.clear();
  slot_of.clear();
  accepted_scratch = std::move(accepted);
  slot_scratch = std::move(slot_of);
  for (size_t i = 0; i < n; ++i) {
    ok += replies[i].status.ok() ? 1 : 0;
  }
  return ok;
}

// ---------------------------------------------------------- Interposition

Result<uint64_t> Kernel::Interpose(ProcessId monitor, PortId port, Interceptor* interceptor) {
  if (!SnapshotPort(port).has_value()) {
    return NotFound("no such port");
  }
  if (interceptor == nullptr) {
    return InvalidArgument("null interceptor");
  }
  // Interposition is itself a guarded operation: consent is expressed by a
  // goal formula on the port (§3.2). The op id is hoisted; the object name
  // is caller-influenced, so it interns through the charged surface.
  static const OpId interpose_op = InternOp("interpose");
  Result<ObjectId> object = InternObjectCharged(monitor, "port:" + std::to_string(port));
  if (!object.ok()) {
    return object.status();
  }
  Status authorized = Authorize(AuthzRequest{monitor, interpose_op, *object});
  if (!authorized.ok()) {
    return authorized;
  }
  uint64_t token = next_interpose_token_.fetch_add(1);
  std::unique_lock<std::shared_mutex> lock(interpose_mu_);
  interpositions_.push_back(Interposition{token, port, monitor, interceptor});
  // Release publish: the uninterposed fast path reads this count with
  // acquire and skips the interpose_mu_ shared lock entirely when zero.
  interpose_count_.store(interpositions_.size(), std::memory_order_release);
  return token;
}

Status Kernel::RemoveInterposition(uint64_t token) {
  std::unique_lock<std::shared_mutex> lock(interpose_mu_);
  for (auto it = interpositions_.begin(); it != interpositions_.end(); ++it) {
    if (it->token == token) {
      interpositions_.erase(it);
      interpose_count_.store(interpositions_.size(), std::memory_order_release);
      return OkStatus();
    }
  }
  return NotFound("no such interposition");
}

// -------------------------------------------------------------- Syscalls

IpcReply Kernel::Invoke(ProcessId caller, Syscall call, const IpcMessage& message) {
  syscalls_->Increment();
  // Root of the provenance chain for a traced syscall: every nested stage
  // (interposition hop, authorization, fileserver Call) adopts this id.
  TraceScope trace;
  // Full dispatch latency, traced invocations only (covers every return).
  ScopedCycleHistogram timer(trace.active() ? call_cycles_ : nullptr);
  ProcessId parent = kKernelProcessId;
  {
    const ProcessShard& shard = process_shards_[ShardOfId(caller)];
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto proc_it = shard.procs.find(caller);
    if (proc_it == shard.procs.end() || !proc_it->second.alive.load()) {
      return IpcReply(NotFound("no such process"));
    }
    const Process& proc = proc_it->second;
    if (proc.allowed_syscalls.has_value() && !proc.allowed_syscalls->contains(call)) {
      return IpcReply(PermissionDenied("system call relinquished"));
    }
    parent = proc.parent;
  }

  IpcMessage working = message;
  // The syscall's own name overrides whatever the caller wrote in the op
  // field — including a pending legacy name, which is simply dropped (the
  // inner operation of ipc_call is an ARGUMENT, handled below).
  working.ResolveOp(SyscallOp(call));
  // Wire bounds (incl. slot overflow and forged ids) hold with or without
  // interposition — see Call. Single enforcement point.
  Status bounded = CheckWireBounds(working);
  if (!bounded.ok()) {
    return IpcReply(bounded);
  }
  if (trace.active()) {
    TraceEvent e;
    e.trace_id = trace.id();
    e.subject = caller;
    e.op = working.op;
    e.aux = static_cast<uint64_t>(call);
    e.stage = TraceStage::kSyscall;
    FlightRecorder::Global().Emit(e);
  }
  // The syscall channel's interceptor chain, structural in both directions
  // (see Call): monitors get the validated typed message — no marshal
  // round trip, no strings built, hashed, or re-parsed here (§5.1). The
  // channel is the syscall's RESERVED port (one per Syscall, shared by all
  // processes) — its id is a compile-time constant, so attaching costs no
  // lookup and the uninterposed path takes no lock at all.
  IpcContext sys_context{caller, SyscallIpcPort(call)};
  std::vector<Interceptor*> active;
  SnapshotInterceptors(sys_context.port, &active);
  for (Interceptor* interceptor : active) {
    if (interceptor->OnCall(sys_context, working) == InterposeVerdict::kDeny) {
      return IpcReply(PermissionDenied("blocked by reference monitor"));
    }
  }

  IpcReply reply = InvokeDispatch(caller, call, parent, working);

  if (!active.empty()) {
    uint16_t reply_flags = kTraceFlagInterposed;
    for (auto it = active.rbegin(); it != active.rend(); ++it) {
      if ((*it)->OnReply(sys_context, working, reply) == InterposeVerdict::kDeny) {
        reply = IpcReply(PermissionDenied("reply blocked by reference monitor"));
        reply_flags |= kTraceFlagDenied;
        break;
      }
    }
    EmitReplyInterposeEvent(trace, caller, working.op, sys_context.port, reply_flags,
                            reply.status.ok() ? kTraceVerdictAllow : kTraceVerdictDeny);
  }
  return reply;
}

// The post-interposition syscall dispatch, split out so Invoke can run the
// reply-direction interceptor chain over whatever any handler returns.
// Dispatch is a direct index into a compile-time handler table — the table
// mirrors the reserved-port layout, so "which port" and "which handler" are
// the same arithmetic and there is no map, no lock, and no branch chain.
IpcReply Kernel::InvokeDispatch(ProcessId caller, Syscall call, ProcessId parent,
                                IpcMessage& working) {
  static constexpr std::array<SyscallHandler, kSyscallCount> kSyscallTable = {
      &Kernel::SysNull,          // kNull
      &Kernel::SysGetPpid,       // kGetPpid
      &Kernel::SysGetTimeOfDay,  // kGetTimeOfDay
      &Kernel::SysYield,         // kYield
      &Kernel::SysFileForward,   // kOpen
      &Kernel::SysFileForward,   // kClose
      &Kernel::SysFileForward,   // kRead
      &Kernel::SysFileForward,   // kWrite
      &Kernel::SysControl,       // kSay
      &Kernel::SysControl,       // kSetGoal
      &Kernel::SysControl,       // kSetProof
      &Kernel::SysControl,       // kInterpose
      &Kernel::SysIpcCall,       // kIpcCall
      &Kernel::SysProcRead,      // kProcRead
  };
  static_assert(kSyscallTable.size() == kSyscallCount,
                "every syscall needs a handler table entry");
  const auto index = static_cast<size_t>(call);
  if (index >= kSyscallTable.size()) {
    return IpcReply(Internal("unhandled syscall"));
  }
  return (this->*kSyscallTable[index])(caller, parent, working);
}

IpcReply Kernel::SysNull(ProcessId, ProcessId, IpcMessage&) { return IpcReply::Ok(); }

IpcReply Kernel::SysGetPpid(ProcessId, ProcessId parent, IpcMessage&) {
  return IpcReply::Ok().AddU64(parent);
}

IpcReply Kernel::SysGetTimeOfDay(ProcessId, ProcessId, IpcMessage&) {
  return IpcReply::Ok().AddU64(NowMicros());
}

IpcReply Kernel::SysYield(ProcessId caller, ProcessId, IpcMessage&) {
  std::unique_lock<std::mutex> lock(sched_mu_);
  Result<ProcessId> next = scheduler_->Tick();
  lock.unlock();
  return IpcReply::Ok().AddU64(next.ok() ? *next : caller);
}

IpcReply Kernel::SysFileForward(ProcessId caller, ProcessId, IpcMessage& working) {
  PortId fs_port = fs_port_.load();
  if (fs_port == 0) {
    return IpcReply(Unavailable("no filesystem server"));
  }
  // Client-server microkernel architecture: the file operation is one
  // more IPC hop to the user-level server (Table 1's 2-3x). The op is
  // already the hoisted syscall id; no string is built for the hop.
  return Call(caller, fs_port, working);
}

IpcReply Kernel::SysControl(ProcessId, ProcessId, IpcMessage&) {
  // Control operations are handled by the core layer (which owns label
  // and goal stores); reaching the raw kernel is a wiring error.
  return IpcReply(Unavailable("control syscall not wired to an authorization engine"));
}

IpcReply Kernel::SysProcRead(ProcessId caller, ProcessId, IpcMessage& working) {
  // Paths are inherently text; everything derived from one is memoized.
  Result<std::string_view> path = working.ArgString(0);
  if (!path.ok()) {
    return IpcReply(InvalidArgument("proc_read needs a path"));
  }
  // Interned fast path: the op id is hoisted once, and the
  // "proc:<path>" object id is built exactly once per novel path —
  // repeat reads find it in the memo with no concatenation. The memo
  // miss interns through the charged surface (a process probing
  // endless novel proc paths exhausts its own name quota, not the
  // table).
  static const OpId read_op = InternOp("read");
  Result<ObjectId> object = ProcObjectFor(caller, *path);
  if (!object.ok()) {
    return IpcReply(object.status());
  }
  Status authorized = Authorize(AuthzRequest{caller, read_op, *object});
  if (!authorized.ok()) {
    return IpcReply(authorized);
  }
  Result<std::string> value = procfs_.Read(*path);
  if (!value.ok()) {
    return IpcReply(value.status());
  }
  return IpcReply::Ok().AddString(*value);
}

IpcReply Kernel::SysIpcCall(ProcessId caller, ProcessId, IpcMessage& working) {
  if (working.args.empty()) {
    return IpcReply(InvalidArgument("ipc_call needs a port"));
  }
  // args[0] is caller-controlled: a kPort/kU64 slot, or legacy decimal
  // text (decoded at the single validated point in the accessor —
  // garbage or a 100-digit number is InvalidArgument, never a throw).
  Result<PortId> port = working.ArgPort(0);
  if (!port.ok()) {
    return IpcReply(InvalidArgument("ipc_call: port must be a port id"));
  }
  IpcMessage inner;
  if (working.args.size() > 1) {
    // args[1] names the inner operation: typed callers pass the
    // interned id (validated at unmarshal); script-style callers pass
    // text, which resolves through the caller-charged op quota inside
    // the nested Call.
    ArgSlot op_slot = working.args[1];
    if (op_slot.tag() == ArgTag::kString) {
      inner = IpcMessage::FromLegacy(op_slot.text());
    } else if (op_slot.tag() == ArgTag::kU64) {
      if (!IsKnownOpId(op_slot.scalar())) {
        return IpcReply(InvalidArgument("ipc_call: unknown op id"));
      }
      inner.op = static_cast<OpId>(op_slot.scalar());
    } else {
      return IpcReply(InvalidArgument("ipc_call: operation must be an op id or text"));
    }
    // Tail() aliases the outer arena for payload slots — the inner
    // message forwards the caller's bytes by reference, not by copy.
    inner.args = working.args.Tail(2);
  }
  inner.data = std::move(working.data);
  return Call(caller, *port, inner);
}

// ---------------------------------------------------------- Authorization

Status Kernel::Authorize(const AuthzRequest& request) {
  if (engine_ == nullptr) {
    return OkStatus();  // Authorization disabled (Fig. 4 case "system call").
  }
  authorize_requests_->Increment();
  // Adopts the syscall/Call trace id when one is active (the usual case:
  // Authorize runs inside an Invoke); at the root it opens its own trace.
  TraceScope trace;
  bool cache_enabled = decision_cache_enabled_.load();
  if (cache_enabled) {
    std::optional<bool> cached = decision_cache_.Lookup(request);
    // The extra Generation() shard lock is paid only on traced calls.
    uint64_t probe_gen = trace.active() ? decision_cache_.Generation(request) : 0;
    if (trace.active()) {
      TraceEvent probe;
      probe.trace_id = trace.id();
      probe.subject = request.subject;
      probe.op = request.op;
      probe.obj = request.obj;
      probe.generation = probe_gen;
      probe.flags = cached.has_value() ? kTraceFlagCacheHit : kTraceFlagCacheMiss;
      probe.stage = TraceStage::kCacheProbe;
      FlightRecorder::Global().Emit(probe);
    }
    if (cached.has_value()) {
      if (!*cached) {
        authorize_denies_->Increment();
      }
      if (trace.active()) {
        TraceEvent verdict;
        verdict.trace_id = trace.id();
        verdict.subject = request.subject;
        verdict.op = request.op;
        verdict.obj = request.obj;
        // A hit is valid exactly under the generation the probe observed
        // (Lookup only returns entries stamped with the current gen).
        verdict.generation = probe_gen;
        verdict.flags =
            kTraceFlagCacheHit | (*cached ? uint16_t{0} : kTraceFlagDenied);
        verdict.verdict = *cached ? kTraceVerdictAllow : kTraceVerdictDeny;
        verdict.stage = TraceStage::kVerdict;
        FlightRecorder::Global().Emit(verdict);
      }
      return *cached ? OkStatus()
                     : PermissionDenied("denied (cached guard decision)");
    }
  }
  // The engine upcall runs outside the cache locks, so a concurrent
  // setgoal/setproof can invalidate this tuple's subregion mid-evaluation.
  // Snapshot the subregion generation first; InsertIfUnchanged drops the
  // verdict if an invalidation raced it, so a stale decision is recomputed
  // on the next miss instead of cached past its goal change.
  uint64_t generation = cache_enabled ? decision_cache_.Generation(request) : 0;
  // The miss is about to cross the engine (proof check, possibly remote
  // round trips) — microseconds of work, so a cycle read here is free
  // relative to what it measures.
  uint64_t miss_start = trace.active() ? ReadCycleCounter() : 0;
  // Stamp the trace id into the request the engine sees: the guard,
  // designated-guard upcall, and remote authorities tag their events with
  // it. Zero when untraced — downstream stages then skip emission.
  AuthzRequest stamped = request;
  if (stamped.trace == 0) {
    stamped.trace = trace.id();
  }
  AuthzDecision decision = engine_->Authorize(stamped);
  if (cache_enabled && decision.cacheable) {
    decision_cache_.InsertIfUnchanged(request, decision.allowed(), generation);
  }
  if (!decision.allowed()) {
    authorize_denies_->Increment();
  }
  if (trace.active()) {
    uint32_t elapsed = static_cast<uint32_t>(ReadCycleCounter() - miss_start);
    authorize_cycles_->Record(elapsed);
    TraceEvent verdict;
    verdict.trace_id = trace.id();
    verdict.subject = request.subject;
    verdict.op = request.op;
    verdict.obj = request.obj;
    verdict.latency = elapsed;
    // Re-read after the engine returned: together with the probe's stamp
    // this brackets the verdict's validity window [probe gen, this gen] —
    // the auditor's serializability join key. Traced misses only.
    verdict.generation = cache_enabled ? decision_cache_.Generation(request) : 0;
    verdict.flags = static_cast<uint16_t>(
        (cache_enabled ? kTraceFlagCacheMiss : 0) |
        (decision.cacheable ? 0 : kTraceFlagUncacheable) |
        (decision.allowed() ? 0 : kTraceFlagDenied));
    verdict.aux = decision.consulted_authorities;
    verdict.verdict = decision.allowed() ? kTraceVerdictAllow : kTraceVerdictDeny;
    verdict.stage = TraceStage::kVerdict;
    FlightRecorder::Global().Emit(verdict);
  }
  return decision.ToStatus();
}

Status Kernel::Authorize(ProcessId subject, std::string_view operation,
                         std::string_view object) {
  // The untrusted string surface: BOTH names are caller-influenced here,
  // so each is charged to the subject's quota root before it can grow its
  // intern table.
  Result<OpId> op = InternOpCharged(subject, operation);
  if (!op.ok()) {
    return op.status();
  }
  Result<ObjectId> obj = InternObjectCharged(subject, object);
  if (!obj.ok()) {
    return obj.status();
  }
  return Authorize(AuthzRequest{subject, *op, *obj});
}

std::vector<Status> Kernel::AuthorizeBatch(std::span<const AuthzRequest> requests) {
  std::vector<Status> results(requests.size());
  if (engine_ == nullptr) {
    return results;  // Value-initialized Status is OK.
  }
  authorize_requests_->Increment(requests.size());
  // One trace id covers the whole batch: the point of batching is that the
  // items share an evaluation, so their provenance shares a chain.
  TraceScope trace;
  bool cache_enabled = decision_cache_enabled_.load();
  std::vector<AuthzRequest> misses;
  std::vector<size_t> miss_slots;
  std::vector<uint64_t> miss_generations;
  // Runs of identical (subject, op, obj) tuples — a batched server asking
  // the same question per message, the dominant shape — share ONE probe
  // and one verdict: the batch serializes at a single authorization point
  // by design (see the trace-id comment above), so asking again inside it
  // could not observe a different answer. `run_head` is the first index
  // of the current run; later members copy its result at the end.
  std::vector<std::pair<size_t, size_t>> dups;  // (slot, run head slot)
  dups.reserve(requests.size());
  size_t run_head = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (i > 0) {
      const AuthzRequest& prev = requests[i - 1];
      if (requests[i].subject == prev.subject && requests[i].op == prev.op &&
          requests[i].obj == prev.obj) {
        dups.emplace_back(i, run_head);
        continue;
      }
      run_head = i;
    }
    if (cache_enabled) {
      std::optional<bool> cached = decision_cache_.Lookup(requests[i]);
      if (cached.has_value()) {
        if (!*cached) {
          authorize_denies_->Increment();
        }
        results[i] =
            *cached ? OkStatus() : PermissionDenied("denied (cached guard decision)");
        continue;
      }
    }
    misses.push_back(requests[i]);
    misses.back().trace = trace.id();  // 0 when untraced; see Authorize.
    miss_slots.push_back(i);
    // Snapshot before the engine upcall: see Authorize for the stale-insert
    // race this closes.
    miss_generations.push_back(cache_enabled ? decision_cache_.Generation(requests[i]) : 0);
  }
  if (!misses.empty()) {
    std::vector<AuthzDecision> decisions = engine_->AuthorizeBatch(misses);
    for (size_t j = 0; j < misses.size(); ++j) {
      if (cache_enabled && decisions[j].cacheable) {
        decision_cache_.InsertIfUnchanged(misses[j], decisions[j].allowed(),
                                          miss_generations[j]);
      }
      if (!decisions[j].allowed()) {
        authorize_denies_->Increment();
      }
      results[miss_slots[j]] = decisions[j].ToStatus();
    }
  }
  // Run members copy their head's result (heads resolve before any dup
  // that references them — dups only point backward). Deny accounting
  // stays per-request, matching the serial path. An allowed head needs no
  // copy at all: the results vector value-initializes to OK.
  for (const auto& [slot, head] : dups) {
    if (!results[head].ok()) {
      authorize_denies_->Increment();
      results[slot] = results[head];
    }
  }
  return results;
}

namespace {

// Shared §2.9 charge path for both name tables: a genuinely novel name is
// charged to `root`; a root at its cap is denied with a reason BEFORE the
// table can grow. Caller holds the quota mutex.
Result<uint32_t> InternChargedLocked(NameTable& table, std::string_view name,
                                     std::string_view what, ProcessId root, size_t cap,
                                     std::unordered_map<ProcessId, size_t>& charges) {
  size_t& charged = charges[root];
  if (charged >= cap) {
    return ResourceExhausted(std::string(what) + " name quota exhausted for quota root " +
                             std::to_string(root) + " (" + std::to_string(cap) +
                             " novel names); denied before interning \"" +
                             std::string(name) + "\"");
  }
  bool created = false;
  uint32_t id = table.Intern(name, &created);
  if (created) {
    ++charged;
  }
  return id;
}

}  // namespace

ProcessId Kernel::QuotaRootOf(ProcessId subject) const {
  const ProcessShard& shard = process_shards_[ShardOfId(subject)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.procs.find(subject);
  return it != shard.procs.end() ? it->second.quota_root : subject;
}

Result<ObjectId> Kernel::InternObjectCharged(ProcessId subject, std::string_view object) {
  // Length-bounded like the op side: the quota caps the COUNT of novel
  // names, so without a size bound each charge could pin arbitrary memory
  // in the immortal append-only table. The bound is the wire's per-slot
  // payload cap plus headroom for server-added prefixes ("file:", "proc:",
  // "port:<id>") — a maximum-length path the wire accepts must intern.
  if (object.size() > kMaxObjectNameLen) {
    return InvalidArgument("object name too long");
  }
  size_t cap = object_name_quota_.load();
  if (cap == 0) {
    return InternObject(object);  // Quotas disabled.
  }
  // Already-interned names cost nothing: the common case (every repeat
  // authorization of a known object) takes one striped Find probe and
  // never touches the quota lock.
  std::optional<ObjectId> existing = FindObject(object);
  if (existing.has_value()) {
    return *existing;
  }
  ProcessId root = QuotaRootOf(subject);
  // Charging serializes on one mutex, but only for genuinely novel names —
  // a workload that stays inside its working set never lands here.
  std::lock_guard<std::mutex> lock(name_quota_mu_);
  return InternChargedLocked(ObjectTable(), object, "object", root, cap,
                             object_names_charged_);
}

Result<OpId> Kernel::InternOpCharged(ProcessId subject, std::string_view operation) {
  // Length-bounded on every untrusted surface (FromLegacy resolution, the
  // Authorize string shim, the guard port's text form): operation names
  // are a tiny vocabulary, and an unbounded one would let each quota
  // charge pin arbitrary memory in the append-only table.
  if (operation.size() > kMaxLegacyOpName) {
    return InvalidArgument("operation name too long");
  }
  size_t cap = op_name_quota_.load();
  if (cap == 0) {
    return InternOp(operation);  // Quotas disabled.
  }
  std::optional<OpId> existing = FindOp(operation);
  if (existing.has_value()) {
    return *existing;  // The entire legitimate op vocabulary lands here.
  }
  ProcessId root = QuotaRootOf(subject);
  std::lock_guard<std::mutex> lock(name_quota_mu_);
  return InternChargedLocked(OpTable(), operation, "operation", root, cap,
                             op_names_charged_);
}

Result<OpId> Kernel::ResolveOpArg(ProcessId caller, const IpcMessage& message, size_t i) {
  if (message.ArgIsString(i)) {
    return InternOpCharged(caller, *message.ArgString(i));
  }
  Result<uint64_t> op = message.ArgU64(i);
  if (!op.ok()) {
    return op.status();
  }
  // Same forged-id rule as every other untrusted carrier: a 64-bit value
  // that names no interned operation must not silently truncate onto one.
  if (!IsKnownOpId(*op)) {
    return InvalidArgument("argument slot " + std::to_string(i) + " is not a known op id");
  }
  return static_cast<OpId>(*op);
}

Result<ObjectId> Kernel::ResolveObjectArg(ProcessId caller, const IpcMessage& message,
                                          size_t i) {
  if (message.ArgIsString(i)) {
    return InternObjectCharged(caller, *message.ArgString(i));
  }
  return message.ArgObject(i);
}

Result<ObjectId> Kernel::ProcObjectFor(ProcessId caller, std::string_view path) {
  {
    std::shared_lock<std::shared_mutex> lock(proc_memo_mu_);
    auto it = proc_object_memo_.find(path);
    if (it != proc_object_memo_.end()) {
      return it->second;  // Memoized: no concatenation, no intern probe.
    }
  }
  // First sight of this path: build "proc:<path>" once and intern it
  // through the charged surface. Quota denials are NOT memoized — a root
  // whose budget frees up (quota raised at runtime) must be able to retry.
  Result<ObjectId> object = InternObjectCharged(caller, "proc:" + std::string(path));
  if (object.ok()) {
    std::unique_lock<std::shared_mutex> lock(proc_memo_mu_);
    proc_object_memo_.emplace(std::string(path), *object);
  }
  return object;
}

void Kernel::OnProofUpdate(const AuthzRequest& request, uint64_t* post_gen) {
  decision_cache_.InvalidateEntry(request, post_gen);
  if (invalidation_sink_) {
    invalidation_sink_(request.op, request.obj);
  }
}

void Kernel::OnGoalUpdate(OpId op, ObjectId obj, std::vector<uint64_t>* post_gens) {
  decision_cache_.InvalidateSubregion(op, obj, post_gens);
  if (invalidation_sink_) {
    invalidation_sink_(op, obj);
  }
}

void Kernel::ReplaceScheduler(std::unique_ptr<Scheduler> scheduler) {
  std::lock_guard<std::mutex> lock(sched_mu_);
  scheduler_ = std::move(scheduler);
}

}  // namespace nexus::kernel
