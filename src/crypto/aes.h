// AES-128 block cipher and CTR mode.
//
// SSRs (§3.3 of the paper) use counter-mode AES so that file regions can be
// encrypted independently: a ciphertext block does not depend on its
// predecessor, enabling partial reads/writes and demand paging.
#ifndef NEXUS_CRYPTO_AES_H_
#define NEXUS_CRYPTO_AES_H_

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace nexus::crypto {

inline constexpr size_t kAesBlockSize = 16;
inline constexpr size_t kAesKeySize = 16;

using AesKey = std::array<uint8_t, kAesKeySize>;
using AesBlock = std::array<uint8_t, kAesBlockSize>;

// AES-128 with a precomputed key schedule.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  // Encrypts one 16-byte block in place.
  void EncryptBlock(uint8_t block[kAesBlockSize]) const;

 private:
  uint8_t round_keys_[176];
};

// CTR-mode keystream cipher. Encryption and decryption are the same
// operation. `nonce` selects the stream; `offset` is the byte offset within
// the stream, so callers can en/decrypt any region independently.
class AesCtr {
 public:
  AesCtr(const AesKey& key, uint64_t nonce);

  // XORs `data` with the keystream starting at byte `offset`, in place.
  void CryptInPlace(uint64_t offset, Bytes& data) const;
  Bytes Crypt(uint64_t offset, ByteView data) const;

 private:
  Aes128 cipher_;
  uint64_t nonce_;
};

}  // namespace nexus::crypto

#endif  // NEXUS_CRYPTO_AES_H_
