#include "kernel/payload.h"

#include <algorithm>
#include <atomic>

namespace nexus::kernel {

namespace {

// Process-wide audit counter for the zero-copy data-plane assertion.
std::atomic<uint64_t> payload_copies{0};

void CountCopy() { payload_copies.fetch_add(1, std::memory_order_relaxed); }

}  // namespace

uint64_t IpcPayloadCopyCount() { return payload_copies.load(); }

Payload::Payload(Bytes&& bytes) {
  if (!bytes.empty()) {
    length_ = bytes.size();
    arena_ = std::make_shared<Bytes>(std::move(bytes));
  }
}

Payload::Payload(const Bytes& bytes) {
  if (!bytes.empty()) {
    CountCopy();
    length_ = bytes.size();
    arena_ = std::make_shared<Bytes>(bytes);
  }
}

Payload::Payload(std::initializer_list<uint8_t> init) {
  if (init.size() != 0) {
    CountCopy();
    length_ = init.size();
    arena_ = std::make_shared<Bytes>(init);
  }
}

Payload& Payload::operator=(Bytes&& bytes) {
  *this = Payload(std::move(bytes));
  return *this;
}

Payload Payload::Slice(std::shared_ptr<Bytes> arena, size_t offset, size_t length) {
  Payload out;
  if (arena == nullptr) {
    return out;
  }
  offset = std::min(offset, arena->size());
  length = std::min(length, arena->size() - offset);
  if (length == 0) {
    return out;
  }
  out.arena_ = std::move(arena);
  out.offset_ = offset;
  out.length_ = length;
  return out;
}

Payload Payload::Copy(ByteView bytes) {
  Payload out;
  if (!bytes.empty()) {
    CountCopy();
    out.length_ = bytes.size();
    out.arena_ = std::make_shared<Bytes>(bytes.begin(), bytes.end());
  }
  return out;
}

bool Payload::ViewEquals(ByteView a, ByteView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

void Payload::Detach(size_t n) {
  auto fresh = std::make_shared<Bytes>(n, uint8_t{0});
  size_t keep = std::min(length_, n);
  if (keep > 0) {
    CountCopy();
    std::copy_n(arena_->data() + offset_, keep, fresh->data());
  }
  arena_ = std::move(fresh);
  offset_ = 0;
  length_ = n;
}

uint8_t* Payload::MutableData() {
  if (length_ == 0) {
    return nullptr;
  }
  // A uniquely-owned arena mutates in place; a shared one (someone else
  // still reads these bytes) pays exactly one counted copy first.
  if (arena_.use_count() > 1) {
    Detach(length_);
  }
  return arena_->data() + offset_;
}

void Payload::resize(size_t n) {
  if (n <= length_) {
    length_ = n;  // Narrow the slice: zero-copy, shared or not.
    if (n == 0) {
      clear();
    }
    return;
  }
  if (length_ == 0) {
    // Nothing to preserve: fresh zeroed buffer, no copy to count.
    arena_ = std::make_shared<Bytes>(n, uint8_t{0});
    offset_ = 0;
    length_ = n;
    return;
  }
  Detach(n);
}

void Payload::assign(ByteView bytes) { *this = Copy(bytes); }

Bytes Payload::ToOwned() const {
  if (length_ == 0) {
    return Bytes{};
  }
  CountCopy();
  return Bytes(begin(), end());
}

}  // namespace nexus::kernel
