#include <gtest/gtest.h>

#include "core/nexus.h"
#include "kernel/fileserver.h"
#include "services/read_redactor.h"
#include "nal/parser.h"
#include "services/cobuf.h"
#include "services/ddrm.h"
#include "services/ipc_analyzer.h"
#include "services/safety_certifier.h"
#include "services/time_authority.h"
#include "tpm/tpm.h"

namespace nexus::services {
namespace {

class ServicesTest : public ::testing::Test {
 protected:
  ServicesTest() : tpm_rng_(501), tpm_(tpm_rng_), nexus_(&tpm_) {}

  Rng tpm_rng_;
  tpm::Tpm tpm_;
  core::Nexus nexus_;
};

// ------------------------------------------------------------ IpcAnalyzer

class AnalyzerTest : public ServicesTest {
 protected:
  AnalyzerTest() {
    app_ = *nexus_.CreateProcess("app", ToBytes("app"));
    relay_ = *nexus_.CreateProcess("relay", ToBytes("relay"));
    fsd_ = *nexus_.CreateProcess("fsdriver", ToBytes("fsd"));
    analyzer_pid_ = *nexus_.CreateProcess("analyzer", ToBytes("an"));
    relay_port_ = *nexus_.CreatePort(relay_);
    fsd_port_ = *nexus_.CreatePort(fsd_);
  }

  kernel::ProcessId app_ = 0, relay_ = 0, fsd_ = 0, analyzer_pid_ = 0;
  kernel::PortId relay_port_ = 0, fsd_port_ = 0;
};

TEST_F(AnalyzerTest, DirectAndTransitivePaths) {
  IpcAnalyzer analyzer(&nexus_.kernel(), &nexus_.engine(), analyzer_pid_);
  EXPECT_FALSE(analyzer.HasPath(app_, fsd_));
  nexus_.kernel().ConnectPort(app_, relay_port_);
  EXPECT_TRUE(analyzer.HasPath(app_, relay_));
  EXPECT_FALSE(analyzer.HasPath(app_, fsd_));
  nexus_.kernel().ConnectPort(relay_, fsd_port_);
  EXPECT_TRUE(analyzer.HasPath(app_, fsd_)) << "transitive path app->relay->fsd";
}

TEST_F(AnalyzerTest, AttestNoPathIssuesLabel) {
  IpcAnalyzer analyzer(&nexus_.kernel(), &nexus_.engine(), analyzer_pid_);
  Result<core::LabelHandle> h = analyzer.AttestNoPath(app_, "fsdriver");
  ASSERT_TRUE(h.ok());
  nal::Formula label = *nexus_.engine().StoreFor(analyzer_pid_).Get(*h);
  EXPECT_EQ(label->speaker().ToString(), "Nexus.ipd." + std::to_string(analyzer_pid_));
  EXPECT_EQ(label->child1()->kind(), nal::FormulaKind::kNot);
}

TEST_F(AnalyzerTest, AttestNoPathRefusesWhenPathExists) {
  nexus_.kernel().ConnectPort(app_, fsd_port_);
  IpcAnalyzer analyzer(&nexus_.kernel(), &nexus_.engine(), analyzer_pid_);
  EXPECT_FALSE(analyzer.AttestNoPath(app_, "fsdriver").ok());
  EXPECT_TRUE(analyzer.AttestPath(app_, "fsdriver").ok());
}

TEST_F(AnalyzerTest, AttestPathRefusesWhenNoPath) {
  IpcAnalyzer analyzer(&nexus_.kernel(), &nexus_.engine(), analyzer_pid_);
  EXPECT_FALSE(analyzer.AttestPath(app_, "fsdriver").ok());
}

TEST_F(AnalyzerTest, DisconnectRemovesPath) {
  nexus_.kernel().ConnectPort(app_, fsd_port_);
  IpcAnalyzer analyzer(&nexus_.kernel(), &nexus_.engine(), analyzer_pid_);
  EXPECT_TRUE(analyzer.HasPath(app_, fsd_));
  nexus_.kernel().DisconnectPort(app_, fsd_port_);
  EXPECT_FALSE(analyzer.HasPath(app_, fsd_));
}

TEST_F(AnalyzerTest, CyclesTerminate) {
  kernel::PortId app_port = *nexus_.CreatePort(app_);
  nexus_.kernel().ConnectPort(app_, relay_port_);
  nexus_.kernel().ConnectPort(relay_, app_port);  // Cycle.
  IpcAnalyzer analyzer(&nexus_.kernel(), &nexus_.engine(), analyzer_pid_);
  EXPECT_TRUE(analyzer.HasPath(app_, relay_));
  EXPECT_TRUE(analyzer.HasPath(relay_, app_));
  EXPECT_FALSE(analyzer.HasPath(app_, fsd_));
}

// ---------------------------------------------------------- TimeAuthority

TEST(TimeAuthorityTest, HandlesOnlyOwnTimeStatements) {
  int64_t now = 100;
  TimeAuthority ntp(nal::Principal("NTP"), [&now] { return now; });
  auto f = [](const char* text) { return *nal::ParseFormula(text); };
  EXPECT_TRUE(ntp.Handles(f("NTP says TimeNow < 200")));
  EXPECT_TRUE(ntp.Handles(f("NTP says 50 <= TimeNow")));
  EXPECT_FALSE(ntp.Handles(f("OtherClock says TimeNow < 200")));
  EXPECT_FALSE(ntp.Handles(f("NTP says Quota < 200")));
  EXPECT_FALSE(ntp.Handles(f("NTP says deleteAll()")));
  EXPECT_FALSE(ntp.Handles(f("TimeNow < 200")));
}

TEST(TimeAuthorityTest, VouchesAccordingToClock) {
  int64_t now = 100;
  TimeAuthority ntp(nal::Principal("NTP"), [&now] { return now; });
  auto f = [](const char* text) { return *nal::ParseFormula(text); };
  EXPECT_TRUE(ntp.Vouches(f("NTP says TimeNow < 200")));
  EXPECT_FALSE(ntp.Vouches(f("NTP says TimeNow < 100")));
  EXPECT_TRUE(ntp.Vouches(f("NTP says TimeNow <= 100")));
  EXPECT_TRUE(ntp.Vouches(f("NTP says TimeNow = 100")));
  EXPECT_TRUE(ntp.Vouches(f("NTP says 99 < TimeNow")));
  now = 300;
  EXPECT_FALSE(ntp.Vouches(f("NTP says TimeNow < 200")));
  EXPECT_TRUE(ntp.Vouches(f("NTP says TimeNow > 200")));
  EXPECT_TRUE(ntp.Vouches(f("NTP says TimeNow != 200")));
}

TEST(TimeAuthorityTest, RefusesToSign) {
  TimeAuthority ntp(nal::Principal("NTP"), [] { return 0; });
  EXPECT_EQ(ntp.SignTimeLabel().code(), ErrorCode::kFailedPrecondition);
}

TEST(TimeAuthorityTest, EvaluateComparisonTable) {
  using CO = nal::CompareOp;
  struct Case {
    CO op;
    int64_t l, r;
    bool want;
  } cases[] = {
      {CO::kLt, 1, 2, true},  {CO::kLt, 2, 2, false}, {CO::kLe, 2, 2, true},
      {CO::kEq, 3, 3, true},  {CO::kEq, 3, 4, false}, {CO::kGe, 5, 5, true},
      {CO::kGt, 5, 5, false}, {CO::kNe, 5, 6, true},  {CO::kNe, 6, 6, false},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(EvaluateComparison(c.op, c.l, c.r), c.want);
  }
}

// --------------------------------------------------------- SafetyCertifier

class CertifierTest : public ServicesTest {
 protected:
  CertifierTest() {
    subject_ = *nexus_.CreateProcess("player", ToBytes("p"));
    analyzer_pid_ = *nexus_.CreateProcess("analyzer", ToBytes("a"));
    certifier_pid_ = *nexus_.CreateProcess("certifier", ToBytes("c"));
  }

  kernel::ProcessId subject_ = 0, analyzer_pid_ = 0, certifier_pid_ = 0;
};

TEST_F(CertifierTest, CertifiesWhenAllTargetsCovered) {
  IpcAnalyzer analyzer(&nexus_.kernel(), &nexus_.engine(), analyzer_pid_);
  ASSERT_TRUE(analyzer.AttestNoPath(subject_, "filesystem").ok());
  ASSERT_TRUE(analyzer.AttestNoPath(subject_, "netdriver").ok());
  SafetyCertifier certifier(&nexus_.kernel(), &nexus_.engine(), certifier_pid_, analyzer_pid_,
                            {"filesystem", "netdriver"});
  Result<core::LabelHandle> safe = certifier.Certify(subject_);
  ASSERT_TRUE(safe.ok()) << safe.status().ToString();
  nal::Formula label = *nexus_.engine().StoreFor(certifier_pid_).Get(*safe);
  EXPECT_EQ(label->child1()->pred_name(), "safe");
}

TEST_F(CertifierTest, RefusesWithMissingAttestation) {
  IpcAnalyzer analyzer(&nexus_.kernel(), &nexus_.engine(), analyzer_pid_);
  analyzer.AttestNoPath(subject_, "filesystem");
  SafetyCertifier certifier(&nexus_.kernel(), &nexus_.engine(), certifier_pid_, analyzer_pid_,
                            {"filesystem", "netdriver"});
  EXPECT_FALSE(certifier.Certify(subject_).ok());
}

TEST_F(CertifierTest, IgnoresAttestationsByOtherProcesses) {
  // A forger (not the trusted analyzer) says no-path; must not count.
  kernel::ProcessId forger = *nexus_.CreateProcess("forger", ToBytes("f"));
  nexus_.engine().Say(forger, "not hasPath(" + kernel::Kernel::ProcPath(subject_) +
                                  ", filesystem)");
  SafetyCertifier certifier(&nexus_.kernel(), &nexus_.engine(), certifier_pid_, analyzer_pid_,
                            {"filesystem"});
  EXPECT_FALSE(certifier.Certify(subject_).ok());
}

// ------------------------------------------------------------------ DDRM

TEST(DdrmTest, EnforcesOperationWhitelist) {
  DdrmPolicy policy;
  policy.allowed_operations = {"dma_setup", "send"};
  DeviceDriverMonitor monitor(policy);
  kernel::IpcContext context;
  kernel::IpcMessage ok_msg = kernel::IpcMessage::Of("send");
  kernel::IpcMessage bad_msg = kernel::IpcMessage::Of("format_disk");
  EXPECT_EQ(monitor.OnCall(context, ok_msg), kernel::InterposeVerdict::kAllow);
  EXPECT_EQ(monitor.OnCall(context, bad_msg), kernel::InterposeVerdict::kDeny);
  EXPECT_EQ(monitor.stats().allowed, 1u);
  EXPECT_EQ(monitor.stats().denied, 1u);
}

TEST(DdrmTest, BlocksPageContentAccess) {
  DdrmPolicy policy;
  policy.allowed_operations = {"dma_setup", "read_page", "write_page"};
  policy.allow_page_content_access = false;
  DeviceDriverMonitor monitor(policy);
  kernel::IpcContext context;
  kernel::IpcMessage read_page = kernel::IpcMessage::Of("read_page");
  read_page.AddU64(0x1000);
  EXPECT_EQ(monitor.OnCall(context, read_page), kernel::InterposeVerdict::kDeny);
  kernel::IpcMessage dma = kernel::IpcMessage::Of("dma_setup");
  dma.AddU64(0x1000);
  EXPECT_EQ(monitor.OnCall(context, dma), kernel::InterposeVerdict::kAllow);
}

TEST(DdrmTest, RestrictsIpcTargets) {
  DdrmPolicy policy;
  policy.allowed_operations = {"ipc_send"};
  policy.allowed_ipc_targets = {7};
  DeviceDriverMonitor monitor(policy);
  kernel::IpcContext context;
  // One typed port slot, one legacy decimal string: both decode.
  kernel::IpcMessage to_webserver = kernel::IpcMessage::Of("ipc_send");
  to_webserver.AddPort(7);
  kernel::IpcMessage to_other = kernel::IpcMessage::Of("ipc_send");
  to_other.AddString("9");
  EXPECT_EQ(monitor.OnCall(context, to_webserver), kernel::InterposeVerdict::kAllow);
  EXPECT_EQ(monitor.OnCall(context, to_other), kernel::InterposeVerdict::kDeny);
}

TEST(DdrmTest, MemoDoesNotCollapseDistinctCallShapes) {
  // Regression: the integer memo key must keep "ipc_send to port 0"
  // distinct from "ipc_send with no target" — a cached allow for the
  // former must never be replayed for the latter (which Evaluate denies
  // when a target whitelist is configured).
  DdrmPolicy policy;
  policy.allowed_operations = {"ipc_send"};
  policy.allowed_ipc_targets = {0};
  DeviceDriverMonitor monitor(policy, /*cache_decisions=*/true);
  kernel::IpcContext context;
  kernel::IpcMessage to_zero = kernel::IpcMessage::Of("ipc_send");
  to_zero.AddPort(0);
  EXPECT_EQ(monitor.OnCall(context, to_zero), kernel::InterposeVerdict::kAllow);
  kernel::IpcMessage no_target = kernel::IpcMessage::Of("ipc_send");
  EXPECT_EQ(monitor.OnCall(context, no_target), kernel::InterposeVerdict::kDeny);
  // Cached repeats keep their own verdicts.
  EXPECT_EQ(monitor.OnCall(context, to_zero), kernel::InterposeVerdict::kAllow);
  EXPECT_EQ(monitor.OnCall(context, no_target), kernel::InterposeVerdict::kDeny);
  // Unresolved legacy ops reaching OnCall directly are never memoized, so
  // two distinct never-interned operations cannot share a verdict.
  kernel::IpcMessage legacy_a = kernel::IpcMessage::FromLegacy("ddrm-legacy-novel-a");
  kernel::IpcMessage legacy_b = kernel::IpcMessage::FromLegacy("ddrm-legacy-novel-b");
  EXPECT_EQ(monitor.OnCall(context, legacy_a), kernel::InterposeVerdict::kDeny);
  EXPECT_EQ(monitor.OnCall(context, legacy_b), kernel::InterposeVerdict::kDeny);
}

TEST(DdrmTest, DecisionMemoDoesNotChangeVerdicts) {
  DdrmPolicy policy;
  policy.allowed_operations = {"send"};
  DeviceDriverMonitor cached(policy, /*cache_decisions=*/true);
  DeviceDriverMonitor uncached(policy, /*cache_decisions=*/false);
  kernel::IpcContext context;
  for (int i = 0; i < 100; ++i) {
    kernel::IpcMessage send = kernel::IpcMessage::Of("send");
    kernel::IpcMessage drop = kernel::IpcMessage::Of("drop");
    EXPECT_EQ(cached.OnCall(context, send), uncached.OnCall(context, send));
    EXPECT_EQ(cached.OnCall(context, drop), uncached.OnCall(context, drop));
  }
}

TEST_F(ServicesTest, DdrmAttestsConstrainedDriver) {
  kernel::ProcessId monitor_pid = *nexus_.CreateProcess("ddrm", ToBytes("m"));
  kernel::ProcessId driver_pid = *nexus_.CreateProcess("nic", ToBytes("d"));
  DdrmPolicy policy;
  policy.allow_page_content_access = false;
  DeviceDriverMonitor monitor(policy);
  ASSERT_TRUE(monitor.AttestDriver(&nexus_.engine(), monitor_pid, driver_pid).ok());
  bool found = false;
  for (const nal::Formula& label : nexus_.engine().StoreFor(monitor_pid).All()) {
    if (label->ToString().find("canReadPages") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------- Cobufs

class CobufTest : public ::testing::Test {
 protected:
  CobufTest()
      : alice_("user.alice"),
        bob_("user.bob"),
        eve_("user.eve"),
        // Alice authorized Bob; nobody authorized Eve.
        cobufs_([this](const nal::Principal& recipient, const nal::Principal& source) {
          return source == alice_ && recipient == bob_;
        }) {}

  nal::Principal alice_, bob_, eve_;
  CobufManager cobufs_;
};

TEST_F(CobufTest, OwnerCanExtract) {
  CobufId id = cobufs_.CreateOwned(alice_, ToBytes("my status"));
  EXPECT_EQ(ToString(*cobufs_.Extract(id, alice_)), "my status");
}

TEST_F(CobufTest, NonOwnerCannotExtract) {
  CobufId id = cobufs_.CreateOwned(alice_, ToBytes("secret"));
  Result<Bytes> leaked = cobufs_.Extract(id, eve_);
  EXPECT_FALSE(leaked.ok());
  EXPECT_EQ(leaked.status().code(), ErrorCode::kPermissionDenied);
}

TEST_F(CobufTest, FriendCanExtractViaDelegation) {
  CobufId id = cobufs_.CreateOwned(alice_, ToBytes("for friends"));
  EXPECT_TRUE(cobufs_.Extract(id, bob_).ok());
}

TEST_F(CobufTest, AppendFollowsSocialGraph) {
  CobufId alice_post = cobufs_.CreateOwned(alice_, ToBytes("hello"));
  CobufId bob_feed = cobufs_.CreateOwned(bob_, {});
  CobufId eve_feed = cobufs_.CreateOwned(eve_, {});
  EXPECT_TRUE(cobufs_.Append(bob_feed, alice_post).ok());
  EXPECT_FALSE(cobufs_.Append(eve_feed, alice_post).ok());
  EXPECT_EQ(*cobufs_.Length(bob_feed), 5u);
  EXPECT_EQ(*cobufs_.Length(eve_feed), 0u);
}

TEST_F(CobufTest, AppendIsDirectional) {
  // Alice -> Bob is authorized; Bob -> Alice is not.
  CobufId bob_post = cobufs_.CreateOwned(bob_, ToBytes("bob says"));
  CobufId alice_feed = cobufs_.CreateOwned(alice_, {});
  EXPECT_FALSE(cobufs_.Append(alice_feed, bob_post).ok());
}

TEST_F(CobufTest, SliceInheritsOwner) {
  CobufId id = cobufs_.CreateOwned(alice_, ToBytes("0123456789"));
  CobufId sliced = *cobufs_.Slice(id, 2, 4);
  EXPECT_EQ(*cobufs_.Owner(sliced), alice_);
  EXPECT_EQ(ToString(*cobufs_.Extract(sliced, alice_)), "2345");
  EXPECT_FALSE(cobufs_.Extract(sliced, eve_).ok());
  EXPECT_FALSE(cobufs_.Slice(id, 8, 5).ok());
}

TEST_F(CobufTest, ContentObliviousOpsNeedNoAuthority) {
  // Length / CreateLike / Slice never expose contents.
  CobufId id = cobufs_.CreateOwned(alice_, ToBytes("abc"));
  EXPECT_EQ(*cobufs_.Length(id), 3u);
  CobufId like = *cobufs_.CreateLike(id);
  EXPECT_EQ(*cobufs_.Owner(like), alice_);
  EXPECT_EQ(*cobufs_.Length(like), 0u);
}

TEST_F(CobufTest, SelfFlowAlwaysAllowed) {
  CobufId a = cobufs_.CreateOwned(eve_, ToBytes("mine"));
  CobufId b = cobufs_.CreateOwned(eve_, ToBytes(" too"));
  EXPECT_TRUE(cobufs_.Append(a, b).ok());
  EXPECT_EQ(ToString(*cobufs_.Extract(a, eve_)), "mine too");
}

TEST_F(CobufTest, DestroyAndMissingIds) {
  CobufId id = cobufs_.CreateOwned(alice_, ToBytes("x"));
  ASSERT_TRUE(cobufs_.Destroy(id).ok());
  EXPECT_FALSE(cobufs_.Destroy(id).ok());
  EXPECT_FALSE(cobufs_.Length(id).ok());
  EXPECT_FALSE(cobufs_.Extract(id, alice_).ok());
  EXPECT_FALSE(cobufs_.Append(id, id).ok());
}

// --------------------------------------------------- ReadRedactionMonitor

class RedactionTest : public ::testing::Test {
 protected:
  RedactionTest() : fs_(&kernel_) {
    client_ = *kernel_.CreateProcess("client", ToBytes("c"));
    fsd_ = *kernel_.CreateProcess("fs", ToBytes("fs"));
    port_ = *kernel_.CreatePort(fsd_);
    kernel_.BindHandler(port_, &fs_);
    kernel_.set_fs_port(port_);
  }

  int64_t Open(const std::string& path) {
    kernel::IpcMessage msg;
    msg.AddString(path);
    kernel::IpcReply reply = kernel_.Invoke(client_, kernel::Syscall::kOpen, msg);
    EXPECT_TRUE(reply.status.ok()) << reply.status.ToString();
    return reply.value();
  }

  kernel::IpcReply Read(int64_t fd) {
    kernel::IpcMessage msg;
    msg.AddU64(static_cast<uint64_t>(fd));
    return kernel_.Invoke(client_, kernel::Syscall::kRead, msg);
  }

  kernel::Kernel kernel_;
  kernel::FileServer fs_;
  kernel::ProcessId client_ = 0, fsd_ = 0;
  kernel::PortId port_ = 0;
};

TEST_F(RedactionTest, RewritesTypedReadRepliesWithZeroTextPayloads) {
  RedactionPolicy policy;
  policy.max_read_length = 8;
  policy.redact_begin = 2;
  policy.redact_end = 5;
  ReadRedactionMonitor monitor(policy);
  ASSERT_TRUE(kernel_.Interpose(fsd_, port_, &monitor).ok());

  fs_.CreateFile("/sealed", ToBytes("0123456789ABCDEF"));
  int64_t fd = Open("/sealed");
  uint64_t rewrites_before = monitor.rewrites();

  // Everything after open is ids and integers; pin the counter here.
  uint64_t text_before = kernel::IpcTextPayloadCount();
  kernel::IpcReply read = Read(fd);
  ASSERT_TRUE(read.status.ok()) << read.status.ToString();

  // Clamped to 8 bytes, range [2,5) masked — and the length slot was
  // rewritten IN PLACE to agree with the clamped data.
  EXPECT_EQ(ToString(read.data), "01###567");
  EXPECT_EQ(*read.ArgU64(0), 8u);
  EXPECT_EQ(monitor.rewrites(), rewrites_before + 1);

  // The acceptance assertion (§5.1): an interposed, REWRITTEN typed read
  // moved zero text payloads end to end — match, clamp, and redact are
  // all slot and byte operations.
  EXPECT_EQ(kernel::IpcTextPayloadCount(), text_before);
}

TEST_F(RedactionTest, ShortAndNonReadRepliesPassUntouched) {
  ReadRedactionMonitor monitor(RedactionPolicy{.max_read_length = 100});
  ASSERT_TRUE(kernel_.Interpose(fsd_, port_, &monitor).ok());

  fs_.CreateFile("/plain", ToBytes("short"));
  int64_t fd = Open("/plain");
  kernel::IpcReply read = Read(fd);
  ASSERT_TRUE(read.status.ok());
  EXPECT_EQ(ToString(read.data), "short");
  EXPECT_EQ(*read.ArgU64(0), 5u);

  // A write through the same interposed port is not a read reply.
  kernel::IpcMessage write_msg;
  write_msg.AddU64(static_cast<uint64_t>(fd)).AddU64(0);
  write_msg.data = ToBytes("SH");
  EXPECT_TRUE(kernel_.Invoke(client_, kernel::Syscall::kWrite, write_msg).status.ok());
  EXPECT_EQ(ToString(*fs_.ReadFile("/plain")), "SHort");
  EXPECT_EQ(monitor.rewrites(), 0u);
}

}  // namespace
}  // namespace nexus::services
