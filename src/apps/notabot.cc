#include "apps/notabot.h"

namespace nexus::apps {

void KeyboardDriver::OnKeypress(const std::string& session) { ++counts_[session]; }

uint64_t KeyboardDriver::Count(const std::string& session) const {
  auto it = counts_.find(session);
  return it == counts_.end() ? 0 : it->second;
}

Result<core::Certificate> KeyboardDriver::AttestSession(const std::string& session) {
  uint64_t count = Count(session);
  Result<core::LabelHandle> label = nexus_->engine().SayFormula(
      self_, nal::FormulaNode::Pred(
                 "keypresses",
                 {nal::Term::Symbol(session), nal::Term::Int(static_cast<int64_t>(count))}));
  if (!label.ok()) {
    return label.status();
  }
  return nexus_->ExternalizeLabel(self_, *label);
}

bool SpamClassifier::IsSpam(const Email& email) const {
  if (!email.presence_cert.empty()) {
    Result<core::Certificate> cert = core::Certificate::Deserialize(email.presence_cert);
    if (cert.ok()) {
      Result<nal::Formula> statement = core::VerifyCertificate(*cert, trusted_ek_);
      if (statement.ok() && (*statement)->child1()->kind() == nal::FormulaKind::kPred &&
          (*statement)->child1()->pred_name() == "keypresses" &&
          (*statement)->child1()->args().size() == 2) {
        int64_t count = (*statement)->child1()->args()[1].int_value();
        if (count >= 0 && static_cast<uint64_t>(count) >= min_keypresses_) {
          return false;  // Attested human presence.
        }
      }
    }
    // An invalid certificate is worse than none.
    return true;
  }
  // Crude content heuristic for unattested mail.
  return email.body.find("FREE") != std::string::npos ||
         email.body.find("click here") != std::string::npos || email.body.size() < 3;
}

}  // namespace nexus::apps
