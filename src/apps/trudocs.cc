#include "apps/trudocs.h"

#include <algorithm>
#include <cctype>

#include "crypto/sha256.h"

namespace nexus::apps {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

std::vector<Segment> ParseExcerpt(const std::string& excerpt) {
  std::vector<Segment> out;
  size_t i = 0;
  std::string fragment;
  auto flush_fragment = [&] {
    // Trim surrounding whitespace; empty fragments are dropped.
    size_t begin = fragment.find_first_not_of(' ');
    size_t end = fragment.find_last_not_of(' ');
    if (begin != std::string::npos) {
      out.push_back(Segment{SegmentKind::kFragment, fragment.substr(begin, end - begin + 1)});
    }
    fragment.clear();
  };
  while (i < excerpt.size()) {
    if (excerpt.compare(i, 3, "...") == 0) {
      flush_fragment();
      out.push_back(Segment{SegmentKind::kEllipsis, "..."});
      i += 3;
    } else if (excerpt[i] == '[') {
      flush_fragment();
      size_t close = excerpt.find(']', i);
      if (close == std::string::npos) {
        // Unterminated bracket: treat the rest as editorial.
        out.push_back(Segment{SegmentKind::kEditorial, excerpt.substr(i + 1)});
        break;
      }
      out.push_back(Segment{SegmentKind::kEditorial, excerpt.substr(i + 1, close - i - 1)});
      i = close + 1;
    } else {
      fragment.push_back(excerpt[i]);
      ++i;
    }
  }
  flush_fragment();
  return out;
}

Status TruDocs::CheckExcerpt(const std::string& document, const std::string& excerpt,
                             const ExcerptPolicy& policy) {
  std::vector<Segment> segments = ParseExcerpt(excerpt);
  std::string haystack = policy.allow_case_changes ? ToLower(document) : document;

  size_t cursor = 0;
  size_t fragments = 0;
  size_t total_length = 0;
  for (const Segment& segment : segments) {
    switch (segment.kind) {
      case SegmentKind::kEllipsis:
        break;  // An elision just permits skipping ahead.
      case SegmentKind::kEditorial:
        if (!policy.allow_editorial_comments) {
          return PermissionDenied("policy forbids editorial insertions: [" + segment.text +
                                  "]");
        }
        break;
      case SegmentKind::kFragment: {
        ++fragments;
        total_length += segment.text.size();
        std::string needle =
            policy.allow_case_changes ? ToLower(segment.text) : segment.text;
        size_t found = haystack.find(needle, cursor);
        if (found == std::string::npos) {
          // Distinguish out-of-order reuse from absence for a better error.
          if (haystack.find(needle) != std::string::npos) {
            return PermissionDenied("fragment appears out of order: \"" + segment.text +
                                    "\"");
          }
          return PermissionDenied("fragment not present in the source document: \"" +
                                  segment.text + "\"");
        }
        cursor = found + needle.size();
        break;
      }
    }
  }
  if (fragments == 0) {
    return InvalidArgument("excerpt quotes nothing from the document");
  }
  if (fragments > policy.max_fragments) {
    return PermissionDenied("excerpt exceeds the fragment count limit");
  }
  if (total_length > policy.max_total_length) {
    return PermissionDenied("excerpt exceeds the total length limit");
  }
  return OkStatus();
}

Result<core::LabelHandle> TruDocs::CertifyExcerpt(const std::string& document,
                                                  const std::string& excerpt,
                                                  const ExcerptPolicy& policy) {
  NEXUS_RETURN_IF_ERROR(CheckExcerpt(document, excerpt, policy));
  return nexus_->engine().SayFormula(
      self_,
      nal::FormulaNode::Pred("excerptSpeaksFor",
                             {nal::Term::String(crypto::Sha256Hex(ToBytes(excerpt))),
                              nal::Term::String(crypto::Sha256Hex(ToBytes(document)))}));
}

}  // namespace nexus::apps
