#include "util/rng.h"

namespace nexus {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

uint64_t Rng::NextU64() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

void Rng::Fill(Bytes& out, size_t n) {
  out.clear();
  out.reserve(n);
  while (out.size() < n) {
    uint64_t word = NextU64();
    for (int i = 0; i < 8 && out.size() < n; ++i) {
      out.push_back(static_cast<uint8_t>(word >> (8 * i)));
    }
  }
}

Bytes Rng::RandomBytes(size_t n) {
  Bytes out;
  Fill(out, n);
  return out;
}

}  // namespace nexus
