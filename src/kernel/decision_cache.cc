#include "kernel/decision_cache.h"

namespace nexus::kernel {

namespace {

// Tuple hash over interned keys (the whole point of interning is that this
// replaces byte-wise string hashing on every syscall). Mix64 lives in
// kernel/types.h so sharding and hashing agree on the mixer.
uint64_t HashTuple(const AuthzRequest& r) {
  uint64_t packed = (static_cast<uint64_t>(r.op) << 32) | r.obj;
  return Mix64(packed ^ Mix64(r.subject + 0x9e3779b97f4a7c15ULL));
}

}  // namespace

DecisionCache::DecisionCache() : DecisionCache(Config{}) {}

DecisionCache::DecisionCache(const Config& config) { Resize(config); }

void DecisionCache::Resize(const Config& config) {
  config_ = config;
  if (config_.num_shards == 0) {
    config_.num_shards = 1;
  }
  shards_.clear();
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->entries.assign(config_.num_subregions * config_.entries_per_subregion, Entry{});
    shard->generations.assign(config_.num_subregions, 1);
    // Fresh instruments per reconfiguration: instance stats() restart at
    // zero (the old Resize semantics), while the superseded counters stay
    // in the group so the registry's process-lifetime totals keep them.
    shard->hits = metrics_.NewCounter("hits");
    shard->misses = metrics_.NewCounter("misses");
    shard->insertions = metrics_.NewCounter("insertions");
    shard->invalidated_entries = metrics_.NewCounter("invalidated_entries");
    shard->subregion_invalidations = metrics_.NewCounter("subregion_invalidations");
    shards_.push_back(std::move(shard));
  }
}

void DecisionCache::Clear() {
  // Epoch invalidation: entries stamp the subregion generation they were
  // inserted under, so bumping every generation retires all of them in
  // O(subregions) — no entry walk. (In-flight verdicts snapshotted before
  // the clear drop for the same reason.)
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (uint64_t& gen : shard->generations) {
      ++gen;
    }
  }
}

size_t DecisionCache::ShardOf(ProcessId subject) const {
  return static_cast<size_t>(Mix64(subject) % config_.num_shards);
}

size_t DecisionCache::SubregionIndexOf(OpId op, ObjectId obj, size_t num_subregions) {
  // Subject deliberately excluded: all entries for one (operation, object)
  // land in the same subregion index of every shard, so setgoal
  // invalidation is one generation bump per shard.
  uint64_t packed = (static_cast<uint64_t>(op) << 32) | obj;
  return static_cast<size_t>(Mix64(packed) % num_subregions);
}

size_t DecisionCache::SubregionIndex(OpId op, ObjectId obj) const {
  return SubregionIndexOf(op, obj, config_.num_subregions);
}

std::vector<uint64_t> DecisionCache::SubregionGenerations(OpId op, ObjectId obj) const {
  size_t sub = SubregionIndex(op, obj);
  std::vector<uint64_t> gens;
  gens.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    gens.push_back(shard->generations[sub]);
  }
  return gens;
}

DecisionCache::Entry* DecisionCache::FindLocked(Shard& shard, const AuthzRequest& request) {
  size_t sub = SubregionIndex(request.op, request.obj);
  uint64_t generation = shard.generations[sub];
  uint64_t key = HashTuple(request);
  size_t base = sub * config_.entries_per_subregion;
  size_t start = static_cast<size_t>(key % config_.entries_per_subregion);
  // Linear probe within the subregion. An entry stamped with an older
  // generation was invalidated (or the slot was never filled: stamp 0);
  // either way it terminates the probe chain exactly as an empty slot did.
  for (size_t i = 0; i < config_.entries_per_subregion; ++i) {
    Entry& e = shard.entries[base + (start + i) % config_.entries_per_subregion];
    if (e.generation != generation) {
      return nullptr;
    }
    if (e.subject == request.subject && e.op == request.op && e.obj == request.obj) {
      return &e;
    }
  }
  return nullptr;
}

std::optional<bool> DecisionCache::Lookup(const AuthzRequest& request) {
  Shard& shard = *shards_[ShardOf(request.subject)];
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry* e = FindLocked(shard, request);
  if (e == nullptr) {
    shard.misses->Increment();
    return std::nullopt;
  }
  shard.hits->Increment();
  return e->allow;
}

void DecisionCache::InsertLocked(Shard& shard, const AuthzRequest& request, bool allow) {
  size_t sub = SubregionIndex(request.op, request.obj);
  uint64_t generation = shard.generations[sub];
  uint64_t key = HashTuple(request);
  size_t base = sub * config_.entries_per_subregion;
  size_t start = static_cast<size_t>(key % config_.entries_per_subregion);
  Entry* victim = nullptr;
  for (size_t i = 0; i < config_.entries_per_subregion; ++i) {
    Entry& e = shard.entries[base + (start + i) % config_.entries_per_subregion];
    if (e.generation != generation) {
      victim = &e;  // Empty or invalidated slot.
      break;
    }
    if (e.subject == request.subject && e.op == request.op && e.obj == request.obj) {
      victim = &e;  // Update in place.
      break;
    }
  }
  if (victim == nullptr) {
    // Subregion full: evict the natural slot (cache is soft state).
    victim = &shard.entries[base + start];
  }
  victim->generation = generation;
  victim->allow = allow;
  victim->subject = request.subject;
  victim->op = request.op;
  victim->obj = request.obj;
  shard.insertions->Increment();
}

void DecisionCache::Insert(const AuthzRequest& request, bool allow) {
  Shard& shard = *shards_[ShardOf(request.subject)];
  std::lock_guard<std::mutex> lock(shard.mu);
  InsertLocked(shard, request, allow);
}

uint64_t DecisionCache::Generation(const AuthzRequest& request) const {
  const Shard& shard = *shards_[ShardOf(request.subject)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.generations[SubregionIndex(request.op, request.obj)];
}

bool DecisionCache::InsertIfUnchanged(const AuthzRequest& request, bool allow,
                                      uint64_t generation) {
  Shard& shard = *shards_[ShardOf(request.subject)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.generations[SubregionIndex(request.op, request.obj)] != generation) {
    return false;  // An invalidation raced the verdict: drop, don't cache.
  }
  InsertLocked(shard, request, allow);
  return true;
}

void DecisionCache::InvalidateEntry(const AuthzRequest& request, uint64_t* post_gen) {
  // A tombstone-free open-addressed table cannot clear one slot without
  // breaking probe chains, so invalidate the whole subregion holding the
  // key's probe chain. Only the subject's shard can hold the entry.
  Shard& shard = *shards_[ShardOf(request.subject)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (FindLocked(shard, request) != nullptr) {
    shard.invalidated_entries->Increment();
  }
  // The generation bump retires the subregion's entries wholesale, and it
  // bumps whether or not an entry existed: an in-flight verdict for this
  // tuple predates the proof update and must not be cached.
  uint64_t bumped = ++shard.generations[SubregionIndex(request.op, request.obj)];
  if (post_gen != nullptr) {
    *post_gen = bumped;
  }
}

void DecisionCache::InvalidateSubregion(OpId op, ObjectId obj,
                                        std::vector<uint64_t>* post_gens) {
  // Broadcast: entries for one (operation, object) are spread across shards
  // by subject, but land in the same subregion index everywhere. One
  // generation bump per shard retires the whole subregion — cheaper than
  // the memset it replaces.
  size_t sub = SubregionIndex(op, obj);
  if (post_gens != nullptr) {
    post_gens->assign(shards_.size(), 0);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    uint64_t bumped = ++shard.generations[sub];
    shard.subregion_invalidations->Increment();
    if (post_gens != nullptr) {
      (*post_gens)[i] = bumped;
    }
  }
}

DecisionCache::Stats DecisionCache::stats() const {
  // Counter reads are atomic; no shard lock needed for a coherent snapshot
  // (each field is a sum of values the counters actually passed through).
  Stats total;
  for (const auto& shard : shards_) {
    total.hits += shard->hits->Value();
    total.misses += shard->misses->Value();
    total.insertions += shard->insertions->Value();
    total.invalidated_entries += shard->invalidated_entries->Value();
    total.subregion_invalidations += shard->subregion_invalidations->Value();
  }
  return total;
}

DecisionCache::Stats DecisionCache::shard_stats(size_t shard) const {
  if (shard >= shards_.size()) {
    return Stats{};
  }
  const Shard& s = *shards_[shard];
  Stats out;
  out.hits = s.hits->Value();
  out.misses = s.misses->Value();
  out.insertions = s.insertions->Value();
  out.invalidated_entries = s.invalidated_entries->Value();
  out.subregion_invalidations = s.subregion_invalidations->Value();
  return out;
}

}  // namespace nexus::kernel
