#include "nal/proof.h"

#include <cctype>

#include "nal/interner.h"
#include "nal/parser.h"

namespace nexus::nal {

std::string_view ProofRuleName(ProofRule rule) {
  switch (rule) {
    case ProofRule::kPremise:
      return "premise";
    case ProofRule::kAssumption:
      return "assumption";
    case ProofRule::kAuthority:
      return "authority";
    case ProofRule::kSubprincipal:
      return "subprincipal";
    case ProofRule::kAndIntro:
      return "and-intro";
    case ProofRule::kAndElimL:
      return "and-elim-l";
    case ProofRule::kAndElimR:
      return "and-elim-r";
    case ProofRule::kOrIntroL:
      return "or-intro-l";
    case ProofRule::kOrIntroR:
      return "or-intro-r";
    case ProofRule::kOrElim:
      return "or-elim";
    case ProofRule::kImpliesIntro:
      return "implies-intro";
    case ProofRule::kImpliesElim:
      return "implies-elim";
    case ProofRule::kDoubleNegIntro:
      return "double-neg-intro";
    case ProofRule::kSaysIntro:
      return "says-intro";
    case ProofRule::kSaysImpliesElim:
      return "says-implies-elim";
    case ProofRule::kSaysAndIntro:
      return "says-and-intro";
    case ProofRule::kSaysAndElimL:
      return "says-and-elim-l";
    case ProofRule::kSaysAndElimR:
      return "says-and-elim-r";
    case ProofRule::kSpeaksForElim:
      return "speaksfor-elim";
    case ProofRule::kSpeaksForTrans:
      return "speaksfor-trans";
    case ProofRule::kHandoff:
      return "handoff";
  }
  return "?";
}

int ProofNode::Size() const {
  int total = 1;
  for (const Proof& child : children_) {
    total += child->Size();
  }
  return total;
}

namespace {

void CollectAuthorityLeaves(const Proof& p, std::vector<Formula>* out) {
  if (p == nullptr) {
    return;
  }
  if (p->rule() == ProofRule::kAuthority && p->aux() != nullptr) {
    out->push_back(p->aux());
  }
  for (const Proof& child : p->children()) {
    CollectAuthorityLeaves(child, out);
  }
}

}  // namespace

uint64_t ProofHash(const Proof& p) {
  if (p == nullptr) {
    return 0;
  }
  uint64_t memo = p->hash_memo_.load(std::memory_order_relaxed);
  if (memo != 0) {
    return memo;
  }
  // HashMix/HashBytes are the interner's combiners (nal/interner.h) —
  // shared so formula and proof hashing can never drift apart.
  uint64_t h = static_cast<uint64_t>(p->rule()) + 0xA000;
  h = HashMix(h, StructuralHash(p->aux()));
  h = HashMix(h, HashBytes(p->principal().base(), 0x70726f6f));
  for (const std::string& tag : p->principal().path()) {
    h = HashMix(h, HashBytes(tag, 0x70617468));
  }
  for (const Proof& child : p->children()) {
    h = HashMix(h, ProofHash(child));
  }
  if (h == 0) {
    h = 1;  // Keep 0 as the "uncomputed" sentinel.
  }
  p->hash_memo_.store(h, std::memory_order_relaxed);
  return h;
}

bool ProofEquals(const Proof& a, const Proof& b) {
  if (a == b) {
    return true;  // Pointer identity (covers both-null).
  }
  if (a == nullptr || b == nullptr) {
    return false;
  }
  if (a->rule() != b->rule() || !Equals(a->aux(), b->aux()) ||
      !(a->principal() == b->principal()) ||
      a->children().size() != b->children().size()) {
    return false;
  }
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!ProofEquals(a->children()[i], b->children()[i])) {
      return false;
    }
  }
  return true;
}

std::vector<Formula> AuthorityLeaves(const Proof& p) {
  std::vector<Formula> leaves;
  CollectAuthorityLeaves(p, &leaves);
  return leaves;
}

Proof ProofNode::Make(ProofRule rule, std::vector<Proof> children, Formula aux,
                      Principal principal) {
  struct Access : ProofNode {};
  auto node = std::make_shared<Access>();
  node->rule_ = rule;
  node->children_ = std::move(children);
  node->aux_ = std::move(aux);
  node->principal_ = std::move(principal);
  return node;
}

namespace proof {

Proof Premise(Formula f) { return ProofNode::Make(ProofRule::kPremise, {}, std::move(f)); }

Proof Assumption(Formula f) { return ProofNode::Make(ProofRule::kAssumption, {}, std::move(f)); }

Proof Authority(Formula f) { return ProofNode::Make(ProofRule::kAuthority, {}, std::move(f)); }

Proof Subprincipal(Principal parent, Principal sub) {
  return ProofNode::Make(ProofRule::kSubprincipal, {},
                         FormulaNode::SpeaksFor(std::move(parent), std::move(sub)));
}

Proof AndIntro(Proof l, Proof r) {
  return ProofNode::Make(ProofRule::kAndIntro, {std::move(l), std::move(r)});
}

Proof AndElimL(Proof p) { return ProofNode::Make(ProofRule::kAndElimL, {std::move(p)}); }

Proof AndElimR(Proof p) { return ProofNode::Make(ProofRule::kAndElimR, {std::move(p)}); }

Proof OrIntroL(Proof proves_left, Formula right) {
  return ProofNode::Make(ProofRule::kOrIntroL, {std::move(proves_left)}, std::move(right));
}

Proof OrIntroR(Formula left, Proof proves_right) {
  return ProofNode::Make(ProofRule::kOrIntroR, {std::move(proves_right)}, std::move(left));
}

Proof OrElim(Proof disjunction, Proof left_implies, Proof right_implies) {
  return ProofNode::Make(ProofRule::kOrElim,
                         {std::move(disjunction), std::move(left_implies),
                          std::move(right_implies)});
}

Proof ImpliesIntro(Formula assumption, Proof body) {
  return ProofNode::Make(ProofRule::kImpliesIntro, {std::move(body)}, std::move(assumption));
}

Proof ImpliesElim(Proof implication, Proof antecedent) {
  return ProofNode::Make(ProofRule::kImpliesElim, {std::move(implication), std::move(antecedent)});
}

Proof DoubleNegIntro(Proof p) {
  return ProofNode::Make(ProofRule::kDoubleNegIntro, {std::move(p)});
}

Proof SaysIntro(Principal speaker, Proof p) {
  return ProofNode::Make(ProofRule::kSaysIntro, {std::move(p)}, nullptr, std::move(speaker));
}

Proof SaysImpliesElim(Proof says_implication, Proof says_antecedent) {
  return ProofNode::Make(ProofRule::kSaysImpliesElim,
                         {std::move(says_implication), std::move(says_antecedent)});
}

Proof SaysAndIntro(Proof says_left, Proof says_right) {
  return ProofNode::Make(ProofRule::kSaysAndIntro, {std::move(says_left), std::move(says_right)});
}

Proof SaysAndElimL(Proof says_conjunction) {
  return ProofNode::Make(ProofRule::kSaysAndElimL, {std::move(says_conjunction)});
}

Proof SaysAndElimR(Proof says_conjunction) {
  return ProofNode::Make(ProofRule::kSaysAndElimR, {std::move(says_conjunction)});
}

Proof SpeaksForElim(Proof speaksfor, Proof says) {
  return ProofNode::Make(ProofRule::kSpeaksForElim, {std::move(speaksfor), std::move(says)});
}

Proof SpeaksForTrans(Proof a_for_b, Proof b_for_c) {
  return ProofNode::Make(ProofRule::kSpeaksForTrans, {std::move(a_for_b), std::move(b_for_c)});
}

Proof Handoff(Proof says_speaksfor) {
  return ProofNode::Make(ProofRule::kHandoff, {std::move(says_speaksfor)});
}

}  // namespace proof

namespace {

void EscapeInto(std::string& out, const std::string& text) {
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
}

void SerializeInto(std::string& out, const Proof& p) {
  out.push_back('(');
  out += ProofRuleName(p->rule());
  if (p->rule() == ProofRule::kSaysIntro) {
    out += " [";
    out += p->principal().ToString();
    out += "]";
  }
  if (p->aux() != nullptr) {
    out += " \"";
    EscapeInto(out, p->aux()->ToString());
    out += "\"";
  }
  for (const Proof& child : p->children()) {
    out.push_back(' ');
    SerializeInto(out, child);
  }
  out.push_back(')');
}

class ProofParser {
 public:
  explicit ProofParser(std::string_view text) : text_(text) {}

  Result<Proof> Parse() {
    Result<Proof> p = ParseNode();
    if (!p.ok()) {
      return p;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing input");
    }
    return p;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Error(const std::string& what) const {
    return InvalidArgument("proof parse error: " + what + " at position " + std::to_string(pos_));
  }

  Result<Proof> ParseNode() {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '(') {
      return Error("expected '('");
    }
    ++pos_;
    SkipSpace();

    std::string rule_name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-')) {
      rule_name.push_back(text_[pos_]);
      ++pos_;
    }

    ProofRule rule;
    bool found = false;
    for (int r = 0; r <= static_cast<int>(ProofRule::kHandoff); ++r) {
      if (ProofRuleName(static_cast<ProofRule>(r)) == rule_name) {
        rule = static_cast<ProofRule>(r);
        found = true;
        break;
      }
    }
    if (!found) {
      return Error("unknown rule '" + rule_name + "'");
    }

    Principal speaker;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '[') {
      ++pos_;
      std::string name;
      while (pos_ < text_.size() && text_[pos_] != ']') {
        name.push_back(text_[pos_]);
        ++pos_;
      }
      if (pos_ == text_.size()) {
        return Error("unterminated principal");
      }
      ++pos_;
      Result<Principal> parsed = ParsePrincipal(name);
      if (!parsed.ok()) {
        return parsed.status();
      }
      speaker = *parsed;
    }

    Formula aux;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '"') {
      ++pos_;
      std::string formula_text;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
          ++pos_;
        }
        formula_text.push_back(text_[pos_]);
        ++pos_;
      }
      if (pos_ == text_.size()) {
        return Error("unterminated formula string");
      }
      ++pos_;
      Result<Formula> parsed = ParseFormula(formula_text);
      if (!parsed.ok()) {
        return parsed.status();
      }
      aux = *parsed;
    }

    std::vector<Proof> children;
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Error("unterminated proof node");
      }
      if (text_[pos_] == ')') {
        ++pos_;
        break;
      }
      Result<Proof> child = ParseNode();
      if (!child.ok()) {
        return child;
      }
      children.push_back(*child);
    }

    return ProofNode::Make(rule, std::move(children), std::move(aux), std::move(speaker));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeProof(const Proof& p) {
  std::string out;
  SerializeInto(out, p);
  return out;
}

Result<Proof> DeserializeProof(std::string_view text) {
  ProofParser parser(text);
  return parser.Parse();
}

}  // namespace nexus::nal
