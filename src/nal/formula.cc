#include "nal/formula.h"

namespace nexus::nal {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

namespace {

std::shared_ptr<FormulaNode> NewNode() { return std::make_shared<FormulaNode>(); }

}  // namespace

Formula FormulaNode::True() {
  auto n = NewNode();
  n->kind_ = FormulaKind::kTrue;
  return n;
}

Formula FormulaNode::False() {
  auto n = NewNode();
  n->kind_ = FormulaKind::kFalse;
  return n;
}

Formula FormulaNode::Pred(std::string name, std::vector<Term> args) {
  auto n = NewNode();
  n->kind_ = FormulaKind::kPred;
  n->pred_name_ = std::move(name);
  n->args_ = std::move(args);
  return n;
}

Formula FormulaNode::Compare(CompareOp op, Term lhs, Term rhs) {
  auto n = NewNode();
  n->kind_ = FormulaKind::kCompare;
  n->compare_op_ = op;
  n->lhs_ = std::move(lhs);
  n->rhs_ = std::move(rhs);
  return n;
}

Formula FormulaNode::Says(Principal speaker, Formula body) {
  auto n = NewNode();
  n->kind_ = FormulaKind::kSays;
  n->p1_ = std::move(speaker);
  n->child1_ = std::move(body);
  return n;
}

Formula FormulaNode::SpeaksFor(Principal a, Principal b, std::optional<std::string> scope) {
  auto n = NewNode();
  n->kind_ = FormulaKind::kSpeaksFor;
  n->p1_ = std::move(a);
  n->p2_ = std::move(b);
  n->on_scope_ = std::move(scope);
  return n;
}

Formula FormulaNode::And(Formula l, Formula r) {
  auto n = NewNode();
  n->kind_ = FormulaKind::kAnd;
  n->child1_ = std::move(l);
  n->child2_ = std::move(r);
  return n;
}

Formula FormulaNode::Or(Formula l, Formula r) {
  auto n = NewNode();
  n->kind_ = FormulaKind::kOr;
  n->child1_ = std::move(l);
  n->child2_ = std::move(r);
  return n;
}

Formula FormulaNode::Not(Formula f) {
  auto n = NewNode();
  n->kind_ = FormulaKind::kNot;
  n->child1_ = std::move(f);
  return n;
}

Formula FormulaNode::Implies(Formula l, Formula r) {
  auto n = NewNode();
  n->kind_ = FormulaKind::kImplies;
  n->child1_ = std::move(l);
  n->child2_ = std::move(r);
  return n;
}

std::string FormulaNode::ToString() const {
  switch (kind_) {
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kFalse:
      return "false";
    case FormulaKind::kPred: {
      std::string out = pred_name_ + "(";
      for (size_t i = 0; i < args_.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += args_[i].ToString();
      }
      out += ")";
      return out;
    }
    case FormulaKind::kCompare:
      return lhs_.ToString() + " " + std::string(CompareOpName(compare_op_)) + " " +
             rhs_.ToString();
    case FormulaKind::kSays:
      return p1_.ToString() + " says (" + child1_->ToString() + ")";
    case FormulaKind::kSpeaksFor: {
      std::string out = p1_.ToString() + " speaksfor " + p2_.ToString();
      if (on_scope_.has_value()) {
        out += " on " + *on_scope_;
      }
      return out;
    }
    case FormulaKind::kAnd:
      return "(" + child1_->ToString() + " and " + child2_->ToString() + ")";
    case FormulaKind::kOr:
      return "(" + child1_->ToString() + " or " + child2_->ToString() + ")";
    case FormulaKind::kNot:
      return "not (" + child1_->ToString() + ")";
    case FormulaKind::kImplies:
      return "(" + child1_->ToString() + " => " + child2_->ToString() + ")";
  }
  return "?";
}

bool Equals(const Formula& a, const Formula& b) {
  if (a == b) {
    return true;
  }
  if (a == nullptr || b == nullptr || a->kind() != b->kind()) {
    return false;
  }
  switch (a->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return true;
    case FormulaKind::kPred:
      return a->pred_name() == b->pred_name() && a->args() == b->args();
    case FormulaKind::kCompare:
      return a->compare_op() == b->compare_op() && a->lhs() == b->lhs() && a->rhs() == b->rhs();
    case FormulaKind::kSays:
      return a->speaker() == b->speaker() && Equals(a->child1(), b->child1());
    case FormulaKind::kSpeaksFor:
      return a->delegator() == b->delegator() && a->delegatee() == b->delegatee() &&
             a->on_scope() == b->on_scope();
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
      return Equals(a->child1(), b->child1()) && Equals(a->child2(), b->child2());
    case FormulaKind::kNot:
      return Equals(a->child1(), b->child1());
  }
  return false;
}

bool IsGround(const Formula& f) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return true;
    case FormulaKind::kPred:
      for (const Term& t : f->args()) {
        if (!t.IsGround()) {
          return false;
        }
      }
      return true;
    case FormulaKind::kCompare:
      return f->lhs().IsGround() && f->rhs().IsGround();
    case FormulaKind::kSays:
      return !f->speaker().IsVariable() && IsGround(f->child1());
    case FormulaKind::kSpeaksFor:
      return !f->delegator().IsVariable() && !f->delegatee().IsVariable();
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
      return IsGround(f->child1()) && IsGround(f->child2());
    case FormulaKind::kNot:
      return IsGround(f->child1());
  }
  return true;
}

namespace {

bool BindVariable(const std::string& name, const Term& value, Bindings& bindings) {
  auto [it, inserted] = bindings.emplace(name, value);
  if (inserted) {
    return true;
  }
  return it->second == value;
}

bool MatchTerm(const Term& pattern, const Term& concrete, Bindings& bindings) {
  if (pattern.kind() == TermKind::kVariable) {
    return BindVariable(pattern.text(), concrete, bindings);
  }
  return pattern == concrete;
}

bool MatchPrincipal(const Principal& pattern, const Principal& concrete, Bindings& bindings) {
  if (pattern.IsVariable()) {
    return BindVariable(pattern.base().substr(1), Term::Prin(concrete), bindings);
  }
  return pattern == concrete;
}

}  // namespace

bool Match(const Formula& pattern, const Formula& concrete, Bindings& bindings) {
  if (pattern->kind() != concrete->kind()) {
    return false;
  }
  switch (pattern->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return true;
    case FormulaKind::kPred: {
      if (pattern->pred_name() != concrete->pred_name() ||
          pattern->args().size() != concrete->args().size()) {
        return false;
      }
      for (size_t i = 0; i < pattern->args().size(); ++i) {
        if (!MatchTerm(pattern->args()[i], concrete->args()[i], bindings)) {
          return false;
        }
      }
      return true;
    }
    case FormulaKind::kCompare:
      return pattern->compare_op() == concrete->compare_op() &&
             MatchTerm(pattern->lhs(), concrete->lhs(), bindings) &&
             MatchTerm(pattern->rhs(), concrete->rhs(), bindings);
    case FormulaKind::kSays:
      return MatchPrincipal(pattern->speaker(), concrete->speaker(), bindings) &&
             Match(pattern->child1(), concrete->child1(), bindings);
    case FormulaKind::kSpeaksFor:
      return pattern->on_scope() == concrete->on_scope() &&
             MatchPrincipal(pattern->delegator(), concrete->delegator(), bindings) &&
             MatchPrincipal(pattern->delegatee(), concrete->delegatee(), bindings);
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
      return Match(pattern->child1(), concrete->child1(), bindings) &&
             Match(pattern->child2(), concrete->child2(), bindings);
    case FormulaKind::kNot:
      return Match(pattern->child1(), concrete->child1(), bindings);
  }
  return false;
}

namespace {

Term SubstituteTerm(const Term& t, const Bindings& bindings) {
  if (t.kind() != TermKind::kVariable) {
    return t;
  }
  auto it = bindings.find(t.text());
  if (it == bindings.end()) {
    return t;
  }
  return it->second;
}

Principal SubstitutePrincipal(const Principal& p, const Bindings& bindings) {
  if (!p.IsVariable()) {
    return p;
  }
  auto it = bindings.find(p.base().substr(1));
  if (it == bindings.end()) {
    return p;
  }
  const Term& value = it->second;
  if (value.kind() == TermKind::kPrincipal) {
    return value.principal();
  }
  if (value.kind() == TermKind::kSymbol) {
    return Principal(value.text());
  }
  return p;
}

}  // namespace

Formula Substitute(const Formula& f, const Bindings& bindings) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kPred: {
      std::vector<Term> args;
      args.reserve(f->args().size());
      for (const Term& t : f->args()) {
        args.push_back(SubstituteTerm(t, bindings));
      }
      return FormulaNode::Pred(f->pred_name(), std::move(args));
    }
    case FormulaKind::kCompare:
      return FormulaNode::Compare(f->compare_op(), SubstituteTerm(f->lhs(), bindings),
                                  SubstituteTerm(f->rhs(), bindings));
    case FormulaKind::kSays:
      return FormulaNode::Says(SubstitutePrincipal(f->speaker(), bindings),
                               Substitute(f->child1(), bindings));
    case FormulaKind::kSpeaksFor:
      return FormulaNode::SpeaksFor(SubstitutePrincipal(f->delegator(), bindings),
                                    SubstitutePrincipal(f->delegatee(), bindings), f->on_scope());
    case FormulaKind::kAnd:
      return FormulaNode::And(Substitute(f->child1(), bindings),
                              Substitute(f->child2(), bindings));
    case FormulaKind::kOr:
      return FormulaNode::Or(Substitute(f->child1(), bindings),
                             Substitute(f->child2(), bindings));
    case FormulaKind::kImplies:
      return FormulaNode::Implies(Substitute(f->child1(), bindings),
                                  Substitute(f->child2(), bindings));
    case FormulaKind::kNot:
      return FormulaNode::Not(Substitute(f->child1(), bindings));
  }
  return f;
}

bool ScopeMatches(const Formula& f, const std::string& scope) {
  switch (f->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return true;
    case FormulaKind::kPred:
      return f->pred_name() == scope;
    case FormulaKind::kCompare: {
      auto mentions = [&scope](const Term& t) {
        return t.kind() == TermKind::kSymbol && t.text() == scope;
      };
      return mentions(f->lhs()) || mentions(f->rhs());
    }
    case FormulaKind::kSays:
      return ScopeMatches(f->child1(), scope);
    case FormulaKind::kSpeaksFor:
      return f->on_scope().has_value() && *f->on_scope() == scope;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
      return ScopeMatches(f->child1(), scope) && ScopeMatches(f->child2(), scope);
    case FormulaKind::kNot:
      return ScopeMatches(f->child1(), scope);
  }
  return false;
}

std::vector<Formula> Conjuncts(const Formula& f) {
  std::vector<Formula> out;
  std::vector<Formula> stack = {f};
  while (!stack.empty()) {
    Formula cur = stack.back();
    stack.pop_back();
    if (cur->kind() == FormulaKind::kAnd) {
      stack.push_back(cur->child2());
      stack.push_back(cur->child1());
    } else {
      out.push_back(cur);
    }
  }
  // Preserve left-to-right order: the stack discipline above pushes child2
  // first, so conjuncts come out left-to-right already.
  return out;
}

}  // namespace nexus::nal
