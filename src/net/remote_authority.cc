#include "net/remote_authority.h"

#include "kernel/ipc.h"
#include "kernel/trace.h"
#include "nal/parser.h"
#include "util/bytes.h"

namespace nexus::net {

namespace {

// One kRemoteVouch provenance event per attested round trip (aux =
// statement count). The trace id is the calling thread's scope: remote
// consultations run synchronously inside the traced authorization.
void EmitRemoteVouch(uint64_t statements, bool ok) {
  kernel::FlightRecorder& recorder = kernel::FlightRecorder::Global();
  if (!recorder.enabled()) {
    return;
  }
  uint64_t id = kernel::CurrentTraceId();
  if (id == 0) {
    return;
  }
  kernel::TraceEvent e;
  e.trace_id = id;
  e.aux = statements;
  e.flags = static_cast<uint16_t>(kernel::kTraceFlagRemote |
                                  (ok ? 0 : kernel::kTraceFlagDenied));
  e.stage = kernel::TraceStage::kRemoteVouch;
  recorder.Emit(e);
}

}  // namespace

Result<Bytes> AuthorityBatchEndpoint::Handle(AttestedChannel& channel, ByteView request) {
  (void)channel;
  return parent_->HandleBatch(request);
}

AuthorityService::AuthorityService(NetNode* node)
    : node_(node), batch_endpoint_(std::make_unique<AuthorityBatchEndpoint>(this)) {
  node_->RegisterService(std::string(kServiceName), this);
  node_->RegisterService(std::string(kBatchServiceName), batch_endpoint_.get());
}

bool AuthorityService::Evaluate(const nal::Formula& statement) {
  ++queries_served_;
  for (core::Authority* authority : authorities_) {
    if (authority->Handles(statement)) {
      return authority->Vouches(statement);
    }
  }
  return false;  // No local authority evaluates it: deny.
}

Result<Bytes> AuthorityService::Handle(AttestedChannel& channel, ByteView request) {
  (void)channel;
  Bytes reply(1, 0);  // Default: deny.
  // The statement is untrusted remote text; it shares the IPC ABI's
  // per-payload wire bound, so a hostile peer cannot feed the NAL parser
  // an arbitrarily large formula.
  if (request.size() > kernel::kMaxArgPayload) {
    ++queries_served_;
    return reply;
  }
  Result<nal::Formula> statement = nal::ParseFormula(ToString(request));
  if (!statement.ok()) {
    ++queries_served_;
    return reply;
  }
  reply[0] = Evaluate(*statement) ? 1 : 0;
  return reply;
}

Result<Bytes> AuthorityService::HandleBatch(ByteView request) {
  // Wire format: u32 count, then `count` length-prefixed statement texts.
  // Reply: a marshaled typed IpcReply — slot 0 the verdict count (u64),
  // slot 1 the verdict bytes — so the client consumes the batch through
  // the strict reply codec instead of trusting raw bytes. A malformed
  // request returns an empty buffer, which the client's UnmarshalReply
  // rejects: deny-all, fail closed.
  ++batches_served_;
  ByteReader reader(request);
  Result<uint32_t> count = reader.ReadU32();
  if (!count.ok()) {
    return Bytes{};
  }
  // Every statement costs at least its 4-byte length prefix, so a count
  // the payload cannot possibly carry is malformed — reject before sizing
  // the reply from an attacker-declared number.
  if (*count > reader.remaining() / sizeof(uint32_t)) {
    return Bytes{};
  }
  Bytes verdicts(*count, 0);
  for (uint32_t i = 0; i < *count; ++i) {
    Result<Bytes> text = reader.ReadLengthPrefixed();
    if (!text.ok()) {
      break;  // Remaining statements stay denied.
    }
    // Same per-statement bound as the single-query surface: an oversized
    // statement is a deny, and the rest of the batch still answers.
    if (text->size() > kernel::kMaxArgPayload) {
      ++queries_served_;
      continue;
    }
    Result<nal::Formula> statement = nal::ParseFormula(ToString(*text));
    if (!statement.ok()) {
      ++queries_served_;
      continue;
    }
    verdicts[i] = Evaluate(*statement) ? 1 : 0;
  }
  // One kBytes slot carries ALL verdicts: batches routinely exceed the 8
  // typed slots, and verdict-per-slot would also waste 9 bytes a verdict.
  kernel::IpcReply typed = kernel::IpcReply::Ok();
  typed.AddU64(*count).AddBytes(verdicts);
  return kernel::MarshalReply(typed);
}

RemoteAuthority::RemoteAuthority(NetNode* node, NodeId peer, HandlesPredicate handles,
                                 uint64_t default_timeout_us)
    : node_(node),
      peer_(std::move(peer)),
      handles_(std::move(handles)),
      default_timeout_us_(default_timeout_us) {}

bool RemoteAuthority::Handles(const nal::Formula& statement) const {
  return handles_ == nullptr || handles_(statement);
}

bool RemoteAuthority::Vouches(const nal::Formula& statement) {
  return VouchesWithin(statement, default_timeout_us_);
}

bool RemoteAuthority::VouchesWithin(const nal::Formula& statement, uint64_t timeout_us) {
  stats_.queries->Increment();
  Result<AttestedChannel*> channel = node_->Connect(peer_);
  if (!channel.ok()) {
    stats_.denied_unreachable->Increment();
    EmitRemoteVouch(1, false);
    return false;  // Unreachable or untrusted peer: fail closed.
  }
  Result<Bytes> answer = (*channel)->Call(std::string(AuthorityService::kServiceName),
                                          ToBytes(statement->ToString()), timeout_us);
  if (!answer.ok()) {
    stats_.denied_unreachable->Increment();
    EmitRemoteVouch(1, false);
    return false;  // Lost or late: the deadline IS the answer (deny).
  }
  bool vouched = !answer->empty() && (*answer)[0] == 1;
  (vouched ? stats_.vouched : stats_.denied)->Increment();
  EmitRemoteVouch(1, true);
  return vouched;
}

namespace {

// A future whose Wait() runs a deferred collection step (or, for failures
// detected at issue time, just returns the fail-closed answers).
class FunctionVouchFuture : public core::VouchFuture {
 public:
  explicit FunctionVouchFuture(std::function<std::vector<bool>()> collect)
      : collect_(std::move(collect)) {}
  std::vector<bool> Wait() override { return collect_(); }

 private:
  std::function<std::vector<bool>()> collect_;
};

}  // namespace

std::unique_ptr<core::VouchFuture> RemoteAuthority::VouchBatchAsync(
    std::span<const nal::Formula> statements, uint64_t timeout_us) {
  size_t count = statements.size();
  auto fail_closed = [count] {
    return std::make_unique<FunctionVouchFuture>(
        [count] { return std::vector<bool>(count, false); });
  };
  if (count == 0) {
    return fail_closed();
  }
  stats_.queries->Increment(count);
  stats_.batch_round_trips->Increment();
  // Connect() may pump the fabric for the handshake (once per peer); the
  // request itself goes out below WITHOUT pumping, so round trips to
  // several peers can be in flight simultaneously.
  Result<AttestedChannel*> channel = node_->Connect(peer_);
  if (!channel.ok()) {
    stats_.denied_unreachable->Increment(count);
    EmitRemoteVouch(count, false);
    return fail_closed();  // Unreachable or untrusted peer: fail closed.
  }
  Bytes payload;
  AppendU32(payload, static_cast<uint32_t>(count));
  for (const nal::Formula& statement : statements) {
    AppendLengthPrefixed(payload, ToBytes(statement->ToString()));
  }
  Result<uint64_t> request = (*channel)->CallStart(
      std::string(AuthorityService::kBatchServiceName), payload, timeout_us);
  if (!request.ok()) {
    stats_.denied_unreachable->Increment(count);
    EmitRemoteVouch(count, false);
    return fail_closed();
  }
  AttestedChannel* ch = *channel;
  uint64_t request_id = *request;
  return std::make_unique<FunctionVouchFuture>([this, ch, request_id, count] {
    std::vector<bool> answers(count, false);
    Result<Bytes> reply = ch->CallFinish(request_id);
    if (!reply.ok()) {
      stats_.denied_unreachable->Increment(count);
      EmitRemoteVouch(count, false);
      return answers;  // One deadline governs the whole round trip.
    }
    // The batch verdict vector arrives as a typed reply (count slot +
    // verdict bytes) through the strict codec. Anything that does not
    // unmarshal whole — truncated, trailing bytes, forged ids, a count
    // that contradicts ours — denies the entire batch: fail closed.
    Result<kernel::IpcReply> typed = kernel::UnmarshalReply(*reply);
    if (!typed.ok() || !typed->status.ok()) {
      stats_.denied->Increment(count);
      EmitRemoteVouch(count, false);
      return answers;
    }
    Result<uint64_t> declared = typed->ArgU64(0);
    Result<ByteView> verdicts = typed->ArgBytes(1);
    if (!declared.ok() || !verdicts.ok() || *declared != count ||
        verdicts->size() != count) {
      stats_.denied->Increment(count);
      EmitRemoteVouch(count, false);
      return answers;
    }
    for (size_t i = 0; i < count; ++i) {
      answers[i] = (*verdicts)[i] == 1;
      (answers[i] ? stats_.vouched : stats_.denied)->Increment();
    }
    EmitRemoteVouch(count, true);
    return answers;
  });
}

std::vector<bool> RemoteAuthority::VouchBatch(std::span<const nal::Formula> statements,
                                              uint64_t timeout_us) {
  // The blocking path is just issue-then-wait; stats and deadline behavior
  // are shared with the pipelined path by construction.
  return VouchBatchAsync(statements, timeout_us)->Wait();
}

}  // namespace nexus::net
