// Shared identifier types for the Nexus kernel simulation.
//
// The authorization hot path is identity-based (§2.8): operations and
// objects are interned once into dense 32-bit ids, and every cache —
// the kernel decision cache, the goalstore, the engine's proof registry —
// keys on integer tuples instead of re-hashing strings per syscall. The
// string-taking entry points survive as thin shims that intern-and-forward.
#ifndef NEXUS_KERNEL_TYPES_H_
#define NEXUS_KERNEL_TYPES_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace nexus::kernel {

using ProcessId = uint64_t;
using PortId = uint64_t;

inline constexpr ProcessId kKernelProcessId = 0;

// Interned identities for operation and object names. Id 0 is always the
// empty string, so value-initialized requests are well-formed.
using OpId = uint32_t;
using ObjectId = uint32_t;

// Integer mixing (splitmix64 finalizer): the shared hash for interned-key
// structures — the decision cache's tuple hash, its subject-sharding, and
// name-table striping all use it so one id never hashes two ways.
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Transparent string hash/equality: heterogeneous string_view lookups on
// std::unordered_map<std::string, ...> allocate no key string. Shared by
// the intern tables and every path-memo map (fileserver, proc memo).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const { return std::hash<std::string_view>{}(s); }
};
struct TransparentStringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const { return a == b; }
};

// An append-only string intern table: name -> id, id -> name.
//
// Safe for concurrent use: the table is split into stripes selected by the
// name's hash, each guarded by its own reader-writer lock, so worker
// threads interning or resolving distinct names proceed without a global
// bottleneck. Ids encode (stripe, per-stripe index) — they are stable,
// unique, and fit the 32-bit OpId/ObjectId packing, but are NOT dense.
// Returned string_views stay valid forever: stripes only append, and the
// backing deque never moves a stored string.
class NameTable {
 public:
  NameTable() = default;

  // Id 0 = "" always; non-empty names intern into their hash stripe.
  // `created`, when non-null, reports whether this call grew the table —
  // the hook quota accounting needs to charge only genuinely novel names
  // (ROADMAP "Name-table quotas"; see Kernel::InternObjectCharged).
  uint32_t Intern(std::string_view name, bool* created = nullptr) {
    if (created != nullptr) {
      *created = false;
    }
    if (name.empty()) {
      return 0;
    }
    Stripe& stripe = stripes_[StripeOf(name)];
    {
      std::shared_lock<std::shared_mutex> lock(stripe.mu);
      auto it = stripe.index.find(name);
      if (it != stripe.index.end()) {
        return it->second;
      }
    }
    std::unique_lock<std::shared_mutex> lock(stripe.mu);
    auto it = stripe.index.find(name);
    if (it != stripe.index.end()) {
      return it->second;  // Raced with another interner; theirs wins.
    }
    stripe.names.emplace_back(name);
    uint32_t id = EncodeId(StripeOf(name), static_cast<uint32_t>(stripe.names.size() - 1));
    stripe.index.emplace(stripe.names.back(), id);
    // Publish existence AFTER the entry is fully constructed: Contains()
    // readers pair with this release and never observe a half-built slot.
    stripe.count.store(static_cast<uint32_t>(stripe.names.size()), std::memory_order_release);
    if (created != nullptr) {
      *created = true;
    }
    return id;
  }

  // LOCK-FREE existence check: was `id` ever handed out by this table?
  // (id 0, the reserved empty name, always exists.) This is the hot-path
  // forged-id validation — one atomic load, no stripe lock, because it
  // needs only existence, not the name.
  bool Contains(uint32_t id) const {
    if (id == 0) {
      return true;
    }
    const Stripe& stripe = stripes_[id & kStripeMask];
    uint32_t local = (id >> kStripeBits) - 1;
    return local < stripe.count.load(std::memory_order_acquire);
  }

  // Lookup without insertion: the id if `name` was ever interned, nullopt
  // otherwise. Pure read paths (goal/registry queries) use this so probing
  // with endless novel names cannot grow the append-only table. Paths
  // that must reach the pluggable engine regardless of the name (the
  // Authorize string shim) still intern — see ROADMAP "Name-table
  // quotas" for the planned bound.
  std::optional<uint32_t> Find(std::string_view name) const {
    if (name.empty()) {
      return 0;
    }
    const Stripe& stripe = stripes_[StripeOf(name)];
    std::shared_lock<std::shared_mutex> lock(stripe.mu);
    auto it = stripe.index.find(name);
    if (it == stripe.index.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  std::string_view Name(uint32_t id) const {
    if (id == 0) {
      return std::string_view();
    }
    const Stripe& stripe = stripes_[id & kStripeMask];
    uint32_t local = (id >> kStripeBits) - 1;
    std::shared_lock<std::shared_mutex> lock(stripe.mu);
    return local < stripe.names.size() ? std::string_view(stripe.names[local])
                                       : std::string_view();
  }

  // Number of interned names, counting the reserved empty name (id 0).
  size_t size() const {
    size_t total = 1;
    for (const Stripe& stripe : stripes_) {
      std::shared_lock<std::shared_mutex> lock(stripe.mu);
      total += stripe.names.size();
    }
    return total;
  }

 private:
  struct Stripe {
    mutable std::shared_mutex mu;
    // deque keeps the strings' addresses stable for the string_view keys.
    std::deque<std::string> names;
    std::unordered_map<std::string_view, uint32_t, TransparentStringHash, TransparentStringEq>
        index;
    // Published entry count for the lock-free Contains() probe.
    std::atomic<uint32_t> count{0};
  };

  static constexpr uint32_t kStripeBits = 3;
  static constexpr uint32_t kNumStripes = 1u << kStripeBits;
  static constexpr uint32_t kStripeMask = kNumStripes - 1;

  static uint32_t StripeOf(std::string_view name) {
    return static_cast<uint32_t>(Mix64(std::hash<std::string_view>{}(name)) & kStripeMask);
  }
  static uint32_t EncodeId(uint32_t stripe, uint32_t local) {
    return ((local + 1) << kStripeBits) | stripe;
  }

  Stripe stripes_[kNumStripes];
};

// Process-wide intern tables shared by the kernel, engine, and guards (ids
// are comparable across all of them).
NameTable& OpTable();
NameTable& ObjectTable();

inline OpId InternOp(std::string_view operation) { return OpTable().Intern(operation); }
inline ObjectId InternObject(std::string_view object) { return ObjectTable().Intern(object); }
inline std::optional<OpId> FindOp(std::string_view operation) {
  return OpTable().Find(operation);
}
inline std::optional<ObjectId> FindObject(std::string_view object) {
  return ObjectTable().Find(object);
}
inline std::string_view OpName(OpId id) { return OpTable().Name(id); }
inline std::string_view ObjectName(ObjectId id) { return ObjectTable().Name(id); }

// Is this 64-bit value a real intern handle (or the reserved empty id 0)?
// THE validation for ids arriving from untrusted carriers (wire slots,
// ipc_call arguments, generic-integer coercions): a forged object id would
// reach the fail-OPEN "unregistered object" bootstrap policy, so every
// entry point must apply the same rule.
// Known-ness is MONOTONE — intern ids are never revoked — so a positive
// answer may be cached forever. The one-entry thread-local memo short-
// circuits the static-init guard + stripe load for the overwhelmingly
// common case of consecutive messages carrying the same op (every batched
// submission, every per-call hot loop).
inline bool IsKnownOpId(uint64_t id) {
  static thread_local uint64_t last_known = ~0ULL;
  if (id == last_known) {
    return true;
  }
  if (id <= 0xffffffffULL && OpTable().Contains(static_cast<OpId>(id))) {
    last_known = id;
    return true;
  }
  return false;
}
inline bool IsKnownObjectId(uint64_t id) {
  return id <= 0xffffffffULL && ObjectTable().Contains(static_cast<ObjectId>(id));
}

// One authorization question: may `subject` perform `op` on `obj`? The
// interned form is the canonical currency of the authorization stack; the
// paper's call(sbj, op, obj, ...) tuple with identity semantics.
struct AuthzRequest {
  ProcessId subject = kKernelProcessId;
  OpId op = 0;
  ObjectId obj = 0;
  // Flight-recorder correlation id (kernel/trace.h): 0 = untraced. NOT
  // part of the request's identity — equality and every cache key ignore
  // it; it only lets downstream stages (engine, guard, remote authority)
  // stamp their TraceEvents with the originating call's id.
  uint64_t trace = 0;

  static AuthzRequest Of(ProcessId subject, std::string_view operation,
                         std::string_view object) {
    return AuthzRequest{subject, InternOp(operation), InternObject(object)};
  }

  std::string_view operation() const { return OpName(op); }
  std::string_view object() const { return ObjectName(obj); }

  friend bool operator==(const AuthzRequest& a, const AuthzRequest& b) {
    return a.subject == b.subject && a.op == b.op && a.obj == b.obj;
  }
};

enum class AuthzVerdict : uint8_t { kAllow, kDeny };

// The unified answer type of the authorization stack: engine, guard, and
// designated-guard port handlers all speak AuthzDecision (it replaces the
// old bare {Status, cacheable} Verdict pair).
struct AuthzDecision {
  AuthzVerdict verdict = AuthzVerdict::kDeny;
  // The guard's cacheability bit (§2.8): false whenever the decision
  // depended on dynamic state (authority answers, missing credentials).
  bool cacheable = true;
  // Why, when verdict == kDeny; OkStatus() otherwise.
  Status deny_reason;
  // How many authority consultations this decision required (embedded,
  // IPC, and remote all count; a batched remote round trip counts each
  // statement it answered).
  uint32_t consulted_authorities = 0;

  bool allowed() const { return verdict == AuthzVerdict::kAllow; }

  // The syscall-surface projection: OK iff allowed.
  Status ToStatus() const { return allowed() ? OkStatus() : deny_reason; }

  static AuthzDecision Allow(bool cacheable = true) {
    return AuthzDecision{AuthzVerdict::kAllow, cacheable, OkStatus(), 0};
  }
  static AuthzDecision Deny(Status reason, bool cacheable = true) {
    return AuthzDecision{AuthzVerdict::kDeny, cacheable, std::move(reason), 0};
  }
  // Adapts Status-producing code paths: OK = allow.
  static AuthzDecision FromStatus(Status status, bool cacheable = true) {
    return status.ok() ? Allow(cacheable) : Deny(std::move(status), cacheable);
  }
};

// The system calls measured in Table 1 plus the logical-attestation control
// calls (§2.2–§2.5, §3.2).
enum class Syscall : uint8_t {
  kNull = 0,
  kGetPpid,
  kGetTimeOfDay,
  kYield,
  kOpen,
  kClose,
  kRead,
  kWrite,
  kSay,
  kSetGoal,
  kSetProof,
  kInterpose,
  kIpcCall,
  kProcRead,
};

// Number of Syscall enumerators; SyscallOp sizes its hoisted-id table from
// this. The static_assert in ipc.cc names the last enumerator — appending
// a syscall without updating both is a compile error, not a silent op-0.
inline constexpr size_t kSyscallCount = 14;

std::string_view SyscallName(Syscall call);

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_TYPES_H_
