#include "net/remote_authority.h"

#include "kernel/ipc.h"
#include "kernel/trace.h"
#include "nal/parser.h"
#include "util/bytes.h"

namespace nexus::net {

namespace {

// One kRemoteVouch provenance event per attested round trip (aux =
// statement count). The trace id is the calling thread's scope: remote
// consultations run synchronously inside the traced authorization.
void EmitRemoteVouch(uint64_t statements, bool ok) {
  kernel::FlightRecorder& recorder = kernel::FlightRecorder::Global();
  if (!recorder.enabled()) {
    return;
  }
  uint64_t id = kernel::CurrentTraceId();
  if (id == 0) {
    return;
  }
  kernel::TraceEvent e;
  e.trace_id = id;
  e.aux = statements;
  e.flags = static_cast<uint16_t>(kernel::kTraceFlagRemote |
                                  (ok ? 0 : kernel::kTraceFlagDenied));
  e.stage = kernel::TraceStage::kRemoteVouch;
  recorder.Emit(e);
}

}  // namespace

Result<Bytes> AuthorityBatchEndpoint::Handle(AttestedChannel& channel, ByteView request) {
  (void)channel;
  return parent_->HandleBatch(request);
}

AuthorityService::AuthorityService(NetNode* node)
    : node_(node), batch_endpoint_(std::make_unique<AuthorityBatchEndpoint>(this)) {
  node_->RegisterService(std::string(kServiceName), this);
  node_->RegisterService(std::string(kBatchServiceName), batch_endpoint_.get());
}

bool AuthorityService::Evaluate(const nal::Formula& statement) {
  ++queries_served_;
  for (core::Authority* authority : authorities_) {
    if (authority->Handles(statement)) {
      return authority->Vouches(statement);
    }
  }
  return false;  // No local authority evaluates it: deny.
}

Result<Bytes> AuthorityService::Handle(AttestedChannel& channel, ByteView request) {
  (void)channel;
  Bytes reply(1, 0);  // Default: deny.
  // The statement is untrusted remote text; it shares the IPC ABI's
  // per-payload wire bound, so a hostile peer cannot feed the NAL parser
  // an arbitrarily large formula.
  if (request.size() > kernel::kMaxArgPayload) {
    ++queries_served_;
    return reply;
  }
  Result<nal::Formula> statement = nal::ParseFormula(ToString(request));
  if (!statement.ok()) {
    ++queries_served_;
    return reply;
  }
  reply[0] = Evaluate(*statement) ? 1 : 0;
  return reply;
}

Result<Bytes> AuthorityService::HandleBatch(ByteView request) {
  // Wire format: u32 count, then `count` length-prefixed statement texts.
  // Reply: a marshaled typed IpcReply — slot 0 the verdict count (u64),
  // slot 1 the verdict bytes — so the client consumes the batch through
  // the strict reply codec instead of trusting raw bytes. A malformed
  // request returns an empty buffer, which the client's UnmarshalReply
  // rejects: deny-all, fail closed.
  ++batches_served_;
  ByteReader reader(request);
  Result<uint32_t> count = reader.ReadU32();
  if (!count.ok()) {
    return Bytes{};
  }
  // Every statement costs at least its 4-byte length prefix, so a count
  // the payload cannot possibly carry is malformed — reject before sizing
  // the reply from an attacker-declared number.
  if (*count > reader.remaining() / sizeof(uint32_t)) {
    return Bytes{};
  }
  Bytes verdicts(*count, 0);
  for (uint32_t i = 0; i < *count; ++i) {
    Result<Bytes> text = reader.ReadLengthPrefixed();
    if (!text.ok()) {
      break;  // Remaining statements stay denied.
    }
    // Same per-statement bound as the single-query surface: an oversized
    // statement is a deny, and the rest of the batch still answers.
    if (text->size() > kernel::kMaxArgPayload) {
      ++queries_served_;
      continue;
    }
    Result<nal::Formula> statement = nal::ParseFormula(ToString(*text));
    if (!statement.ok()) {
      ++queries_served_;
      continue;
    }
    verdicts[i] = Evaluate(*statement) ? 1 : 0;
  }
  // One kBytes slot carries ALL verdicts: batches routinely exceed the 8
  // typed slots, and verdict-per-slot would also waste 9 bytes a verdict.
  kernel::IpcReply typed = kernel::IpcReply::Ok();
  typed.AddU64(*count).AddBytes(verdicts);
  return kernel::MarshalReply(typed);
}

RemoteAuthority::RemoteAuthority(NetNode* node, NodeId peer, HandlesPredicate handles,
                                 uint64_t default_timeout_us)
    : node_(node),
      peer_(std::move(peer)),
      handles_(std::move(handles)),
      default_timeout_us_(default_timeout_us) {}

bool RemoteAuthority::Handles(const nal::Formula& statement) const {
  return handles_ == nullptr || handles_(statement);
}

bool RemoteAuthority::Vouches(const nal::Formula& statement) {
  return VouchesWithin(statement, default_timeout_us_);
}

bool RemoteAuthority::VouchesWithin(const nal::Formula& statement, uint64_t timeout_us) {
  stats_.queries->Increment();
  Result<AttestedChannel*> channel = node_->Connect(peer_);
  if (!channel.ok()) {
    stats_.denied_unreachable->Increment();
    EmitRemoteVouch(1, false);
    return false;  // Unreachable or untrusted peer: fail closed.
  }
  Result<Bytes> answer = (*channel)->Call(std::string(AuthorityService::kServiceName),
                                          ToBytes(statement->ToString()), timeout_us);
  if (!answer.ok()) {
    // The request was in flight on an established channel; the reply was
    // lost or late. A timeout-deny, not an unreachable-deny — the metrics
    // split tells a flapping peer from a dead one.
    stats_.denied_timeout->Increment();
    EmitRemoteVouch(1, false);
    return false;  // Lost or late: the deadline IS the answer (deny).
  }
  bool vouched = !answer->empty() && (*answer)[0] == 1;
  (vouched ? stats_.vouched : stats_.denied)->Increment();
  EmitRemoteVouch(1, true);
  return vouched;
}

namespace {

// A future whose Wait() runs a deferred collection step (or, for failures
// detected at issue time, just returns the fail-closed outcome).
class FunctionDetailedVouchFuture : public core::DetailedVouchFuture {
 public:
  explicit FunctionDetailedVouchFuture(std::function<core::VouchOutcome()> collect)
      : collect_(std::move(collect)) {}
  core::VouchOutcome Wait() override { return collect_(); }

 private:
  std::function<core::VouchOutcome()> collect_;
};

// Adapter stripping the responsiveness bit for the plain-future surface.
class AnswersOnlyVouchFuture : public core::VouchFuture {
 public:
  explicit AnswersOnlyVouchFuture(std::unique_ptr<core::DetailedVouchFuture> detailed)
      : detailed_(std::move(detailed)) {}
  std::vector<bool> Wait() override { return detailed_->Wait().answers; }

 private:
  std::unique_ptr<core::DetailedVouchFuture> detailed_;
};

}  // namespace

std::unique_ptr<core::DetailedVouchFuture> RemoteAuthority::VouchBatchAsyncDetailed(
    std::span<const nal::Formula> statements, uint64_t timeout_us) {
  size_t count = statements.size();
  // Answers are all-false filler; `responsive` records whether they are
  // real votes. Everything unresponsive still denies — fail closed.
  auto unresponsive = [count] {
    return std::make_unique<FunctionDetailedVouchFuture>([count] {
      return core::VouchOutcome{std::vector<bool>(count, false), /*responsive=*/false};
    });
  };
  if (count == 0) {
    return std::make_unique<FunctionDetailedVouchFuture>(
        [] { return core::VouchOutcome{{}, /*responsive=*/true}; });
  }
  stats_.queries->Increment(count);
  stats_.batch_round_trips->Increment();
  // Connect() may pump the fabric for the handshake (once per peer); the
  // request itself goes out below WITHOUT pumping, so round trips to
  // several peers can be in flight simultaneously.
  Result<AttestedChannel*> channel = node_->Connect(peer_);
  if (!channel.ok()) {
    stats_.denied_unreachable->Increment(count);
    EmitRemoteVouch(count, false);
    return unresponsive();  // Unreachable or untrusted peer: fail closed.
  }
  Bytes payload;
  AppendU32(payload, static_cast<uint32_t>(count));
  for (const nal::Formula& statement : statements) {
    AppendLengthPrefixed(payload, ToBytes(statement->ToString()));
  }
  Result<uint64_t> request = (*channel)->CallStart(
      std::string(AuthorityService::kBatchServiceName), payload, timeout_us);
  if (!request.ok()) {
    stats_.denied_unreachable->Increment(count);
    EmitRemoteVouch(count, false);
    return unresponsive();
  }
  AttestedChannel* ch = *channel;
  uint64_t request_id = *request;
  return std::make_unique<FunctionDetailedVouchFuture>([this, ch, request_id, count] {
    core::VouchOutcome outcome{std::vector<bool>(count, false), /*responsive=*/true};
    Result<Bytes> reply = ch->CallFinish(request_id);
    if (!reply.ok()) {
      // In flight but lost or late: a timeout-deny (the peer may be fine
      // and the link lossy), distinct from never getting a channel at all.
      stats_.denied_timeout->Increment(count);
      EmitRemoteVouch(count, false);
      outcome.responsive = false;
      return outcome;  // One deadline governs the whole round trip.
    }
    // The batch verdict vector arrives as a typed reply (count slot +
    // verdict bytes) through the strict codec. Anything that does not
    // unmarshal whole — truncated, trailing bytes, forged ids, a count
    // that contradicts ours — denies the entire batch: fail closed. The
    // peer DID respond, so these are responsive denies (real no-votes).
    Result<kernel::IpcReply> typed = kernel::UnmarshalReply(*reply);
    if (!typed.ok() || !typed->status.ok()) {
      stats_.denied->Increment(count);
      EmitRemoteVouch(count, false);
      return outcome;
    }
    Result<uint64_t> declared = typed->ArgU64(0);
    Result<ByteView> verdicts = typed->ArgBytes(1);
    if (!declared.ok() || !verdicts.ok() || *declared != count ||
        verdicts->size() != count) {
      stats_.denied->Increment(count);
      EmitRemoteVouch(count, false);
      return outcome;
    }
    for (size_t i = 0; i < count; ++i) {
      outcome.answers[i] = (*verdicts)[i] == 1;
      (outcome.answers[i] ? stats_.vouched : stats_.denied)->Increment();
    }
    EmitRemoteVouch(count, true);
    return outcome;
  });
}

std::unique_ptr<core::VouchFuture> RemoteAuthority::VouchBatchAsync(
    std::span<const nal::Formula> statements, uint64_t timeout_us) {
  return std::make_unique<AnswersOnlyVouchFuture>(
      VouchBatchAsyncDetailed(statements, timeout_us));
}

std::vector<bool> RemoteAuthority::VouchBatch(std::span<const nal::Formula> statements,
                                              uint64_t timeout_us) {
  // The blocking path is just issue-then-wait; stats and deadline behavior
  // are shared with the pipelined path by construction.
  return VouchBatchAsync(statements, timeout_us)->Wait();
}

}  // namespace nexus::net
