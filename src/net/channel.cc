#include "net/channel.h"

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace nexus::net {

namespace {

constexpr std::string_view kAuthTag = "NEXUS_CHANNEL_AUTH";
constexpr std::string_view kKeyTag = "NEXUS_CHANNEL_KEY";
constexpr std::string_view kMsgTag = "NEXUS_CHANNEL_MSG";
constexpr uint8_t kRoleInitiator = 0;
constexpr uint8_t kRoleResponder = 1;

}  // namespace

AttestedChannel::AttestedChannel(core::Nexus* local, Transport* transport,
                                 ChannelServices* services, NodeId self, NodeId peer,
                                 uint64_t channel_id, bool initiator)
    : local_(local),
      transport_(transport),
      services_(services),
      self_(std::move(self)),
      peer_(std::move(peer)),
      channel_id_(channel_id),
      initiator_(initiator) {}

// ------------------------------------------------------------- handshake

Bytes AttestedChannel::Hello::Serialize() const {
  Bytes out;
  AppendLengthPrefixed(out, nonce);
  AppendLengthPrefixed(out, nk.Serialize());
  AppendLengthPrefixed(out, ek.Serialize());
  AppendLengthPrefixed(out, ek_attestation);
  AppendLengthPrefixed(out, pcr_composite);
  AppendLengthPrefixed(out, ToBytes(nbk_id));
  return out;
}

Result<AttestedChannel::Hello> AttestedChannel::Hello::Deserialize(ByteView data) {
  ByteReader reader(data);
  Hello hello;
  Result<Bytes> nonce = reader.ReadLengthPrefixed();
  if (!nonce.ok()) {
    return nonce.status();
  }
  hello.nonce = std::move(*nonce);
  Result<Bytes> nk = reader.ReadLengthPrefixed();
  if (!nk.ok()) {
    return nk.status();
  }
  Result<crypto::RsaPublicKey> nk_key = crypto::RsaPublicKey::Deserialize(*nk);
  if (!nk_key.ok()) {
    return nk_key.status();
  }
  hello.nk = *nk_key;
  Result<Bytes> ek = reader.ReadLengthPrefixed();
  if (!ek.ok()) {
    return ek.status();
  }
  Result<crypto::RsaPublicKey> ek_key = crypto::RsaPublicKey::Deserialize(*ek);
  if (!ek_key.ok()) {
    return ek_key.status();
  }
  hello.ek = *ek_key;
  Result<Bytes> att = reader.ReadLengthPrefixed();
  if (!att.ok()) {
    return att.status();
  }
  hello.ek_attestation = std::move(*att);
  Result<Bytes> composite = reader.ReadLengthPrefixed();
  if (!composite.ok()) {
    return composite.status();
  }
  hello.pcr_composite = std::move(*composite);
  Result<Bytes> nbk = reader.ReadLengthPrefixed();
  if (!nbk.ok()) {
    return nbk.status();
  }
  hello.nbk_id = ToString(*nbk);
  return hello;
}

AttestedChannel::Hello AttestedChannel::MakeLocalHello() {
  Hello hello;
  if (local_nonce_.empty()) {
    local_nonce_ = local_->rng().RandomBytes(32);
  }
  hello.nonce = local_nonce_;
  hello.nk = local_->nexus_public_key();
  hello.ek = local_->tpm().endorsement_public_key();
  hello.ek_attestation = local_->nk_ek_attestation();
  hello.pcr_composite = local_->boot_composite();
  // The boot tag of our external principal chain (last path element of
  // tpm.<ek8>.nexus.<nk8>.boot.<nbk8>).
  nal::Principal external = local_->ExternalKernelPrincipal();
  std::string boot_tag = external.path().empty() ? "" : external.path().back();
  hello.nbk_id = boot_tag.size() > 5 ? boot_tag.substr(5) : boot_tag;  // strip "boot."
  return hello;
}

Status AttestedChannel::VerifyPeerHello(const Hello& hello) {
  // (1) The peer's TPM must be a registered trust anchor: this is where a
  // wrong-EK peer (unknown TPM, or an impostor presenting a self-made EK)
  // is rejected.
  if (!local_->IsTrustedPeerEk(hello.ek)) {
    return Unauthenticated("peer EK is not a registered trust anchor");
  }
  // (2) The EK must endorse the presented NK for the presented boot-time
  // PCR composite — the TPM-rooted step of the principal chain
  // tpm.<ek8> says nexus.<nk8> speaksfor it.
  Bytes binding = core::NkBindingMessage(hello.nk, hello.pcr_composite);
  if (!crypto::RsaVerify(hello.ek, binding, hello.ek_attestation)) {
    return Unauthenticated("EK endorsement of the peer kernel key failed to verify");
  }
  return OkStatus();
}

Bytes AttestedChannel::AuthTranscript(uint8_t role) const {
  // Signed by the NK named inside the hellos; covers both nonces (fresh per
  // channel, so a recorded handshake cannot be replayed), both key chains,
  // the channel id, the encrypted key shares seen so far, and the signer's
  // role (so a reflected signature cannot stand in for the other side).
  const Bytes& initiator_hello = initiator_ ? local_hello_bytes_ : peer_hello_bytes_;
  const Bytes& responder_hello = initiator_ ? peer_hello_bytes_ : local_hello_bytes_;
  Bytes transcript = ToBytes(kAuthTag);
  AppendU64(transcript, channel_id_);
  transcript.push_back(role);
  AppendLengthPrefixed(transcript, initiator_hello);
  AppendLengthPrefixed(transcript, responder_hello);
  AppendLengthPrefixed(transcript, enc_share_responder_);
  if (role == kRoleInitiator) {
    // The responder signs before the initiator's share exists.
    AppendLengthPrefixed(transcript, enc_share_initiator_);
  }
  return transcript;
}

void AttestedChannel::DeriveSessionKeys() {
  Bytes base = ToBytes(kKeyTag);
  AppendU64(base, channel_id_);
  const Bytes& initiator_hello = initiator_ ? local_hello_bytes_ : peer_hello_bytes_;
  const Bytes& responder_hello = initiator_ ? peer_hello_bytes_ : local_hello_bytes_;
  AppendLengthPrefixed(base, initiator_hello);
  AppendLengthPrefixed(base, responder_hello);
  // The secret inputs: both RSA-transported shares, in role order. Without
  // these, everything above is public and the keys would be computable by
  // any fabric observer.
  const Bytes& initiator_share = initiator_ ? local_share_ : peer_share_;
  const Bytes& responder_share = initiator_ ? peer_share_ : local_share_;
  AppendLengthPrefixed(base, initiator_share);
  AppendLengthPrefixed(base, responder_share);

  Bytes enc_material = base;
  enc_material.push_back(0x01);
  crypto::Sha256Digest enc = crypto::Sha256::Hash(enc_material);
  std::copy(enc.begin(), enc.begin() + crypto::kAesKeySize, enc_key_.begin());

  Bytes mac_material = base;
  mac_material.push_back(0x02);
  crypto::Sha256Digest mac = crypto::Sha256::Hash(mac_material);
  mac_key_.assign(mac.begin(), mac.end());
}

void AttestedChannel::Fail(const std::string& reason) {
  state_ = ChannelState::kFailed;
  failure_ = reason;
}

Status AttestedChannel::Connect() {
  if (!initiator_) {
    return FailedPrecondition("only the initiating side calls Connect");
  }
  // One connector at a time; a racer that finds the channel established on
  // entry (the first call finished the handshake) returns immediately.
  std::lock_guard<std::mutex> lock(connect_mu_);
  if (established()) {
    return OkStatus();
  }
  state_ = ChannelState::kConnecting;
  // Generate the hello exactly once per channel. A retry after message
  // loss must resend the SAME bytes: the responder pins the first hello it
  // sees on a channel id and answers duplicates with its cached hello_ack,
  // so a regenerated (fresh-nonce) hello would be ignored forever and wedge
  // the handshake. Freshness is per-handshake, not per-transmission — the
  // transcript signatures pin this nonce either way.
  if (local_hello_bytes_.empty()) {
    local_hello_bytes_ = MakeLocalHello().Serialize();
  }
  Status sent = transport_->Send(
      Message{self_, peer_, channel_id_, "hello", local_hello_bytes_});
  if (!sent.ok()) {
    return sent;
  }
  transport_->DeliverAll();
  if (state_ == ChannelState::kFailed) {
    return Unauthenticated("handshake rejected: " + failure_);
  }
  if (!established()) {
    return Unavailable("handshake did not complete (message loss?); retry Connect");
  }
  return OkStatus();
}

void AttestedChannel::OnTransportMessage(const Message& message) {
  if (message.kind == "hello") {
    HandleHello(message);
  } else if (message.kind == "hello_ack") {
    HandleHelloAck(message);
  } else if (message.kind == "auth") {
    HandleAuth(message);
  } else if (message.kind == "data") {
    HandleData(message);
  }
}

void AttestedChannel::HandleHello(const Message& message) {
  if (initiator_) {
    return;  // Role confusion; ignore.
  }
  if (!peer_hello_bytes_.empty() && !(peer_hello_bytes_ == message.payload)) {
    return;  // A different hello on an in-use channel id: ignore.
  }
  bool duplicate = !peer_hello_bytes_.empty();
  if (!duplicate) {
    Result<Hello> hello = Hello::Deserialize(message.payload);
    if (!hello.ok()) {
      Fail("malformed hello: " + hello.status().ToString());
      return;
    }
    Status verified = VerifyPeerHello(*hello);
    if (!verified.ok()) {
      Fail(verified.ToString());
      return;
    }
    state_ = ChannelState::kConnecting;
    peer_hello_bytes_ = message.payload;
    peer_ek_ = hello->ek;
    peer_nk_ = hello->nk;
    peer_nbk_id_ = hello->nbk_id;
    local_hello_bytes_ = MakeLocalHello().Serialize();
  }
  // hello_ack = our hello, our key share encrypted to the initiator's NK,
  // and our transcript signature. The encrypted share is generated once and
  // resent verbatim on duplicate hellos (RSA padding is randomized; the
  // transcript signature pins the exact ciphertext).
  if (local_share_.empty()) {
    local_share_ = local_->rng().RandomBytes(32);
    Result<Bytes> enc = crypto::RsaEncrypt(peer_nk_, local_share_, local_->rng());
    if (!enc.ok()) {
      Fail("failed to encrypt session key share: " + enc.status().ToString());
      return;
    }
    enc_share_responder_ = *enc;
  }
  SendHelloAck();
}

void AttestedChannel::SendHelloAck() {
  Bytes ack;
  AppendLengthPrefixed(ack, local_hello_bytes_);
  AppendLengthPrefixed(ack, enc_share_responder_);
  AppendLengthPrefixed(ack, local_->NkSign(AuthTranscript(kRoleResponder)));
  transport_->Send(Message{self_, peer_, channel_id_, "hello_ack", std::move(ack)});
}

void AttestedChannel::HandleHelloAck(const Message& message) {
  if (!initiator_ || state_ == ChannelState::kFailed) {
    return;
  }
  if (established()) {
    // Duplicate ack after a lost auth: resend the cached auth verbatim.
    transport_->Send(Message{self_, peer_, channel_id_, "auth", auth_payload_});
    return;
  }
  ByteReader reader(message.payload);
  Result<Bytes> hello_bytes = reader.ReadLengthPrefixed();
  Result<Bytes> enc_share = hello_bytes.ok() ? reader.ReadLengthPrefixed() : hello_bytes;
  Result<Bytes> signature = enc_share.ok() ? reader.ReadLengthPrefixed() : enc_share;
  if (!signature.ok()) {
    Fail("malformed hello_ack");
    return;
  }
  if (peer_hello_bytes_.empty()) {
    Result<Hello> hello = Hello::Deserialize(*hello_bytes);
    if (!hello.ok()) {
      Fail("malformed responder hello: " + hello.status().ToString());
      return;
    }
    Status verified = VerifyPeerHello(*hello);
    if (!verified.ok()) {
      Fail(verified.ToString());
      return;
    }
    peer_hello_bytes_ = *hello_bytes;
    peer_ek_ = hello->ek;
    peer_nk_ = hello->nk;
    peer_nbk_id_ = hello->nbk_id;
  } else if (!(peer_hello_bytes_ == *hello_bytes)) {
    return;  // Conflicting ack: ignore.
  }
  enc_share_responder_ = *enc_share;
  // (3) Proof of NK possession + freshness: the transcript includes our
  // nonce and the responder's encrypted share, so this signature cannot
  // come from a recorded session nor survive share substitution.
  if (!crypto::RsaVerify(peer_nk_, AuthTranscript(kRoleResponder), *signature)) {
    Fail("responder transcript signature failed to verify");
    return;
  }
  Result<Bytes> responder_share = local_->NkDecrypt(enc_share_responder_);
  if (!responder_share.ok()) {
    Fail("could not decrypt responder key share");
    return;
  }
  peer_share_ = *responder_share;
  local_share_ = local_->rng().RandomBytes(32);
  Result<Bytes> enc = crypto::RsaEncrypt(peer_nk_, local_share_, local_->rng());
  if (!enc.ok()) {
    Fail("failed to encrypt session key share: " + enc.status().ToString());
    return;
  }
  enc_share_initiator_ = *enc;
  DeriveSessionKeys();
  state_ = ChannelState::kEstablished;

  Bytes auth;
  AppendLengthPrefixed(auth, enc_share_initiator_);
  AppendLengthPrefixed(auth, local_->NkSign(AuthTranscript(kRoleInitiator)));
  auth_payload_ = auth;
  transport_->Send(Message{self_, peer_, channel_id_, "auth", std::move(auth)});
}

void AttestedChannel::HandleAuth(const Message& message) {
  if (initiator_ || state_ == ChannelState::kFailed || peer_hello_bytes_.empty()) {
    return;
  }
  if (established()) {
    return;  // Duplicate auth after an initiator retry.
  }
  ByteReader reader(message.payload);
  Result<Bytes> enc_share = reader.ReadLengthPrefixed();
  Result<Bytes> signature = enc_share.ok() ? reader.ReadLengthPrefixed() : enc_share;
  if (!signature.ok()) {
    Fail("malformed auth");
    return;
  }
  enc_share_initiator_ = *enc_share;
  if (!crypto::RsaVerify(peer_nk_, AuthTranscript(kRoleInitiator), *signature)) {
    Fail("initiator transcript signature failed to verify");
    return;
  }
  Result<Bytes> initiator_share = local_->NkDecrypt(enc_share_initiator_);
  if (!initiator_share.ok()) {
    Fail("could not decrypt initiator key share");
    return;
  }
  peer_share_ = *initiator_share;
  DeriveSessionKeys();
  state_ = ChannelState::kEstablished;
}

// ----------------------------------------------------------- secure data

Status AttestedChannel::SendData(const std::string& service, uint64_t request_id,
                                 bool is_response, ByteView payload) {
  if (!established()) {
    return FailedPrecondition("channel to " + peer_ + " is not established");
  }
  uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    seq = send_seq_++;
    ++stats_.data_sent;
  }
  uint8_t direction = initiator_ ? kRoleInitiator : kRoleResponder;
  // Per-message CTR stream: direction in the top bit keeps the two
  // directions' keystreams disjoint under the shared key.
  uint64_t nonce = (static_cast<uint64_t>(direction) << 63) | seq;
  Bytes ciphertext = crypto::AesCtr(enc_key_, nonce).Crypt(0, payload);

  Bytes mac_input = ToBytes(kMsgTag);
  AppendU64(mac_input, channel_id_);
  AppendU64(mac_input, seq);
  mac_input.push_back(direction);
  AppendLengthPrefixed(mac_input, ToBytes(service));
  AppendU64(mac_input, request_id);
  mac_input.push_back(is_response ? 1 : 0);
  AppendLengthPrefixed(mac_input, ciphertext);
  Bytes tag = crypto::HmacSha256Bytes(mac_key_, mac_input);

  Bytes wire;
  AppendU64(wire, seq);
  wire.push_back(direction);
  AppendLengthPrefixed(wire, ToBytes(service));
  AppendU64(wire, request_id);
  wire.push_back(is_response ? 1 : 0);
  AppendLengthPrefixed(wire, ciphertext);
  AppendLengthPrefixed(wire, tag);
  return transport_->Send(Message{self_, peer_, channel_id_, "data", std::move(wire)});
}

void AttestedChannel::HandleData(const Message& message) {
  if (!established()) {
    // Data while we are still mid-handshake means the peer established and
    // our last handshake message was lost. A responder re-acks: the
    // established initiator answers a duplicate ack by resending its cached
    // auth, which completes us. (The data message itself is lost — callers
    // retry at their own layer.)
    if (!initiator_ && state_ == ChannelState::kConnecting &&
        !peer_hello_bytes_.empty() && !enc_share_responder_.empty()) {
      SendHelloAck();
    }
    return;
  }
  ByteReader reader(message.payload);
  Result<uint64_t> seq = reader.ReadU64();
  Result<uint8_t> direction = seq.ok() ? reader.ReadU8() : seq.status();
  Result<Bytes> service = direction.ok() ? reader.ReadLengthPrefixed() : direction.status();
  Result<uint64_t> request_id = service.ok() ? reader.ReadU64() : service.status();
  Result<uint8_t> is_response = request_id.ok() ? reader.ReadU8() : request_id.status();
  Result<Bytes> ciphertext = is_response.ok() ? reader.ReadLengthPrefixed() : is_response.status();
  Result<Bytes> tag = ciphertext.ok() ? reader.ReadLengthPrefixed() : ciphertext.status();
  if (!tag.ok()) {
    return;  // Malformed frame: drop.
  }
  uint8_t own_direction = initiator_ ? kRoleInitiator : kRoleResponder;
  if (*direction == own_direction) {
    return;  // Reflected message: drop.
  }

  Bytes mac_input = ToBytes(kMsgTag);
  AppendU64(mac_input, channel_id_);
  AppendU64(mac_input, *seq);
  mac_input.push_back(*direction);
  AppendLengthPrefixed(mac_input, *service);
  AppendU64(mac_input, *request_id);
  mac_input.push_back(*is_response);
  AppendLengthPrefixed(mac_input, *ciphertext);
  Bytes expected = crypto::HmacSha256Bytes(mac_key_, mac_input);
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    if (!ConstantTimeEquals(expected, *tag)) {
      ++stats_.bad_tags_rejected;
      return;  // Tampered or corrupted frame: drop.
    }
    // Replay check AFTER authentication: any unseen sequence number inside
    // the sliding window is accepted regardless of arrival order, but each
    // is consumed exactly once. Anything below the window is rejected
    // outright, which keeps the seen-set bounded on long-lived channels.
    if (*seq + kReplayWindow <= max_seen_seq_) {
      ++stats_.replays_rejected;
      return;
    }
    if (!seen_seqs_.insert(*seq).second) {
      ++stats_.replays_rejected;
      return;
    }
    if (*seq > max_seen_seq_) {
      max_seen_seq_ = *seq;
      while (!seen_seqs_.empty() && *seen_seqs_.begin() + kReplayWindow <= max_seen_seq_) {
        seen_seqs_.erase(seen_seqs_.begin());
      }
    }
    ++stats_.data_received;
  }

  uint64_t nonce = (static_cast<uint64_t>(*direction) << 63) | *seq;
  Bytes plaintext = crypto::AesCtr(enc_key_, nonce).Crypt(0, *ciphertext);
  std::string service_name = ToString(*service);

  if (*is_response != 0) {
    uint64_t received_at = transport_->now_us();
    std::lock_guard<std::mutex> lock(data_mu_);
    // Bound unclaimed responses (a caller that timed out never collects
    // its entry): drop the stalest once past a small cap.
    if (responses_.size() >= 256) {
      auto stalest = responses_.begin();
      for (auto it = responses_.begin(); it != responses_.end(); ++it) {
        if (it->second.received_at < stalest->second.received_at) {
          stalest = it;
        }
      }
      responses_.erase(stalest);
    }
    responses_[*request_id] = PendingResponse{std::move(plaintext), received_at};
    return;
  }
  if (services_ == nullptr) {
    return;
  }
  Result<Bytes> reply = services_->HandleRequest(*this, service_name, plaintext);
  if (*request_id != 0) {
    // Errors travel back in-band as an empty-marker frame so the caller
    // times out distinguishably less often; encode status in the payload.
    Bytes response;
    if (reply.ok()) {
      response.push_back(1);
      Append(response, *reply);
    } else {
      response.push_back(0);
      Append(response, ToBytes(reply.status().ToString()));
    }
    SendData(service_name, *request_id, /*is_response=*/true, response);
  }
}

Status AttestedChannel::SendSecure(const std::string& service, ByteView payload) {
  return SendData(service, /*request_id=*/0, /*is_response=*/false, payload);
}

Result<uint64_t> AttestedChannel::CallStart(const std::string& service, ByteView payload,
                                            uint64_t timeout_us) {
  // The deadline is recorded BEFORE the request goes out: once SendData
  // runs, any concurrent pumper may deliver the reply.
  uint64_t now = transport_->now_us();
  uint64_t request_id;
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    request_id = next_request_id_++;
    call_deadlines_[request_id] = now + timeout_us;
  }
  Status sent = SendData(service, request_id, /*is_response=*/false, payload);
  if (!sent.ok()) {
    std::lock_guard<std::mutex> lock(data_mu_);
    call_deadlines_.erase(request_id);
    return sent;
  }
  return request_id;
}

Result<Bytes> AttestedChannel::CallFinish(uint64_t request_id) {
  uint64_t deadline;
  {
    std::lock_guard<std::mutex> lock(data_mu_);
    auto deadline_it = call_deadlines_.find(request_id);
    if (deadline_it == call_deadlines_.end()) {
      return InvalidArgument("no outstanding call with this request id");
    }
    deadline = deadline_it->second;
    call_deadlines_.erase(deadline_it);
  }
  // Claim the response if a concurrent caller's pump already delivered it;
  // pump the fabric to quiescence otherwise (the pump serializes, so after
  // DeliverAll returns either our reply was delivered — by us or by the
  // pumper we waited behind — or it was lost/dropped).
  auto take_response = [&](PendingResponse* out) {
    std::lock_guard<std::mutex> lock(data_mu_);
    auto it = responses_.find(request_id);
    if (it == responses_.end()) {
      return false;
    }
    *out = std::move(it->second);
    responses_.erase(it);
    return true;
  };
  PendingResponse response;
  if (!take_response(&response)) {
    transport_->DeliverAll();
    if (!take_response(&response)) {
      return Unavailable("no response from " + peer_ + " (message loss)");
    }
  }
  if (response.received_at > deadline) {
    return Unavailable("response from " + peer_ + " missed the deadline");
  }
  if (response.payload.empty()) {
    return Internal("malformed response frame");
  }
  if (response.payload[0] == 0) {
    return Unavailable("peer service error: " +
                       ToString(ByteView(response.payload.data() + 1,
                                         response.payload.size() - 1)));
  }
  return Bytes(response.payload.begin() + 1, response.payload.end());
}

Result<Bytes> AttestedChannel::Call(const std::string& service, ByteView payload,
                                    uint64_t timeout_us) {
  Result<uint64_t> request_id = CallStart(service, payload, timeout_us);
  if (!request_id.ok()) {
    return request_id.status();
  }
  return CallFinish(*request_id);
}

nal::Principal AttestedChannel::peer_principal() const {
  return core::ExternalPrincipalFor(peer_ek_, peer_nk_, peer_nbk_id_);
}

}  // namespace nexus::net
