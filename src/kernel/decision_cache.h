// The kernel decision cache (§2.8).
//
// Caches guard verdicts keyed by the access-control tuple (subject,
// operation, object). The tuple is interned: lookups hash three integers,
// never strings (string-taking overloads intern-and-forward). Two
// invalidation granularities exist:
//   - a proof update clears the single affected entry;
//   - a setgoal may affect many entries, so the hash function places all
//     entries with the same (operation, object) into the same *subregion*
//     and setgoal clears just that subregion.
// Subregion size is configurable and trades invalidation cost against
// collision rate (an ablation benchmark sweeps it).
#ifndef NEXUS_KERNEL_DECISION_CACHE_H_
#define NEXUS_KERNEL_DECISION_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kernel/types.h"

namespace nexus::kernel {

class DecisionCache {
 public:
  struct Config {
    size_t num_subregions = 64;
    size_t entries_per_subregion = 64;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t invalidated_entries = 0;
    uint64_t subregion_invalidations = 0;
  };

  DecisionCache();
  explicit DecisionCache(const Config& config);

  // Returns the cached verdict, if any.
  std::optional<bool> Lookup(const AuthzRequest& request);
  std::optional<bool> Lookup(ProcessId subject, std::string_view operation,
                             std::string_view object) {
    return Lookup(AuthzRequest::Of(subject, operation, object));
  }

  // Records a verdict (only cacheable decisions should be inserted).
  void Insert(const AuthzRequest& request, bool allow);
  void Insert(ProcessId subject, std::string_view operation, std::string_view object,
              bool allow) {
    Insert(AuthzRequest::Of(subject, operation, object), allow);
  }

  // Proof update: clears the single matching entry.
  void InvalidateEntry(const AuthzRequest& request);
  void InvalidateEntry(ProcessId subject, std::string_view operation,
                       std::string_view object) {
    InvalidateEntry(AuthzRequest::Of(subject, operation, object));
  }

  // setgoal: clears the subregion holding all entries for (operation,
  // object).
  void InvalidateSubregion(OpId op, ObjectId obj);
  void InvalidateSubregion(std::string_view operation, std::string_view object) {
    InvalidateSubregion(InternOp(operation), InternObject(object));
  }

  // Drops everything (the cache is soft state; this is always safe).
  void Clear();

  // Runtime resize; drops contents.
  void Resize(const Config& config);

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  struct Entry {
    bool valid = false;
    bool allow = false;
    ProcessId subject = 0;
    OpId op = 0;
    ObjectId obj = 0;
  };

  size_t SubregionIndex(OpId op, ObjectId obj) const;
  Entry* Find(const AuthzRequest& request);

  Config config_;
  std::vector<Entry> entries_;  // num_subregions * entries_per_subregion.
  Stats stats_;
};

}  // namespace nexus::kernel

#endif  // NEXUS_KERNEL_DECISION_CACHE_H_
