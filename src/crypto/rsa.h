// RSA signatures for externalized credentials and TPM quotes.
//
// Labels inside one Nexus instance are system-backed (attributed over the
// syscall channel, §2.3); RSA is used only when a label is externalized to
// an X.509-style certificate or when the TPM signs a quote. Fig. 6 measures
// the resulting three-orders-of-magnitude cost gap.
//
// Padding is PKCS#1 v1.5-shaped over SHA-256 with a fixed simulation prefix
// rather than a real DigestInfo DER encoding.
#ifndef NEXUS_CRYPTO_RSA_H_
#define NEXUS_CRYPTO_RSA_H_

#include <string>

#include "crypto/bignum.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/status.h"

namespace nexus::crypto {

struct RsaPublicKey {
  BigNum n;
  BigNum e;

  Bytes Serialize() const;
  static Result<RsaPublicKey> Deserialize(ByteView data);

  // Stable identity for a key: SHA-256 of the serialized public key (hex).
  std::string Fingerprint() const;

  bool operator==(const RsaPublicKey& other) const { return n == other.n && e == other.e; }
};

struct RsaPrivateKey {
  BigNum n;
  BigNum e;
  BigNum d;

  RsaPublicKey PublicKey() const { return RsaPublicKey{n, e}; }
};

struct RsaKeyPair {
  RsaPublicKey public_key;
  RsaPrivateKey private_key;
};

// Generates an RSA key pair with the given modulus size. 512-bit keys are the
// simulation default (fast tests); benchmarks use 1024-bit.
RsaKeyPair GenerateRsaKeyPair(Rng& rng, int modulus_bits = 512);

// Signs SHA-256(message) under the private key.
Bytes RsaSign(const RsaPrivateKey& key, ByteView message);

// Verifies a signature produced by RsaSign.
bool RsaVerify(const RsaPublicKey& key, ByteView message, ByteView signature);

// PKCS#1 v1.5-shaped (type 2) encryption of a short message under the
// public key; used by the attested-channel handshake to transport session
// key shares so the derived keys stay secret from the untrusted fabric.
// `message` must fit in the modulus minus 11 bytes of padding.
Result<Bytes> RsaEncrypt(const RsaPublicKey& key, ByteView message, Rng& rng);

// Inverts RsaEncrypt.
Result<Bytes> RsaDecrypt(const RsaPrivateKey& key, ByteView ciphertext);

}  // namespace nexus::crypto

#endif  // NEXUS_CRYPTO_RSA_H_
