#include <gtest/gtest.h>

#include "storage/blockdev.h"
#include "storage/merkle.h"
#include "storage/ssr.h"
#include "storage/vdir.h"
#include "storage/vkey.h"
#include "tpm/tpm.h"
#include "util/rng.h"

namespace nexus::storage {
namespace {

// ------------------------------------------------------------ BlockDevice

TEST(BlockDeviceTest, WriteReadDelete) {
  BlockDevice disk;
  ASSERT_TRUE(disk.Write("/a", ToBytes("hello")).ok());
  EXPECT_EQ(ToString(*disk.Read("/a")), "hello");
  ASSERT_TRUE(disk.Delete("/a").ok());
  EXPECT_FALSE(disk.Read("/a").ok());
  EXPECT_FALSE(disk.Delete("/a").ok());
}

TEST(BlockDeviceTest, PowerFailureDropsWrites) {
  BlockDevice disk;
  disk.FailAfterWrites(2);
  EXPECT_TRUE(disk.Write("/1", ToBytes("a")).ok());
  EXPECT_TRUE(disk.Write("/2", ToBytes("b")).ok());
  EXPECT_FALSE(disk.Write("/3", ToBytes("c")).ok());
  EXPECT_FALSE(disk.Exists("/3"));
  disk.ClearFailure();
  EXPECT_TRUE(disk.Write("/3", ToBytes("c")).ok());
}

TEST(BlockDeviceTest, TornWritePersistsHalf) {
  BlockDevice disk;
  disk.FailAfterWrites(1, /*tear_last=*/true);
  EXPECT_FALSE(disk.Write("/t", ToBytes("0123456789")).ok());
  EXPECT_EQ(ToString(*disk.Read("/t")), "01234");
}

// ------------------------------------------------------------ MerkleTree

TEST(MerkleTest, EmptyTreeHasStableRoot) {
  MerkleTree a;
  MerkleTree b;
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.leaf_count(), 0u);
}

TEST(MerkleTest, RootChangesWithAnyLeaf) {
  std::vector<MerkleHash> leaves;
  for (int i = 0; i < 5; ++i) {
    leaves.push_back(MerkleTree::HashLeaf(ToBytes("block" + std::to_string(i))));
  }
  MerkleTree tree(leaves);
  MerkleHash original = tree.root();
  tree.UpdateLeaf(3, MerkleTree::HashLeaf(ToBytes("tampered")));
  EXPECT_NE(tree.root(), original);
  tree.UpdateLeaf(3, leaves[3]);
  EXPECT_EQ(tree.root(), original);
}

TEST(MerkleTest, IncrementalUpdateMatchesRebuild) {
  Rng rng(77);
  std::vector<MerkleHash> leaves;
  for (int i = 0; i < 9; ++i) {  // Non-power-of-two.
    leaves.push_back(MerkleTree::HashLeaf(rng.RandomBytes(100)));
  }
  MerkleTree incremental(leaves);
  leaves[4] = MerkleTree::HashLeaf(ToBytes("new"));
  incremental.UpdateLeaf(4, leaves[4]);
  MerkleTree rebuilt(leaves);
  EXPECT_EQ(incremental.root(), rebuilt.root());
}

TEST(MerkleTest, ResizeGrowsAndPreservesLeaves) {
  std::vector<MerkleHash> leaves = {MerkleTree::HashLeaf(ToBytes("a")),
                                    MerkleTree::HashLeaf(ToBytes("b"))};
  MerkleTree tree(leaves);
  ASSERT_TRUE(tree.ResizeLeaves(10).ok());
  EXPECT_EQ(tree.leaf_count(), 10u);
  EXPECT_EQ(*tree.LeafHash(0), leaves[0]);
  EXPECT_EQ(*tree.LeafHash(1), leaves[1]);
  EXPECT_FALSE(tree.ResizeLeaves(5).ok());  // No shrinking.
}

TEST(MerkleTest, AuthPathVerifies) {
  Rng rng(78);
  std::vector<MerkleHash> leaves;
  for (int i = 0; i < 13; ++i) {
    leaves.push_back(MerkleTree::HashLeaf(rng.RandomBytes(64)));
  }
  MerkleTree tree(leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    std::vector<MerkleHash> path = *tree.AuthPath(i);
    EXPECT_TRUE(MerkleTree::VerifyPath(tree.root(), i, leaves[i], path, leaves.size())) << i;
    // A wrong leaf must not verify.
    EXPECT_FALSE(MerkleTree::VerifyPath(tree.root(), i, MerkleTree::HashLeaf(ToBytes("x")),
                                        path, leaves.size()))
        << i;
  }
}

TEST(MerkleTest, PathForWrongIndexFails) {
  std::vector<MerkleHash> leaves = {MerkleTree::HashLeaf(ToBytes("a")),
                                    MerkleTree::HashLeaf(ToBytes("b"))};
  MerkleTree tree(leaves);
  std::vector<MerkleHash> path = *tree.AuthPath(0);
  EXPECT_FALSE(MerkleTree::VerifyPath(tree.root(), 1, leaves[0], path, 2));
  EXPECT_FALSE(tree.AuthPath(5).ok());
}

// ----------------------------------------------------------------- VDIR

class VdirTest : public ::testing::Test {
 protected:
  VdirTest() : rng_(201), tpm_(rng_) {
    MeasuredBoot();
    tpm_.TakeOwnership(rng_, {0, 1, 2});
  }

  void MeasuredBoot() {
    tpm_.PowerCycle();
    tpm_.MeasureAndExtend(0, ToBytes("fw"));
    tpm_.MeasureAndExtend(1, ToBytes("ldr"));
    tpm_.MeasureAndExtend(2, ToBytes("krn"));
  }

  VdirValue ValueOf(const std::string& s) { return crypto::Sha1::Hash(ToBytes(s)); }

  Rng rng_;
  tpm::Tpm tpm_;
  BlockDevice disk_;
};

TEST_F(VdirTest, FirstBootInitializes) {
  Result<VdirTable> table = VdirTable::Boot(&tpm_, &disk_);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->size(), 0u);
  EXPECT_TRUE(disk_.Exists(kStateCurrentPath));
  EXPECT_TRUE(disk_.Exists(kStateNewPath));
}

TEST_F(VdirTest, WriteAndRebootRecovers) {
  VdirTable table = *VdirTable::Boot(&tpm_, &disk_);
  VdirId id = *table.Allocate();
  ASSERT_TRUE(table.Write(id, ValueOf("root-hash-1")).ok());

  MeasuredBoot();
  VdirTable recovered = *VdirTable::Boot(&tpm_, &disk_);
  EXPECT_EQ(*recovered.Read(id), ValueOf("root-hash-1"));
}

TEST_F(VdirTest, ReplayedDiskAborted) {
  VdirTable table = *VdirTable::Boot(&tpm_, &disk_);
  VdirId id = *table.Allocate();
  table.Write(id, ValueOf("v1"));
  // An attacker snapshots the disk...
  Bytes old_current = *disk_.Read(kStateCurrentPath);
  Bytes old_new = *disk_.Read(kStateNewPath);
  // ...the system moves on...
  table.Write(id, ValueOf("v2"));
  // ...and the attacker re-images the disk while the machine is off.
  disk_.Write(kStateCurrentPath, old_current);
  disk_.Write(kStateNewPath, old_new);

  MeasuredBoot();
  Result<VdirTable> replayed = VdirTable::Boot(&tpm_, &disk_);
  EXPECT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), ErrorCode::kCorruption);
}

TEST_F(VdirTest, TamperedStateFileAborted) {
  VdirTable table = *VdirTable::Boot(&tpm_, &disk_);
  VdirId id = *table.Allocate();
  table.Write(id, ValueOf("v1"));
  (*disk_.MutableRaw(kStateCurrentPath))[9] ^= 1;
  (*disk_.MutableRaw(kStateNewPath))[9] ^= 1;
  MeasuredBoot();
  EXPECT_FALSE(VdirTable::Boot(&tpm_, &disk_).ok());
}

TEST_F(VdirTest, WrongKernelCannotBootVdirs) {
  { VdirTable table = *VdirTable::Boot(&tpm_, &disk_); }
  tpm_.PowerCycle();
  tpm_.MeasureAndExtend(0, ToBytes("fw"));
  tpm_.MeasureAndExtend(1, ToBytes("ldr"));
  tpm_.MeasureAndExtend(2, ToBytes("evil"));
  Result<VdirTable> booted = VdirTable::Boot(&tpm_, &disk_);
  EXPECT_FALSE(booted.ok());
  EXPECT_EQ(booted.status().code(), ErrorCode::kPermissionDenied);
}

// Power failure at each step of the 4-step flush: after "power returns",
// boot must recover a consistent table (either the old or the new value —
// never garbage, never an abort).
class VdirCrashTest : public VdirTest, public ::testing::WithParamInterface<int> {};

TEST_P(VdirCrashTest, CrashDuringFlushRecovers) {
  VdirTable table = *VdirTable::Boot(&tpm_, &disk_);
  VdirId id = *table.Allocate();
  ASSERT_TRUE(table.Write(id, ValueOf("committed")).ok());

  // The flush performs 2 disk writes (steps 1 and 4); DIR writes go to the
  // TPM and are not interrupted by this disk-failure model. Parameter = how
  // many disk writes survive before power dies (0: nothing persisted, 1:
  // only /proc/state/new, 2: everything — plus a torn variant).
  int surviving_writes = GetParam() / 2;
  bool tear = GetParam() % 2 == 1;
  disk_.FailAfterWrites(surviving_writes, tear);
  Status write = table.Write(id, ValueOf("in-flight"));
  if (surviving_writes < 2) {
    EXPECT_FALSE(write.ok());
  }

  // Power returns.
  disk_.ClearFailure();
  MeasuredBoot();
  Result<VdirTable> recovered = VdirTable::Boot(&tpm_, &disk_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Result<VdirValue> value = recovered->Read(id);
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(*value == ValueOf("committed") || *value == ValueOf("in-flight"));
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, VdirCrashTest, ::testing::Values(0, 1, 2, 3, 4));

// ----------------------------------------------------------------- VKEY

class VkeyTest : public VdirTest {
 protected:
  VkeyTest() : vkeys_(&tpm_, &rng_) {}
  VkeyTable vkeys_;
};

TEST_F(VkeyTest, CreateEncryptDecrypt) {
  VkeyId id = *vkeys_.Create();
  Bytes plain = ToBytes("sensitive");
  Bytes cipher = *vkeys_.Encrypt(id, 5, 0, plain);
  EXPECT_NE(cipher, plain);
  EXPECT_EQ(*vkeys_.Decrypt(id, 5, 0, cipher), plain);
}

TEST_F(VkeyTest, DistinctKeysDistinctStreams) {
  VkeyId a = *vkeys_.Create();
  VkeyId b = *vkeys_.Create();
  Bytes plain(64, 0);
  EXPECT_NE(*vkeys_.Encrypt(a, 1, 0, plain), *vkeys_.Encrypt(b, 1, 0, plain));
}

TEST_F(VkeyTest, DestroyedKeyUnusable) {
  VkeyId id = *vkeys_.Create();
  ASSERT_TRUE(vkeys_.Destroy(id).ok());
  EXPECT_FALSE(vkeys_.Encrypt(id, 1, 0, ToBytes("x")).ok());
  EXPECT_FALSE(vkeys_.Destroy(id).ok());
}

TEST_F(VkeyTest, ExternalizeInternalizeRoundTrip) {
  VkeyId id = *vkeys_.Create();
  Bytes cipher = *vkeys_.Encrypt(id, 9, 0, ToBytes("data"));
  Bytes blob = *vkeys_.Externalize(id);
  VkeyId restored = *vkeys_.Internalize(blob);
  EXPECT_EQ(*vkeys_.Decrypt(restored, 9, 0, cipher), ToBytes("data"));
}

TEST_F(VkeyTest, WrappingUnderAnotherVkey) {
  VkeyId wrapping = *vkeys_.Create();
  VkeyId id = *vkeys_.Create();
  Bytes blob = *vkeys_.Externalize(id, wrapping);
  // Unwrapping with the wrong key fails the integrity check.
  EXPECT_FALSE(vkeys_.Internalize(blob, 0).ok());
  EXPECT_TRUE(vkeys_.Internalize(blob, wrapping).ok());
}

TEST_F(VkeyTest, TamperedBlobRejected) {
  VkeyId id = *vkeys_.Create();
  Bytes blob = *vkeys_.Externalize(id);
  blob[blob.size() - 1] ^= 1;
  Result<VkeyId> restored = vkeys_.Internalize(blob);
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), ErrorCode::kCorruption);
}

// ------------------------------------------------------------------ SSR

class SsrTest : public VdirTest {
 protected:
  SsrTest()
      : vdirs_(*VdirTable::Boot(&tpm_, &disk_)),
        vkeys_(&tpm_, &rng_),
        ssrs_(&disk_, &vdirs_, &vkeys_) {}

  VdirTable vdirs_;
  VkeyTable vkeys_;
  SsrManager ssrs_;
};

TEST_F(SsrTest, WriteReadRoundTrip) {
  SsrId id = *ssrs_.Create(/*encrypted=*/false);
  Bytes data = ToBytes("attested storage region contents");
  ASSERT_TRUE(ssrs_.Write(id, 0, data).ok());
  EXPECT_EQ(*ssrs_.Read(id, 0, data.size()), data);
  EXPECT_EQ(*ssrs_.Size(id), data.size());
}

TEST_F(SsrTest, MultiBlockAndPartialReads) {
  SsrId id = *ssrs_.Create(false);
  Rng rng(303);
  Bytes data = rng.RandomBytes(3000);  // Spans 3 blocks at 1 kB.
  ASSERT_TRUE(ssrs_.Write(id, 0, data).ok());
  // Partial read crossing a block boundary verifies only relevant blocks.
  Bytes middle = *ssrs_.Read(id, 900, 300);
  EXPECT_EQ(middle, Bytes(data.begin() + 900, data.begin() + 1200));
}

TEST_F(SsrTest, OverwriteInMiddle) {
  SsrId id = *ssrs_.Create(false);
  ssrs_.Write(id, 0, Bytes(2500, 'a'));
  ssrs_.Write(id, 1000, ToBytes("XYZ"));
  Bytes out = *ssrs_.Read(id, 998, 7);
  EXPECT_EQ(ToString(out), "aaXYZaa");
}

TEST_F(SsrTest, ReadPastEndFails) {
  SsrId id = *ssrs_.Create(false);
  ssrs_.Write(id, 0, ToBytes("abc"));
  EXPECT_FALSE(ssrs_.Read(id, 0, 4).ok());
}

TEST_F(SsrTest, EncryptedRegionIsOpaqueOnDisk) {
  VkeyId key = *vkeys_.Create();
  SsrId id = *ssrs_.Create(/*encrypted=*/true, key, /*nonce=*/1234);
  Bytes secret = ToBytes("this plaintext must not appear on disk");
  ssrs_.Write(id, 0, secret);

  Result<Bytes> on_disk = disk_.Read("ssr/" + std::to_string(id) + "/block/0");
  ASSERT_TRUE(on_disk.ok());
  std::string raw = ToString(*on_disk);
  EXPECT_EQ(raw.find("plaintext"), std::string::npos);
  EXPECT_EQ(*ssrs_.Read(id, 0, secret.size()), secret);
}

TEST_F(SsrTest, TamperedBlockDetected) {
  SsrId id = *ssrs_.Create(false);
  ssrs_.Write(id, 0, Bytes(2048, 'x'));
  (*disk_.MutableRaw("ssr/" + std::to_string(id) + "/block/1"))[5] ^= 1;
  Result<Bytes> read = ssrs_.Read(id, 0, 2048);
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), ErrorCode::kCorruption);
  // Untouched block still readable (demand verification).
  EXPECT_TRUE(ssrs_.Read(id, 0, 1024).ok());
}

TEST_F(SsrTest, RecoverAfterRebootPreservesData) {
  SsrId id = *ssrs_.Create(false);
  Bytes data = ToBytes("survives reboot");
  ssrs_.Write(id, 0, data);

  MeasuredBoot();
  VdirTable vdirs2 = *VdirTable::Boot(&tpm_, &disk_);
  SsrManager ssrs2(&disk_, &vdirs2, &vkeys_);
  ASSERT_TRUE(ssrs2.Recover().ok());
  EXPECT_EQ(*ssrs2.Read(id, 0, data.size()), data);
}

TEST_F(SsrTest, ReplayedSsrImageDetectedAtRecovery) {
  SsrId id = *ssrs_.Create(false);
  ssrs_.Write(id, 0, ToBytes("version-1"));
  Bytes old_block = *disk_.Read("ssr/" + std::to_string(id) + "/block/0");
  Bytes old_meta = *disk_.Read("ssr/" + std::to_string(id) + "/meta");
  ssrs_.Write(id, 0, ToBytes("version-2"));

  // Attacker restores the old SSR image while the machine is off.
  disk_.Write("ssr/" + std::to_string(id) + "/block/0", old_block);
  disk_.Write("ssr/" + std::to_string(id) + "/meta", old_meta);

  MeasuredBoot();
  VdirTable vdirs2 = *VdirTable::Boot(&tpm_, &disk_);
  SsrManager ssrs2(&disk_, &vdirs2, &vkeys_);
  Status recovered = ssrs2.Recover();
  EXPECT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.code(), ErrorCode::kCorruption);
}

TEST_F(SsrTest, DestroyRemovesRegion) {
  SsrId id = *ssrs_.Create(false);
  ssrs_.Write(id, 0, ToBytes("bye"));
  ASSERT_TRUE(ssrs_.Destroy(id).ok());
  EXPECT_FALSE(ssrs_.Read(id, 0, 1).ok());
  EXPECT_FALSE(disk_.Exists("ssr/" + std::to_string(id) + "/block/0"));
}

TEST_F(SsrTest, ManyRegionsIndependent) {
  SsrId a = *ssrs_.Create(false);
  SsrId b = *ssrs_.Create(false);
  ssrs_.Write(a, 0, ToBytes("AAAA"));
  ssrs_.Write(b, 0, ToBytes("BBBB"));
  EXPECT_EQ(ToString(*ssrs_.Read(a, 0, 4)), "AAAA");
  EXPECT_EQ(ToString(*ssrs_.Read(b, 0, 4)), "BBBB");
}

// Property sweep: random write/read sequences against a reference model.
class SsrPropertyTest : public SsrTest, public ::testing::WithParamInterface<uint64_t> {};

TEST_P(SsrPropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  bool encrypted = rng.NextBool(0.5);
  VkeyId key = encrypted ? *vkeys_.Create() : 0;
  SsrId id = *ssrs_.Create(encrypted, key, rng.NextU64());

  Bytes model;
  for (int step = 0; step < 30; ++step) {
    uint64_t offset = rng.NextBelow(4000);
    size_t length = 1 + rng.NextBelow(1500);
    Bytes data = rng.RandomBytes(length);
    ASSERT_TRUE(ssrs_.Write(id, offset, data).ok());
    if (model.size() < offset + length) {
      model.resize(offset + length, 0);
    }
    std::copy(data.begin(), data.end(), model.begin() + static_cast<ptrdiff_t>(offset));

    // Random verification read.
    uint64_t roff = rng.NextBelow(model.size());
    size_t rlen = 1 + rng.NextBelow(model.size() - roff);
    Result<Bytes> got = ssrs_.Read(id, roff, rlen);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, Bytes(model.begin() + static_cast<ptrdiff_t>(roff),
                          model.begin() + static_cast<ptrdiff_t>(roff + rlen)));
  }
  EXPECT_EQ(*ssrs_.Size(id), model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsrPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace nexus::storage
