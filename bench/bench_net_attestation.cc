// Distributed attestation costs: the cross-instance analogue of Fig. 6's
// three-orders-of-magnitude gap between system-backed and cryptographic
// credentials.
//
//   handshake    : full attested channel establishment (2 NK signatures,
//                  4 RSA verifications, key derivation)
//   cert trip    : externalize a label, ship it, verify + import remotely
//   remote query : one authority consultation crossing the channel
//                  (HMAC + AES framing both ways, no RSA)
//
// Expected shape: handshake and certificate shipping are RSA-dominated;
// established-channel queries are symmetric-crypto cheap, which is why
// untransferable authority answers stay practical over the network.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "nal/parser.h"
#include "net/cert_exchange.h"
#include "net/node.h"
#include "net/remote_authority.h"
#include "net/transport.h"
#include "tpm/tpm.h"

namespace {

using nexus::Rng;
using nexus::ToBytes;

struct NetHarness {
  NetHarness()
      : rng_a(101),
        rng_b(202),
        tpm_a(rng_a),
        tpm_b(rng_b),
        nexus_a(&tpm_a, nexus::core::NexusOptions{.seed = 1}),
        nexus_b(&tpm_b, nexus::core::NexusOptions{.seed = 2}) {
    nexus_a.RegisterPeer("b", tpm_b.endorsement_public_key());
    nexus_b.RegisterPeer("a", tpm_a.endorsement_public_key());
  }

  Rng rng_a, rng_b;
  nexus::tpm::Tpm tpm_a, tpm_b;
  nexus::core::Nexus nexus_a, nexus_b;
};

NetHarness& H() {
  static NetHarness harness;
  return harness;
}

void BM_AttestedHandshake(benchmark::State& state) {
  NetHarness& h = H();
  for (auto _ : state) {
    nexus::net::Transport transport(7);
    nexus::net::NetNode node_a(&h.nexus_a, &transport, "a");
    nexus::net::NetNode node_b(&h.nexus_b, &transport, "b");
    auto channel = node_a.Connect("b");
    benchmark::DoNotOptimize(channel);
    if (!channel.ok() || !(*channel)->established()) {
      state.SkipWithError("handshake failed");
      return;
    }
  }
}
BENCHMARK(BM_AttestedHandshake)->Unit(benchmark::kMicrosecond);

struct EstablishedPair {
  EstablishedPair()
      : transport(7),
        node_a(&H().nexus_a, &transport, "a"),
        node_b(&H().nexus_b, &transport, "b"),
        importer(&node_a, *H().nexus_a.CreateProcess("gateway", ToBytes("g"))),
        pusher(&node_b, 0),
        prover(*H().nexus_b.CreateProcess("bench-prover", ToBytes("p"))),
        authority_service(&node_b),
        always_yes(
            [](const nexus::nal::Formula&) { return true; },
            [](const nexus::nal::Formula&) { return true; }),
        remote(&node_a, "b", nullptr, /*default_timeout_us=*/1000000) {
    authority_service.AddAuthority(&always_yes);
    node_a.Connect("b");
  }

  nexus::net::Transport transport;
  nexus::net::NetNode node_a, node_b;
  nexus::net::CertificateExchange importer, pusher;
  nexus::kernel::ProcessId prover;
  nexus::net::AuthorityService authority_service;
  nexus::core::LambdaAuthority always_yes;
  nexus::net::RemoteAuthority remote;
};

EstablishedPair& P() {
  static EstablishedPair pair;
  return pair;
}

void BM_CertificateRoundTrip(benchmark::State& state) {
  EstablishedPair& p = P();
  uint64_t i = 0;
  for (auto _ : state) {
    // A fresh statement each time so import is never the idempotent no-op.
    auto label = H().nexus_b.engine().Say(p.prover, "bench" + std::to_string(i++) + "()");
    auto shipped = p.pusher.PushLabel("a", p.prover, *label);
    benchmark::DoNotOptimize(shipped);
    if (!shipped.ok()) {
      state.SkipWithError("certificate push failed");
      return;
    }
  }
}
BENCHMARK(BM_CertificateRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_RemoteAuthorityQuery(benchmark::State& state) {
  EstablishedPair& p = P();
  nexus::nal::Formula statement = *nexus::nal::ParseFormula("Session says sessionActive(u)");
  for (auto _ : state) {
    bool vouched = p.remote.Vouches(statement);
    benchmark::DoNotOptimize(vouched);
    if (!vouched) {
      state.SkipWithError("remote authority denied");
      return;
    }
  }
}
BENCHMARK(BM_RemoteAuthorityQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

NEXUS_BENCHMARK_MAIN();
