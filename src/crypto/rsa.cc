#include "crypto/rsa.h"

#include "crypto/sha256.h"

namespace nexus::crypto {

namespace {

constexpr uint8_t kDigestPrefix[] = {'N', 'X', 'S', '2', '5', '6'};

// EMSA-PKCS1-v1_5-shaped encoding: 0x00 0x01 FF..FF 0x00 prefix digest.
Bytes EncodeDigest(ByteView message, size_t em_len) {
  Sha256Digest digest = Sha256::Hash(message);
  size_t t_len = sizeof(kDigestPrefix) + digest.size();
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  size_t pad = em_len - t_len - 3;
  em.insert(em.end(), pad, 0xff);
  em.push_back(0x00);
  em.insert(em.end(), kDigestPrefix, kDigestPrefix + sizeof(kDigestPrefix));
  em.insert(em.end(), digest.begin(), digest.end());
  return em;
}

}  // namespace

Bytes RsaPublicKey::Serialize() const {
  Bytes out;
  AppendLengthPrefixed(out, n.ToBytes());
  AppendLengthPrefixed(out, e.ToBytes());
  return out;
}

Result<RsaPublicKey> RsaPublicKey::Deserialize(ByteView data) {
  ByteReader reader(data);
  Result<Bytes> n_bytes = reader.ReadLengthPrefixed();
  if (!n_bytes.ok()) {
    return n_bytes.status();
  }
  Result<Bytes> e_bytes = reader.ReadLengthPrefixed();
  if (!e_bytes.ok()) {
    return e_bytes.status();
  }
  RsaPublicKey key;
  key.n = BigNum::FromBytes(*n_bytes);
  key.e = BigNum::FromBytes(*e_bytes);
  if (key.n.IsZero() || key.e.IsZero()) {
    return InvalidArgument("degenerate RSA public key");
  }
  return key;
}

std::string RsaPublicKey::Fingerprint() const {
  return Sha256Hex(Serialize());
}

RsaKeyPair GenerateRsaKeyPair(Rng& rng, int modulus_bits) {
  int prime_bits = modulus_bits / 2;
  BigNum e(65537);
  for (;;) {
    BigNum p = GeneratePrime(rng, prime_bits);
    BigNum q = GeneratePrime(rng, prime_bits);
    if (p == q) {
      continue;
    }
    BigNum n = BigNum::Mul(p, q);
    BigNum phi = BigNum::Mul(BigNum::Sub(p, BigNum(1)), BigNum::Sub(q, BigNum(1)));
    if (BigNum::Compare(BigNum::Gcd(e, phi), BigNum(1)) != 0) {
      continue;
    }
    BigNum d = BigNum::ModInverse(e, phi);
    if (d.IsZero()) {
      continue;
    }
    RsaKeyPair pair;
    pair.public_key = RsaPublicKey{n, e};
    pair.private_key = RsaPrivateKey{n, e, d};
    return pair;
  }
}

Bytes RsaSign(const RsaPrivateKey& key, ByteView message) {
  size_t em_len = static_cast<size_t>((key.n.BitLength() + 7) / 8);
  Bytes em = EncodeDigest(message, em_len);
  BigNum m = BigNum::FromBytes(em);
  BigNum s = BigNum::ModExp(m, key.d, key.n);
  Bytes sig = s.ToBytes();
  // Left-pad to the modulus length for a fixed-width signature.
  if (sig.size() < em_len) {
    Bytes padded(em_len - sig.size(), 0);
    Append(padded, sig);
    return padded;
  }
  return sig;
}

bool RsaVerify(const RsaPublicKey& key, ByteView message, ByteView signature) {
  size_t em_len = static_cast<size_t>((key.n.BitLength() + 7) / 8);
  if (signature.size() != em_len) {
    return false;
  }
  BigNum s = BigNum::FromBytes(signature);
  if (BigNum::Compare(s, key.n) >= 0) {
    return false;
  }
  BigNum m = BigNum::ModExp(s, key.e, key.n);
  Bytes recovered = m.ToBytes();
  // Restore stripped leading zeros.
  Bytes em(em_len, 0);
  if (recovered.size() > em_len) {
    return false;
  }
  std::copy(recovered.begin(), recovered.end(), em.end() - static_cast<ptrdiff_t>(recovered.size()));
  Bytes expected = EncodeDigest(message, em_len);
  return ConstantTimeEquals(em, expected);
}

Result<Bytes> RsaEncrypt(const RsaPublicKey& key, ByteView message, Rng& rng) {
  size_t em_len = static_cast<size_t>((key.n.BitLength() + 7) / 8);
  if (message.size() + 11 > em_len) {
    return InvalidArgument("RSA plaintext too long for the modulus");
  }
  // 0x00 0x02 <nonzero random padding> 0x00 <message>.
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x02);
  for (size_t i = 0; i < em_len - message.size() - 3; ++i) {
    uint8_t pad = 0;
    while (pad == 0) {
      pad = static_cast<uint8_t>(rng.NextBelow(256));
    }
    em.push_back(pad);
  }
  em.push_back(0x00);
  Append(em, message);
  BigNum m = BigNum::FromBytes(em);
  BigNum c = BigNum::ModExp(m, key.e, key.n);
  Bytes out = c.ToBytes();
  if (out.size() < em_len) {
    Bytes padded(em_len - out.size(), 0);
    Append(padded, out);
    return padded;
  }
  return out;
}

Result<Bytes> RsaDecrypt(const RsaPrivateKey& key, ByteView ciphertext) {
  size_t em_len = static_cast<size_t>((key.n.BitLength() + 7) / 8);
  if (ciphertext.size() != em_len) {
    return InvalidArgument("RSA ciphertext has the wrong length");
  }
  BigNum c = BigNum::FromBytes(ciphertext);
  if (BigNum::Compare(c, key.n) >= 0) {
    return InvalidArgument("RSA ciphertext out of range");
  }
  BigNum m = BigNum::ModExp(c, key.d, key.n);
  Bytes stripped = m.ToBytes();  // Leading 0x00 of the padding is stripped.
  if (stripped.size() + 1 > em_len) {
    return InvalidArgument("malformed RSA plaintext");
  }
  Bytes em(em_len - stripped.size(), 0);
  Append(em, stripped);
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) {
    return InvalidArgument("bad RSA encryption padding");
  }
  size_t separator = 2;
  while (separator < em.size() && em[separator] != 0x00) {
    ++separator;
  }
  if (separator < 10 || separator == em.size()) {
    return InvalidArgument("bad RSA encryption padding");
  }
  return Bytes(em.begin() + static_cast<ptrdiff_t>(separator) + 1, em.end());
}

}  // namespace nexus::crypto
