// Simulated secondary storage with failure injection.
//
// A named-region byte store standing in for the disk. Two adversarial
// behaviours the paper's §3.3 protocol must survive are modeled:
//   - power failure: after N more writes, every subsequent write fails
//     (optionally tearing the Nth write in half), and
//   - offline tampering/replay: tests mutate regions directly between
//     "boots" to simulate re-imaging a disk.
#ifndef NEXUS_STORAGE_BLOCKDEV_H_
#define NEXUS_STORAGE_BLOCKDEV_H_

#include <map>
#include <string>

#include "util/bytes.h"
#include "util/status.h"

namespace nexus::storage {

class BlockDevice {
 public:
  struct Stats {
    uint64_t writes = 0;
    uint64_t reads = 0;
    uint64_t failed_writes = 0;
  };

  Status Write(const std::string& name, ByteView data);
  Result<Bytes> Read(const std::string& name) const;
  bool Exists(const std::string& name) const { return regions_.contains(name); }
  Status Delete(const std::string& name);

  // Power-failure injection: the next `n` writes succeed, after which all
  // writes fail. If `tear_last`, the n-th write persists only its first
  // half (a torn sector).
  void FailAfterWrites(int n, bool tear_last = false);
  // Restores normal operation (power back on).
  void ClearFailure();
  bool failed() const { return armed_ && remaining_writes_ < 0; }

  // Direct mutation for offline-attack tests.
  Bytes* MutableRaw(const std::string& name);

  const Stats& stats() const { return stats_; }

 private:
  std::map<std::string, Bytes> regions_;
  bool armed_ = false;
  bool tear_last_ = false;
  int remaining_writes_ = 0;
  Stats stats_;
};

}  // namespace nexus::storage

#endif  // NEXUS_STORAGE_BLOCKDEV_H_
