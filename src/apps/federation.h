// Federated human-presence (§4 Not-A-Bot, stretched across two machines).
//
// The scenario the net/ subsystem exists for: Fauxbook runs on a provider
// instance, the user's keyboard lives on their home instance. The home
// keyboard driver mints a TPM-rooted keypress certificate (NotABot), a
// CertificateExchange ships it over an attested channel, and the provider's
// guard admits the signup only if
//   (a) the imported credential — speaker
//       tpm.<ek>.nexus.<nk>.boot.<nbk>.ipd.<driver> — shows enough
//       keypresses, and
//   (b) a RemoteAuthority query crossing back to the home instance confirms
//       the session is still live (fresh dynamic state, never cached).
// Labels travel as indefinitely-valid certificates; liveness travels as
// untransferable authority answers — the paper's split, now distributed.
#ifndef NEXUS_APPS_FEDERATION_H_
#define NEXUS_APPS_FEDERATION_H_

#include <memory>
#include <set>
#include <string>

#include "apps/fauxbook.h"
#include "apps/notabot.h"
#include "core/nexus.h"
#include "net/cert_exchange.h"
#include "net/remote_authority.h"

namespace nexus::apps {

class PresenceFederation {
 public:
  struct Config {
    net::NodeId provider_node = "provider";
    net::NodeId home_node = "home";
    uint64_t min_keypresses = 100;
    uint64_t remote_timeout_us = 10000;
  };

  // Registers each instance's EK as a trust anchor of the other, attaches
  // both to the transport, and stands up the exchange + authority services.
  PresenceFederation(core::Nexus* provider, core::Nexus* home, net::Transport* transport);
  PresenceFederation(core::Nexus* provider, core::Nexus* home, net::Transport* transport,
                     const Config& config);

  // Establishes the attested channel (either side may initiate; the
  // provider does here).
  Status Connect();

  // ------------------------------------------------------------ home side
  // Physical keypresses in a session (only the driver sees these).
  void Type(const std::string& session, int presses);
  // Mints <driver> says keypresses(session, n), externalizes it, and ships
  // the certificate to the provider.
  Status ShipPresence(const std::string& session);
  // Ends the session: the remote authority stops vouching immediately.
  void EndSession(const std::string& session);

  // -------------------------------------------------------- provider side
  // The guarded signup: finds the imported presence credential, checks the
  // threshold, and runs the guard with a proof combining the credential
  // premise and the cross-instance session-liveness authority leaf.
  Status SignUp(const std::string& session);
  // Posting requires a completed signup.
  Status Post(const std::string& session, const std::string& text);

  // OK iff construction wired everything (peer pinning, driver process).
  Status init_status() const { return init_status_; }

  Fauxbook& fauxbook() { return *fauxbook_; }
  net::NetNode& provider_net() { return *provider_net_; }
  net::NetNode& home_net() { return *home_net_; }
  net::CertificateExchange& exchange() { return *exchange_; }
  net::RemoteAuthority& session_authority() { return *remote_sessions_; }
  kernel::ProcessId home_driver_pid() const { return driver_pid_; }

 private:
  static constexpr const char* kSignupObject = "fauxbook:federation";

  core::Nexus* provider_;
  core::Nexus* home_;
  Config config_;
  Status init_status_;

  std::unique_ptr<net::NetNode> provider_net_;
  std::unique_ptr<net::NetNode> home_net_;
  std::unique_ptr<Fauxbook> fauxbook_;
  std::unique_ptr<net::CertificateExchange> exchange_;
  std::unique_ptr<net::CertificateExchange> home_exchange_;
  std::unique_ptr<net::AuthorityService> home_authority_service_;
  std::unique_ptr<core::LambdaAuthority> session_liveness_;
  std::unique_ptr<net::RemoteAuthority> remote_sessions_;

  kernel::ProcessId driver_pid_ = 0;
  std::unique_ptr<KeyboardDriver> driver_;
  std::set<std::string> live_sessions_;
  std::set<std::string> signed_up_;
};

}  // namespace nexus::apps

#endif  // NEXUS_APPS_FEDERATION_H_
