#include "nal/checker.h"

#include <set>

namespace nexus::nal {

namespace {

// Conclusion of a node plus bookkeeping needed to validate enclosing rules.
struct NodeInfo {
  Formula f;
  // Speakers of all premise/authority leaves used below this node. A
  // says-introduction P says F is only admitted when every fact used to
  // derive F is already attributed to P (all deduction in NAL is local to a
  // worldview).
  std::set<std::string> speakers;
  // Indices (into the assumption stack) of open hypotheses used below.
  std::set<int> open_assumptions;
};

class Checker {
 public:
  Checker(const std::vector<Formula>& credentials, const AuthorityCallback& authority)
      : credentials_(credentials), authority_(authority) {}

  Result<NodeInfo> Conclude(const Proof& p) {
    ++rules_applied_;
    switch (p->rule()) {
      case ProofRule::kPremise:
        return ConcludePremise(p);
      case ProofRule::kAssumption:
        return ConcludeAssumption(p);
      case ProofRule::kAuthority:
        return ConcludeAuthority(p);
      case ProofRule::kSubprincipal:
        return ConcludeSubprincipal(p);
      case ProofRule::kAndIntro:
        return ConcludeAndIntro(p);
      case ProofRule::kAndElimL:
      case ProofRule::kAndElimR:
        return ConcludeAndElim(p);
      case ProofRule::kOrIntroL:
      case ProofRule::kOrIntroR:
        return ConcludeOrIntro(p);
      case ProofRule::kOrElim:
        return ConcludeOrElim(p);
      case ProofRule::kImpliesIntro:
        return ConcludeImpliesIntro(p);
      case ProofRule::kImpliesElim:
        return ConcludeImpliesElim(p);
      case ProofRule::kDoubleNegIntro:
        return ConcludeDoubleNegIntro(p);
      case ProofRule::kSaysIntro:
        return ConcludeSaysIntro(p);
      case ProofRule::kSaysImpliesElim:
        return ConcludeSaysImpliesElim(p);
      case ProofRule::kSaysAndIntro:
        return ConcludeSaysAndIntro(p);
      case ProofRule::kSaysAndElimL:
      case ProofRule::kSaysAndElimR:
        return ConcludeSaysAndElim(p);
      case ProofRule::kSpeaksForElim:
        return ConcludeSpeaksForElim(p);
      case ProofRule::kSpeaksForTrans:
        return ConcludeSpeaksForTrans(p);
      case ProofRule::kHandoff:
        return ConcludeHandoff(p);
    }
    return Internal("unknown proof rule");
  }

  bool used_authority() const { return used_authority_; }
  bool missing_credential() const { return missing_credential_; }
  int rules_applied() const { return rules_applied_; }

 private:
  static Status Malformed(const Proof& p, const std::string& what) {
    return PermissionDenied(std::string(ProofRuleName(p->rule())) + ": " + what);
  }

  Result<NodeInfo> ConcludeChild(const Proof& p, size_t index) { return Conclude(p->children()[index]); }

  Status ExpectChildren(const Proof& p, size_t n) {
    if (p->children().size() != n) {
      return Malformed(p, "expected " + std::to_string(n) + " subproofs, got " +
                              std::to_string(p->children().size()));
    }
    return OkStatus();
  }

  Result<NodeInfo> ConcludePremise(const Proof& p) {
    if (p->aux() == nullptr) {
      return Malformed(p, "missing formula");
    }
    if (p->aux()->kind() == FormulaKind::kTrue) {
      return NodeInfo{p->aux(), {}, {}};
    }
    for (const Formula& cred : credentials_) {
      if (Equals(cred, p->aux())) {
        NodeInfo info{p->aux(), {}, {}};
        if (cred->kind() == FormulaKind::kSays) {
          info.speakers.insert(cred->speaker().ToString());
        } else {
          // A non-says premise is attributable to no principal; poison
          // says-introduction with a marker speaker.
          info.speakers.insert("*unattributed*");
        }
        return info;
      }
    }
    missing_credential_ = true;
    return PermissionDenied("premise not among supplied credentials: " + p->aux()->ToString());
  }

  Result<NodeInfo> ConcludeAssumption(const Proof& p) {
    if (p->aux() == nullptr) {
      return Malformed(p, "missing formula");
    }
    for (size_t i = assumptions_.size(); i-- > 0;) {
      if (Equals(assumptions_[i], p->aux())) {
        NodeInfo info{p->aux(), {}, {}};
        info.open_assumptions.insert(static_cast<int>(i));
        return info;
      }
    }
    return PermissionDenied("assumption not open: " + p->aux()->ToString());
  }

  Result<NodeInfo> ConcludeAuthority(const Proof& p) {
    if (p->aux() == nullptr) {
      return Malformed(p, "missing formula");
    }
    if (!authority_) {
      return Unavailable("proof requires an authority but none is reachable");
    }
    used_authority_ = true;
    if (!authority_(p->aux())) {
      return PermissionDenied("authority declined to vouch for: " + p->aux()->ToString());
    }
    NodeInfo info{p->aux(), {}, {}};
    if (p->aux()->kind() == FormulaKind::kSays) {
      info.speakers.insert(p->aux()->speaker().ToString());
    } else {
      info.speakers.insert("*unattributed*");
    }
    return info;
  }

  Result<NodeInfo> ConcludeSubprincipal(const Proof& p) {
    const Formula& f = p->aux();
    if (f == nullptr || f->kind() != FormulaKind::kSpeaksFor || f->on_scope().has_value()) {
      return Malformed(p, "conclusion must be an unscoped speaksfor");
    }
    if (!f->delegator().IsPrefixOf(f->delegatee()) || f->delegator() == f->delegatee()) {
      return Malformed(p, f->delegatee().ToString() + " is not a proper subprincipal of " +
                              f->delegator().ToString());
    }
    return NodeInfo{f, {}, {}};
  }

  Result<NodeInfo> ConcludeAndIntro(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 2));
    Result<NodeInfo> l = ConcludeChild(p, 0);
    if (!l.ok()) {
      return l;
    }
    Result<NodeInfo> r = ConcludeChild(p, 1);
    if (!r.ok()) {
      return r;
    }
    return Merge(FormulaNode::And(l->f, r->f), *l, *r);
  }

  Result<NodeInfo> ConcludeAndElim(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 1));
    Result<NodeInfo> child = ConcludeChild(p, 0);
    if (!child.ok()) {
      return child;
    }
    if (child->f->kind() != FormulaKind::kAnd) {
      return Malformed(p, "subproof does not conclude a conjunction");
    }
    Formula out =
        (p->rule() == ProofRule::kAndElimL) ? child->f->child1() : child->f->child2();
    return NodeInfo{out, child->speakers, child->open_assumptions};
  }

  Result<NodeInfo> ConcludeOrIntro(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 1));
    if (p->aux() == nullptr) {
      return Malformed(p, "missing the other disjunct");
    }
    Result<NodeInfo> child = ConcludeChild(p, 0);
    if (!child.ok()) {
      return child;
    }
    Formula out = (p->rule() == ProofRule::kOrIntroL)
                      ? FormulaNode::Or(child->f, p->aux())
                      : FormulaNode::Or(p->aux(), child->f);
    return NodeInfo{out, child->speakers, child->open_assumptions};
  }

  Result<NodeInfo> ConcludeOrElim(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 3));
    Result<NodeInfo> disj = ConcludeChild(p, 0);
    if (!disj.ok()) {
      return disj;
    }
    if (disj->f->kind() != FormulaKind::kOr) {
      return Malformed(p, "first subproof does not conclude a disjunction");
    }
    Result<NodeInfo> left = ConcludeChild(p, 1);
    if (!left.ok()) {
      return left;
    }
    Result<NodeInfo> right = ConcludeChild(p, 2);
    if (!right.ok()) {
      return right;
    }
    if (left->f->kind() != FormulaKind::kImplies || right->f->kind() != FormulaKind::kImplies) {
      return Malformed(p, "case subproofs must conclude implications");
    }
    if (!Equals(left->f->child1(), disj->f->child1()) ||
        !Equals(right->f->child1(), disj->f->child2())) {
      return Malformed(p, "case antecedents do not match the disjuncts");
    }
    if (!Equals(left->f->child2(), right->f->child2())) {
      return Malformed(p, "case conclusions differ");
    }
    NodeInfo merged = *disj;
    MergeInto(merged, *left);
    MergeInto(merged, *right);
    merged.f = left->f->child2();
    return merged;
  }

  Result<NodeInfo> ConcludeImpliesIntro(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 1));
    if (p->aux() == nullptr) {
      return Malformed(p, "missing assumption formula");
    }
    assumptions_.push_back(p->aux());
    int index = static_cast<int>(assumptions_.size()) - 1;
    Result<NodeInfo> body = ConcludeChild(p, 0);
    assumptions_.pop_back();
    if (!body.ok()) {
      return body;
    }
    NodeInfo out = *body;
    out.open_assumptions.erase(index);  // Discharged.
    out.f = FormulaNode::Implies(p->aux(), body->f);
    return out;
  }

  Result<NodeInfo> ConcludeImpliesElim(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 2));
    Result<NodeInfo> imp = ConcludeChild(p, 0);
    if (!imp.ok()) {
      return imp;
    }
    if (imp->f->kind() != FormulaKind::kImplies) {
      return Malformed(p, "first subproof does not conclude an implication");
    }
    Result<NodeInfo> ant = ConcludeChild(p, 1);
    if (!ant.ok()) {
      return ant;
    }
    if (!Equals(imp->f->child1(), ant->f)) {
      return Malformed(p, "antecedent mismatch: implication expects " +
                              imp->f->child1()->ToString() + " but subproof concludes " +
                              ant->f->ToString());
    }
    return Merge(imp->f->child2(), *imp, *ant);
  }

  Result<NodeInfo> ConcludeDoubleNegIntro(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 1));
    Result<NodeInfo> child = ConcludeChild(p, 0);
    if (!child.ok()) {
      return child;
    }
    NodeInfo out = *child;
    out.f = FormulaNode::Not(FormulaNode::Not(child->f));
    return out;
  }

  Result<NodeInfo> ConcludeSaysIntro(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 1));
    Result<NodeInfo> child = ConcludeChild(p, 0);
    if (!child.ok()) {
      return child;
    }
    if (!child->open_assumptions.empty()) {
      return Malformed(p, "subproof uses open hypotheses");
    }
    const std::string speaker_name = p->principal().ToString();
    for (const std::string& used : child->speakers) {
      if (used != speaker_name) {
        return Malformed(p, "subproof uses facts by " + used +
                                ", not attributable to " + speaker_name);
      }
    }
    NodeInfo out = *child;
    out.f = FormulaNode::Says(p->principal(), child->f);
    out.speakers = {speaker_name};
    return out;
  }

  Result<NodeInfo> ConcludeSaysImpliesElim(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 2));
    Result<NodeInfo> imp = ConcludeChild(p, 0);
    if (!imp.ok()) {
      return imp;
    }
    Result<NodeInfo> ant = ConcludeChild(p, 1);
    if (!ant.ok()) {
      return ant;
    }
    if (imp->f->kind() != FormulaKind::kSays || ant->f->kind() != FormulaKind::kSays) {
      return Malformed(p, "both subproofs must conclude says-formulas");
    }
    if (!(imp->f->speaker() == ant->f->speaker())) {
      return Malformed(p, "speakers differ");
    }
    const Formula& body = imp->f->child1();
    if (body->kind() != FormulaKind::kImplies) {
      return Malformed(p, "first speaker statement is not an implication");
    }
    if (!Equals(body->child1(), ant->f->child1())) {
      return Malformed(p, "antecedent mismatch inside says");
    }
    return Merge(FormulaNode::Says(imp->f->speaker(), body->child2()), *imp, *ant);
  }

  Result<NodeInfo> ConcludeSaysAndIntro(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 2));
    Result<NodeInfo> l = ConcludeChild(p, 0);
    if (!l.ok()) {
      return l;
    }
    Result<NodeInfo> r = ConcludeChild(p, 1);
    if (!r.ok()) {
      return r;
    }
    if (l->f->kind() != FormulaKind::kSays || r->f->kind() != FormulaKind::kSays ||
        !(l->f->speaker() == r->f->speaker())) {
      return Malformed(p, "subproofs must be statements by one speaker");
    }
    return Merge(
        FormulaNode::Says(l->f->speaker(), FormulaNode::And(l->f->child1(), r->f->child1())),
        *l, *r);
  }

  Result<NodeInfo> ConcludeSaysAndElim(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 1));
    Result<NodeInfo> child = ConcludeChild(p, 0);
    if (!child.ok()) {
      return child;
    }
    if (child->f->kind() != FormulaKind::kSays ||
        child->f->child1()->kind() != FormulaKind::kAnd) {
      return Malformed(p, "subproof must conclude P says (A and B)");
    }
    const Formula& body = child->f->child1();
    Formula picked = (p->rule() == ProofRule::kSaysAndElimL) ? body->child1() : body->child2();
    NodeInfo out = *child;
    out.f = FormulaNode::Says(child->f->speaker(), picked);
    return out;
  }

  Result<NodeInfo> ConcludeSpeaksForElim(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 2));
    Result<NodeInfo> sf = ConcludeChild(p, 0);
    if (!sf.ok()) {
      return sf;
    }
    if (sf->f->kind() != FormulaKind::kSpeaksFor) {
      return Malformed(p, "first subproof does not conclude speaksfor");
    }
    Result<NodeInfo> said = ConcludeChild(p, 1);
    if (!said.ok()) {
      return said;
    }
    if (said->f->kind() != FormulaKind::kSays) {
      return Malformed(p, "second subproof does not conclude a says-formula");
    }
    // A speaksfor B admits attributing statements by A (or any subprincipal
    // of A) to B.
    if (!sf->f->delegator().IsPrefixOf(said->f->speaker())) {
      return Malformed(p, "statement speaker " + said->f->speaker().ToString() +
                              " is not covered by delegator " + sf->f->delegator().ToString());
    }
    if (sf->f->on_scope().has_value() && !ScopeMatches(said->f->child1(), *sf->f->on_scope())) {
      return Malformed(p, "statement is outside the delegation scope '" + *sf->f->on_scope() +
                              "'");
    }
    return Merge(FormulaNode::Says(sf->f->delegatee(), said->f->child1()), *sf, *said);
  }

  Result<NodeInfo> ConcludeSpeaksForTrans(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 2));
    Result<NodeInfo> ab = ConcludeChild(p, 0);
    if (!ab.ok()) {
      return ab;
    }
    Result<NodeInfo> bc = ConcludeChild(p, 1);
    if (!bc.ok()) {
      return bc;
    }
    if (ab->f->kind() != FormulaKind::kSpeaksFor || bc->f->kind() != FormulaKind::kSpeaksFor) {
      return Malformed(p, "both subproofs must conclude speaksfor");
    }
    if (!(ab->f->delegatee() == bc->f->delegator())) {
      return Malformed(p, "chain mismatch: " + ab->f->delegatee().ToString() + " vs " +
                              bc->f->delegator().ToString());
    }
    // Scope of the composition: the conjunction of restrictions. Two
    // distinct scopes compose to nothing useful, so reject.
    std::optional<std::string> scope;
    if (ab->f->on_scope().has_value() && bc->f->on_scope().has_value()) {
      if (*ab->f->on_scope() != *bc->f->on_scope()) {
        return Malformed(p, "incompatible delegation scopes");
      }
      scope = ab->f->on_scope();
    } else if (ab->f->on_scope().has_value()) {
      scope = ab->f->on_scope();
    } else {
      scope = bc->f->on_scope();
    }
    return Merge(FormulaNode::SpeaksFor(ab->f->delegator(), bc->f->delegatee(), scope), *ab,
                 *bc);
  }

  Result<NodeInfo> ConcludeHandoff(const Proof& p) {
    NEXUS_RETURN_IF_ERROR(ExpectChildren(p, 1));
    Result<NodeInfo> child = ConcludeChild(p, 0);
    if (!child.ok()) {
      return child;
    }
    if (child->f->kind() != FormulaKind::kSays ||
        child->f->child1()->kind() != FormulaKind::kSpeaksFor) {
      return Malformed(p, "subproof must conclude B says (A speaksfor B)");
    }
    const Formula& sf = child->f->child1();
    // The speaker must be (a superprincipal of) the delegatee: only B can
    // hand off authority over B's own worldview.
    if (!child->f->speaker().IsPrefixOf(sf->delegatee())) {
      return Malformed(p, "speaker " + child->f->speaker().ToString() +
                              " cannot hand off authority over " + sf->delegatee().ToString());
    }
    NodeInfo out = *child;
    out.f = sf;
    return out;
  }

  static NodeInfo Merge(Formula f, const NodeInfo& a, const NodeInfo& b) {
    NodeInfo out{std::move(f), a.speakers, a.open_assumptions};
    out.speakers.insert(b.speakers.begin(), b.speakers.end());
    out.open_assumptions.insert(b.open_assumptions.begin(), b.open_assumptions.end());
    return out;
  }

  static void MergeInto(NodeInfo& dst, const NodeInfo& src) {
    dst.speakers.insert(src.speakers.begin(), src.speakers.end());
    dst.open_assumptions.insert(src.open_assumptions.begin(), src.open_assumptions.end());
  }

  const std::vector<Formula>& credentials_;
  const AuthorityCallback& authority_;
  std::vector<Formula> assumptions_;
  bool used_authority_ = false;
  bool missing_credential_ = false;
  int rules_applied_ = 0;
};

}  // namespace

CheckResult ConcludeProof(const Proof& p, const std::vector<Formula>& credentials,
                          const AuthorityCallback& authority) {
  CheckResult result;
  if (p == nullptr) {
    result.status = InvalidArgument("null proof");
    return result;
  }
  Checker checker(credentials, authority);
  Result<NodeInfo> info = checker.Conclude(p);
  result.cacheable = !checker.used_authority();
  result.missing_credential = checker.missing_credential();
  result.rules_applied = checker.rules_applied();
  if (!info.ok()) {
    result.status = info.status();
    return result;
  }
  result.status = OkStatus();
  result.conclusion = info->f;
  return result;
}

CheckResult CheckProof(const Proof& p, const Formula& goal,
                       const std::vector<Formula>& credentials,
                       const AuthorityCallback& authority) {
  CheckResult result = ConcludeProof(p, credentials, authority);
  if (!result.status.ok()) {
    return result;
  }
  Bindings bindings;
  // The conclusion may prove the goal exactly, or prove a conjunction whose
  // conjuncts cover the goal's conjuncts (order-insensitively).
  if (Match(goal, result.conclusion, bindings)) {
    result.bindings = std::move(bindings);
    return result;
  }
  bindings.clear();
  std::vector<Formula> have = Conjuncts(result.conclusion);
  std::vector<Formula> want = Conjuncts(goal);
  bool all_found = true;
  for (const Formula& w : want) {
    bool found = false;
    for (const Formula& h : have) {
      Bindings trial = bindings;
      if (Match(w, h, trial)) {
        bindings = std::move(trial);
        found = true;
        break;
      }
    }
    if (!found) {
      all_found = false;
      break;
    }
  }
  if (all_found) {
    result.bindings = std::move(bindings);
    return result;
  }
  result.status = PermissionDenied("proof concludes '" + result.conclusion->ToString() +
                                   "' which does not discharge goal '" + goal->ToString() + "'");
  return result;
}

bool IsStaticallyCacheable(const Proof& p) {
  if (p->rule() == ProofRule::kAuthority) {
    return false;
  }
  for (const Proof& child : p->children()) {
    if (!IsStaticallyCacheable(child)) {
      return false;
    }
  }
  return true;
}

}  // namespace nexus::nal
