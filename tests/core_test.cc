#include <gtest/gtest.h>

#include "core/nexus.h"
#include "nal/parser.h"
#include "nal/prover.h"

namespace nexus::core {
namespace {

nal::Formula F(std::string_view text) {
  Result<nal::Formula> f = nal::ParseFormula(text);
  EXPECT_TRUE(f.ok()) << text << " -> " << f.status().ToString();
  return f.ok() ? *f : nullptr;
}

// ------------------------------------------------------------ LabelStore

TEST(LabelStoreTest, SayAndGet) {
  LabelStore store;
  LabelHandle h = store.Insert(nal::Principal("A"), F("ok()"));
  Result<nal::Formula> label = store.Get(h);
  ASSERT_TRUE(label.ok());
  EXPECT_TRUE(nal::Equals(*label, F("A says ok()")));
}

TEST(LabelStoreTest, InsertLabelValidatesShape) {
  LabelStore store;
  EXPECT_TRUE(store.InsertLabel(F("A says ok()")).ok());
  EXPECT_FALSE(store.InsertLabel(F("ok()")).ok());
  EXPECT_FALSE(store.InsertLabel(F("$X says ok()")).ok());
  EXPECT_FALSE(store.InsertLabel(nullptr).ok());
}

TEST(LabelStoreTest, DeleteAndTransfer) {
  LabelStore a;
  LabelStore b;
  LabelHandle h = a.Insert(nal::Principal("P"), F("fact()"));
  ASSERT_TRUE(a.Transfer(h, b).ok());
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_FALSE(a.Delete(h).ok());
  EXPECT_FALSE(a.Transfer(h, b).ok());
}

TEST(LabelStoreTest, AllReturnsCredentials) {
  LabelStore store;
  store.Insert(nal::Principal("A"), F("p()"));
  store.Insert(nal::Principal("B"), F("q()"));
  EXPECT_EQ(store.All().size(), 2u);
}

// ------------------------------------------------------- Boot + identity

class NexusTest : public ::testing::Test {
 protected:
  NexusTest() : tpm_rng_(7), tpm_(tpm_rng_), nexus_(&tpm_) {}

  Rng tpm_rng_;
  tpm::Tpm tpm_;
  Nexus nexus_;
};

TEST_F(NexusTest, BootTakesOwnershipAndMintsNk) {
  EXPECT_TRUE(tpm_.IsOwned());
  EXPECT_FALSE(nexus_.nexus_public_key().n.IsZero());
  EXPECT_FALSE(nexus_.boot_composite().empty());
}

TEST_F(NexusTest, RebootRecoversSameNk) {
  crypto::RsaPublicKey first_nk = nexus_.nexus_public_key();
  Nexus second(&tpm_);  // Same TPM, same measured kernel.
  EXPECT_TRUE(second.nexus_public_key() == first_nk);
}

TEST_F(NexusTest, ExternalPrincipalNamesBootInstance) {
  nal::Principal p = nexus_.ExternalKernelPrincipal();
  EXPECT_EQ(p.path().size(), 2u);
  EXPECT_EQ(p.base().substr(0, 4), "tpm.");
  // A reboot produces a different boot identifier (NBK changes).
  Nexus second(&tpm_);
  EXPECT_FALSE(p == second.ExternalKernelPrincipal());
}

TEST_F(NexusTest, ProcessCreationDepositsKernelLabels) {
  // Syscall channels are shared reserved ports now, so process creation
  // deposits only the launchHash label; the per-port speaksfor appears
  // when the process gets a port of its own.
  kernel::ProcessId pid = *nexus_.CreateProcess("app", ToBytes("app-binary"));
  kernel::PortId port = *nexus_.CreatePort(pid);
  bool found_speaksfor = false;
  bool found_hash = false;
  for (const nal::Formula& label : nexus_.engine().SystemStore().All()) {
    std::string text = label->ToString();
    if (text.find("IPC." + std::to_string(port) + " speaksfor Nexus.ipd." +
                  std::to_string(pid)) != std::string::npos) {
      found_speaksfor = true;
    }
    if (text.find("launchHash(/proc/ipd/" + std::to_string(pid)) != std::string::npos) {
      found_hash = true;
    }
  }
  EXPECT_TRUE(found_speaksfor);
  EXPECT_TRUE(found_hash);
}

// ---------------------------------------------------------- say syscall

TEST_F(NexusTest, SayAttributesToCaller) {
  kernel::ProcessId pid = *nexus_.CreateProcess("analyzer", ToBytes("a"));
  Result<LabelHandle> h = nexus_.engine().Say(pid, "isTypeSafe(PGM)");
  ASSERT_TRUE(h.ok());
  nal::Formula label = *nexus_.engine().StoreFor(pid).Get(*h);
  EXPECT_EQ(label->speaker().ToString(), "Nexus.ipd." + std::to_string(pid));
  EXPECT_TRUE(nal::Equals(label->child1(), F("isTypeSafe(PGM)")));
}

TEST_F(NexusTest, SayRejectsBadInput) {
  kernel::ProcessId pid = *nexus_.CreateProcess("p", ToBytes("p"));
  EXPECT_FALSE(nexus_.engine().Say(pid, "not valid NAL ((").ok());
  EXPECT_FALSE(nexus_.engine().Say(pid, "safe($X)").ok());  // Not ground.
  EXPECT_FALSE(nexus_.engine().Say(9999, "ok()").ok());     // No such process.
}

// ----------------------------------------------- Authorization end-to-end

class AuthorizationFlowTest : public NexusTest {
 protected:
  AuthorizationFlowTest() {
    owner_ = *nexus_.CreateProcess("owner", ToBytes("owner-bin"));
    client_ = *nexus_.CreateProcess("client", ToBytes("client-bin"));
    nexus_.engine().RegisterObject("file:/secret", owner_, kernel::kKernelProcessId);
  }

  kernel::ProcessId owner_ = 0;
  kernel::ProcessId client_ = 0;
};

TEST_F(AuthorizationFlowTest, BootstrapPolicyOwnerOnly) {
  EXPECT_TRUE(nexus_.kernel().Authorize(owner_, "read", "file:/secret").ok());
  EXPECT_FALSE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());
  // Unregistered objects are unguarded.
  EXPECT_TRUE(nexus_.kernel().Authorize(client_, "read", "file:/public").ok());
}

TEST_F(AuthorizationFlowTest, GoalWithProofGrantsAccess) {
  // Owner requires a certifier attestation about the client.
  std::string client_name = nexus_.kernel().ProcessPrincipal(client_).ToString();
  nal::Formula goal = F("Certifier says safe(" + client_name + ")");
  ASSERT_TRUE(nexus_.engine().SetGoal(owner_, "read", "file:/secret", goal).ok());

  // Without a proof: denied.
  EXPECT_FALSE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());

  // The certifier (a distinguished principal) issues the label system-side.
  nexus_.engine().SayAs(nal::Principal("Certifier"), F("safe(" + client_name + ")"));
  auto creds = nexus_.engine().CollectCredentials(client_, "file:/secret");
  Result<nal::Proof> proof = nal::AutoProve(goal, creds);
  ASSERT_TRUE(proof.ok()) << proof.status().ToString();
  ASSERT_TRUE(nexus_.engine().SetProof(client_, "read", "file:/secret", *proof).ok());

  EXPECT_TRUE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());
}

TEST_F(AuthorizationFlowTest, DecisionCacheMakesRepeatsCheap) {
  std::string client_name = nexus_.kernel().ProcessPrincipal(client_).ToString();
  nal::Formula goal = F("Certifier says safe(" + client_name + ")");
  nexus_.engine().SetGoal(owner_, "read", "file:/secret", goal);
  nexus_.engine().SayAs(nal::Principal("Certifier"), F("safe(" + client_name + ")"));
  auto creds = nexus_.engine().CollectCredentials(client_, "file:/secret");
  nexus_.engine().SetProof(client_, "read", "file:/secret",
                           *nal::AutoProve(goal, creds));

  uint64_t checks_before = nexus_.guard().stats().checks;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());
  }
  // Only the first call reaches the guard; the rest hit the kernel cache.
  EXPECT_EQ(nexus_.guard().stats().checks, checks_before + 1);
}

TEST_F(AuthorizationFlowTest, SetGoalIsItselfGuarded) {
  nal::Formula goal = F("true");
  // A non-owner cannot set goals on the object.
  EXPECT_FALSE(nexus_.engine().SetGoal(client_, "read", "file:/secret", goal).ok());
  EXPECT_TRUE(nexus_.engine().SetGoal(owner_, "read", "file:/secret", goal).ok());
}

TEST_F(AuthorizationFlowTest, GoalUpdateInvalidatesDecisions) {
  nexus_.engine().SetGoal(owner_, "read", "file:/secret", F("true"));
  EXPECT_TRUE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());
  // Owner tightens the policy; the cached ALLOW must not survive.
  std::string client_name = nexus_.kernel().ProcessPrincipal(client_).ToString();
  nexus_.engine().SetGoal(owner_, "read", "file:/secret",
                          F("Certifier says safe(" + client_name + ")"));
  EXPECT_FALSE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());
}

TEST_F(AuthorizationFlowTest, AuthorityBackedGoalReflectsDynamicState) {
  // Goal: the time authority must vouch that the deadline has not passed.
  nal::Formula statement = F("Clock says TimeNow < 1000");
  nexus_.engine().SetGoal(owner_, "read", "file:/secret", statement);

  uint64_t now = 500;
  LambdaAuthority clock(
      [](const nal::Formula& f) { return nal::ScopeMatches(f, "TimeNow"); },
      [&now](const nal::Formula& f) {
        // Evaluate `Clock says TimeNow < c` against the live clock.
        const nal::FormulaNode* body = f->child1().get();
        return body->kind() == nal::FormulaKind::kCompare &&
               body->compare_op() == nal::CompareOp::kLt &&
               now < static_cast<uint64_t>(body->rhs().int_value());
      });
  nexus_.guard().AddEmbeddedAuthority(&clock);
  nexus_.engine().SetProof(client_, "read", "file:/secret", nal::proof::Authority(statement));

  EXPECT_TRUE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());
  now = 2000;  // Deadline passes; no revocation machinery needed.
  EXPECT_FALSE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());
}

TEST_F(AuthorizationFlowTest, AuthorityDecisionsNeverCached) {
  nal::Formula statement = F("Clock says TimeNow < 1000");
  nexus_.engine().SetGoal(owner_, "read", "file:/secret", statement);
  int queries = 0;
  LambdaAuthority clock([](const nal::Formula&) { return true; },
                        [&queries](const nal::Formula&) {
                          ++queries;
                          return true;
                        });
  nexus_.guard().AddEmbeddedAuthority(&clock);
  nexus_.engine().SetProof(client_, "read", "file:/secret", nal::proof::Authority(statement));
  nexus_.kernel().Authorize(client_, "read", "file:/secret");
  nexus_.kernel().Authorize(client_, "read", "file:/secret");
  EXPECT_EQ(queries, 2);  // Fresh consult per decision.
}

TEST_F(AuthorizationFlowTest, ExternalAuthorityOverIpc) {
  nal::Formula statement = F("Quota says usage < 80");
  nexus_.engine().SetGoal(owner_, "write", "file:/secret", statement);

  LambdaAuthority quota([](const nal::Formula& f) { return nal::ScopeMatches(f, "usage"); },
                        [](const nal::Formula&) { return true; });
  AuthorityPortHandler handler(&quota);
  kernel::ProcessId authority_pid = *nexus_.CreateProcess("quota-authority", ToBytes("qa"));
  kernel::PortId port = *nexus_.CreatePort(authority_pid);
  nexus_.kernel().BindHandler(port, &handler);
  nexus_.guard().AddAuthorityPort(port);

  nexus_.engine().SetProof(client_, "write", "file:/secret",
                           nal::proof::Authority(statement));
  EXPECT_TRUE(nexus_.kernel().Authorize(client_, "write", "file:/secret").ok());
}

TEST_F(AuthorizationFlowTest, DesignatedGuardOverIpc) {
  // Route this object's checks to a guard process behind a port.
  Guard designated(&nexus_.kernel());
  GuardPortHandler handler(&designated, &nexus_.engine().goals());
  kernel::ProcessId guard_pid = *nexus_.CreateProcess("app-guard", ToBytes("g"));
  kernel::PortId guard_port = *nexus_.CreatePort(guard_pid);
  nexus_.kernel().BindHandler(guard_port, &handler);

  std::string client_name = nexus_.kernel().ProcessPrincipal(client_).ToString();
  nal::Formula goal = F("Certifier says safe(" + client_name + ")");
  ASSERT_TRUE(nexus_.engine().SetGoal(owner_, "read", "file:/secret", goal, guard_port).ok());

  nexus_.engine().SayAs(nal::Principal("Certifier"), F("safe(" + client_name + ")"));
  auto creds = nexus_.engine().CollectCredentials(client_, "file:/secret");
  nexus_.engine().SetProof(client_, "read", "file:/secret", *nal::AutoProve(goal, creds));

  EXPECT_TRUE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());
  EXPECT_EQ(designated.stats().checks, 1u);
  // A wrong proof is rejected by the designated guard too.
  nexus_.engine().SetProof(client_, "read", "file:/secret",
                           nal::proof::Premise(F("Nobody says nothing()")));
  EXPECT_FALSE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());
}

TEST_F(AuthorizationFlowTest, OwnershipTransferIssuesLabel) {
  ASSERT_TRUE(nexus_.engine().TransferOwnership(owner_, "file:/secret", client_).ok());
  EXPECT_TRUE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());
  EXPECT_FALSE(nexus_.engine().TransferOwnership(owner_, "file:/secret", owner_).ok());
}

// -------------------------------------------------------- Guard caching

TEST_F(AuthorizationFlowTest, GuardProofCacheHitsOnRepeatedChecks) {
  std::string client_name = nexus_.kernel().ProcessPrincipal(client_).ToString();
  nal::Formula goal = F("Certifier says safe(" + client_name + ")");
  nexus_.engine().SetGoal(owner_, "read", "file:/secret", goal);
  nexus_.engine().SayAs(nal::Principal("Certifier"), F("safe(" + client_name + ")"));
  auto creds = nexus_.engine().CollectCredentials(client_, "file:/secret");
  nexus_.engine().SetProof(client_, "read", "file:/secret", *nal::AutoProve(goal, creds));

  // Disable the kernel cache to reach the guard every time.
  nexus_.kernel().set_decision_cache_enabled(false);
  nexus_.kernel().Authorize(client_, "read", "file:/secret");
  uint64_t hits_before = nexus_.guard().stats().cache_hits;
  nexus_.kernel().Authorize(client_, "read", "file:/secret");
  EXPECT_GT(nexus_.guard().stats().cache_hits, hits_before);
}

TEST(GuardQuotaTest, PerRootQuotaEvictsOwnEntriesFirst) {
  kernel::Kernel k;
  Guard::Config config;
  config.proof_cache_capacity = 64;
  config.per_root_quota = 4;
  Guard guard(&k, config);

  kernel::ProcessId spammer = *k.CreateProcess("spammer", ToBytes("s"));
  nal::Formula goal_base = nal::ParseFormula("A says ok()").value();
  // The spammer pushes many distinct proofs; its cache usage must stay
  // bounded by the quota rather than evicting others.
  for (int i = 0; i < 32; ++i) {
    nal::Formula goal =
        nal::ParseFormula("A says ok" + std::to_string(i) + "()").value();
    std::vector<nal::Formula> creds = {goal};
    guard.Check(spammer, "op", "obj" + std::to_string(i), goal, nal::proof::Premise(goal),
                creds, /*state_version=*/1);
  }
  EXPECT_GE(guard.stats().evictions, 32u - config.per_root_quota);
  (void)goal_base;
}

TEST(GuardQuotaTest, SpammerCannotEvictVictimEntries) {
  kernel::Kernel k;
  Guard::Config config;
  config.proof_cache_capacity = 64;
  config.per_root_quota = 8;
  Guard guard(&k, config);

  kernel::ProcessId victim = *k.CreateProcess("victim", ToBytes("v"));
  kernel::ProcessId spammer = *k.CreateProcess("spammer", ToBytes("s"));

  // The victim caches a handful of verdicts. Proof identity is part of the
  // cache key, so the proofs must stay alive across the re-check.
  std::vector<nal::Formula> victim_goals;
  std::vector<nal::Proof> victim_proofs;
  for (int i = 0; i < 4; ++i) {
    nal::Formula goal = nal::ParseFormula("V says ok" + std::to_string(i) + "()").value();
    victim_goals.push_back(goal);
    victim_proofs.push_back(nal::proof::Premise(goal));
    std::vector<nal::Formula> creds = {goal};
    guard.Check(victim, "op", "obj", goal, victim_proofs.back(), creds, /*state_version=*/1);
  }

  // The spawning-principal exhaustion attack (§2.9): way more insertions
  // than the victim's footprint, all charged to the spammer's root.
  for (int i = 0; i < 48; ++i) {
    nal::Formula goal = nal::ParseFormula("S says ok" + std::to_string(i) + "()").value();
    std::vector<nal::Formula> creds = {goal};
    guard.Check(spammer, "op", "obj", goal, nal::proof::Premise(goal), creds,
                /*state_version=*/1);
  }

  // Every victim verdict is still cached: eviction charged the spammer's
  // own quota, not the victim's entries.
  uint64_t hits_before = guard.stats().cache_hits;
  for (int i = 0; i < 4; ++i) {
    std::vector<nal::Formula> creds = {victim_goals[i]};
    guard.Check(victim, "op", "obj", victim_goals[i], victim_proofs[i], creds,
                /*state_version=*/1);
  }
  EXPECT_EQ(guard.stats().cache_hits, hits_before + 4);
}

TEST(GuardCacheTest, StateVersionZeroBypassesVerdictCache) {
  kernel::Kernel k;
  Guard guard(&k);
  kernel::ProcessId subject = *k.CreateProcess("subject", ToBytes("x"));
  nal::Formula goal = nal::ParseFormula("A says ok()").value();
  nal::Proof proof = nal::proof::Premise(goal);
  std::vector<nal::Formula> creds = {goal};

  // state_version = 0 disables caching entirely: no hits on repeats, and
  // nothing is inserted for later calls to hit.
  guard.Check(subject, "op", "obj", goal, proof, creds, /*state_version=*/0);
  guard.Check(subject, "op", "obj", goal, proof, creds, /*state_version=*/0);
  EXPECT_EQ(guard.stats().cache_hits, 0u);

  // A versioned check after the bypassed ones must MISS (nothing was
  // cached), then hit on its own repeat.
  guard.Check(subject, "op", "obj", goal, proof, creds, /*state_version=*/5);
  EXPECT_EQ(guard.stats().cache_hits, 0u);
  guard.Check(subject, "op", "obj", goal, proof, creds, /*state_version=*/5);
  EXPECT_EQ(guard.stats().cache_hits, 1u);
  // And a bypassed check between versioned ones still refuses the cache.
  guard.Check(subject, "op", "obj", goal, proof, creds, /*state_version=*/0);
  EXPECT_EQ(guard.stats().cache_hits, 1u);
}

TEST(GuardQuotaTest, ZeroPerRootQuotaDisablesCachingWithoutHanging) {
  // per_root_quota = 0 used to make the quota loop condition vacuously
  // true: with an empty LRU it dereferenced std::prev(lru_.end()) — UB —
  // and with a non-empty one it spun forever. It must mean "nobody may
  // cache" and return promptly.
  kernel::Kernel k;
  Guard::Config config;
  config.per_root_quota = 0;
  Guard guard(&k, config);
  kernel::ProcessId subject = *k.CreateProcess("subject", ToBytes("x"));
  nal::Formula goal = F("A says ok()");
  nal::Proof proof = nal::proof::Premise(goal);
  std::vector<nal::Formula> creds = {goal};

  for (int i = 0; i < 4; ++i) {
    kernel::AuthzDecision d =
        guard.Check(subject, "op", "obj", goal, proof, creds, /*state_version=*/1);
    EXPECT_TRUE(d.allowed());
  }
  EXPECT_EQ(guard.stats().cache_hits, 0u);  // Nothing was ever inserted.

  // Zero capacity is the same full-disable, via the other field.
  Guard::Config no_capacity;
  no_capacity.proof_cache_capacity = 0;
  Guard uncached(&k, no_capacity);
  uncached.Check(subject, "op", "obj", goal, proof, creds, /*state_version=*/1);
  uncached.Check(subject, "op", "obj", goal, proof, creds, /*state_version=*/1);
  EXPECT_EQ(uncached.stats().cache_hits, 0u);
}

TEST(GuardCacheTest, FreedProofAddressReuseDoesNotReplayVerdict) {
  // ABA regression: the proof-check cache used to key on the proof's
  // ADDRESS. Free a cached proof, allocate a different proof (the
  // allocator happily hands back the same storage), and the old verdict
  // replayed for the new proof. The key is now the proof's structural
  // hash, so the second proof must be judged on its own (lack of) merits.
  kernel::Kernel k;
  Guard guard(&k);
  kernel::ProcessId subject = *k.CreateProcess("subject", ToBytes("x"));
  nal::Formula goal = F("A says ok()");
  nal::Formula bogus = F("B says bogus()");
  std::vector<nal::Formula> creds = {goal};

  // Loop to make same-size allocator reuse overwhelmingly likely.
  for (int i = 0; i < 16; ++i) {
    nal::Proof valid = nal::proof::Premise(goal);
    kernel::AuthzDecision allowed =
        guard.Check(subject, "op", "obj", goal, valid, creds, /*state_version=*/7);
    ASSERT_TRUE(allowed.allowed());
    valid.reset();  // Free the node; its storage may be reused...
    nal::Proof imposter = nal::proof::Premise(bogus);  // ...by this proof.
    kernel::AuthzDecision denied =
        guard.Check(subject, "op", "obj", goal, imposter, creds, /*state_version=*/7);
    EXPECT_FALSE(denied.allowed()) << "stale cached verdict replayed, iteration " << i;
  }
}

TEST(GuardCacheTest, StructurallyEqualResubmittedProofStillHits) {
  // The flip side of hash keying: a client that rebuilds the same proof
  // object (new address, same structure) now HITS where the address key
  // missed — structural identity is the sound notion, address never was.
  kernel::Kernel k;
  Guard guard(&k);
  kernel::ProcessId subject = *k.CreateProcess("subject", ToBytes("x"));
  nal::Formula goal = F("A says ok()");
  std::vector<nal::Formula> creds = {goal};

  guard.Check(subject, "op", "obj", goal, nal::proof::Premise(goal), creds,
              /*state_version=*/3);
  EXPECT_EQ(guard.stats().cache_hits, 0u);
  guard.Check(subject, "op", "obj", goal, nal::proof::Premise(F("A says ok()")), creds,
              /*state_version=*/3);
  EXPECT_EQ(guard.stats().cache_hits, 1u);
}

TEST(GuardPortHandlerTest, GarbageSubjectReturnsInvalidArgument) {
  // Regression: `check garbage op obj proof` over the guard IPC port used
  // to std::stoull("garbage") and throw std::invalid_argument out of the
  // simulation. The designated-guard surface is untrusted input.
  kernel::Kernel k;
  Guard guard(&k);
  GoalStore goals;
  ASSERT_TRUE(goals.SetGoal("op", "obj", F("A says ok()")).ok());
  GuardPortHandler handler(&guard, &goals);

  // v1-shaped text arguments, as a script-style caller would send them
  // (the kernel resolves the "check" op before dispatch; the ARGS stay
  // text and must be decoded defensively by the handler).
  auto check_msg = [](std::string subject) {
    kernel::IpcMessage msg = kernel::IpcMessage::Of("check");
    msg.AddString(subject).AddString("op").AddString("obj").AddString(
        "(premise \"A says ok()\")");
    return msg;
  };
  kernel::IpcContext context{1, 1};
  kernel::IpcReply reply = handler.Handle(context, check_msg("garbage"));
  EXPECT_EQ(reply.status.code(), ErrorCode::kInvalidArgument);

  // std::out_of_range surface: a subject bigger than uint64.
  reply = handler.Handle(context, check_msg("123456789012345678901234567890"));
  EXPECT_EQ(reply.status.code(), ErrorCode::kInvalidArgument);

  // A well-formed subject still goes through the full guard path.
  reply = handler.Handle(context, check_msg("7"));
  EXPECT_NE(reply.status.code(), ErrorCode::kInvalidArgument);
}

// -------------------------------------------------------- Certificates

TEST_F(NexusTest, ExternalizeAndImportCertificate) {
  kernel::ProcessId pid = *nexus_.CreateProcess("prover", ToBytes("p"));
  LabelHandle h = *nexus_.engine().Say(pid, "isTypeSafe(PGM)");
  Result<Certificate> cert = nexus_.ExternalizeLabel(pid, h);
  ASSERT_TRUE(cert.ok()) << cert.status().ToString();

  // A remote Nexus instance imports the certificate after verifying the
  // chain against the issuing TPM's EK.
  Rng remote_rng(11);
  tpm::Tpm remote_tpm(remote_rng);
  Nexus remote(&remote_tpm, NexusOptions{.seed = 99});
  kernel::ProcessId remote_pid = *remote.CreateProcess("verifier", ToBytes("v"));
  Result<LabelHandle> imported =
      remote.ImportCertificate(remote_pid, *cert, tpm_.endorsement_public_key());
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();

  nal::Formula label = *remote.engine().StoreFor(remote_pid).Get(*imported);
  // Speaker is the fully-qualified TPM-rooted chain.
  EXPECT_EQ(label->speaker().base().substr(0, 4), "tpm.");
  EXPECT_TRUE(nal::Equals(label->child1(), F("isTypeSafe(PGM)")));
}

TEST_F(NexusTest, CertificateSerializationRoundTrip) {
  kernel::ProcessId pid = *nexus_.CreateProcess("p", ToBytes("p"));
  LabelHandle h = *nexus_.engine().Say(pid, "ok()");
  Certificate cert = *nexus_.ExternalizeLabel(pid, h);
  Result<Certificate> restored = Certificate::Deserialize(cert.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(
      VerifyCertificate(*restored, tpm_.endorsement_public_key()).ok());
}

TEST_F(NexusTest, CertificateRejectsWrongEk) {
  kernel::ProcessId pid = *nexus_.CreateProcess("p", ToBytes("p"));
  Certificate cert = *nexus_.ExternalizeLabel(pid, *nexus_.engine().Say(pid, "ok()"));
  Rng other_rng(13);
  crypto::RsaKeyPair other = crypto::GenerateRsaKeyPair(other_rng, 512);
  EXPECT_FALSE(VerifyCertificate(cert, other.public_key).ok());
}

TEST_F(NexusTest, CertificateRejectsTampering) {
  kernel::ProcessId pid = *nexus_.CreateProcess("p", ToBytes("p"));
  Certificate cert = *nexus_.ExternalizeLabel(pid, *nexus_.engine().Say(pid, "ok()"));
  cert.statement = F(cert.statement->speaker().ToString() + " says evil()");
  EXPECT_FALSE(VerifyCertificate(cert, tpm_.endorsement_public_key()).ok());
}

// Two independently booted instances exchanging serialized certificates
// through the peer-registry import path (the entry point src/net uses).

TEST_F(NexusTest, PeerImportRoundTripsOverSerialization) {
  Rng remote_rng(21);
  tpm::Tpm remote_tpm(remote_rng);
  Nexus remote(&remote_tpm, NexusOptions{.seed = 77});
  ASSERT_TRUE(remote.RegisterPeer("issuer", tpm_.endorsement_public_key()).ok());

  kernel::ProcessId pid = *nexus_.CreateProcess("prover", ToBytes("p"));
  Certificate cert = *nexus_.ExternalizeLabel(pid, *nexus_.engine().Say(pid, "isTypeSafe(PGM)"));
  // The certificate crosses the wire as bytes.
  Result<Certificate> received = Certificate::Deserialize(cert.Serialize());
  ASSERT_TRUE(received.ok());

  kernel::ProcessId importer = *remote.CreateProcess("importer", ToBytes("i"));
  Result<LabelHandle> handle = remote.ImportPeerCertificate(importer, *received);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  nal::Formula label = *remote.engine().StoreFor(importer).Get(*handle);
  EXPECT_EQ(label->speaker().ToString().substr(0, 4), "tpm.");
  EXPECT_TRUE(nal::Equals(label->child1(), F("isTypeSafe(PGM)")));

  // Replayed delivery converges to the same handle and a single label.
  Result<LabelHandle> again = remote.ImportPeerCertificate(importer, *received);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*handle, *again);
  EXPECT_EQ(remote.engine().StoreFor(importer).size(), 1u);
}

TEST_F(NexusTest, PeerImportRejectsUnregisteredEk) {
  Rng remote_rng(22);
  tpm::Tpm remote_tpm(remote_rng);
  Nexus remote(&remote_tpm, NexusOptions{.seed = 78});  // No peers registered.

  kernel::ProcessId pid = *nexus_.CreateProcess("prover", ToBytes("p"));
  Certificate cert = *nexus_.ExternalizeLabel(pid, *nexus_.engine().Say(pid, "ok()"));
  kernel::ProcessId importer = *remote.CreateProcess("importer", ToBytes("i"));
  Result<LabelHandle> handle = remote.ImportPeerCertificate(importer, cert);
  EXPECT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), ErrorCode::kUnauthenticated);
}

TEST_F(NexusTest, PeerImportRejectsTamperedWireBytes) {
  Rng remote_rng(23);
  tpm::Tpm remote_tpm(remote_rng);
  Nexus remote(&remote_tpm, NexusOptions{.seed = 79});
  ASSERT_TRUE(remote.RegisterPeer("issuer", tpm_.endorsement_public_key()).ok());
  kernel::ProcessId importer = *remote.CreateProcess("importer", ToBytes("i"));

  kernel::ProcessId pid = *nexus_.CreateProcess("prover", ToBytes("p"));
  Certificate cert = *nexus_.ExternalizeLabel(pid, *nexus_.engine().Say(pid, "harmless()"));
  Bytes wire = cert.Serialize();
  // Flip one bit in every region of the wire image; no variant may import.
  for (size_t offset : {size_t{4}, wire.size() / 2, wire.size() - 3}) {
    Bytes corrupted = wire;
    corrupted[offset] ^= 0x01;
    Result<Certificate> parsed = Certificate::Deserialize(corrupted);
    if (!parsed.ok()) {
      continue;  // Rejected at parse time: fine.
    }
    EXPECT_FALSE(remote.ImportPeerCertificate(importer, *parsed).ok());
  }
  EXPECT_EQ(remote.engine().StoreFor(importer).size(), 0u);
}

TEST_F(NexusTest, PeerImportRejectsSubstitutedEndorsement) {
  // The wrong-EK attack: an attacker with a registered TPM of their own
  // re-roots someone else's certificate onto their EK. The NK binding
  // signature cannot transfer.
  Rng remote_rng(24), attacker_rng(25);
  tpm::Tpm remote_tpm(remote_rng), attacker_tpm(attacker_rng);
  Nexus remote(&remote_tpm, NexusOptions{.seed = 80});
  Nexus attacker(&attacker_tpm, NexusOptions{.seed = 81});
  ASSERT_TRUE(remote.RegisterPeer("attacker", attacker_tpm.endorsement_public_key()).ok());
  // Note: the victim (nexus_) is NOT registered; the attacker is.

  kernel::ProcessId pid = *nexus_.CreateProcess("victim-prover", ToBytes("p"));
  Certificate stolen = *nexus_.ExternalizeLabel(pid, *nexus_.engine().Say(pid, "ok()"));
  stolen.ek_public = attacker_tpm.endorsement_public_key();  // Re-root.

  kernel::ProcessId importer = *remote.CreateProcess("importer", ToBytes("i"));
  Result<LabelHandle> handle = remote.ImportPeerCertificate(importer, stolen);
  EXPECT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), ErrorCode::kUnauthenticated);
}

TEST_F(NexusTest, PeerRegistryRejectsConflictingReRegistration) {
  ASSERT_TRUE(nexus_.RegisterPeer("b", tpm_.endorsement_public_key()).ok());
  // Re-registering the same EK is idempotent.
  EXPECT_TRUE(nexus_.RegisterPeer("b", tpm_.endorsement_public_key()).ok());
  Rng rng(31);
  crypto::RsaKeyPair other = crypto::GenerateRsaKeyPair(rng, 512);
  // Silently swapping a peer's trust anchor is refused.
  EXPECT_FALSE(nexus_.RegisterPeer("b", other.public_key).ok());
  EXPECT_TRUE(nexus_.IsTrustedPeerEk(tpm_.endorsement_public_key()));
  EXPECT_FALSE(nexus_.IsTrustedPeerEk(other.public_key));
}

TEST_F(NexusTest, CertificatePinsSoftwareConfiguration) {
  kernel::ProcessId pid = *nexus_.CreateProcess("p", ToBytes("p"));
  Certificate cert = *nexus_.ExternalizeLabel(pid, *nexus_.engine().Say(pid, "ok()"));
  // Accepts the right composite, rejects a wrong pin.
  EXPECT_TRUE(
      VerifyCertificate(cert, tpm_.endorsement_public_key(), nexus_.boot_composite()).ok());
  Bytes wrong = nexus_.boot_composite();
  wrong[0] ^= 1;
  EXPECT_FALSE(VerifyCertificate(cert, tpm_.endorsement_public_key(), wrong).ok());
}

// The revocation idiom from §2.7: A says Valid(S) => S, with Valid(S)
// discharged by an authority.
TEST_F(AuthorizationFlowTest, RevocationViaValidityAuthority) {
  std::string s = "licensed(client)";
  nal::Formula goal = F("Vendor says " + s);
  nexus_.engine().SetGoal(owner_, "read", "file:/secret", goal);
  nexus_.engine().SayAs(nal::Principal("Vendor"), F("Valid(lic1) => " + s));

  bool revoked = false;
  LambdaAuthority validity(
      [](const nal::Formula& f) {
        return f->kind() == nal::FormulaKind::kSays &&
               f->child1()->kind() == nal::FormulaKind::kPred &&
               f->child1()->pred_name() == "Valid";
      },
      [&revoked](const nal::Formula&) { return !revoked; });
  nexus_.guard().AddEmbeddedAuthority(&validity);

  nal::Proof proof = nal::proof::SaysImpliesElim(
      nal::proof::Premise(F("Vendor says (Valid(lic1) => " + s + ")")),
      nal::proof::Authority(F("Vendor says Valid(lic1)")));
  nexus_.engine().SetProof(client_, "read", "file:/secret", proof);

  EXPECT_TRUE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());
  revoked = true;  // Third-party revocation, no system infrastructure.
  EXPECT_FALSE(nexus_.kernel().Authorize(client_, "read", "file:/secret").ok());
}

// ----------------------------------------- Interned authorization API

TEST(LabelStoreTest, TransferAdvancesBothVersionCounters) {
  // Cached guard verdicts are keyed on state-version stamps derived from
  // store versions: BOTH sides of a transfer must advance, or a stale
  // verdict could survive on whichever side kept its old version.
  LabelStore a;
  LabelStore b;
  LabelHandle h = a.Insert(nal::Principal("P"), F("fact()"));
  uint64_t a_before = a.version();
  uint64_t b_before = b.version();
  ASSERT_TRUE(a.Transfer(h, b).ok());
  EXPECT_GT(a.version(), a_before);
  EXPECT_GT(b.version(), b_before);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(LabelStoreTest, InternsToCanonicalNodes) {
  LabelStore a;
  LabelStore b;
  LabelHandle ha = a.Insert(nal::Principal("P"), F("fact()"));
  LabelHandle hb = b.Insert(nal::Principal("P"), F("fact()"));
  // Same statement in two stores: one canonical tree, one FormulaId.
  EXPECT_EQ((*a.Get(ha)).get(), (*b.Get(hb)).get());
  EXPECT_NE(a.IdOf(ha), nal::kInvalidFormulaId);
  EXPECT_EQ(a.IdOf(ha), b.IdOf(hb));
  EXPECT_EQ(a.IdOf(999), nal::kInvalidFormulaId);
}

TEST_F(AuthorizationFlowTest, ReservedSeparatorNamesAreRejected) {
  // The legacy string keys joined tuple components with \x1f, so a name
  // containing it could alias another tuple. The shim surface refuses such
  // names outright (interned keys cannot collide, but serialized forms
  // must stay unambiguous).
  std::string evil_op = std::string("use\x1f") + "x";
  std::string evil_obj = std::string("obj\x1f") + "use";
  EXPECT_EQ(nexus_.engine().RegisterObject(evil_obj, owner_, kernel::kKernelProcessId).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(nexus_.engine().SetGoal(owner_, evil_op, "file:/secret", F("true")).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(nexus_.engine().SetGoal(owner_, "use", evil_obj, F("true")).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(nexus_.engine()
                .SetProof(client_, evil_op, "file:/secret", nal::proof::Premise(F("true")))
                .code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(nexus_.engine()
                .SetProof(client_, "use", evil_obj, nal::proof::Premise(F("true")))
                .code(),
            ErrorCode::kInvalidArgument);
  // Sane names still work.
  EXPECT_TRUE(nexus_.engine().SetGoal(owner_, "use", "file:/secret", F("true")).ok());
}

TEST(GuardQuotaTest, FlushCacheResetsQuotaAccounting) {
  kernel::Kernel k;
  Guard::Config config;
  config.proof_cache_capacity = 64;
  config.per_root_quota = 4;
  Guard guard(&k, config);
  kernel::ProcessId subject = *k.CreateProcess("s", ToBytes("s"));

  auto fill = [&](int generation) {
    for (int i = 0; i < 4; ++i) {
      nal::Formula goal = nal::ParseFormula("A says ok" + std::to_string(generation) + "_" +
                                            std::to_string(i) + "()")
                              .value();
      std::vector<nal::Formula> creds = {goal};
      guard.Check(subject, "op", "obj", goal, nal::proof::Premise(goal), creds,
                  /*state_version=*/1);
    }
  };

  fill(0);  // Exactly at quota; no eviction yet.
  EXPECT_EQ(guard.stats().evictions, 0u);
  guard.FlushCache();
  // The flush dropped the entries AND the per-root usage counters. A stale
  // counter would make this refill evict spuriously at quota.
  uint64_t evictions_before = guard.stats().evictions;
  fill(1);
  EXPECT_EQ(guard.stats().evictions, evictions_before);
  // Quota still enforced after the flush: one more distinct entry evicts.
  nal::Formula extra = nal::ParseFormula("A says okExtra()").value();
  std::vector<nal::Formula> creds = {extra};
  guard.Check(subject, "op", "obj", extra, nal::proof::Premise(extra), creds,
              /*state_version=*/1);
  EXPECT_EQ(guard.stats().evictions, evictions_before + 1);
}

class BatchAuthorizationTest : public NexusTest {
 protected:
  BatchAuthorizationTest() {
    owner_ = *nexus_.CreateProcess("owner", ToBytes("o"));
    for (int i = 0; i < 4; ++i) {
      subjects_.push_back(*nexus_.CreateProcess("s" + std::to_string(i), ToBytes("s")));
    }
    for (int i = 0; i < 3; ++i) {
      std::string object = "batch:obj" + std::to_string(i);
      objects_.push_back(object);
      nexus_.engine().RegisterObject(object, owner_, kernel::kKernelProcessId);
    }
  }

  // Goal + credential + proof so that `subject` passes on `object`.
  void GrantAccess(kernel::ProcessId subject, const std::string& object) {
    std::string name = nexus_.kernel().ProcessPrincipal(subject).ToString();
    nal::Formula goal = F("Certifier says safe(" + name + ")");
    ASSERT_TRUE(nexus_.engine().SetGoal(owner_, "use", object, goal).ok());
    nexus_.engine().SayAs(nal::Principal("Certifier"), F("safe(" + name + ")"));
    ASSERT_TRUE(
        nexus_.engine().SetProof(subject, "use", object, nal::proof::Premise(goal)).ok());
  }

  kernel::ProcessId owner_ = 0;
  std::vector<kernel::ProcessId> subjects_;
  std::vector<std::string> objects_;
};

TEST_F(BatchAuthorizationTest, BatchAgreesWithSerialDecisions) {
  GrantAccess(subjects_[0], objects_[0]);
  GrantAccess(subjects_[1], objects_[1]);
  // subjects_[2] gets no proof -> denied on guarded objects; objects_[2]
  // has no goal -> bootstrap policy.
  ASSERT_TRUE(nexus_.engine().SetGoal(owner_, "use", objects_[2], F("true")).ok());

  std::vector<kernel::AuthzRequest> requests;
  for (kernel::ProcessId subject : subjects_) {
    for (const std::string& object : objects_) {
      requests.push_back(kernel::AuthzRequest::Of(subject, "use", object));
    }
  }

  std::vector<Status> serial;
  serial.reserve(requests.size());
  nexus_.kernel().set_decision_cache_enabled(false);
  for (const kernel::AuthzRequest& request : requests) {
    serial.push_back(nexus_.kernel().Authorize(request));
  }
  std::vector<Status> batched = nexus_.kernel().AuthorizeBatch(requests);
  ASSERT_EQ(batched.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(batched[i].ok(), serial[i].ok()) << "request " << i;
  }
  // At least the two granted tuples allowed, and a denial exists.
  EXPECT_TRUE(batched[0].ok());
  EXPECT_FALSE(batched[1].ok());
}

TEST_F(BatchAuthorizationTest, BatchPopulatesDecisionCache) {
  GrantAccess(subjects_[0], objects_[0]);
  std::vector<kernel::AuthzRequest> requests = {
      kernel::AuthzRequest::Of(subjects_[0], "use", objects_[0])};
  uint64_t checks_before = nexus_.guard().stats().checks;
  EXPECT_TRUE(nexus_.kernel().AuthorizeBatch(requests)[0].ok());
  EXPECT_EQ(nexus_.guard().stats().checks, checks_before + 1);
  // The follow-up serial call is answered by the kernel decision cache.
  EXPECT_TRUE(nexus_.kernel().Authorize(requests[0]).ok());
  EXPECT_EQ(nexus_.guard().stats().checks, checks_before + 1);
}

TEST_F(BatchAuthorizationTest, BatchCollapsesDuplicateAuthorityQueries) {
  // All subjects' proofs lean on the SAME authority statement; the batch
  // consults the authority once, not once per request.
  nal::Formula statement = F("Clock says TimeNow < 1000");
  int consultations = 0;
  LambdaAuthority clock([](const nal::Formula&) { return true; },
                        [&consultations](const nal::Formula&) {
                          ++consultations;
                          return true;
                        });
  nexus_.guard().AddEmbeddedAuthority(&clock);

  std::vector<kernel::AuthzRequest> requests;
  for (const std::string& object : objects_) {
    ASSERT_TRUE(nexus_.engine().SetGoal(owner_, "use", object, statement).ok());
    for (kernel::ProcessId subject : subjects_) {
      ASSERT_TRUE(nexus_.engine()
                      .SetProof(subject, "use", object, nal::proof::Authority(statement))
                      .ok());
      requests.push_back(kernel::AuthzRequest::Of(subject, "use", object));
    }
  }

  std::vector<Status> decisions = nexus_.kernel().AuthorizeBatch(requests);
  for (const Status& status : decisions) {
    EXPECT_TRUE(status.ok());
  }
  EXPECT_EQ(consultations, 1);
  EXPECT_GE(nexus_.guard().stats().batch_collapsed_queries,
            requests.size() - 1);
}

}  // namespace
}  // namespace nexus::core
