#include "net/cert_exchange.h"

namespace nexus::net {

CertificateExchange::CertificateExchange(NetNode* node, kernel::ProcessId import_pid)
    : node_(node), import_pid_(import_pid) {
  node_->RegisterService(std::string(kServiceName), this);
}

Result<core::LabelHandle> CertificateExchange::PushLabel(const NodeId& peer,
                                                         kernel::ProcessId pid,
                                                         core::LabelHandle handle,
                                                         uint64_t timeout_us) {
  Result<core::Certificate> cert = node_->nexus().ExternalizeLabel(pid, handle);
  if (!cert.ok()) {
    return cert.status();
  }
  return PushCertificate(peer, *cert, timeout_us);
}

Result<core::LabelHandle> CertificateExchange::PushCertificate(const NodeId& peer,
                                                               const core::Certificate& cert,
                                                               uint64_t timeout_us) {
  Result<AttestedChannel*> channel = node_->Connect(peer);
  if (!channel.ok()) {
    return channel.status();
  }
  ++stats_.pushed;
  Result<Bytes> reply =
      (*channel)->Call(std::string(kServiceName), cert.Serialize(), timeout_us);
  if (!reply.ok()) {
    return reply.status();
  }
  ByteReader reader(*reply);
  Result<uint64_t> handle = reader.ReadU64();
  if (!handle.ok()) {
    return Internal("malformed certificate-exchange reply");
  }
  return core::LabelHandle{*handle};
}

Result<Bytes> CertificateExchange::Handle(AttestedChannel& channel, ByteView request) {
  (void)channel;  // Transport identity is irrelevant: the certificate
                  // verifies standalone against registered trust anchors.
  Result<core::Certificate> cert = core::Certificate::Deserialize(request);
  if (!cert.ok()) {
    ++stats_.rejected;
    return cert.status();
  }
  Result<core::LabelHandle> handle = node_->nexus().ImportPeerCertificate(import_pid_, *cert);
  if (!handle.ok()) {
    ++stats_.rejected;
    return handle.status();
  }
  ++stats_.imported;
  Bytes reply;
  AppendU64(reply, *handle);
  return reply;
}

}  // namespace nexus::net
