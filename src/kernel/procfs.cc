#include "kernel/procfs.h"

#include <algorithm>
#include <set>

namespace nexus::kernel {

void IntrospectionFs::Publish(ProcessId owner, const std::string& path, Provider provider) {
  // Snapshot the matching watchers under the writer lock, then notify with
  // no lock held (a watcher may read or publish re-entrantly).
  std::vector<Watcher> to_notify;
  Provider published;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    Node& node = nodes_[path];
    node = Node{owner, std::move(provider)};
    published = node.provider;
    for (const auto& [token, entry] : watchers_) {
      if (path.compare(0, entry.prefix.size(), entry.prefix) == 0) {
        to_notify.push_back(entry.watcher);
      }
    }
  }
  if (!to_notify.empty()) {
    std::string value = published();
    for (const Watcher& watcher : to_notify) {
      watcher(path, value);
    }
  }
}

void IntrospectionFs::PublishValue(ProcessId owner, const std::string& path, std::string value) {
  Publish(owner, path, [value = std::move(value)] { return value; });
}

Status IntrospectionFs::Remove(const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (nodes_.erase(path) == 0) {
    return NotFound("no introspection node at " + path);
  }
  return OkStatus();
}

void IntrospectionFs::RemoveOwned(ProcessId owner) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    if (it->second.owner == owner) {
      it = nodes_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<std::string> IntrospectionFs::Read(std::string_view path) const {
  Provider provider;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = nodes_.find(path);
    if (it == nodes_.end()) {
      return NotFound("no introspection node at " + std::string(path));
    }
    provider = it->second.provider;
  }
  // Invoked without the lock: providers may read other nodes (and a node
  // concurrently removed still answers this in-flight read).
  return provider();
}

Result<ProcessId> IntrospectionFs::Owner(std::string_view path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return NotFound("no introspection node at " + std::string(path));
  }
  return it->second.owner;
}

std::vector<std::string> IntrospectionFs::List(const std::string& directory) const {
  std::string prefix = directory;
  if (!prefix.empty() && prefix.back() != '/') {
    prefix += '/';
  }
  std::set<std::string> children;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [path, node] : nodes_) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string rest = path.substr(prefix.size());
    size_t slash = rest.find('/');
    children.insert(slash == std::string::npos ? rest : rest.substr(0, slash));
  }
  return std::vector<std::string>(children.begin(), children.end());
}

uint64_t IntrospectionFs::Watch(const std::string& prefix, Watcher watcher) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  uint64_t token = next_watch_token_++;
  watchers_[token] = WatchEntry{prefix, std::move(watcher)};
  return token;
}

void IntrospectionFs::Unwatch(uint64_t token) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  watchers_.erase(token);
}

}  // namespace nexus::kernel
