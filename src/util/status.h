// Lightweight status and result types used across the Nexus simulation.
//
// Kernel-style code paths (syscalls, guards, storage) report recoverable
// failures through Status / Result<T> rather than exceptions, so that error
// propagation stays visible at call sites and benchmark paths stay
// allocation-predictable.
#ifndef NEXUS_UTIL_STATUS_H_
#define NEXUS_UTIL_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace nexus {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,   // An authorization decision denied the operation.
  kFailedPrecondition, // System state does not admit the operation.
  kOutOfRange,
  kUnauthenticated,    // A credential or signature failed to verify.
  kResourceExhausted,  // Quota or capacity exceeded.
  kCorruption,         // Integrity check (hash/Merkle/DIR) mismatch.
  kUnavailable,        // Authority or service did not answer.
  kInternal,
};

// Human-readable name for an error code ("PERMISSION_DENIED" etc.).
std::string_view ErrorCodeName(ErrorCode code);

// A Status is either OK or an error code with a context message.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "PERMISSION_DENIED: proof does not discharge goal".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

Status OkStatus();
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status PermissionDenied(std::string message);
Status FailedPrecondition(std::string message);
Status OutOfRange(std::string message);
Status Unauthenticated(std::string message);
Status ResourceExhausted(std::string message);
Status Corruption(std::string message);
Status Unavailable(std::string message);
Status Internal(std::string message);

// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // OK if a value is present, the stored error otherwise.
  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(rep_);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace nexus

// Propagates an error Status from an expression that yields Status.
#define NEXUS_RETURN_IF_ERROR(expr)       \
  do {                                    \
    ::nexus::Status _status = (expr);     \
    if (!_status.ok()) {                  \
      return _status;                     \
    }                                     \
  } while (false)

#endif  // NEXUS_UTIL_STATUS_H_
