// Figure 6: authorization control-operation overhead.
//
// Left panel (linear scale in the paper): authority registration, goal
// clear/set, proof clear/set, credential insertion — all system-backed.
// Right panel (log scale): system-backed credential insertion (cred pid)
// vs cryptographically signed credential verification+insertion (cred key).
// The paper's claim: avoiding cryptography buys three orders of magnitude.
#include <benchmark/benchmark.h>

#include "bench_main.h"

#include "core/nexus.h"
#include "nal/parser.h"
#include "tpm/tpm.h"

namespace {

using nexus::ToBytes;

nexus::nal::Formula F(const std::string& text) { return *nexus::nal::ParseFormula(text); }

struct Harness {
  Harness() : tpm_rng(42), tpm(tpm_rng), nexus(&tpm) {
    owner = *nexus.CreateProcess("owner", ToBytes("o"));
    subject = *nexus.CreateProcess("subject", ToBytes("s"));
    nexus.engine().RegisterObject("fig6:obj", owner, nexus::kernel::kKernelProcessId);
    // Pre-issue a label and externalize it once: cred-key benchmarks verify
    // the certificate chain on every insertion.
    auto handle = *nexus.engine().Say(subject, "isTypeSafe(PGM)");
    certificate = *nexus.ExternalizeLabel(subject, handle);
  }
  nexus::Rng tpm_rng;
  nexus::tpm::Tpm tpm;
  nexus::core::Nexus nexus;
  nexus::kernel::ProcessId owner = 0, subject = 0;
  nexus::core::Certificate certificate;
};

Harness& H() {
  static Harness h;
  return h;
}

void BM_auth_add(benchmark::State& state) {
  Harness& h = H();
  for (auto _ : state) {
    h.nexus.guard().AddAuthorityPort(999);  // Registration cost only.
  }
}

void BM_goal_set(benchmark::State& state) {
  Harness& h = H();
  nexus::nal::Formula goal = F("Certifier says ok(subject)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.nexus.engine().SetGoal(h.owner, "use", "fig6:obj", goal));
  }
}

void BM_goal_clr(benchmark::State& state) {
  Harness& h = H();
  nexus::nal::Formula goal = F("Certifier says ok(subject)");
  for (auto _ : state) {
    state.PauseTiming();
    h.nexus.engine().SetGoal(h.owner, "use", "fig6:obj", goal);
    state.ResumeTiming();
    benchmark::DoNotOptimize(h.nexus.engine().ClearGoal(h.owner, "use", "fig6:obj"));
  }
}

void BM_proof_set(benchmark::State& state) {
  Harness& h = H();
  nexus::nal::Proof proof = nexus::nal::proof::Premise(F("Certifier says ok(subject)"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.nexus.engine().SetProof(h.subject, "use", "fig6:obj", proof));
  }
}

void BM_proof_clr(benchmark::State& state) {
  Harness& h = H();
  nexus::nal::Proof proof = nexus::nal::proof::Premise(F("Certifier says ok(subject)"));
  for (auto _ : state) {
    state.PauseTiming();
    h.nexus.engine().SetProof(h.subject, "use", "fig6:obj", proof);
    state.ResumeTiming();
    benchmark::DoNotOptimize(h.nexus.engine().ClearProof(h.subject, "use", "fig6:obj"));
  }
}

// cred add / cred pid: system-backed label insertion via the say syscall —
// parse, attribute over the secure channel, store. No cryptography.
void BM_cred_add_pid(benchmark::State& state) {
  Harness& h = H();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.nexus.engine().Say(h.subject, "isTypeSafe(PGM)"));
  }
}

// cred key: verify an RSA-signed certificate chain (EK -> NK -> statement)
// and import the statement. Three orders of magnitude above cred pid.
void BM_cred_add_key(benchmark::State& state) {
  Harness& h = H();
  const auto& ek = h.tpm.endorsement_public_key();
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.nexus.ImportCertificate(h.subject, h.certificate, ek));
  }
}

// For context: the signing side (externalization), also cryptographic.
void BM_cred_externalize_key(benchmark::State& state) {
  Harness& h = H();
  auto handle = *h.nexus.engine().Say(h.subject, "isTypeSafe(PGM)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.nexus.ExternalizeLabel(h.subject, handle));
  }
}

BENCHMARK(BM_auth_add);
BENCHMARK(BM_goal_set);
BENCHMARK(BM_goal_clr);
BENCHMARK(BM_proof_set);
BENCHMARK(BM_proof_clr);
// Fixed iteration counts keep the labelstore growth bounded and identical
// across runs (adaptive counts would let the pid case insert millions of
// labels and distort the comparison).
BENCHMARK(BM_cred_add_pid)->Iterations(50000);
BENCHMARK(BM_cred_add_key)->Iterations(2000);
BENCHMARK(BM_cred_externalize_key)->Iterations(100);

}  // namespace

NEXUS_BENCHMARK_MAIN();
