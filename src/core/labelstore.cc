#include "core/labelstore.h"

namespace nexus::core {

LabelHandle LabelStore::Insert(const nal::Principal& speaker, const nal::Formula& statement) {
  nal::Interner& interner = nal::Interner::Global();
  nal::FormulaId id = interner.Intern(nal::FormulaNode::Says(speaker, statement));
  LabelHandle handle = next_handle_++;
  labels_[handle] = Label{interner.Resolve(id), id};
  ++version_;
  return handle;
}

Result<LabelHandle> LabelStore::InsertLabel(const nal::Formula& says_formula) {
  if (says_formula == nullptr || says_formula->kind() != nal::FormulaKind::kSays) {
    return InvalidArgument("labels must have the form 'P says S'");
  }
  if (!nal::IsGround(says_formula)) {
    return InvalidArgument("labels must be ground formulas");
  }
  nal::Interner& interner = nal::Interner::Global();
  nal::FormulaId id = interner.Intern(says_formula);
  LabelHandle handle = next_handle_++;
  labels_[handle] = Label{interner.Resolve(id), id};
  ++version_;
  return handle;
}

Result<nal::Formula> LabelStore::Get(LabelHandle handle) const {
  auto it = labels_.find(handle);
  if (it == labels_.end()) {
    return NotFound("no such label");
  }
  return it->second.formula;
}

nal::FormulaId LabelStore::IdOf(LabelHandle handle) const {
  auto it = labels_.find(handle);
  return it == labels_.end() ? nal::kInvalidFormulaId : it->second.id;
}

Status LabelStore::Delete(LabelHandle handle) {
  if (labels_.erase(handle) == 0) {
    return NotFound("no such label");
  }
  ++version_;
  return OkStatus();
}

Status LabelStore::Transfer(LabelHandle handle, LabelStore& destination) {
  auto it = labels_.find(handle);
  if (it == labels_.end()) {
    return NotFound("no such label");
  }
  // Both stores' version counters advance (destination via InsertLabel):
  // cached guard verdicts that depended on either credential set are
  // invalidated by their state-version stamps.
  destination.InsertLabel(it->second.formula).status();  // Ground says-formula: cannot fail.
  labels_.erase(it);
  ++version_;
  return OkStatus();
}

std::vector<nal::Formula> LabelStore::All() const {
  std::vector<nal::Formula> out;
  out.reserve(labels_.size());
  for (const auto& [handle, label] : labels_) {
    out.push_back(label.formula);
  }
  return out;
}

}  // namespace nexus::core
