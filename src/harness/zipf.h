// Zipf-distributed rank sampling for the workload driver.
//
// YCSB-style bounded zipfian generator: the zeta normalization constant is
// precomputed once at construction (O(n) — ~milliseconds for a million
// ranks), after which each sample is a handful of floating-point ops on
// the caller's deterministic Rng. Rank 0 is the hottest; the driver maps
// hot ranks onto its proof-holder processes so the allow path gets the
// most audit coverage.
#ifndef NEXUS_HARNESS_ZIPF_H_
#define NEXUS_HARNESS_ZIPF_H_

#include <cmath>
#include <cstdint>

#include "util/rng.h"

namespace nexus::harness {

class ZipfSampler {
 public:
  // `n` ranks, skew `theta` in [0, 1). theta = 0 degenerates to uniform;
  // 0.99 is the YCSB default ("hotspot" skew).
  ZipfSampler(uint64_t n, double theta) : n_(n == 0 ? 1 : n), theta_(theta) {
    if (theta_ <= 0.0) {
      uniform_ = true;
      return;
    }
    double zetan = 0.0;
    for (uint64_t i = 1; i <= n_; ++i) {
      zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
    zetan_ = zetan;
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan);
    threshold1_ = 1.0 / zetan_;
    threshold2_ = (1.0 + std::pow(0.5, theta_)) / zetan_;
  }

  uint64_t n() const { return n_; }

  // A 0-based rank in [0, n), rank 0 most popular.
  uint64_t Sample(Rng& rng) const {
    if (uniform_) {
      return rng.NextBelow(n_);
    }
    double u = rng.NextDouble();
    if (u < threshold1_) {
      return 0;
    }
    if (u < threshold2_) {
      return 1;
    }
    uint64_t rank = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  uint64_t n_;
  double theta_;
  bool uniform_ = false;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
  double threshold1_ = 0.0;
  double threshold2_ = 0.0;
};

}  // namespace nexus::harness

#endif  // NEXUS_HARNESS_ZIPF_H_
