#include "core/goalstore.h"

namespace nexus::core {

Status ValidateAuthzName(std::string_view name, std::string_view what) {
  if (name.find('\x1f') != std::string_view::npos) {
    return InvalidArgument(std::string(what) +
                           " names may not contain the reserved separator \\x1f");
  }
  return OkStatus();
}

Status GoalStore::SetGoal(kernel::OpId op, kernel::ObjectId obj, nal::Formula goal,
                          kernel::PortId guard_port) {
  if (goal == nullptr) {
    return InvalidArgument("null goal formula");
  }
  nal::Interner& interner = nal::Interner::Global();
  nal::FormulaId goal_id = interner.Intern(goal);
  std::unique_lock<std::shared_mutex> lock(mu_);
  goals_[Key(op, obj)] = GoalEntry{interner.Resolve(goal_id), goal_id, guard_port};
  return OkStatus();
}

Status GoalStore::SetGoal(const std::string& operation, const std::string& object,
                          nal::Formula goal, kernel::PortId guard_port) {
  NEXUS_RETURN_IF_ERROR(ValidateAuthzName(operation, "operation"));
  NEXUS_RETURN_IF_ERROR(ValidateAuthzName(object, "object"));
  return SetGoal(kernel::InternOp(operation), kernel::InternObject(object), std::move(goal),
                 guard_port);
}

Status GoalStore::ClearGoal(kernel::OpId op, kernel::ObjectId obj) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (goals_.erase(Key(op, obj)) == 0) {
    return NotFound("no goal for " + std::string(kernel::OpName(op)) + " on " +
                    std::string(kernel::ObjectName(obj)));
  }
  return OkStatus();
}

Status GoalStore::ClearGoal(const std::string& operation, const std::string& object) {
  return ClearGoal(kernel::InternOp(operation), kernel::InternObject(object));
}

std::optional<GoalEntry> GoalStore::Get(kernel::OpId op, kernel::ObjectId obj) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = goals_.find(Key(op, obj));
  if (it == goals_.end()) {
    return std::nullopt;
  }
  return it->second;
}

Status ObjectRegistry::Register(kernel::ObjectId object, kernel::ProcessId owner,
                                kernel::ProcessId manager) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  entries_[object] = Entry{owner, manager};
  return OkStatus();
}

Status ObjectRegistry::Register(const std::string& object, kernel::ProcessId owner,
                                kernel::ProcessId manager) {
  NEXUS_RETURN_IF_ERROR(ValidateAuthzName(object, "object"));
  return Register(kernel::InternObject(object), owner, manager);
}

Status ObjectRegistry::TransferOwnership(kernel::ObjectId object,
                                         kernel::ProcessId new_owner) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(object);
  if (it == entries_.end()) {
    return NotFound("unknown object: " + std::string(kernel::ObjectName(object)));
  }
  it->second.owner = new_owner;
  return OkStatus();
}

std::optional<kernel::ProcessId> ObjectRegistry::Owner(kernel::ObjectId object) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(object);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second.owner;
}

std::optional<kernel::ProcessId> ObjectRegistry::Manager(kernel::ObjectId object) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = entries_.find(object);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second.manager;
}

}  // namespace nexus::core
