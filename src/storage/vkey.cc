#include "storage/vkey.h"

#include <algorithm>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace nexus::storage {

namespace {

constexpr uint64_t kWrapNonce = 0x77ab;

crypto::AesKey KeyFromBytes(ByteView material) {
  crypto::Sha256Digest digest = crypto::Sha256::Hash(material);
  crypto::AesKey key;
  std::copy_n(digest.begin(), key.size(), key.begin());
  return key;
}

}  // namespace

VkeyTable::VkeyTable(tpm::Tpm* tpm, Rng* rng) : tpm_(tpm), rng_(rng) {
  // The default Nexus wrapping key is random at first construction and kept
  // sealed to the current PCR state; a modified kernel cannot unseal it.
  Bytes material = rng_->RandomBytes(32);
  default_key_ = KeyFromBytes(material);
  Result<Bytes> sealed = tpm_->Seal(material, {0, 1, 2});
  default_key_sealed_ = sealed.ok() ? *sealed : Bytes{};
}

Result<VkeyId> VkeyTable::Create() {
  VkeyId id = next_id_++;
  Bytes material = rng_->RandomBytes(32);
  keys_[id] = KeyFromBytes(material);
  return id;
}

Status VkeyTable::Destroy(VkeyId id) {
  if (keys_.erase(id) == 0) {
    return NotFound("no such VKEY");
  }
  return OkStatus();
}

Result<crypto::AesKey> VkeyTable::KeyFor(VkeyId id) const {
  if (id == 0) {
    return default_key_;
  }
  auto it = keys_.find(id);
  if (it == keys_.end()) {
    return NotFound("no such VKEY");
  }
  return it->second;
}

Result<Bytes> VkeyTable::Encrypt(VkeyId id, uint64_t nonce, uint64_t offset,
                                 ByteView plaintext) const {
  Result<crypto::AesKey> key = KeyFor(id);
  if (!key.ok()) {
    return key.status();
  }
  return crypto::AesCtr(*key, nonce).Crypt(offset, plaintext);
}

Result<Bytes> VkeyTable::Decrypt(VkeyId id, uint64_t nonce, uint64_t offset,
                                 ByteView ciphertext) const {
  return Encrypt(id, nonce, offset, ciphertext);  // CTR is symmetric.
}

Result<Bytes> VkeyTable::Externalize(VkeyId id, VkeyId wrapping) const {
  auto it = keys_.find(id);
  if (it == keys_.end()) {
    return NotFound("no such VKEY");
  }
  Result<crypto::AesKey> wrap_key = KeyFor(wrapping);
  if (!wrap_key.ok()) {
    return wrap_key.status();
  }
  Bytes key_bytes(it->second.begin(), it->second.end());
  Bytes wrapped = crypto::AesCtr(*wrap_key, kWrapNonce).Crypt(0, key_bytes);
  Bytes mac_key(wrap_key->begin(), wrap_key->end());
  Bytes mac = crypto::HmacSha256Bytes(mac_key, wrapped);
  Bytes blob;
  AppendLengthPrefixed(blob, mac);
  AppendLengthPrefixed(blob, wrapped);
  return blob;
}

Result<VkeyId> VkeyTable::Internalize(ByteView blob, VkeyId wrapping) {
  Result<crypto::AesKey> wrap_key = KeyFor(wrapping);
  if (!wrap_key.ok()) {
    return wrap_key.status();
  }
  ByteReader reader(blob);
  Result<Bytes> mac = reader.ReadLengthPrefixed();
  if (!mac.ok()) {
    return mac.status();
  }
  Result<Bytes> wrapped = reader.ReadLengthPrefixed();
  if (!wrapped.ok()) {
    return wrapped.status();
  }
  Bytes mac_key(wrap_key->begin(), wrap_key->end());
  if (!ConstantTimeEquals(*mac, crypto::HmacSha256Bytes(mac_key, *wrapped))) {
    return Corruption("wrapped key integrity check failed");
  }
  Bytes key_bytes = crypto::AesCtr(*wrap_key, kWrapNonce).Crypt(0, *wrapped);
  if (key_bytes.size() != crypto::kAesKeySize) {
    return InvalidArgument("wrapped blob has wrong key size");
  }
  VkeyId id = next_id_++;
  crypto::AesKey key;
  std::copy_n(key_bytes.begin(), key.size(), key.begin());
  keys_[id] = key;
  return id;
}

}  // namespace nexus::storage
