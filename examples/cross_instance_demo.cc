// Cross-instance attestation walkthrough.
//
// Boots two Nexus instances on separate simulated TPMs, establishes an
// attested channel, ships a NotABot human-presence certificate from the
// user's home machine to a Fauxbook provider, and authorizes a federated
// signup whose proof combines the imported credential with a live
// remote-authority query back to the home instance. Then demonstrates the
// rejection paths: tampered certificates, unknown TPMs, and dead sessions.
//
// Exits 0 iff every step behaves as required.
#include <cstdio>

#include "apps/federation.h"
#include "net/transport.h"
#include "tpm/tpm.h"

namespace {

int failures = 0;

void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) {
    ++failures;
  }
}

}  // namespace

int main() {
  using namespace nexus;

  std::printf("== Booting two Nexus instances on separate TPMs\n");
  Rng rng_provider(1), rng_home(2);
  tpm::Tpm tpm_provider(rng_provider), tpm_home(rng_home);
  core::Nexus provider(&tpm_provider, core::NexusOptions{.seed = 10});
  core::Nexus home(&tpm_home, core::NexusOptions{.seed = 20});
  std::printf("  provider: %s\n", provider.ExternalKernelPrincipal().ToString().c_str());
  std::printf("  home:     %s\n", home.ExternalKernelPrincipal().ToString().c_str());

  net::Transport transport(9);
  transport.SetLink("provider", "home", net::LinkConfig{.latency_us = 500, .drop_rate = 0.0});
  apps::PresenceFederation fed(&provider, &home, &transport);

  std::printf("== Attested handshake (EK-endorsed NK, transcript signatures)\n");
  uint64_t t0 = transport.now_us();
  Check(fed.Connect().ok(), "channel established");
  std::printf("  simulated handshake time: %llu us\n",
              static_cast<unsigned long long>(transport.now_us() - t0));
  net::AttestedChannel* channel = fed.provider_net().ChannelTo("home");
  std::printf("  provider attests peer as: %s\n",
              channel->peer_principal().ToString().c_str());

  std::printf("== Human presence minted on home, shipped to provider\n");
  fed.Type("alice", 250);
  Check(fed.ShipPresence("alice").ok(), "presence certificate imported by provider");

  std::printf("== Federated signup: imported credential + live remote authority\n");
  Status signup = fed.SignUp("alice");
  Check(signup.ok(), "guard grants signup (remote-authority query crossed the channel)");
  Check(fed.Post("alice", "hello from another machine").ok(), "alice posts to Fauxbook");
  Check(fed.session_authority().stats().vouched >= 1, "home instance vouched for the session");

  std::printf("== Attacks that must not work\n");
  fed.Type("bot", 2);
  fed.ShipPresence("bot");
  Check(!fed.SignUp("bot").ok(), "too few keypresses: signup denied");

  fed.Type("mallory", 999);
  fed.ShipPresence("mallory");
  fed.EndSession("mallory");
  Check(!fed.SignUp("mallory").ok(), "valid certificate, dead session: signup denied");

  // A third machine the provider never registered.
  Rng rng_stranger(3);
  tpm::Tpm tpm_stranger(rng_stranger);
  core::Nexus stranger(&tpm_stranger, core::NexusOptions{.seed = 30});
  stranger.RegisterPeer("provider", tpm_provider.endorsement_public_key());
  net::NetNode stranger_node(&stranger, &transport, "stranger");
  Check(!stranger_node.Connect("provider").ok(), "unknown TPM: handshake rejected");

  std::printf("== %s\n", failures == 0 ? "ALL STEPS PASSED" : "FAILURES PRESENT");
  return failures == 0 ? 0 : 1;
}
