#include "storage/vdir.h"

#include <algorithm>

namespace nexus::storage {

namespace {

constexpr int kDirCur = 0;
constexpr int kDirNew = 1;

}  // namespace

crypto::Sha1Digest VdirTable::DigestOf(ByteView data) { return crypto::Sha1::Hash(data); }

Bytes VdirTable::Serialize() const {
  Bytes out;
  AppendU32(out, next_id_);
  AppendU32(out, static_cast<uint32_t>(values_.size()));
  for (const auto& [id, value] : values_) {
    AppendU32(out, id);
    Append(out, ByteView(value.data(), value.size()));
  }
  return out;
}

Result<VdirTable> VdirTable::Boot(tpm::Tpm* tpm, BlockDevice* disk) {
  VdirTable table(tpm, disk);

  bool have_current = disk->Exists(kStateCurrentPath);
  bool have_new = disk->Exists(kStateNewPath);

  Result<crypto::Sha1Digest> dir_cur = tpm->ReadDir(kDirCur);
  Result<crypto::Sha1Digest> dir_new = tpm->ReadDir(kDirNew);
  if (!dir_cur.ok() || !dir_new.ok()) {
    return PermissionDenied("TPM DIRs inaccessible: wrong kernel measured?");
  }

  if (!have_current && !have_new) {
    // First boot: anchor an empty table.
    if (*dir_cur != crypto::Sha1Digest{} || *dir_new != crypto::Sha1Digest{}) {
      return Corruption("state files missing but DIRs non-zero: disk wiped while dormant");
    }
    NEXUS_RETURN_IF_ERROR(table.Flush());
    return table;
  }

  auto matches = [disk](const char* path, const crypto::Sha1Digest& dir) {
    Result<Bytes> data = disk->Read(path);
    return data.ok() && DigestOf(*data) == dir;
  };
  bool cur_ok = matches(kStateCurrentPath, *dir_cur);
  bool new_ok = matches(kStateNewPath, *dir_new);

  const char* chosen = nullptr;
  if (cur_ok && new_ok) {
    chosen = kStateNewPath;  // Both match: new is the latest state.
  } else if (new_ok) {
    chosen = kStateNewPath;
  } else if (cur_ok) {
    chosen = kStateCurrentPath;
  } else {
    return Corruption("neither state file matches its DIR: on-disk state was modified while "
                      "the kernel was dormant; aborting boot");
  }

  Result<Bytes> data = disk->Read(chosen);
  if (!data.ok()) {
    return data.status();
  }
  // Inline parse (kept here so Parse/Serialize stay symmetric).
  ByteReader reader(*data);
  Result<uint32_t> next_id = reader.ReadU32();
  if (!next_id.ok()) {
    return Corruption("VDIR table truncated");
  }
  Result<uint32_t> count = reader.ReadU32();
  if (!count.ok()) {
    return Corruption("VDIR table truncated");
  }
  std::map<VdirId, VdirValue> values;
  const Bytes& raw = *data;
  size_t offset = 8;
  for (uint32_t i = 0; i < *count; ++i) {
    if (offset + 4 + crypto::kSha1DigestSize > raw.size()) {
      return Corruption("VDIR table truncated");
    }
    VdirId id = (static_cast<uint32_t>(raw[offset]) << 24) |
                (static_cast<uint32_t>(raw[offset + 1]) << 16) |
                (static_cast<uint32_t>(raw[offset + 2]) << 8) |
                static_cast<uint32_t>(raw[offset + 3]);
    offset += 4;
    VdirValue value;
    std::copy_n(raw.begin() + static_cast<ptrdiff_t>(offset), value.size(), value.begin());
    offset += value.size();
    values[id] = value;
  }
  table.next_id_ = *next_id;
  table.values_ = std::move(values);

  // Re-anchor so both DIRs and both files agree going forward.
  NEXUS_RETURN_IF_ERROR(table.Flush());
  return table;
}

Status VdirTable::Flush() {
  Bytes serialized = Serialize();
  crypto::Sha1Digest digest = DigestOf(serialized);
  // Step 1: new state file.
  NEXUS_RETURN_IF_ERROR(disk_->Write(kStateNewPath, serialized));
  // Step 2: DIRnew.
  NEXUS_RETURN_IF_ERROR(tpm_->WriteDir(kDirNew, digest));
  // Step 3: DIRcur.
  NEXUS_RETURN_IF_ERROR(tpm_->WriteDir(kDirCur, digest));
  // Step 4: current state file.
  NEXUS_RETURN_IF_ERROR(disk_->Write(kStateCurrentPath, serialized));
  return OkStatus();
}

Result<VdirId> VdirTable::Allocate() {
  VdirId id = next_id_++;
  values_[id] = VdirValue{};
  NEXUS_RETURN_IF_ERROR(Flush());
  return id;
}

Status VdirTable::Free(VdirId id) {
  if (values_.erase(id) == 0) {
    return NotFound("no such VDIR");
  }
  return Flush();
}

Status VdirTable::Write(VdirId id, const VdirValue& value) {
  auto it = values_.find(id);
  if (it == values_.end()) {
    return NotFound("no such VDIR");
  }
  VdirValue previous = it->second;
  it->second = value;
  Status flushed = Flush();
  if (!flushed.ok()) {
    // The in-memory view must not claim success the disk cannot back.
    it->second = previous;
    return flushed;
  }
  return OkStatus();
}

Result<VdirValue> VdirTable::Read(VdirId id) const {
  auto it = values_.find(id);
  if (it == values_.end()) {
    return NotFound("no such VDIR");
  }
  return it->second;
}

}  // namespace nexus::storage
