// Federated human-presence (§4 Not-A-Bot, stretched across machines).
//
// The scenario the net/ subsystem exists for: Fauxbook runs on a provider
// instance, the user's keyboard lives on their home instance. The home
// keyboard driver mints a TPM-rooted keypress certificate (NotABot), the
// federation mesh gossips it to the provider, and the provider's guard
// admits the signup only if
//   (a) the imported credential — speaker
//       tpm.<ek>.nexus.<nk>.boot.<nbk>.ipd.<driver> — shows enough
//       keypresses, and
//   (b) a K-of-N quorum of home instances confirms the session is still
//       live (fresh dynamic state, never cached).
// Labels travel as indefinitely-valid certificates; liveness travels as
// untransferable authority answers — the paper's split, now distributed.
//
// Topology: trust bootstraps as a STAR (the provider pins each home's EK
// out of band and vice versa); the mesh gossip then converges the full
// membership so homes learn each other transitively and anti-entropy can
// run all-to-all. With one home this degrades exactly to the original
// pairwise federation (quorum K = 1).
#ifndef NEXUS_APPS_FEDERATION_H_
#define NEXUS_APPS_FEDERATION_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/fauxbook.h"
#include "apps/notabot.h"
#include "core/nexus.h"
#include "net/cert_exchange.h"
#include "net/mesh/mesh.h"
#include "net/mesh/quorum.h"
#include "net/remote_authority.h"

namespace nexus::apps {

class PresenceFederation {
 public:
  struct Config {
    net::NodeId provider_node = "provider";
    // First home's node id; additional homes append "2", "3", ...
    net::NodeId home_node = "home";
    uint64_t min_keypresses = 100;
    uint64_t remote_timeout_us = 10000;
    // K yes-votes required for session liveness; 0 = majority of homes.
    size_t quorum = 0;
  };

  // Original two-instance federation (one home, quorum of one).
  PresenceFederation(core::Nexus* provider, core::Nexus* home, net::Transport* transport);
  PresenceFederation(core::Nexus* provider, core::Nexus* home, net::Transport* transport,
                     const Config& config);
  // N-home federation: every home runs a keyboard driver and a session-
  // liveness authority; signups need a K-of-N quorum.
  PresenceFederation(core::Nexus* provider, const std::vector<core::Nexus*>& homes,
                     net::Transport* transport, const Config& config);
  ~PresenceFederation();

  // Establishes the star of attested channels, joins every node to the
  // mesh, and runs anti-entropy until the replicated registries converge.
  Status Connect();

  // ------------------------------------------------------------ home side
  // Physical keypresses in a session, observed at home `home_index`'s
  // driver. Session liveness replicates to every home (the quorum's
  // members answer from their own copy).
  void Type(const std::string& session, int presses) { Type(session, presses, 0); }
  void Type(const std::string& session, int presses, size_t home_index);
  // Mints <driver> says keypresses(session, n) at the session's home,
  // externalizes it, and publishes the certificate through the mesh; the
  // provider's gossip import lands it in the web server's labelstore.
  Status ShipPresence(const std::string& session) { return ShipPresence(session, 0); }
  Status ShipPresence(const std::string& session, size_t home_index);
  // Ends the session everywhere: the quorum stops vouching immediately.
  void EndSession(const std::string& session);

  // -------------------------------------------------------- provider side
  // The guarded signup: finds the imported presence credential, checks the
  // threshold, and runs the guard with a proof combining the credential
  // premise and the quorum-vouched session-liveness authority leaf.
  Status SignUp(const std::string& session);
  // Posting requires a completed signup.
  Status Post(const std::string& session, const std::string& text);

  // OK iff construction wired everything (peer pinning, driver processes).
  Status init_status() const { return init_status_; }

  Fauxbook& fauxbook() { return *fauxbook_; }
  net::NetNode& provider_net() { return *provider_net_; }
  net::NetNode& home_net() { return home_net(0); }
  net::NetNode& home_net(size_t home_index) { return *homes_[home_index]->net; }
  net::mesh::MeshNode& provider_mesh() { return *provider_mesh_; }
  net::mesh::MeshNode& home_mesh(size_t home_index) { return *homes_[home_index]->mesh; }
  net::CertificateExchange& exchange() { return *exchange_; }
  // The provider-side leg to home 0 (kept for the two-instance tests).
  net::RemoteAuthority& session_authority() { return *homes_[0]->remote; }
  net::mesh::QuorumAuthority& session_quorum() { return *session_quorum_; }
  kernel::ProcessId home_driver_pid() const { return homes_[0]->driver_pid; }
  size_t home_count() const { return homes_.size(); }
  const net::NodeId& home_node_id(size_t home_index) const {
    return homes_[home_index]->node_id;
  }

 private:
  static constexpr const char* kSignupObject = "fauxbook:federation";

  // One home instance's full complement: network presence, mesh
  // membership, keyboard driver, certificate exchange, and the liveness
  // authority (home side) plus the provider's remote leg to it.
  struct Home {
    core::Nexus* nexus = nullptr;
    net::NodeId node_id;
    std::unique_ptr<net::NetNode> net;
    std::unique_ptr<net::mesh::MeshNode> mesh;
    kernel::ProcessId driver_pid = 0;
    std::unique_ptr<KeyboardDriver> driver;
    std::unique_ptr<net::CertificateExchange> exchange;
    std::unique_ptr<core::LambdaAuthority> liveness;
    std::unique_ptr<net::AuthorityService> authority_service;
    std::unique_ptr<net::RemoteAuthority> remote;
  };

  core::Nexus* provider_;
  Config config_;
  net::Transport* transport_;
  Status init_status_;

  std::unique_ptr<net::NetNode> provider_net_;
  std::unique_ptr<net::mesh::MeshNode> provider_mesh_;
  std::unique_ptr<Fauxbook> fauxbook_;
  std::unique_ptr<net::CertificateExchange> exchange_;
  std::vector<std::unique_ptr<Home>> homes_;
  std::unique_ptr<net::mesh::QuorumAuthority> session_quorum_;

  std::set<std::string> live_sessions_;  // Replicated to every home's authority.
  std::set<std::string> signed_up_;
};

}  // namespace nexus::apps

#endif  // NEXUS_APPS_FEDERATION_H_
