#include "storage/blockdev.h"

namespace nexus::storage {

Status BlockDevice::Write(const std::string& name, ByteView data) {
  if (armed_) {
    if (remaining_writes_ <= 0) {
      ++stats_.failed_writes;
      remaining_writes_ = -1;
      return Unavailable("power failure: write lost");
    }
    --remaining_writes_;
    if (remaining_writes_ == 0 && tear_last_) {
      // Torn write: only the first half reaches the medium.
      ++stats_.writes;
      regions_[name] = Bytes(data.begin(), data.begin() + static_cast<ptrdiff_t>(data.size() / 2));
      remaining_writes_ = -1;
      return Unavailable("power failure: torn write");
    }
  }
  ++stats_.writes;
  regions_[name] = Bytes(data.begin(), data.end());
  return OkStatus();
}

Result<Bytes> BlockDevice::Read(const std::string& name) const {
  ++const_cast<BlockDevice*>(this)->stats_.reads;
  auto it = regions_.find(name);
  if (it == regions_.end()) {
    return NotFound("no such region: " + name);
  }
  return it->second;
}

Status BlockDevice::Delete(const std::string& name) {
  if (regions_.erase(name) == 0) {
    return NotFound("no such region: " + name);
  }
  return OkStatus();
}

void BlockDevice::FailAfterWrites(int n, bool tear_last) {
  armed_ = true;
  tear_last_ = tear_last;
  remaining_writes_ = n;
}

void BlockDevice::ClearFailure() {
  armed_ = false;
  tear_last_ = false;
  remaining_writes_ = 0;
}

Bytes* BlockDevice::MutableRaw(const std::string& name) {
  auto it = regions_.find(name);
  return it == regions_.end() ? nullptr : &it->second;
}

}  // namespace nexus::storage
