// SHA-1 (FIPS 180-4). The TPM v1.1 interface is SHA-1 based: PCR extends and
// DIR registers are 160-bit values. Used only where the TPM model requires
// it; everything else uses SHA-256.
#ifndef NEXUS_CRYPTO_SHA1_H_
#define NEXUS_CRYPTO_SHA1_H_

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace nexus::crypto {

inline constexpr size_t kSha1DigestSize = 20;
using Sha1Digest = std::array<uint8_t, kSha1DigestSize>;

class Sha1 {
 public:
  Sha1();

  void Update(ByteView data);
  Sha1Digest Finish();

  static Sha1Digest Hash(ByteView data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
  uint64_t total_bits_ = 0;
};

}  // namespace nexus::crypto

#endif  // NEXUS_CRYPTO_SHA1_H_
