// TraceAuditor: after-the-fact checking of concurrent authorization
// traces against the paper's single-threaded model.
//
// Inputs are the two observability streams the kernel already produces:
//   - FlightRecorder events, harvested per ring via the Drain() cursor API
//     (per-ring order is exact: timestamps are ring-local sequence
//     numbers, and a logical call's synchronous stages run on one thread,
//     so a trace occupies a CONTIGUOUS run of slots in its ring);
//   - MutationLog records, each stamped with the EXACT post-bump
//     per-shard decision-cache generations of the mutated subregion (read
//     under the same lock as the invalidation bump, so a stamp can never
//     overshoot a concurrent bump).
//
// Two families of checks:
//
// SERIALIZABILITY. Every verdict event carries the subregion generation
// it is valid under (the probe's on a cache hit; re-read after the engine
// returned on a miss). Joining [probe_gen, verdict_gen] against the
// mutation timeline for the verdict's (subregion-index, shard) yields the
// set of policy states a serial replay could have shown this call:
// every state in the window, plus the pair's next installed goal past the
// window (a mutation installs state BEFORE its generation bump lands, so
// an in-flight miss may legitimately observe it early — the same race the
// kernel's InsertIfUnchanged discipline handles). A verdict (or a guard's
// observed goal, stamped into kGuardCheck.generation) outside that
// admissible set is a serializability violation: no interleaving of the
// logged mutations replayed serially produces it.
//
// IBOS-STYLE STRUCTURAL INVARIANTS (the interposition surface):
//   - guard-present: a chain that evaluated an engine miss on an audited
//     (op, obj) — audited pairs always carry goals, so the bootstrap
//     DefaultPolicy never applies — must contain its guard-check (or
//     designated-guard upcall) stage;
//   - generation monotonicity: within one ring, generation stamps for one
//     (subregion, shard) never decrease (the counters only grow, and a
//     thread reads them in program order) — a verdict observed BELOW the
//     ring's high-water mark outlived an invalidation it should not have;
//   - interceptor traversal: every kCall event naming a port registered
//     as interposed must carry kTraceFlagInterposed.
//
// Drop tolerance: 256-slot rings wrap under load faster than any harvest
// cadence; the auditor treats the drained stream as a SAMPLE. Value
// checks apply to every verdict seen (verdict events are self-sufficient
// via their generation stamp); structural checks apply only to chains
// whose contiguity proves them complete. Dropped-event counts are
// reported so a run's coverage is explicit.
//
// Threading contract: one ingesting thread at a time (the driver's
// harvest thread); Finish() after ingestion stops. The auditor never
// touches the kernel — it can equally audit hand-built event sequences
// (the negative-path tests do).
#ifndef NEXUS_HARNESS_AUDITOR_H_
#define NEXUS_HARNESS_AUDITOR_H_

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernel/decision_cache.h"
#include "kernel/trace.h"
#include "kernel/types.h"
#include "nal/interner.h"

namespace nexus::harness {

class TraceAuditor {
 public:
  struct Config {
    // Must mirror the audited kernel's DecisionCache::Config — the
    // auditor recomputes shard and subregion placement.
    size_t cache_shards = 8;
    size_t cache_subregions = 64;
    // Flag audited-pair miss chains lacking a guard stage.
    bool require_guard_on_miss = true;
    // When true, every mutation that can bump an audited subregion's
    // generations went through the (enabled) MutationLog, so a verdict
    // generation above the final logged stamp is itself a violation
    // ("generation from the future"). The workload driver guarantees
    // this; hand-fed traces may not.
    bool complete_mutation_log = true;
    size_t max_violation_samples = 32;
  };

  struct Violation {
    std::string kind;    // "serializability" | "stale_generation" | ...
    std::string detail;  // Human-readable specifics.
  };

  struct Report {
    uint64_t events_ingested = 0;
    uint64_t mutations_ingested = 0;
    uint64_t events_dropped = 0;  // Ring wraparound (coverage, not error).
    uint64_t chains_finalized = 0;
    uint64_t complete_chains = 0;
    uint64_t verdicts_checked = 0;  // Audited-pair verdicts value-checked.
    uint64_t serializability_violations = 0;
    uint64_t stale_generation_violations = 0;
    uint64_t guard_bypass_violations = 0;
    uint64_t interposition_violations = 0;
    // A verdict served below a ring high-water mark raised by a REMOTE
    // invalidation (mesh cross-node coherence): the cached answer outlived
    // a peer's goal/proof change that should have retired it.
    uint64_t remote_invalidation_violations = 0;
    std::vector<Violation> samples;  // First max_violation_samples.

    uint64_t total_violations() const {
      return serializability_violations + stale_generation_violations +
             guard_bypass_violations + interposition_violations +
             remote_invalidation_violations;
    }
    bool clean() const { return total_violations() == 0; }
    std::string Summary() const;
  };

  TraceAuditor();
  explicit TraceAuditor(Config config);

  // Registers an audited (op, obj) pair. `allow_goal_id` is the interned
  // goal formula under which proof holders are allowed; any other
  // installed goal denies everyone. `initial_goal_id` is the goal in
  // force before the first logged mutation. `proof_holders` is the fixed
  // set of subjects holding valid proofs for this pair (proofs must not
  // be mutated mid-audit; proof mutations are consumed for their
  // generation bumps only).
  void AuditPair(kernel::OpId op, kernel::ObjectId obj, nal::FormulaId allow_goal_id,
                 nal::FormulaId initial_goal_id,
                 std::span<const kernel::ProcessId> proof_holders);

  // Every complete chain whose kCall event names `port` must have
  // traversed an interceptor.
  void RequireInterposed(kernel::PortId port);

  // Feed one drained ring segment (events in ring order; `begin_seq` from
  // FlightRecorder::DrainedSegment detects front truncation between
  // visits, `lossless_start` whether anything was lost BEFORE this
  // segment — a cursor's first visit to a wrapped ring has no previous
  // position for begin_seq to be contiguous with, so the flag is the only
  // signal that the oldest retained chain may be missing its head).
  void IngestSegment(size_t ring, uint64_t begin_seq,
                     std::span<const kernel::TraceEvent> events,
                     bool lossless_start = true);
  // Feed mutation records (in seq order, as MutationLog::DrainFrom yields).
  void IngestMutations(std::span<const kernel::MutationRecord> records);
  void NoteDropped(uint64_t dropped);

  // Convenience: drain both global streams into this auditor using its
  // own cursors. Call repeatedly during a run; cheap when nothing is new.
  void Harvest();

  // Flushes pending per-ring tails (conservatively treated as truncated)
  // and deferred verdicts, then returns the report.
  Report Finish();

  const Report& report() const { return report_; }

 private:
  // One installed goal state for an audited pair, stamped with the exact
  // post-bump generation of every shard (straight from the mutation log).
  struct PairChange {
    nal::FormulaId goal_id = 0;  // 0 = goal cleared.
    std::vector<uint64_t> gens;  // Per shard.
  };
  // Per-subregion high-water mark of logged mutation stamps, per shard.
  // Distinct (op, obj) pairs hash into one subregion and share its
  // generation counters, so EVERY logged mutation in the subregion —
  // goal or proof, audited pair or not — raises the mark.
  struct Timeline {
    std::vector<uint64_t> max_gens;
  };
  struct AuditedPair {
    nal::FormulaId allow_goal_id = 0;
    nal::FormulaId initial_goal_id = 0;
    std::set<kernel::ProcessId> holders;
    size_t subregion = 0;
    // The pair's goal changes in log order. Installs on one pair are
    // serialized (the engine documents the requirement), so exact stamps
    // strictly increase across successive changes on EVERY shard axis —
    // the list is simultaneously sorted by gens[shard] for every shard,
    // and window queries binary-search it directly.
    std::vector<PairChange> changes;
  };
  // Per-ring chain assembly state.
  struct RingState {
    uint64_t expected_next = 0;  // Timestamp the next event should carry.
    bool truncated = false;      // Current run may be missing its head.
    std::vector<kernel::TraceEvent> run;  // Contiguous same-trace events.
  };
  // A verdict whose generation is past the newest logged mutation: the
  // mutation may simply not have been drained yet. Deferred to Finish().
  struct PendingVerdict {
    kernel::TraceEvent verdict;
    uint64_t probe_gen = 0;
    nal::FormulaId observed_goal = 0;
  };

  static uint64_t PairKey(kernel::OpId op, kernel::ObjectId obj) {
    return (static_cast<uint64_t>(op) << 32) | obj;
  }
  size_t ShardOf(kernel::ProcessId subject) const {
    return static_cast<size_t>(kernel::Mix64(subject) % config_.cache_shards);
  }
  size_t SubregionOf(kernel::OpId op, kernel::ObjectId obj) const {
    return kernel::DecisionCache::SubregionIndexOf(op, obj, config_.cache_subregions);
  }

  void AddViolation(uint64_t* counter, std::string_view kind, std::string detail);
  void FinalizeRun(size_t ring, RingState* state, bool complete_tail);
  void CheckChain(size_t ring, const std::vector<kernel::TraceEvent>& chain,
                  bool complete);
  void CheckRingMonotonicity(size_t ring, const kernel::TraceEvent& event);
  // Value-checks one audited-pair verdict against the mutation timeline,
  // or defers it. `observed_goal` is the chain's guard-check stamp (0 if
  // none survived).
  void CheckVerdict(const kernel::TraceEvent& verdict, uint64_t probe_gen,
                    nal::FormulaId observed_goal, bool defer_allowed);
  // The admissible goal-state set for `pair` over the generation window
  // [probe_gen, verdict_gen] on `shard`.
  std::vector<nal::FormulaId> AdmissibleGoals(const AuditedPair& pair, size_t shard,
                                              uint64_t probe_gen,
                                              uint64_t verdict_gen) const;

  Config config_;
  Report report_;
  bool finished_ = false;
  std::map<uint64_t, AuditedPair> audited_;        // By PairKey.
  std::set<kernel::PortId> interposed_ports_;
  std::map<size_t, Timeline> timelines_;           // By subregion index.
  std::map<size_t, RingState> ring_states_;        // By ring index.
  // Per ring: high-water generation per (subregion, shard), tagged with
  // whether a remote invalidation (mesh) was the last raiser — a verdict
  // below a remote-raised mark is a cross-node coherence violation, below
  // a locally-raised one a plain stale_generation.
  struct GenMark {
    uint64_t gen = 0;
    bool remote = false;
  };
  std::map<size_t, std::unordered_map<uint64_t, GenMark>> ring_gen_seen_;
  // Join table for kRemoteInvalidate EVENTS: (PairKey, epoch) -> the exact
  // per-shard post-bump generations their mutation record carried. One
  // trace event cannot hold per-shard vectors; the record can. Bounded.
  static constexpr size_t kMaxRemoteInvalJoin = 8192;
  std::map<std::pair<uint64_t, uint64_t>, std::vector<uint64_t>> remote_inval_gens_;
  std::vector<PendingVerdict> pending_;
  kernel::FlightRecorder::DrainCursor event_cursor_;
  uint64_t mutation_cursor_ = 0;
};

}  // namespace nexus::harness

#endif  // NEXUS_HARNESS_AUDITOR_H_
