#include "services/ddrm.h"

#include "nal/checker.h"
#include "nal/proof.h"

namespace nexus::services {

namespace {

// Hoisted: the content-access and IPC-target policy hooks compare interned
// ids, not operation strings, on every intercepted call.
const kernel::OpId kReadPageOp = kernel::InternOp("read_page");
const kernel::OpId kWritePageOp = kernel::InternOp("write_page");
const kernel::OpId kIpcSendOp = kernel::InternOp("ipc_send");

nal::Formula AllowsFormula(std::string_view operation) {
  return nal::FormulaNode::Says(
      nal::Principal("Policy"),
      nal::FormulaNode::Pred("allows", {nal::Term::Symbol(std::string(operation))}));
}

}  // namespace

DeviceDriverMonitor::DeviceDriverMonitor(DdrmPolicy policy, bool cache_decisions)
    : policy_(std::move(policy)), cache_decisions_(cache_decisions) {
  for (const std::string& operation : policy_.allowed_operations) {
    policy_credentials_.push_back(AllowsFormula(operation));
  }
}

bool DeviceDriverMonitor::Evaluate(const kernel::IpcMessage& message) {
  // The policy question "may this driver invoke <op>?" is discharged as a
  // proof check against the policy labels — the guard machinery a Nexus
  // reference monitor really runs. The memo above caches its outcome.
  nal::Formula goal = AllowsFormula(message.operation());
  nal::CheckResult checked =
      nal::CheckProof(nal::proof::Premise(goal), goal, policy_credentials_);
  if (!checked.status.ok()) {
    return false;
  }
  if (!policy_.allow_page_content_access &&
      (message.op == kReadPageOp || message.op == kWritePageOp)) {
    return false;
  }
  if (message.op == kIpcSendOp && !policy_.allowed_ipc_targets.empty()) {
    // The target port is an integer slot (or legacy decimal text, decoded
    // at the accessor's single validated point — malformed text is a deny,
    // never a std::stoull throw out of the monitor).
    Result<kernel::PortId> target = message.ArgPort(0);
    if (!target.ok() || !policy_.allowed_ipc_targets.contains(*target)) {
      return false;
    }
  }
  return true;
}

kernel::InterposeVerdict DeviceDriverMonitor::OnCall(const kernel::IpcContext& context,
                                                     kernel::IpcMessage& message) {
  (void)context;
  bool allowed;
  // Only memoize calls the integer key can represent faithfully: a
  // resolved op, and — for ipc_send — a parseable target. Everything else
  // (unresolved legacy ops reaching OnCall directly, garbage targets)
  // evaluates fresh, so no verdict is ever replayed for a different call
  // shape than the one that produced it.
  bool memoizable = cache_decisions_ && !message.needs_op_resolution();
  MemoKey key{message.op, MemoShape::kPlain, 0};
  if (memoizable && message.op == kIpcSendOp && !message.args.empty()) {
    Result<kernel::PortId> target = message.ArgPort(0);
    if (target.ok()) {
      key = MemoKey{message.op, MemoShape::kTarget, *target};
    } else {
      memoizable = false;
    }
  }
  if (memoizable) {
    auto it = decision_memo_.find(key);
    if (it != decision_memo_.end()) {
      allowed = it->second;
    } else {
      allowed = Evaluate(message);
      decision_memo_[key] = allowed;
    }
  } else {
    allowed = Evaluate(message);
  }
  if (allowed) {
    stats_.allowed->Increment();
    return kernel::InterposeVerdict::kAllow;
  }
  stats_.denied->Increment();
  return kernel::InterposeVerdict::kDeny;
}

Status DeviceDriverMonitor::AttestDriver(core::Engine* engine, kernel::ProcessId self,
                                         kernel::ProcessId driver) const {
  std::string driver_path = kernel::Kernel::ProcPath(driver);
  Result<core::LabelHandle> mediated = engine->SayFormula(
      self, nal::FormulaNode::Pred("mediated", {nal::Term::Symbol(driver_path)}));
  if (!mediated.ok()) {
    return mediated.status();
  }
  if (!policy_.allow_page_content_access) {
    Result<core::LabelHandle> no_read = engine->SayFormula(
        self, nal::FormulaNode::Not(
                  nal::FormulaNode::Pred("canReadPages", {nal::Term::Symbol(driver_path)})));
    if (!no_read.ok()) {
      return no_read.status();
    }
  }
  return OkStatus();
}

}  // namespace nexus::services
