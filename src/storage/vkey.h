// Virtual Keys (§3.3).
//
// VKEYs virtualize the TPM's limited key storage the way VDIRs virtualize
// its integrity registers. Key material lives in protected kernel memory;
// externalization wraps a key either under another VKEY or under the
// TPM-sealed default Nexus key, so keys at rest are recoverable only by the
// kernel whose PCRs match.
#ifndef NEXUS_STORAGE_VKEY_H_
#define NEXUS_STORAGE_VKEY_H_

#include <map>

#include "crypto/aes.h"
#include "tpm/tpm.h"
#include "util/rng.h"
#include "util/status.h"

namespace nexus::storage {

using VkeyId = uint32_t;

class VkeyTable {
 public:
  // `tpm` provides the sealed default wrapping key; it must be owned.
  VkeyTable(tpm::Tpm* tpm, Rng* rng);

  Result<VkeyId> Create();
  Status Destroy(VkeyId id);
  bool Exists(VkeyId id) const { return keys_.contains(id); }

  // Counter-mode encryption under key `id`. Offset-addressable so regions
  // can be processed independently.
  Result<Bytes> Encrypt(VkeyId id, uint64_t nonce, uint64_t offset, ByteView plaintext) const;
  Result<Bytes> Decrypt(VkeyId id, uint64_t nonce, uint64_t offset, ByteView ciphertext) const;

  // Externalizes key `id` wrapped under `wrapping` (0 = the TPM-sealed
  // Nexus default key). The blob is integrity protected.
  Result<Bytes> Externalize(VkeyId id, VkeyId wrapping = 0) const;
  // Imports a previously externalized blob; returns the new key id.
  Result<VkeyId> Internalize(ByteView blob, VkeyId wrapping = 0);

 private:
  Result<crypto::AesKey> KeyFor(VkeyId id) const;

  tpm::Tpm* tpm_;
  Rng* rng_;
  crypto::AesKey default_key_{};
  Bytes default_key_sealed_;
  std::map<VkeyId, crypto::AesKey> keys_;
  VkeyId next_id_ = 1;
};

}  // namespace nexus::storage

#endif  // NEXUS_STORAGE_VKEY_H_
