#include "kernel/procfs.h"

#include <algorithm>
#include <set>

namespace nexus::kernel {

void IntrospectionFs::Publish(ProcessId owner, const std::string& path, Provider provider) {
  nodes_[path] = Node{owner, std::move(provider)};
  Notify(path);
}

void IntrospectionFs::PublishValue(ProcessId owner, const std::string& path, std::string value) {
  Publish(owner, path, [value = std::move(value)] { return value; });
}

Status IntrospectionFs::Remove(const std::string& path) {
  if (nodes_.erase(path) == 0) {
    return NotFound("no introspection node at " + path);
  }
  return OkStatus();
}

void IntrospectionFs::RemoveOwned(ProcessId owner) {
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    if (it->second.owner == owner) {
      it = nodes_.erase(it);
    } else {
      ++it;
    }
  }
}

Result<std::string> IntrospectionFs::Read(const std::string& path) const {
  auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return NotFound("no introspection node at " + path);
  }
  return it->second.provider();
}

Result<ProcessId> IntrospectionFs::Owner(const std::string& path) const {
  auto it = nodes_.find(path);
  if (it == nodes_.end()) {
    return NotFound("no introspection node at " + path);
  }
  return it->second.owner;
}

std::vector<std::string> IntrospectionFs::List(const std::string& directory) const {
  std::string prefix = directory;
  if (!prefix.empty() && prefix.back() != '/') {
    prefix += '/';
  }
  std::set<std::string> children;
  for (const auto& [path, node] : nodes_) {
    if (path.size() <= prefix.size() || path.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    std::string rest = path.substr(prefix.size());
    size_t slash = rest.find('/');
    children.insert(slash == std::string::npos ? rest : rest.substr(0, slash));
  }
  return std::vector<std::string>(children.begin(), children.end());
}

uint64_t IntrospectionFs::Watch(const std::string& prefix, Watcher watcher) {
  uint64_t token = next_watch_token_++;
  watchers_[token] = WatchEntry{prefix, std::move(watcher)};
  return token;
}

void IntrospectionFs::Unwatch(uint64_t token) { watchers_.erase(token); }

void IntrospectionFs::Notify(const std::string& path) {
  auto node = nodes_.find(path);
  if (node == nodes_.end()) {
    return;
  }
  for (const auto& [token, entry] : watchers_) {
    if (path.compare(0, entry.prefix.size(), entry.prefix) == 0) {
      entry.watcher(path, node->second.provider());
    }
  }
}

}  // namespace nexus::kernel
