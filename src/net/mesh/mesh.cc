#include "net/mesh/mesh.h"

namespace nexus::net::mesh {

MeshNode::MeshNode(NetNode* node, Options options)
    : node_(node),
      options_(options),
      gossip_(node, &registry_, options.import_pid),
      invalidation_(node, &registry_,
                    InvalidationPropagator::Options{
                        .stamp_observability = options.stamp_observability}) {
  if (options_.wire_kernel_sink) {
    invalidation_.AttachKernel(&node_->nexus().kernel());
  }
}

MeshNode::~MeshNode() {
  if (options_.wire_kernel_sink) {
    // The sink captures `this`; clear it before the propagator dies.
    invalidation_.DetachKernel(&node_->nexus().kernel());
  }
}

Status MeshNode::Join(const NodeId& seed) {
  // Pin the seed before the (lossy, one-way) push: anti-entropy keeps
  // re-targeting it until the registries merge, so a dropped join push
  // cannot permanently sever the configured topology.
  gossip_.AddSeed(seed);
  Result<AttestedChannel*> channel = node_->Connect(seed);
  if (!channel.ok()) {
    return channel.status();
  }
  return gossip_.PushState(seed);
}

size_t MeshNode::AntiEntropy() {
  return gossip_.AntiEntropyRound() + invalidation_.ResendRecent();
}

}  // namespace nexus::net::mesh
