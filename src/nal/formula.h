// NAL formula AST.
//
// Formulas are immutable trees shared by std::shared_ptr. A label is a
// formula of the form `P says S`; a goal formula may additionally contain
// $-variables that the guard instantiates during evaluation (§2.5).
#ifndef NEXUS_NAL_FORMULA_H_
#define NEXUS_NAL_FORMULA_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nal/term.h"

namespace nexus::nal {

enum class FormulaKind : uint8_t {
  kTrue,
  kFalse,
  kPred,       // isTypeSafe(PGM), hasPath(A, B), ...
  kCompare,    // TimeNow < 20260319
  kSays,       // P says F
  kSpeaksFor,  // A speaksfor B [on scope]
  kAnd,
  kOr,
  kNot,
  kImplies,
};

enum class CompareOp : uint8_t { kLt, kLe, kEq, kGe, kGt, kNe };

std::string_view CompareOpName(CompareOp op);

class FormulaNode;
using Formula = std::shared_ptr<const FormulaNode>;

class FormulaNode {
 public:
  FormulaKind kind() const { return kind_; }

  // kPred accessors.
  const std::string& pred_name() const { return pred_name_; }
  const std::vector<Term>& args() const { return args_; }

  // kCompare accessors.
  CompareOp compare_op() const { return compare_op_; }
  const Term& lhs() const { return lhs_; }
  const Term& rhs() const { return rhs_; }

  // kSays / kSpeaksFor accessors.
  const Principal& speaker() const { return p1_; }     // says
  const Principal& delegator() const { return p1_; }   // speaksfor: A
  const Principal& delegatee() const { return p2_; }   // speaksfor: B
  const std::optional<std::string>& on_scope() const { return on_scope_; }

  // Children: says body / unary child in child1; binary connectives use
  // child1 and child2.
  const Formula& child1() const { return child1_; }
  const Formula& child2() const { return child2_; }

  std::string ToString() const;

  // Factories.
  static Formula True();
  static Formula False();
  static Formula Pred(std::string name, std::vector<Term> args);
  static Formula Compare(CompareOp op, Term lhs, Term rhs);
  static Formula Says(Principal speaker, Formula body);
  static Formula SpeaksFor(Principal a, Principal b, std::optional<std::string> scope = {});
  static Formula And(Formula l, Formula r);
  static Formula Or(Formula l, Formula r);
  static Formula Not(Formula f);
  static Formula Implies(Formula l, Formula r);

  // Use the static factories; direct construction yields `true`.
  FormulaNode() = default;

 private:
  FormulaKind kind_ = FormulaKind::kTrue;
  std::string pred_name_;
  std::vector<Term> args_;
  CompareOp compare_op_ = CompareOp::kEq;
  Term lhs_, rhs_;
  Principal p1_, p2_;
  std::optional<std::string> on_scope_;
  Formula child1_, child2_;
};

// Structural equality (symbol/principal name puns included, see Term).
bool Equals(const Formula& a, const Formula& b);

// True if the formula contains no $-variables.
bool IsGround(const Formula& f);

// Variable bindings produced by matching a goal pattern against a ground
// formula. Keys are variable names without the '$'.
using Bindings = std::map<std::string, Term>;

// One-way matching: does ground formula `concrete` instantiate `pattern`?
// Extends `bindings` (consistently) on success.
bool Match(const Formula& pattern, const Formula& concrete, Bindings& bindings);

// Applies bindings to a formula; unbound variables remain.
Formula Substitute(const Formula& f, const Bindings& bindings);

// True if every atom of `f` is "about" the given scope: a predicate named
// `scope`, or a comparison mentioning the symbol `scope`. Used to check
// restricted delegation (A speaksfor B on scope, §2.1).
bool ScopeMatches(const Formula& f, const std::string& scope);

// Collects the conjuncts of a right-nested conjunction (a single non-AND
// formula yields itself).
std::vector<Formula> Conjuncts(const Formula& f);

}  // namespace nexus::nal

#endif  // NEXUS_NAL_FORMULA_H_
