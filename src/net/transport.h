// The simulated inter-instance message fabric.
//
// Distributed attestation (§2.4) needs credentials and authority queries to
// travel between Nexus instances. The transport models that fabric
// in-process: named nodes attach endpoints, links carry per-direction
// latency and a drop probability, and delivery runs on a simulated
// microsecond clock so tests exercise reordering, loss, and timeout paths
// deterministically (the Rng is seeded). Nothing here is trusted — every
// security property of a channel comes from the attestation handshake one
// layer up (channel.h), never from the fabric.
//
// Threading: the fabric is safe for concurrent senders and pumpers, which
// is what lets independent authorization misses overlap their remote round
// trips end to end. Queue/clock/stats live under one mutex; DELIVERY is
// serialized by a second mutex held for a whole DeliverAll pass, so
// endpoint handlers never run concurrently with each other (they may Send
// from inside OnMessage, which only needs the state mutex). A thread whose
// message was delivered by another thread's pump simply finds the fabric
// quiet. The simulated clock advances under the state mutex, exactly once
// per queued delivery — concurrent round trips issued before any pump cost
// max(latency), not sum(latency), the property the overlap tests assert.
#ifndef NEXUS_NET_TRANSPORT_H_
#define NEXUS_NET_TRANSPORT_H_

#include <condition_variable>
#include <map>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/status.h"

namespace nexus::net {

using NodeId = std::string;

struct LinkConfig {
  uint64_t latency_us = 50;  // One-way delivery delay on the simulated clock.
  double drop_rate = 0.0;    // Probability a message silently vanishes.
};

struct Message {
  NodeId from;
  NodeId to;
  uint64_t channel = 0;  // Conversation id allocated by AllocateChannelId().
  std::string kind;      // "hello", "hello_ack", "auth", "data", ...
  Bytes payload;
};

// A node's receive hook. Handlers may send further messages from inside
// OnMessage; those are queued and delivered in the same pump. Handlers are
// never invoked concurrently (the pump lock serializes delivery).
class Endpoint {
 public:
  virtual ~Endpoint() = default;
  virtual void OnMessage(const Message& message) = 0;
};

class Transport {
 public:
  struct Stats {
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t bytes_carried = 0;
  };

  explicit Transport(uint64_t seed = 7);

  Status Attach(const NodeId& node, Endpoint* endpoint);
  void Detach(const NodeId& node);

  // Configures both directions of the (a, b) link. Unconfigured links use
  // LinkConfig{}. Configure topology before concurrent traffic starts.
  void SetLink(const NodeId& a, const NodeId& b, const LinkConfig& config);

  // Queues a message for delivery at now + link latency (or drops it). An
  // unknown destination is an error; a drop is not — the sender cannot
  // observe loss except through missing replies. Thread-safe.
  Status Send(Message message);

  // Delivers queued messages in timestamp order, advancing the simulated
  // clock to each delivery time, until the fabric is quiet (or `max_steps`
  // deliveries, a runaway guard). Returns the number delivered. Thread-safe;
  // concurrent callers serialize, and a caller that arrives second may find
  // its traffic already delivered by the first.
  size_t DeliverAll(size_t max_steps = 100000);

  // Test rendezvous: the next DeliverAll call(s) block until at least
  // `queued_messages` messages sit in the fabric, then the gate disarms.
  // This pins down the racy window overlap tests care about — N threads
  // each Send one request and pump; no request is delivered (and the clock
  // does not move) until all N are in flight, so the round trips provably
  // share the same latency window. One-shot; never used outside tests.
  void ArmPumpGate(size_t queued_messages);

  // Globally unique conversation ids for channels. Thread-safe.
  uint64_t AllocateChannelId();

  uint64_t now_us() const;
  void AdvanceTime(uint64_t us);
  // Snapshot by value (counter reads are atomic; no lock needed).
  Stats stats() const;

 private:
  struct Pending {
    uint64_t deliver_at = 0;
    uint64_t seq = 0;  // FIFO tie-break for equal timestamps.
    Message message;
    bool operator>(const Pending& other) const {
      return deliver_at != other.deliver_at ? deliver_at > other.deliver_at
                                            : seq > other.seq;
    }
  };

  // Caller holds mu_.
  const LinkConfig& LinkForLocked(const NodeId& a, const NodeId& b) const;

  // Queue, clock, topology, stats, rng, gate. Never held while an endpoint
  // handler runs.
  mutable std::mutex mu_;
  std::condition_variable gate_cv_;
  // Serializes whole DeliverAll passes: exactly one thread plays "the
  // fabric" at a time, so endpoint handlers never overlap.
  std::mutex pump_mu_;

  std::map<NodeId, Endpoint*> endpoints_;
  std::map<std::pair<NodeId, NodeId>, LinkConfig> links_;
  LinkConfig default_link_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>> queue_;
  size_t gate_queued_messages_ = 0;  // 0 = disarmed.
  uint64_t send_seq_ = 0;
  uint64_t next_channel_id_ = 1;
  uint64_t now_us_ = 0;
  Rng rng_;

  // Registry instruments ("transport.*"). Incremented inside the existing
  // mu_ regions; reads are lock-free relaxed loads.
  metrics::MetricGroup metrics_{&metrics::Registry::Global(), "transport"};
  struct {
    metrics::Counter* sent;
    metrics::Counter* delivered;
    metrics::Counter* dropped;
    metrics::Counter* bytes_carried;
  } stats_{metrics_.NewCounter("sent"), metrics_.NewCounter("delivered"),
           metrics_.NewCounter("dropped"), metrics_.NewCounter("bytes_carried")};
};

}  // namespace nexus::net

#endif  // NEXUS_NET_TRANSPORT_H_
